#!/usr/bin/env bash
# CLI robustness harness: pgb must exit non-zero with a one-line
# diagnostic — and never abort, segfault, or std::terminate — for every
# broken corpus input, injected write failure, and garbage argument.
#
# usage: cli_robustness.sh <path-to-pgb> <corpus-dir>
set -u

PGB=${1:?usage: cli_robustness.sh <pgb> <corpus-dir>}
CORPUS=${2:?usage: cli_robustness.sh <pgb> <corpus-dir>}

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

failures=0

# run <description> -- <cmd...>: expect clean non-zero exit + stderr.
expect_fail() {
    local what=$1
    shift
    local err="$WORK/stderr.txt"
    "$@" >/dev/null 2> "$err"
    local status=$?
    if [ "$status" -eq 0 ]; then
        echo "FAIL: $what: expected failure but exited 0" >&2
        failures=$((failures + 1))
    elif [ "$status" -ge 128 ]; then
        # 134 = SIGABRT (std::terminate), 139 = SIGSEGV.
        echo "FAIL: $what: killed by signal (exit $status)" >&2
        failures=$((failures + 1))
    elif ! [ -s "$err" ]; then
        echo "FAIL: $what: no diagnostic on stderr" >&2
        failures=$((failures + 1))
    else
        echo "ok: $what ($(head -n 1 "$err"))"
    fi
}

expect_ok() {
    local what=$1
    shift
    if ! "$@" >/dev/null 2> "$WORK/stderr.txt"; then
        echo "FAIL: $what: expected success, got exit $?" >&2
        sed 's/^/    /' "$WORK/stderr.txt" >&2
        failures=$((failures + 1))
    else
        echo "ok: $what"
    fi
}

# A small healthy dataset to drive the write-failure cases.
expect_ok "simulate healthy dataset" \
    "$PGB" simulate "$WORK/d" 2000 4 1

# --- every corpus input fails cleanly in strict mode ----------------
expect_fail "stats on duplicate segment" \
    "$PGB" stats "$CORPUS/dup_segment.gfa"
expect_fail "stats on bad orientation" \
    "$PGB" stats "$CORPUS/bad_orientation.gfa"
expect_fail "stats on unknown segment" \
    "$PGB" stats "$CORPUS/unknown_segment.gfa"
expect_fail "stats on empty GFA" \
    "$PGB" stats "$CORPUS/empty.gfa"
expect_fail "stats on missing file" \
    "$PGB" stats "$CORPUS/no_such_file.gfa"
expect_fail "map with truncated FASTQ" \
    "$PGB" map "$WORK/d.gfa" "$CORPUS/truncated.fq"
expect_fail "map with bad FASTQ header" \
    "$PGB" map "$WORK/d.gfa" "$CORPUS/bad_header.fq"
expect_fail "map with quality mismatch" \
    "$PGB" map "$WORK/d.gfa" "$CORPUS/qual_mismatch.fq"
expect_fail "build with non-ACGT FASTA" \
    "$PGB" build "$CORPUS/bad_bases.fa" "$WORK/out.gfa"
expect_fail "build with data before header" \
    "$PGB" build "$CORPUS/data_before_header.fa" "$WORK/out.gfa"

# CRLF input is legal, not an error.
expect_ok "stats on CRLF GFA" "$PGB" stats "$CORPUS/crlf.gfa"

# Lenient mode downgrades a recoverable error to a warning.
expect_ok "lenient stats on bad orientation" \
    env PGB_LENIENT_PARSE=1 "$PGB" stats "$CORPUS/bad_orientation.gfa"

# --- injected write failures ---------------------------------------
expect_fail "layout with injected flush failure" \
    env PGB_FAULT=io.flush:1 \
    "$PGB" layout "$WORK/d.gfa" "$WORK/layout.tsv" 2 1
expect_fail "split with injected flush failure" \
    env PGB_FAULT=io.flush:1 \
    "$PGB" split "$WORK/d.gfa" "$WORK/split.gfa" 8
expect_fail "layout to unwritable path" \
    "$PGB" layout "$WORK/d.gfa" "$WORK/no-such-dir/layout.tsv" 2 1
expect_fail "split to unwritable path" \
    "$PGB" split "$WORK/d.gfa" "$WORK/no-such-dir/split.gfa" 8

# --- injected worker faults surface as one-line errors -------------
expect_fail "map with injected worker fault" \
    env PGB_FAULT=mapper.read:1 \
    "$PGB" map "$WORK/d.gfa" "$WORK/d.short.fq" vgmap 2

# --- observability surface fails closed ----------------------------
# An unwritable --metrics/--trace path must fail the whole run with a
# one-line diagnostic and leave no partial file, even though the
# command itself succeeded: a silently missing metrics file defeats
# the point of asking for one.
expect_fail "stats with --metrics to unwritable path" \
    "$PGB" stats "$WORK/d.gfa" --metrics "$WORK/no-such-dir/m.json"
if [ -e "$WORK/no-such-dir/m.json" ]; then
    echo "FAIL: --metrics left a partial file on failure" >&2
    failures=$((failures + 1))
fi
expect_fail "stats with --trace to unwritable path" \
    "$PGB" stats "$WORK/d.gfa" --trace "$WORK/no-such-dir/t.json"
expect_fail "metrics write with injected flush failure" \
    env PGB_FAULT=io.flush:1 \
    "$PGB" stats "$WORK/d.gfa" --metrics "$WORK/m.json"
expect_fail "--metrics with missing value" \
    "$PGB" stats "$WORK/d.gfa" --metrics
expect_ok "stats with --metrics and --trace" \
    "$PGB" stats "$WORK/d.gfa" --metrics "$WORK/ok-m.json" \
    --trace "$WORK/ok-t.json"

# --- .pgbi artifact loading fails closed ---------------------------
expect_ok "index healthy dataset" \
    "$PGB" index "$WORK/d.gfa" -o "$WORK/d.pgbi"
expect_ok "map via artifact" \
    "$PGB" map --index "$WORK/d.pgbi" "$WORK/d.short.fq" vgmap 1
expect_fail "map with missing artifact" \
    "$PGB" map --index "$WORK/no_such.pgbi" "$WORK/d.short.fq"
expect_fail "map with bad-magic artifact" \
    "$PGB" map --index "$CORPUS/bad_magic.pgbi" "$WORK/d.short.fq"
expect_fail "map with wrong-version artifact" \
    "$PGB" map --index "$CORPUS/wrong_version.pgbi" "$WORK/d.short.fq"
expect_fail "map with truncated artifact" \
    "$PGB" map --index "$CORPUS/truncated.pgbi" "$WORK/d.short.fq"

# --- seeder selection fails closed ---------------------------------
# d.pgbi was built without --seeder=mem, so it has no FM sections:
# asking for MEM seeding against it must be a one-line fatal telling
# the user to rebuild, not a crash or a silent minimizer fallback.
expect_fail "map --seeder=mem without FM sections" \
    "$PGB" map --index "$WORK/d.pgbi" --seeder=mem "$WORK/d.short.fq"
expect_fail "serve --seeder=mem without FM sections" \
    "$PGB" serve --index "$WORK/d.pgbi" --seeder=mem \
    --socket "$WORK/s.sock"
expect_fail "map with garbage --seeder" \
    "$PGB" map --index "$WORK/d.pgbi" --seeder=banana "$WORK/d.short.fq"
expect_fail "index with garbage --seeder" \
    "$PGB" index "$WORK/d.gfa" -o "$WORK/d2.pgbi" --seeder=banana
expect_ok "index with FM sections" \
    "$PGB" index "$WORK/d.gfa" -o "$WORK/dm.pgbi" --seeder=mem
expect_ok "map --seeder=mem via FM artifact" \
    "$PGB" map --index "$WORK/dm.pgbi" --seeder=mem \
    "$WORK/d.short.fq" vgmap 1
# A corrupted FM section is corruption even for a minimizer-seeded
# load: the artifact fails closed either way.
expect_fail "map with FM bad-checksum artifact" \
    "$PGB" map --index "$CORPUS/fm_bad_checksum.pgbi" "$WORK/d.short.fq"
expect_fail "map --seeder=mem with FM-truncated artifact" \
    "$PGB" map --index "$CORPUS/fm_truncated.pgbi" --seeder=mem \
    "$WORK/d.short.fq"
expect_fail "map --seeder=mem with FM bad-meta artifact" \
    "$PGB" map --index "$CORPUS/fm_bad_meta.pgbi" --seeder=mem \
    "$WORK/d.short.fq"

# A flipped payload byte must trip the section checksum.
cp "$WORK/d.pgbi" "$WORK/bitrot.pgbi"
printf '\x55' | dd of="$WORK/bitrot.pgbi" bs=1 seek=4096 \
    conv=notrunc 2>/dev/null
expect_fail "map with bit-flipped artifact" \
    "$PGB" map --index "$WORK/bitrot.pgbi" "$WORK/d.short.fq"

# Every store fault site surfaces as a one-line error.
for site in store.open store.mmap store.section store.checksum; do
    expect_fail "map with injected $site fault" \
        env PGB_FAULT=$site:1 \
        "$PGB" map --index "$WORK/d.pgbi" "$WORK/d.short.fq"
done

# A failed index write must not leave a partial artifact behind.
expect_fail "index with injected flush failure" \
    env PGB_FAULT=io.flush:1 \
    "$PGB" index "$WORK/d.gfa" -o "$WORK/failed.pgbi"
if [ -e "$WORK/failed.pgbi" ] || [ -e "$WORK/failed.pgbi.tmp" ]; then
    echo "FAIL: failed index left a partial artifact" >&2
    failures=$((failures + 1))
fi
expect_fail "index to unwritable path" \
    "$PGB" index "$WORK/d.gfa" -o "$WORK/no-such-dir/d.pgbi"
expect_fail "index without --output" \
    "$PGB" index "$WORK/d.gfa"

# --- fault-site inventory ------------------------------------------
# `pgb fault-sites` prints the registered injection points so an
# operator can discover what PGB_FAULT / PGB_FAULT_CHAOS can target.
expect_ok "fault-sites lists the registry" "$PGB" fault-sites
"$PGB" fault-sites > "$WORK/sites.txt" 2>/dev/null
for site in serve.read serve.reload serve.stall store.checksum \
            io.flush; do
    if ! grep -q "^$site " "$WORK/sites.txt"; then
        echo "FAIL: fault-sites output is missing $site" >&2
        failures=$((failures + 1))
    fi
done
expect_fail "fault-sites with stray positional" \
    "$PGB" fault-sites extra

# A malformed chaos spec must warn and run clean, never arm a bogus
# schedule: chaos is an opt-in test harness, not a footgun.
expect_ok "malformed PGB_FAULT_CHAOS warns but runs" \
    env PGB_FAULT_CHAOS=banana "$PGB" stats "$WORK/d.gfa"
env PGB_FAULT_CHAOS=banana "$PGB" stats "$WORK/d.gfa" \
    > /dev/null 2> "$WORK/chaos_warn.txt" || true
if ! grep -q "PGB_FAULT_CHAOS" "$WORK/chaos_warn.txt"; then
    echo "FAIL: malformed PGB_FAULT_CHAOS produced no warning" >&2
    failures=$((failures + 1))
else
    echo "ok: malformed PGB_FAULT_CHAOS warns on stderr"
fi
expect_ok "well-formed PGB_FAULT_CHAOS at p=0 is a no-op" \
    env PGB_FAULT_CHAOS=7:0 "$PGB" stats "$WORK/d.gfa"

# --- serve/loadgen environment errors fail closed ------------------
expect_fail "serve without --index" \
    "$PGB" serve --socket "$WORK/s.sock"
expect_fail "serve with missing artifact" \
    "$PGB" serve --index "$WORK/no_such.pgbi" --socket "$WORK/s.sock"
expect_fail "serve with bad-magic artifact" \
    "$PGB" serve --index "$CORPUS/bad_magic.pgbi" \
    --socket "$WORK/s.sock"
expect_fail "serve with neither --socket nor --stdio" \
    "$PGB" serve --index "$WORK/d.pgbi"
expect_fail "serve with both --socket and --stdio" \
    "$PGB" serve --index "$WORK/d.pgbi" --socket "$WORK/s.sock" --stdio
# An existing file at the socket path is a collision, not ours to
# delete: the daemon must refuse, not clobber.
touch "$WORK/collide.sock"
expect_fail "serve with socket path collision" \
    "$PGB" serve --index "$WORK/d.pgbi" --socket "$WORK/collide.sock"
if ! [ -e "$WORK/collide.sock" ]; then
    echo "FAIL: serve removed a colliding socket path" >&2
    failures=$((failures + 1))
fi
long_path="$WORK/$(printf 'x%.0s' $(seq 1 200)).sock"
expect_fail "serve with over-long socket path" \
    "$PGB" serve --index "$WORK/d.pgbi" --socket "$long_path"

# A malformed frame on stdio transport is fatal (the sole peer's
# stream is gone); the process must exit 1, not die on a signal.
expect_fail "serve stdio with malformed frame" \
    bash -c "printf 'garbagegarbagegarbage' | \
        '$PGB' serve --index '$WORK/d.pgbi' --stdio"
# Empty stdio input is a clean no-op session.
expect_ok "serve stdio with empty input" \
    bash -c "'$PGB' serve --index '$WORK/d.pgbi' --stdio < /dev/null"

expect_fail "loadgen without --socket" \
    "$PGB" loadgen "$WORK/d.short.fq"
expect_fail "loadgen against dead socket" \
    "$PGB" loadgen --socket "$WORK/nobody-home.sock" "$WORK/d.short.fq"
expect_fail "loadgen with garbage rate" \
    "$PGB" loadgen --socket "$WORK/nobody-home.sock" \
    "$WORK/d.short.fq" --rate fast
expect_fail "loadgen with missing reads file" \
    "$PGB" loadgen --socket "$WORK/nobody-home.sock" \
    "$WORK/no_such.fq"
expect_fail "loadgen with garbage timeout" \
    "$PGB" loadgen --socket "$WORK/nobody-home.sock" \
    "$WORK/d.short.fq" --timeout-us soon
expect_fail "loadgen with garbage retry count" \
    "$PGB" loadgen --socket "$WORK/nobody-home.sock" \
    "$WORK/d.short.fq" --retries always

# --- .pgbs shard sets fail closed ----------------------------------
expect_fail "shard without --output" \
    "$PGB" shard "$WORK/d.gfa"
expect_fail "shard with garbage --seeder" \
    "$PGB" shard "$WORK/d.gfa" -o "$WORK/d.pgbs" --seeder=banana
expect_ok "shard healthy dataset" \
    "$PGB" shard "$WORK/d.gfa" -o "$WORK/d.pgbs" --target-shard-mb 1
expect_ok "map via shard set" \
    "$PGB" map --shards "$WORK/d.pgbs" "$WORK/d.short.fq" vgmap 1
expect_fail "map with both --index and --shards" \
    "$PGB" map --index "$WORK/d.pgbi" --shards "$WORK/d.pgbs" \
    "$WORK/d.short.fq"
expect_fail "map with missing manifest" \
    "$PGB" map --shards "$WORK/no_such.pgbs" "$WORK/d.short.fq"
expect_fail "map with corrupt manifest" \
    "$PGB" map --shards "$CORPUS/bad_checksum.pgbs" "$WORK/d.short.fq"
expect_fail "map with duplicate-component manifest" \
    "$PGB" map --shards "$CORPUS/dup_component.pgbs" "$WORK/d.short.fq"
expect_fail "map with manifest whose shard file is missing" \
    "$PGB" map --shards "$CORPUS/missing_shard.pgbs" "$WORK/d.short.fq"
expect_fail "map with injected store.manifest fault" \
    env PGB_FAULT=store.manifest:1 \
    "$PGB" map --shards "$WORK/d.pgbs" "$WORK/d.short.fq"
# d.pgbs was sharded without --seeder=mem, so its shards carry no FM
# sections: MEM seeding against it must fail closed, like the .pgbi
# case above.
expect_fail "map --seeder=mem against minimizer shard set" \
    "$PGB" map --shards "$WORK/d.pgbs" --seeder=mem "$WORK/d.short.fq"
expect_fail "serve with both --index and --shards" \
    "$PGB" serve --index "$WORK/d.pgbi" --shards "$WORK/d.pgbs" \
    --socket "$WORK/s.sock"
expect_fail "serve with corrupt manifest" \
    "$PGB" serve --shards "$CORPUS/bad_checksum.pgbs" \
    --socket "$WORK/s.sock"
# A failed shard build must not leave partial shard files or a
# manifest behind.
expect_fail "shard with injected flush failure" \
    env PGB_FAULT=io.flush:1 \
    "$PGB" shard "$WORK/d.gfa" -o "$WORK/failed.pgbs"
if [ -e "$WORK/failed.pgbs" ] || [ -e "$WORK/failed.pgbs.tmp" ]; then
    echo "FAIL: failed shard build left a partial manifest" >&2
    failures=$((failures + 1))
fi

# --- garbage numeric arguments -------------------------------------
expect_fail "map with garbage thread count" \
    "$PGB" map "$WORK/d.gfa" "$WORK/d.short.fq" vgmap banana
expect_fail "map with zero threads" \
    "$PGB" map "$WORK/d.gfa" "$WORK/d.short.fq" vgmap 0
expect_fail "map with negative threads" \
    "$PGB" map "$WORK/d.gfa" "$WORK/d.short.fq" vgmap -4
expect_fail "layout with garbage iterations" \
    "$PGB" layout "$WORK/d.gfa" "$WORK/layout.tsv" many
expect_fail "simulate with out-of-range bases" \
    "$PGB" simulate "$WORK/g" 7
expect_fail "split with trailing junk length" \
    "$PGB" split "$WORK/d.gfa" "$WORK/split.gfa" 8x

if [ "$failures" -ne 0 ]; then
    echo "$failures robustness check(s) failed" >&2
    exit 1
fi
echo "all robustness checks passed"
