#!/usr/bin/env bash
# Record the mapping-kernel wall times in the perf trajectory.
#
# Runs bench_table4_kernel_times PGB_BENCH_REPEATS times (default 3),
# keeps the per-kernel minimum, and appends a labeled entry to
# BENCH_kernels.json at the repo root with the metadata that makes the
# numbers comparable across commits: git revision, SIMD dispatch level,
# and thread count. Re-running with the same label replaces the entry,
# so the script is idempotent.
#
# Usage: scripts/bench_kernels.sh [label]
# Knobs: PGB_BENCH_BIN, PGB_BENCH_OUT, PGB_BENCH_REPEATS, PGB_THREADS,
#        PGB_SIMD, PGB_BENCH_SCALE (all forwarded to the bench binary).
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BENCH_BIN="${PGB_BENCH_BIN:-$REPO_ROOT/build/bench/bench_table4_kernel_times}"
OUT="${PGB_BENCH_OUT:-$REPO_ROOT/BENCH_kernels.json}"
LABEL="${1:-run}"
REPEATS="${PGB_BENCH_REPEATS:-3}"
THREADS="${PGB_THREADS:-1}"

if [ ! -x "$BENCH_BIN" ]; then
    echo "bench_kernels: $BENCH_BIN not built (cmake --build build)" >&2
    exit 1
fi

RUNS_FILE="$(mktemp)"
trap 'rm -f "$RUNS_FILE"' EXIT
for ((r = 0; r < REPEATS; ++r)); do
    PGB_THREADS="$THREADS" "$BENCH_BIN" >>"$RUNS_FILE"
done

GIT_REV="$(git -C "$REPO_ROOT" rev-parse --short HEAD 2>/dev/null || echo unknown)"
if ! git -C "$REPO_ROOT" diff --quiet 2>/dev/null; then
    GIT_REV="$GIT_REV-dirty"
fi

python3 - "$RUNS_FILE" "$OUT" "$LABEL" "$GIT_REV" "$THREADS" "$REPEATS" <<'EOF'
import json, re, sys

runs_file, out_path, label, git_rev, threads, repeats = sys.argv[1:7]
kernels = {}
simd = "sse2"  # binaries predating runtime dispatch never print a level
for line in open(runs_file):
    m = re.match(r"simd dispatch:\s+(\S+)", line)
    if m:
        simd = m.group(1)
    m = re.match(r"([A-Z][A-Za-z-]+)\s+([0-9.]+)\s", line)
    if m and m.group(1) != "Table":
        name, ms = m.group(1), float(m.group(2))
        kernels[name] = min(kernels.get(name, ms), ms)
if not kernels:
    sys.exit("bench_kernels: no kernel rows parsed from bench output")

entry = {
    "label": label,
    "git_rev": git_rev,
    "simd": simd,
    "threads": int(threads),
    "repeats": int(repeats),
    "kernel_ms": kernels,
}
try:
    entries = json.load(open(out_path))
except (FileNotFoundError, json.JSONDecodeError):
    entries = []
entries = [e for e in entries if e.get("label") != label]
entries.append(entry)
json.dump(entries, open(out_path, "w"), indent=2)
open(out_path, "a").write("\n")
print(f"bench_kernels: wrote entry '{label}' ({simd}, "
      f"{threads} threads) to {out_path}")
EOF
