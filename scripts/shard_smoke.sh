#!/usr/bin/env bash
# Beyond-RAM smoke test: build a multi-component pangenome, partition
# it with `pgb shard`, then map against the shard set under a cache
# budget that holds one shard but not all of them — the mapping dump
# must be byte-identical to the monolithic `pgb map` path, and the
# metrics report must show the LRU actually evicting mid-run (a
# budget nobody overflows proves nothing about the eviction path).
#
# usage: shard_smoke.sh <path-to-pgb>
set -eu

PGB=${1:?usage: shard_smoke.sh <pgb>}
PY=python3

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

fail() {
    echo "shard_smoke: FAIL: $*" >&2
    exit 1
}

# Two independent simulations glued into one GFA give a graph with two
# connected components (the shard boundary `pgb shard` partitions on).
# Segment and path names are free strings, so prefixing the second
# chromosome's names keeps every record distinct.
"$PGB" simulate "$WORK/a" 200000 2 21 >/dev/null
"$PGB" simulate "$WORK/b" 200000 2 22 >/dev/null
awk -F'\t' 'BEGIN{OFS="\t"}
    $1=="H" {next}
    $1=="S" {$2="b"$2}
    $1=="L" {$2="b"$2; $4="b"$4}
    $1=="P" {
        $2="b"$2
        n=split($3, steps, ",")
        $3=""
        for (i = 1; i <= n; ++i)
            $3=$3 (i > 1 ? "," : "") "b" steps[i]
    }
    {print}' "$WORK/b.gfa" >"$WORK/b_renamed.gfa"
cat "$WORK/a.gfa" "$WORK/b_renamed.gfa" >"$WORK/union.gfa"
cat "$WORK/a.short.fq" "$WORK/b.short.fq" >"$WORK/union.fq"

"$PGB" shard "$WORK/union.gfa" -o "$WORK/union.pgbs" \
    --target-shard-mb 1 --threads 2 >/dev/null
test -s "$WORK/union.pgbs" || fail "pgb shard left no manifest"
shard_files=$(ls "$WORK"/union.shard*.pgbi 2>/dev/null | wc -l)
[ "$shard_files" -ge 2 ] \
    || fail "expected >=2 shards from a 2-component graph," \
            "got $shard_files"

# A cache budget that admits the largest shard but not the whole set:
# mapping still succeeds (identically), it just has to thrash.
budget_mb=$("$PY" - "$WORK" <<'EOF'
import glob, os, sys
sizes = [os.path.getsize(p)
         for p in glob.glob(os.path.join(sys.argv[1],
                                         "union.shard*.pgbi"))]
mib = 1024 * 1024
budget = (max(sizes) + mib - 1) // mib
if budget * mib >= sum(sizes):
    print("shard_smoke: FAIL: shards too small to overflow a "
          "%d MiB budget (sizes %r); grow the simulated chromosomes"
          % (budget, sizes), file=sys.stderr)
    sys.exit(1)
print(budget)
EOF
) || exit 1

"$PGB" map "$WORK/union.gfa" "$WORK/union.fq" vgmap 2 \
    --dump "$WORK/direct.tsv" >/dev/null
"$PGB" map --shards "$WORK/union.pgbs" "$WORK/union.fq" vgmap 2 \
    --shard-cache-mb "$budget_mb" --dump "$WORK/sharded.tsv" \
    --metrics "$WORK/metrics.json" >/dev/null

cmp -s "$WORK/direct.tsv" "$WORK/sharded.tsv" \
    || fail "sharded dump diverged from the monolithic dump" \
            "(diff $WORK/direct.tsv $WORK/sharded.tsv)"

"$PY" - "$WORK/metrics.json" <<'EOF' || exit 1
import json, sys

with open(sys.argv[1]) as f:
    counters = json.load(f)["counters"]

def require(name, floor):
    got = counters.get(name, 0)
    if got < floor:
        print("shard_smoke: FAIL: %s = %d (expected >= %d)"
              % (name, got, floor), file=sys.stderr)
        sys.exit(1)

require("shard.loads", 2)      # every shard mapped in lazily
require("shard.evictions", 1)  # the budget forced real evictions
require("shard.hits", 1)       # ... and the cache still got reuse
EOF

echo "shard smoke test passed" \
     "(cache ${budget_mb} MiB over $shard_files shards)"
