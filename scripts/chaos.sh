#!/usr/bin/env bash
# Seeded chaos harness (DESIGN.md §6): run the full build -> index ->
# serve -> loadgen pipeline under PGB_FAULT_CHAOS, where every fault
# site fails each hit with a small seeded probability, and assert the
# survivability contract for every seed in a fixed matrix:
#
#   - no signal death: the daemon and the loadgen may fail, but only
#     through the documented paths — exit 0 or a clean non-zero exit,
#     never an uncaught signal (exit >= 128);
#   - no hang: the daemon answers SIGTERM within a bounded wait even
#     when chaos wedged a batch (the watchdog kills a true stall);
#   - no wrong answers: every OK response the daemon served is
#     byte-identical to the direct `pgb map --dump` line for the same
#     read — chaos may shed or fail requests, never corrupt them.
#
# The matrix is fixed so a failure reproduces from the seed alone:
# the per-(site, hit) decision is a pure hash of (seed, site, hit).
#
# A final no-chaos case drives hot reload under open-loop load:
# SIGHUP swaps the index mid-run and not one in-flight request may be
# dropped or answered differently.
#
# usage: chaos.sh <path-to-pgb>
set -eu

PGB=${1:?usage: chaos.sh <pgb>}

SEEDS="1 7 42 1337 90210"
CHAOS_P=0.01
STALL_BUDGET_MS=2000
SHUTDOWN_WAIT_S=30

WORK=$(mktemp -d)
DAEMON_PID=""
cleanup() {
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -9 "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

# The dataset and the reference answer are built WITHOUT chaos: the
# oracle must be clean or the byte-identity check means nothing.
"$PGB" simulate "$WORK/d" 20000 4 11 > /dev/null
"$PGB" index "$WORK/d.gfa" -o "$WORK/d.pgbi" --threads 2 \
    2> /dev/null
"$PGB" map --index "$WORK/d.pgbi" "$WORK/d.short.fq" vgmap 2 \
    --dump "$WORK/direct.tsv" > /dev/null 2>&1
test -s "$WORK/direct.tsv" || fail "empty reference mapping dump"

# Wait for the daemon's socket, tolerating a daemon that chaos killed
# during startup (a clean exit 1 is within the contract).
# Sets DAEMON_UP=1 when the socket appeared.
await_socket() {
    sock=$1
    DAEMON_UP=0
    for _ in $(seq 1 300); do
        if [ -S "$sock" ]; then
            DAEMON_UP=1
            return 0
        fi
        kill -0 "$DAEMON_PID" 2>/dev/null || return 0
        sleep 0.1
    done
    return 0
}

# Reap the daemon: SIGTERM, bounded wait, assert no signal death and
# no hang. Must run in this shell (wait only sees its own children);
# leaves the exit status in DAEMON_STATUS.
reap_daemon() {
    log=$1
    if kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -TERM "$DAEMON_PID" 2>/dev/null || true
    fi
    waited=0
    while kill -0 "$DAEMON_PID" 2>/dev/null; do
        if [ "$waited" -ge $((SHUTDOWN_WAIT_S * 10)) ]; then
            kill -9 "$DAEMON_PID" 2>/dev/null || true
            cat "$log" >&2
            fail "daemon hung past the watchdog budget on shutdown"
        fi
        sleep 0.1
        waited=$((waited + 1))
    done
    DAEMON_STATUS=0
    wait "$DAEMON_PID" 2>/dev/null || DAEMON_STATUS=$?
    DAEMON_PID=""
    if [ "$DAEMON_STATUS" -ge 128 ]; then
        cat "$log" >&2
        fail "daemon died of signal (exit $DAEMON_STATUS) — not a clean path"
    fi
}

# Every OK line the daemon served must equal the reference line for
# the same read name; chaos may drop requests, never corrupt them.
check_subset() {
    python3 - "$WORK/direct.tsv" "$1" <<'EOF'
import sys

direct = {}
for line in open(sys.argv[1]):
    direct.setdefault(line.split("\t", 1)[0], []).append(line)

served_count = 0
for line in open(sys.argv[2]):
    served_count += 1
    name = line.split("\t", 1)[0]
    if line not in direct.get(name, []):
        sys.exit(f"served line for read '{name}' does not match the "
                 f"direct mapBatch reference:\n  {line.rstrip()}")
print(f"  {served_count} served line(s), all byte-identical")
EOF
}

for seed in $SEEDS; do
    echo "== chaos seed $seed (p=$CHAOS_P)"
    SOCK="$WORK/chaos_$seed.sock"
    LOG="$WORK/chaos_$seed.log"
    rm -f "$SOCK"
    PGB_FAULT_CHAOS="$seed:$CHAOS_P" "$PGB" serve \
        --index "$WORK/d.pgbi" --socket "$SOCK" \
        --max-batch 16 --max-wait-us 500 \
        --stall-budget-ms "$STALL_BUDGET_MS" 2> "$LOG" &
    DAEMON_PID=$!
    await_socket "$SOCK"

    if [ "$DAEMON_UP" -eq 1 ]; then
        # The loadgen itself runs clean (no chaos env): deadlines and
        # OVERLOADED retries are its survivability story. It may exit
        # 1 when chaos kills the daemon under it — that is clean too.
        SERVED="$WORK/served_$seed.tsv"
        lg_status=0
        "$PGB" loadgen --socket "$SOCK" "$WORK/d.short.fq" \
            --connections 2 --reads-per-request 5 \
            --timeout-us 2000000 --retries 3 \
            --dump "$SERVED" > "$WORK/loadgen_$seed.log" 2>&1 \
            || lg_status=$?
        if [ "$lg_status" -ge 128 ]; then
            cat "$WORK/loadgen_$seed.log" >&2
            fail "loadgen died of signal (exit $lg_status)"
        fi
        [ -s "$SERVED" ] && check_subset "$SERVED"
    else
        echo "  daemon exited during startup (allowed under chaos)"
    fi

    reap_daemon "$LOG"
    echo "  daemon exit $DAEMON_STATUS"
done

# Hot reload under open-loop load, no chaos: SIGHUP swaps the index
# repeatedly while requests are in flight; none may be dropped.
echo "== hot reload under open-loop load"
SOCK="$WORK/reload.sock"
LOG="$WORK/reload.log"
"$PGB" serve --index "$WORK/d.pgbi" --socket "$SOCK" \
    --max-batch 16 --max-wait-us 500 \
    --stall-budget-ms "$STALL_BUDGET_MS" 2> "$LOG" &
DAEMON_PID=$!
await_socket "$SOCK"
[ "$DAEMON_UP" -eq 1 ] || fail "reload-case daemon never came up"

"$PGB" loadgen --socket "$SOCK" "$WORK/d.short.fq" \
    --requests 400 --rate 400 --connections 2 --reads-per-request 3 \
    > "$WORK/reload_loadgen.log" 2>&1 &
LOADGEN_PID=$!
for _ in $(seq 1 8); do
    sleep 0.1
    kill -HUP "$DAEMON_PID" 2>/dev/null || true
done
lg_status=0
wait "$LOADGEN_PID" || lg_status=$?
[ "$lg_status" -eq 0 ] || {
    cat "$WORK/reload_loadgen.log" >&2
    fail "loadgen failed during hot reload (exit $lg_status)"
}
grep -q "serve: reloaded index" "$LOG" || {
    cat "$LOG" >&2
    fail "daemon logged no successful reload"
}
grep -qE " 0 error\(s\)" "$WORK/reload_loadgen.log" || {
    cat "$WORK/reload_loadgen.log" >&2
    fail "requests were dropped or failed during hot reload"
}
grep -qE "loadgen: 400 sent, 400 ok" "$WORK/reload_loadgen.log" || {
    cat "$WORK/reload_loadgen.log" >&2
    fail "not every in-flight request was answered OK"
}
reap_daemon "$LOG"
[ "$DAEMON_STATUS" -eq 0 ] || fail "reload-case daemon exited $DAEMON_STATUS"

echo "chaos harness passed ($(echo $SEEDS | wc -w) seeds + reload under load)"
