#!/usr/bin/env bash
# Tier-1 verification, exactly the ROADMAP.md line: configure, build,
# run the test suite. Used by .github/workflows/ci.yml and locally.
#
# PGB_SANITIZE=1 rebuilds under ASan+UBSan (fail on first report) so
# the fault-injection and robustness paths are exercised with memory
# and UB checking on.
#
# usage: [PGB_SANITIZE=1] scripts/ci.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"

CMAKE_ARGS=()
if [ "${PGB_SANITIZE:-0}" = "1" ]; then
    SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all \
-fno-omit-frame-pointer"
    CMAKE_ARGS+=(
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
        "-DCMAKE_CXX_FLAGS=${SAN_FLAGS}"
        "-DCMAKE_EXE_LINKER_FLAGS=${SAN_FLAGS}"
    )
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}"
cmake --build "$BUILD_DIR" -j"$(nproc)"
cd "$BUILD_DIR" && ctest --output-on-failure -j"$(nproc)"
