#!/usr/bin/env bash
# Tier-1 verification, exactly the ROADMAP.md line: configure, build,
# run the test suite. Used by .github/workflows/ci.yml and locally.
#
# usage: scripts/ci.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$(nproc)"
cd "$BUILD_DIR" && ctest --output-on-failure -j"$(nproc)"
