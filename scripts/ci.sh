#!/usr/bin/env bash
# Tier-1 verification, exactly the ROADMAP.md line: configure, build,
# run the test suite. Used by .github/workflows/ci.yml and locally.
#
# PGB_SANITIZE=1 rebuilds under ASan+UBSan (fail on first report) so
# the fault-injection and robustness paths are exercised with memory
# and UB checking on. PGB_SANITIZE=tsan rebuilds under TSan instead,
# for the work-stealing scheduler and the pool-parallel kernels.
#
# PGB_CTEST_FILTER, when set, is passed to ctest as -R so a job can
# run a subset of the suite (the TSan job runs the scheduler tests).
#
# usage: [PGB_SANITIZE=1|tsan] [PGB_CTEST_FILTER=regex] \
#        scripts/ci.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"

CMAKE_ARGS=()
SAN_FLAGS=""
if [ "${PGB_SANITIZE:-0}" = "1" ]; then
    SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all \
-fno-omit-frame-pointer"
elif [ "${PGB_SANITIZE:-0}" = "tsan" ]; then
    SAN_FLAGS="-fsanitize=thread -fno-sanitize-recover=all \
-fno-omit-frame-pointer"
fi
if [ -n "$SAN_FLAGS" ]; then
    CMAKE_ARGS+=(
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
        "-DCMAKE_CXX_FLAGS=${SAN_FLAGS}"
        "-DCMAKE_EXE_LINKER_FLAGS=${SAN_FLAGS}"
    )
fi

CTEST_ARGS=(--output-on-failure -j"$(nproc)")
if [ -n "${PGB_CTEST_FILTER:-}" ]; then
    CTEST_ARGS+=(-R "$PGB_CTEST_FILTER")
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}"
cmake --build "$BUILD_DIR" -j"$(nproc)"
cd "$BUILD_DIR" && ctest "${CTEST_ARGS[@]}"
