#!/usr/bin/env bash
# Run the full PangenomicsBench evaluation (the role of the paper
# artifact's mainRun.py): every bench binary, one log per experiment,
# collected under AllRunsOut/ plus a combined bench_output.txt.
#
# usage: scripts/run_all.sh [build-dir] [small]
set -euo pipefail

BUILD_DIR="${1:-build}"
SCALE="${2:-full}"
OUT_DIR="AllRunsOut"
mkdir -p "$OUT_DIR"

if [ "$SCALE" = "small" ]; then
    export PGB_BENCH_SCALE=small
fi

echo "== tests =="
ctest --test-dir "$BUILD_DIR" | tee "$OUT_DIR/ctest.log" | tail -2

echo "== benches ($SCALE scale) =="
: > "$OUT_DIR/bench_output.txt"
for bench in "$BUILD_DIR"/bench/*; do
    name=$(basename "$bench")
    echo "-- $name"
    "$bench" --benchmark_min_time=0.05 2>&1 | tee "$OUT_DIR/$name.log" \
        >> "$OUT_DIR/bench_output.txt"
done

echo "done; results under $OUT_DIR/"
