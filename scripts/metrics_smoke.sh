#!/usr/bin/env bash
# End-to-end smoke test of the runtime observability surface:
#
#   PGB_THREADS=4 PGB_METRICS=1 pgb build --metrics m.json --trace t.json
#
# must exit 0, print a one-line metrics summary to stderr, and emit
# metrics JSON with nonzero scheduler counters and per-site fault hit
# counts plus a trace with the pipeline's stage spans. PGB_THREADS is
# forced so the pool spawns workers even on single-core CI runners
# (otherwise tasks_spawned is legitimately zero and proves nothing).
#
# Usage: metrics_smoke.sh <path-to-pgb>
set -u

PGB=${1:?usage: metrics_smoke.sh <path-to-pgb>}
PY=python3

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

fail() {
    echo "metrics_smoke: FAIL: $*" >&2
    exit 1
}

"$PGB" simulate d 20000 4 1 >/dev/null 2>&1 \
    || fail "fixture simulate failed"

PGB_THREADS=4 PGB_METRICS=1 \
    "$PGB" build d.fa out.gfa pggb 4 \
    --metrics metrics.json --trace trace.json \
    >stdout.txt 2>stderr.txt \
    || fail "pgb build --metrics --trace exited nonzero: $(cat stderr.txt)"

grep -q '^pgb metrics: ' stderr.txt \
    || fail "PGB_METRICS=1 printed no summary line: $(cat stderr.txt)"

[ -s metrics.json ] || fail "metrics.json missing or empty"
[ -s trace.json ] || fail "trace.json missing or empty"

"$PY" - <<'EOF' || exit 1
import json
import sys

def fail(msg):
    print("metrics_smoke: FAIL:", msg, file=sys.stderr)
    sys.exit(1)

with open("metrics.json") as f:
    metrics = json.load(f)
if metrics.get("schema") != "pgb.metrics.v1":
    fail("bad schema: %r" % metrics.get("schema"))
counters = metrics["counters"]
gauges = metrics["gauges"]
if counters.get("threadpool.tasks_spawned", 0) <= 0:
    fail("threadpool.tasks_spawned is zero under PGB_THREADS=4")
fault_hits = [k for k in counters if k.startswith("fault.")
              and k.endswith(".hits")]
if not fault_hits:
    fail("no fault.<site>.hits counters in the report")
if not any(counters[k] > 0 for k in fault_hits):
    fail("every fault site reports zero hits; provider looks dead")
if "threadpool.queue_depth" not in gauges:
    fail("threadpool.queue_depth gauge missing")
# The serving survivability counters register at static init, so they
# must ride into every snapshot (zero-valued here: nothing served).
for name in ("serve.deadline_exceeded", "serve.retries_observed",
             "serve.reloads_ok", "serve.reloads_failed",
             "serve.watchdog_stalls"):
    if name not in counters:
        fail("%s counter missing from the report" % name)

with open("trace.json") as f:
    trace = json.load(f)
events = trace["traceEvents"]
if not events:
    fail("trace has no events")
names = {e["name"] for e in events}
stages = {"alignment", "induction", "polishing", "visualization"}
found = names & stages
if len(found) < 3:
    fail("expected >=3 pipeline stage spans, got %s" % sorted(names))
for e in events:
    if e["ph"] != "X" or e["dur"] < 0 or e["pid"] != 1:
        fail("malformed trace event: %r" % e)

print("metrics_smoke: OK (%d counters, %d trace events)"
      % (len(counters), len(events)))
EOF
