#!/usr/bin/env bash
# Serving smoke test (DESIGN.md §10): simulate a pangenome, build a
# .pgbi artifact, start the `pgb serve` daemon on a Unix socket, map
# the read set through it with `pgb loadgen`, and require the served
# responses to be byte-identical to a direct `pgb map --dump` run over
# the same artifact. Then exercise an open-loop run and a clean
# SIGTERM shutdown (exit 0, socket file removed).
#
# usage: serve_smoke.sh <path-to-pgb>
set -eu

PGB=${1:?usage: serve_smoke.sh <pgb>}

WORK=$(mktemp -d)
DAEMON_PID=""
cleanup() {
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -9 "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

"$PGB" simulate "$WORK/d" 20000 4 11
"$PGB" index "$WORK/d.gfa" -o "$WORK/d.pgbi" --threads 2

SOCK="$WORK/pgb.sock"
"$PGB" serve --index "$WORK/d.pgbi" --socket "$SOCK" \
    --max-batch 32 --max-wait-us 500 2> "$WORK/serve.log" &
DAEMON_PID=$!

# Sanitized builds start slowly; wait for the listener, not a guess.
for _ in $(seq 1 300); do
    [ -S "$SOCK" ] && break
    if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
        echo "FAIL: daemon died during startup" >&2
        cat "$WORK/serve.log" >&2
        exit 1
    fi
    sleep 0.1
done
test -S "$SOCK" || {
    echo "FAIL: daemon never created $SOCK" >&2
    exit 1
}

# The acceptance bar: served output is digest-identical to a direct
# mapBatch run over the same artifact and reads.
"$PGB" map --index "$WORK/d.pgbi" "$WORK/d.short.fq" vgmap 2 \
    --dump "$WORK/direct.tsv" > /dev/null
"$PGB" loadgen --socket "$SOCK" "$WORK/d.short.fq" \
    --connections 2 --reads-per-request 5 --dump "$WORK/served.tsv"
if ! cmp -s "$WORK/direct.tsv" "$WORK/served.tsv"; then
    echo "FAIL: served responses differ from direct mapBatch" >&2
    exit 1
fi
test -s "$WORK/direct.tsv" || {
    echo "FAIL: empty mapping dump" >&2
    exit 1
}

# Open-loop run: the daemon must absorb a Poisson arrival schedule.
"$PGB" loadgen --socket "$SOCK" "$WORK/d.short.fq" \
    --requests 100 --rate 200 --connections 2

# Health + hot reload through `pgb ctl`: ping answers pong, status
# returns a metrics snapshot, reload swaps the index in place and the
# daemon keeps serving byte-identical responses afterwards.
"$PGB" ctl --socket "$SOCK" ping | grep -q "^pong$" || {
    echo "FAIL: ctl ping did not answer pong" >&2
    exit 1
}
"$PGB" ctl --socket "$SOCK" status | grep -q "pgb.metrics.v1" || {
    echo "FAIL: ctl status returned no metrics snapshot" >&2
    exit 1
}
"$PGB" ctl --socket "$SOCK" reload | grep -q "reloaded" || {
    echo "FAIL: ctl reload did not confirm the swap" >&2
    exit 1
}
grep -q "serve: reloaded index" "$WORK/serve.log" || {
    echo "FAIL: daemon logged no reload line" >&2
    exit 1
}
"$PGB" loadgen --socket "$SOCK" "$WORK/d.short.fq" \
    --connections 1 --reads-per-request 5 --dump "$WORK/reloaded.tsv"
if ! cmp -s "$WORK/direct.tsv" "$WORK/reloaded.tsv"; then
    echo "FAIL: responses differ after hot reload" >&2
    exit 1
fi

# Clean shutdown: SIGTERM -> exit 0, socket unlinked, summary logged.
kill -TERM "$DAEMON_PID"
status=0
wait "$DAEMON_PID" || status=$?
if [ "$status" -ne 0 ]; then
    echo "FAIL: daemon exited $status on SIGTERM" >&2
    cat "$WORK/serve.log" >&2
    exit 1
fi
DAEMON_PID=""
if [ -e "$SOCK" ]; then
    echo "FAIL: daemon left its socket file behind" >&2
    exit 1
fi
grep -q "^serve: " "$WORK/serve.log" || {
    echo "FAIL: daemon wrote no summary line" >&2
    exit 1
}

# Forced teardown: a second SIGTERM during a wedged drain must not be
# ignored. serve.stall:1 + a disabled watchdog wedges the first batch
# for seconds; the first SIGTERM starts a drain that cannot finish
# behind it, and the second must force immediate teardown — exit 1,
# socket unlinked, a one-line explanation on stderr.
SOCK2="$WORK/pgb2.sock"
PGB_FAULT=serve.stall:1 "$PGB" serve --index "$WORK/d.pgbi" \
    --socket "$SOCK2" --max-wait-us 500 --stall-budget-ms 0 \
    2> "$WORK/serve2.log" &
DAEMON_PID=$!
for _ in $(seq 1 300); do
    [ -S "$SOCK2" ] && break
    sleep 0.1
done
test -S "$SOCK2" || {
    echo "FAIL: second daemon never created $SOCK2" >&2
    exit 1
}
# Park one request in the wedged batch; this loadgen dies with the
# daemon, so let it fail in the background.
"$PGB" loadgen --socket "$SOCK2" "$WORK/d.short.fq" \
    --reads-per-request 5 > /dev/null 2>&1 &
LOADGEN_PID=$!
sleep 1
kill -TERM "$DAEMON_PID"
sleep 0.5
kill -TERM "$DAEMON_PID"
status=0
wait "$DAEMON_PID" || status=$?
wait "$LOADGEN_PID" 2>/dev/null || true
if [ "$status" -ne 1 ]; then
    echo "FAIL: forced teardown exited $status, want 1" >&2
    cat "$WORK/serve2.log" >&2
    exit 1
fi
DAEMON_PID=""
grep -q "second signal during drain" "$WORK/serve2.log" || {
    echo "FAIL: no forced-teardown diagnostic on stderr" >&2
    cat "$WORK/serve2.log" >&2
    exit 1
}
if [ -e "$SOCK2" ]; then
    echo "FAIL: forced teardown left the socket file behind" >&2
    exit 1
fi

echo "serve smoke test passed"
