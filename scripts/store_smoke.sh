#!/usr/bin/env bash
# Build-once/map-many smoke test: simulate a pangenome, build a .pgbi
# artifact with `pgb index`, then serve every mapping profile from the
# same artifact with `pgb map --index` — the end-to-end workflow
# README's "Build once, map many" section documents.
#
# usage: store_smoke.sh <path-to-pgb>
set -eu

PGB=${1:?usage: store_smoke.sh <pgb>}

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

"$PGB" simulate "$WORK/d" 20000 4 11
"$PGB" index "$WORK/d.gfa" -o "$WORK/d.pgbi" --threads 2
test -s "$WORK/d.pgbi" || {
    echo "FAIL: pgb index left no artifact" >&2
    exit 1
}

# One artifact serves every profile (it always carries the GBWT).
for profile in vgmap giraffe graphaligner; do
    "$PGB" map --index "$WORK/d.pgbi" "$WORK/d.short.fq" "$profile" 2
done
"$PGB" map --index "$WORK/d.pgbi" "$WORK/d.long.fq" minigraph 2

# The artifact path must agree with the in-memory path read for read.
direct=$("$PGB" map "$WORK/d.gfa" "$WORK/d.short.fq" vgmap 1 |
         grep -o 'mapped [0-9]*/[0-9]*')
warm=$("$PGB" map --index "$WORK/d.pgbi" "$WORK/d.short.fq" vgmap 1 |
       grep -o 'mapped [0-9]*/[0-9]*')
if [ "$direct" != "$warm" ]; then
    echo "FAIL: artifact path diverged: '$direct' vs '$warm'" >&2
    exit 1
fi

echo "store smoke test passed ($warm via artifact)"
