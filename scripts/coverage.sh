#!/usr/bin/env bash
# Line-coverage job: build with --coverage, run the test suite, and
# aggregate line coverage over src/ — then enforce the recorded floor
# (scripts/coverage_baseline.txt) so coverage can only ratchet up.
#
# Usage: coverage.sh [build-dir]
#
# Environment:
#   PGB_COVERAGE_WRITE_BASELINE=1  rewrite the baseline to the
#                                  measured value minus a 2% margin
#
# Uses gcovr when installed; otherwise falls back to `gcov
# --json-format` plus a python3 aggregator (the toolchain's gcov is
# always present next to gcc).
set -euo pipefail

cd "$(dirname "$0")/.."
ROOT=$(pwd)
BUILD=${1:-build-cov}
BASELINE_FILE=scripts/coverage_baseline.txt

cmake -B "$BUILD" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="--coverage" \
    -DCMAKE_EXE_LINKER_FLAGS="--coverage" >/dev/null
cmake --build "$BUILD" -j "$(nproc)"
(cd "$BUILD" && ctest --output-on-failure)

if command -v gcovr >/dev/null 2>&1; then
    PERCENT=$(gcovr -r "$ROOT" --filter "$ROOT/src/" \
        --object-directory "$BUILD" --print-summary 2>/dev/null |
        sed -n 's/^lines: \([0-9.]*\)%.*/\1/p')
else
    # gcov --json-format emits one JSON document per object file;
    # aggregate per-source so headers included from many TUs count
    # a line as covered if ANY inclusion executed it.
    JSONL="$BUILD/coverage_gcov.jsonl"
    : > "$JSONL"
    find "$BUILD" -name '*.gcda' -print0 |
        while IFS= read -r -d '' gcda; do
            gcov -t --json-format "$gcda" >> "$JSONL" 2>/dev/null || true
        done
    PERCENT=$(python3 - "$ROOT" "$JSONL" <<'EOF'
import json
import sys

root, jsonl = sys.argv[1], sys.argv[2]
lines_all = {}   # source path -> set of instrumentable lines
lines_hit = {}   # source path -> set of executed lines

def documents(text):
    # gcov's stdout layout varies; decode back-to-back JSON documents
    # regardless of newlines.
    decoder = json.JSONDecoder()
    pos = 0
    while pos < len(text):
        while pos < len(text) and text[pos] in " \t\r\n":
            pos += 1
        if pos >= len(text):
            break
        try:
            data, pos = decoder.raw_decode(text, pos)
        except ValueError:
            break
        yield data

with open(jsonl) as f:
    text = f.read()
for data in documents(text):
    for unit in data.get("files", []):
        path = unit["file"]
        if not path.startswith("/"):
            path = root + "/" + path
        if "/src/" not in path:
            continue
        allset = lines_all.setdefault(path, set())
        hitset = lines_hit.setdefault(path, set())
        for line in unit.get("lines", []):
            allset.add(line["line_number"])
            if line.get("count", 0) > 0:
                hitset.add(line["line_number"])
total = sum(len(s) for s in lines_all.values())
hit = sum(len(s) for s in lines_hit.values())
if total == 0:
    print("0.0")
else:
    print("%.1f" % (100.0 * hit / total))
EOF
)
fi

if [ -z "${PERCENT:-}" ]; then
    echo "coverage: could not compute a line-coverage figure" >&2
    exit 1
fi
echo "coverage: src/ line coverage ${PERCENT}%"

if [ "${PGB_COVERAGE_WRITE_BASELINE:-0}" = "1" ]; then
    FLOOR=$(python3 -c "print('%.1f' % (float('$PERCENT') - 2.0))")
    echo "$FLOOR" > "$BASELINE_FILE"
    echo "coverage: baseline floor rewritten to ${FLOOR}%"
    exit 0
fi

FLOOR=$(cat "$BASELINE_FILE")
python3 -c "
import sys
measured, floor = float('$PERCENT'), float('$FLOOR')
if measured < floor:
    print('coverage: FAIL: %.1f%% is below the %.1f%% floor'
          % (measured, floor), file=sys.stderr)
    sys.exit(1)
print('coverage: OK (floor %.1f%%)' % floor)
"
