/**
 * @file
 * Figure 3: graph-building pipeline stage breakdown for
 * Minigraph-Cactus and PGGB (alignment / graph induction / polishing
 * / visualization) on a 14-assembly chromosome workload.
 *
 * Reproduction target (shape): both pipelines spend most of their
 * time in the alignment stage; PGGB's induction is the transclosure
 * kernel; polishing is POA-dominated; visualization is PGSGD.
 */

#include "bench_common.hpp"
#include "pipeline/graph_build.hpp"

int
main()
{
    using namespace pgb;
    using namespace pgb::bench;

    banner("Figure 3: graph-building stage breakdown (14 assemblies)");
    const size_t base = smallScale() ? 20000 : 60000;
    const auto pangenome =
        synth::simulatePangenome(synth::mGraphLikeConfig(base, 42));
    std::vector<seq::Sequence> assemblies;
    assemblies.push_back(pangenome.reference);
    for (const auto &hap : pangenome.haplotypes)
        assemblies.push_back(hap); // 1 + 14 = 15 ~ the paper's 14

    auto print_report = [](const char *name,
                           const pipeline::GraphBuildReport &report) {
        const double total = report.timers.total();
        std::printf("%-18s total %8.2f s\n", name, total);
        for (const char *stage : {"alignment", "induction",
                                  "polishing", "visualization"}) {
            std::printf("    %-14s %8.2f s (%5.1f%%)\n", stage,
                        report.timers.seconds(stage),
                        total == 0.0 ? 0.0
                                     : 100.0 *
                                           report.timers.seconds(stage) /
                                           total);
        }
        const auto stats = report.graph.stats();
        std::printf("    graph: %zu nodes, %zu edges, %zu bases; "
                    "stress %.3f -> %.3f\n",
                    stats.nodeCount, stats.edgeCount, stats.totalBases,
                    report.layoutStressBefore,
                    report.layoutStressAfter);
    };

    {
        pipeline::McParams params;
        params.threads = 1;
        const auto report =
            pipeline::buildMinigraphCactus(assemblies, params);
        print_report("Minigraph-Cactus", report);
        std::printf("    bubbles discovered: %llu\n",
                    static_cast<unsigned long long>(report.bubbles));
    }
    {
        pipeline::PggbParams params;
        params.threads = 1;
        const auto report = pipeline::buildPggb(assemblies, params);
        print_report("PGGB", report);
        std::printf("    matches: %llu; closure classes: %llu; "
                    "POA cells: %llu\n",
                    static_cast<unsigned long long>(report.matches),
                    static_cast<unsigned long long>(
                        report.closureClasses),
                    static_cast<unsigned long long>(report.poaCells));
    }
    std::printf("\nPaper Figure 3: both pipelines are dominated by "
                "their alignment stages (MC: minigraph mapping with "
                "GWFA; PGGB: wfmash all-to-all with WFA); scaled to "
                "HPRC, building takes ~2 weeks.\n");
    return 0;
}
