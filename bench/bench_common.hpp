/**
 * @file
 * Shared infrastructure for the evaluation-reproduction benches: the
 * standard scaled-down chromosome-20 workload, kernel input capture,
 * the single-threaded characterization harness (probe -> cache sim ->
 * branch sim -> top-down model), and table printing helpers.
 *
 * Every bench binary regenerates one table or figure of the paper
 * (see DESIGN.md §3) and prints the paper's reported values next to
 * the measured/modeled ones where applicable.
 */

#ifndef PGB_BENCH_COMMON_HPP
#define PGB_BENCH_COMMON_HPP

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include <memory>

#include "core/io.hpp"
#include "core/probe.hpp"
#include "core/rng.hpp"
#include "core/timer.hpp"
#include "layout/pgsgd.hpp"
#include "obs/report.hpp"
#include "pipeline/mapper.hpp"
#include "prof/topdown.hpp"
#include "prof/trace_probe.hpp"
#include "seq/read_sim.hpp"
#include "synth/pangenome_sim.hpp"

namespace pgb::bench {

/** Scale knob: PGB_BENCH_SCALE=small shrinks every workload. */
inline bool
smallScale()
{
    const char *env = std::getenv("PGB_BENCH_SCALE");
    return env != nullptr && std::string(env) == "small";
}

/** The standard scaled-down chr20 stand-in shared by the benches. */
struct StandardWorkload
{
    synth::Pangenome pangenome;
    std::vector<seq::Sequence> shortReads; ///< 150 bp Illumina-like
    std::vector<seq::Sequence> longReads;  ///< scaled HiFi-like
    size_t longReadLength = 0;
};

inline StandardWorkload
makeStandardWorkload(uint64_t seed = 42)
{
    StandardWorkload w;
    const size_t base = smallScale() ? 40000 : 150000;
    const size_t n_short = smallScale() ? 100 : 400;
    const size_t n_long = smallScale() ? 10 : 30;
    w.longReadLength = smallScale() ? 1000 : 2500;

    w.pangenome =
        synth::simulatePangenome(synth::mGraphLikeConfig(base, seed));
    seq::ReadSimulator short_sim(seq::ReadProfile::shortRead(),
                                 seed ^ 0x111);
    seq::ReadProfile long_profile = seq::ReadProfile::longRead();
    long_profile.readLength = w.longReadLength;
    seq::ReadSimulator long_sim(long_profile, seed ^ 0x222);
    const auto &haps = w.pangenome.haplotypes;
    for (size_t r = 0; r < n_short; ++r)
        w.shortReads.push_back(short_sim.sample(haps[r % haps.size()])
                                   .read);
    for (size_t r = 0; r < n_long; ++r)
        w.longReads.push_back(long_sim.sample(haps[r % haps.size()])
                                  .read);
    return w;
}

/** One kernel's characterization outputs (Figures 6-8, Table 6). */
struct Characterization
{
    std::string name;
    core::CountingProbe counts;
    prof::TopDownResult topdown;
    double mpkiL1 = 0.0, mpkiL2 = 0.0, mpkiL3 = 0.0;
    double branchMispredictRate = 0.0;
};

/**
 * Run @p body once with a TraceProbe wired to the Machine-B cache
 * model and the gshare branch model, then evaluate the top-down model.
 */
inline Characterization
characterize(std::string name,
             const std::function<void(prof::TraceProbe &)> &body)
{
    Characterization out;
    out.name = std::move(name);
    auto cache = prof::CacheSim::machineB();
    prof::BranchSim branches;
    prof::TraceProbe probe(cache, branches);
    body(probe);
    out.counts = probe;
    out.topdown = prof::analyzeTopDown(probe, cache, branches);
    const uint64_t ops = probe.totalOps();
    out.mpkiL1 = cache.exclusiveMpki(0, ops);
    out.mpkiL2 = cache.exclusiveMpki(1, ops);
    out.mpkiL3 = cache.exclusiveMpki(2, ops);
    out.branchMispredictRate = branches.mispredictRate();
    return out;
}

/**
 * A long 1 bp-node chain pangenome for the layout kernels: the paper
 * runs PGSGD on whole graphs whose layout footprint exceeds the
 * last-level caches, unlike the cache-resident mapping subgraphs.
 */
struct LayoutChain
{
    std::unique_ptr<layout::PathIndex> index;
    size_t nodeCount = 0;
};

inline LayoutChain
makeLayoutChain(size_t n_nodes, uint64_t seed = 4242)
{
    graph::PanGraph big;
    std::vector<graph::Handle> steps;
    steps.reserve(n_nodes);
    core::Rng rng(seed);
    for (size_t i = 0; i < n_nodes; ++i) {
        const auto node = big.addNode(seq::Sequence(
            std::vector<uint8_t>{static_cast<uint8_t>(rng.below(4))}));
        if (i > 0) {
            big.addEdge(graph::Handle(node - 1, false),
                        graph::Handle(node, false));
        }
        steps.emplace_back(node, false);
    }
    big.addPath("layout", std::move(steps));
    LayoutChain chain;
    chain.index = std::make_unique<layout::PathIndex>(big);
    chain.nodeCount = big.nodeCount();
    return chain;
}

/**
 * Dump the process-wide runtime metrics next to a bench's result
 * JSON, in the same "pgb.metrics.v1" schema the CLI's --metrics flag
 * emits, so bench runs and production runs are comparable with the
 * same tooling. Call once, at the end of main().
 */
inline void
writeBenchMetrics(const char *bench_name)
{
    const std::string path =
        std::string("BENCH_") + bench_name + ".metrics.json";
    core::CheckedWriter out(path);
    obs::Report::collect().write(out);
    out.finish();
    std::printf("runtime metrics -> %s\n", path.c_str());
}

/** Print a horizontal rule + title. */
inline void
banner(const char *title)
{
    std::printf("\n================================================="
                "=============================\n%s\n"
                "=================================================="
                "============================\n",
                title);
}

} // namespace pgb::bench

#endif // PGB_BENCH_COMMON_HPP
