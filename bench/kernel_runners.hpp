/**
 * @file
 * Instrumentable runners for the seven CPU kernels, built on kernel
 * input traces captured exactly as the paper does (run the pipeline
 * up to the kernel boundary and store its inputs, §4.2).
 *
 * Each runner is a callable taking any Probe; the characterization
 * benches instantiate them with prof::TraceProbe, the timing benches
 * with core::NullProbe.
 */

#ifndef PGB_BENCH_KERNEL_RUNNERS_HPP
#define PGB_BENCH_KERNEL_RUNNERS_HPP

#include <memory>
#include <vector>

#include "align/gbv.hpp"
#include "align/gssw.hpp"
#include "align/gwfa.hpp"
#include "bench_common.hpp"
#include "build/transclosure_impl.hpp"
#include "core/rng.hpp"
#include "index/gbwt.hpp"
#include "layout/pgsgd.hpp"
#include "pipeline/mapper.hpp"
#include "synth/pangenome_sim.hpp"

namespace pgb::bench {

/** Captured inputs for every CPU kernel of Table 3. */
struct KernelInputs
{
    // GSSW: subgraphs + short-read fragments (from vg map).
    std::vector<pipeline::GsswTrace> gssw;
    // GBV: subgraphs + long reads (from GraphAligner).
    std::vector<pipeline::GbvTrace> gbv;
    // GBWT: the index plus haplotype-subpath queries.
    std::unique_ptr<index::GbwtIndex> gbwt;
    std::vector<std::vector<graph::Handle>> gbwtQueries;
    // GWFA: long-read and chromosome-segment gap traces.
    std::vector<pipeline::GwfaTrace> gwfaLr;
    std::vector<pipeline::GwfaTrace> gwfaCr;
    // TC: catalog + matches.
    std::unique_ptr<build::SequenceCatalog> tcCatalog;
    std::vector<build::MatchSegment> tcMatches;
    // PGSGD: path index + node count. The layout kernel gets its own
    // larger graph: the paper notes visualization runs on the whole
    // graph with a footprint far beyond the LLC (1.7 GB for chr20),
    // unlike the cache-resident mapping subgraphs.
    std::unique_ptr<layout::PathIndex> pathIndex;
    size_t nodeCount = 0;
};

inline KernelInputs
captureKernelInputs(const StandardWorkload &w)
{
    KernelInputs in;
    const auto &graph = w.pangenome.graph;

    {
        pipeline::MapperConfig config;
        config.profile = pipeline::ToolProfile::kVgMap;
        pipeline::Seq2GraphMapper mapper(graph, config);
        in.gssw = mapper.captureAlignTraces(
            w.shortReads, smallScale() ? 20 : 60);
    }
    {
        pipeline::MapperConfig config;
        config.profile = pipeline::ToolProfile::kGraphAligner;
        pipeline::Seq2GraphMapper mapper(graph, config);
        in.gbv = mapper.captureAlignTraces(w.longReads,
                                           smallScale() ? 3 : 8);
    }
    {
        pipeline::MapperConfig config;
        config.profile = pipeline::ToolProfile::kMinigraph;
        pipeline::Seq2GraphMapper mapper(graph, config);
        in.gwfaLr = mapper.captureGwfaTraces(w.longReads,
                                             smallScale() ? 10 : 40);
        // Chromosome mode: map one whole haplotype in large segments.
        std::vector<seq::Sequence> segments;
        const auto &chrom = w.pangenome.haplotypes[0];
        const size_t seg = smallScale() ? 5000 : 15000;
        for (size_t s = 0; s + seg <= chrom.size(); s += seg)
            segments.push_back(chrom.slice(s, seg));
        in.gwfaCr = mapper.captureGwfaTraces(segments,
                                             smallScale() ? 4 : 10);
    }
    {
        in.gbwt = std::make_unique<index::GbwtIndex>(graph);
        core::Rng rng(777);
        const size_t n_queries = smallScale() ? 2000 : 20000;
        for (size_t q = 0; q < n_queries; ++q) {
            const auto path = static_cast<graph::PathId>(
                rng.below(graph.pathCount()));
            const auto &steps = graph.pathSteps(path);
            const size_t len = 1 + rng.below(std::min<size_t>(
                100, steps.size()));
            const size_t start = rng.below(steps.size() - len + 1);
            in.gbwtQueries.emplace_back(
                steps.begin() + static_cast<ptrdiff_t>(start),
                steps.begin() + static_cast<ptrdiff_t>(start + len));
        }
    }
    {
        std::vector<seq::Sequence> seqs;
        seqs.push_back(w.pangenome.reference);
        for (const auto &hap : w.pangenome.haplotypes)
            seqs.push_back(hap);
        in.tcCatalog = std::make_unique<build::SequenceCatalog>(seqs);
        for (const auto &m :
             synth::groundTruthMatches(w.pangenome, 16)) {
            in.tcMatches.push_back(
                {in.tcCatalog->globalOffset(0, m.refStart),
                 in.tcCatalog->globalOffset(m.haplotype + 1,
                                            m.hapStart),
                 m.length});
        }
    }
    {
        // Chain graph big enough that the layout exceeds the 24 MB L3
        // (2 endpoints x 2 coordinates x 8 B per node).
        auto chain =
            makeLayoutChain(smallScale() ? 300000 : 1200000);
        in.pathIndex = std::move(chain.index);
        in.nodeCount = chain.nodeCount;
    }
    return in;
}

// --- Per-kernel instrumented runners. Each returns a throwaway
// checksum so the work cannot be optimized out.

template <typename Probe>
uint64_t
runGssw(const KernelInputs &in, Probe &probe, bool keep_matrices = true)
{
    uint64_t sink = 0;
    align::GsswOptions options;
    options.keepMatrices = keep_matrices;
    for (const auto &trace : in.gssw) {
        const auto result = align::gsswAlign(
            trace.subgraph, trace.query,
            align::ScoreParams::mappingDefaults(), options, probe);
        sink += static_cast<uint64_t>(result.best.score);
    }
    return sink;
}

template <typename Probe>
uint64_t
runGbv(const KernelInputs &in, Probe &probe)
{
    uint64_t sink = 0;
    align::GbvOptions options;
    options.traceback = true; // the paper's kernel includes traceback
    for (const auto &trace : in.gbv) {
        const auto result =
            align::gbvAlign(trace.subgraph, trace.query, options,
                            probe);
        sink += static_cast<uint64_t>(result.distance);
    }
    return sink;
}

template <typename Probe>
uint64_t
runGbwt(const KernelInputs &in, Probe &probe)
{
    uint64_t sink = 0;
    for (const auto &query : in.gbwtQueries) {
        const auto range = in.gbwt->find(query, probe);
        sink += range.size();
        if (!range.empty())
            sink += in.gbwt->nextNodes(range, probe).size();
    }
    return sink;
}

template <typename Probe>
uint64_t
runGwfa(const std::vector<pipeline::GwfaTrace> &traces, Probe &probe)
{
    uint64_t sink = 0;
    for (const auto &trace : traces) {
        const auto result = align::gwfaAlign(
            trace.subgraph, trace.query, trace.startNode, probe,
            static_cast<int32_t>(trace.query.size() / 2 + 64));
        sink += static_cast<uint64_t>(result.distance + 1);
    }
    return sink;
}

template <typename Probe>
uint64_t
runTc(const KernelInputs &in, Probe &probe)
{
    const auto result = build::tcdetail::transcloseImpl(
        *in.tcCatalog, in.tcMatches, build::TcOptions{}, probe);
    return result.closureClasses;
}

template <typename Probe>
uint64_t
runPgsgd(const KernelInputs &in, Probe &probe)
{
    layout::Layout layout(in.nodeCount, 99);
    layout::PgsgdParams params;
    params.iterations = 2; // microarchitecture stabilizes immediately
    params.threads = 1;    // characterization is single-threaded (§4.1)
    const auto result =
        layout::pgsgdLayout(*in.pathIndex, layout, params, probe);
    return result.updates;
}

} // namespace pgb::bench

#endif // PGB_BENCH_KERNEL_RUNNERS_HPP
