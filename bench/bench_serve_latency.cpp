/**
 * @file
 * Serving latency/throughput characterization of the `pgb serve`
 * daemon (DESIGN.md §10): one in-process daemon over the standard
 * workload's context, driven by the loadgen library.
 *
 * Methodology: first a closed-loop saturation run establishes the
 * daemon's capacity (requests/second with one request outstanding per
 * connection), then open-loop Poisson runs at fractions of that
 * capacity trace the latency-vs-load curve — client-side p50/p99/p999
 * from exact order statistics, measured from each request's scheduled
 * arrival so queueing delay is charged to the server (no coordinated
 * omission). This is the standard serving-benchmark shape (cf.
 * closed- vs open-loop methodology in serving papers), applied to
 * the paper's dominant kernel: short-read mapping.
 *
 * Emits BENCH_serve.json: the saturation point plus one entry per
 * arrival rate with {rate_rps, throughput_rps, p50_ms, p99_ms,
 * p999_ms, max_ms, ok, overloaded}.
 */

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/io.hpp"
#include "pipeline/context.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"

int
main()
{
    using namespace pgb;
    using namespace pgb::bench;

    banner("pgb serve: latency and throughput under load");
    const auto workload = makeStandardWorkload();

    auto context = pipeline::MappingContext::Builder()
                       .fromGraph(workload.pangenome.graph)
                       .threads(core::hardwareThreads())
                       .build();

    // sun_path caps at ~107 bytes; /tmp keeps the path short no
    // matter how deep the build tree is.
    const std::string socket_path =
        "/tmp/pgb_bench_serve_" + std::to_string(::getpid()) + ".sock";
    ::unlink(socket_path.c_str());

    serve::ServeConfig serve_config;
    serve_config.socketPath = socket_path;
    serve_config.maxBatchReads = 64;
    serve_config.maxWaitUs = 1000;
    serve_config.queueDepth = 512;
    serve::Server server(context, serve_config);
    std::thread daemon([&server] { server.run(); });
    if (!server.waitReady(10000)) {
        std::fprintf(stderr, "daemon failed to start\n");
        return 1;
    }

    const size_t requests = smallScale() ? 200 : 1000;
    const size_t connections = 4;

    serve::LoadgenConfig base;
    base.socketPath = socket_path;
    base.connections = connections;
    base.requests = requests;
    base.readsPerRequest = 2;

    // Closed loop first: the saturation throughput the open-loop
    // rates are scaled from.
    const serve::LoadgenReport saturation =
        serve::runLoadgen(base, workload.shortReads);
    std::printf("closed loop (%zu conn): %10.1f ok/s, p50 %.3f ms, "
                "p99 %.3f ms\n",
                connections, saturation.throughputRps,
                static_cast<double>(saturation.p50Nanos) / 1e6,
                static_cast<double>(saturation.p99Nanos) / 1e6);

    struct Point
    {
        double rate = 0.0;
        serve::LoadgenReport report;
    };
    std::vector<Point> points;
    const double fractions[] = {0.25, 0.5, 0.8};
    std::printf("%10s %12s %10s %10s %10s %6s %6s\n", "rate(rps)",
                "thru(ok/s)", "p50(ms)", "p99(ms)", "p999(ms)", "ok",
                "shed");
    for (const double fraction : fractions) {
        serve::LoadgenConfig config = base;
        config.rate = saturation.throughputRps * fraction;
        if (config.rate < 1.0)
            config.rate = 1.0;
        Point point;
        point.rate = config.rate;
        point.report = serve::runLoadgen(config, workload.shortReads);
        std::printf(
            "%10.1f %12.1f %10.3f %10.3f %10.3f %6llu %6llu\n",
            point.rate, point.report.throughputRps,
            static_cast<double>(point.report.p50Nanos) / 1e6,
            static_cast<double>(point.report.p99Nanos) / 1e6,
            static_cast<double>(point.report.p999Nanos) / 1e6,
            static_cast<unsigned long long>(point.report.ok),
            static_cast<unsigned long long>(
                point.report.overloaded));
        points.push_back(point);
    }

    server.stop();
    daemon.join();

    {
        core::CheckedWriter json("BENCH_serve.json");
        auto &out = json.stream();
        out << "{\n  \"closed_loop\": {\n"
            << "    \"connections\": " << connections << ",\n"
            << "    \"throughput_rps\": " << saturation.throughputRps
            << ",\n    \"p50_ms\": "
            << static_cast<double>(saturation.p50Nanos) / 1e6
            << ",\n    \"p99_ms\": "
            << static_cast<double>(saturation.p99Nanos) / 1e6
            << ",\n    \"p999_ms\": "
            << static_cast<double>(saturation.p999Nanos) / 1e6
            << "\n  },\n  \"open_loop\": [\n";
        for (size_t i = 0; i < points.size(); ++i) {
            const Point &p = points[i];
            out << "    {\"rate_rps\": " << p.rate
                << ", \"throughput_rps\": " << p.report.throughputRps
                << ", \"p50_ms\": "
                << static_cast<double>(p.report.p50Nanos) / 1e6
                << ", \"p99_ms\": "
                << static_cast<double>(p.report.p99Nanos) / 1e6
                << ", \"p999_ms\": "
                << static_cast<double>(p.report.p999Nanos) / 1e6
                << ", \"max_ms\": "
                << static_cast<double>(p.report.maxNanos) / 1e6
                << ", \"ok\": " << p.report.ok
                << ", \"overloaded\": " << p.report.overloaded << "}"
                << (i + 1 < points.size() ? "," : "") << "\n";
        }
        out << "  ]\n}\n";
        json.finish();
        std::printf("wrote BENCH_serve.json\n");
    }

    writeBenchMetrics("serve");
    return 0;
}
