/**
 * @file
 * Table 4: measured kernel execution times on their captured datasets
 * (the paper's Machine B wall-clock numbers, here on scaled-down
 * synthetic inputs — absolute values differ, the ranking is the
 * reproducible signal: GWFA-cr >> TC > PGSGD > GBV > GSSW > GBWT).
 */

#include "align/dispatch.hpp"
#include "bench_common.hpp"
#include "kernel_runners.hpp"

int
main()
{
    using namespace pgb;
    using namespace pgb::bench;

    banner("Table 4: kernel execution time (uninstrumented)");
    std::printf("simd dispatch: %s\n",
                align::simdLevelName(align::activeSimdLevel()));
    const auto workload = makeStandardWorkload();
    const auto inputs = captureKernelInputs(workload);
    core::NullProbe null_probe;

    struct Row
    {
        const char *name;
        std::function<uint64_t()> run;
        double paperSeconds;
    };
    const Row rows[] = {
        {"GBV", [&] { return runGbv(inputs, null_probe); }, 192},
        {"GSSW", [&] { return runGssw(inputs, null_probe); }, 35},
        {"GBWT", [&] { return runGbwt(inputs, null_probe); }, 23},
        {"GWFA-cr",
         [&] { return runGwfa(inputs.gwfaCr, null_probe); }, 16657},
        {"GWFA-lr",
         [&] { return runGwfa(inputs.gwfaLr, null_probe); }, 720},
        {"PGSGD", [&] { return runPgsgd(inputs, null_probe); }, 285},
        {"TC", [&] { return runTc(inputs, null_probe); }, 755},
    };

    std::printf("%-8s %12s %12s %14s\n", "kernel", "measured(ms)",
                "paper(s)", "inputs");
    uint64_t sink = 0;
    for (const Row &row : rows) {
        core::WallTimer timer;
        sink += row.run();
        std::printf("%-8s %12.1f %12.0f\n", row.name,
                    timer.milliseconds(), row.paperSeconds);
    }
    std::printf("\n(checksum %llu; paper Table 4 measured GBV 192s, "
                "GSSW 35s, GBWT 23s, GWFA-cr 16657s, GWFA-lr 720s, "
                "PGSGD 285s, TC 755s on full chr20 data)\n",
                static_cast<unsigned long long>(sink));
    writeBenchMetrics("table4");
    return 0;
}
