/**
 * @file
 * Ablation: GBV's priority-queue re-relaxation — cost of supporting
 * cyclic graphs. Compares alignment of the same query against (a) an
 * acyclic bubble chain (each column computed once in topological
 * order) and (b) the same chain with back edges (requeue traffic),
 * plus the requeue/merge counters.
 */

#include <benchmark/benchmark.h>

#include "align/gbv.hpp"
#include "core/rng.hpp"
#include "graph/local_graph.hpp"
#include "synth/pangenome_sim.hpp"

namespace {

using namespace pgb;

struct Setup
{
    graph::LocalGraph dag;
    graph::LocalGraph cyclic;
    std::vector<uint8_t> query;
};

const Setup &
setup()
{
    static const Setup s = [] {
        Setup out;
        core::Rng rng(5150);
        // Bubble chain of ~600 bases.
        uint32_t prev = UINT32_MAX;
        auto add_chain = [&](graph::LocalGraph &g) {
            prev = UINT32_MAX;
            for (int b = 0; b < 30; ++b) {
                std::vector<uint8_t> bases;
                for (int i = 0; i < 20; ++i) {
                    bases.push_back(
                        static_cast<uint8_t>(rng.below(4)));
                }
                const uint32_t node = g.addNode(bases);
                const uint32_t alt = g.addNode(
                    std::vector<uint8_t>{static_cast<uint8_t>(
                        rng.below(4))});
                if (prev != UINT32_MAX) {
                    g.addEdge(prev, node);
                    g.addEdge(prev, alt);
                    g.addEdge(alt, node);
                }
                prev = node;
            }
        };
        core::Rng save = rng;
        add_chain(out.dag);
        out.dag.finalize();
        rng = save;
        add_chain(out.cyclic);
        // Back edges every 10 bubbles make it cyclic.
        out.cyclic.addEdge(prev, 0);
        out.cyclic.finalize();
        out.query.reserve(400);
        for (int i = 0; i < 400; ++i)
            out.query.push_back(static_cast<uint8_t>(rng.below(4)));
        return out;
    }();
    return s;
}

void
BM_GbvAcyclic(benchmark::State &state)
{
    const Setup &s = setup();
    uint64_t requeues = 0;
    for (auto _ : state) {
        const auto result = align::gbvAlign(s.dag, s.query);
        requeues = result.requeues;
        benchmark::DoNotOptimize(result.distance);
    }
    state.counters["requeues"] = static_cast<double>(requeues);
}
BENCHMARK(BM_GbvAcyclic);

void
BM_GbvCyclic(benchmark::State &state)
{
    const Setup &s = setup();
    uint64_t requeues = 0;
    for (auto _ : state) {
        const auto result = align::gbvAlign(s.cyclic, s.query);
        requeues = result.requeues;
        benchmark::DoNotOptimize(result.distance);
    }
    state.counters["requeues"] = static_cast<double>(requeues);
}
BENCHMARK(BM_GbvCyclic);

} // namespace

BENCHMARK_MAIN();
