/**
 * @file
 * Shard-set scaling: what does the beyond-RAM `GraphSource` cost when
 * the pangenome *does* fit? Three regimes over the same multi-component
 * union workload (DESIGN.md §13):
 *
 *  - monolith — the in-memory baseline every shard regime must match
 *    byte-for-byte (the Shard test suite pins that; this bench prices
 *    it);
 *  - sharded, unbounded cache — pure indirection cost: per-shard
 *    seeding, k-way merge, step-offset projection, no evictions;
 *  - sharded, one-shard budget — the thrash regime: the LRU evicts on
 *    nearly every cross-component read, so the mmap/load path itself
 *    is on the clock.
 *
 * Methodology (bench box is noisy): interleaved min-of-3 — the three
 * regimes alternate inside each repeat so drift is charged to all
 * alike. Eviction/load/hit counts come from the shard.* obs counters,
 * delta'd around each regime's repeats. Emits BENCH_shard.json plus
 * the standard BENCH_shard.metrics.json sidecar.
 */

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/io.hpp"
#include "core/thread_pool.hpp"
#include "core/timer.hpp"
#include "obs/metrics.hpp"
#include "pipeline/context.hpp"
#include "store/shard_build.hpp"

namespace {

using namespace pgb;
using namespace pgb::bench;

constexpr uint64_t kMiB = 1ull << 20;

/** Append @p src to @p dst as a fresh connected component (same
 *  disjoint-union construction the Shard test suite maps against). */
void
appendChromosome(graph::PanGraph &dst, const synth::Pangenome &src,
                 const std::string &tag)
{
    const auto &g = src.graph;
    const auto base = static_cast<uint32_t>(dst.nodeCount());
    for (uint32_t n = 0; n < g.nodeCount(); ++n)
        dst.addNode(g.nodeSequence(n));
    for (uint32_t n = 0; n < g.nodeCount(); ++n) {
        for (const bool reverse : {false, true}) {
            const graph::Handle from(n, reverse);
            for (const graph::Handle to : g.successors(from))
                dst.addEdge(graph::Handle(base + n, reverse),
                            graph::Handle(base + to.node(),
                                          to.isReverse()));
        }
    }
    for (graph::PathId p = 0; p < g.pathCount(); ++p) {
        std::vector<graph::Handle> steps;
        steps.reserve(g.pathSteps(p).size());
        for (const graph::Handle s : g.pathSteps(p))
            steps.emplace_back(base + s.node(), s.isReverse());
        dst.addPath(tag + "." + g.pathName(p), std::move(steps));
    }
}

struct Regime
{
    std::string name;
    std::shared_ptr<const pipeline::MappingContext> context;
};

struct Result
{
    std::string regime;
    double readsPerSec = 0.0; ///< min-of-3 wall clock
    double mappedFraction = 0.0;
    uint64_t evictions = 0; ///< summed over the measured repeats
    uint64_t loads = 0;
    uint64_t hits = 0;
};

/** One timed pass; shard.* counter deltas accumulate into @p r. */
void
measureOnce(const Regime &regime, const std::vector<seq::Sequence> &reads,
            Result &r)
{
    auto config =
        pipeline::MapperConfig::forTool(pipeline::ToolProfile::kVgMap);
    config.threads = 1;
    const auto before = obs::snapshot();
    core::WallTimer timer;
    const auto stats = pipeline::mapBatch(*regime.context, config, reads);
    const double seconds = timer.seconds();
    const auto after = obs::snapshot();
    r.regime = regime.name;
    r.readsPerSec =
        std::max(r.readsPerSec,
                 static_cast<double>(reads.size()) / seconds);
    r.mappedFraction = static_cast<double>(stats.mappedReads) /
                       static_cast<double>(reads.size());
    r.evictions += after.counter("shard.evictions") -
                   before.counter("shard.evictions");
    r.loads +=
        after.counter("shard.loads") - before.counter("shard.loads");
    r.hits += after.counter("shard.hits") - before.counter("shard.hits");
}

} // namespace

int
main()
{
    banner("shard scaling: monolith vs lazily-mmapped shard set");

    // A multi-component union — the shape `pgb shard` partitions.
    // Per-chromosome scale matches the standard workload so the
    // monolith column is comparable with the other benches.
    const size_t chromosomes = 3;
    const size_t bases = smallScale() ? 40000 : 150000;
    const size_t reads_per_chromosome = smallScale() ? 40 : 150;
    graph::PanGraph graph;
    std::vector<seq::Sequence> reads;
    for (size_t c = 0; c < chromosomes; ++c) {
        synth::PangenomeConfig config =
            synth::mGraphLikeConfig(bases, 0xc0 + c);
        config.haplotypeCount = 2;
        const auto pangenome = synth::simulatePangenome(config);
        appendChromosome(graph, pangenome, "chr" + std::to_string(c));
        seq::ReadSimulator sim(seq::ReadProfile::shortRead(),
                               0x5eed00 + c);
        for (size_t r = 0; r < reads_per_chromosome; ++r)
            reads.push_back(
                sim.sample(pangenome
                               .haplotypes[r % pangenome.haplotypes
                                                   .size()])
                    .read);
    }
    std::printf("workload: %zu chromosomes x %zu bases, %zu reads\n",
                chromosomes, bases, reads.size());

    char dir_template[] = "/tmp/pgb_bench_shard.XXXXXX";
    const char *dir = mkdtemp(dir_template);
    if (dir == nullptr) {
        std::fprintf(stderr, "bench_shard_scaling: mkdtemp failed\n");
        return 1;
    }
    store::ShardBuildParams params;
    params.targetShardMb = 0; // one shard per component
    params.threads = core::hardwareThreads();
    const auto manifest = store::buildShardSet(
        graph, params, std::string(dir) + "/union.pgbs");

    uint64_t max_bytes = 0, sum_bytes = 0;
    for (const auto &shard : manifest.shards) {
        max_bytes = std::max(max_bytes, shard.bytes);
        sum_bytes += shard.bytes;
    }
    const uint64_t one_shard_mb = (max_bytes + kMiB - 1) / kMiB;
    if (one_shard_mb * kMiB >= sum_bytes) {
        // Every shard fits: the "thrash" column degenerates into the
        // unbounded one. Say so rather than publish a vacuous number.
        std::printf("note: %llu MiB budget holds all %zu shards "
                    "(%llu bytes); thrash regime will not evict\n",
                    static_cast<unsigned long long>(one_shard_mb),
                    manifest.shards.size(),
                    static_cast<unsigned long long>(sum_bytes));
    }

    const Regime regimes[] = {
        {"monolith", pipeline::MappingContext::Builder()
                         .fromGraph(graph)
                         .build()},
        {"sharded_unbounded", pipeline::MappingContext::Builder()
                                  .fromManifest(manifest.path)
                                  .build()},
        {"sharded_one_shard_cache",
         pipeline::MappingContext::Builder()
             .fromManifest(manifest.path)
             .shardCacheMb(one_shard_mb)
             .build()},
    };

    // Interleave the regimes across repeats so machine drift is
    // charged to all alike (min-of-3 per side; memory note: this box
    // only trusts interleaved min-of-N).
    const int repeats = 3;
    Result results[3];
    for (int rep = 0; rep < repeats; ++rep)
        for (size_t i = 0; i < 3; ++i)
            measureOnce(regimes[i], reads, results[i]);

    for (const Result &r : results) {
        std::printf("%-26s %9.0f reads/s  %5.1f%% mapped  "
                    "%4llu loads %4llu evictions %6llu hits\n",
                    r.regime.c_str(), r.readsPerSec,
                    100.0 * r.mappedFraction,
                    static_cast<unsigned long long>(r.loads),
                    static_cast<unsigned long long>(r.evictions),
                    static_cast<unsigned long long>(r.hits));
    }

    {
        core::CheckedWriter json("BENCH_shard.json");
        auto &out = json.stream();
        out << "{\n  \"bench\": \"shard_scaling\",\n"
            << "  \"repeats\": " << repeats << ",\n"
            << "  \"shards\": " << manifest.shards.size() << ",\n"
            << "  \"one_shard_budget_mb\": " << one_shard_mb << ",\n"
            << "  \"results\": [\n";
        for (size_t i = 0; i < 3; ++i) {
            const Result &r = results[i];
            char line[256];
            std::snprintf(
                line, sizeof line,
                "    {\"regime\": \"%s\", \"reads_per_sec\": %.1f, "
                "\"mapped_fraction\": %.4f, \"loads\": %llu, "
                "\"evictions\": %llu, \"hits\": %llu}%s\n",
                r.regime.c_str(), r.readsPerSec, r.mappedFraction,
                static_cast<unsigned long long>(r.loads),
                static_cast<unsigned long long>(r.evictions),
                static_cast<unsigned long long>(r.hits),
                i + 1 < 3 ? "," : "");
            out << line;
        }
        out << "  ]\n}\n";
        json.finish();
        std::printf("wrote BENCH_shard.json\n");
    }
    writeBenchMetrics("shard");

    for (size_t i = 0; i < manifest.shards.size(); ++i)
        std::remove(manifest.shardPath(i).c_str());
    std::remove(manifest.path.c_str());
    rmdir(dir);
    return 0;
}
