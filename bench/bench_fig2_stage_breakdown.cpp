/**
 * @file
 * Figure 2: per-stage timing breakdown of the four Seq2Graph mapping
 * tools (seed / cluster+chain / filter / align), with each tool's
 * extracted kernel's share of its stage (the yellow arcs).
 *
 * Reproduction target (shape): GraphAligner spends ~90% in alignment;
 * vg giraffe's filtering (GBWT) dominates; vg map spreads effort
 * across stages; minigraph's chaining (with GWFA inside) is heavy.
 */

#include "bench_common.hpp"

int
main()
{
    using namespace pgb;
    using namespace pgb::bench;

    banner("Figure 2: Seq2Graph per-stage timing breakdown");
    const auto workload = makeStandardWorkload();

    struct ToolRun
    {
        pipeline::ToolProfile profile;
        bool longReads;
        const char *paperNote;
    };
    const ToolRun tools[] = {
        {pipeline::ToolProfile::kVgMap, false,
         "paper: effort spread across all stages; kernel GSSW"},
        {pipeline::ToolProfile::kVgGiraffe, false,
         "paper: filtering dominates; kernel GBWT"},
        {pipeline::ToolProfile::kGraphAligner, true,
         "paper: ~5% clustering, ~90% alignment; kernel GBV"},
        {pipeline::ToolProfile::kMinigraph, true,
         "paper: chaining heavy; GWFA is 47-75% of it"},
    };

    std::printf("%-13s %8s %8s %8s %8s | %s\n", "tool", "seed%",
                "chain%", "filter%", "align%", "kernel share");
    for (const ToolRun &tool : tools) {
        auto config = pipeline::MapperConfig::forTool(tool.profile);
        config.threads = 1;
        pipeline::Seq2GraphMapper mapper(workload.pangenome.graph,
                                         config);
        const auto &reads = tool.longReads ? workload.longReads
                                           : workload.shortReads;
        const auto report = mapper.mapReads(reads);
        const double total = report.timers.total();
        auto pct = [&](const char *stage) {
            return total == 0.0
                ? 0.0 : 100.0 * report.timers.seconds(stage) / total;
        };
        // The kernel's share of its own stage (the yellow arc).
        const char *kernel_stage =
            tool.profile == pipeline::ToolProfile::kVgGiraffe
                ? "filter"
                : (tool.profile == pipeline::ToolProfile::kMinigraph
                       ? "cluster_chain" : "align");
        const double stage_secs = report.timers.seconds(kernel_stage);
        const double kernel_share = stage_secs == 0.0
            ? 0.0 : 100.0 * report.kernelSeconds / stage_secs;
        std::printf("%-13s %7.1f%% %7.1f%% %7.1f%% %7.1f%% | %s %.0f%% "
                    "of %s\n",
                    pipeline::toolName(tool.profile), pct("seed"),
                    pct("cluster_chain"), pct("filter"), pct("align"),
                    report.kernelName, kernel_share, kernel_stage);
        std::printf("    %s\n", tool.paperNote);
    }
    return 0;
}
