/**
 * @file
 * Table 1: estimated full-genome (30x coverage) mapping runtime for
 * the four Seq2Graph tools and the BWA-MEM2-like Seq2Seq baseline,
 * using the paper's methodology: measure a read batch, then scale by
 * the number of reads needed for 30x coverage of a 3.1 Gbp genome.
 *
 * Reproduction target (shape): the Seq2Seq baseline is the fastest by
 * a wide margin; vg map is the slowest Seq2Graph tool; giraffe is the
 * fastest Seq2Graph tool (paper: 67.1h / 4.8h / 9.1h / 20.5h / 1.3h).
 */

#include "bench_common.hpp"

int
main()
{
    using namespace pgb;
    using namespace pgb::bench;

    banner("Table 1: estimated full-genome 30x mapping runtime");
    const auto workload = makeStandardWorkload();
    constexpr double kGenomeBases = 3.1e9;
    constexpr double kCoverage = 30.0;

    struct Row
    {
        const char *name;
        double hours;
        double paperHours;
    };
    std::vector<Row> rows;

    auto estimate = [&](double batch_seconds, size_t reads,
                        size_t read_len) {
        const double reads_for_genome =
            kGenomeBases * kCoverage / static_cast<double>(read_len);
        return batch_seconds / static_cast<double>(reads) *
               reads_for_genome / 3600.0;
    };

    const struct
    {
        pipeline::ToolProfile profile;
        bool longReads;
        double paperHours;
    } tools[] = {
        {pipeline::ToolProfile::kVgMap, false, 67.1},
        {pipeline::ToolProfile::kVgGiraffe, false, 4.8},
        {pipeline::ToolProfile::kGraphAligner, true, 9.1},
        {pipeline::ToolProfile::kMinigraph, true, 20.5},
    };
    for (const auto &tool : tools) {
        auto config = pipeline::MapperConfig::forTool(tool.profile);
        config.threads = 1;
        pipeline::Seq2GraphMapper mapper(workload.pangenome.graph,
                                         config);
        const auto &reads = tool.longReads ? workload.longReads
                                           : workload.shortReads;
        const size_t read_len = tool.longReads
            ? workload.longReadLength : 150;
        core::WallTimer timer;
        mapper.mapReads(reads);
        rows.push_back({pipeline::toolName(tool.profile),
                        estimate(timer.seconds(), reads.size(),
                                 read_len),
                        tool.paperHours});
    }
    {
        pipeline::Seq2SeqMapper mapper(workload.pangenome.reference,
                                       15, 10);
        core::WallTimer timer;
        mapper.mapReads(workload.shortReads, 1);
        rows.push_back({"BWA-MEM2-like",
                        estimate(timer.seconds(),
                                 workload.shortReads.size(), 150),
                        1.3});
    }

    std::printf("%-14s %14s %12s\n", "tool", "estimated(h)",
                "paper(h)");
    for (const Row &row : rows)
        std::printf("%-14s %14.1f %12.1f\n", row.name, row.hours,
                    row.paperHours);
    std::printf("\n(single-thread estimates on the synthetic "
                "chromosome; the paper measures real tools on real "
                "data — compare rankings, not hours)\n");
    return 0;
}
