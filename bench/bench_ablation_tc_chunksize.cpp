/**
 * @file
 * Ablation: transclosure sweep chunk size and match-store backing.
 *
 * seqwish bounds the transitive-closure working set by sweeping the
 * global sequence space in chunks (transclose-batch) and by keeping
 * the match set in mmap'ed files. The induced graph is invariant to
 * both knobs (property-tested in test_build.cpp); what changes is the
 * work profile: small chunks multiply interval-tree queries and
 * sweeps, file backing trades RAM for page-cache traffic. This bench
 * quantifies that trade on the standard workload's TC inputs.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "build/transclosure.hpp"

namespace {

using namespace pgb;
using namespace pgb::bench;

struct Setup
{
    std::unique_ptr<build::SequenceCatalog> catalog;
    std::vector<build::MatchSegment> matches;
};

const Setup &
setup()
{
    static const Setup s = [] {
        Setup out;
        const auto pangenome = synth::simulatePangenome(
            synth::mGraphLikeConfig(smallScale() ? 20000 : 60000, 9));
        std::vector<seq::Sequence> seqs;
        seqs.push_back(pangenome.reference);
        for (const auto &hap : pangenome.haplotypes)
            seqs.push_back(hap);
        out.catalog = std::make_unique<build::SequenceCatalog>(seqs);
        for (const auto &m :
             synth::groundTruthMatches(pangenome, 16)) {
            out.matches.push_back(
                {out.catalog->globalOffset(0, m.refStart),
                 out.catalog->globalOffset(m.haplotype + 1, m.hapStart),
                 m.length});
        }
        return out;
    }();
    return s;
}

void
BM_TcChunkSize(benchmark::State &state)
{
    const Setup &s = setup();
    build::TcOptions options;
    options.chunkSize = static_cast<size_t>(state.range(0));
    options.fileBackedMatches = state.range(1) != 0;
    uint64_t classes = 0, tree_queries = 0, sweeps = 0, unions = 0;
    for (auto _ : state) {
        const auto result =
            build::transclose(*s.catalog, s.matches, options);
        classes = result.closureClasses;
        tree_queries = result.treeQueries;
        sweeps = result.sweeps;
        unions = result.unions;
        benchmark::DoNotOptimize(classes);
    }
    state.counters["closure_classes"] = static_cast<double>(classes);
    state.counters["tree_queries"] = static_cast<double>(tree_queries);
    state.counters["sweeps"] = static_cast<double>(sweeps);
    state.counters["unions"] = static_cast<double>(unions);
    state.SetLabel(std::string(options.fileBackedMatches
                                   ? "file-backed matches"
                                   : "in-memory matches") +
                   ", chunk " + std::to_string(options.chunkSize));
}
BENCHMARK(BM_TcChunkSize)
    ->ArgsProduct({{64, 1 << 10, 1 << 16}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
