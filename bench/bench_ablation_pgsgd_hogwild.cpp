/**
 * @file
 * Ablation: PGSGD's Hogwild! lock-free updates vs mutex-guarded
 * updates at several thread counts. The paper (§3) relies on
 * Hogwild!'s racy-but-self-correcting updates for near-linear
 * scaling; the locked variant serializes on the mutex.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "layout/pgsgd.hpp"

namespace {

using namespace pgb;
using namespace pgb::bench;

const synth::Pangenome &
pangenome()
{
    static const synth::Pangenome p = synth::simulatePangenome(
        synth::mGraphLikeConfig(smallScale() ? 20000 : 60000, 5));
    return p;
}

void
BM_Pgsgd(benchmark::State &state)
{
    const bool locks = state.range(0) != 0;
    const auto threads = static_cast<unsigned>(state.range(1));
    const layout::PathIndex index(pangenome().graph);
    double stress = 0.0;
    for (auto _ : state) {
        layout::Layout layout(pangenome().graph.nodeCount(), 1);
        layout::PgsgdParams params;
        params.iterations = 5;
        params.threads = threads;
        params.useLocks = locks;
        const auto result = layout::pgsgdLayout(index, layout, params);
        stress = result.stressAfter;
        benchmark::DoNotOptimize(stress);
    }
    state.counters["stress_after"] = stress;
    state.SetLabel(locks ? "mutex-guarded updates"
                         : "Hogwild! lock-free");
}
BENCHMARK(BM_Pgsgd)
    ->Args({0, 1})
    ->Args({0, 4})
    ->Args({1, 1})
    ->Args({1, 4});

} // namespace

BENCHMARK_MAIN();
