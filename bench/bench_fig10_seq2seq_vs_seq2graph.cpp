/**
 * @file
 * Figure 10 (case study §6.1): microarchitectural comparison of the
 * Seq2Seq kernel SSW and the Seq2Graph kernel GSSW on the same reads,
 * with input traces captured from their mapping pipelines.
 *
 * Reproduction target: GSSW shows ~3x more memory stalls than SSW,
 * caused by the swizzle writebacks of the SIMD buffers into the
 * retained per-node DP matrices (SSW keeps only one row/column).
 * The proposed optimization — not storing intra-node rows — is the
 * keepMatrices=false variant, shown as a third row.
 */

#include "bench_common.hpp"
#include "kernel_runners.hpp"

int
main()
{
    using namespace pgb;
    using namespace pgb::bench;

    banner("Figure 10: SSW (Seq2Seq) vs GSSW (Seq2Graph), same reads");
    const auto workload = makeStandardWorkload();

    // SSW traces: align the short reads to the linear reference.
    pipeline::Seq2SeqMapper seq2seq(workload.pangenome.reference, 15,
                                    10);
    const auto ssw_traces = seq2seq.captureSswTraces(
        workload.shortReads, smallScale() ? 20 : 60);

    // GSSW traces: the same reads against the graph.
    const auto inputs = captureKernelInputs(workload);

    struct Row
    {
        const char *name;
        std::function<void(prof::TraceProbe &)> run;
    };
    const Row rows[] = {
        {"SSW",
         [&](prof::TraceProbe &probe) {
             for (const auto &trace : ssw_traces) {
                 align::StripedProfile profile(
                     trace.query, align::ScoreParams::mappingDefaults());
                 align::sswAlign(profile, trace.window,
                                 align::ScoreParams::mappingDefaults(),
                                 probe);
             }
         }},
        {"GSSW",
         [&](prof::TraceProbe &probe) {
             runGssw(inputs, probe, /* keep_matrices */ true);
         }},
        {"GSSW-nostore",
         [&](prof::TraceProbe &probe) {
             runGssw(inputs, probe, /* keep_matrices */ false);
         }},
    };

    std::printf("%-13s %9s %9s %9s %9s %9s | %6s %9s\n", "kernel",
                "retire", "frontend", "badspec", "core", "memory",
                "IPC", "st/kilo");
    double ssw_memory = 0.0, gssw_memory = 0.0;
    for (const Row &row : rows) {
        const auto c = characterize(row.name, row.run);
        const double stores_per_kilo =
            1000.0 * static_cast<double>(c.counts.storeOps) /
            static_cast<double>(c.counts.totalOps());
        std::printf("%-13s %8.1f%% %8.1f%% %8.1f%% %8.1f%% %8.1f%% | "
                    "%6.2f %9.1f\n",
                    row.name, 100.0 * c.topdown.retiring,
                    100.0 * c.topdown.frontEndBound,
                    100.0 * c.topdown.badSpeculation,
                    100.0 * c.topdown.coreBound,
                    100.0 * c.topdown.memoryBound, c.topdown.ipc,
                    stores_per_kilo);
        if (std::string(row.name) == "SSW")
            ssw_memory = c.topdown.memoryBound;
        if (std::string(row.name) == "GSSW")
            gssw_memory = c.topdown.memoryBound;
    }
    std::printf("\nGSSW/SSW memory-stall ratio: %.1fx (paper: ~3x, "
                "from swizzle writes to the retained DP matrices)\n",
                ssw_memory == 0.0 ? 0.0 : gssw_memory / ssw_memory);
    return 0;
}
