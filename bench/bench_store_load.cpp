/**
 * @file
 * pgb::store amortization: cold index construction (parse GFA text,
 * build the minimizer index, build the GBWT) versus warm artifact
 * loading (mmap + checksum verify + span reconstruction) on the
 * standard workload — the build-once/map-many argument in numbers.
 *
 * Real pangenome tooling ships persisted indexes (vg's .xg/.gbwt,
 * minigraph's rGFA) precisely because construction dominates serving;
 * the acceptance bar here is warm >= 10x faster than cold.
 *
 * Emits BENCH_store.json {cold_seconds, warm_seconds, speedup,
 * artifact_bytes} next to the text table.
 */

#include <cstdio>
#include <sstream>
#include <string>

#include "bench_common.hpp"
#include "core/io.hpp"
#include "core/timer.hpp"
#include "graph/gfa.hpp"
#include "index/gbwt.hpp"
#include "index/minimizer.hpp"
#include "pipeline/context.hpp"
#include "store/store.hpp"

int
main()
{
    using namespace pgb;
    using namespace pgb::bench;

    banner("pgb::store: cold rebuild vs warm .pgbi load");
    const auto workload = makeStandardWorkload();
    const auto &graph = workload.pangenome.graph;

    // The cold path starts from GFA text, like `pgb map graph.gfa`.
    std::ostringstream gfa_stream;
    graph::writeGfa(gfa_stream, graph);
    const std::string gfa_text = gfa_stream.str();

    const std::string artifact_path = "BENCH_store.pgbi";
    {
        const index::MinimizerIndex minimizers(graph, 15, 10);
        const index::GbwtIndex gbwt(graph);
        store::writeArtifact(artifact_path, graph, minimizers, &gbwt);
    }

    const int rounds = smallScale() ? 3 : 5;
    double cold_seconds = 0.0, warm_seconds = 0.0;
    size_t artifact_bytes = 0;

    for (int round = 0; round < rounds; ++round) {
        {
            core::WallTimer timer;
            std::istringstream in(gfa_text);
            graph::PanGraph cold = graph::readGfa(in);
            const index::MinimizerIndex minimizers(cold, 15, 10);
            const index::GbwtIndex gbwt(cold);
            cold_seconds += timer.seconds();
            if (minimizers.totalOccurrences() == 0)
                return 1; // keep the build alive
        }
        {
            core::WallTimer timer;
            const auto artifact = store::Artifact::load(artifact_path);
            warm_seconds += timer.seconds();
            artifact_bytes = artifact->sizeBytes();
            if (artifact->minimizers().totalOccurrences() == 0)
                return 1;
        }
    }
    cold_seconds /= rounds;
    warm_seconds /= rounds;
    const double speedup = cold_seconds / warm_seconds;

    std::printf("%-28s %10s\n", "path", "seconds");
    std::printf("%-28s %10.4f\n",
                "cold (GFA + minimizer + GBWT)", cold_seconds);
    std::printf("%-28s %10.4f\n", "warm (mmap .pgbi)", warm_seconds);
    std::printf("%-28s %9.1fx\n", "speedup", speedup);
    std::printf("artifact size: %zu bytes\n", artifact_bytes);

    {
        core::CheckedWriter json("BENCH_store.json");
        auto &out = json.stream();
        out << "{\n  \"cold_seconds\": " << cold_seconds
            << ",\n  \"warm_seconds\": " << warm_seconds
            << ",\n  \"speedup\": " << speedup
            << ",\n  \"artifact_bytes\": " << artifact_bytes << "\n}\n";
        json.finish();
        std::printf("wrote BENCH_store.json\n");
    }
    std::remove(artifact_path.c_str());

    writeBenchMetrics("store");
    return 0;
}
