/**
 * @file
 * Figure 7: exclusive misses per kilo-instruction at L1/L2/L3 for the
 * seven CPU kernels, replaying instrumented memory traces through the
 * Machine-B cache model.
 *
 * Reproduction target (shape): the DP kernels (GSSW, GBV, GWFA) miss
 * mostly in L1 and almost never reach L3 (they align to small,
 * cache-resident subgraphs); PGSGD misses at every level (uniform
 * random layout accesses); TC and GBWT stay modest.
 */

#include "bench_common.hpp"
#include "kernel_runners.hpp"

int
main()
{
    using namespace pgb;
    using namespace pgb::bench;

    banner("Figure 7: cache misses per kilo-instruction (exclusive)");
    const auto workload = makeStandardWorkload();
    const auto inputs = captureKernelInputs(workload);

    struct Row
    {
        const char *name;
        std::function<void(prof::TraceProbe &)> run;
    };
    const Row rows[] = {
        {"GSSW", [&](prof::TraceProbe &p) { runGssw(inputs, p); }},
        {"GBV", [&](prof::TraceProbe &p) { runGbv(inputs, p); }},
        {"GBWT", [&](prof::TraceProbe &p) { runGbwt(inputs, p); }},
        {"GWFA-cr",
         [&](prof::TraceProbe &p) { runGwfa(inputs.gwfaCr, p); }},
        {"GWFA-lr",
         [&](prof::TraceProbe &p) { runGwfa(inputs.gwfaLr, p); }},
        {"PGSGD", [&](prof::TraceProbe &p) { runPgsgd(inputs, p); }},
        {"TC", [&](prof::TraceProbe &p) { runTc(inputs, p); }},
    };

    std::printf("%-8s %10s %10s %10s\n", "kernel", "L1 MPKI",
                "L2 MPKI", "L3 MPKI");
    for (const Row &row : rows) {
        const auto c = characterize(row.name, row.run);
        std::printf("%-8s %10.3f %10.3f %10.3f\n", row.name, c.mpkiL1,
                    c.mpkiL2, c.mpkiL3);
    }
    std::printf("\nPaper Figure 7 shape: DP kernels (GSSW/GBV/GWFA) "
                "miss mostly in L1 and rarely in L3; PGSGD misses at "
                "every level; the graph itself is not the bottleneck.\n");
    return 0;
}
