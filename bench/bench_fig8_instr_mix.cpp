/**
 * @file
 * Figure 8: dynamic instruction mix per kernel (MICA-style
 * hierarchical binning: Vector > Control > Memory > Scalar >
 * Register), from the counting probes.
 *
 * Reproduction target (shape): GSSW is vector+memory heavy
 * (hand-vectorized, matrix writebacks); GWFA has the fewest vector
 * ops of the DP kernels (graph bookkeeping defeats vectorization);
 * GBV is scalar (64-bit words); PGSGD's FP math bins as vector (the
 * paper's MULSD observation); GBWT and TC are scalar/memory mixes.
 */

#include "bench_common.hpp"
#include "kernel_runners.hpp"

int
main()
{
    using namespace pgb;
    using namespace pgb::bench;

    banner("Figure 8: dynamic instruction mix");
    const auto workload = makeStandardWorkload();
    const auto inputs = captureKernelInputs(workload);

    struct Row
    {
        const char *name;
        std::function<void(prof::TraceProbe &)> run;
    };
    const Row rows[] = {
        {"GSSW", [&](prof::TraceProbe &p) { runGssw(inputs, p); }},
        {"GBV", [&](prof::TraceProbe &p) { runGbv(inputs, p); }},
        {"GBWT", [&](prof::TraceProbe &p) { runGbwt(inputs, p); }},
        {"GWFA-cr",
         [&](prof::TraceProbe &p) { runGwfa(inputs.gwfaCr, p); }},
        {"GWFA-lr",
         [&](prof::TraceProbe &p) { runGwfa(inputs.gwfaLr, p); }},
        {"PGSGD", [&](prof::TraceProbe &p) { runPgsgd(inputs, p); }},
        {"TC", [&](prof::TraceProbe &p) { runTc(inputs, p); }},
    };

    std::printf("%-8s %9s %9s %9s %9s %9s %14s\n", "kernel", "vector",
                "control", "memory", "scalar", "register", "total ops");
    for (const Row &row : rows) {
        const auto c = characterize(row.name, row.run);
        const double total =
            static_cast<double>(c.counts.totalOps());
        auto pct = [&](core::OpKind kind) {
            return 100.0 *
                   static_cast<double>(
                       c.counts.counts[static_cast<size_t>(kind)]) /
                   total;
        };
        std::printf("%-8s %8.1f%% %8.1f%% %8.1f%% %8.1f%% %8.1f%% "
                    "%14llu\n",
                    row.name, pct(core::OpKind::kVector),
                    pct(core::OpKind::kControl),
                    pct(core::OpKind::kMemory),
                    pct(core::OpKind::kScalar),
                    pct(core::OpKind::kRegister),
                    static_cast<unsigned long long>(
                        c.counts.totalOps()));
    }
    std::printf("\nPaper Figure 8 shape: GSSW vector+memory heavy; "
                "GWFA least vectorized of the DP kernels; GBV scalar "
                "(64-bit bitvectors); PGSGD FP binned as vector; "
                "GBWT/TC scalar-memory mixes.\n");
    return 0;
}
