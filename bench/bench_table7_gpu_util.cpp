/**
 * @file
 * Table 7 + §5.3: GPU microarchitecture utilization of TSU and
 * PGSGD-GPU on the simulated RTX A6000, including the PGSGD block-size
 * study (1024 -> 256 threads per block).
 *
 * Reproduction targets: TSU occupancy ~33% (block-limited 32-thread
 * blocks), warp utilization ~70%, memory BW ~40%; PGSGD theoretical
 * occupancy 66.7% (44 regs x 1024 threads), high warp utilization,
 * BW ~42%; shrinking blocks to 256 raises theoretical occupancy to
 * 83.3% and the end-to-end speed by ~1.1x.
 */

#include "align/wfa.hpp"
#include "bench_common.hpp"
#include "gpu/pgsgd_gpu.hpp"
#include "gpu/tsu.hpp"

namespace {

using namespace pgb;
using namespace pgb::bench;

std::vector<gpu::TsuPair>
makeTsuPairs(size_t count, size_t length, double error, uint64_t seed)
{
    core::Rng rng(seed);
    std::vector<gpu::TsuPair> pairs;
    for (size_t i = 0; i < count; ++i) {
        const auto a = synth::randomSequence(length, rng());
        // Mutate.
        std::vector<uint8_t> b;
        for (uint8_t base : a.codes()) {
            if (rng.chance(error / 3))
                continue;
            if (rng.chance(error / 3))
                b.push_back(static_cast<uint8_t>(rng.below(4)));
            if (rng.chance(error)) {
                b.push_back(static_cast<uint8_t>(
                    (base + 1 + rng.below(3)) % 4));
            } else {
                b.push_back(base);
            }
        }
        pairs.push_back({a, seq::Sequence{std::move(b)}});
    }
    return pairs;
}

void
printStats(const char *name, const gpusim::KernelStats &stats)
{
    std::printf("%-12s %10.2f%% %10.2f%% %10.2f%% %12.2f%% %9.1f\n",
                name, 100.0 * stats.achievedOccupancy,
                100.0 * stats.occupancy.theoretical,
                100.0 * stats.warpUtilization,
                100.0 * stats.memBandwidthUtil,
                stats.issueIntervalCycles);
}

} // namespace

int
main()
{
    banner("Table 7: GPU microarchitecture utilization (simulated "
           "RTX A6000)");
    const auto device = gpusim::DeviceSpec::rtxA6000();

    std::printf("%-12s %11s %11s %11s %13s %9s\n", "kernel",
                "occupancy", "theoretical", "warp util", "mem BW util",
                "cyc/issue");

    // ---- TSU: long pairs at 1% error (the paper's Table 3 TSU
    // dataset uses 50000 pairs of 10 kb), one warp per alignment —
    // enough alignments to fill the device's residency (1344 warps).
    {
        // Two full residency waves (2 x 1344 warps) at full scale.
        const size_t len = smallScale() ? 800 : 2000;
        const size_t n = smallScale() ? 200 : 2688;
        const auto pairs = makeTsuPairs(n, len, 0.01, 7);
        const auto result = gpu::tsuRun(device, pairs,
                                        align::WfaPenalties{});
        printStats("TSU", result.stats);
        std::printf("    single-useful-lane Extend rounds: %.1f%% "
                    "(paper: 74%% of diagonals use one thread at "
                    "10 kb)\n",
                    100.0 * result.singleLaneExtendFraction);
    }

    // ---- PGSGD-GPU on a layout bigger than the device L2 (the
    // paper's full-graph footprint); block 1024 then 256.
    {
        const auto chain =
            makeLayoutChain(smallScale() ? 150000 : 500000);
        const layout::PathIndex &index = *chain.index;

        gpu::PgsgdGpuParams params;
        params.sgd.iterations = smallScale() ? 1 : 2;
        params.sgd.updateFactor = 0.3;
        params.blockThreads = 1024;
        params.gridBlocks = 84;
        layout::Layout layout_a(chain.nodeCount, 1);
        const auto big = gpu::pgsgdGpuRun(device, index, layout_a,
                                          params);
        printStats("PGSGD", big.stats);
        std::printf("    L1 hit %.1f%%  L2 hit %.1f%%  stress %.3f -> "
                    "%.3f\n",
                    100.0 * big.stats.l1HitRate,
                    100.0 * big.stats.l2HitRate,
                    big.layout.stressBefore, big.layout.stressAfter);

        banner("Section 5.3 block-size study: PGSGD-GPU 1024 -> 256 "
               "threads/block");
        gpu::PgsgdGpuParams small_params = params;
        small_params.blockThreads = 256;
        small_params.gridBlocks = 84 * 4;
        layout::Layout layout_b(chain.nodeCount, 1);
        const auto small = gpu::pgsgdGpuRun(device, index, layout_b,
                                            small_params);
        std::printf("%-12s %11s %11s %11s %11s\n", "block",
                    "theoretical", "achieved", "L1 hit", "sim time");
        std::printf("%-12d %10.1f%% %10.1f%% %10.1f%% %9.2fms\n", 1024,
                    100.0 * big.stats.occupancy.theoretical,
                    100.0 * big.stats.achievedOccupancy,
                    100.0 * big.stats.l1HitRate,
                    1e3 * big.stats.simSeconds);
        std::printf("%-12d %10.1f%% %10.1f%% %10.1f%% %9.2fms\n", 256,
                    100.0 * small.stats.occupancy.theoretical,
                    100.0 * small.stats.achievedOccupancy,
                    100.0 * small.stats.l1HitRate,
                    1e3 * small.stats.simSeconds);
        std::printf("speedup from the smaller blocks: %.2fx "
                    "(paper: 1.1x)\n",
                    big.stats.simSeconds / small.stats.simSeconds);
    }

    std::printf("\nPaper Table 7: TSU occupancy 32.97%%, warp util "
                "69.72%%, mem BW 39.89%%; PGSGD occupancy 53.85%%, "
                "warp util 88.31%%, mem BW 41.91%%; TSU issues every "
                "2.3 cycles, PGSGD every 41.7.\n");
    return 0;
}
