/**
 * @file
 * Ablation: GBWT run-length-encoded record bodies (the GBWT design)
 * vs plain per-visit arrays — the compression is what keeps the
 * occurrence-table lookups local (paper §5.2: GBWT is *not* memory
 * bound because haplotype runs keep queries compact).
 */

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "index/gbwt.hpp"

namespace {

using namespace pgb;
using namespace pgb::bench;

struct Setup
{
    synth::Pangenome pangenome;
    std::vector<std::vector<graph::Handle>> queries;
};

const Setup &
setup()
{
    static const Setup s = [] {
        Setup out;
        out.pangenome = synth::simulatePangenome(
            synth::mGraphLikeConfig(smallScale() ? 20000 : 60000, 3));
        core::Rng rng(31);
        const auto &graph = out.pangenome.graph;
        for (int q = 0; q < 4000; ++q) {
            const auto path = static_cast<graph::PathId>(
                rng.below(graph.pathCount()));
            const auto &steps = graph.pathSteps(path);
            const size_t len = 1 + rng.below(std::min<size_t>(
                100, steps.size()));
            const size_t start = rng.below(steps.size() - len + 1);
            out.queries.emplace_back(
                steps.begin() + static_cast<ptrdiff_t>(start),
                steps.begin() + static_cast<ptrdiff_t>(start + len));
        }
        return out;
    }();
    return s;
}

void
BM_GbwtFind(benchmark::State &state)
{
    const Setup &s = setup();
    const bool rle = state.range(0) != 0;
    const index::GbwtIndex gbwt(s.pangenome.graph, rle);
    uint64_t sink = 0;
    for (auto _ : state) {
        for (const auto &query : s.queries)
            sink += gbwt.find(query).size();
        benchmark::DoNotOptimize(sink);
    }
    const auto stats = gbwt.stats();
    state.counters["body_entries"] =
        static_cast<double>(stats.totalRuns);
    state.counters["avg_run"] = stats.avgRunLength;
    state.SetLabel(rle ? "run-length encoded (GBWT design)"
                       : "plain visit arrays");
}
BENCHMARK(BM_GbwtFind)->Arg(1)->Arg(0);

} // namespace

BENCHMARK_MAIN();
