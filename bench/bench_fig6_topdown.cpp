/**
 * @file
 * Figure 6 + Table 6: top-down microarchitectural analysis and IPC of
 * the seven CPU kernels, via the probe/cache/branch/top-down model
 * chain (the paper uses VTune on Machine B).
 *
 * Reproduction target (shape): GSSW/GBV/GWFA core-bound with GSSW
 * also memory-bound; GBV notable bad-speculation; GBWT front-end/
 * branch-heavy, not memory-bound; PGSGD memory-bound with the lowest
 * IPC; TC retiring-dominated with the highest IPC.
 */

#include "bench_common.hpp"
#include "kernel_runners.hpp"

int
main()
{
    using namespace pgb;
    using namespace pgb::bench;

    banner("Figure 6 / Table 6: top-down analysis and IPC per kernel");
    const auto workload = makeStandardWorkload();
    const auto inputs = captureKernelInputs(workload);

    struct Row
    {
        const char *name;
        std::function<void(prof::TraceProbe &)> run;
        double paperIpc;
    };
    const Row rows[] = {
        {"GSSW", [&](prof::TraceProbe &p) { runGssw(inputs, p); },
         1.77},
        {"GBV", [&](prof::TraceProbe &p) { runGbv(inputs, p); }, 2.22},
        {"GBWT", [&](prof::TraceProbe &p) { runGbwt(inputs, p); },
         1.92},
        {"GWFA-cr",
         [&](prof::TraceProbe &p) { runGwfa(inputs.gwfaCr, p); }, 2.67},
        {"GWFA-lr",
         [&](prof::TraceProbe &p) { runGwfa(inputs.gwfaLr, p); }, 2.90},
        {"PGSGD", [&](prof::TraceProbe &p) { runPgsgd(inputs, p); },
         0.88},
        {"TC", [&](prof::TraceProbe &p) { runTc(inputs, p); }, 3.14},
    };

    std::printf("%-8s %9s %9s %9s %9s %9s | %6s %9s\n", "kernel",
                "retire", "frontend", "badspec", "core", "memory",
                "IPC", "paperIPC");
    for (const Row &row : rows) {
        const auto c = characterize(row.name, row.run);
        std::printf("%-8s %8.1f%% %8.1f%% %8.1f%% %8.1f%% %8.1f%% | "
                    "%6.2f %9.2f\n",
                    row.name, 100.0 * c.topdown.retiring,
                    100.0 * c.topdown.frontEndBound,
                    100.0 * c.topdown.badSpeculation,
                    100.0 * c.topdown.coreBound,
                    100.0 * c.topdown.memoryBound, c.topdown.ipc,
                    row.paperIpc);
    }
    std::printf("\nPaper Table 6 IPC: GSSW 1.77, GBV 2.22, GBWT 1.92, "
                "GWFA-cr 2.67, GWFA-lr 2.90, PGSGD 0.88, TC 3.14\n"
                "(absolute values are model outputs; the per-kernel "
                "ordering and dominant buckets are the signal)\n");
    return 0;
}
