/**
 * @file
 * Ablation: minimizer seeding vs FM-index MEM seeding across the three
 * regimes where the trade-off differs:
 *
 *  - short reads on the standard M-graph-like workload — the paper's
 *    dominant kernel, where (w+1)-sparse minimizer sampling is cheap
 *    and usually sufficient;
 *  - long reads — more anchors per read, where MEM length adaptivity
 *    starts paying for its per-base backward-extension cost;
 *  - short reads on the repeat-heavy preset (~35% planted tandem
 *    arrays) — the adversarial regime, where fixed-k minimizer hits
 *    explode into capped occurrence lists while maximal exact matches
 *    lengthen past the repeat unit and stay specific.
 *
 * Methodology (bench box is noisy): interleaved min-of-3 — the two
 * seeders alternate inside each repeat so drift hits both equally.
 * Reports per-regime mapping speed (reads/s, min-of-3) and accuracy
 * (mapped fraction; reads are simulated from haplotypes, so unmapped
 * means the seeder lost the read). Emits BENCH_seeder.json plus the
 * standard BENCH_seeder.metrics.json sidecar.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/io.hpp"
#include "core/timer.hpp"
#include "pipeline/context.hpp"

namespace {

using namespace pgb;
using namespace pgb::bench;

struct Regime
{
    const char *name;
    const graph::PanGraph *graph;
    const std::vector<seq::Sequence> *reads;
    pipeline::ToolProfile profile;
};

struct Result
{
    std::string regime;
    std::string seeder;
    double readsPerSec = 0.0; ///< min-of-3 wall clock
    double mappedFraction = 0.0;
    uint64_t anchors = 0;
};

Result
measure(const Regime &regime,
        const std::shared_ptr<const pipeline::MappingContext> &context,
        pipeline::SeederKind kind, int repeats)
{
    auto config = pipeline::MapperConfig::forTool(regime.profile);
    config.threads = 1;
    double best = 1e100;
    pipeline::MappingStats stats;
    for (int rep = 0; rep < repeats; ++rep) {
        core::WallTimer timer;
        stats = pipeline::mapBatch(*context, config, *regime.reads);
        best = std::min(best, timer.seconds());
    }
    Result r;
    r.regime = regime.name;
    r.seeder = pipeline::seederName(kind);
    r.readsPerSec = static_cast<double>(regime.reads->size()) / best;
    r.mappedFraction = static_cast<double>(stats.mappedReads) /
                       static_cast<double>(regime.reads->size());
    r.anchors = stats.anchors;
    return r;
}

} // namespace

int
main()
{
    using pipeline::SeederKind;

    banner("seeder ablation: minimizer vs FM-index MEM seeding");

    const auto workload = makeStandardWorkload();

    // The repeat-heavy regime: same scale, planted tandem arrays.
    const size_t repeat_base = smallScale() ? 40000 : 150000;
    const auto repeat_pangenome = synth::simulatePangenome(
        synth::repeatHeavyConfig(repeat_base, 42));
    std::vector<seq::Sequence> repeat_reads;
    {
        seq::ReadSimulator sim(seq::ReadProfile::shortRead(), 0x77);
        const auto &haps = repeat_pangenome.haplotypes;
        const size_t n = smallScale() ? 100 : 400;
        for (size_t r = 0; r < n; ++r)
            repeat_reads.push_back(sim.sample(haps[r % haps.size()]).read);
    }

    const Regime regimes[] = {
        {"short_reads", &workload.pangenome.graph, &workload.shortReads,
         pipeline::ToolProfile::kVgMap},
        {"long_reads", &workload.pangenome.graph, &workload.longReads,
         pipeline::ToolProfile::kMinigraph},
        {"repeat_heavy_short", &repeat_pangenome.graph, &repeat_reads,
         pipeline::ToolProfile::kVgMap},
    };

    const int repeats = 3;
    std::vector<Result> results;
    for (const Regime &regime : regimes) {
        const auto min_ctx = pipeline::MappingContext::Builder()
                                 .fromGraph(*regime.graph)
                                 .seeder(SeederKind::kMinimizer)
                                 .build();
        const auto mem_ctx = pipeline::MappingContext::Builder()
                                 .fromGraph(*regime.graph)
                                 .seeder(SeederKind::kMem)
                                 .build();

        // Interleave the two seeders across repeats so machine drift
        // is charged to both alike (min-of-3 per side).
        Result mins, mems;
        auto cfg_mins = [&] {
            return measure(regime, min_ctx, SeederKind::kMinimizer, 1);
        };
        auto cfg_mems = [&] {
            return measure(regime, mem_ctx, SeederKind::kMem, 1);
        };
        mins = cfg_mins();
        mems = cfg_mems();
        for (int rep = 1; rep < repeats; ++rep) {
            const Result a = cfg_mins();
            const Result b = cfg_mems();
            mins.readsPerSec = std::max(mins.readsPerSec, a.readsPerSec);
            mems.readsPerSec = std::max(mems.readsPerSec, b.readsPerSec);
        }
        results.push_back(mins);
        results.push_back(mems);

        std::printf("%-20s minimizer %9.0f reads/s  %5.1f%% mapped  "
                    "%8llu anchors\n",
                    regime.name, mins.readsPerSec,
                    100.0 * mins.mappedFraction,
                    static_cast<unsigned long long>(mins.anchors));
        std::printf("%-20s mem       %9.0f reads/s  %5.1f%% mapped  "
                    "%8llu anchors\n",
                    regime.name, mems.readsPerSec,
                    100.0 * mems.mappedFraction,
                    static_cast<unsigned long long>(mems.anchors));
    }

    {
        core::CheckedWriter json("BENCH_seeder.json");
        auto &out = json.stream();
        out << "{\n  \"bench\": \"seeder_ablation\",\n"
            << "  \"repeats\": " << repeats << ",\n  \"results\": [\n";
        for (size_t i = 0; i < results.size(); ++i) {
            const Result &r = results[i];
            char line[256];
            std::snprintf(
                line, sizeof line,
                "    {\"regime\": \"%s\", \"seeder\": \"%s\", "
                "\"reads_per_sec\": %.1f, \"mapped_fraction\": %.4f, "
                "\"anchors\": %llu}%s\n",
                r.regime.c_str(), r.seeder.c_str(), r.readsPerSec,
                r.mappedFraction,
                static_cast<unsigned long long>(r.anchors),
                i + 1 < results.size() ? "," : "");
            out << line;
        }
        out << "  ]\n}\n";
        json.finish();
        std::printf("wrote BENCH_seeder.json\n");
    }
    writeBenchMetrics("seeder");
    return 0;
}
