/**
 * @file
 * Ablation: GWFA vs full-matrix graph DP — the paper's explanation of
 * why GWFA is the fastest reviewed aligner ("it computes far fewer
 * cells of the DP-Matrix"). Reports cells computed and wall time for
 * both on the same gap-bridging traces, across divergence levels.
 */

#include <benchmark/benchmark.h>

#include "align/gwfa.hpp"
#include "core/rng.hpp"
#include "graph/local_graph.hpp"

namespace {

using namespace pgb;

struct Trace
{
    graph::LocalGraph graph;
    std::vector<uint8_t> query;
};

/** A linear-ish bubble graph and a query at the given error rate. */
Trace
makeTrace(double error, uint64_t seed)
{
    Trace t;
    core::Rng rng(seed);
    std::vector<uint8_t> backbone;
    for (int i = 0; i < 800; ++i)
        backbone.push_back(static_cast<uint8_t>(rng.below(4)));
    uint32_t prev = UINT32_MAX;
    for (size_t i = 0; i < backbone.size(); i += 40) {
        const uint32_t node = t.graph.addNode(std::vector<uint8_t>(
            backbone.begin() + static_cast<ptrdiff_t>(i),
            backbone.begin() + static_cast<ptrdiff_t>(
                std::min(i + 40, backbone.size()))));
        if (prev != UINT32_MAX)
            t.graph.addEdge(prev, node);
        prev = node;
    }
    t.graph.finalize();
    for (uint8_t base : backbone) {
        if (rng.chance(error / 3))
            continue;
        if (rng.chance(error / 3))
            t.query.push_back(static_cast<uint8_t>(rng.below(4)));
        if (rng.chance(error)) {
            t.query.push_back(
                static_cast<uint8_t>((base + 1 + rng.below(3)) % 4));
        } else {
            t.query.push_back(base);
        }
    }
    return t;
}

void
BM_GwfaWavefront(benchmark::State &state)
{
    const double error = static_cast<double>(state.range(0)) / 100.0;
    const Trace trace = makeTrace(error, 42 + state.range(0));
    uint64_t cells = 0;
    for (auto _ : state) {
        const auto result = align::gwfaAlign(trace.graph, trace.query,
                                             0);
        cells = result.cellsComputed + result.extendSteps;
        benchmark::DoNotOptimize(result.distance);
    }
    state.counters["cells"] = static_cast<double>(cells);
}
BENCHMARK(BM_GwfaWavefront)->Arg(1)->Arg(5)->Arg(15);

void
BM_GwfaFullDp(benchmark::State &state)
{
    const double error = static_cast<double>(state.range(0)) / 100.0;
    const Trace trace = makeTrace(error, 42 + state.range(0));
    uint64_t cells = 0;
    for (auto _ : state) {
        const auto result =
            align::gwfaFullDp(trace.graph, trace.query, 0);
        cells = result.cellsComputed;
        benchmark::DoNotOptimize(result.distance);
    }
    state.counters["cells"] = static_cast<double>(cells);
}
BENCHMARK(BM_GwfaFullDp)->Arg(1)->Arg(5)->Arg(15);

} // namespace

BENCHMARK_MAIN();
