/**
 * @file
 * Figure 9: GPU (TSU, simulated) vs CPU (WFA) runtime across read
 * lengths at 1% error.
 *
 * Reproduction target (shape): TSU wins on short reads (paper: up to
 * 3.7x at 128 bp) and loses on long reads (10 kb), because long-read
 * wavefronts have many lagging diagonals whose Extend rounds keep
 * only one lane useful.
 */

#include "align/wfa.hpp"
#include "bench_common.hpp"
#include "core/timer.hpp"
#include "gpu/tsu.hpp"

namespace {

using namespace pgb;
using namespace pgb::bench;

std::vector<gpu::TsuPair>
makePairs(size_t count, size_t length, double error, uint64_t seed)
{
    core::Rng rng(seed);
    std::vector<gpu::TsuPair> pairs;
    for (size_t i = 0; i < count; ++i) {
        const auto a = synth::randomSequence(length, rng());
        std::vector<uint8_t> b;
        for (uint8_t base : a.codes()) {
            if (rng.chance(error / 3))
                continue;
            if (rng.chance(error / 3))
                b.push_back(static_cast<uint8_t>(rng.below(4)));
            if (rng.chance(error)) {
                b.push_back(static_cast<uint8_t>(
                    (base + 1 + rng.below(3)) % 4));
            } else {
                b.push_back(base);
            }
        }
        pairs.push_back({a, seq::Sequence{std::move(b)}});
    }
    return pairs;
}

} // namespace

int
main()
{
    banner("Figure 9: GPU (TSU, simulated) vs CPU (WFA) across read "
           "lengths, 1% error");
    const auto device = gpusim::DeviceSpec::rtxA6000();
    const align::WfaPenalties penalties;

    const std::vector<size_t> lengths =
        smallScale() ? std::vector<size_t>{128, 512, 2000}
                     : std::vector<size_t>{128, 256, 512, 1000, 2000,
                                           5000, 10000};
    std::printf("%-8s %12s %12s %10s %12s %16s\n", "length",
                "CPU(ms)", "GPU(ms,sim)", "speedup", "norm@128bp",
                "1-lane extends");
    double first_ratio = 0.0;
    for (size_t length : lengths) {
        // Keep total work comparable across lengths.
        const size_t n = std::max<size_t>(4, 400000 / length);
        const auto pairs = makePairs(n, length, 0.01, length);

        core::WallTimer timer;
        for (const auto &pair : pairs) {
            align::wfaAlign(pair.pattern.codes(), pair.text.codes(),
                            penalties);
        }
        const double cpu_ms = timer.milliseconds();

        const auto result = gpu::tsuRun(device, pairs, penalties);
        const double gpu_ms = result.stats.simSeconds * 1e3;
        const double ratio = cpu_ms / gpu_ms;
        if (first_ratio == 0.0)
            first_ratio = ratio;

        // norm@128bp rescales the curve so the shortest length sits
        // at the paper's 3.7x; the column shows the *decline shape*
        // (simulated GPU time vs unoptimized CPU baseline cannot be
        // compared absolutely).
        std::printf("%-8zu %12.2f %12.2f %9.2fx %11.2fx %15.1f%%\n",
                    length, cpu_ms, gpu_ms, ratio,
                    3.7 * ratio / first_ratio,
                    100.0 * result.singleLaneExtendFraction);
    }
    std::printf("\nPaper Figure 9: TSU up to 3.7x faster for short "
                "reads, slower than WFA2-lib for 10 kb reads; 74%% of "
                "Extend rounds use one thread at 10 kb vs 0.3%% at "
                "128 bp. GPU times here are simulator estimates: only "
                "the crossover shape is meaningful.\n");
    return 0;
}
