/**
 * @file
 * Ablation: TSU's speculative Extend (one cell per lane along a
 * diagonal, the warp-utilization fix described in §3) vs serial
 * single-lane extension, across read lengths. Confirms the paper's
 * mechanism: speculation recovers utilization on short reads but
 * cannot help the lagging diagonals of long reads.
 */

#include <benchmark/benchmark.h>

#include "align/wfa.hpp"
#include "core/rng.hpp"
#include "gpu/tsu.hpp"
#include "synth/pangenome_sim.hpp"

namespace {

using namespace pgb;

std::vector<gpu::TsuPair>
makePairs(size_t count, size_t length, uint64_t seed)
{
    core::Rng rng(seed);
    std::vector<gpu::TsuPair> pairs;
    for (size_t i = 0; i < count; ++i) {
        const auto a = synth::randomSequence(length, rng());
        std::vector<uint8_t> b = a.codes();
        for (auto &base : b) {
            if (rng.chance(0.01))
                base = static_cast<uint8_t>((base + 1) % 4);
        }
        pairs.push_back({a, seq::Sequence{std::move(b)}});
    }
    return pairs;
}

void
BM_TsuExtend(benchmark::State &state)
{
    const bool speculative = state.range(0) != 0;
    const size_t length = static_cast<size_t>(state.range(1));
    const auto pairs = makePairs(8, length, 7 + length);
    const auto device = gpusim::DeviceSpec::rtxA6000();
    double util = 0.0, sim_ms = 0.0;
    for (auto _ : state) {
        const auto result = gpu::tsuRun(device, pairs,
                                        align::WfaPenalties{},
                                        speculative);
        util = result.stats.warpUtilization;
        sim_ms = result.stats.simSeconds * 1e3;
        benchmark::DoNotOptimize(result.scores);
    }
    state.counters["warp_util_pct"] = 100.0 * util;
    state.counters["sim_ms"] = sim_ms;
    state.SetLabel(speculative ? "speculative extend (TSU)"
                               : "serial extend");
}
BENCHMARK(BM_TsuExtend)
    ->Args({1, 128})
    ->Args({0, 128})
    ->Args({1, 2000})
    ->Args({0, 2000});

} // namespace

BENCHMARK_MAIN();
