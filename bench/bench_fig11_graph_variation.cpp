/**
 * @file
 * Figure 11 (case study §6.2): GSSW on the M-graph vs the
 * Split-M-graph (every node longer than 8 bp split into 8 bp chains).
 *
 * Reproduction target: the split graph's finer nodes let the
 * filtering stages localize seeds more precisely, so the captured
 * subgraphs are smaller, fewer DP cells are computed, and GSSW runs
 * measurably faster despite near-identical microarchitectural
 * utilization. (Paper: avg node 27.22 -> 6.89 bp, subgraph 450 ->
 * 233 bp, fewer cycles.)
 */

#include "bench_common.hpp"
#include "kernel_runners.hpp"

namespace {

using namespace pgb;
using namespace pgb::bench;

struct SideResult
{
    double avgNodeLen = 0.0;
    double avgSubgraphBases = 0.0;
    uint64_t cells = 0;
    double milliseconds = 0.0;
    prof::TopDownResult topdown;
};

SideResult
runSide(const graph::PanGraph &graph,
        const std::vector<seq::Sequence> &reads)
{
    SideResult out;
    out.avgNodeLen = graph.stats().avgNodeLength;

    pipeline::MapperConfig config;
    config.profile = pipeline::ToolProfile::kVgMap;
    pipeline::Seq2GraphMapper mapper(graph, config);
    const auto traces = mapper.captureAlignTraces(
        reads, smallScale() ? 20 : 60);

    uint64_t total_bases = 0;
    for (const auto &trace : traces)
        total_bases += trace.subgraph.totalBases();
    out.avgSubgraphBases = traces.empty()
        ? 0.0 : static_cast<double>(total_bases) /
                static_cast<double>(traces.size());

    // Timed, uninstrumented run.
    core::NullProbe null_probe;
    core::WallTimer timer;
    for (const auto &trace : traces) {
        const auto result = align::gsswAlign(
            trace.subgraph, trace.query,
            align::ScoreParams::mappingDefaults(),
            align::GsswOptions{}, null_probe);
        out.cells += result.cellsComputed;
    }
    out.milliseconds = timer.milliseconds();

    // Characterized run.
    const auto c = characterize("gssw", [&](prof::TraceProbe &probe) {
        for (const auto &trace : traces) {
            align::gsswAlign(trace.subgraph, trace.query,
                             align::ScoreParams::mappingDefaults(),
                             align::GsswOptions{}, probe);
        }
    });
    out.topdown = c.topdown;
    return out;
}

} // namespace

int
main()
{
    banner("Figure 11: GSSW on the M-graph vs the Split-M-graph");
    const auto workload = makeStandardWorkload();
    const auto &m_graph = workload.pangenome.graph;
    const graph::PanGraph split_graph = m_graph.splitNodes(8);

    const auto m_side = runSide(m_graph, workload.shortReads);
    const auto split_side = runSide(split_graph, workload.shortReads);

    std::printf("%-14s %12s %12s %12s %10s %8s\n", "graph",
                "avg node bp", "subgraph bp", "DP cells", "time(ms)",
                "IPC");
    std::printf("%-14s %12.2f %12.0f %12llu %10.2f %8.2f\n", "M-graph",
                m_side.avgNodeLen, m_side.avgSubgraphBases,
                static_cast<unsigned long long>(m_side.cells),
                m_side.milliseconds, m_side.topdown.ipc);
    std::printf("%-14s %12.2f %12.0f %12llu %10.2f %8.2f\n",
                "Split-M-graph", split_side.avgNodeLen,
                split_side.avgSubgraphBases,
                static_cast<unsigned long long>(split_side.cells),
                split_side.milliseconds, split_side.topdown.ipc);
    std::printf("\nruntime ratio (M / Split-M): %.2fx\n",
                split_side.milliseconds == 0.0
                    ? 0.0
                    : m_side.milliseconds / split_side.milliseconds);
    std::printf("Paper Figure 11: node length 27.22 -> 6.89 bp, "
                "captured subgraphs 450 -> 233 bp, similar "
                "microarchitecture utilization, fewer cycles on the "
                "split graph — the same pangenome in a different "
                "graph has different performance.\n");
    return 0;
}
