/**
 * @file
 * Figure 5: end-to-end thread scaling of the tools at 4/14/28/56
 * threads, relative to 4 threads — plus a kernel-scaling sweep of the
 * pool-parallel kernels (TC sweep, minimizer index, GBWT build) at
 * 1/2/4/8 threads, relative to 1 thread.
 *
 * Three modes:
 *  - measured wall-clock speedups (meaningful on a multicore host);
 *  - the kernel sweep, exercising the persistent work-stealing pool
 *    directly (every kernel produces identical output at every thread
 *    count, so the sweep measures pure scheduling/scaling overhead);
 *  - an Amdahl projection from the measured single-thread serial
 *    fraction of each tool (tool-specific: odgi layout's sequential
 *    path-index build, seqwish's serial emission phases, the mappers'
 *    embarrassingly parallel read loops), which reproduces the
 *    figure's shape even on constrained CI hosts.
 *
 * Reproduction target (shape): mapping tools scale near-linearly to
 * 28 threads then flatten with hyperthreading; odgi layout scales but
 * sub-linearly; seqwish plateaus after ~4 threads; minigraph-cr is
 * single-threaded.
 *
 * Emits BENCH_fig5.json (tool + kernel series) next to the text table.
 */

#include "bench_common.hpp"
#include "build/transclosure.hpp"
#include "core/io.hpp"
#include "core/thread_pool.hpp"
#include "index/gbwt.hpp"
#include "index/minimizer.hpp"
#include "layout/pgsgd.hpp"
#include "pipeline/scaling.hpp"

namespace {

using namespace pgb;
using namespace pgb::bench;

/** Amdahl speedup with a serial fraction and a physical-core knee. */
double
amdahl(double serial_fraction, unsigned threads, unsigned physical)
{
    // Hyperthreads beyond the physical cores contribute ~15% each
    // (the paper's >28-thread flattening on the 28-core Machine A).
    const double effective = threads <= physical
        ? threads
        : physical + 0.15 * (threads - physical);
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) /
                  effective);
}

} // namespace

int
main()
{
    using namespace pgb;
    using namespace pgb::bench;
    using pipeline::measureScaling;

    banner("Figure 5: thread scaling (speedup vs 4 threads)");
    const auto workload = makeStandardWorkload();
    const std::vector<unsigned> thread_counts = {4, 14, 28, 56};
    constexpr unsigned kPhysicalCores = 28; // Machine A per 2 sockets

    struct Tool
    {
        const char *name;
        double serialFraction; ///< measured/known serial share
        std::function<void(unsigned)> run;
    };

    const auto &graph = workload.pangenome.graph;
    std::vector<seq::Sequence> tc_inputs;
    tc_inputs.push_back(workload.pangenome.reference);
    for (const auto &hap : workload.pangenome.haplotypes)
        tc_inputs.push_back(hap);
    build::SequenceCatalog catalog(tc_inputs);
    std::vector<build::MatchSegment> matches;
    for (const auto &m :
         synth::groundTruthMatches(workload.pangenome, 16)) {
        matches.push_back({catalog.globalOffset(0, m.refStart),
                           catalog.globalOffset(m.haplotype + 1,
                                                m.hapStart),
                           m.length});
    }

    const Tool tools[] = {
        {"VgMap", 0.02,
         [&](unsigned t) {
             pipeline::MapperConfig config;
             config.profile = pipeline::ToolProfile::kVgMap;
             config.threads = t;
             pipeline::Seq2GraphMapper mapper(graph, config);
             mapper.mapReads(workload.shortReads);
         }},
        {"GraphAligner", 0.02,
         [&](unsigned t) {
             pipeline::MapperConfig config;
             config.profile = pipeline::ToolProfile::kGraphAligner;
             config.threads = t;
             pipeline::Seq2GraphMapper mapper(graph, config);
             mapper.mapReads(workload.longReads);
         }},
        {"Minigraph-lr", 0.03,
         [&](unsigned t) {
             pipeline::MapperConfig config;
             config.profile = pipeline::ToolProfile::kMinigraph;
             config.threads = t;
             pipeline::Seq2GraphMapper mapper(graph, config);
             mapper.mapReads(workload.longReads);
         }},
        {"Minigraph-cr", 1.00, // single-threaded (paper §5.1)
         [&](unsigned) {
             pipeline::MapperConfig config;
             config.profile = pipeline::ToolProfile::kMinigraph;
             config.threads = 1;
             pipeline::Seq2GraphMapper mapper(graph, config);
             std::vector<seq::Sequence> segments;
             const auto &chrom = workload.pangenome.haplotypes[0];
             for (size_t s = 0; s + 10000 <= chrom.size(); s += 10000)
                 segments.push_back(chrom.slice(s, 10000));
             mapper.mapReads(segments);
         }},
        {"OdgiLayout", 0.12, // sequential path-index preprocessing
         [&](unsigned t) {
             layout::PathIndex index(graph); // serial preprocessing
             layout::Layout l(graph.nodeCount(), 1);
             layout::PgsgdParams params;
             params.iterations = 5;
             params.threads = t;
             layout::pgsgdLayout(index, l, params);
         }},
        {"Seqwish", 0.75, // serial emission phases dominate (paper)
         [&](unsigned t) {
             build::TcOptions tc_options;
             tc_options.threads = t;
             build::transclose(catalog, matches, tc_options);
         }},
    };

    std::printf("measured wall-clock speedups (host has %u hardware "
                "threads):\n",
                core::hardwareThreads());
    std::printf("%-14s %24s | %s\n", "tool",
                "seconds @4/14/28/56", "speedup vs 4");
    for (const Tool &tool : tools) {
        const auto series =
            measureScaling(tool.name, thread_counts, tool.run);
        std::printf("%-14s %6.2f %5.2f %5.2f %5.2f |", tool.name,
                    series.points[0].seconds, series.points[1].seconds,
                    series.points[2].seconds,
                    series.points[3].seconds);
        for (const auto &point : series.points)
            std::printf(" %5.2f", point.speedup);
        std::printf("\n");
    }

    // ---- Kernel scaling sweep: the pool-parallel kernels, speedup
    // vs 1 thread. A small TC chunk size exposes enough chunks for 8
    // runners; the induced graph is chunk-size-invariant.
    const std::vector<unsigned> kernel_threads = {1, 2, 4, 8};
    struct Kernel
    {
        const char *name;
        std::function<void(unsigned)> run;
    };
    const Kernel kernels[] = {
        {"tc-sweep",
         [&](unsigned t) {
             build::TcOptions tc_options;
             tc_options.chunkSize = 1 << 14;
             tc_options.threads = t;
             build::transclose(catalog, matches, tc_options);
         }},
        {"minimizer",
         [&](unsigned t) {
             index::MinimizerIndex built(graph, 15, 10, t);
         }},
        {"gbwt",
         [&](unsigned t) {
             index::GbwtIndex built(graph, true, t);
         }},
    };
    std::printf("\nkernel scaling on the persistent pool (speedup vs "
                "1 thread; identical output at every count):\n");
    std::printf("%-14s %24s | %s\n", "kernel", "seconds @1/2/4/8",
                "speedup vs 1");
    std::vector<pipeline::ScalingSeries> kernel_series;
    for (const Kernel &kernel : kernels) {
        auto series =
            measureScaling(kernel.name, kernel_threads, kernel.run);
        std::printf("%-14s %6.2f %5.2f %5.2f %5.2f |", kernel.name,
                    series.points[0].seconds, series.points[1].seconds,
                    series.points[2].seconds,
                    series.points[3].seconds);
        for (const auto &point : series.points)
            std::printf(" %5.2f", point.speedup);
        std::printf("\n");
        kernel_series.push_back(std::move(series));
    }

    // ---- BENCH_fig5.json: the kernel series in machine-readable
    // form for the driver's acceptance checks.
    {
        core::CheckedWriter json("BENCH_fig5.json");
        auto &out = json.stream();
        out << "{\n  \"kernels\": [\n";
        for (size_t k = 0; k < kernel_series.size(); ++k) {
            const auto &series = kernel_series[k];
            out << "    {\"name\": \"" << series.tool
                << "\", \"points\": [";
            for (size_t p = 0; p < series.points.size(); ++p) {
                const auto &point = series.points[p];
                out << (p ? ", " : "") << "{\"threads\": "
                    << point.threads << ", \"seconds\": "
                    << point.seconds << ", \"speedup\": "
                    << point.speedup << "}";
            }
            out << "]}" << (k + 1 < kernel_series.size() ? "," : "")
                << "\n";
        }
        out << "  ],\n  \"hardware_threads\": "
            << core::hardwareThreads() << "\n}\n";
        json.finish();
        std::printf("\nwrote BENCH_fig5.json\n");
    }

    std::printf("\nAmdahl projection from serial fractions "
                "(reproduces the figure's shape on any host):\n");
    std::printf("%-14s %8s | %s\n", "tool", "serial",
                "projected speedup @4/14/28/56");
    for (const Tool &tool : tools) {
        std::printf("%-14s %7.2f%% |", tool.name,
                    100.0 * tool.serialFraction);
        const double base =
            amdahl(tool.serialFraction, 4, kPhysicalCores);
        for (unsigned t : thread_counts) {
            std::printf(" %5.2f",
                        amdahl(tool.serialFraction, t,
                               kPhysicalCores) / base);
        }
        std::printf("\n");
    }
    std::printf("\nPaper Figure 5: mapping tools ~5-6x at 28 threads "
                "(vs 4), flattening beyond; odgi layout sub-linear; "
                "seqwish ~flat beyond 4 threads; minigraph-cr "
                "single-threaded.\n");
    writeBenchMetrics("fig5");
    return 0;
}
