/**
 * @file
 * Ablation: GSSW's design levers — the striped SIMD engine vs the
 * per-cell scalar DP, and retaining the full DP matrices (gssw's
 * traceback requirement, the §6.1 memory bottleneck) vs discarding
 * them (the paper's proposed optimization).
 */

#include <benchmark/benchmark.h>

#include "align/gssw.hpp"
#include "bench_common.hpp"
#include "kernel_runners.hpp"

namespace {

using namespace pgb;
using namespace pgb::bench;

const KernelInputs &
inputs()
{
    static const StandardWorkload workload = makeStandardWorkload();
    static const KernelInputs in = captureKernelInputs(workload);
    return in;
}

void
BM_GsswStriped(benchmark::State &state)
{
    const auto &in = inputs();
    core::NullProbe probe;
    const bool keep = state.range(0) != 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(runGssw(in, probe, keep));
    state.SetLabel(keep ? "keepMatrices (gssw default)"
                        : "no matrix writeback (paper 6.1 proposal)");
}
BENCHMARK(BM_GsswStriped)->Arg(1)->Arg(0);

void
BM_GsswScalar(benchmark::State &state)
{
    const auto &in = inputs();
    for (auto _ : state) {
        uint64_t sink = 0;
        for (const auto &trace : in.gssw) {
            sink += static_cast<uint64_t>(
                align::gsswAlignScalar(
                    trace.subgraph, trace.query,
                    align::ScoreParams::mappingDefaults())
                    .score);
        }
        benchmark::DoNotOptimize(sink);
    }
    state.SetLabel("per-cell scalar DP (no SIMD)");
}
BENCHMARK(BM_GsswScalar);

} // namespace

BENCHMARK_MAIN();
