/**
 * @file
 * core::ArgParser tests: declared flags/options/aliases, typed
 * range-checked getters, positional access, and the fail-loud
 * contract for unknown dash-arguments and malformed numbers.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/arg_parser.hpp"
#include "core/logging.hpp"

namespace {

using namespace pgb;
using core::ArgParser;

/** Build argv from string literals and parse. */
bool
parseArgs(ArgParser &parser, std::vector<std::string> args)
{
    std::vector<char *> argv;
    for (auto &arg : args)
        argv.push_back(arg.data());
    return parser.parse(static_cast<int>(argv.size()), argv.data());
}

ArgParser
mapLikeParser()
{
    ArgParser parser("map", "<graph.gfa> <reads.fq>", "map reads");
    parser.option("--index", "art.pgbi", "load a prebuilt artifact");
    parser.option("--threads", "n", "worker threads", "-t");
    parser.flag("--verbose", "chatty output");
    return parser;
}

TEST(ArgParser, PositionalsAndOptionsSeparate)
{
    auto parser = mapLikeParser();
    ASSERT_TRUE(parseArgs(parser, {"g.gfa", "--threads", "4", "r.fq"}));
    ASSERT_EQ(parser.positionalCount(), 2u);
    EXPECT_EQ(parser.positional(0), "g.gfa");
    EXPECT_EQ(parser.positional(1), "r.fq");
    EXPECT_TRUE(parser.has("--threads"));
    EXPECT_EQ(parser.get("--threads"), "4");
    EXPECT_FALSE(parser.has("--index"));
    EXPECT_FALSE(parser.has("--verbose"));
}

TEST(ArgParser, AliasResolvesToCanonicalName)
{
    auto parser = mapLikeParser();
    ASSERT_TRUE(parseArgs(parser, {"-t", "8"}));
    EXPECT_TRUE(parser.has("--threads"));
    EXPECT_EQ(parser.getUint("--threads", 1, 1, 64), 8u);
}

TEST(ArgParser, FlagTakesNoValue)
{
    auto parser = mapLikeParser();
    ASSERT_TRUE(parseArgs(parser, {"--verbose", "g.gfa"}));
    EXPECT_TRUE(parser.has("--verbose"));
    ASSERT_EQ(parser.positionalCount(), 1u);
    EXPECT_EQ(parser.positional(0), "g.gfa");
}

TEST(ArgParser, UnknownOptionIsFatal)
{
    auto parser = mapLikeParser();
    EXPECT_THROW(parseArgs(parser, {"--bogus"}), core::FatalError);
    auto negative = mapLikeParser();
    // A negative number is an unknown dash-argument, not a positional.
    EXPECT_THROW(parseArgs(negative, {"-4"}), core::FatalError);
}

TEST(ArgParser, MissingOptionValueIsFatal)
{
    auto parser = mapLikeParser();
    EXPECT_THROW(parseArgs(parser, {"--threads"}), core::FatalError);
}

TEST(ArgParser, HelpShortCircuitsAndMentionsEveryOption)
{
    auto parser = mapLikeParser();
    EXPECT_FALSE(parseArgs(parser, {"--help"}));
    const std::string help = parser.helpText();
    EXPECT_NE(help.find("--index"), std::string::npos);
    EXPECT_NE(help.find("--threads"), std::string::npos);
    EXPECT_NE(help.find("-t"), std::string::npos);
    EXPECT_NE(help.find("--verbose"), std::string::npos);
    EXPECT_NE(help.find("usage: pgb map"), std::string::npos);
}

TEST(ArgParser, GetUintValidatesRange)
{
    auto parser = mapLikeParser();
    ASSERT_TRUE(parseArgs(parser, {"--threads", "300"}));
    EXPECT_THROW(parser.getUint("--threads", 1, 1, 256),
                 core::FatalError);
    EXPECT_EQ(parser.getUint("--index", 7, 0, 100), 7u)
        << "absent option must yield the fallback";
}

TEST(ArgParser, GetUintRejectsGarbage)
{
    auto parser = mapLikeParser();
    ASSERT_TRUE(parseArgs(parser, {"--threads", "banana"}));
    EXPECT_THROW(parser.getUint("--threads", 1, 1, 64),
                 core::FatalError);
}

TEST(ArgParser, PositionalAccessors)
{
    auto parser = mapLikeParser();
    ASSERT_TRUE(parseArgs(parser, {"g.gfa", "r.fq", "12"}));
    EXPECT_EQ(parser.positionalOr(0, "graph"), "g.gfa");
    EXPECT_EQ(parser.positionalOr(3, std::string("fallback")),
              "fallback");
    EXPECT_EQ(parser.positionalUint(2, "threads", 1, 1, 64), 12u);
    EXPECT_EQ(parser.positionalUint(5, "threads", 3, 1, 64), 3u);
    EXPECT_THROW(parser.positionalOr(3, "missing-operand"),
                 core::FatalError);
    EXPECT_THROW(parser.positionalUint(2, "threads", 1, 1, 8),
                 core::FatalError);
}

TEST(ArgParser, RequirePositionalsEnforcesBounds)
{
    auto parser = mapLikeParser();
    ASSERT_TRUE(parseArgs(parser, {"g.gfa", "r.fq"}));
    EXPECT_NO_THROW(parser.requirePositionals(1, 2));
    EXPECT_NO_THROW(parser.requirePositionals(2, 2));
    EXPECT_THROW(parser.requirePositionals(3, 4), core::FatalError);
    EXPECT_THROW(parser.requirePositionals(0, 1), core::FatalError);
}

TEST(ArgParser, ParseUintEdgeCases)
{
    EXPECT_EQ(core::parseUint("0", "n"), 0u);
    EXPECT_EQ(core::parseUint("18446744073709551615", "n"),
              UINT64_MAX);
    EXPECT_THROW(core::parseUint("", "n"), core::FatalError);
    EXPECT_THROW(core::parseUint("-1", "n"), core::FatalError);
    EXPECT_THROW(core::parseUint("1.5", "n"), core::FatalError);
    EXPECT_THROW(core::parseUint("8x", "n"), core::FatalError);
    EXPECT_THROW(core::parseUint("99999999999999999999999", "n"),
                 core::FatalError);
}

} // namespace
