/**
 * @file
 * Tests for the SIMT simulator: the occupancy calculator (which must
 * reproduce the paper's §5.3 numbers exactly), coalescing, divergence
 * accounting, and the launch timing model's monotonicity.
 */

#include <gtest/gtest.h>

#include "core/logging.hpp"
#include "gpusim/device.hpp"
#include "gpusim/launch.hpp"

namespace pgb::gpusim {
namespace {

// --------------------------------------------------------- Occupancy

TEST(Occupancy, Tsu32ThreadBlocksAreBlockLimited)
{
    // Paper Table 7 / §5.3: TSU's 32-thread blocks cap at 16 blocks
    // per SM = 512 threads of 1536 -> 33.3% theoretical.
    const auto device = DeviceSpec::rtxA6000();
    const auto occ = computeOccupancy(device, 32, 40);
    EXPECT_EQ(occ.blocksPerSm, 16u);
    EXPECT_EQ(occ.warpsPerSm, 16u);
    EXPECT_NEAR(occ.theoretical, 1.0 / 3.0, 1e-9);
    EXPECT_STREQ(occ.limiter, "blocks");
}

TEST(Occupancy, Pgsgd1024x44RegsIs66Percent)
{
    // Paper §5.3: 1024 threads x 44 registers -> one block per SM,
    // theoretical occupancy 66.7%.
    const auto device = DeviceSpec::rtxA6000();
    const auto occ = computeOccupancy(device, 1024, 44);
    EXPECT_EQ(occ.blocksPerSm, 1u);
    EXPECT_EQ(occ.warpsPerSm, 32u);
    EXPECT_NEAR(occ.theoretical, 2.0 / 3.0, 1e-9);
}

TEST(Occupancy, Pgsgd256x44RegsIs83Percent)
{
    // Paper §5.3: shrinking blocks to 256 threads fits five blocks
    // per SM -> 83.3%.
    const auto device = DeviceSpec::rtxA6000();
    const auto occ = computeOccupancy(device, 256, 44);
    EXPECT_EQ(occ.blocksPerSm, 5u);
    EXPECT_EQ(occ.warpsPerSm, 40u);
    EXPECT_NEAR(occ.theoretical, 5.0 / 6.0, 1e-9);
    EXPECT_STREQ(occ.limiter, "registers");
}

TEST(Occupancy, RejectsEmptyBlock)
{
    const auto device = DeviceSpec::rtxA6000();
    EXPECT_THROW(computeOccupancy(device, 0, 32), core::FatalError);
}

// -------------------------------------------------------- Coalescing

TEST(WarpContext, ConsecutiveAddressesCoalesceToOneTransaction)
{
    const auto device = DeviceSpec::rtxA6000();
    WarpContext warp(device, nullptr);
    uint64_t addrs[32];
    for (int lane = 0; lane < 32; ++lane)
        addrs[lane] = 0x10000 + lane * 4; // 128 contiguous bytes
    warp.memAccess({addrs, 32}, 4);
    EXPECT_EQ(warp.transactions(), 1u);
    EXPECT_EQ(warp.issued(), 1u);
    EXPECT_EQ(warp.activeLaneSlots(), 32u);
}

TEST(WarpContext, StridedAddressesAreUncoalesced)
{
    const auto device = DeviceSpec::rtxA6000();
    WarpContext warp(device, nullptr);
    uint64_t addrs[32];
    for (int lane = 0; lane < 32; ++lane)
        addrs[lane] = 0x10000 + lane * 4096; // one segment per lane
    warp.memAccess({addrs, 32}, 8);
    EXPECT_EQ(warp.transactions(), 32u);
}

TEST(WarpContext, StraddlingAccessTouchesTwoSegments)
{
    const auto device = DeviceSpec::rtxA6000();
    WarpContext warp(device, nullptr);
    uint64_t addr = 127; // 8-byte access crosses the 128 B boundary
    warp.memAccess({&addr, 1}, 8);
    EXPECT_EQ(warp.transactions(), 2u);
}

TEST(WarpContext, DivergenceLowersLaneSlots)
{
    const auto device = DeviceSpec::rtxA6000();
    WarpContext warp(device, nullptr);
    warp.issue(0x1);        // one lane
    warp.issue(0xFFFFFFFF); // full warp
    EXPECT_EQ(warp.issued(), 2u);
    EXPECT_EQ(warp.activeLaneSlots(), 33u);
}

// ------------------------------------------------------------ Launch

TEST(LaunchKernel, WarpUtilizationReflectsActiveMasks)
{
    const auto device = DeviceSpec::rtxA6000();
    LaunchConfig config;
    config.totalWarps = 10;
    config.modelCaches = false;
    const auto stats = launchKernel(
        device, config, [](uint64_t, WarpContext &warp) {
            for (int i = 0; i < 100; ++i)
                warp.issue(0xFFFF); // half the lanes active
        });
    EXPECT_NEAR(stats.warpUtilization, 0.5, 1e-9);
    EXPECT_EQ(stats.instructions, 1000u);
}

TEST(LaunchKernel, MoreWorkTakesMoreSimTime)
{
    const auto device = DeviceSpec::rtxA6000();
    LaunchConfig config;
    config.totalWarps = 4;
    config.modelCaches = false;
    auto run = [&](int ops) {
        return launchKernel(device, config,
                            [ops](uint64_t, WarpContext &warp) {
                                warp.issueUniform(
                                    static_cast<uint64_t>(ops));
                            })
            .simSeconds;
    };
    EXPECT_GT(run(100000), run(100));
}

TEST(LaunchKernel, UncoalescedTrafficRaisesBandwidthPressure)
{
    const auto device = DeviceSpec::rtxA6000();
    LaunchConfig config;
    config.totalWarps = 8;
    config.modelCaches = false;

    auto traffic = [&](uint64_t stride) {
        return launchKernel(
            device, config,
            [stride](uint64_t warp_id, WarpContext &warp) {
                uint64_t addrs[32];
                for (int rep = 0; rep < 50; ++rep) {
                    for (int lane = 0; lane < 32; ++lane) {
                        addrs[lane] = warp_id * (1 << 20) +
                            static_cast<uint64_t>(rep) * 131072 +
                            static_cast<uint64_t>(lane) * stride;
                    }
                    warp.memAccess({addrs, 32}, 8);
                }
            });
    };
    const auto coalesced = traffic(8);
    const auto scattered = traffic(2048);
    EXPECT_GT(scattered.transactions, coalesced.transactions * 8);
    EXPECT_GE(scattered.simSeconds, coalesced.simSeconds);
}

TEST(LaunchKernel, AchievedOccupancyBoundedByTheoretical)
{
    const auto device = DeviceSpec::rtxA6000();
    LaunchConfig config;
    config.blockThreads = 1024;
    config.regsPerThread = 44;
    config.totalWarps = 32 * 84 * 2; // two full waves
    config.modelCaches = false;
    const auto stats = launchKernel(
        device, config, [](uint64_t, WarpContext &warp) {
            warp.issueUniform(50);
        });
    EXPECT_LE(stats.achievedOccupancy,
              stats.occupancy.theoretical + 1e-9);
    EXPECT_GT(stats.achievedOccupancy, 0.0);
}

TEST(LaunchKernel, CacheModelReportsHitRates)
{
    const auto device = DeviceSpec::rtxA6000();
    LaunchConfig config;
    config.totalWarps = 4;
    config.modelCaches = true;
    const auto stats = launchKernel(
        device, config, [](uint64_t, WarpContext &warp) {
            // Repeatedly touch the same 128 B line: near-perfect L1.
            for (int i = 0; i < 100; ++i) {
                uint64_t addr = 0x1000;
                warp.memAccess({&addr, 1}, 4);
            }
        });
    EXPECT_GT(stats.l1HitRate, 0.95);
}

TEST(LaunchKernel, RejectsZeroWarps)
{
    const auto device = DeviceSpec::rtxA6000();
    LaunchConfig config;
    config.totalWarps = 0;
    EXPECT_THROW(
        launchKernel(device, config, [](uint64_t, WarpContext &) {}),
        core::FatalError);
}

} // namespace
} // namespace pgb::gpusim
