/**
 * @file
 * Seeder-strategy tests: the refactor that put seeding behind the
 * Seeder interface must be invisible for the minimizer backend
 * (bit-identical anchors to calling collectAnchorsInto directly) and
 * fully deterministic for the MEM backend — same anchors run-to-run,
 * build-context vs artifact-view context, and thread count 1 vs 8
 * (the ctest seeder_threads_{1,8} lanes rerun this file).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "core/logging.hpp"
#include "core/rng.hpp"
#include "index/fm_index.hpp"
#include "index/gbwt.hpp"
#include "index/minimizer.hpp"
#include "pipeline/chain.hpp"
#include "pipeline/context.hpp"
#include "pipeline/mapper.hpp"
#include "seq/read_sim.hpp"
#include "store/store.hpp"
#include "synth/pangenome_sim.hpp"

namespace {

using namespace pgb;

/** A small but structurally interesting pangenome plus reads. */
struct SeederFixture
{
    synth::Pangenome pangenome;
    std::vector<seq::Sequence> reads;

    SeederFixture()
    {
        synth::PangenomeConfig config = synth::mGraphLikeConfig(6000, 5);
        config.haplotypeCount = 3;
        pangenome = synth::simulatePangenome(config);
        seq::ReadSimulator sim(seq::ReadProfile::shortRead(), 0x5eed);
        for (size_t r = 0; r < 40; ++r) {
            auto read = sim.sample(
                pangenome.haplotypes[r % pangenome.haplotypes.size()]);
            read.read.setName("r" + std::to_string(r));
            reads.push_back(std::move(read.read));
        }
    }
};

const SeederFixture &
fixture()
{
    static SeederFixture instance;
    return instance;
}

std::shared_ptr<const pipeline::MappingContext>
buildContext(pipeline::SeederKind kind)
{
    return pipeline::MappingContext::Builder()
        .fromGraph(fixture().pangenome.graph)
        .seeder(kind)
        .build();
}

/** Anchors as comparable tuples. */
std::vector<std::tuple<uint32_t, uint32_t, uint32_t, bool, uint64_t>>
anchorTuples(const std::vector<pipeline::Anchor> &anchors)
{
    std::vector<std::tuple<uint32_t, uint32_t, uint32_t, bool, uint64_t>>
        tuples;
    for (const auto &a : anchors)
        tuples.emplace_back(a.queryPos, a.node, a.nodeOffset, a.reverse,
                            a.linearPos);
    return tuples;
}

std::vector<pipeline::Anchor>
collectVia(const pipeline::MappingContext &context,
           const seq::Sequence &read)
{
    std::vector<pipeline::Anchor> anchors;
    context.seeder().collect(read, anchors);
    return anchors;
}

// ---------------------------------------------------------------------
// MinimizerSeeder: a pass-through, proven bit-identical
// ---------------------------------------------------------------------

TEST(Seeder, MinimizerSeederBitIdenticalToCollectAnchors)
{
    const auto context = buildContext(pipeline::SeederKind::kMinimizer);
    ASSERT_EQ(context->seeder().kind(),
              pipeline::SeederKind::kMinimizer);
    for (const seq::Sequence &read : fixture().reads) {
        std::vector<pipeline::Anchor> direct;
        pipeline::collectAnchorsInto(read, context->minimizers(),
                                     context->linearization(), direct);
        EXPECT_EQ(anchorTuples(collectVia(*context, read)),
                  anchorTuples(direct))
            << read.name();
    }
}

// ---------------------------------------------------------------------
// MemSeeder: determinism and anchor-geometry correctness
// ---------------------------------------------------------------------

TEST(Seeder, MemSeederIsDeterministic)
{
    const auto context = buildContext(pipeline::SeederKind::kMem);
    ASSERT_EQ(context->seeder().kind(), pipeline::SeederKind::kMem);
    const auto rebuilt = buildContext(pipeline::SeederKind::kMem);
    size_t total = 0;
    for (const seq::Sequence &read : fixture().reads) {
        const auto first = anchorTuples(collectVia(*context, read));
        EXPECT_EQ(anchorTuples(collectVia(*context, read)), first)
            << read.name() << ": second collect drifted";
        EXPECT_EQ(anchorTuples(collectVia(*rebuilt, read)), first)
            << read.name() << ": independently built context drifted";
        total += first.size();
    }
    EXPECT_GT(total, 0u);
}

TEST(Seeder, MemSeederAnchorsAreCanonicallyOrderedAndUnique)
{
    const auto context = buildContext(pipeline::SeederKind::kMem);
    for (const seq::Sequence &read : fixture().reads) {
        const auto tuples = anchorTuples(collectVia(*context, read));
        EXPECT_TRUE(std::is_sorted(tuples.begin(), tuples.end()))
            << read.name();
        EXPECT_EQ(std::adjacent_find(tuples.begin(), tuples.end()),
                  tuples.end())
            << read.name() << ": duplicate anchor";
    }
}

/**
 * Exact-substring oracle on a single-node graph: one SMEM covering the
 * whole read, whose occurrence is split into k-length sub-anchors at
 * stride k plus a final flush window at L-k, each on the constant
 * diagonal of the occurrence. Checked on both strands.
 */
TEST(Seeder, MemSeederSubAnchorGeometryOnExactMatch)
{
    core::Xoshiro256StarStar rng(0x9e0);
    std::string text;
    {
        static const char bases[] = "ACGT";
        for (int i = 0; i < 2000; ++i)
            text += bases[rng.below(4)];
    }
    graph::PanGraph graph;
    const auto node = graph.addNode(seq::Sequence("", text));
    graph.addPath("p", {graph::Handle(node, false)});

    const auto context = pipeline::MappingContext::Builder()
                             .fromGraph(graph)
                             .seeder(pipeline::SeederKind::kMem)
                             .build();
    const auto k = static_cast<uint32_t>(context->k());

    const size_t at = 321, length = 100;
    seq::Sequence read("fwd", text.substr(at, length));
    // The expected window starts: stride k from 0, plus the L-k flush.
    std::vector<uint32_t> windows;
    for (uint32_t w = 0; w + k <= length; w += k)
        windows.push_back(w);
    if (length % k != 0)
        windows.push_back(static_cast<uint32_t>(length) - k);

    const auto fwd = collectVia(*context, read);
    std::vector<std::tuple<uint32_t, uint32_t, bool>> expected, got;
    for (const uint32_t w : windows)
        expected.emplace_back(w, static_cast<uint32_t>(at) + w, false);
    std::sort(expected.begin(), expected.end());
    for (const auto &a : fwd) {
        EXPECT_EQ(a.node, node);
        got.emplace_back(a.queryPos, a.nodeOffset, a.reverse);
    }
    std::sort(got.begin(), got.end());
    // The substring may occur elsewhere by chance (k=15 makes that
    // vanishingly unlikely in 2 kb); require exact equality.
    EXPECT_EQ(got, expected);

    // Reverse-complement read: same windows, reverse=true, and the
    // query position of the window at text offset at+w is L-w-k.
    seq::Sequence rc_read = read.reverseComplement();
    rc_read.setName("rc");
    const auto rc = collectVia(*context, rc_read);
    expected.clear();
    got.clear();
    for (const uint32_t w : windows)
        expected.emplace_back(static_cast<uint32_t>(length) - w - k,
                              static_cast<uint32_t>(at) + w, true);
    std::sort(expected.begin(), expected.end());
    for (const auto &a : rc) {
        EXPECT_EQ(a.node, node);
        got.emplace_back(a.queryPos, a.nodeOffset, a.reverse);
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected);
}

TEST(Seeder, MemSeederSkipsReadsShorterThanK)
{
    const auto context = buildContext(pipeline::SeederKind::kMem);
    const seq::Sequence stub("stub", "ACGT");
    EXPECT_TRUE(collectVia(*context, stub).empty());
}

// ---------------------------------------------------------------------
// Context plumbing: build vs artifact view, end-to-end mapping
// ---------------------------------------------------------------------

TEST(Seeder, MemSeederViaArtifactMatchesInMemoryBuild)
{
    const auto &graph = fixture().pangenome.graph;
    const auto built = buildContext(pipeline::SeederKind::kMem);

    const index::MinimizerIndex minimizers(graph, 15, 10);
    const index::FmIndex fm(graph);
    const std::string path = testing::TempDir() + "seeder_fixture.pgbi";
    store::writeArtifact(path, graph, minimizers, nullptr, &fm);
    const auto loaded = pipeline::MappingContext::Builder()
                            .fromArtifact(path)
                            .seeder(pipeline::SeederKind::kMem)
                            .build();
    ASSERT_NE(loaded->fmIndex(), nullptr);
    EXPECT_TRUE(loaded->fmIndex()->isView());

    for (const seq::Sequence &read : fixture().reads) {
        EXPECT_EQ(anchorTuples(collectVia(*loaded, read)),
                  anchorTuples(collectVia(*built, read)))
            << read.name();
    }
}

TEST(Seeder, MemSeederMappingsAreThreadCountInvariant)
{
    const auto context = buildContext(pipeline::SeederKind::kMem);
    auto config =
        pipeline::MapperConfig::forTool(pipeline::ToolProfile::kVgMap);
    config.threads = 1;
    std::vector<pipeline::ReadMapping> one, eight;
    pipeline::mapBatch(*context, config, fixture().reads, one);
    config.threads = 8;
    pipeline::mapBatch(*context, config, fixture().reads, eight);
    ASSERT_EQ(one.size(), eight.size());
    for (size_t r = 0; r < one.size(); ++r) {
        EXPECT_EQ(one[r].mapped, eight[r].mapped) << r;
        EXPECT_EQ(one[r].score, eight[r].score) << r;
        EXPECT_EQ(one[r].node, eight[r].node) << r;
        EXPECT_EQ(one[r].reverse, eight[r].reverse) << r;
    }
}

TEST(Seeder, MemSeederMapsMostSimulatedReads)
{
    // Not a tautology: a seeder emitting garbage anchors would still
    // be deterministic. It must also actually find the reads.
    const auto context = buildContext(pipeline::SeederKind::kMem);
    auto config =
        pipeline::MapperConfig::forTool(pipeline::ToolProfile::kVgMap);
    config.threads = 2;
    const auto stats =
        pipeline::mapBatch(*context, config, fixture().reads);
    EXPECT_GE(stats.mappedReads, fixture().reads.size() * 9 / 10);
}

TEST(Seeder, ParseSeederNames)
{
    EXPECT_EQ(pipeline::parseSeeder("minimizer"),
              pipeline::SeederKind::kMinimizer);
    EXPECT_EQ(pipeline::parseSeeder("mem"), pipeline::SeederKind::kMem);
    EXPECT_THROW(pipeline::parseSeeder("banana"), core::FatalError);
    EXPECT_STREQ(
        pipeline::seederName(pipeline::SeederKind::kMinimizer),
        "minimizer");
    EXPECT_STREQ(pipeline::seederName(pipeline::SeederKind::kMem),
                 "mem");
}

} // namespace
