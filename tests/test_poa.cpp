/**
 * @file
 * Tests for the POA (partial order alignment) substrate used by the
 * graph-building pipelines' induction/polishing stages.
 */

#include <gtest/gtest.h>

#include "align/poa.hpp"
#include "core/logging.hpp"
#include "core/rng.hpp"
#include "seq/sequence.hpp"

namespace pgb::align {
namespace {

using core::Rng;

std::vector<uint8_t>
mutate(Rng &rng, const std::vector<uint8_t> &donor, double rate)
{
    std::vector<uint8_t> out;
    for (uint8_t base : donor) {
        if (rng.chance(rate / 3))
            continue;
        if (rng.chance(rate / 3))
            out.push_back(static_cast<uint8_t>(rng.below(4)));
        if (rng.chance(rate)) {
            out.push_back(
                static_cast<uint8_t>((base + 1 + rng.below(3)) % 4));
        } else {
            out.push_back(base);
        }
    }
    if (out.empty())
        out.push_back(0);
    return out;
}

TEST(Poa, SeedingCreatesBackbone)
{
    PoaGraph poa;
    const auto seq = seq::encodeString("ACGTACGT");
    EXPECT_EQ(poa.addSequence(seq), 0);
    EXPECT_EQ(poa.nodeCount(), 8u);
    EXPECT_EQ(poa.sequenceCount(), 1u);
    EXPECT_EQ(seq::decodeString(poa.consensus()), "ACGTACGT");
}

TEST(Poa, IdenticalSequencesFuseCompletely)
{
    PoaGraph poa;
    const auto seq = seq::encodeString("ACGTACGTAC");
    poa.addSequence(seq);
    const int32_t score = poa.addSequence(seq);
    // Full fusion: no new nodes, maximal score.
    EXPECT_EQ(poa.nodeCount(), 10u);
    EXPECT_EQ(score, 10 * 2); // match bonus 2 per base
    EXPECT_EQ(seq::decodeString(poa.consensus()), "ACGTACGTAC");
}

TEST(Poa, MismatchCreatesBubble)
{
    PoaGraph poa;
    poa.addSequence(seq::encodeString("ACGTA"));
    poa.addSequence(seq::encodeString("ACCTA"));
    // One branching base: 5 + 1 nodes.
    EXPECT_EQ(poa.nodeCount(), 6u);
}

TEST(Poa, ConsensusRecoversCenterFromNoisyCopies)
{
    Rng rng(90);
    std::vector<uint8_t> center;
    for (int i = 0; i < 200; ++i)
        center.push_back(static_cast<uint8_t>(rng.below(4)));
    PoaGraph poa;
    poa.addSequence(center);
    for (int copy = 0; copy < 7; ++copy)
        poa.addSequence(mutate(rng, center, 0.03));
    const auto consensus = poa.consensus();
    EXPECT_NEAR(static_cast<double>(consensus.size()),
                static_cast<double>(center.size()), 15.0);
    // Edit distance between consensus and center must be small
    // relative to the ~3% per-copy noise.
    std::vector<int32_t> row(center.size() + 1);
    for (size_t i = 0; i <= center.size(); ++i)
        row[i] = static_cast<int32_t>(i);
    for (size_t j = 1; j <= consensus.size(); ++j) {
        int32_t diag = row[0];
        row[0] = static_cast<int32_t>(j);
        for (size_t i = 1; i <= center.size(); ++i) {
            const int32_t sub =
                center[i - 1] == consensus[j - 1] ? 0 : 1;
            const int32_t value =
                std::min({diag + sub, row[i] + 1, row[i - 1] + 1});
            diag = row[i];
            row[i] = value;
        }
    }
    EXPECT_LT(row[center.size()],
              static_cast<int32_t>(center.size()) / 5);
}

TEST(Poa, CellsComputedGrowsWithSequences)
{
    PoaGraph poa;
    const auto seq = seq::encodeString("ACGTACGTACGTACGT");
    poa.addSequence(seq);
    EXPECT_EQ(poa.cellsComputed(), 0u);
    poa.addSequence(seq);
    const uint64_t after_one = poa.cellsComputed();
    EXPECT_GT(after_one, 0u);
    poa.addSequence(seq);
    EXPECT_GT(poa.cellsComputed(), after_one);
}

TEST(Poa, BandingReducesWork)
{
    Rng rng(91);
    std::vector<uint8_t> center;
    for (int i = 0; i < 300; ++i)
        center.push_back(static_cast<uint8_t>(rng.below(4)));

    PoaParams exact;
    PoaGraph full(exact);
    full.addSequence(center);
    full.addSequence(mutate(rng, center, 0.02));

    PoaParams banded;
    banded.band = 32;
    PoaGraph narrow(banded);
    narrow.addSequence(center);
    narrow.addSequence(mutate(rng, center, 0.02));

    EXPECT_LT(narrow.cellsComputed(), full.cellsComputed());
}

TEST(Poa, RejectsEmptySequence)
{
    PoaGraph poa;
    EXPECT_THROW(poa.addSequence(std::vector<uint8_t>{}),
                 core::FatalError);
}

TEST(Poa, GraphStaysDagUnderManyInsertions)
{
    Rng rng(92);
    std::vector<uint8_t> center;
    for (int i = 0; i < 100; ++i)
        center.push_back(static_cast<uint8_t>(rng.below(4)));
    PoaGraph poa;
    poa.addSequence(center);
    for (int copy = 0; copy < 10; ++copy)
        poa.addSequence(mutate(rng, center, 0.1));
    // consensus() topo-sorts internally and panics on cycles.
    EXPECT_NO_THROW(poa.consensus());
    EXPECT_GE(poa.nodeCount(), center.size());
}

} // namespace
} // namespace pgb::align
