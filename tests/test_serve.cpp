/**
 * @file
 * Tests for the serving subsystem (DESIGN.md §10): wire-protocol
 * framing under torn reads, the batcher's time/size windows,
 * admission-control shedding, and — the acceptance bar — that a
 * response served through the daemon is byte-identical to a direct
 * mapBatch() call over the same reads. The ctest harness re-runs the
 * ServeServer digest tests under PGB_THREADS=1 and PGB_THREADS=8
 * (serve_threads_1/serve_threads_8), so batching through the daemon
 * inherits the scheduler's thread-count-invariance guarantee.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/fault.hpp"
#include "core/md5.hpp"
#include "index/gbwt.hpp"
#include "index/minimizer.hpp"
#include "store/store.hpp"
#include "core/thread_pool.hpp"
#include "core/timer.hpp"
#include "pipeline/context.hpp"
#include "pipeline/mapper.hpp"
#include "seq/read_sim.hpp"
#include "serve/admission.hpp"
#include "serve/batcher.hpp"
#include "serve/loadgen.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "synth/pangenome_sim.hpp"

namespace {

using namespace pgb;

// ---- protocol framing --------------------------------------------------

TEST(ServeProtocol, RequestRoundTrip)
{
    serve::Request request;
    request.id = 0x1122334455667788ull;
    request.fastq = "@r1\nACGT\n+\nIIII\n";
    const std::string frame = serve::encodeRequest(request);

    serve::FrameDecoder decoder;
    decoder.feed(frame.data(), frame.size());
    std::string payload;
    ASSERT_TRUE(decoder.next(payload));
    serve::Request decoded;
    std::string error;
    ASSERT_TRUE(serve::decodeRequest(payload, decoded, error)) << error;
    EXPECT_EQ(decoded.id, request.id);
    EXPECT_EQ(decoded.fastq, request.fastq);
    EXPECT_FALSE(decoder.next(payload));
    EXPECT_FALSE(decoder.error());
}

TEST(ServeProtocol, ResponseRoundTrip)
{
    serve::Response response;
    response.id = 42;
    response.status = serve::Status::kOverloaded;
    response.body = "request queue full";
    const std::string frame = serve::encodeResponse(response);

    serve::FrameDecoder decoder;
    decoder.feed(frame.data(), frame.size());
    std::string payload;
    ASSERT_TRUE(decoder.next(payload));
    serve::Response decoded;
    std::string error;
    ASSERT_TRUE(serve::decodeResponse(payload, decoded, error)) << error;
    EXPECT_EQ(decoded.id, 42u);
    EXPECT_EQ(decoded.status, serve::Status::kOverloaded);
    EXPECT_EQ(decoded.body, "request queue full");
}

TEST(ServeProtocol, TornReadsReassemble)
{
    // A stream socket may deliver frames in arbitrary fragments; the
    // decoder must reassemble them byte by byte, across frame
    // boundaries, without losing or duplicating messages.
    std::string stream;
    for (uint64_t i = 0; i < 5; ++i) {
        serve::Request request;
        request.id = i;
        request.fastq = "@r" + std::to_string(i) + "\nAC\n+\nII\n";
        stream += serve::encodeRequest(request);
    }

    serve::FrameDecoder decoder;
    std::string payload;
    std::vector<uint64_t> ids;
    for (size_t i = 0; i < stream.size(); ++i) {
        decoder.feed(stream.data() + i, 1);
        while (decoder.next(payload)) {
            serve::Request decoded;
            std::string error;
            ASSERT_TRUE(serve::decodeRequest(payload, decoded, error));
            ids.push_back(decoded.id);
        }
    }
    EXPECT_FALSE(decoder.error());
    EXPECT_EQ(ids, (std::vector<uint64_t>{0, 1, 2, 3, 4}));
    EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(ServeProtocol, OversizedFrameFailsClosed)
{
    // 0xFFFFFFFF declared bytes is far past kMaxFrameBytes: the
    // decoder must fail permanently instead of trying to buffer 4 GiB.
    const char bad[] = {'\xff', '\xff', '\xff', '\xff', 'x'};
    serve::FrameDecoder decoder;
    decoder.feed(bad, sizeof(bad));
    std::string payload;
    EXPECT_FALSE(decoder.next(payload));
    EXPECT_TRUE(decoder.error());
    EXPECT_FALSE(decoder.errorMessage().empty());
    // Once broken, always broken: later valid bytes must not revive it.
    const std::string frame = serve::encodeRequest(serve::Request{});
    decoder.feed(frame.data(), frame.size());
    EXPECT_FALSE(decoder.next(payload));
    EXPECT_TRUE(decoder.error());
}

TEST(ServeProtocol, RuntFrameFailsClosed)
{
    // A frame shorter than the request header cannot be a message.
    const char runt[] = {2, 0, 0, 0, 'a', 'b'};
    serve::FrameDecoder decoder;
    decoder.feed(runt, sizeof(runt));
    std::string payload;
    EXPECT_FALSE(decoder.next(payload));
    EXPECT_TRUE(decoder.error());
}

TEST(ServeProtocol, DecodeRejectsWrongType)
{
    serve::Request request;
    request.fastq = "@r\nA\n+\nI\n";
    const std::string frame = serve::encodeRequest(request);
    // Strip the length prefix to get the payload, then misuse it as a
    // response payload: the type byte must be rejected.
    const std::string payload = frame.substr(4);
    serve::Response response;
    std::string error;
    EXPECT_FALSE(serve::decodeResponse(payload, response, error));
    EXPECT_FALSE(error.empty());
}

TEST(ServeProtocol, RequestDeadlineRoundTrips)
{
    serve::Request request;
    request.id = 7;
    request.fastq = "@r\nACGT\n+\nIIII\n";
    request.hasDeadline = true;
    request.deadlineUs = 2500;
    const std::string frame = serve::encodeRequest(request);

    serve::FrameDecoder decoder;
    decoder.feed(frame.data(), frame.size());
    std::string payload;
    ASSERT_TRUE(decoder.next(payload));
    serve::Request decoded;
    std::string error;
    ASSERT_TRUE(serve::decodeRequest(payload, decoded, error)) << error;
    EXPECT_TRUE(decoded.hasDeadline);
    EXPECT_EQ(decoded.deadlineUs, 2500u);
    EXPECT_EQ(decoded.fastq, request.fastq);
}

TEST(ServeProtocol, AbsentDeadlineIsDistinctFromZeroBudget)
{
    // hasDeadline=false must survive the wire even though the budget
    // field is still transmitted: "no deadline" and "a deadline of
    // zero" are different requests (the latter sheds at admission).
    serve::Request none;
    none.fastq = "@r\nA\n+\nI\n";
    serve::Request zero = none;
    zero.hasDeadline = true;
    zero.deadlineUs = 0;

    for (const auto *request : {&none, &zero}) {
        const std::string frame = serve::encodeRequest(*request);
        serve::FrameDecoder decoder;
        decoder.feed(frame.data(), frame.size());
        std::string payload;
        ASSERT_TRUE(decoder.next(payload));
        serve::Request decoded;
        std::string error;
        ASSERT_TRUE(serve::decodeRequest(payload, decoded, error));
        EXPECT_EQ(decoded.hasDeadline, request->hasDeadline);
        EXPECT_EQ(decoded.deadlineUs, 0u);
    }
}

TEST(ServeProtocol, ControlFrameRoundTrips)
{
    for (const auto type : {serve::MsgType::kPing,
                            serve::MsgType::kStatus,
                            serve::MsgType::kReload}) {
        const std::string frame = serve::encodeControl(type, 31);
        serve::FrameDecoder decoder;
        decoder.feed(frame.data(), frame.size());
        std::string payload;
        ASSERT_TRUE(decoder.next(payload));
        serve::Request decoded;
        std::string error;
        ASSERT_TRUE(serve::decodeRequest(payload, decoded, error))
            << error;
        EXPECT_EQ(decoded.type, type);
        EXPECT_EQ(decoded.id, 31u);
        EXPECT_TRUE(decoded.fastq.empty());
    }
}

TEST(ServeProtocol, DeadlineExceededStatusRoundTrips)
{
    serve::Response response;
    response.id = 9;
    response.status = serve::Status::kDeadlineExceeded;
    response.body = "deadline expired while queued";
    const std::string frame = serve::encodeResponse(response);
    serve::FrameDecoder decoder;
    decoder.feed(frame.data(), frame.size());
    std::string payload;
    ASSERT_TRUE(decoder.next(payload));
    serve::Response decoded;
    std::string error;
    ASSERT_TRUE(serve::decodeResponse(payload, decoded, error)) << error;
    EXPECT_EQ(decoded.status, serve::Status::kDeadlineExceeded);
    EXPECT_STREQ(serve::statusName(decoded.status),
                 "DEADLINE_EXCEEDED");
}

// ---- admission control -------------------------------------------------

serve::Pending
pendingWithReads(uint64_t id, size_t reads)
{
    serve::Pending pending;
    pending.id = id;
    for (size_t i = 0; i < reads; ++i) {
        // += instead of operator+ chains: GCC 12's -Wrestrict trips a
        // false positive (PR105329) on char* + to_string temporaries.
        std::string name = "r";
        name += std::to_string(i);
        pending.reads.emplace_back(name, "ACGT");
    }
    pending.enqueueNanos = core::monotonicNanos();
    return pending;
}

TEST(ServeAdmission, ShedsAtDepthBound)
{
    serve::AdmissionQueue queue(2);
    EXPECT_EQ(queue.push(pendingWithReads(0, 1)),
              serve::AdmissionQueue::Push::kAccepted);
    EXPECT_EQ(queue.push(pendingWithReads(1, 1)),
              serve::AdmissionQueue::Push::kAccepted);
    EXPECT_EQ(queue.push(pendingWithReads(2, 1)),
              serve::AdmissionQueue::Push::kShed);
    EXPECT_EQ(queue.depth(), 2u);

    // Draining frees capacity: admission resumes.
    const auto drained = queue.drain(100);
    EXPECT_EQ(drained.size(), 2u);
    EXPECT_EQ(queue.push(pendingWithReads(3, 1)),
              serve::AdmissionQueue::Push::kAccepted);

    queue.close();
    EXPECT_EQ(queue.push(pendingWithReads(4, 1)),
              serve::AdmissionQueue::Push::kClosed);
}

TEST(ServeAdmission, DrainRespectsRequestBoundaries)
{
    serve::AdmissionQueue queue(16);
    queue.push(pendingWithReads(0, 3));
    queue.push(pendingWithReads(1, 3));
    queue.push(pendingWithReads(2, 3));

    // 3 + 3 fits in 7; adding the third request would exceed it.
    auto first = queue.drain(7);
    ASSERT_EQ(first.size(), 2u);
    EXPECT_EQ(first[0].id, 0u);
    EXPECT_EQ(first[1].id, 1u);

    // An oversized lone request still comes out (progress guarantee).
    auto second = queue.drain(1);
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0].id, 2u);
    EXPECT_EQ(queue.weight(), 0u);
}

// ---- batching windows --------------------------------------------------

TEST(ServeBatcher, SizeWindowFlushesWithoutWaiting)
{
    serve::AdmissionQueue queue(64);
    // Wait bound far beyond the test timeout: if the size trigger
    // does not fire, the test hangs and fails loudly.
    serve::Batcher batcher(queue, 4, 60u * 1000 * 1000);
    queue.push(pendingWithReads(0, 2));
    queue.push(pendingWithReads(1, 2));

    std::vector<serve::Pending> batch;
    core::WallTimer timer;
    ASSERT_TRUE(batcher.nextBatch(batch));
    EXPECT_LT(timer.seconds(), 10.0);
    ASSERT_EQ(batch.size(), 2u);
    EXPECT_EQ(batch[0].id, 0u);
    EXPECT_EQ(batch[1].id, 1u);
}

TEST(ServeBatcher, TimeWindowFlushesPartialBatch)
{
    serve::AdmissionQueue queue(64);
    serve::Batcher batcher(queue, 1000, 20000); // 20 ms window
    queue.push(pendingWithReads(7, 1));

    std::vector<serve::Pending> batch;
    core::WallTimer timer;
    ASSERT_TRUE(batcher.nextBatch(batch));
    const double waited = timer.seconds();
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].id, 7u);
    // The lone request must not be held hostage for the size window;
    // generous upper bound to stay robust on loaded CI machines.
    EXPECT_LT(waited, 10.0);
}

TEST(ServeBatcher, CloseDrainsThenEnds)
{
    serve::AdmissionQueue queue(64);
    serve::Batcher batcher(queue, 2, 1000);
    queue.push(pendingWithReads(0, 1));
    queue.push(pendingWithReads(1, 1));
    queue.push(pendingWithReads(2, 1));
    queue.close();

    std::vector<serve::Pending> batch;
    size_t seen = 0;
    while (batcher.nextBatch(batch))
        seen += batch.size();
    EXPECT_EQ(seen, 3u);
    ASSERT_FALSE(batcher.nextBatch(batch));
}

// ---- end-to-end: served output vs direct mapBatch ----------------------

/** Small fixed-seed pangenome + reads + mapping context. */
struct ServeFixture
{
    synth::Pangenome pangenome;
    std::vector<seq::Sequence> reads;
    std::shared_ptr<const pipeline::MappingContext> context;

    ServeFixture()
    {
        synth::PangenomeConfig config =
            synth::mGraphLikeConfig(12000, 7);
        config.haplotypeCount = 4;
        pangenome = synth::simulatePangenome(config);
        seq::ReadSimulator sim(seq::ReadProfile::shortRead(), 0x5eed);
        for (size_t r = 0; r < 30; ++r) {
            auto read = sim.sample(
                pangenome.haplotypes[r % pangenome.haplotypes.size()]);
            read.read.setName("sr_" + std::to_string(r));
            reads.push_back(std::move(read.read));
        }
        context = pipeline::MappingContext::Builder()
                      .fromGraph(pangenome.graph)
                      .buildGbwt(true)
                      .build();
    }
};

const ServeFixture &
serveFixture()
{
    static ServeFixture instance;
    return instance;
}

std::string
socketPathFor(const char *name)
{
    // sun_path caps at ~107 bytes and gtest temp dirs can be long;
    // /tmp + pid keeps it short and per-process unique.
    return std::string("/tmp/pgb_test_") + name + "_" +
           std::to_string(::getpid()) + ".sock";
}

/** Raw test client: connect, send frames, decode responses. */
struct TestClient
{
    int fd = -1;
    serve::FrameDecoder decoder;

    explicit TestClient(const std::string &path)
    {
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        sockaddr_un address{};
        address.sun_family = AF_UNIX;
        std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
        EXPECT_EQ(::connect(fd,
                            reinterpret_cast<const sockaddr *>(&address),
                            sizeof(address)),
                  0)
            << std::strerror(errno);
    }

    ~TestClient()
    {
        if (fd >= 0)
            ::close(fd);
    }

    void
    send(const std::string &bytes)
    {
        ASSERT_EQ(::write(fd, bytes.data(), bytes.size()),
                  static_cast<ssize_t>(bytes.size()));
    }

    serve::Response
    awaitResponse()
    {
        std::string payload;
        char buffer[4096];
        while (!decoder.next(payload)) {
            const ssize_t got = ::read(fd, buffer, sizeof(buffer));
            if (got <= 0) {
                ADD_FAILURE() << "connection died awaiting response";
                return {};
            }
            decoder.feed(buffer, static_cast<size_t>(got));
        }
        serve::Response response;
        std::string error;
        EXPECT_TRUE(serve::decodeResponse(payload, response, error))
            << error;
        return response;
    }
};

std::string
fastqText(const std::vector<seq::Sequence> &reads, size_t first,
          size_t count)
{
    std::string out;
    for (size_t i = first; i < first + count; ++i) {
        const std::string bases = reads[i].toString();
        out += '@' + reads[i].name() + '\n' + bases + "\n+\n" +
               std::string(bases.size(), 'I') + '\n';
    }
    return out;
}

TEST(ServeServer, ServedEqualsDirectMapBatch)
{
    const ServeFixture &fx = serveFixture();

    // Direct path: one mapBatch over all reads, formatted.
    pipeline::MapperConfig config = pipeline::MapperConfig::forTool(
        pipeline::ToolProfile::kVgMap);
    config.k = fx.context->k();
    config.w = fx.context->w();
    config.threads = core::hardwareThreads();
    std::vector<pipeline::ReadMapping> mappings;
    pipeline::mapBatch(*fx.context, config, fx.reads, mappings);
    const std::string direct =
        serve::formatMappings(fx.reads, mappings);

    // Served path: loadgen digest mode (one sequential pass), with a
    // batch window small enough that requests actually coalesce.
    const std::string socket_path = socketPathFor("digest");
    ::unlink(socket_path.c_str());
    serve::ServeConfig serve_config;
    serve_config.socketPath = socket_path;
    serve_config.maxBatchReads = 8;
    serve_config.maxWaitUs = 500;
    serve::Server server(fx.context, serve_config);
    std::thread daemon([&server] { server.run(); });
    ASSERT_TRUE(server.waitReady(10000));

    const std::string dump_path =
        testing::TempDir() + "pgb_served_dump.tsv";
    serve::LoadgenConfig loadgen;
    loadgen.socketPath = socket_path;
    loadgen.connections = 2;
    loadgen.readsPerRequest = 3;
    loadgen.dumpPath = dump_path;
    const serve::LoadgenReport report =
        serve::runLoadgen(loadgen, fx.reads);
    EXPECT_EQ(report.ok, (fx.reads.size() + 2) / 3);
    EXPECT_EQ(report.overloaded, 0u);
    EXPECT_EQ(report.errors, 0u);

    server.stop();
    daemon.join();

    std::ifstream dumped(dump_path, std::ios::binary);
    ASSERT_TRUE(dumped.good());
    std::stringstream served;
    served << dumped.rdbuf();

    // The acceptance bar: identical bytes, hence identical digests,
    // no matter how the daemon batched the requests.
    EXPECT_EQ(served.str(), direct);
    EXPECT_EQ(core::md5Hex(served.str()), core::md5Hex(direct));
    const serve::Server::Totals totals = server.totals();
    EXPECT_EQ(totals.reads, fx.reads.size());
    EXPECT_EQ(totals.badFrames, 0u);
}

TEST(ServeServer, OverloadedRequestsGetShedResponse)
{
    const ServeFixture &fx = serveFixture();
    const std::string socket_path = socketPathFor("shed");
    ::unlink(socket_path.c_str());

    // depth 1 + a long time window + a size window far above one
    // request: the first request parks in the queue for the full
    // window, so a second request deterministically finds it full.
    serve::ServeConfig serve_config;
    serve_config.socketPath = socket_path;
    serve_config.maxBatchReads = 1000;
    serve_config.maxWaitUs = 500 * 1000; // 500 ms
    serve_config.queueDepth = 1;
    serve::Server server(fx.context, serve_config);
    std::thread daemon([&server] { server.run(); });
    ASSERT_TRUE(server.waitReady(10000));
    {
        TestClient client(socket_path);
        serve::Request first;
        first.id = 1;
        first.fastq = fastqText(fx.reads, 0, 1);
        client.send(serve::encodeRequest(first));
        // Give the daemon time to admit #1 before #2 arrives.
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        serve::Request second;
        second.id = 2;
        second.fastq = fastqText(fx.reads, 1, 1);
        client.send(serve::encodeRequest(second));

        // Responses: #2 is shed immediately, #1 maps after the window.
        const serve::Response shed = client.awaitResponse();
        EXPECT_EQ(shed.id, 2u);
        EXPECT_EQ(shed.status, serve::Status::kOverloaded);
        const serve::Response ok = client.awaitResponse();
        EXPECT_EQ(ok.id, 1u);
        EXPECT_EQ(ok.status, serve::Status::kOk);
    }
    server.stop();
    daemon.join();
    EXPECT_EQ(server.totals().shed, 1u);
}

TEST(ServeServer, MalformedFastqGetsErrorResponseOnly)
{
    const ServeFixture &fx = serveFixture();
    const std::string socket_path = socketPathFor("badfq");
    ::unlink(socket_path.c_str());
    serve::ServeConfig serve_config;
    serve_config.socketPath = socket_path;
    serve_config.maxWaitUs = 500;
    serve::Server server(fx.context, serve_config);
    std::thread daemon([&server] { server.run(); });
    ASSERT_TRUE(server.waitReady(10000));
    {
        TestClient client(socket_path);
        serve::Request bad;
        bad.id = 9;
        bad.fastq = "this is not fastq\n";
        client.send(serve::encodeRequest(bad));
        const serve::Response error = client.awaitResponse();
        EXPECT_EQ(error.id, 9u);
        EXPECT_EQ(error.status, serve::Status::kError);
        EXPECT_FALSE(error.body.empty());

        // The connection survives a request-level error: a valid
        // request on the same connection still maps.
        serve::Request good;
        good.id = 10;
        good.fastq = fastqText(fx.reads, 0, 2);
        client.send(serve::encodeRequest(good));
        const serve::Response ok = client.awaitResponse();
        EXPECT_EQ(ok.id, 10u);
        EXPECT_EQ(ok.status, serve::Status::kOk);
    }
    server.stop();
    daemon.join();
}

TEST(ServeServer, MalformedFrameDropsOnlyThatConnection)
{
    const ServeFixture &fx = serveFixture();
    const std::string socket_path = socketPathFor("badframe");
    ::unlink(socket_path.c_str());
    serve::ServeConfig serve_config;
    serve_config.socketPath = socket_path;
    serve_config.maxWaitUs = 500;
    serve::Server server(fx.context, serve_config);
    std::thread daemon([&server] { server.run(); });
    ASSERT_TRUE(server.waitReady(10000));
    {
        // Connection A sends garbage: an impossible frame length.
        TestClient bad(socket_path);
        bad.send(std::string("\xff\xff\xff\xffgarbage", 11));
        char buffer[64];
        // The daemon severs A: read eventually returns 0 (EOF).
        ssize_t got;
        do {
            got = ::read(bad.fd, buffer, sizeof(buffer));
        } while (got > 0 || (got < 0 && errno == EINTR));
        EXPECT_EQ(got, 0) << std::strerror(errno);

        // Connection B, after A's violation, works untouched.
        TestClient good(socket_path);
        serve::Request request;
        request.id = 77;
        request.fastq = fastqText(fx.reads, 0, 1);
        good.send(serve::encodeRequest(request));
        const serve::Response ok = good.awaitResponse();
        EXPECT_EQ(ok.id, 77u);
        EXPECT_EQ(ok.status, serve::Status::kOk);
    }
    server.stop();
    daemon.join();
    EXPECT_GE(server.totals().badFrames, 1u);
}

// ---- injected connection faults degrade per DESIGN.md §6 ---------------

/** Reads until EOF/error; returns the final read() result. */
ssize_t
drainToEof(int fd)
{
    char buffer[256];
    ssize_t got;
    do {
        got = ::read(fd, buffer, sizeof(buffer));
    } while (got > 0 || (got < 0 && errno == EINTR));
    return got;
}

TEST(ServeServer, InjectedReadFaultDropsOnlyThatConnection)
{
    const ServeFixture &fx = serveFixture();
    const std::string socket_path = socketPathFor("readfault");
    ::unlink(socket_path.c_str());
    serve::ServeConfig serve_config;
    serve_config.socketPath = socket_path;
    serve_config.maxWaitUs = 500;
    serve::Server server(fx.context, serve_config);
    std::thread daemon([&server] { server.run(); });
    ASSERT_TRUE(server.waitReady(10000));

    core::fault::disarmAll();
    core::fault::arm("serve.read", 1);
    {
        // The victim's first read() faults: its connection is severed
        // (EOF on our side), and nothing else is harmed.
        TestClient victim(socket_path);
        serve::Request request;
        request.id = 1;
        request.fastq = fastqText(fx.reads, 0, 1);
        victim.send(serve::encodeRequest(request));
        EXPECT_EQ(drainToEof(victim.fd), 0) << std::strerror(errno);

        TestClient survivor(socket_path);
        serve::Request retry;
        retry.id = 2;
        retry.fastq = fastqText(fx.reads, 0, 1);
        survivor.send(serve::encodeRequest(retry));
        const serve::Response ok = survivor.awaitResponse();
        EXPECT_EQ(ok.id, 2u);
        EXPECT_EQ(ok.status, serve::Status::kOk);
    }
    core::fault::disarmAll();
    server.stop();
    daemon.join();
}

TEST(ServeServer, InjectedWriteFaultDropsOnlyThatConnection)
{
    const ServeFixture &fx = serveFixture();
    const std::string socket_path = socketPathFor("writefault");
    ::unlink(socket_path.c_str());
    serve::ServeConfig serve_config;
    serve_config.socketPath = socket_path;
    serve_config.maxWaitUs = 500;
    serve::Server server(fx.context, serve_config);
    std::thread daemon([&server] { server.run(); });
    ASSERT_TRUE(server.waitReady(10000));

    core::fault::disarmAll();
    core::fault::arm("serve.write", 1);
    {
        // The victim's response write faults: it sees EOF instead of
        // a response. The one-shot fault is then spent, so a second
        // connection round-trips normally.
        TestClient victim(socket_path);
        serve::Request request;
        request.id = 1;
        request.fastq = fastqText(fx.reads, 0, 1);
        victim.send(serve::encodeRequest(request));
        EXPECT_EQ(drainToEof(victim.fd), 0) << std::strerror(errno);

        TestClient survivor(socket_path);
        serve::Request retry;
        retry.id = 2;
        retry.fastq = fastqText(fx.reads, 0, 1);
        survivor.send(serve::encodeRequest(retry));
        const serve::Response ok = survivor.awaitResponse();
        EXPECT_EQ(ok.id, 2u);
        EXPECT_EQ(ok.status, serve::Status::kOk);
    }
    core::fault::disarmAll();
    server.stop();
    daemon.join();
}

TEST(ServeServer, InjectedAcceptFaultDropsOnlyThatPendingConnection)
{
    const ServeFixture &fx = serveFixture();
    const std::string socket_path = socketPathFor("acceptfault");
    ::unlink(socket_path.c_str());
    serve::ServeConfig serve_config;
    serve_config.socketPath = socket_path;
    serve_config.maxWaitUs = 500;
    serve::Server server(fx.context, serve_config);
    std::thread daemon([&server] { server.run(); });
    ASSERT_TRUE(server.waitReady(10000));

    core::fault::disarmAll();
    core::fault::arm("serve.accept", 1);
    {
        // connect() succeeds against the listen backlog, but the
        // faulted accept closes the fd immediately: EOF, no service.
        TestClient victim(socket_path);
        EXPECT_EQ(drainToEof(victim.fd), 0) << std::strerror(errno);

        TestClient survivor(socket_path);
        serve::Request request;
        request.id = 3;
        request.fastq = fastqText(fx.reads, 0, 1);
        survivor.send(serve::encodeRequest(request));
        const serve::Response ok = survivor.awaitResponse();
        EXPECT_EQ(ok.id, 3u);
        EXPECT_EQ(ok.status, serve::Status::kOk);
    }
    core::fault::disarmAll();
    server.stop();
    daemon.join();
}

// ---- deadlines ---------------------------------------------------------

TEST(ServeServer, ZeroDeadlineShedsAtAdmission)
{
    const ServeFixture &fx = serveFixture();
    const std::string socket_path = socketPathFor("deadline0");
    ::unlink(socket_path.c_str());
    serve::ServeConfig serve_config;
    serve_config.socketPath = socket_path;
    serve_config.maxWaitUs = 500;
    serve::Server server(fx.context, serve_config);
    std::thread daemon([&server] { server.run(); });
    ASSERT_TRUE(server.waitReady(10000));
    {
        TestClient client(socket_path);
        serve::Request request;
        request.id = 1;
        request.fastq = fastqText(fx.reads, 0, 1);
        request.hasDeadline = true;
        request.deadlineUs = 0;
        client.send(serve::encodeRequest(request));
        const serve::Response shed = client.awaitResponse();
        EXPECT_EQ(shed.id, 1u);
        EXPECT_EQ(shed.status, serve::Status::kDeadlineExceeded);

        // The same request without the lapsed deadline still maps —
        // the shed was the deadline's doing, nothing else's.
        serve::Request live = request;
        live.id = 2;
        live.hasDeadline = false;
        client.send(serve::encodeRequest(live));
        const serve::Response ok = client.awaitResponse();
        EXPECT_EQ(ok.id, 2u);
        EXPECT_EQ(ok.status, serve::Status::kOk);
    }
    server.stop();
    daemon.join();
    EXPECT_EQ(server.totals().deadlineExceeded, 1u);
    EXPECT_EQ(server.totals().reads, 1u); // only the live request
}

TEST(ServeServer, DeadlineShorterThanBatchWindowExpiresInQueue)
{
    const ServeFixture &fx = serveFixture();
    const std::string socket_path = socketPathFor("deadlineq");
    ::unlink(socket_path.c_str());
    // The batch window (300 ms) dwarfs the deadline (20 ms): the
    // request is admitted alive but must be shed when the batcher
    // composes, without ever reaching mapBatch().
    serve::ServeConfig serve_config;
    serve_config.socketPath = socket_path;
    serve_config.maxBatchReads = 1000;
    serve_config.maxWaitUs = 300 * 1000;
    serve::Server server(fx.context, serve_config);
    std::thread daemon([&server] { server.run(); });
    ASSERT_TRUE(server.waitReady(10000));
    {
        TestClient client(socket_path);
        serve::Request request;
        request.id = 4;
        request.fastq = fastqText(fx.reads, 0, 2);
        request.hasDeadline = true;
        request.deadlineUs = 20 * 1000;
        client.send(serve::encodeRequest(request));
        const serve::Response shed = client.awaitResponse();
        EXPECT_EQ(shed.id, 4u);
        EXPECT_EQ(shed.status, serve::Status::kDeadlineExceeded);
        EXPECT_EQ(shed.body, "deadline expired while queued");
    }
    server.stop();
    daemon.join();
    // The proof the expired request never reached mapBatch(): the
    // daemon mapped zero reads.
    EXPECT_EQ(server.totals().reads, 0u);
    EXPECT_EQ(server.totals().deadlineExceeded, 1u);
}

TEST(ServeServer, ExpiredMidQueueRequestsAreShedOutOfMixedBatches)
{
    const ServeFixture &fx = serveFixture();
    const std::string socket_path = socketPathFor("deadlinemix");
    ::unlink(socket_path.c_str());
    serve::ServeConfig serve_config;
    serve_config.socketPath = socket_path;
    serve_config.maxBatchReads = 1000;
    serve_config.maxWaitUs = 300 * 1000;
    serve::Server server(fx.context, serve_config);
    std::thread daemon([&server] { server.run(); });
    ASSERT_TRUE(server.waitReady(10000));
    {
        TestClient client(socket_path);
        // Two requests share the batch window; only one has a
        // deadline shorter than it. The batch that reaches mapBatch()
        // must contain exactly the survivor's reads.
        serve::Request doomed;
        doomed.id = 1;
        doomed.fastq = fastqText(fx.reads, 0, 2);
        doomed.hasDeadline = true;
        doomed.deadlineUs = 20 * 1000;
        client.send(serve::encodeRequest(doomed));
        serve::Request survivor;
        survivor.id = 2;
        survivor.fastq = fastqText(fx.reads, 2, 3);
        client.send(serve::encodeRequest(survivor));

        const serve::Response shed = client.awaitResponse();
        EXPECT_EQ(shed.id, 1u);
        EXPECT_EQ(shed.status, serve::Status::kDeadlineExceeded);
        const serve::Response ok = client.awaitResponse();
        EXPECT_EQ(ok.id, 2u);
        EXPECT_EQ(ok.status, serve::Status::kOk);
    }
    server.stop();
    daemon.join();
    EXPECT_EQ(server.totals().reads, 3u); // the survivor's, only
    EXPECT_EQ(server.totals().deadlineExceeded, 1u);
}

// ---- health + control frames -------------------------------------------

TEST(ServeServer, PingAnswersPongWithoutQueueing)
{
    const ServeFixture &fx = serveFixture();
    const std::string socket_path = socketPathFor("ping");
    ::unlink(socket_path.c_str());
    // A huge batch window: if PING went through the admission queue
    // it would sit there for the window; answered inline it is
    // immediate — the test's 300 s ctest timeout is the backstop.
    serve::ServeConfig serve_config;
    serve_config.socketPath = socket_path;
    serve_config.maxWaitUs = 60u * 1000 * 1000;
    serve::Server server(fx.context, serve_config);
    std::thread daemon([&server] { server.run(); });
    ASSERT_TRUE(server.waitReady(10000));
    {
        TestClient client(socket_path);
        client.send(serve::encodeControl(serve::MsgType::kPing, 11));
        const serve::Response pong = client.awaitResponse();
        EXPECT_EQ(pong.id, 11u);
        EXPECT_EQ(pong.status, serve::Status::kOk);
        EXPECT_EQ(pong.body, "pong");
    }
    server.stop();
    daemon.join();
}

TEST(ServeServer, StatusAnswersMetricsSnapshot)
{
    const ServeFixture &fx = serveFixture();
    const std::string socket_path = socketPathFor("status");
    ::unlink(socket_path.c_str());
    serve::ServeConfig serve_config;
    serve_config.socketPath = socket_path;
    serve_config.maxWaitUs = 500;
    serve::Server server(fx.context, serve_config);
    std::thread daemon([&server] { server.run(); });
    ASSERT_TRUE(server.waitReady(10000));
    {
        // runControl is the `pgb ctl` client path; exercising it here
        // covers frame encode, the inline dispatch, and decode.
        const serve::Response status =
            serve::runControl(socket_path, serve::MsgType::kStatus);
        EXPECT_EQ(status.status, serve::Status::kOk);
        EXPECT_NE(status.body.find("pgb.metrics.v1"),
                  std::string::npos);
        EXPECT_NE(status.body.find("serve.requests"),
                  std::string::npos);
    }
    server.stop();
    daemon.join();
}

// ---- hot index reload --------------------------------------------------

/** A `.pgbi` artifact over the shared fixture's graph, plus a context
 *  loaded from it — what a reloadable daemon serves. */
struct ArtifactFixture
{
    std::string path;
    std::shared_ptr<const pipeline::MappingContext> context;

    ArtifactFixture()
    {
        const ServeFixture &fx = serveFixture();
        path = testing::TempDir() + "pgb_serve_reload.pgbi";
        const index::MinimizerIndex minimizers(fx.pangenome.graph, 15,
                                               10, 1);
        const index::GbwtIndex gbwt(fx.pangenome.graph, true, 1);
        store::writeArtifact(path, fx.pangenome.graph, minimizers,
                             &gbwt);
        context = pipeline::MappingContext::Builder()
                      .fromArtifact(path)
                      .build();
    }
};

const ArtifactFixture &
artifactFixture()
{
    static ArtifactFixture instance;
    return instance;
}

TEST(ServeServer, ReloadFrameSwapsIndexAndKeepsServing)
{
    const ServeFixture &fx = serveFixture();
    const ArtifactFixture &art = artifactFixture();
    const std::string socket_path = socketPathFor("reload");
    ::unlink(socket_path.c_str());
    serve::ServeConfig serve_config;
    serve_config.socketPath = socket_path;
    serve_config.maxWaitUs = 500;
    serve_config.indexPath = art.path;
    serve::Server server(art.context, serve_config);
    std::thread daemon([&server] { server.run(); });
    ASSERT_TRUE(server.waitReady(10000));
    {
        TestClient client(socket_path);
        serve::Request before;
        before.id = 1;
        before.fastq = fastqText(fx.reads, 0, 2);
        client.send(serve::encodeRequest(before));
        const serve::Response first = client.awaitResponse();
        EXPECT_EQ(first.status, serve::Status::kOk);

        client.send(serve::encodeControl(serve::MsgType::kReload, 2));
        const serve::Response reloaded = client.awaitResponse();
        EXPECT_EQ(reloaded.id, 2u);
        EXPECT_EQ(reloaded.status, serve::Status::kOk);
        EXPECT_NE(reloaded.body.find("reloaded"), std::string::npos);

        // Mapping on the swapped index matches the pre-reload answer:
        // same artifact, so byte-identical output.
        serve::Request after;
        after.id = 3;
        after.fastq = before.fastq;
        client.send(serve::encodeRequest(after));
        const serve::Response second = client.awaitResponse();
        EXPECT_EQ(second.status, serve::Status::kOk);
        EXPECT_EQ(second.body, first.body);
    }
    server.stop();
    daemon.join();
    EXPECT_EQ(server.totals().reloadsOk, 1u);
    EXPECT_EQ(server.totals().reloadsFailed, 0u);
}

TEST(ServeServer, FailedReloadKeepsServingOldIndex)
{
    const ServeFixture &fx = serveFixture();
    const ArtifactFixture &art = artifactFixture();
    const std::string socket_path = socketPathFor("reloadfail");
    ::unlink(socket_path.c_str());
    serve::ServeConfig serve_config;
    serve_config.socketPath = socket_path;
    serve_config.maxWaitUs = 500;
    serve_config.indexPath = art.path;
    serve::Server server(art.context, serve_config);
    std::thread daemon([&server] { server.run(); });
    ASSERT_TRUE(server.waitReady(10000));

    core::fault::disarmAll();
    core::fault::arm("serve.reload", 1);
    {
        TestClient client(socket_path);
        client.send(serve::encodeControl(serve::MsgType::kReload, 1));
        const serve::Response failed = client.awaitResponse();
        EXPECT_EQ(failed.id, 1u);
        EXPECT_EQ(failed.status, serve::Status::kError);
        EXPECT_FALSE(failed.body.empty());

        // Graceful degradation: the old index keeps serving.
        serve::Request request;
        request.id = 2;
        request.fastq = fastqText(fx.reads, 0, 1);
        client.send(serve::encodeRequest(request));
        const serve::Response ok = client.awaitResponse();
        EXPECT_EQ(ok.id, 2u);
        EXPECT_EQ(ok.status, serve::Status::kOk);
    }
    core::fault::disarmAll();
    server.stop();
    daemon.join();
    EXPECT_EQ(server.totals().reloadsFailed, 1u);
    EXPECT_EQ(server.totals().reloadsOk, 0u);
}

TEST(ServeServer, ReloadWithoutArtifactFailsGracefully)
{
    const ServeFixture &fx = serveFixture();
    const std::string socket_path = socketPathFor("reloadnone");
    ::unlink(socket_path.c_str());
    // In-memory context, no indexPath: reload is unsupported and must
    // say so without disturbing service.
    serve::ServeConfig serve_config;
    serve_config.socketPath = socket_path;
    serve_config.maxWaitUs = 500;
    serve::Server server(fx.context, serve_config);
    std::thread daemon([&server] { server.run(); });
    ASSERT_TRUE(server.waitReady(10000));
    {
        const serve::Response refused =
            serve::runControl(socket_path, serve::MsgType::kReload);
        EXPECT_EQ(refused.status, serve::Status::kError);
        EXPECT_NE(refused.body.find("without --index"),
                  std::string::npos);

        TestClient client(socket_path);
        serve::Request request;
        request.id = 1;
        request.fastq = fastqText(fx.reads, 0, 1);
        client.send(serve::encodeRequest(request));
        EXPECT_EQ(client.awaitResponse().status, serve::Status::kOk);
    }
    server.stop();
    daemon.join();
    EXPECT_EQ(server.totals().reloadsFailed, 1u);
}

TEST(ServeServer, ReloadUnderLoadKeepsDigestIdentity)
{
    // The acceptance bar for hot reload: swapping the index mid-run
    // (same artifact) must not change a single served byte, at every
    // pool width (this suite runs under serve_threads_1/8), and no
    // in-flight request may be dropped.
    const ServeFixture &fx = serveFixture();
    const ArtifactFixture &art = artifactFixture();

    pipeline::MapperConfig config = pipeline::MapperConfig::forTool(
        pipeline::ToolProfile::kVgMap);
    config.k = art.context->k();
    config.w = art.context->w();
    config.threads = core::hardwareThreads();
    std::vector<pipeline::ReadMapping> mappings;
    pipeline::mapBatch(*art.context, config, fx.reads, mappings);
    const std::string direct =
        serve::formatMappings(fx.reads, mappings);

    const std::string socket_path = socketPathFor("reloadload");
    ::unlink(socket_path.c_str());
    serve::ServeConfig serve_config;
    serve_config.socketPath = socket_path;
    serve_config.maxBatchReads = 8;
    serve_config.maxWaitUs = 500;
    serve_config.indexPath = art.path;
    serve::Server server(art.context, serve_config);
    std::thread daemon([&server] { server.run(); });
    ASSERT_TRUE(server.waitReady(10000));

    std::atomic<bool> done{false};
    std::thread reloader([&] {
        while (!done.load()) {
            const serve::Response response = serve::runControl(
                socket_path, serve::MsgType::kReload);
            // OK, or ERROR("reload already in progress") when we
            // outpace the loader — both are contract-clean.
            if (response.status != serve::Status::kOk) {
                EXPECT_NE(response.body.find("in progress"),
                          std::string::npos)
                    << response.body;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        }
    });

    const std::string dump_path =
        testing::TempDir() + "pgb_reload_dump.tsv";
    serve::LoadgenConfig loadgen;
    loadgen.socketPath = socket_path;
    loadgen.connections = 2;
    loadgen.readsPerRequest = 3;
    loadgen.dumpPath = dump_path;
    const serve::LoadgenReport report =
        serve::runLoadgen(loadgen, fx.reads);
    done.store(true);
    reloader.join();
    server.stop();
    daemon.join();

    // No dropped in-flight requests, and byte-identical output.
    EXPECT_EQ(report.ok, (fx.reads.size() + 2) / 3);
    EXPECT_EQ(report.errors, 0u);
    EXPECT_EQ(report.overloaded, 0u);
    std::ifstream dumped(dump_path, std::ios::binary);
    ASSERT_TRUE(dumped.good());
    std::stringstream served;
    served << dumped.rdbuf();
    EXPECT_EQ(served.str(), direct);
    EXPECT_GE(server.totals().reloadsOk, 1u);
}

// ---- watchdog ----------------------------------------------------------

TEST(ServeServer, WatchdogReportsStalledBatchWithDiagnostics)
{
    const ServeFixture &fx = serveFixture();
    const std::string socket_path = socketPathFor("watchdog");
    ::unlink(socket_path.c_str());
    serve::ServeConfig serve_config;
    serve_config.socketPath = socket_path;
    serve_config.maxWaitUs = 500;
    serve_config.stallBudgetMs = 50;
    std::promise<std::string> dumped;
    std::atomic<bool> fired{false};
    serve_config.onStall = [&](const std::string &dump) {
        if (!fired.exchange(true))
            dumped.set_value(dump);
    };
    serve::Server server(fx.context, serve_config);
    std::thread daemon([&server] { server.run(); });
    ASSERT_TRUE(server.waitReady(10000));

    core::fault::disarmAll();
    core::fault::arm("serve.stall", 1);
    {
        TestClient client(socket_path);
        serve::Request request;
        request.id = 1;
        request.fastq = fastqText(fx.reads, 0, 1);
        client.send(serve::encodeRequest(request));

        auto future = dumped.get_future();
        ASSERT_EQ(future.wait_for(std::chrono::seconds(30)),
                  std::future_status::ready)
            << "watchdog never fired";
        const std::string dump = future.get();
        EXPECT_NE(dump.find("watchdog"), std::string::npos) << dump;
        EXPECT_NE(dump.find("open connections"), std::string::npos);
        EXPECT_NE(dump.find("queue depth"), std::string::npos);
        EXPECT_NE(dump.find("oldest admission age"),
                  std::string::npos);

        // With the test hook installed the daemon survives the stall
        // and still answers once the injected hold ends.
        const serve::Response ok = client.awaitResponse();
        EXPECT_EQ(ok.id, 1u);
        EXPECT_EQ(ok.status, serve::Status::kOk);
    }
    core::fault::disarmAll();
    server.stop();
    daemon.join();
    EXPECT_GE(server.totals().watchdogStalls, 1u);
}

} // namespace
