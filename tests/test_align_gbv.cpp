/**
 * @file
 * Tests for GBV (graph Myers bit-vector) against the per-cell
 * reference, over linear, branching, reconverging, and cyclic graphs,
 * plus the column expand/rebuild machinery and traceback sanity.
 */

#include <gtest/gtest.h>

#include "align/gbv.hpp"
#include "core/rng.hpp"
#include "graph/local_graph.hpp"
#include "seq/sequence.hpp"

namespace pgb::align {
namespace {

using core::Rng;
using graph::LocalGraph;

std::vector<uint8_t>
randomBases(Rng &rng, size_t length)
{
    std::vector<uint8_t> bases;
    for (size_t i = 0; i < length; ++i)
        bases.push_back(static_cast<uint8_t>(rng.below(4)));
    return bases;
}

/** Plain semi-global edit distance (query global, text free ends). */
int32_t
linearSemiGlobal(const std::vector<uint8_t> &query,
                 const std::vector<uint8_t> &text)
{
    const size_t m = query.size();
    std::vector<int32_t> col(m + 1);
    for (size_t i = 0; i <= m; ++i)
        col[i] = static_cast<int32_t>(i);
    int32_t best = col[m];
    for (uint8_t t : text) {
        int32_t diag = col[0];
        col[0] = 0; // free text start
        for (size_t i = 1; i <= m; ++i) {
            const int32_t sub = query[i - 1] == t ? 0 : 1;
            const int32_t value =
                std::min({diag + sub, col[i] + 1, col[i - 1] + 1});
            diag = col[i];
            col[i] = value;
        }
        best = std::min(best, col[m]);
    }
    return best;
}

// ----------------------------------------------- expand/rebuild

TEST(GbvColumns, ExpandRebuildRoundTrip)
{
    Rng rng(70);
    for (int round = 0; round < 20; ++round) {
        const size_t m = 1 + rng.below(200);
        const size_t words = (m + 63) / 64;
        // Random unit-delta score vector starting from 0.
        std::vector<int32_t> scores(m);
        int32_t s = 0;
        for (size_t i = 0; i < m; ++i) {
            s += static_cast<int32_t>(rng.below(3)) - 1;
            scores[i] = s;
        }
        const GbvColumn column = gbvdetail::rebuildColumn(scores, words);
        std::vector<int32_t> out;
        gbvdetail::expandScores(column, m, out);
        ASSERT_EQ(out, scores) << "round " << round;
        EXPECT_EQ(column.score, scores.back());
    }
}

// ------------------------------------------------------------- GBV

TEST(Gbv, PerfectMatchIsZero)
{
    LocalGraph g;
    g.addNode("ACGTACGT");
    g.finalize();
    const auto query = seq::encodeString("GTAC");
    const auto result = gbvAlign(g, query);
    EXPECT_EQ(result.distance, 0);
}

TEST(Gbv, LinearGraphMatchesLinearMyers)
{
    Rng rng(71);
    for (int round = 0; round < 20; ++round) {
        const auto text = randomBases(rng, 20 + rng.below(150));
        const auto query = randomBases(rng, 1 + rng.below(100));
        LocalGraph g;
        g.addNode(std::vector<uint8_t>(text));
        g.finalize();
        const auto result = gbvAlign(g, query);
        ASSERT_EQ(result.distance, linearSemiGlobal(query, text))
            << "round " << round;
    }
}

TEST(Gbv, MultiWordQueries)
{
    Rng rng(72);
    // Query lengths straddling the 64-bit word boundaries.
    for (size_t m : {63u, 64u, 65u, 127u, 128u, 129u, 300u}) {
        const auto text = randomBases(rng, 400);
        std::vector<uint8_t> query(text.begin() + 50,
                                   text.begin() + 50 + m);
        // Two mismatches.
        query[m / 3] = static_cast<uint8_t>((query[m / 3] + 1) % 4);
        query[m / 2] = static_cast<uint8_t>((query[m / 2] + 2) % 4);
        LocalGraph g;
        g.addNode(std::vector<uint8_t>(text));
        g.finalize();
        const auto result = gbvAlign(g, query);
        ASSERT_EQ(result.distance, linearSemiGlobal(query, text))
            << "m=" << m;
    }
}

TEST(Gbv, MatchesScalarOnRandomDags)
{
    Rng rng(73);
    for (int round = 0; round < 20; ++round) {
        LocalGraph g;
        const size_t n_nodes = 2 + rng.below(10);
        for (size_t v = 0; v < n_nodes; ++v)
            g.addNode(randomBases(rng, 1 + rng.below(10)));
        for (size_t v = 0; v + 1 < n_nodes; ++v) {
            g.addEdge(static_cast<uint32_t>(v),
                      static_cast<uint32_t>(v + 1));
            if (v + 2 < n_nodes && rng.chance(0.4)) {
                g.addEdge(static_cast<uint32_t>(v),
                          static_cast<uint32_t>(
                              v + 2 + rng.below(n_nodes - v - 2)));
            }
        }
        g.finalize();
        const auto query = randomBases(rng, 1 + rng.below(40));
        const auto fast = gbvAlign(g, query);
        const int32_t slow = gbvAlignScalar(g, query);
        ASSERT_EQ(fast.distance, slow) << "round " << round;
    }
}

TEST(Gbv, ReconvergingBubbleTakesBestBranch)
{
    LocalGraph g;
    const uint32_t a = g.addNode("AC");
    const uint32_t alt1 = g.addNode("G");
    const uint32_t alt2 = g.addNode("T");
    const uint32_t d = g.addNode("CA");
    g.addEdge(a, alt1);
    g.addEdge(a, alt2);
    g.addEdge(alt1, d);
    g.addEdge(alt2, d);
    g.finalize();
    EXPECT_EQ(gbvAlign(g, seq::encodeString("ACGCA")).distance, 0);
    EXPECT_EQ(gbvAlign(g, seq::encodeString("ACTCA")).distance, 0);
    EXPECT_EQ(gbvAlign(g, seq::encodeString("ACCCA")).distance, 1);
}

TEST(Gbv, CyclicGraphRequeuesAndConverges)
{
    // A -> B -> A cycle; query needs two trips around.
    LocalGraph g;
    const uint32_t a = g.addNode("ACG");
    const uint32_t b = g.addNode("TT");
    g.addEdge(a, b);
    g.addEdge(b, a);
    g.finalize();
    const auto query = seq::encodeString("ACGTTACGTT");
    const auto result = gbvAlign(g, query);
    EXPECT_EQ(result.distance, 0);
    EXPECT_GT(result.requeues, 0u);
    EXPECT_EQ(result.distance, gbvAlignScalar(g, query));
}

TEST(Gbv, CyclicRandomGraphsMatchScalar)
{
    Rng rng(74);
    for (int round = 0; round < 10; ++round) {
        LocalGraph g;
        const size_t n_nodes = 3 + rng.below(5);
        for (size_t v = 0; v < n_nodes; ++v)
            g.addNode(randomBases(rng, 1 + rng.below(4)));
        for (size_t v = 0; v + 1 < n_nodes; ++v) {
            g.addEdge(static_cast<uint32_t>(v),
                      static_cast<uint32_t>(v + 1));
        }
        g.addEdge(static_cast<uint32_t>(n_nodes - 1),
                  static_cast<uint32_t>(rng.below(n_nodes)));
        g.finalize();
        const auto query = randomBases(rng, 1 + rng.below(25));
        const auto fast = gbvAlign(g, query);
        const int32_t slow = gbvAlignScalar(g, query);
        ASSERT_EQ(fast.distance, slow) << "round " << round;
    }
}

TEST(Gbv, MergeCountIncreasesWithReconvergence)
{
    // Wide reconvergence: many parents into one node.
    LocalGraph g;
    const uint32_t src = g.addNode("A");
    std::vector<uint32_t> mids;
    for (int i = 0; i < 6; ++i) {
        mids.push_back(g.addNode(std::string(1, "ACGT"[i % 4])));
        g.addEdge(src, mids.back());
    }
    const uint32_t sink = g.addNode("T");
    for (uint32_t mid : mids)
        g.addEdge(mid, sink);
    g.finalize();
    const auto query = seq::encodeString("AAT");
    const auto result = gbvAlign(g, query);
    EXPECT_GT(result.merges, 0u);
    EXPECT_EQ(result.distance, gbvAlignScalar(g, query));
}

TEST(Gbv, TracebackProducesConnectedWalk)
{
    LocalGraph g;
    const uint32_t a = g.addNode("ACGT");
    const uint32_t b = g.addNode("TTAA");
    g.addEdge(a, b);
    g.finalize();
    const auto query = seq::encodeString("CGTTTA");
    GbvOptions options;
    options.traceback = true;
    const auto result = gbvAlign(g, query, options);
    EXPECT_EQ(result.distance, 0);
    ASSERT_GE(result.traceWalk.size(), 2u);
    // Consecutive walk nodes are connected in the 1 bp expansion.
    const LocalGraph g1 = g.splitTo1bp();
    for (size_t i = 0; i + 1 < result.traceWalk.size(); ++i) {
        const auto succ = g1.successors(result.traceWalk[i]);
        const bool connected =
            std::find(succ.begin(), succ.end(),
                      result.traceWalk[i + 1]) != succ.end();
        EXPECT_TRUE(connected) << "walk step " << i;
    }
}

TEST(GbvColumns, MinLowerBoundNeverExceedsTrueMin)
{
    Rng rng(75);
    for (int round = 0; round < 30; ++round) {
        const size_t m = 1 + rng.below(300);
        std::vector<int32_t> scores(m);
        int32_t s = 0;
        for (size_t i = 0; i < m; ++i) {
            s += static_cast<int32_t>(rng.below(3)) - 1;
            scores[i] = s;
        }
        const auto column =
            gbvdetail::rebuildColumn(scores, (m + 63) / 64);
        const int32_t lb = gbvdetail::columnMinLowerBound(column);
        int32_t true_min = 0;
        for (int32_t v : scores)
            true_min = std::min(true_min, v);
        EXPECT_LE(lb, true_min) << "round " << round;
        // The bound is word-granular: within 64 of the truth.
        EXPECT_GE(lb, true_min - 64);
    }
}

TEST(Gbv, WideBandMatchesExact)
{
    Rng rng(76);
    for (int round = 0; round < 10; ++round) {
        LocalGraph g;
        const size_t n_nodes = 3 + rng.below(8);
        for (size_t v = 0; v < n_nodes; ++v)
            g.addNode(randomBases(rng, 1 + rng.below(10)));
        for (size_t v = 0; v + 1 < n_nodes; ++v) {
            g.addEdge(static_cast<uint32_t>(v),
                      static_cast<uint32_t>(v + 1));
        }
        g.finalize();
        const auto query = randomBases(rng, 5 + rng.below(40));
        GbvOptions banded;
        banded.band = 1 << 20; // wide: prunes nothing
        const auto exact = gbvAlign(g, query);
        const auto wide = gbvAlign(g, query, banded);
        ASSERT_EQ(wide.distance, exact.distance) << round;
        EXPECT_EQ(wide.columnsPruned, 0u);
    }
}

TEST(Gbv, NarrowBandPrunesAndStaysNearExact)
{
    // A long backbone with a read matching one region: banding must
    // prune far-away columns yet keep the (near-)optimal distance.
    Rng rng(77);
    const auto backbone = randomBases(rng, 2000);
    LocalGraph g;
    uint32_t prev = UINT32_MAX;
    for (size_t i = 0; i < backbone.size(); i += 50) {
        const uint32_t node = g.addNode(std::vector<uint8_t>(
            backbone.begin() + static_cast<ptrdiff_t>(i),
            backbone.begin() +
                static_cast<ptrdiff_t>(std::min(i + 50,
                                                backbone.size()))));
        if (prev != UINT32_MAX)
            g.addEdge(prev, node);
        prev = node;
    }
    g.finalize();
    std::vector<uint8_t> query(backbone.begin() + 900,
                               backbone.begin() + 1100);
    query[50] = static_cast<uint8_t>((query[50] + 1) % 4);

    const auto exact = gbvAlign(g, query);
    GbvOptions banded;
    banded.band = 32;
    const auto narrow = gbvAlign(g, query, banded);
    EXPECT_GT(narrow.columnsPruned, 0u);
    EXPECT_LT(narrow.columnsComputed, exact.columnsComputed);
    // Banding is a heuristic; on this well-seeded case it is exact.
    EXPECT_EQ(narrow.distance, exact.distance);
}

TEST(Gbv, RejectsEmptyQuery)
{
    LocalGraph g;
    g.addNode("ACGT");
    g.finalize();
    const std::vector<uint8_t> empty;
    EXPECT_THROW(gbvAlign(g, empty), core::FatalError);
}

TEST(Gbv, CountingProbeSeesBranchyMerges)
{
    LocalGraph g;
    const uint32_t a = g.addNode("AC");
    const uint32_t b = g.addNode("G");
    const uint32_t c = g.addNode("T");
    const uint32_t d = g.addNode("CA");
    g.addEdge(a, b);
    g.addEdge(a, c);
    g.addEdge(b, d);
    g.addEdge(c, d);
    g.finalize();
    const auto query = seq::encodeString("ACGCA");
    core::CountingProbe probe;
    GbvOptions options;
    gbvAlign(g, query, options, probe);
    EXPECT_GT(probe.branches, 0u);
    EXPECT_GT(probe.counts[static_cast<size_t>(core::OpKind::kScalar)],
              0u);
}

} // namespace
} // namespace pgb::align
