/**
 * @file
 * Supplementary transclosure-subsystem coverage: the TC-induced graph
 * must survive a GFA serialization round trip, and the file-backed
 * Arena that backs TcOptions::fileBackedMatches must clean up its
 * temporary file.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <unistd.h>

#include "build/transclosure.hpp"
#include "core/arena.hpp"
#include "graph/gfa.hpp"
#include "synth/pangenome_sim.hpp"

namespace pgb::build {
namespace {

using seq::Sequence;

/** TC graph for a small simulated pangenome, from ground-truth matches. */
TcResult
closeSimulatedPangenome(size_t bases, uint64_t seed, size_t haplotypes,
                        const TcOptions &options = {})
{
    const auto pangenome =
        synth::simulatePangenome(synth::mGraphLikeConfig(bases, seed));
    std::vector<Sequence> seqs;
    seqs.push_back(pangenome.reference);
    for (size_t h = 0; h < haplotypes; ++h)
        seqs.push_back(pangenome.haplotypes[h]);
    SequenceCatalog catalog(seqs);
    std::vector<MatchSegment> matches;
    for (const auto &m : synth::groundTruthMatches(pangenome)) {
        if (m.haplotype >= haplotypes)
            continue;
        matches.push_back({catalog.globalOffset(0, m.refStart),
                           catalog.globalOffset(m.haplotype + 1,
                                                m.hapStart),
                           m.length});
    }
    return transclose(catalog, matches, options);
}

TEST(TransclosureGfa, RoundTripPreservesTheGraph)
{
    const auto result = closeSimulatedPangenome(8000, 77, 3);
    ASSERT_GT(result.graph.nodeCount(), 1u);

    std::stringstream gfa;
    graph::writeGfa(gfa, result.graph);
    const auto reread = graph::readGfa(gfa);

    const auto before = result.graph.stats();
    const auto after = reread.stats();
    EXPECT_EQ(after.nodeCount, before.nodeCount);
    EXPECT_EQ(after.edgeCount, before.edgeCount);
    EXPECT_EQ(after.pathCount, before.pathCount);
    EXPECT_EQ(after.totalBases, before.totalBases);
    EXPECT_EQ(after.maxNodeLength, before.maxNodeLength);
    for (graph::PathId p = 0; p < result.graph.pathCount(); ++p) {
        EXPECT_EQ(reread.pathName(p), result.graph.pathName(p));
        EXPECT_EQ(reread.pathSequence(p).toString(),
                  result.graph.pathSequence(p).toString());
    }
}

TEST(TransclosureGfa, RoundTripOfFileBackedClosureMatchesMemoryMode)
{
    TcOptions file_mode;
    file_mode.fileBackedMatches = true;
    const auto memory = closeSimulatedPangenome(6000, 78, 2);
    const auto file = closeSimulatedPangenome(6000, 78, 2, file_mode);

    std::stringstream a, b;
    graph::writeGfa(a, memory.graph);
    graph::writeGfa(b, file.graph);
    EXPECT_EQ(a.str(), b.str());
}

TEST(ArenaFileBacked, TempFileIsRemovedOnDestruction)
{
    std::string path;
    {
        core::Arena arena(core::Arena::Mode::kFileBacked);
        const uint64_t payload = 0xDEADBEEFull;
        arena.append(&payload, sizeof(payload));
        path = arena.path();
        ASSERT_FALSE(path.empty());
        ASSERT_EQ(::access(path.c_str(), F_OK), 0)
            << "backing file should exist while the arena lives";
    }
    EXPECT_NE(::access(path.c_str(), F_OK), 0)
        << "backing file should be unlinked by ~Arena";
}

TEST(ArenaFileBacked, MoveTransfersCleanupResponsibility)
{
    std::string path;
    {
        core::Arena outer(core::Arena::Mode::kInMemory);
        {
            core::Arena inner(core::Arena::Mode::kFileBacked);
            const uint32_t payload = 7;
            inner.append(&payload, sizeof(payload));
            path = inner.path();
            outer = std::move(inner);
        }
        // The moved-from arena died; the file must still be alive.
        EXPECT_EQ(::access(path.c_str(), F_OK), 0);
    }
    EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

} // namespace
} // namespace pgb::build
