/**
 * @file
 * Integration tests for the pipelines: anchoring/chaining, the four
 * Seq2Graph mapper profiles (mapping rate + stage attribution), the
 * Seq2Seq baseline, the wfmash stand-in (exact-match validity), both
 * graph builders, and the scaling harness.
 */

#include <gtest/gtest.h>

#include "core/thread_pool.hpp"
#include "pipeline/chain.hpp"
#include "pipeline/graph_build.hpp"
#include "pipeline/mapper.hpp"
#include "pipeline/scaling.hpp"
#include "pipeline/wfmash.hpp"
#include "seq/read_sim.hpp"
#include "synth/pangenome_sim.hpp"

namespace pgb::pipeline {
namespace {

using seq::ReadProfile;
using seq::ReadSimulator;
using seq::Sequence;

struct Workload
{
    synth::Pangenome pangenome;
    std::vector<Sequence> reads;
};

Workload
makeWorkload(size_t base_length, size_t n_reads, size_t read_length,
             uint64_t seed)
{
    Workload w;
    w.pangenome =
        synth::simulatePangenome(synth::mGraphLikeConfig(base_length,
                                                         seed));
    ReadProfile profile = ReadProfile::shortRead();
    profile.readLength = read_length;
    if (read_length > 1000) {
        profile = ReadProfile::longRead();
        profile.readLength = read_length;
    }
    ReadSimulator sim(profile, seed ^ 0xABC);
    for (size_t r = 0; r < n_reads; ++r) {
        // Sample the donor haplotype round-robin.
        const auto &donor =
            w.pangenome.haplotypes[r % w.pangenome.haplotypes.size()];
        auto read = sim.sample(donor);
        std::string name = "r";
        name += std::to_string(r);
        read.read.setName(std::move(name));
        w.reads.push_back(std::move(read.read));
    }
    return w;
}

// ------------------------------------------------------- Chaining

TEST(Chain, AnchorsLandOnTrueRegion)
{
    const auto w = makeWorkload(30000, 4, 150, 200);
    const GraphLinearization linear(w.pangenome.graph);
    const index::MinimizerIndex index(w.pangenome.graph, 15, 10);
    size_t with_anchors = 0;
    for (const auto &read : w.reads) {
        const auto anchors = collectAnchors(read, index, linear);
        with_anchors += anchors.empty() ? 0 : 1;
    }
    EXPECT_GE(with_anchors, w.reads.size() - 1);
}

TEST(Chain, ClusterAnchorsGroupsByDiagonal)
{
    std::vector<Anchor> anchors;
    // Two diagonal groups.
    for (uint32_t i = 0; i < 5; ++i)
        anchors.push_back({i * 20, 0, 0, false, 1000 + i * 20});
    for (uint32_t i = 0; i < 3; ++i)
        anchors.push_back({i * 20, 0, 0, false, 90000 + i * 20});
    const auto clusters = clusterAnchors(anchors, 128);
    ASSERT_EQ(clusters.size(), 2u);
    EXPECT_EQ(clusters[0].anchorIds.size(), 5u);
    EXPECT_EQ(clusters[1].anchorIds.size(), 3u);
}

TEST(Chain, ChainAnchorsFindsColinearSubset)
{
    std::vector<Anchor> anchors;
    // A colinear run plus noise.
    for (uint32_t i = 0; i < 10; ++i)
        anchors.push_back({i * 50, 0, 0, false, 5000 + i * 50});
    anchors.push_back({100, 0, 0, false, 700000});
    anchors.push_back({400, 0, 0, false, 2});
    ChainParams params;
    const auto chains = chainAnchors(anchors, params);
    ASSERT_FALSE(chains.empty());
    EXPECT_EQ(chains[0].anchorIds.size(), 10u);
    // Chain anchors are query-ordered.
    for (size_t i = 1; i < chains[0].anchorIds.size(); ++i) {
        EXPECT_LT(anchors[chains[0].anchorIds[i - 1]].queryPos,
                  anchors[chains[0].anchorIds[i]].queryPos);
    }
}

// --------------------------------------------------------- Mappers

class MapperProfiles : public ::testing::TestWithParam<ToolProfile>
{
};

TEST_P(MapperProfiles, MapsSimulatedShortReads)
{
    const ToolProfile profile = GetParam();
    const size_t read_len =
        profile == ToolProfile::kGraphAligner ||
                profile == ToolProfile::kMinigraph
            ? 600 : 150; // long-read tools get longer reads
    const auto w = makeWorkload(30000, 30, read_len, 201);
    MapperConfig config;
    config.profile = profile;
    config.threads = 2;
    Seq2GraphMapper mapper(w.pangenome.graph, config);
    const auto stats = mapper.mapReads(w.reads);
    EXPECT_EQ(stats.reads, w.reads.size());
    // Simulated reads come from the graph's own haplotypes: the vast
    // majority must map.
    EXPECT_GE(stats.mappedReads, w.reads.size() * 8 / 10)
        << toolName(profile);
    EXPECT_GT(stats.anchors, 0u);
    EXPECT_GT(stats.timers.seconds("seed"), 0.0);
    EXPECT_GT(stats.timers.seconds("cluster_chain"), 0.0);
    EXPECT_GT(stats.timers.seconds("align"), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllTools, MapperProfiles,
    ::testing::Values(ToolProfile::kVgMap, ToolProfile::kVgGiraffe,
                      ToolProfile::kGraphAligner,
                      ToolProfile::kMinigraph),
    [](const ::testing::TestParamInfo<ToolProfile> &info) {
        return toolName(info.param);
    });

TEST(Mapper, GiraffeChargesKernelTimeToFilter)
{
    const auto w = makeWorkload(30000, 20, 150, 202);
    MapperConfig config;
    config.profile = ToolProfile::kVgGiraffe;
    Seq2GraphMapper mapper(w.pangenome.graph, config);
    const auto stats = mapper.mapReads(w.reads);
    EXPECT_STREQ(stats.kernelName, "GBWT");
    EXPECT_GT(stats.timers.seconds("filter"), 0.0);
}

TEST(Mapper, MinigraphUsesGwfaInChaining)
{
    const auto w = makeWorkload(30000, 10, 1200, 203);
    MapperConfig config;
    config.profile = ToolProfile::kMinigraph;
    Seq2GraphMapper mapper(w.pangenome.graph, config);
    const auto stats = mapper.mapReads(w.reads);
    EXPECT_STREQ(stats.kernelName, "GWFA");
    EXPECT_GT(stats.kernelSeconds, 0.0);
    EXPECT_LE(stats.kernelSeconds,
              stats.timers.seconds("cluster_chain") + 1e-6);
}

TEST(Mapper, RandomReadsDoNotMap)
{
    const auto w = makeWorkload(30000, 1, 150, 204);
    // Unrelated random reads.
    std::vector<Sequence> junk;
    for (int i = 0; i < 10; ++i)
        junk.push_back(synth::randomSequence(150, 999 + i));
    MapperConfig config;
    config.profile = ToolProfile::kVgMap;
    Seq2GraphMapper mapper(w.pangenome.graph, config);
    const auto stats = mapper.mapReads(junk);
    EXPECT_LE(stats.mappedReads, 1u);
}

TEST(Mapper, CapturesAlignTraces)
{
    const auto w = makeWorkload(30000, 10, 150, 205);
    MapperConfig config;
    config.profile = ToolProfile::kVgMap;
    Seq2GraphMapper mapper(w.pangenome.graph, config);
    const auto traces = mapper.captureAlignTraces(w.reads, 5);
    ASSERT_GE(traces.size(), 3u);
    for (const auto &trace : traces) {
        EXPECT_GT(trace.subgraph.nodeCount(), 0u);
        EXPECT_TRUE(trace.subgraph.isDag());
        EXPECT_FALSE(trace.query.empty());
    }
}

TEST(Mapper, CapturesGwfaTraces)
{
    const auto w = makeWorkload(40000, 10, 2000, 206);
    MapperConfig config;
    config.profile = ToolProfile::kMinigraph;
    Seq2GraphMapper mapper(w.pangenome.graph, config);
    const auto traces = mapper.captureGwfaTraces(w.reads, 8);
    for (const auto &trace : traces) {
        EXPECT_GT(trace.subgraph.nodeCount(), 0u);
        EXPECT_LT(trace.startNode, trace.subgraph.nodeCount());
        EXPECT_FALSE(trace.query.empty());
    }
}

TEST(Seq2Seq, BaselineMapsReadsFromReference)
{
    const auto w = makeWorkload(30000, 1, 150, 207);
    ReadSimulator sim(ReadProfile::shortRead(), 208);
    std::vector<Sequence> reads;
    for (int r = 0; r < 30; ++r)
        reads.push_back(sim.sample(w.pangenome.reference).read);
    Seq2SeqMapper mapper(w.pangenome.reference, 15, 10);
    const auto stats = mapper.mapReads(reads, 2);
    EXPECT_GE(stats.mappedReads, 25u);
    EXPECT_GT(stats.timers.seconds("align"), 0.0);
}

TEST(Seq2Seq, CapturesSswTraces)
{
    const auto w = makeWorkload(30000, 1, 150, 209);
    ReadSimulator sim(ReadProfile::shortRead(), 210);
    std::vector<Sequence> reads;
    for (int r = 0; r < 10; ++r)
        reads.push_back(sim.sample(w.pangenome.reference).read);
    Seq2SeqMapper mapper(w.pangenome.reference, 15, 10);
    const auto traces = mapper.captureSswTraces(reads, 5);
    ASSERT_GE(traces.size(), 3u);
    for (const auto &trace : traces) {
        EXPECT_GE(trace.window.size(), trace.query.size());
    }
}

// ----------------------------------------------------------- wfmash

TEST(Wfmash, MatchesAreExact)
{
    const auto pangenome =
        synth::simulatePangenome(synth::mGraphLikeConfig(20000, 211));
    std::vector<Sequence> seqs;
    seqs.push_back(pangenome.reference);
    seqs.push_back(pangenome.haplotypes[0]);
    seqs.push_back(pangenome.haplotypes[1]);
    build::SequenceCatalog catalog(seqs);
    WfmashParams params;
    const auto result = allToAllAlign(catalog, params);
    ASSERT_GT(result.matches.size(), 10u);
    EXPECT_GT(result.segmentsMapped, 0u);
    for (const auto &match : result.matches) {
        ASSERT_GE(match.length, params.minMatchLength);
        for (uint32_t d = 0; d < match.length; ++d) {
            ASSERT_EQ(catalog.baseAt(match.aStart + d),
                      catalog.baseAt(match.bStart + d))
                << "match at " << match.aStart << "+" << d;
        }
    }
}

TEST(Wfmash, CoversMostOfTheSequences)
{
    const auto pangenome =
        synth::simulatePangenome(synth::mGraphLikeConfig(20000, 212));
    std::vector<Sequence> seqs;
    seqs.push_back(pangenome.reference);
    seqs.push_back(pangenome.haplotypes[0]);
    build::SequenceCatalog catalog(seqs);
    const auto result = allToAllAlign(catalog, WfmashParams{});
    // Coverage of sequence 0 by match bases.
    std::vector<bool> covered(pangenome.reference.size(), false);
    for (const auto &match : result.matches) {
        if (match.aStart < pangenome.reference.size()) {
            for (uint32_t d = 0; d < match.length; ++d) {
                if (match.aStart + d < covered.size())
                    covered[match.aStart + d] = true;
            }
        }
    }
    size_t count = 0;
    for (bool c : covered)
        count += c ? 1 : 0;
    EXPECT_GT(static_cast<double>(count) /
                  static_cast<double>(covered.size()),
              0.6);
}

// ----------------------------------------------------- GraphBuilders

TEST(GraphBuild, PggbBuildsTimedStagesAndCompressedGraph)
{
    const auto pangenome =
        synth::simulatePangenome(synth::mGraphLikeConfig(15000, 213));
    std::vector<Sequence> haps;
    haps.push_back(pangenome.reference);
    for (size_t h = 0; h < 5; ++h)
        haps.push_back(pangenome.haplotypes[h]);
    PggbParams params;
    params.threads = 2;
    params.layoutIterations = 5;
    const auto report = buildPggb(haps, params);
    EXPECT_GT(report.timers.seconds("alignment"), 0.0);
    EXPECT_GT(report.timers.seconds("induction"), 0.0);
    EXPECT_GT(report.timers.seconds("polishing"), 0.0);
    EXPECT_GT(report.timers.seconds("visualization"), 0.0);
    EXPECT_GT(report.matches, 0u);
    EXPECT_GT(report.poaCells, 0u);
    // Paths spell inputs exactly (transclosure invariant).
    ASSERT_EQ(report.graph.pathCount(), haps.size());
    for (size_t h = 0; h < haps.size(); ++h) {
        EXPECT_EQ(report.graph
                      .pathSequence(static_cast<graph::PathId>(h))
                      .toString(),
                  haps[h].toString());
    }
    // Shared variation compresses the graph.
    EXPECT_LT(report.graph.stats().totalBases,
              pangenome.reference.size() * 3);
    EXPECT_LT(report.layoutStressAfter, report.layoutStressBefore);
}

TEST(GraphBuild, MinigraphCactusDiscoversVariants)
{
    const auto pangenome =
        synth::simulatePangenome(synth::mGraphLikeConfig(15000, 214));
    std::vector<Sequence> haps;
    haps.push_back(pangenome.reference);
    for (size_t h = 0; h < 4; ++h)
        haps.push_back(pangenome.haplotypes[h]);
    McParams params;
    params.threads = 2;
    params.layoutIterations = 5;
    const auto report = buildMinigraphCactus(haps, params);
    EXPECT_GT(report.timers.seconds("alignment"), 0.0);
    EXPECT_GT(report.timers.seconds("visualization"), 0.0);
    EXPECT_GT(report.bubbles, 0u);
    ASSERT_EQ(report.graph.pathCount(), haps.size());
    // The reference path spells the reference exactly.
    EXPECT_EQ(report.graph.pathSequence(0).toString(),
              pangenome.reference.toString());
    // The graph contains real alternative structure.
    EXPECT_GT(report.graph.edgeCount(),
              report.graph.nodeCount() - 1);
}

TEST(Mapper, ForToolEncodesTradeoffs)
{
    const auto vgmap =
        MapperConfig::forTool(ToolProfile::kVgMap);
    const auto giraffe =
        MapperConfig::forTool(ToolProfile::kVgGiraffe);
    const auto graphaligner =
        MapperConfig::forTool(ToolProfile::kGraphAligner);
    // vg map aligns more candidates than giraffe's single extension.
    EXPECT_GT(vgmap.maxAlignments, giraffe.maxAlignments);
    // GraphAligner's profile enables the banded bit-vector DP.
    EXPECT_GT(graphaligner.gbvBand, 0);
    EXPECT_EQ(vgmap.gbvBand, 0);
}

TEST(Mapper, GiraffeIsCheaperThanVgMapOnTheSameReads)
{
    const auto w = makeWorkload(30000, 40, 150, 215);
    core::WallTimer vgmap_timer;
    {
        auto config = MapperConfig::forTool(ToolProfile::kVgMap);
        Seq2GraphMapper mapper(w.pangenome.graph, config);
        mapper.mapReads(w.reads);
    }
    const double vgmap_seconds = vgmap_timer.seconds();
    core::WallTimer giraffe_timer;
    {
        auto config = MapperConfig::forTool(ToolProfile::kVgGiraffe);
        Seq2GraphMapper mapper(w.pangenome.graph, config);
        mapper.mapReads(w.reads);
    }
    // Giraffe's mapping phase is the cheap one (Table 1's ordering).
    // Index construction is excluded from both timings... it is
    // included here; giraffe builds a GBWT, so compare mapping only
    // loosely: giraffe must not be dramatically slower.
    EXPECT_LT(giraffe_timer.seconds(), vgmap_seconds * 3.0);
}

TEST(Chain, ReverseStrandAnchorsChainOnAntiDiagonals)
{
    // Reverse anchors: query positions DECREASE as linear increases.
    std::vector<Anchor> anchors;
    for (uint32_t i = 0; i < 8; ++i) {
        anchors.push_back(
            {800 - i * 100, 0, 0, true, 5000 + i * 100ull});
    }
    ChainParams params;
    const auto chains = chainAnchors(anchors, params);
    ASSERT_FALSE(chains.empty());
    EXPECT_EQ(chains[0].anchorIds.size(), 8u);
    EXPECT_TRUE(chains[0].reverse);

    const auto clusters = clusterAnchors(anchors, 128);
    ASSERT_FALSE(clusters.empty());
    EXPECT_EQ(clusters[0].anchorIds.size(), 8u);
}

TEST(Wfmash, DeterministicAcrossRuns)
{
    const auto pangenome =
        synth::simulatePangenome(synth::mGraphLikeConfig(10000, 216));
    std::vector<Sequence> seqs = {pangenome.reference,
                                  pangenome.haplotypes[0]};
    build::SequenceCatalog catalog(seqs);
    WfmashParams params;
    params.threads = 2; // thread-parallel pairs must still merge
                        // deterministically
    const auto a = allToAllAlign(catalog, params);
    const auto b = allToAllAlign(catalog, params);
    ASSERT_EQ(a.matches.size(), b.matches.size());
    for (size_t i = 0; i < a.matches.size(); ++i) {
        EXPECT_EQ(a.matches[i].aStart, b.matches[i].aStart);
        EXPECT_EQ(a.matches[i].bStart, b.matches[i].bStart);
        EXPECT_EQ(a.matches[i].length, b.matches[i].length);
    }
}

// ----------------------------------------------------------- Scaling

TEST(Scaling, SpeedupsAreRelativeToFirstPoint)
{
    const std::vector<unsigned> threads = {1, 2, 4};
    const auto series = measureScaling(
        "busywork", threads, [](unsigned t) {
            std::atomic<uint64_t> sink(0);
            core::parallelFor(0, 20000, t, [&](size_t i) {
                double x = static_cast<double>(i) + 1.0;
                for (int rep = 0; rep < 2000; ++rep)
                    x = x * 1.0000001 + 0.1;
                sink.fetch_add(static_cast<uint64_t>(x),
                               std::memory_order_relaxed);
            });
        });
    ASSERT_EQ(series.points.size(), 3u);
    EXPECT_EQ(series.points[0].speedup, 1.0);
    for (const auto &point : series.points) {
        EXPECT_GT(point.seconds, 0.0);
        EXPECT_GT(point.speedup, 0.0);
    }
    // Real speedup needs real cores; CI sandboxes may have one.
    if (core::hardwareThreads() >= 4) {
        EXPECT_GT(series.points[2].speedup, 1.2);
    }
}

} // namespace
} // namespace pgb::pipeline
