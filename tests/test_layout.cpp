/**
 * @file
 * Tests for PGSGD: path index bookkeeping, pair sampling, stress
 * convergence (single-threaded and Hogwild!), and the locked-update
 * ablation.
 */

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "layout/pgsgd.hpp"
#include "synth/pangenome_sim.hpp"

namespace pgb::layout {
namespace {

using core::Rng;

synth::Pangenome
smallPangenome(uint64_t seed)
{
    return synth::simulatePangenome(
        synth::mGraphLikeConfig(20000, seed));
}

// ---------------------------------------------------------- PathIndex

TEST(PathIndex, OffsetsAreCumulativeNodeLengths)
{
    const auto pangenome = smallPangenome(30);
    const PathIndex index(pangenome.graph);
    EXPECT_EQ(index.pathCount(), pangenome.graph.pathCount());

    for (size_t path = 0; path < index.pathCount(); ++path) {
        const auto &steps = pangenome.graph.pathSteps(
            static_cast<graph::PathId>(path));
        ASSERT_EQ(index.pathSteps(path), steps.size());
        uint64_t offset = 0;
        for (size_t s = 0; s < steps.size(); ++s) {
            const size_t flat = index.pathFirst(path) + s;
            EXPECT_EQ(index.stepNode(flat), steps[s].node());
            EXPECT_EQ(index.stepOffset(flat), offset);
            offset += pangenome.graph.nodeLength(steps[s].node());
        }
    }
}

TEST(PathIndex, PathOfMapsStepsBack)
{
    const auto pangenome = smallPangenome(31);
    const PathIndex index(pangenome.graph);
    for (size_t path = 0; path < index.pathCount(); ++path) {
        EXPECT_EQ(index.pathOf(index.pathFirst(path)), path);
        EXPECT_EQ(index.pathOf(index.pathEnd(path) - 1), path);
    }
    EXPECT_EQ(index.pathEnd(index.pathCount() - 1),
              index.totalSteps());
}

// ------------------------------------------------------------ Layout

TEST(Layout, RandomInitIsDeterministic)
{
    Layout a(100, 7), b(100, 7);
    for (size_t i = 0; i < a.points(); ++i) {
        EXPECT_EQ(a.x(i), b.x(i));
        EXPECT_EQ(a.y(i), b.y(i));
    }
    Layout c(100, 8);
    EXPECT_NE(a.x(0), c.x(0));
}

// ----------------------------------------------------------- Sampling

TEST(PgsgdSampling, PairsAreOnTheSamePath)
{
    const auto pangenome = smallPangenome(32);
    const PathIndex index(pangenome.graph);
    PgsgdParams params;
    Rng rng(33);
    core::NullProbe probe;
    for (int i = 0; i < 1000; ++i) {
        size_t a, b;
        if (!pgsgddetail::samplePair(index, params, rng, probe, a, b))
            continue;
        EXPECT_NE(a, b);
        EXPECT_EQ(index.pathOf(a), index.pathOf(b));
    }
}

TEST(PgsgdSampling, ZipfBiasFavorsNearbyPairs)
{
    const auto pangenome = smallPangenome(34);
    const PathIndex index(pangenome.graph);
    PgsgdParams params;
    params.zipfTheta = 0.99;
    Rng rng(35);
    core::NullProbe probe;
    size_t near = 0, total = 0;
    for (int i = 0; i < 5000; ++i) {
        size_t a, b;
        if (!pgsgddetail::samplePair(index, params, rng, probe, a, b))
            continue;
        const size_t dist = a > b ? a - b : b - a;
        near += dist <= 10 ? 1 : 0;
        ++total;
    }
    ASSERT_GT(total, 0u);
    // Under uniform sampling over ~1000-step spans, P(dist <= 10)
    // would be ~2%; the Zipf draw concentrates far more mass nearby.
    EXPECT_GT(static_cast<double>(near) / total, 0.2);
}

// -------------------------------------------------------------- SGD

TEST(Pgsgd, StressDropsSingleThread)
{
    const auto pangenome = smallPangenome(36);
    const PathIndex index(pangenome.graph);
    Layout layout(pangenome.graph.nodeCount(), 1);
    PgsgdParams params;
    params.iterations = 15;
    params.threads = 1;
    const auto result = pgsgdLayout(index, layout, params);
    EXPECT_GT(result.updates, 0u);
    EXPECT_LT(result.stressAfter, result.stressBefore * 0.2)
        << "before " << result.stressBefore << " after "
        << result.stressAfter;
}

TEST(Pgsgd, StressDropsHogwild)
{
    const auto pangenome = smallPangenome(37);
    const PathIndex index(pangenome.graph);
    Layout layout(pangenome.graph.nodeCount(), 2);
    PgsgdParams params;
    params.iterations = 15;
    params.threads = 4;
    const auto result = pgsgdLayout(index, layout, params);
    EXPECT_LT(result.stressAfter, result.stressBefore * 0.2);
}

TEST(Pgsgd, LockedAblationAlsoConverges)
{
    const auto pangenome = smallPangenome(38);
    const PathIndex index(pangenome.graph);
    Layout layout(pangenome.graph.nodeCount(), 3);
    PgsgdParams params;
    params.iterations = 10;
    params.threads = 4;
    params.useLocks = true;
    const auto result = pgsgdLayout(index, layout, params);
    EXPECT_LT(result.stressAfter, result.stressBefore * 0.3);
}

TEST(Pgsgd, MoreIterationsMoreConvergence)
{
    const auto pangenome = smallPangenome(39);
    const PathIndex index(pangenome.graph);
    PgsgdParams params;
    params.threads = 1;

    Layout short_layout(pangenome.graph.nodeCount(), 4);
    params.iterations = 2;
    const auto short_run = pgsgdLayout(index, short_layout, params);

    Layout long_layout(pangenome.graph.nodeCount(), 4);
    params.iterations = 25;
    const auto long_run = pgsgdLayout(index, long_layout, params);

    EXPECT_LT(long_run.stressAfter, short_run.stressAfter);
}

TEST(Pgsgd, InstrumentedRunCountsMemoryTraffic)
{
    const auto pangenome = smallPangenome(40);
    const PathIndex index(pangenome.graph);
    Layout layout(pangenome.graph.nodeCount(), 5);
    PgsgdParams params;
    params.iterations = 2;
    params.threads = 1;
    core::CountingProbe probe;
    pgsgdLayout(index, layout, params, probe);
    EXPECT_GT(probe.loadOps, 0u);
    EXPECT_GT(probe.storeOps, 0u);
    // The paper's Figure 8 note: PGSGD's FP math is binned as vector.
    EXPECT_GT(probe.counts[static_cast<size_t>(core::OpKind::kVector)],
              probe.counts[static_cast<size_t>(
                  core::OpKind::kRegister)]);
}

} // namespace
} // namespace pgb::layout
