/**
 * @file
 * Tests for GWFA's anchored start (start_offset): the mapping
 * pipelines start gap bridging and final alignment mid-node, at the
 * seed anchor, rather than at a node boundary.
 */

#include <gtest/gtest.h>

#include "align/gwfa.hpp"
#include "core/rng.hpp"
#include "graph/local_graph.hpp"
#include "seq/sequence.hpp"

namespace pgb::align {
namespace {

using core::Rng;
using graph::LocalGraph;

TEST(GwfaOffset, StartsMidNode)
{
    LocalGraph g;
    g.addNode("AAAACGTACGT"); // query starts at offset 4
    g.finalize();
    const auto query = seq::encodeString("CGTACGT");
    // From offset 0 the leading AAAA would cost 4 deletions...
    const auto from_zero = gwfaAlign(g, query, 0, 1 << 20, 0);
    // ...but anchored at offset 4 the walk is a perfect match.
    const auto anchored = gwfaAlign(g, query, 0, 1 << 20, 4);
    EXPECT_EQ(anchored.distance, 0);
    EXPECT_GE(from_zero.distance, anchored.distance);
}

TEST(GwfaOffset, AnchoredAcrossNodeBoundary)
{
    LocalGraph g;
    const uint32_t a = g.addNode("TTTTACGT");
    const uint32_t b = g.addNode("GGCC");
    g.addEdge(a, b);
    g.finalize();
    const auto query = seq::encodeString("ACGTGGCC");
    const auto result = gwfaAlign(g, query, a, 1 << 20, 4);
    EXPECT_TRUE(result.reached);
    EXPECT_EQ(result.distance, 0);
}

TEST(GwfaOffset, MatchesFullAlignmentOfSuffixGraph)
{
    // Anchored alignment at offset o must equal aligning against the
    // graph whose start node is truncated to its suffix from o.
    Rng rng(120);
    for (int round = 0; round < 15; ++round) {
        std::vector<uint8_t> node_a, node_b;
        const size_t len_a = 10 + rng.below(30);
        for (size_t i = 0; i < len_a; ++i)
            node_a.push_back(static_cast<uint8_t>(rng.below(4)));
        for (size_t i = 0; i < 12; ++i)
            node_b.push_back(static_cast<uint8_t>(rng.below(4)));
        const uint32_t offset =
            static_cast<uint32_t>(rng.below(len_a));

        LocalGraph full;
        const uint32_t a = full.addNode(node_a);
        const uint32_t b = full.addNode(node_b);
        full.addEdge(a, b);
        full.finalize();

        LocalGraph truncated;
        const uint32_t ta = truncated.addNode(std::vector<uint8_t>(
            node_a.begin() + offset, node_a.end()));
        const uint32_t tb = truncated.addNode(node_b);
        truncated.addEdge(ta, tb);
        truncated.finalize();

        std::vector<uint8_t> query;
        for (int i = 0; i < 20; ++i)
            query.push_back(static_cast<uint8_t>(rng.below(4)));

        const auto anchored =
            gwfaAlign(full, query, a, 1 << 20, offset);
        const auto direct = gwfaAlign(truncated, query, ta);
        ASSERT_EQ(anchored.distance, direct.distance)
            << "round " << round << " offset " << offset;
    }
}

} // namespace
} // namespace pgb::align
