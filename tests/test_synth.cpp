/**
 * @file
 * Tests for the synthetic pangenome generator: structural validity,
 * haplotype spelling, determinism, and calibration knobs.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/logging.hpp"
#include "synth/pangenome_sim.hpp"

namespace pgb::synth {
namespace {

TEST(Synth, RandomSequenceDeterministic)
{
    const auto a = randomSequence(1000, 5);
    const auto b = randomSequence(1000, 5);
    EXPECT_EQ(a, b);
    const auto c = randomSequence(1000, 6);
    EXPECT_FALSE(a == c);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_LT(a[i], seq::kNumBases);
}

TEST(Synth, GraphPathsSpellHaplotypes)
{
    PangenomeConfig config = mGraphLikeConfig(30000, 7);
    const Pangenome pangenome = simulatePangenome(config);
    ASSERT_EQ(pangenome.haplotypes.size(), config.haplotypeCount);
    // The reference path spells the base chromosome.
    EXPECT_EQ(pangenome.graph.pathSequence(pangenome.referencePath)
                  .toString(),
              pangenome.reference.toString());
    // Every haplotype path spells its recorded haplotype sequence.
    for (size_t h = 0; h < pangenome.haplotypes.size(); ++h) {
        EXPECT_EQ(pangenome.graph
                      .pathSequence(pangenome.haplotypePaths[h])
                      .toString(),
                  pangenome.haplotypes[h].toString())
            << "haplotype " << h;
    }
}

TEST(Synth, HaplotypesDifferFromReference)
{
    const Pangenome pangenome =
        simulatePangenome(mGraphLikeConfig(20000, 8));
    size_t differing = 0;
    for (const auto &hap : pangenome.haplotypes) {
        if (hap.toString() != pangenome.reference.toString())
            ++differing;
    }
    EXPECT_EQ(differing, pangenome.haplotypes.size());
}

TEST(Synth, DeterministicInSeed)
{
    const auto a = simulatePangenome(mGraphLikeConfig(10000, 9));
    const auto b = simulatePangenome(mGraphLikeConfig(10000, 9));
    EXPECT_EQ(a.graph.nodeCount(), b.graph.nodeCount());
    EXPECT_EQ(a.graph.edgeCount(), b.graph.edgeCount());
    EXPECT_EQ(a.variants.size(), b.variants.size());
    EXPECT_EQ(a.haplotypes[0], b.haplotypes[0]);
}

TEST(Synth, VariantPoolIsShared)
{
    const auto pangenome =
        simulatePangenome(mGraphLikeConfig(30000, 10));
    ASSERT_GT(pangenome.variants.size(), 10u);
    // At least one variant carried by more than one haplotype.
    size_t shared = 0;
    for (const Variant &v : pangenome.variants) {
        size_t carriers = 0;
        for (bool c : v.carriers)
            carriers += c ? 1 : 0;
        EXPECT_GE(carriers, 1u); // every site is a real bubble
        shared += carriers > 1 ? 1 : 0;
    }
    EXPECT_GT(shared, pangenome.variants.size() / 4);
}

TEST(Synth, MGraphPresetNodeLengthNearPaper)
{
    // Paper §6.2: the chr20 M-graph averages 27.22 bp per node.
    const auto pangenome =
        simulatePangenome(mGraphLikeConfig(100000, 11));
    const auto stats = pangenome.graph.stats();
    EXPECT_GT(stats.avgNodeLength, 15.0);
    EXPECT_LT(stats.avgNodeLength, 45.0);
}

TEST(Synth, SplitTransformMatchesPaperShape)
{
    // Splitting at 8 bp should drop the average node length to the
    // 6-8 bp range (paper: 27.22 -> 6.89).
    const auto pangenome =
        simulatePangenome(mGraphLikeConfig(50000, 12));
    const auto split = pangenome.graph.splitNodes(8);
    const auto stats = split.stats();
    EXPECT_LE(stats.maxNodeLength, 8u);
    EXPECT_LT(stats.avgNodeLength, 8.0);
    // Spelling must be preserved.
    EXPECT_EQ(split.pathSequence(pangenome.referencePath).toString(),
              pangenome.reference.toString());
}

TEST(Synth, InversionsProduceReverseSteps)
{
    PangenomeConfig config = mGraphLikeConfig(50000, 13);
    config.variants.inversionFraction = 1.0;
    config.variants.svRate = 0.0005;
    const auto pangenome = simulatePangenome(config);
    bool saw_reverse = false;
    for (graph::PathId p : pangenome.haplotypePaths) {
        for (graph::Handle step : pangenome.graph.pathSteps(p))
            saw_reverse = saw_reverse || step.isReverse();
    }
    EXPECT_TRUE(saw_reverse);
    // Spelled haplotypes still consistent (validated in construction,
    // but assert one explicitly).
    EXPECT_EQ(pangenome.graph.pathSequence(pangenome.haplotypePaths[0])
                  .toString(),
              pangenome.haplotypes[0].toString());
}

TEST(Synth, RejectsTinyBaseLength)
{
    PangenomeConfig config;
    config.baseLength = 10;
    EXPECT_THROW(simulatePangenome(config), core::FatalError);
}

TEST(Synth, VariantDensityScalesWithRates)
{
    PangenomeConfig sparse = mGraphLikeConfig(50000, 14);
    sparse.variants.snpRate = 0.001;
    sparse.variants.smallIndelRate = 0.0002;
    PangenomeConfig dense = mGraphLikeConfig(50000, 14);
    dense.variants.snpRate = 0.02;
    dense.variants.smallIndelRate = 0.005;
    const auto a = simulatePangenome(sparse);
    const auto b = simulatePangenome(dense);
    EXPECT_GT(b.variants.size(), a.variants.size() * 5);
}

TEST(Synth, RepeatPresetIsDeterministicAndActuallyRepetitive)
{
    const auto a = simulatePangenome(repeatHeavyConfig(30000, 7));
    const auto b = simulatePangenome(repeatHeavyConfig(30000, 7));
    ASSERT_EQ(a.reference.codes(), b.reference.codes());
    EXPECT_EQ(a.variants.size(), b.variants.size());

    // Planted tandem arrays collapse k-mer diversity: far fewer
    // distinct 24-mers than the (effectively all-distinct) default.
    const auto distinctKmers = [](const seq::Sequence &s) {
        std::set<std::string> kmers;
        const std::string text = s.toString();
        for (size_t i = 0; i + 24 <= text.size(); ++i)
            kmers.insert(text.substr(i, 24));
        return kmers.size();
    };
    const auto plain = simulatePangenome(mGraphLikeConfig(30000, 7));
    EXPECT_LT(distinctKmers(a.reference),
              distinctKmers(plain.reference) * 3 / 4);
}

TEST(Synth, RepeatStreamDoesNotPerturbTheDefaultStream)
{
    // repeatFraction == 0 must never touch the repeat RNG: the default
    // pangenome is bit-identical whether or not the feature exists, so
    // every pre-existing golden and fixture stays valid.
    const auto before = simulatePangenome(mGraphLikeConfig(20000, 11));
    (void)simulatePangenome(repeatHeavyConfig(20000, 11));
    const auto after = simulatePangenome(mGraphLikeConfig(20000, 11));
    ASSERT_EQ(before.reference.codes(), after.reference.codes());
    ASSERT_EQ(before.variants.size(), after.variants.size());
    ASSERT_EQ(before.haplotypes.size(), after.haplotypes.size());
    for (size_t h = 0; h < before.haplotypes.size(); ++h)
        EXPECT_EQ(before.haplotypes[h].codes(),
                  after.haplotypes[h].codes());
}

} // namespace
} // namespace pgb::synth
