/**
 * @file
 * Tests for the transclosure kernel: catalog bookkeeping, closure
 * correctness (paths must spell their inputs exactly), compaction,
 * and the seqwish-style work accounting.
 */

#include <gtest/gtest.h>

#include "build/transclosure.hpp"
#include "core/rng.hpp"
#include "seq/sequence.hpp"
#include "synth/pangenome_sim.hpp"

namespace pgb::build {
namespace {

using core::Rng;
using seq::Sequence;

// --------------------------------------------------- SequenceCatalog

TEST(SequenceCatalog, OffsetsAndLookup)
{
    std::vector<Sequence> seqs;
    seqs.emplace_back("a", "ACGT");
    seqs.emplace_back("b", "GG");
    seqs.emplace_back("c", "TTTTT");
    SequenceCatalog catalog(seqs);
    EXPECT_EQ(catalog.sequenceCount(), 3u);
    EXPECT_EQ(catalog.totalBases(), 11u);
    EXPECT_EQ(catalog.start(1), 4u);
    EXPECT_EQ(catalog.end(1), 6u);
    EXPECT_EQ(catalog.globalOffset(2, 3), 9u);
    EXPECT_EQ(catalog.sequenceOf(0), 0u);
    EXPECT_EQ(catalog.sequenceOf(3), 0u);
    EXPECT_EQ(catalog.sequenceOf(4), 1u);
    EXPECT_EQ(catalog.sequenceOf(10), 2u);
    EXPECT_EQ(catalog.baseAt(4), seq::encodeBase('G'));
    EXPECT_EQ(catalog.name(2), "c");
}

// ------------------------------------------------------ Transclosure

TEST(Transclosure, NoMatchesKeepsSequencesSeparate)
{
    std::vector<Sequence> seqs;
    seqs.emplace_back("a", "ACGT");
    seqs.emplace_back("b", "ACGT");
    SequenceCatalog catalog(seqs);
    const auto result = transclose(catalog, {});
    // Two unmerged linear chains, compacted to one node each.
    EXPECT_EQ(result.graph.nodeCount(), 2u);
    EXPECT_EQ(result.closureClasses, 8u);
    EXPECT_EQ(result.graph.pathSequence(0).toString(), "ACGT");
    EXPECT_EQ(result.graph.pathSequence(1).toString(), "ACGT");
}

TEST(Transclosure, FullMatchMergesIdenticalSequences)
{
    std::vector<Sequence> seqs;
    seqs.emplace_back("a", "ACGTACGT");
    seqs.emplace_back("b", "ACGTACGT");
    SequenceCatalog catalog(seqs);
    std::vector<MatchSegment> matches = {{0, 8, 8}};
    const auto result = transclose(catalog, matches);
    EXPECT_EQ(result.closureClasses, 8u);
    EXPECT_EQ(result.graph.nodeCount(), 1u);
    EXPECT_EQ(result.graph.pathCount(), 2u);
    EXPECT_EQ(result.graph.pathSequence(0).toString(), "ACGTACGT");
    EXPECT_EQ(result.graph.pathSequence(1).toString(), "ACGTACGT");
}

TEST(Transclosure, SnpCreatesBubble)
{
    // Sequences differ at one base; matches cover the flanks.
    std::vector<Sequence> seqs;
    seqs.emplace_back("a", "ACGTAACGT");
    seqs.emplace_back("b", "ACGTCACGT");
    SequenceCatalog catalog(seqs);
    std::vector<MatchSegment> matches = {
        {0, 9, 4},   // left flank
        {5, 14, 4},  // right flank
    };
    const auto result = transclose(catalog, matches);
    // Left flank node, right flank node, two 1 bp alleles.
    EXPECT_EQ(result.graph.nodeCount(), 4u);
    EXPECT_EQ(result.graph.pathSequence(0).toString(), "ACGTAACGT");
    EXPECT_EQ(result.graph.pathSequence(1).toString(), "ACGTCACGT");
    EXPECT_EQ(result.closureClasses, 10u);
}

TEST(Transclosure, TransitivePropertyClosesChains)
{
    // a~b and b~c but no direct a~c match: the closure must still
    // unite all three (paper Figure 4f's TC0 growing through M1).
    std::vector<Sequence> seqs;
    seqs.emplace_back("a", "ACGT");
    seqs.emplace_back("b", "ACGT");
    seqs.emplace_back("c", "ACGT");
    SequenceCatalog catalog(seqs);
    std::vector<MatchSegment> matches = {
        {0, 4, 4},
        {4, 8, 4},
    };
    const auto result = transclose(catalog, matches);
    EXPECT_EQ(result.closureClasses, 4u);
    EXPECT_EQ(result.graph.nodeCount(), 1u);
    for (graph::PathId p = 0; p < 3; ++p)
        EXPECT_EQ(result.graph.pathSequence(p).toString(), "ACGT");
}

TEST(Transclosure, PartialOverlapsOnlyMergeOverlappedBases)
{
    std::vector<Sequence> seqs;
    seqs.emplace_back("a", "AAAACCCC");
    seqs.emplace_back("b", "CCCCGGGG");
    SequenceCatalog catalog(seqs);
    // a's CCCC == b's CCCC.
    std::vector<MatchSegment> matches = {{4, 8, 4}};
    const auto result = transclose(catalog, matches);
    EXPECT_EQ(result.closureClasses, 12u);
    EXPECT_EQ(result.graph.pathSequence(0).toString(), "AAAACCCC");
    EXPECT_EQ(result.graph.pathSequence(1).toString(), "CCCCGGGG");
    // AAAA -> CCCC -> GGGG after compaction.
    EXPECT_EQ(result.graph.nodeCount(), 3u);
}

TEST(Transclosure, WorkCountersPopulated)
{
    std::vector<Sequence> seqs;
    seqs.emplace_back("a", "ACGTACGTACGT");
    seqs.emplace_back("b", "ACGTACGTACGT");
    SequenceCatalog catalog(seqs);
    std::vector<MatchSegment> matches = {{0, 12, 12}};
    core::CountingProbe probe;
    const auto result = transclose(catalog, matches, {}, probe);
    EXPECT_GT(result.treeQueries, 0u);
    EXPECT_GT(result.unions, 0u);
    EXPECT_GT(result.sweeps, 0u);
    EXPECT_GT(probe.totalOps(), 0u);
}

TEST(Transclosure, ChunkSizeDoesNotChangeTheGraph)
{
    // Property: the induced graph is invariant to the sweep chunking.
    const auto pangenome =
        synth::simulatePangenome(synth::mGraphLikeConfig(5000, 21));
    std::vector<Sequence> seqs;
    seqs.push_back(pangenome.reference);
    for (size_t h = 0; h < 3; ++h)
        seqs.push_back(pangenome.haplotypes[h]);
    SequenceCatalog catalog(seqs);

    // Ground-truth exact matches between the reference and the three
    // retained haplotypes.
    std::vector<MatchSegment> matches;
    for (const auto &m : synth::groundTruthMatches(pangenome)) {
        if (m.haplotype >= 3)
            continue;
        matches.push_back({catalog.globalOffset(0, m.refStart),
                           catalog.globalOffset(m.haplotype + 1,
                                                m.hapStart),
                           m.length});
    }
    ASSERT_FALSE(matches.empty());

    TcOptions small;
    small.chunkSize = 7;
    TcOptions large;
    large.chunkSize = 4096;
    const auto g1 = transclose(catalog, matches, small);
    const auto g2 = transclose(catalog, matches, large);
    EXPECT_EQ(g1.closureClasses, g2.closureClasses);
    EXPECT_EQ(g1.graph.nodeCount(), g2.graph.nodeCount());
    for (graph::PathId p = 0; p < g1.graph.pathCount(); ++p) {
        EXPECT_EQ(g1.graph.pathSequence(p).toString(),
                  g2.graph.pathSequence(p).toString());
    }
    // And every path spells its input.
    for (size_t s = 0; s < seqs.size(); ++s) {
        EXPECT_EQ(g1.graph.pathSequence(static_cast<graph::PathId>(s))
                      .toString(),
                  seqs[s].toString());
    }
}

TEST(Transclosure, FileBackedMatchesGiveIdenticalGraphs)
{
    // seqwish's mmap mode must be behaviorally invisible.
    const auto pangenome =
        synth::simulatePangenome(synth::mGraphLikeConfig(6000, 24));
    std::vector<Sequence> seqs;
    seqs.push_back(pangenome.reference);
    for (size_t h = 0; h < 4; ++h)
        seqs.push_back(pangenome.haplotypes[h]);
    SequenceCatalog catalog(seqs);
    std::vector<MatchSegment> matches;
    for (const auto &m : synth::groundTruthMatches(pangenome)) {
        if (m.haplotype >= 4)
            continue;
        matches.push_back({catalog.globalOffset(0, m.refStart),
                           catalog.globalOffset(m.haplotype + 1,
                                                m.hapStart),
                           m.length});
    }
    TcOptions memory_mode;
    TcOptions file_mode;
    file_mode.fileBackedMatches = true;
    const auto a = transclose(catalog, matches, memory_mode);
    const auto b = transclose(catalog, matches, file_mode);
    EXPECT_EQ(a.closureClasses, b.closureClasses);
    EXPECT_EQ(a.graph.nodeCount(), b.graph.nodeCount());
    EXPECT_EQ(a.graph.edgeCount(), b.graph.edgeCount());
    for (graph::PathId p = 0; p < a.graph.pathCount(); ++p) {
        EXPECT_EQ(a.graph.pathSequence(p).toString(),
                  b.graph.pathSequence(p).toString());
    }
}

TEST(Transclosure, GraphIsSmallerThanInputs)
{
    // With real shared variation, the graph's total bases must be far
    // below the concatenated input size.
    const auto pangenome =
        synth::simulatePangenome(synth::mGraphLikeConfig(10000, 23));
    std::vector<Sequence> seqs;
    seqs.push_back(pangenome.reference);
    for (const auto &hap : pangenome.haplotypes)
        seqs.push_back(hap);
    SequenceCatalog catalog(seqs);
    std::vector<MatchSegment> matches;
    for (const auto &m : synth::groundTruthMatches(pangenome)) {
        matches.push_back({catalog.globalOffset(0, m.refStart),
                           catalog.globalOffset(m.haplotype + 1,
                                                m.hapStart),
                           m.length});
    }
    const auto result = transclose(catalog, matches);
    EXPECT_LT(result.graph.stats().totalBases,
              catalog.totalBases() / 3);
    // The induced graph spells every input sequence exactly.
    for (size_t s = 0; s < seqs.size(); ++s) {
        ASSERT_EQ(result.graph
                      .pathSequence(static_cast<graph::PathId>(s))
                      .toString(),
                  seqs[s].toString());
    }
}

} // namespace
} // namespace pgb::build
