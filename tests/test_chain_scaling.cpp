/**
 * @file
 * Tests for pipeline/chain (anchor clustering and the minigraph-style
 * 2-D chaining DP) and pipeline/scaling (the Figure 5 measurement
 * harness) — the two pipeline helpers that previously had no direct
 * coverage.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "pipeline/chain.hpp"
#include "pipeline/scaling.hpp"

namespace {

using namespace pgb;
using pipeline::Anchor;
using pipeline::AnchorChain;
using pipeline::ChainParams;

/** A colinear run of forward anchors with @p step query/graph spacing. */
std::vector<Anchor>
colinearRun(size_t count, uint32_t step, uint64_t linear_base,
            bool reverse = false)
{
    std::vector<Anchor> anchors;
    for (size_t i = 0; i < count; ++i) {
        Anchor anchor;
        anchor.queryPos = static_cast<uint32_t>(
            reverse ? (count - 1 - i) * step : i * step);
        anchor.linearPos = linear_base + i * step;
        anchor.node = static_cast<uint32_t>(i);
        anchor.reverse = reverse;
        anchors.push_back(anchor);
    }
    return anchors;
}

TEST(Chain, ChainsAreColinear)
{
    // Two separated colinear runs plus noise anchors; every extracted
    // chain must be monotone: increasing linearPos, and queryPos
    // increasing (forward) or decreasing (reverse).
    auto anchors = colinearRun(10, 20, 1000);
    const auto far_run = colinearRun(8, 20, 50000);
    anchors.insert(anchors.end(), far_run.begin(), far_run.end());
    Anchor noise;
    noise.queryPos = 5;
    noise.linearPos = 30000;
    anchors.push_back(noise);

    const auto chains = pipeline::chainAnchors(anchors, ChainParams{});
    ASSERT_FALSE(chains.empty());
    for (const AnchorChain &chain : chains) {
        for (size_t i = 1; i < chain.anchorIds.size(); ++i) {
            const Anchor &prev = anchors[chain.anchorIds[i - 1]];
            const Anchor &cur = anchors[chain.anchorIds[i]];
            EXPECT_LT(prev.linearPos, cur.linearPos);
            if (chain.reverse)
                EXPECT_GT(prev.queryPos, cur.queryPos);
            else
                EXPECT_LT(prev.queryPos, cur.queryPos);
        }
    }
}

TEST(Chain, ChainsComeBestFirstAndFindTheLongRun)
{
    auto anchors = colinearRun(12, 20, 1000);
    const auto short_run = colinearRun(3, 20, 80000);
    anchors.insert(anchors.end(), short_run.begin(), short_run.end());

    const auto chains = pipeline::chainAnchors(anchors, ChainParams{});
    ASSERT_GE(chains.size(), 2u);
    for (size_t i = 1; i < chains.size(); ++i)
        EXPECT_GE(chains[i - 1].score, chains[i].score);
    // The dominant colinear run wins and is fully recovered.
    EXPECT_EQ(chains.front().anchorIds.size(), 12u);
    EXPECT_FALSE(chains.front().reverse);
}

TEST(Chain, ReverseRunsChainOnTheReverseStrand)
{
    const auto anchors = colinearRun(8, 25, 4000, /*reverse=*/true);
    const auto chains = pipeline::chainAnchors(anchors, ChainParams{});
    ASSERT_FALSE(chains.empty());
    EXPECT_TRUE(chains.front().reverse);
    EXPECT_EQ(chains.front().anchorIds.size(), 8u);
}

TEST(Chain, MaxGapSplitsDistantRuns)
{
    // Two runs separated by far more than maxGap cannot be bridged
    // into one chain.
    auto anchors = colinearRun(5, 20, 0);
    for (Anchor &anchor : colinearRun(5, 20, 100000)) {
        anchor.queryPos += 200;
        anchors.push_back(anchor);
    }
    ChainParams params;
    params.maxGap = 1000;
    const auto chains = pipeline::chainAnchors(anchors, params);
    for (const AnchorChain &chain : chains)
        EXPECT_LE(chain.anchorIds.size(), 5u);
}

TEST(Chain, ChainingIsDeterministic)
{
    auto anchors = colinearRun(10, 20, 1000);
    const auto other = colinearRun(6, 30, 9000);
    anchors.insert(anchors.end(), other.begin(), other.end());
    const auto first = pipeline::chainAnchors(anchors, ChainParams{});
    const auto second = pipeline::chainAnchors(anchors, ChainParams{});
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].anchorIds, second[i].anchorIds);
        EXPECT_EQ(first[i].score, second[i].score);
        EXPECT_EQ(first[i].reverse, second[i].reverse);
    }
}

TEST(Chain, ClusteringPartitionsTheAnchors)
{
    // Every anchor lands in exactly one cluster, scores equal the
    // cluster sizes, and clusters come best-first.
    auto anchors = colinearRun(10, 20, 1000);
    const auto far_run = colinearRun(4, 20, 500000);
    anchors.insert(anchors.end(), far_run.begin(), far_run.end());

    const auto clusters = pipeline::clusterAnchors(anchors, 128);
    std::set<uint32_t> seen;
    size_t total = 0;
    for (const AnchorChain &cluster : clusters) {
        EXPECT_EQ(cluster.score,
                  static_cast<int64_t>(cluster.anchorIds.size()));
        for (uint32_t id : cluster.anchorIds) {
            EXPECT_TRUE(seen.insert(id).second)
                << "anchor " << id << " in two clusters";
            ++total;
        }
    }
    EXPECT_EQ(total, anchors.size());
    for (size_t i = 1; i < clusters.size(); ++i)
        EXPECT_GE(clusters[i - 1].score, clusters[i].score);
}

TEST(Chain, EmptyInputYieldsNoChains)
{
    const std::vector<Anchor> none;
    EXPECT_TRUE(pipeline::chainAnchors(none, ChainParams{}).empty());
    EXPECT_TRUE(pipeline::clusterAnchors(none, 128).empty());
}

TEST(Scaling, SeriesRecordsEveryRequestedPoint)
{
    const unsigned counts[] = {1, 2, 4};
    std::vector<unsigned> invoked;
    const auto series = pipeline::measureScaling(
        "tool", counts, [&](unsigned threads) {
            invoked.push_back(threads);
        });
    EXPECT_EQ(series.tool, "tool");
    ASSERT_EQ(series.points.size(), 3u);
    EXPECT_EQ(invoked, (std::vector<unsigned>{1, 2, 4}));
    for (size_t i = 0; i < series.points.size(); ++i) {
        EXPECT_EQ(series.points[i].threads, counts[i]);
        EXPECT_GE(series.points[i].seconds, 0.0);
        EXPECT_GT(series.points[i].speedup, 0.0);
    }
    // Speedup is normalized to the first point by definition.
    EXPECT_DOUBLE_EQ(series.points[0].speedup, 1.0);
}

TEST(Scaling, SpeedupIsRelativeToTheFirstPoint)
{
    // A body whose runtime we control only loosely still satisfies
    // the algebraic identity speedup = first.seconds / point.seconds.
    const unsigned counts[] = {1, 2};
    const auto series = pipeline::measureScaling(
        "algebra", counts, [](unsigned threads) {
            volatile uint64_t x = 0;
            const uint64_t spins = threads == 1 ? 400000 : 100000;
            for (uint64_t i = 0; i < spins; ++i)
                x = x + i;
        });
    ASSERT_EQ(series.points.size(), 2u);
    ASSERT_GT(series.points[1].seconds, 0.0);
    EXPECT_DOUBLE_EQ(series.points[1].speedup,
                     series.points[0].seconds /
                         series.points[1].seconds);
}

} // namespace
