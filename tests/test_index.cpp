/**
 * @file
 * Tests for src/index: suffix array, minimizers, the minimizer index,
 * and the GBWT (find/extend/nextNodes vs brute-force path scans).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/rng.hpp"
#include "graph/pangraph.hpp"
#include "index/gbwt.hpp"
#include "index/minimizer.hpp"
#include "index/suffix_array.hpp"
#include "synth/pangenome_sim.hpp"

namespace pgb::index {
namespace {

using core::Rng;
using graph::Handle;
using graph::PanGraph;
using seq::Sequence;

// ------------------------------------------------------ SuffixArray

TEST(SuffixArray, KnownSmallCase)
{
    // "banana" with a=1, b=2, n=3: suffixes sorted.
    const std::vector<uint32_t> text = {2, 1, 3, 1, 3, 1};
    const auto sa = buildSuffixArray(text);
    const std::vector<uint32_t> expected = {5, 3, 1, 0, 4, 2};
    EXPECT_EQ(sa, expected);
}

TEST(SuffixArray, MatchesBruteForceOnRandomTexts)
{
    Rng rng(80);
    for (int round = 0; round < 15; ++round) {
        const size_t n = 1 + rng.below(300);
        std::vector<uint32_t> text;
        for (size_t i = 0; i < n; ++i)
            text.push_back(static_cast<uint32_t>(rng.below(5)));
        const auto sa = buildSuffixArray(text);
        std::vector<uint32_t> expected(n);
        for (uint32_t i = 0; i < n; ++i)
            expected[i] = i;
        std::sort(expected.begin(), expected.end(),
                  [&](uint32_t a, uint32_t b) {
                      return std::lexicographical_compare(
                          text.begin() + a, text.end(),
                          text.begin() + b, text.end());
                  });
        ASSERT_EQ(sa, expected) << "round " << round;
    }
}

TEST(SuffixArray, RanksAreInverse)
{
    const std::vector<uint32_t> text = {3, 1, 4, 1, 5, 9, 2, 6};
    const auto sa = buildSuffixArray(text);
    const auto ranks = suffixRanks(sa);
    for (uint32_t r = 0; r < sa.size(); ++r)
        EXPECT_EQ(ranks[sa[r]], r);
}

// ------------------------------------------------------- Minimizers

TEST(Minimizers, DeterministicAndSorted)
{
    Rng rng(81);
    std::vector<uint8_t> bases;
    for (int i = 0; i < 500; ++i)
        bases.push_back(static_cast<uint8_t>(rng.below(4)));
    const auto a = computeMinimizers(bases, 15, 10);
    const auto b = computeMinimizers(bases, 15, 10);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_FALSE(a.empty());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].hash, b[i].hash);
        EXPECT_EQ(a[i].position, b[i].position);
    }
    // Positions non-decreasing.
    for (size_t i = 1; i < a.size(); ++i)
        EXPECT_LE(a[i - 1].position, a[i].position);
}

TEST(Minimizers, WindowDensity)
{
    Rng rng(82);
    std::vector<uint8_t> bases;
    for (int i = 0; i < 10000; ++i)
        bases.push_back(static_cast<uint8_t>(rng.below(4)));
    const int w = 10;
    const auto minis = computeMinimizers(bases, 15, w);
    // Expected density ~ 2/(w+1) per position.
    const double density = static_cast<double>(minis.size()) /
                           static_cast<double>(bases.size());
    EXPECT_GT(density, 1.0 / (w + 1));
    EXPECT_LT(density, 3.0 / (w + 1));
}

TEST(Minimizers, CanonicalUnderReverseComplement)
{
    // The minimizer *hash set* of a sequence and its reverse
    // complement must be identical (canonical k-mers).
    Rng rng(83);
    std::vector<uint8_t> bases;
    for (int i = 0; i < 400; ++i)
        bases.push_back(static_cast<uint8_t>(rng.below(4)));
    Sequence fwd{std::vector<uint8_t>(bases)};
    const Sequence rev = fwd.reverseComplement();
    auto hashes_of = [](const Sequence &s) {
        std::vector<uint64_t> hashes;
        for (const auto &m : computeMinimizers(s.codes(), 15, 10))
            hashes.push_back(m.hash);
        std::sort(hashes.begin(), hashes.end());
        hashes.erase(std::unique(hashes.begin(), hashes.end()),
                     hashes.end());
        return hashes;
    };
    EXPECT_EQ(hashes_of(fwd), hashes_of(rev));
}

TEST(Minimizers, SkipsNBases)
{
    std::vector<uint8_t> bases(100, 0);
    for (size_t i = 40; i < 60; ++i)
        bases[i] = seq::kBaseN;
    const auto minis = computeMinimizers(bases, 15, 5);
    for (const auto &m : minis) {
        // No k-mer may overlap the N run.
        EXPECT_TRUE(m.position + 15 <= 40 || m.position >= 60)
            << m.position;
    }
}

TEST(Minimizers, ShortSequenceYieldsNothing)
{
    std::vector<uint8_t> bases(10, 1);
    EXPECT_TRUE(computeMinimizers(bases, 15, 10).empty());
}

// --------------------------------------------------- MinimizerIndex

TEST(MinimizerIndex, FindsIndexedKmers)
{
    const auto pangenome =
        synth::simulatePangenome(synth::mGraphLikeConfig(20000, 1));
    MinimizerIndex index(pangenome.graph, 15, 10);
    EXPECT_GT(index.distinctMinimizers(), 100u);
    EXPECT_GE(index.totalOccurrences(), index.distinctMinimizers());

    // Every indexed occurrence's node must actually contain a k-mer
    // hashing to the key: verify via a sample of node sequences.
    size_t verified = 0;
    for (graph::NodeId node = 0;
         node < pangenome.graph.nodeCount() && verified < 50; ++node) {
        const auto &codes = pangenome.graph.nodeSequence(node).codes();
        for (const Minimizer &mini :
             computeMinimizers(codes, 15, 10)) {
            const auto hits = index.occurrences(mini.hash);
            const bool found = std::any_of(
                hits.begin(), hits.end(),
                [&](const GraphSeedHit &hit) {
                    return hit.node == node &&
                           hit.offset == mini.position;
                });
            EXPECT_TRUE(found) << "node " << node;
            ++verified;
        }
    }
    EXPECT_GT(verified, 0u);
}

TEST(MinimizerIndex, IndexesBoundarySpanningKmersViaPaths)
{
    // A chain of 1 bp nodes: every k-mer spans node boundaries, so
    // only path-based indexing can see them (the Split-M-graph case).
    Rng rng(86);
    PanGraph g;
    std::vector<graph::Handle> steps;
    std::vector<uint8_t> spelled;
    for (int i = 0; i < 300; ++i) {
        const auto base = static_cast<uint8_t>(rng.below(4));
        spelled.push_back(base);
        const auto node = g.addNode(
            Sequence(std::vector<uint8_t>{base}));
        if (i > 0) {
            g.addEdge(graph::Handle(node - 1, false),
                      graph::Handle(node, false));
        }
        steps.emplace_back(node, false);
    }
    g.addPath("walk", std::move(steps));
    MinimizerIndex index(g, 15, 10);
    EXPECT_GT(index.distinctMinimizers(), 10u);

    // Every sequence minimizer is findable and projects to the node
    // holding the k-mer's first base (node id == path offset here).
    size_t checked = 0;
    for (const auto &mini : computeMinimizers(spelled, 15, 10)) {
        const auto hits = index.occurrences(mini.hash);
        const bool found = std::any_of(
            hits.begin(), hits.end(), [&](const GraphSeedHit &hit) {
                return hit.node == mini.position && hit.offset == 0;
            });
        EXPECT_TRUE(found) << "minimizer at " << mini.position;
        ++checked;
    }
    EXPECT_GT(checked, 10u);
}

TEST(MinimizerIndex, SplitGraphKeepsSeedableCoverage)
{
    // After the Split-M transform, the index must still produce
    // occurrences (regression for the Figure 11 pipeline).
    const auto pangenome =
        synth::simulatePangenome(synth::mGraphLikeConfig(10000, 87));
    const PanGraph split = pangenome.graph.splitNodes(8);
    MinimizerIndex whole(pangenome.graph, 15, 10);
    MinimizerIndex fine(split, 15, 10);
    // Both graphs spell the same haplotypes: similar minimizer counts.
    EXPECT_GT(fine.distinctMinimizers(),
              whole.distinctMinimizers() / 2);
}

TEST(MinimizerIndex, UnknownHashGivesEmptySpan)
{
    PanGraph g;
    g.addNode(Sequence("", std::string(100, 'A')));
    MinimizerIndex index(g, 15, 10);
    EXPECT_TRUE(index.occurrences(0xDEADBEEFull).empty());
}

// -------------------------------------------------------------- GBWT

/** Small three-haplotype graph exercising divergent walks. */
PanGraph
threeHaplotypes()
{
    PanGraph g;
    const auto a = g.addNode(Sequence("", "AC")); // 0
    const auto b = g.addNode(Sequence("", "G"));  // 1
    const auto c = g.addNode(Sequence("", "T"));  // 2
    const auto d = g.addNode(Sequence("", "CA")); // 3
    const auto e = g.addNode(Sequence("", "AA")); // 4
    g.addEdge(Handle(a, false), Handle(b, false));
    g.addEdge(Handle(a, false), Handle(c, false));
    g.addEdge(Handle(b, false), Handle(d, false));
    g.addEdge(Handle(c, false), Handle(d, false));
    g.addEdge(Handle(c, false), Handle(e, false));
    g.addEdge(Handle(d, false), Handle(e, false));
    g.addPath("h1", {Handle(a, false), Handle(b, false),
                     Handle(d, false), Handle(e, false)});
    g.addPath("h2", {Handle(a, false), Handle(c, false),
                     Handle(d, false), Handle(e, false)});
    g.addPath("h3", {Handle(a, false), Handle(c, false),
                     Handle(e, false)});
    return g;
}

TEST(Gbwt, VisitCounts)
{
    const PanGraph g = threeHaplotypes();
    const GbwtIndex gbwt(g);
    EXPECT_EQ(gbwt.visitCount(Handle(0, false)), 3u);
    EXPECT_EQ(gbwt.visitCount(Handle(1, false)), 1u);
    EXPECT_EQ(gbwt.visitCount(Handle(2, false)), 2u);
    EXPECT_EQ(gbwt.visitCount(Handle(3, false)), 2u);
    EXPECT_EQ(gbwt.visitCount(Handle(4, false)), 3u);
}

TEST(Gbwt, FindCountsSupportingHaplotypes)
{
    const PanGraph g = threeHaplotypes();
    const GbwtIndex gbwt(g);
    auto count = [&](std::vector<Handle> steps) {
        return gbwt.find(steps).size();
    };
    EXPECT_EQ(count({Handle(0, false)}), 3u);
    EXPECT_EQ(count({Handle(0, false), Handle(2, false)}), 2u);
    EXPECT_EQ(count({Handle(0, false), Handle(2, false),
                     Handle(3, false)}), 1u);
    EXPECT_EQ(count({Handle(2, false), Handle(4, false)}), 1u);
    // The paper's Figure 4c scenario: 1->3 then 4 only if a haplotype
    // takes it; here 0->1->3->4 exists (h1).
    EXPECT_EQ(count({Handle(0, false), Handle(1, false),
                     Handle(3, false), Handle(4, false)}), 1u);
}

TEST(Gbwt, FindRejectsNonHaplotypeWalks)
{
    const PanGraph g = threeHaplotypes();
    const GbwtIndex gbwt(g);
    // Edge 1->3 and 3->4 exist, but no haplotype goes 0->2 then ends
    // with ... 2->3 then 3->... wait: h2 does 2->3. Use a walk no
    // haplotype takes even though every edge exists: none here, so
    // query a nonexistent edge walk instead.
    const std::vector<Handle> walk = {Handle(1, false),
                                      Handle(2, false)};
    EXPECT_TRUE(gbwt.find(walk).empty());
}

TEST(Gbwt, NextNodesAreHaplotypeConsistent)
{
    const PanGraph g = threeHaplotypes();
    const GbwtIndex gbwt(g);
    // After 0 -> 2 (h2, h3): next can be 3 (h2) or 4 (h3).
    const std::vector<Handle> prefix = {Handle(0, false),
                                        Handle(2, false)};
    const auto range = gbwt.find(prefix);
    auto nexts = gbwt.nextNodes(range);
    std::vector<uint32_t> ids;
    for (Handle h : nexts)
        ids.push_back(h.node());
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(ids, (std::vector<uint32_t>{3, 4}));

    // After 0 -> 1 (h1 only): next is 3 only.
    const auto range2 =
        gbwt.find(std::vector<Handle>{Handle(0, false),
                                      Handle(1, false)});
    const auto nexts2 = gbwt.nextNodes(range2);
    ASSERT_EQ(nexts2.size(), 1u);
    EXPECT_EQ(nexts2[0].node(), 3u);
}

/** Brute-force count of subpath occurrences across all paths. */
size_t
bruteForceCount(const PanGraph &g, const std::vector<Handle> &walk)
{
    size_t count = 0;
    for (graph::PathId p = 0; p < g.pathCount(); ++p) {
        const auto &steps = g.pathSteps(p);
        if (steps.size() < walk.size())
            continue;
        for (size_t i = 0; i + walk.size() <= steps.size(); ++i) {
            bool match = true;
            for (size_t j = 0; j < walk.size(); ++j) {
                if (!(steps[i + j] == walk[j])) {
                    match = false;
                    break;
                }
            }
            count += match ? 1 : 0;
        }
    }
    return count;
}

TEST(Gbwt, FindMatchesBruteForceOnSyntheticPangenome)
{
    const auto pangenome =
        synth::simulatePangenome(synth::mGraphLikeConfig(15000, 2));
    const PanGraph &g = pangenome.graph;
    const GbwtIndex gbwt(g);
    Rng rng(84);
    for (int round = 0; round < 100; ++round) {
        // Random subpath of a random haplotype (the paper's GBWT
        // query workload: lengths 1..100).
        const graph::PathId path =
            static_cast<graph::PathId>(rng.below(g.pathCount()));
        const auto &steps = g.pathSteps(path);
        const size_t len = 1 + rng.below(std::min<size_t>(
            100, steps.size()));
        const size_t start = rng.below(steps.size() - len + 1);
        std::vector<Handle> walk(steps.begin() + start,
                                 steps.begin() + start + len);
        const size_t expected = bruteForceCount(g, walk);
        ASSERT_GE(expected, 1u);
        ASSERT_EQ(gbwt.find(walk).size(), expected)
            << "round " << round << " len " << len;
    }
}

TEST(Gbwt, RleAndPlainAgree)
{
    const auto pangenome =
        synth::simulatePangenome(synth::mGraphLikeConfig(8000, 3));
    const PanGraph &g = pangenome.graph;
    const GbwtIndex rle(g, true);
    const GbwtIndex plain(g, false);
    EXPECT_TRUE(rle.runLengthEncoded());
    EXPECT_FALSE(plain.runLengthEncoded());
    Rng rng(85);
    for (int round = 0; round < 50; ++round) {
        const graph::PathId path =
            static_cast<graph::PathId>(rng.below(g.pathCount()));
        const auto &steps = g.pathSteps(path);
        const size_t len =
            1 + rng.below(std::min<size_t>(30, steps.size()));
        const size_t start = rng.below(steps.size() - len + 1);
        std::vector<Handle> walk(steps.begin() + start,
                                 steps.begin() + start + len);
        const auto a = rle.find(walk);
        const auto b = plain.find(walk);
        ASSERT_EQ(a.size(), b.size()) << "round " << round;
        ASSERT_EQ(a.node, b.node);
        ASSERT_EQ(a.begin, b.begin);
    }
}

TEST(Gbwt, RunLengthEncodingCompresses)
{
    const auto pangenome =
        synth::simulatePangenome(synth::mGraphLikeConfig(20000, 4));
    const GbwtIndex gbwt(pangenome.graph);
    const auto stats = gbwt.stats();
    EXPECT_GT(stats.records, 0u);
    EXPECT_GT(stats.totalVisits, 0u);
    // Haplotypes mostly share routes, so runs should be > 1 on
    // average (the GBWT's core compression property).
    EXPECT_GT(stats.avgRunLength, 1.5);
}

TEST(Gbwt, StatsTotalVisitsEqualPathSteps)
{
    const PanGraph g = threeHaplotypes();
    const GbwtIndex gbwt(g);
    size_t steps = 0;
    for (graph::PathId p = 0; p < g.pathCount(); ++p)
        steps += g.pathSteps(p).size();
    EXPECT_EQ(gbwt.stats().totalVisits, steps);
}

} // namespace
} // namespace pgb::index
