/**
 * @file
 * Scheduler tests: the persistent work-stealing pool behind
 * parallelFor/parallelRun. Covers pool reuse (the worker-spawn counter
 * stays flat after warm-up), auto grain sizing, nested TaskGroup
 * submission, the exception contract, determinism of the pool-parallel
 * kernels (transclosure, minimizer index, GBWT) against their serial
 * outputs, and the threadpool.* fault sites' Nth-hit semantics.
 *
 * On single-core hosts the pool holds zero persistent workers and
 * every parallel call degrades to the inline path; the tests assert
 * behavior that must hold at any pool width. Run with PGB_THREADS=4
 * (as the TSan CI job does) to force a real multi-worker pool.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <span>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "build/transclosure.hpp"
#include "core/fault.hpp"
#include "core/logging.hpp"
#include "core/thread_pool.hpp"
#include "core/union_find.hpp"
#include "graph/gfa.hpp"
#include "index/gbwt.hpp"
#include "index/minimizer.hpp"
#include "synth/pangenome_sim.hpp"

namespace pgb {
namespace {

using core::FatalError;

class SchedulerTest : public ::testing::Test
{
  protected:
    void SetUp() override { core::fault::disarmAll(); }
    void TearDown() override { core::fault::disarmAll(); }
};

// ------------------------------------------------------ pool reuse

TEST_F(SchedulerTest, SpawnCounterStaysFlatAcrossManyParallelFors)
{
    // Warm-up: the first parallel call initializes the pool.
    std::atomic<uint64_t> sink(0);
    core::parallelFor(0, 1000, 8, [&](size_t i) { sink += i; });
    const size_t after_warmup = core::poolWorkersSpawned();
    EXPECT_EQ(after_warmup, core::poolWorkerCount());

    for (int call = 0; call < 100; ++call) {
        core::parallelFor(0, 500, 8, [&](size_t i) { sink += i; });
    }
    // Persistent pool: no thread is ever created after warm-up.
    EXPECT_EQ(core::poolWorkersSpawned(), after_warmup);

    for (int call = 0; call < 10; ++call) {
        core::parallelRun(4, [&](unsigned t) { sink += t; });
    }
    EXPECT_EQ(core::poolWorkersSpawned(), after_warmup);
}

// --------------------------------------------------- parallel for

TEST_F(SchedulerTest, ParallelForVisitsEveryIndexExactlyOnce)
{
    constexpr size_t kRange = 10000;
    std::vector<std::atomic<uint32_t>> visits(kRange);
    core::parallelFor(0, kRange, 8, [&](size_t i) { ++visits[i]; });
    for (size_t i = 0; i < kRange; ++i)
        EXPECT_EQ(visits[i].load(), 1u) << "index " << i;
}

TEST_F(SchedulerTest, ParallelForMatchesSerialSum)
{
    constexpr size_t kRange = 50000;
    uint64_t serial = 0;
    for (size_t i = 0; i < kRange; ++i)
        serial += i * i;
    std::atomic<uint64_t> parallel(0);
    core::parallelFor(0, kRange, 8,
                      [&](size_t i) { parallel += i * i; });
    EXPECT_EQ(parallel.load(), serial);
}

TEST_F(SchedulerTest, ParallelForHonorsExplicitChunk)
{
    std::vector<std::atomic<uint32_t>> visits(1000);
    core::parallelFor(
        0, 1000, 4, [&](size_t i) { ++visits[i]; }, /* chunk */ 7);
    for (size_t i = 0; i < 1000; ++i)
        EXPECT_EQ(visits[i].load(), 1u);
}

TEST_F(SchedulerTest, ParallelRunExecutesEveryThreadIndex)
{
    std::vector<std::atomic<uint32_t>> ran(16);
    core::parallelRun(16, [&](unsigned t) { ++ran[t]; });
    for (size_t t = 0; t < 16; ++t)
        EXPECT_EQ(ran[t].load(), 1u) << "thread " << t;
}

// ------------------------------------------------------ grain size

TEST_F(SchedulerTest, GrainSizeTargetsEightChunksPerRunner)
{
    EXPECT_EQ(core::grainSize(800, 1), 100u);
    EXPECT_EQ(core::grainSize(800, 4), 25u);
    // Never below one index per chunk.
    EXPECT_EQ(core::grainSize(3, 8), 1u);
    // Capped so one chunk cannot monopolize a runner forever.
    EXPECT_EQ(core::grainSize(100'000'000, 1), 65536u);
}

TEST_F(SchedulerTest, ClampThreadsMapsZeroToOne)
{
    EXPECT_EQ(core::clampThreads(0), 1u);
    EXPECT_EQ(core::clampThreads(1), 1u);
    EXPECT_EQ(core::clampThreads(17), 17u);
}

TEST_F(SchedulerTest, HardwareThreadsIsPositiveAndStable)
{
    const unsigned first = core::hardwareThreads();
    EXPECT_GE(first, 1u);
    EXPECT_EQ(core::hardwareThreads(), first);
}

// ------------------------------------------------- nested submission

TEST_F(SchedulerTest, NestedTaskGroupsCompleteWithoutDeadlock)
{
    std::atomic<uint64_t> inner_total(0);
    core::TaskGroup outer;
    for (int o = 0; o < 8; ++o) {
        outer.submit([&inner_total] {
            core::TaskGroup inner;
            for (int i = 0; i < 8; ++i)
                inner.submit([&inner_total] { ++inner_total; });
            inner.wait();
        });
    }
    outer.wait();
    EXPECT_EQ(inner_total.load(), 64u);
}

TEST_F(SchedulerTest, NestedParallelForCompletesWithoutDeadlock)
{
    std::atomic<uint64_t> cells(0);
    core::parallelFor(0, 16, 4, [&](size_t) {
        core::parallelFor(0, 100, 4, [&](size_t) { ++cells; });
    });
    EXPECT_EQ(cells.load(), 1600u);
}

TEST_F(SchedulerTest, TaskGroupRethrowsFirstExceptionOnWait)
{
    core::TaskGroup group;
    for (int i = 0; i < 4; ++i) {
        group.submit([] { core::fatal("boom"); });
    }
    bool threw = false;
    try {
        group.wait();
    } catch (const FatalError &error) {
        threw = true;
        EXPECT_NE(std::string(error.what()).find("boom"),
                  std::string::npos);
    }
    EXPECT_TRUE(threw);
    EXPECT_TRUE(group.stopped());
}

// ------------------------------------------- concurrent union-find

TEST_F(SchedulerTest, ConcurrentUnionFindMatchesSerialPartition)
{
    constexpr size_t kElements = 20000;
    // A pseudo-random pair set; both forests must induce the same
    // partition no matter the unite order or interleaving.
    std::vector<std::pair<size_t, size_t>> pairs;
    uint64_t state = 12345;
    for (size_t i = 0; i < 30000; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const size_t a = (state >> 20) % kElements;
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const size_t b = (state >> 20) % kElements;
        pairs.emplace_back(a, b);
    }
    core::UnionFind serial(kElements);
    for (const auto &[a, b] : pairs)
        serial.unite(a, b);
    core::ConcurrentUnionFind concurrent(kElements);
    core::parallelFor(0, pairs.size(), 8, [&](size_t i) {
        concurrent.unite(pairs[i].first, pairs[i].second);
    });
    EXPECT_EQ(concurrent.countSets(), serial.setCount());
    // Same partition: elements agree on same-set membership. The
    // concurrent representative is the set minimum by construction.
    core::UnionFind adopted(kElements);
    adopted.adoptFrom(concurrent);
    EXPECT_EQ(adopted.setCount(), serial.setCount());
    for (size_t i = 1; i < kElements; ++i) {
        EXPECT_EQ(serial.same(i - 1, i), adopted.same(i - 1, i))
            << "element " << i;
        EXPECT_LE(adopted.find(i), i);
    }
}

// -------------------------------------------- kernel determinism

synth::Pangenome
smallPangenome()
{
    return synth::simulatePangenome(
        synth::mGraphLikeConfig(20000, /* seed */ 7));
}

TEST_F(SchedulerTest, TransclosureParallelSweepIsBitIdentical)
{
    const auto pangenome = smallPangenome();
    std::vector<seq::Sequence> inputs;
    inputs.push_back(pangenome.reference);
    for (const auto &hap : pangenome.haplotypes)
        inputs.push_back(hap);
    build::SequenceCatalog catalog(inputs);
    std::vector<build::MatchSegment> matches;
    for (const auto &m : synth::groundTruthMatches(pangenome, 16)) {
        matches.push_back({catalog.globalOffset(0, m.refStart),
                           catalog.globalOffset(m.haplotype + 1,
                                                m.hapStart),
                           m.length});
    }

    build::TcOptions serial_options;
    serial_options.threads = 1;
    const auto serial =
        build::transclose(catalog, matches, serial_options);

    build::TcOptions parallel_options;
    parallel_options.threads = 8;
    // A small chunk gives the runners many chunks to race over.
    parallel_options.chunkSize = 1 << 12;
    const auto parallel =
        build::transclose(catalog, matches, parallel_options);

    EXPECT_EQ(parallel.closureClasses, serial.closureClasses);
    EXPECT_EQ(parallel.unions, serial.unions);
    std::ostringstream serial_gfa, parallel_gfa;
    graph::writeGfa(serial_gfa, serial.graph);
    graph::writeGfa(parallel_gfa, parallel.graph);
    EXPECT_EQ(parallel_gfa.str(), serial_gfa.str());
}

TEST_F(SchedulerTest, MinimizerIndexParallelBuildIsIdentical)
{
    const auto pangenome = smallPangenome();
    const index::MinimizerIndex serial(pangenome.graph, 15, 10, 1);
    const index::MinimizerIndex parallel(pangenome.graph, 15, 10, 8);
    ASSERT_EQ(parallel.distinctMinimizers(),
              serial.distinctMinimizers());
    ASSERT_EQ(parallel.totalOccurrences(), serial.totalOccurrences());
    // Every hash that occurs on any path resolves to the same
    // occurrence list in both indexes.
    for (graph::PathId path = 0;
         path < pangenome.graph.pathCount(); ++path) {
        const auto spelled =
            pangenome.graph.pathSequence(path).codes();
        for (const auto &mini :
             index::computeMinimizers(spelled, 15, 10)) {
            const auto a = serial.occurrences(mini.hash);
            const auto b = parallel.occurrences(mini.hash);
            ASSERT_EQ(a.size(), b.size()) << "hash " << mini.hash;
            for (size_t i = 0; i < a.size(); ++i) {
                EXPECT_EQ(a[i].node, b[i].node);
                EXPECT_EQ(a[i].offset, b[i].offset);
                EXPECT_EQ(a[i].reverse, b[i].reverse);
            }
        }
    }
}

TEST_F(SchedulerTest, GbwtParallelBuildIsIdentical)
{
    const auto pangenome = smallPangenome();
    const index::GbwtIndex serial(pangenome.graph, true, 1);
    const index::GbwtIndex parallel(pangenome.graph, true, 8);
    const auto serial_stats = serial.stats();
    const auto parallel_stats = parallel.stats();
    EXPECT_EQ(parallel_stats.records, serial_stats.records);
    EXPECT_EQ(parallel_stats.totalVisits, serial_stats.totalVisits);
    EXPECT_EQ(parallel_stats.totalRuns, serial_stats.totalRuns);
    // Haplotype subpath queries agree step by step.
    for (graph::PathId path = 0;
         path < pangenome.graph.pathCount(); ++path) {
        const auto &steps = pangenome.graph.pathSteps(path);
        const size_t span = std::min<size_t>(steps.size(), 12);
        for (size_t start = 0; start + 2 <= span; ++start) {
            const std::span<const graph::Handle> query(
                steps.data() + start, span - start);
            const auto a = serial.find(query);
            const auto b = parallel.find(query);
            EXPECT_EQ(a.node, b.node);
            EXPECT_EQ(a.begin, b.begin);
            EXPECT_EQ(a.end, b.end);
        }
    }
}

// ------------------------------------------------- fault sites

TEST_F(SchedulerTest, ParallelForFaultSiteKeepsNthHitSemantics)
{
    // Inline path: chunk=1 makes hits count per index, so arming the
    // 3rd hit must name index 2 in the diagnostic.
    core::fault::arm("threadpool.for", 3);
    bool threw = false;
    try {
        core::parallelFor(
            0, 10, 1, [](size_t) {}, /* chunk */ 1);
    } catch (const FatalError &error) {
        threw = true;
        EXPECT_NE(std::string(error.what())
                      .find("injected worker fault at index 2"),
                  std::string::npos);
    }
    EXPECT_TRUE(threw);
    // One-shot: the site disarmed itself.
    EXPECT_FALSE(core::fault::armed("threadpool.for"));
    std::atomic<uint64_t> sink(0);
    core::parallelFor(0, 100, 8, [&](size_t i) { sink += i; });
}

TEST_F(SchedulerTest, ParallelForFaultFiresOnPooledWorkers)
{
    core::fault::arm("threadpool.for", 2);
    std::atomic<size_t> visited(0);
    EXPECT_THROW(core::parallelFor(0, 100000, 8,
                                   [&](size_t) { ++visited; }),
                 FatalError);
    // The faulted chunk never ran its body.
    EXPECT_LT(visited.load(), 100000u);
    EXPECT_FALSE(core::fault::armed("threadpool.for"));
}

TEST_F(SchedulerTest, ParallelRunFaultSiteKeepsNthHitSemantics)
{
    core::fault::arm("threadpool.run", 2);
    std::atomic<unsigned> started(0);
    EXPECT_THROW(core::parallelRun(4,
                                   [&](unsigned) { ++started; }),
                 FatalError);
    EXPECT_LT(started.load(), 4u);
    EXPECT_FALSE(core::fault::armed("threadpool.run"));
    // The pool survives an injected fault: later runs are clean.
    std::atomic<unsigned> again(0);
    core::parallelRun(4, [&](unsigned) { ++again; });
    EXPECT_EQ(again.load(), 4u);
}

} // namespace
} // namespace pgb
