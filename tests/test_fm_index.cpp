/**
 * @file
 * Differential test battery for the FM-index (index/fm_index.hpp).
 *
 * A wrong seeder degrades mapping accuracy silently, so every FM
 * operation is proven against a brute-force oracle that shares no
 * code with the index: find/count/locate against a naive per-path
 * scan, and SMEM enumeration against an O(n*m) dynamic-programming
 * enumerator, over randomized texts/queries (>= 1000 cases) and
 * adversarial shapes (tandem repeats, homopolymers, all-N), at
 * multiple (min_length, sample_rate) settings. The ctest lanes run
 * this file under PGB_THREADS=1 and 8; identical results prove the
 * index is thread-count independent.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/logging.hpp"
#include "core/rng.hpp"
#include "graph/pangraph.hpp"
#include "index/fm_index.hpp"
#include "seq/sequence.hpp"

namespace {

using namespace pgb;
using index::FmIndex;

/** One single-node path per string: FM text layout without graph
 *  topology in the way (projection is covered by test_seeder). */
graph::PanGraph
pathGraph(const std::vector<std::string> &texts)
{
    graph::PanGraph graph;
    for (size_t p = 0; p < texts.size(); ++p) {
        const graph::NodeId node =
            graph.addNode(seq::Sequence("", texts[p]));
        graph.addPath("p" + std::to_string(p),
                      {graph::Handle(node, false)});
    }
    return graph;
}

std::vector<uint8_t>
codesOf(const std::string &text)
{
    return seq::encodeString(text);
}

/** Every (path, offset) where @p pattern occurs, by naive scan. */
std::vector<std::pair<uint32_t, uint64_t>>
naiveOccurrences(const std::vector<std::string> &texts,
                 const std::string &pattern)
{
    std::vector<std::pair<uint32_t, uint64_t>> hits;
    if (pattern.empty())
        return hits;
    for (uint32_t p = 0; p < texts.size(); ++p) {
        const std::string &text = texts[p];
        for (size_t at = 0;
             pattern.size() <= text.size() &&
             at + pattern.size() <= text.size();
             ++at) {
            if (text.compare(at, pattern.size(), pattern) == 0)
                hits.emplace_back(p, at);
        }
    }
    return hits;
}

/** FM occurrences of @p pattern as sorted (path, offset) pairs. */
std::vector<std::pair<uint32_t, uint64_t>>
fmOccurrences(const FmIndex &fm, const std::string &pattern)
{
    std::vector<std::pair<uint32_t, uint64_t>> hits;
    const auto range = fm.find(codesOf(pattern));
    for (uint64_t r = range.lo; r < range.hi; ++r) {
        const auto pos = fm.resolve(fm.locate(r));
        hits.emplace_back(pos.path, pos.offset);
    }
    std::sort(hits.begin(), hits.end());
    return hits;
}

/** An SMEM as plain data, for set comparison against the oracle. */
struct OracleMem
{
    uint32_t begin = 0;
    uint32_t end = 0;
    uint64_t occurrences = 0;

    bool
    operator==(const OracleMem &other) const
    {
        return begin == other.begin && end == other.end &&
               occurrences == other.occurrences;
    }
};

/**
 * Brute-force SMEM enumeration sharing no machinery with the index.
 * longest[b] = length of the longest match of query starting at b
 * anywhere in any text, via the classic backward extension DP
 * (match[b][t] = query[b]==text[t] ? 1 + match[b+1][t+1] : 0).
 * [b, b+longest[b]) is an SMEM iff it is long enough and not
 * contained in the (always longer-or-equal reaching) match starting
 * one position earlier.
 */
std::vector<OracleMem>
oracleMems(const std::vector<std::string> &texts,
           const std::string &query, uint32_t min_length)
{
    const size_t m = query.size();
    std::vector<size_t> longest(m + 1, 0);
    for (const std::string &text : texts) {
        const size_t n = text.size();
        std::vector<size_t> next(n + 1, 0), cur(n + 1, 0);
        for (size_t b = m; b-- > 0;) {
            for (size_t t = 0; t < n; ++t) {
                cur[t] = query[b] == text[t] ? 1 + next[t + 1] : 0;
                longest[b] = std::max(longest[b], cur[t]);
            }
            cur[n] = 0;
            std::swap(next, cur);
        }
    }
    std::vector<OracleMem> mems;
    for (size_t b = 0; b < m; ++b) {
        const size_t len = longest[b];
        if (len < min_length)
            continue;
        if (b > 0 && longest[b - 1] > len)
            continue; // contained in the match starting at b-1
        const std::string sub = query.substr(b, len);
        mems.push_back({static_cast<uint32_t>(b),
                        static_cast<uint32_t>(b + len),
                        naiveOccurrences(texts, sub).size()});
    }
    return mems;
}

std::vector<OracleMem>
fmMems(const FmIndex &fm, const std::string &query, uint32_t min_length)
{
    std::vector<FmIndex::Mem> raw;
    fm.collectMems(codesOf(query), min_length, raw);
    std::vector<OracleMem> mems;
    for (const auto &mem : raw)
        mems.push_back({mem.queryBegin, mem.queryEnd,
                        mem.range.size()});
    return mems;
}

/** Random DNA string; @p n_rate mixes in 'N's when nonzero. */
std::string
randomText(core::Xoshiro256StarStar &rng, size_t length,
           double n_rate = 0.0)
{
    static const char bases[] = "ACGT";
    std::string text(length, 'A');
    for (char &c : text) {
        c = n_rate > 0 && rng.chance(n_rate)
                ? 'N'
                : bases[rng.below(4)];
    }
    return text;
}

/** A query related to the texts: a (possibly mutated) substring, or
 *  pure noise, so matches of interesting lengths actually occur. */
std::string
relatedQuery(core::Xoshiro256StarStar &rng,
             const std::vector<std::string> &texts, size_t length)
{
    const std::string &text = texts[rng.below(texts.size())];
    std::string query;
    if (text.size() >= length && rng.chance(0.7)) {
        const size_t at = rng.below(text.size() - length + 1);
        query = text.substr(at, length);
        const size_t mutations = rng.below(1 + length / 8);
        for (size_t i = 0; i < mutations; ++i)
            query[rng.below(query.size())] = "ACGTN"[rng.below(5)];
    } else {
        query = randomText(rng, length, 0.02);
    }
    return query;
}

// ---------------------------------------------------------------------
// find / count / locate vs naive scan
// ---------------------------------------------------------------------

TEST(FmIndex, FindCountLocateMatchNaiveScanRandomized)
{
    core::Xoshiro256StarStar rng(0xf1bd);
    size_t nonzero_hits = 0;
    for (int round = 0; round < 60; ++round) {
        std::vector<std::string> texts;
        const size_t path_count = 1 + rng.below(4);
        for (size_t p = 0; p < path_count; ++p)
            texts.push_back(
                randomText(rng, 30 + rng.below(300), 0.01));
        const graph::PanGraph graph = pathGraph(texts);
        const auto sample_rate =
            static_cast<uint32_t>(1 + rng.below(16));
        const FmIndex fm(graph, sample_rate);

        for (int q = 0; q < 12; ++q) {
            const std::string pattern =
                relatedQuery(rng, texts, 1 + rng.below(24));
            const auto expected = naiveOccurrences(texts, pattern);
            ASSERT_EQ(fm.count(codesOf(pattern)), expected.size())
                << "pattern " << pattern;
            ASSERT_EQ(fmOccurrences(fm, pattern), expected)
                << "pattern " << pattern;
            nonzero_hits += expected.empty() ? 0 : 1;
        }
    }
    // The generator must actually exercise the hit paths.
    EXPECT_GT(nonzero_hits, 200u);
}

TEST(FmIndex, SampleRateDoesNotChangeAnyAnswer)
{
    core::Xoshiro256StarStar rng(0x5a3e);
    const std::vector<std::string> texts = {
        randomText(rng, 400, 0.01), randomText(rng, 150)};
    const graph::PanGraph graph = pathGraph(texts);
    const FmIndex dense(graph, 1);
    for (const uint32_t rate : {2u, 7u, 64u, 1000u}) {
        const FmIndex sparse(graph, rate);
        for (int q = 0; q < 40; ++q) {
            const std::string pattern =
                relatedQuery(rng, texts, 3 + rng.below(20));
            EXPECT_EQ(fmOccurrences(dense, pattern),
                      fmOccurrences(sparse, pattern))
                << "rate " << rate << " pattern " << pattern;
        }
    }
}

TEST(FmIndex, PatternsNeverMatchAcrossPathBoundaries)
{
    // "ACGT" exists only as the junction of the two paths; the
    // sentinel between them must keep it unfindable.
    const graph::PanGraph graph = pathGraph({"GGGAC", "GTCCC"});
    const FmIndex fm(graph, 1);
    EXPECT_EQ(fm.count(codesOf("ACGT")), 0u);
    EXPECT_EQ(fm.count(codesOf("CG")), 0u);
    EXPECT_EQ(fm.count(codesOf("GGGAC")), 1u);
    EXPECT_EQ(fm.count(codesOf("GTCCC")), 1u);
    EXPECT_EQ(fm.count(codesOf("C")), 4u);
}

TEST(FmIndex, EmptyAndImpossiblePatterns)
{
    const graph::PanGraph graph = pathGraph({"ACACAC"});
    const FmIndex fm(graph, 4);
    // The empty pattern matches every suffix (the full range).
    EXPECT_EQ(fm.find({}).size(), fm.textLength());
    EXPECT_EQ(fm.count(codesOf("G")), 0u);
    EXPECT_EQ(fm.count(codesOf("ACACACA")), 0u);
    EXPECT_EQ(fm.count(codesOf("N")), 0u);
    EXPECT_EQ(fm.count(codesOf("ACAC")), 2u);
}

TEST(FmIndex, NMatchesOnlyN)
{
    const graph::PanGraph graph = pathGraph({"ANAC", "NNAC"});
    const FmIndex fm(graph, 1);
    EXPECT_EQ(fm.count(codesOf("N")), 3u);
    EXPECT_EQ(fm.count(codesOf("NN")), 1u);
    EXPECT_EQ(fm.count(codesOf("NA")), 2u);
    EXPECT_EQ(fm.count(codesOf("AC")), 2u);
    const auto expected = naiveOccurrences({"ANAC", "NNAC"}, "NAC");
    EXPECT_EQ(fmOccurrences(fm, "NAC"), expected);
}

// ---------------------------------------------------------------------
// SMEM enumeration vs the brute-force oracle
// ---------------------------------------------------------------------

/** Run one differential SMEM case; returns the SMEM count. */
size_t
checkMems(const std::vector<std::string> &texts,
          const std::string &query, uint32_t min_length,
          uint32_t sample_rate)
{
    const graph::PanGraph graph = pathGraph(texts);
    const FmIndex fm(graph, sample_rate);
    const auto expected = oracleMems(texts, query, min_length);
    const auto got = fmMems(fm, query, min_length);
    EXPECT_EQ(got, expected)
        << "query " << query << " min_length " << min_length
        << " sample_rate " << sample_rate;
    return expected.size();
}

TEST(FmIndex, SmemsMatchBruteForceRandomized)
{
    // >= 1000 randomized differential cases across text shapes,
    // query lengths, minimum lengths, and sampling rates.
    core::Xoshiro256StarStar rng(0x53e3);
    size_t cases = 0, nonempty = 0;
    for (int round = 0; round < 120; ++round) {
        std::vector<std::string> texts;
        const size_t path_count = 1 + rng.below(3);
        for (size_t p = 0; p < path_count; ++p)
            texts.push_back(
                randomText(rng, 20 + rng.below(250), 0.01));
        const auto sample_rate =
            static_cast<uint32_t>(1 + rng.below(12));
        for (const uint32_t min_length : {1u, 5u, 12u}) {
            for (int q = 0; q < 3; ++q) {
                const std::string query =
                    relatedQuery(rng, texts, 4 + rng.below(56));
                nonempty +=
                    checkMems(texts, query, min_length, sample_rate)
                        ? 1
                        : 0;
                ++cases;
            }
        }
    }
    EXPECT_GE(cases, 1000u);
    EXPECT_GT(nonempty, cases / 3);
}

TEST(FmIndex, SmemsOnTandemRepeats)
{
    std::string acgt, acg;
    for (int i = 0; i < 30; ++i)
        acgt += "ACGT";
    for (int i = 0; i < 40; ++i)
        acg += "ACG";
    const std::vector<std::string> texts = {acgt, acg + "T" + acg};
    core::Xoshiro256StarStar rng(0x7e9e);
    for (const uint32_t min_length : {1u, 8u, 15u}) {
        checkMems(texts, "ACGTACGTACGT", min_length, 4);
        checkMems(texts, "ACGACGACGACGACG", min_length, 4);
        checkMems(texts, "CGTACGACGT", min_length, 4);
        for (int q = 0; q < 20; ++q)
            checkMems(texts, relatedQuery(rng, texts, 6 + rng.below(40)),
                      min_length, 1 + rng.below(8));
    }
}

TEST(FmIndex, SmemsOnHomopolymers)
{
    const std::vector<std::string> texts = {
        std::string(120, 'A'), std::string(60, 'A') + "C" +
                                   std::string(30, 'A')};
    for (const uint32_t min_length : {1u, 10u}) {
        checkMems(texts, std::string(40, 'A'), min_length, 3);
        checkMems(texts, std::string(20, 'A') + "C" +
                             std::string(10, 'A'),
                  min_length, 3);
        checkMems(texts, "AACAA", min_length, 1);
        checkMems(texts, "G", min_length, 1);
    }
}

TEST(FmIndex, SmemsOnAllN)
{
    const std::vector<std::string> texts = {std::string(50, 'N'),
                                            "ACGTNNACGT"};
    checkMems(texts, std::string(12, 'N'), 1, 2);
    checkMems(texts, std::string(12, 'N'), 5, 2);
    checkMems(texts, "TNNA", 2, 2);
    checkMems(texts, "ACGTNNACGT", 4, 2);
}

TEST(FmIndex, SmemOccurrenceRangesLocateExactly)
{
    // Every SMEM's SA range must locate to exactly the positions the
    // naive scan finds for that substring.
    core::Xoshiro256StarStar rng(0x10ca7e);
    const std::vector<std::string> texts = {randomText(rng, 300),
                                            randomText(rng, 120)};
    const graph::PanGraph graph = pathGraph(texts);
    const FmIndex fm(graph, 5);
    for (int q = 0; q < 50; ++q) {
        const std::string query =
            relatedQuery(rng, texts, 10 + rng.below(40));
        std::vector<FmIndex::Mem> mems;
        fm.collectMems(codesOf(query), 5, mems);
        for (const auto &mem : mems) {
            const std::string sub = query.substr(
                mem.queryBegin, mem.queryEnd - mem.queryBegin);
            std::vector<std::pair<uint32_t, uint64_t>> located;
            for (uint64_t r = mem.range.lo; r < mem.range.hi; ++r) {
                const auto pos = fm.resolve(fm.locate(r));
                located.emplace_back(pos.path, pos.offset);
            }
            std::sort(located.begin(), located.end());
            EXPECT_EQ(located, naiveOccurrences(texts, sub))
                << "query " << query << " smem " << sub;
        }
    }
}

// ---------------------------------------------------------------------
// Construction edge cases
// ---------------------------------------------------------------------

TEST(FmIndex, GraphWithoutPathsIsFatal)
{
    graph::PanGraph graph;
    graph.addNode(seq::Sequence("", "ACGT"));
    EXPECT_THROW(FmIndex(graph, 4), core::FatalError);
}

TEST(FmIndex, SampleRateZeroIsClampedToOne)
{
    const graph::PanGraph graph = pathGraph({"ACGTACGT"});
    const FmIndex fm(graph, 0);
    EXPECT_EQ(fm.sampleRate(), 1u);
    EXPECT_EQ(fmOccurrences(fm, "CGT"),
              naiveOccurrences({"ACGTACGT"}, "CGT"));
}

TEST(FmIndex, MultiNodePathsSpellTheSameText)
{
    // The same haplotype spelled through a 3-node chain (with one
    // reversed step) must index identically to the single-node form.
    const std::string spelled = "ACCGTTGAAC";
    graph::PanGraph chain;
    const auto a = chain.addNode(seq::Sequence("", "ACCG"));
    // "TTGA" spelled via the reverse orientation of its complement.
    const auto b = chain.addNode(seq::Sequence("", "TCAA"));
    const auto c = chain.addNode(seq::Sequence("", "AC"));
    chain.addEdge(graph::Handle(a, false), graph::Handle(b, true));
    chain.addEdge(graph::Handle(b, true), graph::Handle(c, false));
    chain.addPath("h", {graph::Handle(a, false),
                        graph::Handle(b, true),
                        graph::Handle(c, false)});
    ASSERT_EQ(chain.pathSequence(0).toString(), spelled);

    const FmIndex split(chain, 3);
    const FmIndex flat(pathGraph({spelled}), 3);
    core::Xoshiro256StarStar rng(0xc4a1);
    for (int q = 0; q < 30; ++q) {
        const std::string pattern =
            relatedQuery(rng, {spelled}, 1 + rng.below(10));
        EXPECT_EQ(fmOccurrences(split, pattern),
                  fmOccurrences(flat, pattern))
            << pattern;
    }
}

} // namespace
