/**
 * @file
 * Tests for the characterization substrate: cache simulator (LRU,
 * exclusive MPKI), gshare branch simulator, trace probe plumbing, and
 * the top-down model's bucket attribution.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/rng.hpp"
#include "prof/branch_sim.hpp"
#include "prof/cache_sim.hpp"
#include "prof/topdown.hpp"
#include "prof/trace_probe.hpp"

namespace pgb::prof {
namespace {

using core::Rng;

// ---------------------------------------------------------- CacheSim

TEST(CacheSim, RepeatedLineHitsAfterFirstMiss)
{
    auto cache = CacheSim::machineB();
    for (int i = 0; i < 100; ++i)
        cache.access(0x1000, 4);
    EXPECT_EQ(cache.stats(0).accesses, 100u);
    EXPECT_EQ(cache.stats(0).misses, 1u);
}

/** Machine-B geometry without the stream prefetcher (exact counts). */
CacheSim
machineBNoPrefetch()
{
    return CacheSim({
        {"L1", 48 * 1024, 12, 64, false},
        {"L2", 1280 * 1024, 20, 64, false},
        {"L3", 24ull * 1024 * 1024, 12, 64, false},
    });
}

TEST(CacheSim, SequentialStreamMissesOncePerLine)
{
    auto cache = machineBNoPrefetch();
    for (uint64_t addr = 0; addr < 64 * 100; addr += 4)
        cache.access(addr, 4);
    EXPECT_EQ(cache.stats(0).misses, 100u);
}

TEST(CacheSim, NextLinePrefetchHalvesSequentialMisses)
{
    auto cache = CacheSim::machineB();
    for (uint64_t addr = 0; addr < 64 * 100; addr += 4)
        cache.access(addr, 4);
    EXPECT_EQ(cache.stats(0).misses, 50u);
}

TEST(CacheSim, PrefetchDoesNotHelpRandomAccess)
{
    auto with = CacheSim::machineB();
    auto without = machineBNoPrefetch();
    core::Rng rng(115);
    for (int i = 0; i < 50000; ++i) {
        const uint64_t addr = rng.below(1ull << 33);
        with.access(addr, 8);
        without.access(addr, 8);
    }
    // Prefetch cannot predict random lines; it only catches the
    // second line of straddling accesses (~11% of 8 B accesses).
    EXPECT_LE(with.stats(0).misses, without.stats(0).misses);
    EXPECT_GE(static_cast<double>(with.stats(0).misses),
              static_cast<double>(without.stats(0).misses) * 0.85);
}

TEST(CacheSim, LruEvictsOldest)
{
    // Tiny 2-way cache: lines A, B fill a set; touching C evicts A.
    CacheSim cache({{"L1", 2 * 64, 2, 64}});
    const uint64_t a = 0, b = 1 * 64, c = 2 * 64;
    cache.access(a, 1); // miss
    cache.access(b, 1); // miss
    cache.access(c, 1); // miss, evicts a
    cache.access(b, 1); // hit
    cache.access(a, 1); // miss again
    EXPECT_EQ(cache.stats(0).misses, 4u);
    EXPECT_EQ(cache.stats(0).accesses, 5u);
}

TEST(CacheSim, StraddlingAccessTouchesTwoLines)
{
    auto cache = machineBNoPrefetch();
    cache.access(60, 8); // crosses the 64 B boundary
    EXPECT_EQ(cache.stats(0).accesses, 2u);
    EXPECT_EQ(cache.stats(0).misses, 2u);
}

TEST(CacheSim, WorkingSetLargerThanL1FitsInL2)
{
    auto cache = machineBNoPrefetch();
    // 256 KB working set: misses L1 on re-walk, hits L2.
    const uint64_t span = 256 * 1024;
    for (int pass = 0; pass < 4; ++pass) {
        for (uint64_t addr = 0; addr < span; addr += 64)
            cache.access(addr, 4);
    }
    const auto &l1 = cache.stats(0);
    const auto &l2 = cache.stats(1);
    EXPECT_GT(l1.missRate(), 0.9);
    // After the cold pass, L2 serves nearly everything.
    EXPECT_LT(l2.missRate(), 0.3);
}

TEST(CacheSim, ExclusiveMpkiSeparatesLevels)
{
    auto cache = CacheSim::machineB();
    // 8 MB working set: misses L1 and L2 on every pass, but fits in
    // the 24 MB L3, so after the cold pass the L3 serves everything.
    const uint64_t span = 8ull * 1024 * 1024;
    for (int pass = 0; pass < 4; ++pass) {
        for (uint64_t addr = 0; addr < span; addr += 64)
            cache.access(addr, 4);
    }
    const uint64_t instructions = 1000000;
    const double l2 = cache.exclusiveMpki(1, instructions);
    const double l3 = cache.exclusiveMpki(2, instructions);
    EXPECT_GT(l2, l3 * 2); // re-walk misses are served by L3
    EXPECT_GT(l3, 0.0);    // the cold pass reached memory
}

TEST(CacheSim, RandomHugeFootprintMissesEverywhere)
{
    auto cache = CacheSim::machineB();
    Rng rng(110);
    for (int i = 0; i < 200000; ++i)
        cache.access(rng.below(1ull << 32), 8);
    // Far beyond L3 capacity: high miss rate at every level.
    EXPECT_GT(cache.stats(2).missRate(), 0.8);
}

TEST(CacheSim, ResetClearsState)
{
    auto cache = CacheSim::machineB();
    cache.access(0x1000, 4);
    cache.reset();
    EXPECT_EQ(cache.stats(0).accesses, 0u);
    cache.access(0x1000, 4);
    EXPECT_EQ(cache.stats(0).misses, 1u);
}

// --------------------------------------------------------- BranchSim

TEST(BranchSim, AlwaysTakenIsLearned)
{
    BranchSim sim;
    for (int i = 0; i < 1000; ++i)
        sim.record(1, true);
    // Cold counters along the history warm-up mispredict a few times.
    EXPECT_LT(sim.mispredictRate(), 0.02);
}

TEST(BranchSim, AlternatingPatternIsLearnedViaHistory)
{
    BranchSim sim;
    for (int i = 0; i < 4000; ++i)
        sim.record(7, i % 2 == 0);
    // Gshare captures period-2 patterns through global history.
    EXPECT_LT(sim.mispredictRate(), 0.1);
}

TEST(BranchSim, RandomBranchesMispredictHalfTheTime)
{
    BranchSim sim;
    Rng rng(111);
    for (int i = 0; i < 20000; ++i)
        sim.record(3, rng.chance(0.5));
    EXPECT_NEAR(sim.mispredictRate(), 0.5, 0.05);
}

TEST(BranchSim, CountsBranches)
{
    BranchSim sim;
    sim.record(1, true);
    sim.record(2, false);
    EXPECT_EQ(sim.branches(), 2u);
}

// -------------------------------------------------------- TraceProbe

TEST(TraceProbe, FeedsCacheAndBranchSims)
{
    auto cache = CacheSim::machineB();
    BranchSim branches;
    TraceProbe probe(cache, branches);
    std::vector<uint8_t> buffer(1024);
    for (size_t i = 0; i < buffer.size(); i += 8)
        probe.load(buffer.data() + i, 8);
    probe.store(buffer.data(), 8);
    probe.branch(1, true);
    EXPECT_EQ(probe.loadOps, 128u);
    EXPECT_EQ(probe.storeOps, 1u);
    EXPECT_EQ(cache.stats(0).accesses, 129u);
    EXPECT_EQ(branches.branches(), 1u);
}

// ----------------------------------------------------------- TopDown

core::CountingProbe
mixProbe(uint64_t vec, uint64_t ctl, uint64_t mem, uint64_t scalar)
{
    core::CountingProbe probe;
    probe.op(core::OpKind::kVector, vec);
    probe.op(core::OpKind::kControl, ctl);
    probe.op(core::OpKind::kMemory, mem);
    probe.op(core::OpKind::kScalar, scalar);
    return probe;
}

TEST(TopDown, BucketsSumToOne)
{
    auto cache = CacheSim::machineB();
    BranchSim branches;
    Rng rng(112);
    for (int i = 0; i < 10000; ++i) {
        cache.access(rng.below(1 << 26), 8);
        branches.record(1, rng.chance(0.3));
    }
    const auto probe = mixProbe(1000, 5000, 10000, 20000);
    const auto result = analyzeTopDown(probe, cache, branches);
    const double sum = result.retiring + result.frontEndBound +
                       result.badSpeculation + result.coreBound +
                       result.memoryBound;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_GT(result.ipc, 0.0);
    EXPECT_LE(result.ipc, 4.0);
}

TEST(TopDown, CacheHeavyWorkloadIsMemoryBound)
{
    auto cache = CacheSim::machineB();
    BranchSim branches;
    Rng rng(113);
    // Every access is a random far miss.
    for (int i = 0; i < 50000; ++i)
        cache.access(rng.below(1ull << 34), 8);
    core::CountingProbe probe = mixProbe(0, 0, 50000, 10000);
    const auto result = analyzeTopDown(probe, cache, branches);
    EXPECT_GT(result.memoryBound, result.coreBound);
    EXPECT_GT(result.memoryBound, result.badSpeculation);
    EXPECT_GT(result.memoryBound, 0.4);
    EXPECT_LT(result.ipc, 1.5);
}

TEST(TopDown, CleanScalarStreamRetires)
{
    auto cache = CacheSim::machineB();
    BranchSim branches;
    // Sequential accesses: warm, near-zero misses.
    for (uint64_t i = 0; i < 4096; ++i)
        cache.access(i * 8 % 4096, 8);
    core::CountingProbe probe = mixProbe(0, 1000, 4096, 40000);
    for (int i = 0; i < 1000; ++i)
        branches.record(2, true);
    const auto result = analyzeTopDown(probe, cache, branches);
    EXPECT_GT(result.retiring, 0.5);
    EXPECT_GT(result.ipc, 2.0);
}

TEST(TopDown, BranchRandomnessDrivesBadSpeculation)
{
    auto cache = CacheSim::machineB();
    BranchSim predictable, random;
    Rng rng(114);
    for (int i = 0; i < 20000; ++i) {
        predictable.record(1, true);
        random.record(1, rng.chance(0.5));
    }
    const auto probe = mixProbe(0, 20000, 0, 20000);
    const auto good = analyzeTopDown(probe, cache, predictable);
    const auto bad = analyzeTopDown(probe, cache, random);
    EXPECT_GT(bad.badSpeculation, good.badSpeculation + 0.1);
    EXPECT_LT(bad.ipc, good.ipc);
}

TEST(TopDown, PortPressureIsCoreBound)
{
    auto cache = CacheSim::machineB();
    BranchSim branches;
    // All-vector stream saturates the 2-wide vector ports.
    const auto probe = mixProbe(40000, 0, 0, 0);
    const auto result = analyzeTopDown(probe, cache, branches);
    EXPECT_GT(result.coreBound, 0.2);
    EXPECT_LT(result.ipc, 2.5);
}

TEST(TopDown, EmptyProbeIsAllZero)
{
    auto cache = CacheSim::machineB();
    BranchSim branches;
    core::CountingProbe probe;
    const auto result = analyzeTopDown(probe, cache, branches);
    EXPECT_EQ(result.ipc, 0.0);
    EXPECT_EQ(result.retiring, 0.0);
}

} // namespace
} // namespace pgb::prof
