/**
 * @file
 * Tests for the GPU kernels on the SIMT simulator: TSU functional
 * equivalence with CPU WFA, its divergence behaviour across read
 * lengths (the Figure 9 mechanism), and PGSGD-GPU convergence plus
 * the block-size study's direction.
 */

#include <gtest/gtest.h>

#include "align/wfa.hpp"
#include "core/rng.hpp"
#include "gpu/pgsgd_gpu.hpp"
#include "gpu/tsu.hpp"
#include "seq/sequence.hpp"
#include "synth/pangenome_sim.hpp"

namespace pgb::gpu {
namespace {

using align::WfaPenalties;
using core::Rng;
using seq::Sequence;

std::vector<uint8_t>
randomBases(Rng &rng, size_t length)
{
    std::vector<uint8_t> bases;
    for (size_t i = 0; i < length; ++i)
        bases.push_back(static_cast<uint8_t>(rng.below(4)));
    return bases;
}

std::vector<uint8_t>
mutate(Rng &rng, const std::vector<uint8_t> &donor, double rate)
{
    std::vector<uint8_t> out;
    for (uint8_t base : donor) {
        if (rng.chance(rate / 3))
            continue;
        if (rng.chance(rate / 3))
            out.push_back(static_cast<uint8_t>(rng.below(4)));
        if (rng.chance(rate)) {
            out.push_back(
                static_cast<uint8_t>((base + 1 + rng.below(3)) % 4));
        } else {
            out.push_back(base);
        }
    }
    if (out.empty())
        out.push_back(0);
    return out;
}

std::vector<TsuPair>
makePairs(Rng &rng, size_t count, size_t length, double error)
{
    std::vector<TsuPair> pairs;
    for (size_t i = 0; i < count; ++i) {
        const auto a = randomBases(rng, length);
        const auto b = mutate(rng, a, error);
        pairs.push_back({Sequence{std::vector<uint8_t>(a)},
                         Sequence{std::vector<uint8_t>(b)}});
    }
    return pairs;
}

// --------------------------------------------------------------- TSU

TEST(Tsu, ScoresMatchCpuWfa)
{
    Rng rng(100);
    const auto pairs = makePairs(rng, 8, 300, 0.03);
    const WfaPenalties penalties;
    const auto result = tsuRun(gpusim::DeviceSpec::rtxA6000(), pairs,
                               penalties);
    ASSERT_EQ(result.scores.size(), pairs.size());
    for (size_t i = 0; i < pairs.size(); ++i) {
        const auto cpu = align::wfaAlign(pairs[i].pattern.codes(),
                                         pairs[i].text.codes(),
                                         penalties);
        ASSERT_TRUE(cpu.reached);
        EXPECT_EQ(result.scores[i], cpu.score) << "pair " << i;
    }
}

TEST(Tsu, SerialExtendAblationGivesSameScores)
{
    Rng rng(101);
    const auto pairs = makePairs(rng, 5, 200, 0.05);
    const WfaPenalties penalties;
    const auto spec = tsuRun(gpusim::DeviceSpec::rtxA6000(), pairs,
                             penalties, true);
    const auto serial = tsuRun(gpusim::DeviceSpec::rtxA6000(), pairs,
                               penalties, false);
    EXPECT_EQ(spec.scores, serial.scores);
    // Speculation uses more lanes per extend round: better
    // utilization than the one-lane-serial ablation.
    EXPECT_GT(spec.stats.warpUtilization,
              serial.stats.warpUtilization);
}

TEST(Tsu, OccupancyMatchesPaperTable7Shape)
{
    Rng rng(102);
    const auto pairs = makePairs(rng, 4, 200, 0.02);
    const auto result = tsuRun(gpusim::DeviceSpec::rtxA6000(), pairs,
                               WfaPenalties{});
    // 32-thread blocks: theoretical occupancy exactly 1/3 (paper:
    // 32.97% achieved).
    EXPECT_NEAR(result.stats.occupancy.theoretical, 1.0 / 3.0, 1e-9);
    EXPECT_LE(result.stats.achievedOccupancy, 1.0 / 3.0 + 1e-9);
    EXPECT_GT(result.stats.warpUtilization, 0.0);
    EXPECT_LT(result.stats.warpUtilization, 1.0);
}

TEST(Tsu, LongReadsDivergeMoreThanShortReads)
{
    // The Figure 9 mechanism: with the same error rate, long reads
    // leave most Extend rounds nearly single-lane.
    Rng rng(103);
    const auto short_pairs = makePairs(rng, 6, 128, 0.01);
    const auto long_pairs = makePairs(rng, 2, 4000, 0.01);
    const auto short_run = tsuRun(gpusim::DeviceSpec::rtxA6000(),
                                  short_pairs, WfaPenalties{});
    const auto long_run = tsuRun(gpusim::DeviceSpec::rtxA6000(),
                                 long_pairs, WfaPenalties{});
    EXPECT_GT(long_run.singleLaneExtendFraction,
              short_run.singleLaneExtendFraction);
}

TEST(Tsu, IdenticalPairExtendsInOnePass)
{
    Rng rng(104);
    const auto bases = randomBases(rng, 500);
    std::vector<TsuPair> pairs;
    pairs.push_back({Sequence{std::vector<uint8_t>(bases)},
                     Sequence{std::vector<uint8_t>(bases)}});
    const auto result = tsuRun(gpusim::DeviceSpec::rtxA6000(), pairs,
                               WfaPenalties{});
    EXPECT_EQ(result.scores[0], 0);
}

// --------------------------------------------------------- PGSGD-GPU

TEST(PgsgdGpu, StressDropsOnSimulatedGpu)
{
    const auto pangenome =
        synth::simulatePangenome(synth::mGraphLikeConfig(15000, 105));
    const layout::PathIndex index(pangenome.graph);
    layout::Layout layout(pangenome.graph.nodeCount(), 1);
    PgsgdGpuParams params;
    params.sgd.iterations = 10;
    params.gridBlocks = 4; // keep the simulated launch small
    const auto result = pgsgdGpuRun(gpusim::DeviceSpec::rtxA6000(),
                                    index, layout, params);
    EXPECT_GT(result.layout.updates, 0u);
    EXPECT_LT(result.layout.stressAfter,
              result.layout.stressBefore * 0.3);
}

TEST(PgsgdGpu, RandomAccessesAreUncoalesced)
{
    const auto pangenome =
        synth::simulatePangenome(synth::mGraphLikeConfig(15000, 106));
    const layout::PathIndex index(pangenome.graph);
    layout::Layout layout(pangenome.graph.nodeCount(), 2);
    PgsgdGpuParams params;
    params.sgd.iterations = 2;
    params.gridBlocks = 2;
    const auto result = pgsgdGpuRun(gpusim::DeviceSpec::rtxA6000(),
                                    index, layout, params);
    // Transactions far exceed what coalesced access would need: with
    // 32 random lanes per access, most lanes pay their own segment.
    EXPECT_GT(result.stats.transactions,
              result.stats.instructions / 4);
}

TEST(PgsgdGpu, BlockSizeStudyDirectionMatchesPaper)
{
    // Paper §5.3: 1024 -> 256 threads/block raises theoretical
    // occupancy 66.7% -> 83.3% and improves hit rates slightly.
    const auto pangenome =
        synth::simulatePangenome(synth::mGraphLikeConfig(15000, 107));
    const layout::PathIndex index(pangenome.graph);

    // Fill the device (one wave at full residency) so the latency-
    // hiding difference dominates address-mapping noise.
    layout::Layout layout_a(pangenome.graph.nodeCount(), 3);
    PgsgdGpuParams big;
    big.sgd.iterations = 2;
    big.blockThreads = 1024;
    big.gridBlocks = 84;
    const auto run_big = pgsgdGpuRun(gpusim::DeviceSpec::rtxA6000(),
                                     index, layout_a, big);

    layout::Layout layout_b(pangenome.graph.nodeCount(), 3);
    PgsgdGpuParams small = big;
    small.blockThreads = 256;
    small.gridBlocks = 84 * 4; // same total threads
    const auto run_small = pgsgdGpuRun(gpusim::DeviceSpec::rtxA6000(),
                                       index, layout_b, small);

    EXPECT_NEAR(run_big.stats.occupancy.theoretical, 2.0 / 3.0, 1e-9);
    EXPECT_NEAR(run_small.stats.occupancy.theoretical, 5.0 / 6.0,
                1e-9);
    // Higher occupancy hides more memory latency: the 256-thread
    // launch is faster (paper: 1.1x end-to-end speedup).
    EXPECT_LT(run_small.stats.simSeconds, run_big.stats.simSeconds);
}

} // namespace
} // namespace pgb::gpu
