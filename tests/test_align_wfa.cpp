/**
 * @file
 * Tests for the wavefront kernels: WFA (vs Gotoh reference) and GWFA
 * (vs full graph DP), including cyclic graphs and the cells-computed
 * advantage the paper reports for GWFA.
 */

#include <gtest/gtest.h>

#include "align/gwfa.hpp"
#include "align/wfa.hpp"
#include "core/rng.hpp"
#include "graph/local_graph.hpp"
#include "seq/sequence.hpp"

namespace pgb::align {
namespace {

using core::Rng;
using graph::LocalGraph;

std::vector<uint8_t>
randomBases(Rng &rng, size_t length)
{
    std::vector<uint8_t> bases;
    for (size_t i = 0; i < length; ++i)
        bases.push_back(static_cast<uint8_t>(rng.below(4)));
    return bases;
}

std::vector<uint8_t>
mutate(Rng &rng, std::vector<uint8_t> bases, double rate)
{
    std::vector<uint8_t> out;
    for (uint8_t base : bases) {
        if (rng.chance(rate / 3))
            continue;
        if (rng.chance(rate / 3))
            out.push_back(static_cast<uint8_t>(rng.below(4)));
        if (rng.chance(rate)) {
            out.push_back(
                static_cast<uint8_t>((base + 1 + rng.below(3)) % 4));
        } else {
            out.push_back(base);
        }
    }
    if (out.empty())
        out.push_back(0);
    return out;
}

// -------------------------------------------------------------- WFA

TEST(Wfa, IdenticalSequencesScoreZero)
{
    const auto s = seq::encodeString("ACGTACGTACGT");
    const auto result = wfaAlign(s, s, WfaPenalties{});
    EXPECT_TRUE(result.reached);
    EXPECT_EQ(result.score, 0);
}

TEST(Wfa, SingleMismatchCostsX)
{
    const auto a = seq::encodeString("ACGTACGT");
    const auto b = seq::encodeString("ACGAACGT");
    WfaPenalties penalties;
    const auto result = wfaAlign(a, b, penalties);
    EXPECT_EQ(result.score, penalties.mismatch);
}

TEST(Wfa, GapCostIsAffine)
{
    const auto a = seq::encodeString("ACGTACGTACGT");
    const auto b = seq::encodeString("ACGTACGT"); // 4-base deletion
    WfaPenalties penalties;
    const auto result = wfaAlign(a, b, penalties);
    EXPECT_EQ(result.score,
              penalties.gapOpen + 4 * penalties.gapExtend);
}

TEST(Wfa, EmptyAgainstNonEmptyIsOneGap)
{
    const std::vector<uint8_t> empty;
    const auto b = seq::encodeString("ACGT");
    WfaPenalties penalties;
    const auto result = wfaAlign(empty, b, penalties);
    EXPECT_EQ(result.score,
              penalties.gapOpen + 4 * penalties.gapExtend);
    const auto flipped = wfaAlign(b, empty, penalties);
    EXPECT_EQ(flipped.score, result.score);
}

TEST(Wfa, MaxScoreGivesUpCleanly)
{
    Rng rng(50);
    const auto a = randomBases(rng, 100);
    const auto b = randomBases(rng, 100);
    const auto result = wfaAlign(a, b, WfaPenalties{}, 3);
    EXPECT_FALSE(result.reached);
    EXPECT_EQ(result.score, -1);
}

struct WfaCase
{
    size_t lenA;
    size_t lenB;
    double errorRate; ///< <0: unrelated random sequences
};

class WfaEquivalence : public ::testing::TestWithParam<WfaCase>
{
};

TEST_P(WfaEquivalence, MatchesGotohReference)
{
    const WfaCase param = GetParam();
    Rng rng(param.lenA * 7919 + param.lenB);
    const WfaPenalties penalty_sets[] = {
        {4, 6, 2}, {1, 1, 1}, {2, 4, 1}, {5, 3, 3},
    };
    for (const WfaPenalties &penalties : penalty_sets) {
        for (int round = 0; round < 5; ++round) {
            const auto a = randomBases(rng, param.lenA);
            std::vector<uint8_t> b;
            if (param.errorRate < 0)
                b = randomBases(rng, param.lenB);
            else
                b = mutate(rng, a, param.errorRate);
            const auto wfa = wfaAlign(a, b, penalties);
            const int32_t reference =
                globalAffineScalar(a, b, penalties);
            ASSERT_TRUE(wfa.reached);
            ASSERT_EQ(wfa.score, reference)
                << "lenA=" << a.size() << " lenB=" << b.size()
                << " x=" << penalties.mismatch;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WfaEquivalence,
    ::testing::Values(WfaCase{1, 1, -1}, WfaCase{5, 9, -1},
                      WfaCase{30, 30, 0.05}, WfaCase{64, 64, 0.1},
                      WfaCase{100, 90, 0.05}, WfaCase{200, 200, 0.02},
                      WfaCase{40, 10, -1}, WfaCase{128, 128, 0.3}));

TEST(Wfa, ExtendStepsBoundedByMatches)
{
    const auto a = seq::encodeString("ACGTACGTACGT");
    const auto result = wfaAlign(a, a, WfaPenalties{});
    EXPECT_EQ(result.extendSteps, a.size());
    EXPECT_EQ(result.cellsComputed, 0u); // no Next needed
}

// ------------------------------------------------------------- GWFA

/** Single-node graph: GWFA = plain semi-global edit distance. */
TEST(Gwfa, SingleNodeMatchesFullDp)
{
    Rng rng(60);
    for (int round = 0; round < 15; ++round) {
        LocalGraph g;
        g.addNode(randomBases(rng, 30 + rng.below(50)));
        g.finalize();
        const auto query = randomBases(rng, 5 + rng.below(40));
        const auto fast = gwfaAlign(g, query, 0);
        const auto slow = gwfaFullDp(g, query, 0);
        ASSERT_TRUE(fast.reached);
        ASSERT_EQ(fast.distance, slow.distance) << "round " << round;
    }
}

TEST(Gwfa, PerfectPathScoresZero)
{
    LocalGraph g;
    const uint32_t a = g.addNode("ACGT");
    const uint32_t b = g.addNode("TTT");
    const uint32_t c = g.addNode("GGG");
    g.addEdge(a, b);
    g.addEdge(a, c);
    g.finalize();
    const auto query = seq::encodeString("ACGTGGG");
    const auto result = gwfaAlign(g, query, a);
    EXPECT_TRUE(result.reached);
    EXPECT_EQ(result.distance, 0);
}

TEST(Gwfa, ChoosesCheaperBranch)
{
    LocalGraph g;
    const uint32_t a = g.addNode("AC");
    const uint32_t b = g.addNode("GGGG"); // matches query
    const uint32_t c = g.addNode("TTTT"); // 4 mismatches
    const uint32_t d = g.addNode("CA");
    g.addEdge(a, b);
    g.addEdge(a, c);
    g.addEdge(b, d);
    g.addEdge(c, d);
    g.finalize();
    const auto query = seq::encodeString("ACGGGGCA");
    const auto result = gwfaAlign(g, query, a);
    EXPECT_EQ(result.distance, 0);
}

TEST(Gwfa, MatchesFullDpOnRandomDags)
{
    Rng rng(61);
    for (int round = 0; round < 20; ++round) {
        LocalGraph g;
        const size_t n_nodes = 2 + rng.below(8);
        for (size_t v = 0; v < n_nodes; ++v)
            g.addNode(randomBases(rng, 1 + rng.below(12)));
        for (size_t v = 0; v + 1 < n_nodes; ++v) {
            g.addEdge(static_cast<uint32_t>(v),
                      static_cast<uint32_t>(v + 1));
            if (v + 2 < n_nodes && rng.chance(0.4)) {
                g.addEdge(static_cast<uint32_t>(v),
                          static_cast<uint32_t>(v + 2));
            }
        }
        g.finalize();
        const auto query = randomBases(rng, 3 + rng.below(25));
        const auto fast = gwfaAlign(g, query, 0);
        const auto slow = gwfaFullDp(g, query, 0);
        ASSERT_EQ(fast.distance, slow.distance) << "round " << round;
    }
}

TEST(Gwfa, HandlesCyclesAndTerminates)
{
    // Cycle A -> B -> A; query spells two loops.
    LocalGraph g;
    const uint32_t a = g.addNode("ACG");
    const uint32_t b = g.addNode("TT");
    g.addEdge(a, b);
    g.addEdge(b, a);
    g.finalize();
    const auto query = seq::encodeString("ACGTTACGTT");
    const auto fast = gwfaAlign(g, query, a);
    EXPECT_TRUE(fast.reached);
    EXPECT_EQ(fast.distance, 0);
    const auto slow = gwfaFullDp(g, query, a);
    EXPECT_EQ(slow.distance, 0);
}

TEST(Gwfa, CyclicRandomGraphsMatchFullDp)
{
    Rng rng(62);
    for (int round = 0; round < 10; ++round) {
        LocalGraph g;
        const size_t n_nodes = 3 + rng.below(5);
        for (size_t v = 0; v < n_nodes; ++v)
            g.addNode(randomBases(rng, 1 + rng.below(6)));
        for (size_t v = 0; v + 1 < n_nodes; ++v) {
            g.addEdge(static_cast<uint32_t>(v),
                      static_cast<uint32_t>(v + 1));
        }
        // One back edge makes it cyclic.
        g.addEdge(static_cast<uint32_t>(n_nodes - 1), 0);
        g.finalize();
        const auto query = randomBases(rng, 3 + rng.below(20));
        const auto fast = gwfaAlign(g, query, 0);
        const auto slow = gwfaFullDp(g, query, 0);
        ASSERT_EQ(fast.distance, slow.distance) << "round " << round;
    }
}

TEST(Gwfa, EmptyQueryIsZero)
{
    LocalGraph g;
    g.addNode("ACGT");
    g.finalize();
    const std::vector<uint8_t> empty;
    const auto result = gwfaAlign(g, empty, 0);
    EXPECT_EQ(result.distance, 0);
}

/**
 * The paper: GWFA is fast because it computes far fewer cells than
 * full DP. Verify the work accounting shows exactly that on a
 * low-divergence alignment.
 */
TEST(Gwfa, ComputesFarFewerCellsThanFullDp)
{
    Rng rng(63);
    const auto backbone = randomBases(rng, 400);
    LocalGraph g;
    uint32_t prev = UINT32_MAX;
    for (size_t i = 0; i < backbone.size(); i += 40) {
        const uint32_t node = g.addNode(std::vector<uint8_t>(
            backbone.begin() + i,
            backbone.begin() + std::min(i + 40, backbone.size())));
        if (prev != UINT32_MAX)
            g.addEdge(prev, node);
        prev = node;
    }
    g.finalize();
    const auto query = mutate(rng, backbone, 0.01);
    const auto fast = gwfaAlign(g, query, 0);
    const auto slow = gwfaFullDp(g, query, 0);
    ASSERT_EQ(fast.distance, slow.distance);
    EXPECT_LT(fast.cellsComputed * 10, slow.cellsComputed);
}

} // namespace
} // namespace pgb::align
