/**
 * @file
 * Broken-input corpus tests: every file in tests/corpus is parsed in
 * strict mode (asserting the exact line-numbered diagnostic) and in
 * lenient mode (asserting what is skipped and what survives).
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/fault.hpp"
#include "core/logging.hpp"
#include "core/parse.hpp"
#include "graph/gfa.hpp"
#include "seq/fasta.hpp"
#include "store/manifest.hpp"
#include "store/store.hpp"

#ifndef PGB_CORPUS_DIR
#error "PGB_CORPUS_DIR must point at tests/corpus"
#endif

namespace pgb {
namespace {

using core::FatalError;
using core::ParseOptions;
using core::ParseStats;

std::string
corpusPath(const std::string &name)
{
    return std::string(PGB_CORPUS_DIR) + "/" + name;
}

/** Slurp a corpus file so the stream readers see a fixed label. */
std::string
slurp(const std::string &name)
{
    std::ifstream input(corpusPath(name), std::ios::binary);
    EXPECT_TRUE(input.good()) << "missing corpus file " << name;
    std::ostringstream text;
    text << input.rdbuf();
    return text.str();
}

ParseOptions
lenient()
{
    ParseOptions options;
    options.lenient = true;
    return options;
}

/** Expect a strict-mode FatalError whose what() is exactly @p message. */
template <typename Parse>
void
expectStrictError(const Parse &parse, const std::string &message)
{
    try {
        parse();
        FAIL() << "expected FatalError: " << message;
    } catch (const FatalError &error) {
        EXPECT_STREQ(error.what(), message.c_str());
    }
}

// --------------------------------------------------------- FASTQ

TEST(ParseCorpus, TruncatedFastqStrict)
{
    std::istringstream input(slurp("truncated.fq"));
    expectStrictError(
        [&] { seq::readFastq(input); },
        "fatal: FASTQ: line 1: truncated record before quality line "
        "in '@r1'");
}

TEST(ParseCorpus, TruncatedFastqLenient)
{
    std::istringstream input(slurp("truncated.fq"));
    ParseStats stats;
    const auto records = seq::readFastq(input, lenient(), &stats);
    EXPECT_TRUE(records.empty());
    EXPECT_EQ(stats.skipped, 1u);
}

TEST(ParseCorpus, BadHeaderFastqStrict)
{
    std::istringstream input(slurp("bad_header.fq"));
    expectStrictError(
        [&] { seq::readFastq(input); },
        "fatal: FASTQ: line 1: expected '@' header, got "
        "'r1 no at-sign'");
}

TEST(ParseCorpus, BadHeaderFastqLenient)
{
    // Lenient resync skips line by line until the next '@' header;
    // this corpus has none, so every line is skipped.
    std::istringstream input(slurp("bad_header.fq"));
    ParseStats stats;
    const auto records = seq::readFastq(input, lenient(), &stats);
    EXPECT_TRUE(records.empty());
    EXPECT_EQ(stats.skipped, 4u);
}

TEST(ParseCorpus, QualityMismatchFastqStrict)
{
    std::istringstream input(slurp("qual_mismatch.fq"));
    expectStrictError(
        [&] { seq::readFastq(input); },
        "fatal: FASTQ: line 1: quality length 3 != sequence length 5 "
        "in record '@r1'");
}

TEST(ParseCorpus, QualityMismatchFastqLenient)
{
    std::istringstream input(slurp("qual_mismatch.fq"));
    ParseStats stats;
    const auto records = seq::readFastq(input, lenient(), &stats);
    EXPECT_TRUE(records.empty());
    EXPECT_EQ(stats.skipped, 1u);
}

// ----------------------------------------------------------- GFA

TEST(ParseCorpus, BadOrientationGfaStrict)
{
    std::istringstream input(slurp("bad_orientation.gfa"));
    expectStrictError([&] { graph::readGfa(input); },
                      "fatal: GFA: line 4: bad L orientation '?'");
}

TEST(ParseCorpus, BadOrientationGfaLenient)
{
    std::istringstream input(slurp("bad_orientation.gfa"));
    ParseStats stats;
    const auto graph = graph::readGfa(input, lenient(), &stats);
    EXPECT_EQ(graph.nodeCount(), 2u);
    EXPECT_EQ(graph.edgeCount(), 0u);
    EXPECT_EQ(stats.skipped, 1u);
}

TEST(ParseCorpus, DuplicateSegmentGfaStrict)
{
    std::istringstream input(slurp("dup_segment.gfa"));
    expectStrictError([&] { graph::readGfa(input); },
                      "fatal: GFA: line 2: duplicate segment '1'");
}

TEST(ParseCorpus, DuplicateSegmentGfaLenient)
{
    std::istringstream input(slurp("dup_segment.gfa"));
    ParseStats stats;
    const auto graph = graph::readGfa(input, lenient(), &stats);
    EXPECT_EQ(graph.nodeCount(), 1u);
    // The first definition wins; the duplicate is skipped.
    EXPECT_EQ(graph.nodeSequence(0).toString(), "ACGT");
    EXPECT_EQ(stats.skipped, 1u);
}

TEST(ParseCorpus, UnknownSegmentGfaStrict)
{
    std::istringstream input(slurp("unknown_segment.gfa"));
    expectStrictError(
        [&] { graph::readGfa(input); },
        "fatal: GFA: line 2: unknown segment '9' in L record");
}

TEST(ParseCorpus, UnknownSegmentGfaLenient)
{
    std::istringstream input(slurp("unknown_segment.gfa"));
    ParseStats stats;
    const auto graph = graph::readGfa(input, lenient(), &stats);
    EXPECT_EQ(graph.nodeCount(), 1u);
    EXPECT_EQ(graph.edgeCount(), 0u);
    EXPECT_EQ(stats.skipped, 1u);
}

TEST(ParseCorpus, CrlfGfaParsesCleanlyStrict)
{
    // Windows line endings are not an error in either mode.
    std::istringstream input(slurp("crlf.gfa"));
    ParseStats stats;
    const auto graph = graph::readGfa(input, {}, &stats);
    EXPECT_EQ(graph.nodeCount(), 2u);
    EXPECT_EQ(graph.edgeCount(), 1u);
    EXPECT_EQ(graph.pathCount(), 1u);
    EXPECT_EQ(graph.nodeSequence(0).toString(), "ACGT");
    EXPECT_EQ(stats.records, 4u);
    EXPECT_EQ(stats.skipped, 0u);
}

TEST(ParseCorpus, EmptyGfaStrict)
{
    std::istringstream input(slurp("empty.gfa"));
    expectStrictError([&] { graph::readGfa(input); },
                      "fatal: GFA: empty input (no segments)");
}

TEST(ParseCorpus, EmptyGfaLenient)
{
    std::istringstream input(slurp("empty.gfa"));
    const auto graph = graph::readGfa(input, lenient());
    EXPECT_EQ(graph.nodeCount(), 0u);
}

// --------------------------------------------------------- FASTA

TEST(ParseCorpus, BadBasesFastaStrict)
{
    std::istringstream input(slurp("bad_bases.fa"));
    expectStrictError(
        [&] { seq::readFasta(input); },
        "fatal: FASTA: line 2: non-ACGTN character 'X' in record 'a'");
}

TEST(ParseCorpus, BadBasesFastaLenient)
{
    std::istringstream input(slurp("bad_bases.fa"));
    ParseStats stats;
    const auto records = seq::readFasta(input, lenient(), &stats);
    EXPECT_TRUE(records.empty());
    EXPECT_EQ(stats.skipped, 1u);
}

TEST(ParseCorpus, DataBeforeHeaderFastaStrict)
{
    std::istringstream input(slurp("data_before_header.fa"));
    expectStrictError(
        [&] { seq::readFasta(input); },
        "fatal: FASTA: line 1: sequence data before first '>' header");
}

TEST(ParseCorpus, DataBeforeHeaderFastaLenient)
{
    std::istringstream input(slurp("data_before_header.fa"));
    ParseStats stats;
    const auto records = seq::readFasta(input, lenient(), &stats);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].name(), "a");
    EXPECT_EQ(records[0].toString(), "ACGT");
    EXPECT_EQ(stats.records, 1u);
    EXPECT_EQ(stats.skipped, 1u);
}

// ------------------------------------------------ file-path labels

TEST(ParseCorpus, FileReadersUseThePathAsTheLabel)
{
    const std::string path = corpusPath("dup_segment.gfa");
    expectStrictError(
        [&] { graph::readGfaFile(path); },
        "fatal: " + path + ": line 2: duplicate segment '1'");
}

TEST(ParseCorpus, MissingFileIsFatal)
{
    const std::string path = corpusPath("no_such_file.gfa");
    expectStrictError([&] { graph::readGfaFile(path); },
                      "fatal: GFA: cannot open '" + path + "'");
}

// ---------------------------------------------- FM-index sections

TEST(ParseCorpus, FmBadChecksumArtifactNamesTheSection)
{
    const std::string path = corpusPath("fm_bad_checksum.pgbi");
    expectStrictError(
        [&] { store::Artifact::load(path); },
        "fatal: " + path + ": section FBWT corrupt (checksum mismatch)");
}

TEST(ParseCorpus, FmTruncatedArtifactReportsBothSizes)
{
    // Checksums in this fixture are *valid* for the truncated payload;
    // only the FM cross-section validation can catch it.
    const std::string path = corpusPath("fm_truncated.pgbi");
    expectStrictError(
        [&] { store::Artifact::load(path); },
        "fatal: " + path +
            ": section FBWT holds 5989 bytes, expected 5990");
}

TEST(ParseCorpus, FmBadMetaArtifactReportsTheField)
{
    const std::string path = corpusPath("fm_bad_meta.pgbi");
    expectStrictError([&] { store::Artifact::load(path); },
                      "fatal: " + path + ": FMET sample rate is zero");
}

// ------------------------------------------------ .pgbs shard sets
//
// Shard manifests fail closed: any defect — bad trailer, bad version,
// inconsistent routing, missing shard file — is a FatalError with a
// pinned one-line diagnostic, never a partially-usable shard set.

TEST(ParseCorpus, ShardManifestMissingFileIsFatal)
{
    const std::string path = corpusPath("no_such.pgbs");
    expectStrictError([&] { store::ShardManifest::load(path); },
                      "fatal: " + path + ": cannot open manifest");
}

TEST(ParseCorpus, ShardManifestWithoutTrailerIsFatal)
{
    const std::string path = corpusPath("no_trailer.pgbs");
    expectStrictError(
        [&] { store::ShardManifest::load(path); },
        "fatal: " + path + ": manifest has no checksum trailer");
}

TEST(ParseCorpus, ShardManifestChecksumMismatchIsFatal)
{
    const std::string path = corpusPath("bad_checksum.pgbs");
    expectStrictError(
        [&] { store::ShardManifest::load(path); },
        "fatal: " + path + ": manifest corrupt (checksum mismatch)");
}

TEST(ParseCorpus, ShardManifestBadMagicIsFatal)
{
    const std::string path = corpusPath("not_pgbs.pgbs");
    expectStrictError([&] { store::ShardManifest::load(path); },
                      "fatal: " + path +
                          ": line 1: not a .pgbs manifest");
}

TEST(ParseCorpus, ShardManifestFutureVersionIsFatal)
{
    const std::string path = corpusPath("bad_version.pgbs");
    expectStrictError(
        [&] { store::ShardManifest::load(path); },
        "fatal: " + path +
            ": manifest version 2 unsupported (this build reads "
            "version 1)");
}

TEST(ParseCorpus, ShardManifestDuplicateComponentIsFatal)
{
    const std::string path = corpusPath("dup_component.pgbs");
    expectStrictError([&] { store::ShardManifest::load(path); },
                      "fatal: " + path +
                          ": line 6: duplicate component 0");
}

TEST(ParseCorpus, ShardManifestMissingShardFileIsFatal)
{
    // The manifest itself is well-formed; the shard file it routes to
    // does not exist, and load() refuses rather than deferring the
    // failure to the first read that touches the shard.
    const std::string path = corpusPath("missing_shard.pgbs");
    expectStrictError([&] { store::ShardManifest::load(path); },
                      "fatal: " + path + ": missing shard file '" +
                          corpusPath("no_such.shard0.pgbi") + "'");
}

TEST(ParseCorpus, ShardManifestLoadFaultSiteFailsClosed)
{
    // The store.manifest fault site models an unreadable manifest at
    // open time (ENOENT/EACCES races); armed, load() must fail before
    // trusting a single byte.
    const std::string path = corpusPath("missing_shard.pgbs");
    core::fault::arm("store.manifest", 1);
    expectStrictError([&] { store::ShardManifest::load(path); },
                      "fatal: " + path + ": cannot open: injected fault");
    core::fault::disarmAll();
}

} // namespace
} // namespace pgb
