/**
 * @file
 * Tests for the runtime observability layer (pgb::obs): counter
 * exactness under the work-stealing pool, span nesting and
 * reparenting, report schema, and the cost contract that lets the
 * instrumentation sit on hot paths permanently.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/fault.hpp"
#include "core/thread_pool.hpp"
#include "core/timer.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"

namespace {

using namespace pgb;

// Static storage: the registry holds these for the process lifetime.
obs::Counter testCounter("test.obs.counter");
obs::Gauge testGauge("test.obs.gauge");
obs::Counter overheadCounter("test.obs.overhead");
core::FaultSite testSite("test.obs.site");
obs::Histogram testHistogram("test.obs.histogram");
obs::Histogram poolHistogram("test.obs.pool_histogram");
obs::Histogram precisionHistogram("test.obs.histogram_precision");

class ObsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::enableTracing(false);
        obs::clearTrace();
    }

    void
    TearDown() override
    {
        obs::enableTracing(false);
        obs::clearTrace();
    }
};

TEST_F(ObsTest, CounterSnapshotIsExactUnderThePool)
{
    const uint64_t before = obs::snapshot().counter("test.obs.counter");
    constexpr size_t kItems = 20000;
    core::parallelFor(0, kItems, 8, [](size_t) { testCounter.add(); });
    // Shards sum exactly once the parallelFor barrier has passed: no
    // sampled/approximate counts, whatever the task interleaving was.
    const uint64_t after = obs::snapshot().counter("test.obs.counter");
    EXPECT_EQ(after - before, kItems);
}

TEST_F(ObsTest, CounterAddOfNCountsN)
{
    const uint64_t before = testCounter.value();
    testCounter.add(41);
    testCounter.add();
    EXPECT_EQ(testCounter.value() - before, 42u);
}

TEST_F(ObsTest, GaugeTracksLevelNotVolume)
{
    testGauge.set(0);
    testGauge.add(10);
    testGauge.sub(3);
    EXPECT_EQ(testGauge.value(), 7);
    EXPECT_EQ(obs::snapshot().gauge("test.obs.gauge"), 7);
    testGauge.set(0);
}

TEST_F(ObsTest, ProviderEntriesAppearInSnapshots)
{
    // The fault registry feeds per-site hit counts in via a provider;
    // firing a site must be visible in the next snapshot's counters.
    const auto before = obs::snapshot();
    core::fault::disarmAll();
    testSite.fire();
    const auto after = obs::snapshot();
    EXPECT_EQ(after.counter("fault.test.obs.site.hits"),
              before.counter("fault.test.obs.site.hits") + 1);
}

TEST_F(ObsTest, DisabledSpansRecordNothingAndAllocateNothing)
{
    ASSERT_FALSE(obs::tracingOn());
    const size_t before = obs::traceEventCount();
    for (int i = 0; i < 1000; ++i) {
        obs::Span span("test.disabled");
        testCounter.add(0);
    }
    EXPECT_EQ(obs::traceEventCount(), before);
}

TEST_F(ObsTest, SpansNestOnOneThread)
{
    obs::enableTracing(true);
    {
        obs::Span outer("test.outer");
        {
            obs::Span middle("test.middle");
            obs::Span inner("test.inner");
        }
        obs::Span sibling("test.sibling");
    }
    obs::enableTracing(false);

    const auto events = obs::traceEvents();
    std::map<std::string, obs::SpanEvent> by_name;
    std::map<std::string, int32_t> index_of;
    for (size_t i = 0; i < events.size(); ++i) {
        by_name[events[i].name] = events[i];
        index_of[events[i].name] = static_cast<int32_t>(i);
    }
    ASSERT_TRUE(by_name.count("test.outer"));
    ASSERT_TRUE(by_name.count("test.middle"));
    ASSERT_TRUE(by_name.count("test.inner"));
    ASSERT_TRUE(by_name.count("test.sibling"));

    EXPECT_EQ(by_name["test.outer"].parent, -1);
    EXPECT_EQ(by_name["test.outer"].depth, 0);
    EXPECT_EQ(by_name["test.middle"].parent, index_of["test.outer"]);
    EXPECT_EQ(by_name["test.middle"].depth, 1);
    EXPECT_EQ(by_name["test.inner"].parent, index_of["test.middle"]);
    EXPECT_EQ(by_name["test.inner"].depth, 2);
    EXPECT_EQ(by_name["test.sibling"].parent, index_of["test.outer"]);
    EXPECT_EQ(by_name["test.sibling"].depth, 1);

    // A parent's interval contains its child's.
    const auto &outer = by_name["test.outer"];
    const auto &inner = by_name["test.inner"];
    EXPECT_GE(inner.startNanos, outer.startNanos);
    EXPECT_LE(inner.startNanos + inner.durationNanos,
              outer.startNanos + outer.durationNanos);
}

TEST_F(ObsTest, StolenTasksReparentAsThreadRoots)
{
    // Per-task spans on pool workers must not inherit a parent from
    // the submitting thread's stack: each records on the executing
    // thread, so it is a root (depth 0) wherever it actually ran.
    obs::enableTracing(true);
    {
        obs::Span driver("test.driver");
        core::parallelFor(0, 64, 8, [](size_t) {
            obs::Span task("test.task");
        });
    }
    obs::enableTracing(false);

    const auto events = obs::traceEvents();
    size_t tasks = 0;
    for (const auto &event : events) {
        if (std::string(event.name) != "test.task")
            continue;
        ++tasks;
        if (event.thread != 0) {
            // On a worker thread: nothing below it on that stack.
            EXPECT_EQ(event.depth, 0) << "stolen task not a root";
            EXPECT_EQ(event.parent, -1);
        } else {
            // Inline on the driver: nests under the live driver span.
            EXPECT_EQ(event.depth, 1);
        }
    }
    EXPECT_EQ(tasks, 64u);
}

TEST_F(ObsTest, ClearTraceInvalidatesOpenSpans)
{
    obs::enableTracing(true);
    {
        obs::Span span("test.cleared");
        obs::clearTrace(); // span is now open against a dead buffer
    } // closing must not touch (or corrupt) the new generation
    EXPECT_EQ(obs::traceEventCount(), 0u);
    {
        obs::Span span("test.fresh");
    }
    EXPECT_EQ(obs::traceEventCount(), 1u);
    obs::enableTracing(false);
}

TEST_F(ObsTest, TraceJsonIsWellFormedChromeTracing)
{
    obs::enableTracing(true);
    {
        obs::Span outer("test.json.outer");
        obs::Span inner("test.json.inner");
    }
    obs::enableTracing(false);

    const std::string json = obs::traceToJson();
    EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"test.json.outer\""), std::string::npos);
    EXPECT_NE(json.find("\"test.json.inner\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    // Balanced braces/brackets => structurally sound for a format with
    // no nested strings-containing-braces (names are identifiers).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
    EXPECT_EQ(json.back(), '\n');
}

TEST_F(ObsTest, ReportJsonCarriesSchemaAndKnownCounters)
{
    testCounter.add();
    const obs::Report report = obs::Report::collect();
    const std::string json = report.toJson();
    EXPECT_NE(json.find("\"schema\": \"pgb.metrics.v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"test.obs.counter\""), std::string::npos);
    EXPECT_NE(json.find("\"threadpool.tasks_spawned\""),
              std::string::npos);
    EXPECT_NE(json.find("\"fault.mapper.read.hits\""),
              std::string::npos);
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));

    // The summary line names only nonzero counters.
    const std::string summary = report.summaryLine();
    EXPECT_NE(summary.find("pgb metrics:"), std::string::npos);
    EXPECT_NE(summary.find("test.obs.counter="), std::string::npos);
}

TEST_F(ObsTest, SnapshotNamesAreSortedAndUnique)
{
    const auto snap = obs::snapshot();
    ASSERT_FALSE(snap.counters.empty());
    for (size_t i = 1; i < snap.counters.size(); ++i)
        EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first);
    for (size_t i = 1; i < snap.gauges.size(); ++i)
        EXPECT_LT(snap.gauges[i - 1].first, snap.gauges[i].first);
}

TEST_F(ObsTest, DroppedSpansAreCountedNotSilent)
{
    obs::enableTracing(true);
    // Overflow one thread's buffer (cap is 1 << 16 events).
    for (int i = 0; i < (1 << 16) + 100; ++i) {
        obs::Span span("test.flood");
    }
    obs::enableTracing(false);
    EXPECT_GT(obs::traceDroppedCount(), 0u);
    EXPECT_LE(obs::traceEventCount(), size_t{1} << 16);
    obs::clearTrace();
}

/** The timed kernel: enough arithmetic per iteration that one relaxed
 *  add + one disabled-span check amortizes to noise. */
uint64_t
spinKernel(uint64_t seed, bool instrumented)
{
    uint64_t x = seed;
    for (int i = 0; i < 2000; ++i) {
        for (int j = 0; j < 64; ++j) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
        }
        if (instrumented) {
            obs::Span span("test.overhead");
            overheadCounter.add();
        }
    }
    return x;
}

TEST_F(ObsTest, DisarmedInstrumentationCostsUnderFivePercent)
{
    ASSERT_FALSE(obs::tracingOn());
    volatile uint64_t sink = 0;
    // Best-of-N timing with retries: CI machines are noisy, and the
    // contract is about the instruction cost, not scheduler luck.
    double best_ratio = 1e9;
    for (int attempt = 0; attempt < 5 && best_ratio > 1.05; ++attempt) {
        double plain = 1e9, traced = 1e9;
        for (int rep = 0; rep < 5; ++rep) {
            core::WallTimer timer;
            sink = sink ^ spinKernel(rep + 1, false);
            plain = std::min(plain, timer.seconds());
        }
        for (int rep = 0; rep < 5; ++rep) {
            core::WallTimer timer;
            sink = sink ^ spinKernel(rep + 1, true);
            traced = std::min(traced, timer.seconds());
        }
        best_ratio = std::min(best_ratio, traced / plain);
    }
    EXPECT_LE(best_ratio, 1.05)
        << "disabled instrumentation costs more than 5% (sink "
        << sink << ")";
}

// ---- histograms --------------------------------------------------------

TEST_F(ObsTest, HistogramSmallValuesAreExact)
{
    // Values below 2^kSubBits land in unit-width buckets: quantiles
    // of small values come back exact, not just within bucket error.
    for (uint64_t v = 0; v < 8; ++v)
        testHistogram.record(v);
    EXPECT_EQ(testHistogram.count(), 8u);
    EXPECT_EQ(testHistogram.valueAtQuantile(0.125), 0u);
    EXPECT_EQ(testHistogram.valueAtQuantile(0.5), 3u);
    EXPECT_EQ(testHistogram.valueAtQuantile(1.0), 7u);
    EXPECT_EQ(testHistogram.max(), 7u);
}

TEST_F(ObsTest, HistogramQuantilesWithinBucketPrecision)
{
    // Log-bucketed with 8 sub-buckets per octave: any reported
    // quantile overestimates the true value by at most 12.5%.
    const uint64_t values[] = {100,    1000,    5000,      10000,
                               100000, 1000000, 123456789, 5};
    for (uint64_t v : values)
        precisionHistogram.record(v);
    EXPECT_EQ(precisionHistogram.count(), 8u);
    for (double q : {0.25, 0.5, 0.9, 1.0}) {
        const size_t rank = static_cast<size_t>(
            std::ceil(q * 8.0)) - 1;
        uint64_t sorted[8];
        std::copy(std::begin(values), std::end(values), sorted);
        std::sort(std::begin(sorted), std::end(sorted));
        const uint64_t truth = sorted[rank];
        const uint64_t reported =
            precisionHistogram.valueAtQuantile(q);
        EXPECT_GE(reported, truth);
        EXPECT_LE(static_cast<double>(reported),
                  static_cast<double>(truth) * 1.125 + 1.0)
            << "q=" << q;
    }
}

TEST_F(ObsTest, HistogramCountIsExactUnderThePool)
{
    const uint64_t before = poolHistogram.count();
    constexpr size_t kItems = 20000;
    core::parallelFor(0, kItems, 8, [](size_t i) {
        poolHistogram.record(i % 1000);
    });
    // Sharded like Counter: recording races never lose samples.
    EXPECT_EQ(poolHistogram.count() - before, kItems);
}

TEST_F(ObsTest, HistogramAppearsInSnapshotAndPoolIsInstrumented)
{
    testHistogram.record(42);
    const auto snap = obs::snapshot();
    EXPECT_GE(snap.counter("test.obs.histogram.count"), 1u);
    // Quantiles export as gauges so any metrics consumer sees them.
    EXPECT_GE(snap.gauge("test.obs.histogram.max"), 0);

    // The pool's task-latency histogram is wired in: running work
    // must grow its sample count. Only meaningful when parallelFor
    // actually dispatches to the pool — on a single hardware thread
    // (no PGB_THREADS override) it runs inline; the obs_pool8 ctest
    // entry re-runs this suite under PGB_THREADS=8 to pin it.
    if (core::hardwareThreads() > 1) {
        const uint64_t before =
            obs::snapshot().counter("threadpool.task_nanos.count");
        core::parallelFor(0, 4096, 8, [](size_t) {});
        const uint64_t after =
            obs::snapshot().counter("threadpool.task_nanos.count");
        EXPECT_GT(after, before);
    }
}

} // namespace
