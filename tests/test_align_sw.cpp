/**
 * @file
 * Tests for the Smith-Waterman family: SSW (striped vs scalar) and
 * GSSW (SIMD DAG kernel vs per-cell reference), including the
 * node-splitting invariance property behind the paper's §6.2 case
 * study.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "align/gssw.hpp"
#include "align/ssw.hpp"
#include "core/rng.hpp"
#include "graph/local_graph.hpp"
#include "seq/sequence.hpp"

namespace pgb::align {
namespace {

using core::NullProbe;
using core::Rng;
using graph::LocalGraph;

std::vector<uint8_t>
randomBases(Rng &rng, size_t length)
{
    std::vector<uint8_t> bases;
    bases.reserve(length);
    for (size_t i = 0; i < length; ++i)
        bases.push_back(static_cast<uint8_t>(rng.below(4)));
    return bases;
}

/** Mutate `donor` lightly so alignments are non-trivial. */
std::vector<uint8_t>
mutate(Rng &rng, const std::vector<uint8_t> &donor, double rate)
{
    std::vector<uint8_t> out;
    for (uint8_t base : donor) {
        if (rng.chance(rate / 3))
            continue; // deletion
        if (rng.chance(rate / 3))
            out.push_back(static_cast<uint8_t>(rng.below(4)));
        if (rng.chance(rate)) {
            out.push_back(
                static_cast<uint8_t>((base + 1 + rng.below(3)) % 4));
        } else {
            out.push_back(base);
        }
    }
    if (out.empty())
        out.push_back(0);
    return out;
}

// ----------------------------------------------------------- SSW

TEST(Ssw, PerfectMatchScoresLength)
{
    const auto query = seq::encodeString("ACGTACGTAC");
    const auto hit = sswAlign(query, query,
                              ScoreParams::mappingDefaults());
    EXPECT_EQ(hit.score, 10);
    EXPECT_EQ(hit.queryEnd, 9);
    EXPECT_EQ(hit.refEnd, 9);
}

TEST(Ssw, FindsLocalRegion)
{
    const auto query = seq::encodeString("GGGG");
    const auto reference = seq::encodeString("ACACGGGGACAC");
    const auto hit = sswAlign(query, reference,
                              ScoreParams::mappingDefaults());
    EXPECT_EQ(hit.score, 4);
    EXPECT_EQ(hit.refEnd, 7);
}

TEST(Ssw, MismatchOnlyAlignmentsClampAtZero)
{
    const auto query = seq::encodeString("AAAA");
    const auto reference = seq::encodeString("CCCC");
    const auto hit = sswAlign(query, reference,
                              ScoreParams::mappingDefaults());
    EXPECT_EQ(hit.score, 0);
}

TEST(Ssw, GapAlignmentUsesAffineCosts)
{
    // Query = reference with 2-base deletion; one open + one extend.
    const auto reference = seq::encodeString("ACGTACGTACGTACGTACGT");
    auto query = reference;
    query.erase(query.begin() + 8, query.begin() + 10);
    const ScoreParams params = ScoreParams::mappingDefaults();
    const auto hit = sswAlign(query, reference, params);
    // 18 matches - (gapOpen + gapExtend) = 18 - 7 = 11.
    EXPECT_EQ(hit.score, 18 - params.gapOpen - params.gapExtend);
}

struct SswCase
{
    size_t queryLen;
    size_t refLen;
    double errorRate;
};

class SswEquivalence : public ::testing::TestWithParam<SswCase>
{
};

TEST_P(SswEquivalence, StripedMatchesScalar)
{
    const SswCase param = GetParam();
    Rng rng(param.queryLen * 1000003 + param.refLen);
    const ScoreParams params = ScoreParams::mappingDefaults();
    for (int round = 0; round < 10; ++round) {
        const auto reference = randomBases(rng, param.refLen);
        std::vector<uint8_t> query;
        if (param.errorRate < 0) {
            query = randomBases(rng, param.queryLen);
        } else {
            const size_t start =
                rng.below(param.refLen - param.queryLen + 1);
            query.assign(reference.begin() + start,
                         reference.begin() + start + param.queryLen);
            query = mutate(rng, query, param.errorRate);
        }
        NullProbe probe;
        const auto scalar =
            sswAlignScalar(query, reference, params, probe);
        const auto striped = sswAlign(query, reference, params);
        ASSERT_EQ(striped.score, scalar.score)
            << "round " << round << " qlen=" << query.size();
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SswEquivalence,
    ::testing::Values(SswCase{1, 10, -1}, SswCase{7, 40, -1},
                      SswCase{8, 64, 0.05}, SswCase{9, 33, -1},
                      SswCase{16, 100, 0.02}, SswCase{50, 300, 0.05},
                      SswCase{150, 500, 0.01}, SswCase{150, 500, 0.2},
                      SswCase{255, 800, 0.1}, SswCase{64, 64, -1}));

TEST(Ssw, StripedMatchesScalarWithVariedParams)
{
    Rng rng(99);
    // Keep 2*gapOpen >= mismatch (lazy-F exactness condition).
    const ScoreParams param_sets[] = {
        {1, 4, 6, 1}, {2, 3, 4, 2}, {1, 1, 1, 1}, {3, 5, 8, 2},
        {1, 2, 2, 1},
    };
    for (const ScoreParams &params : param_sets) {
        for (int round = 0; round < 5; ++round) {
            const auto reference = randomBases(rng, 200);
            const auto query = randomBases(rng, 40);
            NullProbe probe;
            const auto scalar =
                sswAlignScalar(query, reference, params, probe);
            const auto striped = sswAlign(query, reference, params);
            ASSERT_EQ(striped.score, scalar.score);
        }
    }
}

TEST(Ssw, HandlesNBasesAsMismatch)
{
    const auto query = seq::encodeString("ACNGT");
    const auto reference = seq::encodeString("ACGGT");
    NullProbe probe;
    const auto scalar = sswAlignScalar(
        query, reference, ScoreParams::mappingDefaults(), probe);
    const auto striped =
        sswAlign(query, reference, ScoreParams::mappingDefaults());
    EXPECT_EQ(striped.score, scalar.score);
}

// ----------------------------------------------------------- GSSW

/** Single-node graph must reproduce plain SSW. */
TEST(Gssw, SingleNodeEqualsSsw)
{
    Rng rng(7);
    const ScoreParams params = ScoreParams::mappingDefaults();
    for (int round = 0; round < 10; ++round) {
        const auto reference = randomBases(rng, 120);
        const auto query = randomBases(rng, 30);
        LocalGraph g;
        g.addNode(std::vector<uint8_t>(reference));
        g.finalize();
        const auto graph_hit = gsswAlign(g, query, params);
        const auto flat_hit = sswAlign(query, reference, params);
        EXPECT_EQ(graph_hit.best.score, flat_hit.score);
    }
}

/** Chain of nodes spelling one sequence must also reproduce SSW. */
TEST(Gssw, LinearChainEqualsSsw)
{
    Rng rng(8);
    const ScoreParams params = ScoreParams::mappingDefaults();
    for (int round = 0; round < 10; ++round) {
        const auto reference = randomBases(rng, 150);
        const auto query = randomBases(rng, 40);
        LocalGraph g;
        uint32_t prev = UINT32_MAX;
        for (size_t i = 0; i < reference.size(); i += 13) {
            const size_t end = std::min(i + 13, reference.size());
            const uint32_t node = g.addNode(std::vector<uint8_t>(
                reference.begin() + i, reference.begin() + end));
            if (prev != UINT32_MAX)
                g.addEdge(prev, node);
            prev = node;
        }
        g.finalize();
        const auto graph_hit = gsswAlign(g, query, params);
        const auto flat_hit = sswAlign(query, reference, params);
        ASSERT_EQ(graph_hit.best.score, flat_hit.score)
            << "round " << round;
    }
}

/** Random DAGs: striped SIMD kernel vs per-cell scalar reference. */
TEST(Gssw, MatchesScalarReferenceOnRandomDags)
{
    Rng rng(9);
    const ScoreParams params = ScoreParams::mappingDefaults();
    for (int round = 0; round < 20; ++round) {
        LocalGraph g;
        const size_t n_nodes = 2 + rng.below(12);
        for (size_t v = 0; v < n_nodes; ++v)
            g.addNode(randomBases(rng, 1 + rng.below(30)));
        // Random forward edges (guaranteed DAG).
        for (size_t v = 0; v + 1 < n_nodes; ++v) {
            g.addEdge(static_cast<uint32_t>(v),
                      static_cast<uint32_t>(v + 1));
            if (v + 2 < n_nodes && rng.chance(0.5)) {
                g.addEdge(static_cast<uint32_t>(v),
                          static_cast<uint32_t>(
                              v + 2 + rng.below(n_nodes - v - 2)));
            }
        }
        g.finalize();
        ASSERT_TRUE(g.isDag());
        const auto query = randomBases(rng, 5 + rng.below(60));
        const auto simd = gsswAlign(g, query, params);
        const auto scalar = gsswAlignScalar(g, query, params);
        ASSERT_EQ(simd.best.score, scalar.score) << "round " << round;
        ASSERT_EQ(simd.best.node, scalar.node) << "round " << round;
        ASSERT_EQ(simd.best.nodeOffset, scalar.nodeOffset)
            << "round " << round;
    }
}

/**
 * Splitting nodes must not change alignment scores (the paper's §6.2
 * Split-M-Graph transform changes performance, not results).
 */
TEST(Gssw, ScoreInvariantUnderNodeSplitting)
{
    Rng rng(10);
    const ScoreParams params = ScoreParams::mappingDefaults();
    for (int round = 0; round < 10; ++round) {
        LocalGraph g;
        const uint32_t a = g.addNode(randomBases(rng, 40));
        const uint32_t b = g.addNode(randomBases(rng, 25));
        const uint32_t c = g.addNode(randomBases(rng, 33));
        g.addEdge(a, b);
        g.addEdge(a, c);
        g.finalize();
        const auto query = randomBases(rng, 30);
        const auto whole = gsswAlign(g, query, params);
        const LocalGraph split = g.splitTo1bp();
        const auto split_hit = gsswAlign(split, query, params);
        ASSERT_EQ(whole.best.score, split_hit.best.score)
            << "round " << round;
    }
}

TEST(Gssw, KeepMatricesStoresFullDp)
{
    LocalGraph g;
    g.addNode("ACGTACGT");
    g.addNode("TTTT");
    g.addEdge(0, 1);
    g.finalize();
    const auto query = seq::encodeString("ACGTTTT");
    GsswOptions options;
    options.keepMatrices = true;
    const auto result = gsswAlign(
        g, query, ScoreParams::mappingDefaults(), options);
    ASSERT_EQ(result.matrices.size(), 2u);
    // Uninstrumented runs keep the kernel's striped columns: one
    // segLen x lanes block per reference base, padding included.
    ASSERT_EQ(result.matrixLayout, GsswMatrixLayout::kStriped);
    const size_t col = static_cast<size_t>(result.matrixSegLen) *
                       static_cast<size_t>(result.matrixLanes);
    EXPECT_GE(col, query.size());
    EXPECT_EQ(result.matrices[0].size(), col * 8);
    EXPECT_EQ(result.matrices[1].size(), col * 4);
    EXPECT_EQ(result.cellsComputed, query.size() * 12);

    GsswOptions no_matrices;
    no_matrices.keepMatrices = false;
    const auto lean = gsswAlign(
        g, query, ScoreParams::mappingDefaults(), no_matrices);
    EXPECT_EQ(lean.best.score, result.best.score);
    EXPECT_TRUE(lean.matrices.empty());
}

TEST(Gssw, MatrixLastColumnConsistentWithScore)
{
    // The stored DP matrix must contain the best score somewhere.
    LocalGraph g;
    g.addNode("ACGTACGTACGT");
    g.finalize();
    const auto query = seq::encodeString("GTAC");
    const auto result = gsswAlign(g, query,
                                  ScoreParams::mappingDefaults());
    int16_t best = 0;
    for (int16_t h : result.matrices[0])
        best = std::max(best, h);
    EXPECT_EQ(best, result.best.score);
}

TEST(Gssw, RejectsCyclicGraphs)
{
    LocalGraph g;
    g.addNode("A");
    g.addNode("C");
    g.addEdge(0, 1);
    g.addEdge(1, 0);
    g.finalize();
    const auto query = seq::encodeString("AC");
    EXPECT_THROW(gsswAlign(g, query, ScoreParams::mappingDefaults()),
                 core::FatalError);
}

/** Re-score a traceback result from its own CIGAR and bases. */
int32_t
rescoreAlignment(const GsswAlignment &alignment,
                 std::span<const uint8_t> query,
                 const ScoreParams &params)
{
    int32_t score = 0;
    size_t qi = static_cast<size_t>(alignment.queryStart);
    size_t ri = 0;
    for (const CigarEntry &entry : alignment.cigar) {
        switch (entry.op) {
          case '=':
            for (uint32_t k = 0; k < entry.length; ++k) {
                EXPECT_EQ(query[qi], alignment.referenceBases[ri]);
                ++qi;
                ++ri;
            }
            score += params.match * static_cast<int32_t>(entry.length);
            break;
          case 'X':
            for (uint32_t k = 0; k < entry.length; ++k) {
                EXPECT_NE(query[qi], alignment.referenceBases[ri]);
                ++qi;
                ++ri;
            }
            score -= params.mismatch *
                     static_cast<int32_t>(entry.length);
            break;
          case 'I':
            qi += entry.length;
            score -= params.gapOpen +
                     static_cast<int32_t>(entry.length - 1) *
                         params.gapExtend;
            break;
          case 'D':
            ri += entry.length;
            score -= params.gapOpen +
                     static_cast<int32_t>(entry.length - 1) *
                         params.gapExtend;
            break;
          default:
            ADD_FAILURE() << "bad op " << entry.op;
        }
    }
    EXPECT_EQ(static_cast<int32_t>(qi), alignment.queryEnd + 1);
    EXPECT_EQ(ri, alignment.referenceBases.size());
    return score;
}

TEST(GsswTraceback, PerfectMatchIsAllEquals)
{
    LocalGraph g;
    g.addNode("ACGT");
    g.addNode("TTAA");
    g.addEdge(0, 1);
    g.finalize();
    const auto query = seq::encodeString("GTTTA");
    const ScoreParams params = ScoreParams::mappingDefaults();
    const auto result = gsswAlign(g, query, params);
    const auto alignment = gsswTraceback(g, query, params, result);
    ASSERT_EQ(alignment.cigar.size(), 1u);
    EXPECT_EQ(alignment.cigar[0].op, '=');
    EXPECT_EQ(alignment.cigar[0].length, 5u);
    EXPECT_EQ(alignment.nodeWalk,
              (std::vector<uint32_t>{0, 1}));
    EXPECT_EQ(rescoreAlignment(alignment, query, params),
              result.best.score);
}

TEST(GsswTraceback, RescoresToOptimalOnRandomDags)
{
    Rng rng(11);
    const ScoreParams params = ScoreParams::mappingDefaults();
    for (int round = 0; round < 25; ++round) {
        LocalGraph g;
        const size_t n_nodes = 2 + rng.below(10);
        for (size_t v = 0; v < n_nodes; ++v)
            g.addNode(randomBases(rng, 1 + rng.below(25)));
        for (size_t v = 0; v + 1 < n_nodes; ++v) {
            g.addEdge(static_cast<uint32_t>(v),
                      static_cast<uint32_t>(v + 1));
            if (v + 2 < n_nodes && rng.chance(0.4)) {
                g.addEdge(static_cast<uint32_t>(v),
                          static_cast<uint32_t>(v + 2));
            }
        }
        g.finalize();
        const auto query = randomBases(rng, 10 + rng.below(60));
        const auto result = gsswAlign(g, query, params);
        if (result.best.score == 0)
            continue;
        const auto alignment = gsswTraceback(g, query, params, result);
        ASSERT_EQ(rescoreAlignment(alignment, query, params),
                  result.best.score)
            << "round " << round;
        // Node walk must be connected in the DAG.
        for (size_t w = 0; w + 1 < alignment.nodeWalk.size(); ++w) {
            const auto succ = g.successors(alignment.nodeWalk[w]);
            EXPECT_TRUE(std::find(succ.begin(), succ.end(),
                                  alignment.nodeWalk[w + 1]) !=
                        succ.end())
                << "round " << round << " walk step " << w;
        }
    }
}

TEST(GsswTraceback, RecoversIndels)
{
    // Query = path sequence with a 3-base deletion.
    // Long enough flanks that bridging the gap beats a gap-free
    // local alignment of one flank.
    LocalGraph g;
    g.addNode("ACGTACGTACACGTACGTAC");
    g.addNode("GGTTGGAACCGGTTGGAACC");
    g.addEdge(0, 1);
    g.finalize();
    const ScoreParams params = ScoreParams::mappingDefaults();
    auto query = seq::encodeString(
        "ACGTACGTACACGTACGTACGGTTGGAACCGGTTGGAACC");
    query.erase(query.begin() + 20, query.begin() + 23);
    const auto result = gsswAlign(g, query, params);
    const auto alignment = gsswTraceback(g, query, params, result);
    bool has_deletion = false;
    for (const auto &entry : alignment.cigar)
        has_deletion = has_deletion || entry.op == 'D';
    EXPECT_TRUE(has_deletion);
    EXPECT_EQ(rescoreAlignment(alignment, query, params),
              result.best.score);
}

TEST(GsswTraceback, RequiresKeptMatrices)
{
    LocalGraph g;
    g.addNode("ACGT");
    g.finalize();
    const auto query = seq::encodeString("ACGT");
    const ScoreParams params = ScoreParams::mappingDefaults();
    GsswOptions options;
    options.keepMatrices = false;
    const auto result = gsswAlign(g, query, params, options);
    EXPECT_THROW(gsswTraceback(g, query, params, result),
                 core::FatalError);
}

/** Probe counts must be populated by an instrumented run. */
TEST(Gssw, CountingProbeSeesVectorOps)
{
    LocalGraph g;
    g.addNode("ACGTACGTACGTACGT");
    g.finalize();
    const auto query = seq::encodeString("ACGTACGT");
    core::CountingProbe probe;
    GsswOptions options;
    gsswAlign(g, query, ScoreParams::mappingDefaults(), options, probe);
    EXPECT_GT(probe.counts[static_cast<size_t>(core::OpKind::kVector)],
              0u);
    EXPECT_GT(probe.loadOps, 0u);
    EXPECT_GT(probe.storeOps, 0u);
}

} // namespace
} // namespace pgb::align
