/**
 * @file
 * End-to-end golden regression tests: the PGGB build pipeline and the
 * short/long-read mappers are run on a fixed-seed synthetic fixture
 * and their outputs fingerprinted (MD5) against checked-in goldens.
 *
 * The digests cover only integer-deterministic output — GFA text and
 * per-read mapping records — which PR 3's scheduler guarantees are
 * bit-identical at every thread count, so the same goldens hold under
 * PGB_THREADS=1 and PGB_THREADS=8 (the ctest harness runs both).
 *
 * Regenerate after an intentional behavior change:
 *
 *     PGB_GOLDEN_REGEN=1 ./pgb_tests --gtest_filter='Golden*'
 *
 * then review the diff like any other source change: a golden that
 * moved without an intentional pipeline change is a regression.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/md5.hpp"
#include "graph/gfa.hpp"
#include "index/gbwt.hpp"
#include "index/minimizer.hpp"
#include "pipeline/context.hpp"
#include "pipeline/graph_build.hpp"
#include "pipeline/mapper.hpp"
#include "seq/read_sim.hpp"
#include "store/store.hpp"
#include "synth/pangenome_sim.hpp"

namespace {

using namespace pgb;

TEST(Md5, Rfc1321KnownAnswers)
{
    EXPECT_EQ(core::md5Hex(""), "d41d8cd98f00b204e9800998ecf8427e");
    EXPECT_EQ(core::md5Hex("a"), "0cc175b9c0f1b6a831c399e269772661");
    EXPECT_EQ(core::md5Hex("abc"), "900150983cd24fb0d6963f7d28e17f72");
    EXPECT_EQ(core::md5Hex("message digest"),
              "f96b697d7cb7938d525a2f31aaf161d0");
    EXPECT_EQ(core::md5Hex("abcdefghijklmnopqrstuvwxyz"),
              "c3fcd3d76192e4007dfb496cca67e13b");
    // 80 bytes: the padded length crosses into a second final block.
    EXPECT_EQ(core::md5Hex("1234567890123456789012345678901234567890"
                           "1234567890123456789012345678901234567890"),
              "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5, PaddingBoundaries)
{
    // 55/56/64 bytes straddle the one- vs two-block padding split;
    // cross-check agreement with an incremental property instead of
    // magic constants: distinct inputs, distinct stable digests.
    const std::string a(55, 'x'), b(56, 'x'), c(64, 'x');
    EXPECT_EQ(core::md5Hex(a), core::md5Hex(a));
    EXPECT_NE(core::md5Hex(a), core::md5Hex(b));
    EXPECT_NE(core::md5Hex(b), core::md5Hex(c));
    EXPECT_EQ(core::md5Hex(a).size(), 32u);
}

/** The fixed-seed fixture every golden digest derives from. */
struct GoldenFixture
{
    synth::Pangenome pangenome;
    std::vector<seq::Sequence> assemblies; ///< reference + haplotypes
    std::vector<seq::Sequence> shortReads;
    std::vector<seq::Sequence> longReads;

    GoldenFixture()
    {
        synth::PangenomeConfig config = synth::mGraphLikeConfig(12000, 7);
        config.haplotypeCount = 4;
        pangenome = synth::simulatePangenome(config);
        assemblies.push_back(pangenome.reference);
        for (const auto &hap : pangenome.haplotypes)
            assemblies.push_back(hap);

        seq::ReadSimulator short_sim(seq::ReadProfile::shortRead(),
                                     0x5eed);
        seq::ReadProfile long_profile = seq::ReadProfile::longRead();
        long_profile.readLength = 1500;
        seq::ReadSimulator long_sim(long_profile, 0x10e6);
        for (size_t r = 0; r < 30; ++r) {
            auto read = short_sim.sample(
                pangenome.haplotypes[r % pangenome.haplotypes.size()]);
            read.read.setName("sr_" + std::to_string(r));
            shortReads.push_back(std::move(read.read));
        }
        for (size_t r = 0; r < 6; ++r) {
            auto read = long_sim.sample(
                pangenome.haplotypes[r % pangenome.haplotypes.size()]);
            read.read.setName("lr_" + std::to_string(r));
            longReads.push_back(std::move(read.read));
        }
    }
};

const GoldenFixture &
fixture()
{
    static GoldenFixture instance;
    return instance;
}

std::string
gfaDigest(const graph::PanGraph &graph)
{
    std::ostringstream out;
    graph::writeGfa(out, graph);
    return core::md5Hex(out.str());
}

/** Per-read mapping records (serial mapOne for a stable order). */
std::string
mappingDigest(const graph::PanGraph &graph,
              pipeline::ToolProfile tool,
              const std::vector<seq::Sequence> &reads)
{
    auto config = pipeline::MapperConfig::forTool(tool);
    config.threads = 1;
    const pipeline::Seq2GraphMapper mapper(graph, config);
    pipeline::MappingStats stats;
    std::ostringstream out;
    for (const seq::Sequence &read : reads) {
        const auto mapping = mapper.mapOne(read, stats);
        out << read.name() << '\t' << mapping.mapped << '\t'
            << mapping.node << '\t' << mapping.score << '\t'
            << mapping.reverse << '\n';
    }
    return core::md5Hex(out.str());
}

/** Compare @p digest against the checked-in golden @p file, or
 *  rewrite the golden under PGB_GOLDEN_REGEN=1. */
void
checkGolden(const char *file, const std::string &digest)
{
    const std::string path = std::string(PGB_GOLDEN_DIR) + "/" + file;
    if (std::getenv("PGB_GOLDEN_REGEN") != nullptr) {
        std::ofstream out(path);
        out << digest << '\n';
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        GTEST_SKIP() << "regenerated " << path;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << "missing golden " << path
        << " (regenerate with PGB_GOLDEN_REGEN=1)";
    std::string expected;
    in >> expected;
    EXPECT_EQ(digest, expected)
        << file << " drifted: pipeline output changed. If the change "
        << "is intentional, regenerate with PGB_GOLDEN_REGEN=1.";
}

TEST(Golden, PggbGraphMatchesGolden)
{
    pipeline::PggbParams params;
    params.threads = 8;
    const auto report =
        pipeline::buildPggb(fixture().assemblies, params);
    EXPECT_GT(report.matches, 0u);
    EXPECT_GT(report.closureClasses, 0u);
    checkGolden("pggb_graph.md5", gfaDigest(report.graph));
}

TEST(Golden, PggbGraphIsThreadCountInvariant)
{
    pipeline::PggbParams serial;
    serial.threads = 1;
    pipeline::PggbParams wide;
    wide.threads = 8;
    const auto one = pipeline::buildPggb(fixture().assemblies, serial);
    const auto eight = pipeline::buildPggb(fixture().assemblies, wide);
    EXPECT_EQ(gfaDigest(one.graph), gfaDigest(eight.graph));
    EXPECT_EQ(one.closureClasses, eight.closureClasses);
    EXPECT_EQ(one.poaCells, eight.poaCells);
}

/**
 * The fixture graph serialized to a `.pgbi` artifact and loaded back
 * as a MappingContext — the build-once/map-many path. Mapping through
 * it must reproduce the same goldens as the in-memory path, at every
 * thread count the harness runs (PGB_THREADS=1 and 8).
 */
std::shared_ptr<const pipeline::MappingContext>
artifactContext()
{
    static std::shared_ptr<const pipeline::MappingContext> context =
        [] {
            const auto &graph = fixture().pangenome.graph;
            const index::MinimizerIndex minimizers(graph, 15, 10);
            const index::GbwtIndex gbwt(graph);
            const std::string path =
                testing::TempDir() + "golden_fixture.pgbi";
            store::writeArtifact(path, graph, minimizers, &gbwt);
            return pipeline::MappingContext::Builder()
                .fromArtifact(path)
                .build();
        }();
    return context;
}

/** mappingDigest, but through a loaded artifact context. */
std::string
artifactMappingDigest(pipeline::ToolProfile tool,
                      const std::vector<seq::Sequence> &reads)
{
    auto config = pipeline::MapperConfig::forTool(tool);
    config.threads = 1;
    const pipeline::Seq2GraphMapper mapper(artifactContext(), config);
    pipeline::MappingStats stats;
    std::ostringstream out;
    for (const seq::Sequence &read : reads) {
        const auto mapping = mapper.mapOne(read, stats);
        out << read.name() << '\t' << mapping.mapped << '\t'
            << mapping.node << '\t' << mapping.score << '\t'
            << mapping.reverse << '\n';
    }
    return core::md5Hex(out.str());
}

/**
 * The MEM-seeded artifact context: the fixture graph with FM-index
 * sections, loaded back with the mem seeding strategy. Like the
 * minimizer goldens, the mem digests must hold at PGB_THREADS=1 and 8.
 */
std::shared_ptr<const pipeline::MappingContext>
memArtifactContext()
{
    static std::shared_ptr<const pipeline::MappingContext> context =
        [] {
            const auto &graph = fixture().pangenome.graph;
            const index::MinimizerIndex minimizers(graph, 15, 10);
            const index::FmIndex fm(graph);
            const std::string path =
                testing::TempDir() + "golden_fixture_mem.pgbi";
            store::writeArtifact(path, graph, minimizers, nullptr, &fm);
            return pipeline::MappingContext::Builder()
                .fromArtifact(path)
                .seeder(pipeline::SeederKind::kMem)
                .build();
        }();
    return context;
}

/** mappingDigest through an arbitrary prebuilt context. */
std::string
contextMappingDigest(
    const std::shared_ptr<const pipeline::MappingContext> &context,
    pipeline::ToolProfile tool,
    const std::vector<seq::Sequence> &reads)
{
    auto config = pipeline::MapperConfig::forTool(tool);
    config.threads = 1;
    const pipeline::Seq2GraphMapper mapper(context, config);
    pipeline::MappingStats stats;
    std::ostringstream out;
    for (const seq::Sequence &read : reads) {
        const auto mapping = mapper.mapOne(read, stats);
        out << read.name() << '\t' << mapping.mapped << '\t'
            << mapping.node << '\t' << mapping.score << '\t'
            << mapping.reverse << '\n';
    }
    return core::md5Hex(out.str());
}

TEST(Golden, ShortReadMappingsMemSeederMatchGolden)
{
    checkGolden("short_reads_vgmap_mem.md5",
                contextMappingDigest(memArtifactContext(),
                                     pipeline::ToolProfile::kVgMap,
                                     fixture().shortReads));
}

TEST(Golden, LongReadMappingsMemSeederMatchGolden)
{
    checkGolden("long_reads_minigraph_mem.md5",
                contextMappingDigest(memArtifactContext(),
                                     pipeline::ToolProfile::kMinigraph,
                                     fixture().longReads));
}

TEST(Golden, MemSeederInMemoryBuildMatchesArtifactDigest)
{
    // Build-mode FM-index (owned vectors) and view-mode (zero-copy
    // artifact spans) must drive the mapper to identical output.
    const auto built = pipeline::MappingContext::Builder()
                           .fromGraph(fixture().pangenome.graph)
                           .seeder(pipeline::SeederKind::kMem)
                           .build();
    EXPECT_EQ(contextMappingDigest(built, pipeline::ToolProfile::kVgMap,
                                   fixture().shortReads),
              contextMappingDigest(memArtifactContext(),
                                   pipeline::ToolProfile::kVgMap,
                                   fixture().shortReads));
}

TEST(Golden, ShortReadMappingsMatchGolden)
{
    checkGolden("short_reads_vgmap.md5",
                mappingDigest(fixture().pangenome.graph,
                              pipeline::ToolProfile::kVgMap,
                              fixture().shortReads));
}

TEST(Golden, LongReadMappingsMatchGolden)
{
    checkGolden("long_reads_minigraph.md5",
                mappingDigest(fixture().pangenome.graph,
                              pipeline::ToolProfile::kMinigraph,
                              fixture().longReads));
}

TEST(Golden, ShortReadMappingsViaArtifactMatchGolden)
{
    // The .pgbi round trip is invisible to the mapper: the same
    // golden digest as the in-memory ShortReadMappingsMatchGolden.
    checkGolden("short_reads_vgmap.md5",
                artifactMappingDigest(pipeline::ToolProfile::kVgMap,
                                      fixture().shortReads));
}

TEST(Golden, LongReadMappingsViaArtifactMatchGolden)
{
    checkGolden("long_reads_minigraph.md5",
                artifactMappingDigest(
                    pipeline::ToolProfile::kMinigraph,
                    fixture().longReads));
}

TEST(Golden, MapBatchViaArtifactAggregatesMatchInMemory)
{
    // The stateless batch entry point over a loaded artifact agrees
    // with the in-memory mapper's aggregates.
    auto config =
        pipeline::MapperConfig::forTool(pipeline::ToolProfile::kVgMap);
    config.threads = 2;
    const pipeline::Seq2GraphMapper inMemory(fixture().pangenome.graph,
                                             config);
    const auto direct = inMemory.mapReads(fixture().shortReads);
    const auto batched = pipeline::mapBatch(*artifactContext(), config,
                                            fixture().shortReads);
    EXPECT_EQ(direct.mappedReads, batched.mappedReads);
    EXPECT_EQ(direct.anchors, batched.anchors);
    EXPECT_EQ(direct.clusters, batched.clusters);
    EXPECT_EQ(direct.alignments, batched.alignments);
}

TEST(Golden, ParallelMapReadsAggregatesAreThreadCountInvariant)
{
    auto config =
        pipeline::MapperConfig::forTool(pipeline::ToolProfile::kVgMap);
    config.threads = 1;
    const pipeline::Seq2GraphMapper serial(fixture().pangenome.graph,
                                           config);
    config.threads = 8;
    const pipeline::Seq2GraphMapper wide(fixture().pangenome.graph,
                                         config);
    const auto one = serial.mapReads(fixture().shortReads);
    const auto eight = wide.mapReads(fixture().shortReads);
    EXPECT_EQ(one.mappedReads, eight.mappedReads);
    EXPECT_EQ(one.anchors, eight.anchors);
    EXPECT_EQ(one.clusters, eight.clusters);
    EXPECT_EQ(one.alignments, eight.alignments);
}

} // namespace
