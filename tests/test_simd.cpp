/**
 * @file
 * Tests for the width-templated SIMD layer and its runtime dispatch:
 * lane-exact property tests of every compiled backend against the
 * VScalar ground truth (via the simdOpsTables() function-pointer
 * view), bit-identical kernel results across PGB_SIMD levels, the
 * inter-sequence batch kernel against per-job sswAlign, and the int16
 * saturation clamp with its align.score_saturated counter.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "align/dispatch.hpp"
#include "align/gssw.hpp"
#include "align/simd.hpp"
#include "align/simd_table.hpp"
#include "align/ssw.hpp"
#include "align/ssw_batch.hpp"
#include "core/rng.hpp"
#include "graph/local_graph.hpp"
#include "obs/metrics.hpp"
#include "seq/sequence.hpp"

namespace pgb::align {
namespace {

using core::Rng;
using graph::LocalGraph;

// ------------------------------------------------- lane properties

/** Saturating int16 arithmetic, the scalar ground truth. */
int16_t
satAdd(int16_t a, int16_t b)
{
    const int32_t sum = static_cast<int32_t>(a) + b;
    return static_cast<int16_t>(
        std::min<int32_t>(INT16_MAX, std::max<int32_t>(INT16_MIN, sum)));
}

int16_t
satSub(int16_t a, int16_t b)
{
    const int32_t diff = static_cast<int32_t>(a) - b;
    return static_cast<int16_t>(
        std::min<int32_t>(INT16_MAX, std::max<int32_t>(INT16_MIN, diff)));
}

/**
 * Lane inputs stressing the saturation and comparison edges plus
 * deterministic pseudo-random fill.
 */
std::vector<int16_t>
laneInputs(uint64_t seed, size_t count)
{
    static constexpr int16_t kEdges[] = {
        INT16_MIN, INT16_MIN + 1, -30000, -1, 0, 1,
        30000,     INT16_MAX - 1, INT16_MAX,
    };
    std::vector<int16_t> values;
    values.reserve(count);
    Rng rng(seed);
    for (size_t i = 0; i < count; ++i) {
        if (rng.chance(0.3)) {
            values.push_back(
                kEdges[rng.below(sizeof(kEdges) / sizeof(kEdges[0]))]);
        } else {
            values.push_back(static_cast<int16_t>(
                static_cast<int32_t>(rng.below(65536)) - 32768));
        }
    }
    return values;
}

TEST(SimdOps, EveryBackendMatchesScalarGroundTruth)
{
    const auto tables = simdOpsTables();
    ASSERT_GE(tables.size(), 2u); // at least VScalar<8> and VScalar<16>
    constexpr int kRounds = 200;
    for (const SimdOpsTable &table : tables) {
        SCOPED_TRACE(table.name);
        const int w = table.width;
        ASSERT_TRUE(w == 8 || w == 16);
        for (int round = 0; round < kRounds; ++round) {
            const auto a = laneInputs(round * 2 + 1, w);
            const auto b = laneInputs(round * 2 + 2, w);
            std::vector<int16_t> out(w, 0);

            table.adds(a.data(), b.data(), out.data());
            for (int i = 0; i < w; ++i)
                ASSERT_EQ(out[i], satAdd(a[i], b[i])) << "lane " << i;
            table.subs(a.data(), b.data(), out.data());
            for (int i = 0; i < w; ++i)
                ASSERT_EQ(out[i], satSub(a[i], b[i])) << "lane " << i;
            table.vmax(a.data(), b.data(), out.data());
            for (int i = 0; i < w; ++i)
                ASSERT_EQ(out[i], std::max(a[i], b[i])) << "lane " << i;
            table.cmpEq(a.data(), b.data(), out.data());
            for (int i = 0; i < w; ++i)
                ASSERT_EQ(out[i], a[i] == b[i] ? -1 : 0) << "lane " << i;
            table.cmpGt(a.data(), b.data(), out.data());
            for (int i = 0; i < w; ++i)
                ASSERT_EQ(out[i], a[i] > b[i] ? -1 : 0) << "lane " << i;
            table.vand(a.data(), b.data(), out.data());
            for (int i = 0; i < w; ++i) {
                ASSERT_EQ(out[i], static_cast<int16_t>(a[i] & b[i]))
                    << "lane " << i;
            }

            // blend: mask lanes are all-ones or all-zero in kernel use.
            std::vector<int16_t> mask(w);
            for (int i = 0; i < w; ++i)
                mask[i] = (a[i] > b[i]) ? -1 : 0;
            table.blend(mask.data(), a.data(), b.data(), out.data());
            for (int i = 0; i < w; ++i)
                ASSERT_EQ(out[i], mask[i] != 0 ? a[i] : b[i])
                    << "lane " << i;

            const int16_t fill = b[0];
            table.shiftLanesUp(a.data(), fill, out.data());
            ASSERT_EQ(out[0], fill);
            for (int i = 1; i < w; ++i)
                ASSERT_EQ(out[i], a[i - 1]) << "lane " << i;

            bool any = false;
            for (int i = 0; i < w; ++i)
                any = any || a[i] > b[i];
            ASSERT_EQ(table.anyGt(a.data(), b.data()), any);

            int16_t hmax = a[0];
            for (int i = 1; i < w; ++i)
                hmax = std::max(hmax, a[i]);
            ASSERT_EQ(table.horizontalMax(a.data()), hmax);
            for (int i = 0; i < w; ++i)
                ASSERT_EQ(table.lane(a.data(), i), a[i]) << "lane " << i;
        }
    }
}

TEST(SimdOps, TablesCoverTheDispatchableLevels)
{
    const auto tables = simdOpsTables();
    bool scalar8 = false, scalar16 = false;
    for (const SimdOpsTable &table : tables) {
        if (std::string(table.name) == "scalar8")
            scalar8 = true;
        if (std::string(table.name) == "scalar16")
            scalar16 = true;
    }
    EXPECT_TRUE(scalar8);
    EXPECT_TRUE(scalar16);
}

// ------------------------------------------- cross-level dispatch

/** RAII PGB_SIMD override; restores the prior value and dispatch. */
class SimdLevelOverride
{
  public:
    explicit SimdLevelOverride(const char *level)
    {
        const char *prev = std::getenv("PGB_SIMD");
        had_ = prev != nullptr;
        if (had_)
            prev_ = prev;
        ::setenv("PGB_SIMD", level, 1);
        refreshSimdLevel();
    }

    ~SimdLevelOverride()
    {
        if (had_)
            ::setenv("PGB_SIMD", prev_.c_str(), 1);
        else
            ::unsetenv("PGB_SIMD");
        refreshSimdLevel();
    }

  private:
    bool had_ = false;
    std::string prev_;
};

std::vector<uint8_t>
randomBases(Rng &rng, size_t length)
{
    std::vector<uint8_t> bases;
    bases.reserve(length);
    for (size_t i = 0; i < length; ++i)
        bases.push_back(static_cast<uint8_t>(rng.below(4)));
    return bases;
}

TEST(SimdDispatch, SswBitIdenticalAcrossLevels)
{
    const auto params = ScoreParams::mappingDefaults();
    Rng rng(42);
    for (int round = 0; round < 20; ++round) {
        const auto query = randomBases(rng, 30 + rng.below(200));
        const auto reference = randomBases(rng, 50 + rng.below(400));

        std::vector<LocalHit> hits;
        for (const char *level : {"scalar", "sse2", "avx2"}) {
            SimdLevelOverride guard(level);
            hits.push_back(sswAlign(query, reference, params));
        }
        for (size_t i = 1; i < hits.size(); ++i) {
            EXPECT_EQ(hits[i].score, hits[0].score) << "round " << round;
            EXPECT_EQ(hits[i].queryEnd, hits[0].queryEnd);
            EXPECT_EQ(hits[i].refEnd, hits[0].refEnd);
        }
    }
}

TEST(SimdDispatch, GsswBitIdenticalAcrossLevels)
{
    const auto params = ScoreParams::mappingDefaults();
    Rng rng(43);
    for (int round = 0; round < 10; ++round) {
        const auto reference = randomBases(rng, 120 + rng.below(200));
        const auto query = randomBases(rng, 40 + rng.below(80));
        LocalGraph g;
        uint32_t prev = UINT32_MAX;
        for (size_t i = 0; i < reference.size(); i += 17) {
            const size_t end = std::min(i + 17, reference.size());
            const uint32_t node = g.addNode(std::vector<uint8_t>(
                reference.begin() + i, reference.begin() + end));
            if (prev != UINT32_MAX)
                g.addEdge(prev, node);
            prev = node;
        }
        g.finalize();

        std::vector<GraphLocalHit> hits;
        for (const char *level : {"scalar", "sse2", "avx2"}) {
            SimdLevelOverride guard(level);
            hits.push_back(gsswAlign(g, query, params).best);
        }
        for (size_t i = 1; i < hits.size(); ++i) {
            EXPECT_EQ(hits[i].score, hits[0].score) << "round " << round;
            EXPECT_EQ(hits[i].queryEnd, hits[0].queryEnd);
            EXPECT_EQ(hits[i].node, hits[0].node);
            EXPECT_EQ(hits[i].nodeOffset, hits[0].nodeOffset);
        }
    }
}

// ------------------------------------------------- batched kernel

TEST(SswBatch, MatchesPerJobSswAlignAtEveryLevel)
{
    const auto params = ScoreParams::mappingDefaults();
    Rng rng(44);
    // Mixed lengths so packs span buckets and leave partial lanes.
    std::vector<std::vector<uint8_t>> queries, references;
    for (int i = 0; i < 37; ++i) {
        queries.push_back(randomBases(rng, 20 + rng.below(300)));
        references.push_back(randomBases(rng, 40 + rng.below(600)));
    }
    std::vector<BatchJob> jobs(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
        jobs[i].query = queries[i];
        jobs[i].reference = references[i];
    }

    for (const char *level : {"scalar", "sse2", "avx2"}) {
        SCOPED_TRACE(level);
        SimdLevelOverride guard(level);
        std::vector<LocalHit> batched(jobs.size());
        sswAlignBatch(jobs, params, batched, /* threads */ 3);
        for (size_t i = 0; i < jobs.size(); ++i) {
            const LocalHit solo =
                sswAlign(jobs[i].query, jobs[i].reference, params);
            EXPECT_EQ(batched[i].score, solo.score) << "job " << i;
            EXPECT_EQ(batched[i].queryEnd, solo.queryEnd) << "job " << i;
            EXPECT_EQ(batched[i].refEnd, solo.refEnd) << "job " << i;
        }
    }
}

// ----------------------------------------------------- saturation

TEST(SswSaturation, ClampsAndCountsInt16Overflow)
{
    // match=8 over ~5000 identical bases drives the running score
    // past INT16_MAX: the kernel must clamp at the saturation
    // sentinel (not wrap) and bump align.score_saturated.
    ScoreParams params;
    params.match = 8;
    Rng rng(45);
    const auto bases = randomBases(rng, 5000);

    const uint64_t before =
        obs::snapshot().counter("align.score_saturated");
    const LocalHit hit = sswAlign(bases, bases, params);
    const uint64_t after =
        obs::snapshot().counter("align.score_saturated");

    EXPECT_EQ(hit.score, kScoreSaturated);
    EXPECT_GT(after, before);
}

TEST(SswSaturation, NormalScoresDoNotTripTheCounter)
{
    Rng rng(46);
    const auto query = randomBases(rng, 100);
    const uint64_t before =
        obs::snapshot().counter("align.score_saturated");
    const LocalHit hit =
        sswAlign(query, query, ScoreParams::mappingDefaults());
    const uint64_t after =
        obs::snapshot().counter("align.score_saturated");
    EXPECT_EQ(hit.score, 100);
    EXPECT_EQ(after, before);
}

} // namespace
} // namespace pgb::align
