/**
 * @file
 * Tests for superbubble detection and variant deconstruction,
 * including the whole-stack round trip: inject variants with the
 * simulator, rediscover them from the graph, and check positions,
 * alleles, and GBWT-counted haplotype support against ground truth.
 */

#include <gtest/gtest.h>

#include <map>

#include "analysis/deconstruct.hpp"
#include "synth/pangenome_sim.hpp"

namespace pgb::analysis {
namespace {

using graph::Handle;
using graph::NodeId;
using graph::PanGraph;
using seq::Sequence;

/** source -> {refseg | alt} -> sink, plus a deletion edge. */
PanGraph
snpAndDeletionGraph()
{
    PanGraph g;
    const NodeId src = g.addNode(Sequence("", "ACGT")); // 0
    const NodeId ref = g.addNode(Sequence("", "G"));    // 1
    const NodeId alt = g.addNode(Sequence("", "T"));    // 2
    const NodeId sink = g.addNode(Sequence("", "CCAA"));// 3
    g.addEdge(Handle(src, false), Handle(ref, false));
    g.addEdge(Handle(src, false), Handle(alt, false));
    g.addEdge(Handle(ref, false), Handle(sink, false));
    g.addEdge(Handle(alt, false), Handle(sink, false));
    g.addEdge(Handle(src, false), Handle(sink, false)); // deletion
    g.addPath("ref", {Handle(src, false), Handle(ref, false),
                      Handle(sink, false)});
    g.addPath("h1", {Handle(src, false), Handle(alt, false),
                     Handle(sink, false)});
    g.addPath("h2", {Handle(src, false), Handle(sink, false)});
    return g;
}

TEST(Superbubble, DetectsSimpleBubble)
{
    const PanGraph g = snpAndDeletionGraph();
    const auto bubble = findSuperbubble(g, Handle(0, false));
    ASSERT_TRUE(bubble.has_value());
    EXPECT_EQ(bubble->source, Handle(0, false));
    EXPECT_EQ(bubble->sink, Handle(3, false));
}

TEST(Superbubble, NoBubbleFromLinearNode)
{
    PanGraph g;
    const NodeId a = g.addNode(Sequence("", "AC"));
    const NodeId b = g.addNode(Sequence("", "GT"));
    g.addEdge(Handle(a, false), Handle(b, false));
    EXPECT_FALSE(findSuperbubble(g, Handle(a, false)).has_value());
}

TEST(Superbubble, RejectsCycleToSource)
{
    PanGraph g;
    const NodeId a = g.addNode(Sequence("", "AC"));
    const NodeId b = g.addNode(Sequence("", "G"));
    const NodeId c = g.addNode(Sequence("", "T"));
    g.addEdge(Handle(a, false), Handle(b, false));
    g.addEdge(Handle(a, false), Handle(c, false));
    g.addEdge(Handle(b, false), Handle(a, false));
    g.addEdge(Handle(c, false), Handle(a, false));
    EXPECT_FALSE(findSuperbubble(g, Handle(a, false)).has_value());
}

TEST(Deconstruct, ReportsAllelesAndSupport)
{
    const PanGraph g = snpAndDeletionGraph();
    const auto variants = deconstructVariants(g, 0);
    ASSERT_EQ(variants.size(), 1u);
    const auto &v = variants[0];
    EXPECT_EQ(v.refPosition, 4u); // after "ACGT"
    EXPECT_EQ(v.refAllele, "G");
    ASSERT_EQ(v.altAlleles.size(), 2u);
    // Alleles: "T" (h1) and "" (h2's deletion).
    std::map<std::string, uint32_t> support;
    for (size_t a = 0; a < v.altAlleles.size(); ++a)
        support[v.altAlleles[a]] = v.altSupport[a];
    EXPECT_EQ(v.refSupport, 1u);
    ASSERT_TRUE(support.count("T"));
    ASSERT_TRUE(support.count(""));
    EXPECT_EQ(support["T"], 1u);
    EXPECT_EQ(support[""], 1u);
}

TEST(Deconstruct, RoundTripRecoversInjectedVariants)
{
    // Simulate a pangenome, then rediscover its variant pool from the
    // graph alone.
    const auto pangenome =
        synth::simulatePangenome(synth::mGraphLikeConfig(20000, 99));
    const auto variants =
        deconstructVariants(pangenome.graph, pangenome.referencePath);

    // Ground truth indexed by reference position.
    std::map<uint64_t, const synth::Variant *> truth;
    for (const auto &v : pangenome.variants)
        truth[v.pos] = &v;

    ASSERT_GT(variants.size(), truth.size() / 2);
    size_t matched = 0;
    size_t support_checked = 0;
    for (const auto &found : variants) {
        const auto it = truth.find(found.refPosition);
        if (it == truth.end())
            continue;
        const synth::Variant &injected = *it->second;
        ++matched;
        // Carrier count must equal the GBWT-reported alt support for
        // the allele that matches the injected alternative.
        size_t carriers = 0;
        for (bool c : injected.carriers)
            carriers += c ? 1 : 0;
        std::string alt_spelled;
        switch (injected.type) {
          case synth::Variant::Type::kSnp:
          case synth::Variant::Type::kInsertion:
            alt_spelled = seq::decodeString(injected.altSeq);
            break;
          case synth::Variant::Type::kDeletion:
            alt_spelled = "";
            break;
          case synth::Variant::Type::kInversion:
            continue; // reported as unresolved; skip
        }
        for (size_t a = 0; a < found.altAlleles.size(); ++a) {
            if (found.altAlleles[a] == alt_spelled) {
                EXPECT_EQ(found.altSupport[a], carriers)
                    << "at ref position " << found.refPosition;
                ++support_checked;
            }
        }
    }
    // The overwhelming majority of sites round-trip exactly.
    EXPECT_GT(matched, variants.size() * 8 / 10);
    EXPECT_GT(support_checked, matched * 8 / 10);
}

TEST(Deconstruct, RefSupportCountsNonCarriers)
{
    const auto pangenome =
        synth::simulatePangenome(synth::mGraphLikeConfig(8000, 100));
    const auto variants =
        deconstructVariants(pangenome.graph, pangenome.referencePath);
    ASSERT_FALSE(variants.empty());
    // Total support (ref + alts) at a biallelic site equals the
    // number of haplotype paths traversing it (14 haplotypes + ref).
    size_t checked = 0;
    for (const auto &v : variants) {
        if (v.altAlleles.size() != 1)
            continue;
        const uint32_t total = v.refSupport + v.altSupport[0];
        EXPECT_EQ(total,
                  pangenome.graph.pathCount())
            << "at " << v.refPosition;
        ++checked;
    }
    EXPECT_GT(checked, 0u);
}

} // namespace
} // namespace pgb::analysis
