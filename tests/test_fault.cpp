/**
 * @file
 * Fault-injection tests: every registered fault site is armed and the
 * documented recovery (Arena degradation, checked-write FatalError) or
 * the documented clean propagation (worker exceptions rethrown on the
 * calling thread) is asserted. No path may reach std::terminate.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "build/transclosure.hpp"
#include "core/arena.hpp"
#include "core/fault.hpp"
#include "core/io.hpp"
#include "core/logging.hpp"
#include "core/thread_pool.hpp"
#include "graph/gfa.hpp"
#include "pipeline/mapper.hpp"
#include "seq/fasta.hpp"
#include "seq/read_sim.hpp"
#include "synth/pangenome_sim.hpp"

namespace pgb {
namespace {

using core::Arena;
using core::FatalError;
using core::FaultSite;
using core::PanicError;

/** A site owned by the tests for registry/trigger semantics. */
FaultSite testSite("test.site");

class FaultTest : public ::testing::Test
{
  protected:
    void SetUp() override { core::fault::disarmAll(); }
    void TearDown() override { core::fault::disarmAll(); }
};

// ----------------------------------------------------- registry

TEST_F(FaultTest, RegistryListsEveryProductionSite)
{
    // This is the suite's site inventory: adding a FaultSite without
    // covering it here (and below) is a test failure by design.
    const auto sites = core::fault::sites();
    const std::vector<std::string> expected = {
        "arena.ftruncate",  "arena.mmap",      "arena.open",
        "io.flush",         "mapper.read",     "serve.accept",
        "serve.read",       "serve.reload",    "serve.stall",
        "serve.write",      "store.checksum",  "store.manifest",
        "store.mmap",       "store.open",      "store.section",
        "test.chaos.other", "test.chaos.twin", "test.chaos.twin",
        "test.obs.site",    "test.site",       "threadpool.for",
        "threadpool.run",
    };
    EXPECT_EQ(sites, expected);
}

TEST_F(FaultTest, EveryProductionSiteDocumentsItsRecovery)
{
    // `pgb fault-sites` is operator documentation; an empty recovery
    // column would make the catalog useless for the sites that matter.
    for (const auto &info : core::fault::siteInfos()) {
        if (info.name.rfind("test.", 0) == 0)
            continue; // test-owned sites need no operator docs
        EXPECT_FALSE(info.recovery.empty())
            << info.name << " has no recovery documentation";
    }
}

TEST_F(FaultTest, DisarmedSiteNeverFires)
{
    for (int i = 0; i < 1000; ++i)
        EXPECT_FALSE(testSite.fire());
}

TEST_F(FaultTest, FiresExactlyOnTheNthHit)
{
    core::fault::arm("test.site", 3);
    EXPECT_TRUE(core::fault::armed("test.site"));
    EXPECT_FALSE(testSite.fire());
    EXPECT_FALSE(testSite.fire());
    EXPECT_TRUE(testSite.fire());
    // One-shot: fires once, then disarms.
    EXPECT_FALSE(testSite.fire());
    EXPECT_FALSE(core::fault::armed("test.site"));
}

TEST_F(FaultTest, DisarmCancelsPendingTrigger)
{
    core::fault::arm("test.site", 1);
    core::fault::disarm("test.site");
    EXPECT_FALSE(testSite.fire());
}

TEST_F(FaultTest, ConfigureParsesPgbFaultSyntax)
{
    core::fault::configure("test.site:2,threadpool.for");
    EXPECT_TRUE(core::fault::armed("test.site"));
    EXPECT_TRUE(core::fault::armed("threadpool.for"));
    EXPECT_FALSE(testSite.fire());
    EXPECT_TRUE(testSite.fire());
    core::fault::disarmAll();
    EXPECT_FALSE(core::fault::armed("threadpool.for"));
}

TEST_F(FaultTest, ConfigureIgnoresMalformedEntriesWithWarning)
{
    core::fault::configure("test.site:banana,,test.site:0");
    EXPECT_FALSE(core::fault::armed("test.site"));
}

TEST_F(FaultTest, ArmUnregisteredSiteStaysPending)
{
    core::fault::arm("not.a.site", 1);
    EXPECT_FALSE(core::fault::armed("not.a.site"));
    core::fault::disarmAll();
}

// -------------------------------------------------- thread pool

TEST_F(FaultTest, ParallelForPropagatesInjectedFatalError)
{
    core::fault::arm("threadpool.for", 3);
    std::atomic<size_t> visited(0);
    EXPECT_THROW(core::parallelFor(0, 100000, 8,
                                   [&](size_t) { ++visited; }),
                 FatalError);
    // The gang drained and joined: some work ran, not all of it.
    EXPECT_LT(visited.load(), 100000u);
}

TEST_F(FaultTest, ParallelForInlinePathFiresTheSameSite)
{
    core::fault::arm("threadpool.for", 1);
    EXPECT_THROW(core::parallelFor(0, 10, 1, [](size_t) {}),
                 FatalError);
}

TEST_F(FaultTest, ParallelForPropagatesBodyExceptions)
{
    // No fault site involved: a worker body that panics must surface
    // on the calling thread, not std::terminate.
    EXPECT_THROW(
        core::parallelFor(0, 10000, 8,
                          [](size_t i) {
                              if (i == 1234)
                                  core::panic("worker invariant");
                          }),
        PanicError);
}

TEST_F(FaultTest, ParallelForKeepsFirstExceptionOnly)
{
    // Every chunk throws; exactly one exception must come back.
    try {
        core::parallelFor(0, 10000, 8, [](size_t) {
            core::fatal("boom");
        });
        FAIL() << "parallelFor did not rethrow";
    } catch (const FatalError &error) {
        EXPECT_STREQ(error.what(), "fatal: boom");
    }
}

TEST_F(FaultTest, ParallelForCompletesWhenDisarmed)
{
    std::atomic<size_t> visited(0);
    core::parallelFor(0, 5000, 4, [&](size_t) { ++visited; });
    EXPECT_EQ(visited.load(), 5000u);
}

TEST_F(FaultTest, ParallelRunPropagatesInjectedFatalError)
{
    core::fault::arm("threadpool.run", 2);
    std::atomic<unsigned> started(0);
    EXPECT_THROW(core::parallelRun(4, [&](unsigned) { ++started; }),
                 FatalError);
    EXPECT_LT(started.load(), 4u);
}

TEST_F(FaultTest, ParallelRunSingleThreadFiresTheSameSite)
{
    core::fault::arm("threadpool.run", 1);
    EXPECT_THROW(core::parallelRun(1, [](unsigned) {}), FatalError);
}

TEST_F(FaultTest, ParallelRunPropagatesBodyExceptions)
{
    EXPECT_THROW(core::parallelRun(4,
                                   [](unsigned t) {
                                       if (t == 3)
                                           core::fatal("worker 3 died");
                                   }),
                 FatalError);
}

// -------------------------------------------------------- arena

TEST_F(FaultTest, ArenaOpenFailureDegradesToMemory)
{
    core::fault::arm("arena.open", 1);
    Arena arena(Arena::Mode::kFileBacked);
    EXPECT_EQ(arena.mode(), Arena::Mode::kInMemory);
    EXPECT_TRUE(arena.path().empty());
    const char payload[] = "still works";
    const size_t offset = arena.append(payload, sizeof(payload));
    EXPECT_EQ(std::memcmp(arena.at(offset), payload, sizeof(payload)),
              0);
}

TEST_F(FaultTest, ArenaTruncateFailureDegradesToMemory)
{
    core::fault::arm("arena.ftruncate", 1);
    Arena arena(Arena::Mode::kFileBacked);
    EXPECT_EQ(arena.mode(), Arena::Mode::kFileBacked);
    const uint32_t value = 0xDEADBEEF;
    arena.append(&value, sizeof(value)); // first grow hits the fault
    EXPECT_EQ(arena.mode(), Arena::Mode::kInMemory);
    uint32_t read_back = 0;
    std::memcpy(&read_back, arena.at(0), sizeof(read_back));
    EXPECT_EQ(read_back, value);
}

TEST_F(FaultTest, ArenaMmapFailureDegradesToMemory)
{
    core::fault::arm("arena.mmap", 1);
    Arena arena(Arena::Mode::kFileBacked);
    const uint32_t value = 0x5EED;
    arena.append(&value, sizeof(value));
    EXPECT_EQ(arena.mode(), Arena::Mode::kInMemory);
    uint32_t read_back = 0;
    std::memcpy(&read_back, arena.at(0), sizeof(read_back));
    EXPECT_EQ(read_back, value);
}

TEST_F(FaultTest, ArenaMidGrowthDegradationPreservesContents)
{
    // First grow succeeds file-backed; the second (past 1 MiB) hits
    // the mmap fault, so the fallback must copy live contents over.
    core::fault::arm("arena.mmap", 2);
    Arena arena(Arena::Mode::kFileBacked);
    std::vector<uint8_t> block(4096);
    const size_t blocks = (2u << 20) / block.size();
    for (size_t b = 0; b < blocks; ++b) {
        for (size_t i = 0; i < block.size(); ++i)
            block[i] = static_cast<uint8_t>((b * 31 + i) & 0xFF);
        arena.append(block.data(), block.size());
    }
    EXPECT_EQ(arena.mode(), Arena::Mode::kInMemory);
    for (size_t b = 0; b < blocks; ++b) {
        const uint8_t *data = arena.at(b * block.size());
        for (size_t i = 0; i < block.size(); ++i)
            ASSERT_EQ(data[i],
                      static_cast<uint8_t>((b * 31 + i) & 0xFF));
    }
}

// ------------------------------------------- transclose threading

std::string
transcloseToGfa(bool file_backed)
{
    const auto pangenome =
        synth::simulatePangenome(synth::mGraphLikeConfig(6000, 99));
    std::vector<seq::Sequence> seqs;
    seqs.push_back(pangenome.reference);
    for (const auto &hap : pangenome.haplotypes)
        seqs.push_back(hap);
    const build::SequenceCatalog catalog(seqs);
    std::vector<build::MatchSegment> matches;
    for (const auto &m : synth::groundTruthMatches(pangenome)) {
        matches.push_back(
            {catalog.globalOffset(0, m.refStart),
             catalog.globalOffset(m.haplotype + 1, m.hapStart),
             m.length});
    }
    build::TcOptions options;
    options.fileBackedMatches = file_backed;
    const auto result = build::transclose(catalog, matches, options);
    std::ostringstream gfa;
    graph::writeGfa(gfa, result.graph);
    return gfa.str();
}

TEST_F(FaultTest, TranscloseSurvivesArenaDegradationIdentically)
{
    const std::string healthy = transcloseToGfa(false);
    core::fault::arm("arena.open", 1);
    const std::string degraded = transcloseToGfa(true);
    EXPECT_EQ(degraded, healthy);
    core::fault::disarmAll();
    const std::string file_backed = transcloseToGfa(true);
    EXPECT_EQ(file_backed, healthy);
}

// -------------------------------------------------------- mapper

TEST_F(FaultTest, MapReadsPropagatesWorkerFault)
{
    const auto pangenome =
        synth::simulatePangenome(synth::mGraphLikeConfig(20000, 7));
    seq::ReadSimulator sim(seq::ReadProfile::shortRead(), 0x11);
    std::vector<seq::Sequence> reads;
    for (size_t r = 0; r < 32; ++r) {
        auto read = sim.sample(
            pangenome.haplotypes[r % pangenome.haplotypes.size()]);
        std::string name = "r";
        name += std::to_string(r);
        read.read.setName(std::move(name));
        reads.push_back(std::move(read.read));
    }
    auto config =
        pipeline::MapperConfig::forTool(pipeline::ToolProfile::kVgMap);
    config.threads = 4;
    const pipeline::Seq2GraphMapper mapper(pangenome.graph, config);

    core::fault::arm("mapper.read", 5);
    EXPECT_THROW(mapper.mapReads(reads), FatalError);

    // Same mapper, disarmed: the batch completes normally.
    const auto report = mapper.mapReads(reads);
    EXPECT_EQ(report.reads, reads.size());
    EXPECT_GT(report.mappedReads, 0u);
}

// ------------------------------------------------ checked writes

TEST_F(FaultTest, CheckedWriterInjectedFlushFailureIsFatal)
{
    const std::string path =
        ::testing::TempDir() + "pgb_fault_writer.txt";
    core::fault::arm("io.flush", 1);
    core::CheckedWriter writer(path);
    writer.stream() << "payload\n";
    EXPECT_THROW(writer.finish(), FatalError);
    std::remove(path.c_str());
}

TEST_F(FaultTest, CheckedWriterUnwritablePathIsFatal)
{
    EXPECT_THROW(
        core::CheckedWriter("/nonexistent-dir/pgb_fault/out.txt"),
        FatalError);
}

TEST_F(FaultTest, CheckedWriterCleanPathSucceeds)
{
    const std::string path =
        ::testing::TempDir() + "pgb_fault_writer_ok.txt";
    core::CheckedWriter writer(path);
    writer.stream() << "ok\n";
    writer.finish();
    std::remove(path.c_str());
}

TEST_F(FaultTest, WriteGfaFilePropagatesInjectedWriteFailure)
{
    graph::PanGraph g;
    g.addNode(seq::Sequence("s", "ACGT"));
    const std::string path = ::testing::TempDir() + "pgb_fault.gfa";
    core::fault::arm("io.flush", 1);
    EXPECT_THROW(graph::writeGfaFile(path, g), FatalError);
    std::remove(path.c_str());
}

TEST_F(FaultTest, WriteFastaFilePropagatesInjectedWriteFailure)
{
    std::vector<seq::Sequence> records;
    records.emplace_back("a", "ACGT");
    const std::string path = ::testing::TempDir() + "pgb_fault.fa";
    core::fault::arm("io.flush", 1);
    EXPECT_THROW(seq::writeFastaFile(path, records), FatalError);
    std::remove(path.c_str());
}

TEST_F(FaultTest, WriteFastqFilePropagatesInjectedWriteFailure)
{
    std::vector<seq::Sequence> records;
    records.emplace_back("a", "ACGT");
    const std::string path = ::testing::TempDir() + "pgb_fault.fq";
    core::fault::arm("io.flush", 1);
    EXPECT_THROW(seq::writeFastqFile(path, records), FatalError);
    std::remove(path.c_str());
}

// --------------------------------------------------------- chaos

/** Two independently-counting sites with the same name: the chaos
 *  decision must depend only on (seed, name, hit index), never on
 *  object identity — that is what makes runs reproducible. */
FaultSite chaosSiteA("test.chaos.twin");
FaultSite chaosSiteB("test.chaos.twin");
FaultSite chaosSiteOther("test.chaos.other");

class ChaosSchedule : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        core::fault::disarmAll();
        core::fault::chaosOff();
    }
    void
    TearDown() override
    {
        core::fault::disarmAll();
        core::fault::chaosOff();
    }

    /** Record which of the next @p n hits on @p site fire. */
    static std::vector<bool>
    pattern(FaultSite &site, size_t n)
    {
        std::vector<bool> fired(n);
        for (size_t i = 0; i < n; ++i)
            fired[i] = site.fire();
        return fired;
    }
};

TEST_F(ChaosSchedule, DisabledByDefault)
{
    EXPECT_FALSE(core::fault::chaosEnabled());
    for (int i = 0; i < 1000; ++i)
        EXPECT_FALSE(chaosSiteOther.fire());
}

TEST_F(ChaosSchedule, ProbabilityZeroNeverFires)
{
    core::fault::chaos(1234, 0.0);
    EXPECT_TRUE(core::fault::chaosEnabled());
    for (int i = 0; i < 2000; ++i)
        EXPECT_FALSE(chaosSiteOther.fire());
}

TEST_F(ChaosSchedule, ProbabilityOneAlwaysFires)
{
    core::fault::chaos(1234, 1.0);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(chaosSiteOther.fire());
}

TEST_F(ChaosSchedule, SameSeedSameSiteNameSamePattern)
{
    // chaosSiteA and chaosSiteB share a name but count hits
    // separately, so over the same hit-index range they must produce
    // bit-identical fire patterns — the reproducibility contract.
    core::fault::chaos(0xC0FFEE, 0.25);
    const auto a = pattern(chaosSiteA, 512);
    const auto b = pattern(chaosSiteB, 512);
    EXPECT_EQ(a, b);
    EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
}

TEST_F(ChaosSchedule, DifferentSeedsDecorrelate)
{
    core::fault::chaos(1, 0.25);
    const auto a = pattern(chaosSiteA, 512);
    core::fault::chaosOff();
    core::fault::chaos(2, 0.25);
    const auto b = pattern(chaosSiteB, 512);
    EXPECT_NE(a, b);
}

TEST_F(ChaosSchedule, FireRateTracksProbabilityLoosely)
{
    core::fault::chaos(77, 0.1);
    size_t fired = 0;
    const size_t trials = 20000;
    for (size_t i = 0; i < trials; ++i)
        fired += chaosSiteOther.fire() ? 1 : 0;
    // 0.1 ± a wide margin: this guards gross miscalibration (e.g.
    // threshold math off by 2x), not the distribution's quality.
    EXPECT_GT(fired, trials / 20);   // > 0.05
    EXPECT_LT(fired, trials * 3 / 20); // < 0.15
}

TEST_F(ChaosSchedule, OneShotTriggersStillFireUnderChaos)
{
    // Chaos layers under the deterministic one-shot triggers: arming
    // a site keeps its guarantee even with p = 0.
    core::fault::chaos(99, 0.0);
    core::fault::arm("test.chaos.other", 2);
    EXPECT_FALSE(chaosSiteOther.fire());
    EXPECT_TRUE(chaosSiteOther.fire());
    EXPECT_FALSE(chaosSiteOther.fire());
}

TEST_F(ChaosSchedule, ChaosOffRestoresQuiet)
{
    core::fault::chaos(5, 1.0);
    EXPECT_TRUE(chaosSiteOther.fire());
    core::fault::chaosOff();
    EXPECT_FALSE(core::fault::chaosEnabled());
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(chaosSiteOther.fire());
}

} // namespace
} // namespace pgb
