/**
 * @file
 * Tests for src/seq: alphabet, Sequence, FASTA/FASTQ IO, and the read
 * simulator's error model.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/logging.hpp"
#include "core/rng.hpp"
#include "seq/alphabet.hpp"
#include "seq/fasta.hpp"
#include "seq/read_sim.hpp"
#include "seq/sequence.hpp"

namespace pgb::seq {
namespace {

// ---------------------------------------------------------- Alphabet

TEST(Alphabet, EncodeDecodeRoundTrip)
{
    for (char c : {'A', 'C', 'G', 'T'})
        EXPECT_EQ(decodeBase(encodeBase(c)), c);
    EXPECT_EQ(decodeBase(encodeBase('a')), 'A');
    EXPECT_EQ(decodeBase(encodeBase('N')), 'N');
    EXPECT_EQ(decodeBase(encodeBase('x')), 'N');
}

TEST(Alphabet, ComplementPairs)
{
    EXPECT_EQ(complementChar('A'), 'T');
    EXPECT_EQ(complementChar('T'), 'A');
    EXPECT_EQ(complementChar('C'), 'G');
    EXPECT_EQ(complementChar('G'), 'C');
    EXPECT_EQ(complementChar('N'), 'N');
}

TEST(Alphabet, ComplementIsInvolution)
{
    for (uint8_t code = 0; code < kNumBases; ++code)
        EXPECT_EQ(complementBase(complementBase(code)), code);
}

// ---------------------------------------------------------- Sequence

TEST(Sequence, ConstructionAndAccess)
{
    Sequence s("read1", "ACGTN");
    EXPECT_EQ(s.name(), "read1");
    EXPECT_EQ(s.size(), 5u);
    EXPECT_EQ(s[0], 0);
    EXPECT_EQ(s[3], 3);
    EXPECT_EQ(s[4], kBaseN);
    EXPECT_EQ(s.toString(), "ACGTN");
}

TEST(Sequence, ReverseComplement)
{
    Sequence s("", "AACGT");
    EXPECT_EQ(s.reverseComplement().toString(), "ACGTT");
}

TEST(Sequence, ReverseComplementIsInvolution)
{
    core::Rng rng(5);
    for (int round = 0; round < 20; ++round) {
        std::vector<uint8_t> codes;
        const size_t len = 1 + rng.below(500);
        for (size_t i = 0; i < len; ++i)
            codes.push_back(static_cast<uint8_t>(rng.below(4)));
        Sequence s(codes);
        EXPECT_EQ(s.reverseComplement().reverseComplement(), s);
    }
}

TEST(Sequence, SliceClampsToEnd)
{
    Sequence s("", "ACGTACGT");
    EXPECT_EQ(s.slice(2, 3).toString(), "GTA");
    EXPECT_EQ(s.slice(6, 100).toString(), "GT");
    EXPECT_EQ(s.slice(8, 4).size(), 0u);
}

TEST(Sequence, Append)
{
    Sequence a("", "AC");
    Sequence b("", "GT");
    a.append(b);
    EXPECT_EQ(a.toString(), "ACGT");
}

// ------------------------------------------------------------- FASTA

TEST(Fasta, ParsesMultiRecordMultiLine)
{
    std::istringstream input(
        ">chr1 description text\nACGT\nACGT\n>chr2\nTTTT\n");
    const auto records = readFasta(input);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].name(), "chr1");
    EXPECT_EQ(records[0].toString(), "ACGTACGT");
    EXPECT_EQ(records[1].name(), "chr2");
    EXPECT_EQ(records[1].toString(), "TTTT");
}

TEST(Fasta, RoundTrip)
{
    std::vector<Sequence> records;
    records.emplace_back("a", "ACGTACGTACGT");
    records.emplace_back("b", "GGGG");
    std::ostringstream out;
    writeFasta(out, records, 5);
    std::istringstream in(out.str());
    const auto parsed = readFasta(in);
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[0].toString(), records[0].toString());
    EXPECT_EQ(parsed[1].toString(), records[1].toString());
}

TEST(Fasta, RejectsDataBeforeHeader)
{
    std::istringstream input("ACGT\n>x\nAC\n");
    EXPECT_THROW(readFasta(input), core::FatalError);
}

TEST(Fastq, ParsesAndValidates)
{
    std::istringstream input("@r1\nACGT\n+\nIIII\n@r2\nGG\n+\nII\n");
    const auto records = readFastq(input);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].name(), "r1");
    EXPECT_EQ(records[1].toString(), "GG");
}

TEST(Fastq, RejectsQualityLengthMismatch)
{
    std::istringstream input("@r1\nACGT\n+\nII\n");
    EXPECT_THROW(readFastq(input), core::FatalError);
}

TEST(Fastq, RoundTrip)
{
    std::vector<Sequence> records;
    records.emplace_back("q", "ACACAC");
    std::ostringstream out;
    writeFastq(out, records);
    std::istringstream in(out.str());
    const auto parsed = readFastq(in);
    ASSERT_EQ(parsed.size(), 1u);
    EXPECT_EQ(parsed[0].toString(), "ACACAC");
}

// ----------------------------------------------------- ReadSimulator

TEST(ReadSimulator, DeterministicInSeed)
{
    Sequence donor("", std::string(2000, 'A'));
    // Use a varied donor.
    core::Rng rng(9);
    for (auto &code : donor.codes())
        code = static_cast<uint8_t>(rng.below(4));
    ReadSimulator sim_a(ReadProfile::shortRead(), 77);
    ReadSimulator sim_b(ReadProfile::shortRead(), 77);
    for (int i = 0; i < 10; ++i) {
        const auto a = sim_a.sample(donor);
        const auto b = sim_b.sample(donor);
        EXPECT_EQ(a.read, b.read);
        EXPECT_EQ(a.donorStart, b.donorStart);
    }
}

TEST(ReadSimulator, ShortReadLengthNearProfile)
{
    Sequence donor("", std::string(5000, 'C'));
    ReadSimulator sim(ReadProfile::shortRead(), 1);
    for (int i = 0; i < 50; ++i) {
        const auto read = sim.sample(donor);
        // Indels change length by a couple of bases at most.
        EXPECT_NEAR(static_cast<double>(read.read.size()), 150.0, 6.0);
        EXPECT_LE(read.donorStart + read.donorSpan, donor.size());
    }
}

TEST(ReadSimulator, ErrorRateApproximatelyHonored)
{
    core::Rng rng(10);
    std::vector<uint8_t> codes;
    for (int i = 0; i < 100000; ++i)
        codes.push_back(static_cast<uint8_t>(rng.below(4)));
    Sequence donor(codes);

    ReadProfile profile;
    profile.readLength = 2000;
    profile.substitutionRate = 0.02;
    profile.insertionRate = 0.0;
    profile.deletionRate = 0.0;
    profile.reverseStrand = false;
    ReadSimulator sim(profile, 3);

    uint64_t mismatches = 0, bases = 0;
    for (int r = 0; r < 50; ++r) {
        const auto read = sim.sample(donor);
        ASSERT_EQ(read.read.size(), 2000u);
        for (size_t i = 0; i < read.read.size(); ++i) {
            mismatches +=
                read.read[i] != donor[read.donorStart + i] ? 1 : 0;
            ++bases;
        }
    }
    const double rate =
        static_cast<double>(mismatches) / static_cast<double>(bases);
    EXPECT_NEAR(rate, 0.02, 0.005);
}

TEST(ReadSimulator, ReverseStrandReadsMatchRcOfDonor)
{
    core::Rng rng(12);
    std::vector<uint8_t> codes;
    for (int i = 0; i < 3000; ++i)
        codes.push_back(static_cast<uint8_t>(rng.below(4)));
    Sequence donor(codes);

    ReadProfile profile;
    profile.readLength = 100;
    profile.substitutionRate = 0.0;
    profile.insertionRate = 0.0;
    profile.deletionRate = 0.0;
    ReadSimulator sim(profile, 5);
    bool saw_reverse = false;
    for (int r = 0; r < 40; ++r) {
        const auto read = sim.sample(donor);
        Sequence expected =
            donor.slice(read.donorStart, read.donorSpan);
        if (read.reverse) {
            expected = expected.reverseComplement();
            saw_reverse = true;
        }
        EXPECT_EQ(read.read, expected);
    }
    EXPECT_TRUE(saw_reverse);
}

TEST(ReadSimulator, LongReadProfileJittersLength)
{
    core::Rng rng(14);
    std::vector<uint8_t> codes;
    for (int i = 0; i < 200000; ++i)
        codes.push_back(static_cast<uint8_t>(rng.below(4)));
    Sequence donor(codes);
    ReadSimulator sim(ReadProfile::longRead(), 8);
    size_t min_len = SIZE_MAX, max_len = 0;
    for (int r = 0; r < 30; ++r) {
        const auto read = sim.sample(donor);
        min_len = std::min(min_len, read.read.size());
        max_len = std::max(max_len, read.read.size());
    }
    EXPECT_LT(min_len, 14000u);
    EXPECT_GT(max_len, 16000u);
}

TEST(ReadSimulator, SampleManyNamesReads)
{
    Sequence donor("", std::string(1000, 'G'));
    ReadSimulator sim(ReadProfile::shortRead(), 2);
    const auto reads = sim.sampleMany(donor, 3);
    ASSERT_EQ(reads.size(), 3u);
    EXPECT_EQ(reads[0].read.name(), "read_0");
    EXPECT_EQ(reads[2].read.name(), "read_2");
}

} // namespace
} // namespace pgb::seq
