/**
 * @file
 * pgb::store tests: `.pgbi` round-trip fidelity, zero-copy view
 * behavior, and the fail-closed loading contract (corrupted,
 * truncated, and version-mismatched artifacts are one-line
 * FatalErrors, never crashes).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "core/fault.hpp"
#include "core/logging.hpp"
#include "graph/gfa.hpp"
#include "index/gbwt.hpp"
#include "index/minimizer.hpp"
#include "store/format.hpp"
#include "store/store.hpp"
#include "synth/pangenome_sim.hpp"

namespace {

using namespace pgb;

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

std::string
gfaText(const graph::PanGraph &graph)
{
    std::ostringstream out;
    graph::writeGfa(out, graph);
    return out.str();
}

/** A small fixed-seed pangenome, its indexes, and a written artifact
 *  shared by every test (written once into gtest's temp dir). */
struct StoreFixture
{
    synth::Pangenome pangenome;
    std::unique_ptr<index::MinimizerIndex> minimizers;
    std::unique_ptr<index::GbwtIndex> gbwt;
    std::string artifactPath;

    StoreFixture()
    {
        pangenome =
            synth::simulatePangenome(synth::mGraphLikeConfig(5000, 3));
        minimizers = std::make_unique<index::MinimizerIndex>(
            pangenome.graph, 15, 10);
        gbwt = std::make_unique<index::GbwtIndex>(pangenome.graph);
        artifactPath = testing::TempDir() + "pgb_store_fixture.pgbi";
        store::writeArtifact(artifactPath, pangenome.graph,
                             *minimizers, gbwt.get());
    }
};

const StoreFixture &
fixture()
{
    static StoreFixture instance;
    return instance;
}

/** Copy the fixture artifact to @p name inside the temp dir. */
std::string
copyArtifact(const std::string &name)
{
    const std::string dst = testing::TempDir() + name;
    std::ifstream in(fixture().artifactPath, std::ios::binary);
    std::ofstream out(dst, std::ios::binary | std::ios::trunc);
    out << in.rdbuf();
    return dst;
}

// ---- round-trip fidelity ---------------------------------------------

TEST(StoreRoundTrip, GraphIsByteIdentical)
{
    const auto artifact = store::Artifact::load(fixture().artifactPath);
    EXPECT_EQ(gfaText(artifact->graph()), gfaText(fixture().pangenome.graph));
    EXPECT_EQ(artifact->graph().nodeCount(),
              fixture().pangenome.graph.nodeCount());
    EXPECT_EQ(artifact->graph().pathCount(),
              fixture().pangenome.graph.pathCount());
}

TEST(StoreRoundTrip, MinimizerIndexIsZeroCopyViewWithEqualContent)
{
    const auto artifact = store::Artifact::load(fixture().artifactPath);
    const auto &loaded = artifact->minimizers();
    const auto &built = *fixture().minimizers;

    EXPECT_TRUE(loaded.isView());
    EXPECT_FALSE(built.isView());
    EXPECT_EQ(loaded.k(), built.k());
    EXPECT_EQ(loaded.w(), built.w());
    EXPECT_EQ(artifact->k(), built.k());
    EXPECT_EQ(artifact->w(), built.w());
    ASSERT_EQ(loaded.distinctMinimizers(), built.distinctMinimizers());
    ASSERT_EQ(loaded.totalOccurrences(), built.totalOccurrences());

    // Every hash resolves to the same occurrence list in both.
    for (const auto &entry : built.flatTable()) {
        const auto a = built.occurrences(entry.hash);
        const auto b = loaded.occurrences(entry.hash);
        ASSERT_EQ(a.size(), b.size()) << "hash " << entry.hash;
        for (size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].node, b[i].node);
            EXPECT_EQ(a[i].offset, b[i].offset);
            EXPECT_EQ(a[i].reverse, b[i].reverse);
        }
    }
    // And a hash that is not in the table resolves to nothing.
    EXPECT_TRUE(loaded.occurrences(0xdeadbeefdeadbeefull).empty());
}

TEST(StoreRoundTrip, GbwtAnswersIdenticalQueries)
{
    const auto artifact = store::Artifact::load(fixture().artifactPath);
    ASSERT_NE(artifact->gbwt(), nullptr);
    const auto &loaded = *artifact->gbwt();
    const auto &built = *fixture().gbwt;

    const auto a = built.stats();
    const auto b = loaded.stats();
    EXPECT_EQ(a.records, b.records);
    EXPECT_EQ(a.totalVisits, b.totalVisits);
    EXPECT_EQ(a.totalRuns, b.totalRuns);
    EXPECT_EQ(loaded.runLengthEncoded(), built.runLengthEncoded());

    // find() along real haplotype subpaths returns identical ranges.
    const auto &graph = fixture().pangenome.graph;
    ASSERT_GT(graph.pathCount(), 0u);
    for (graph::PathId p = 0; p < graph.pathCount(); ++p) {
        const auto &steps = graph.pathSteps(p);
        const size_t take = std::min<size_t>(steps.size(), 12);
        const std::span<const graph::Handle> prefix(steps.data(), take);
        const auto ra = built.find(prefix);
        const auto rb = loaded.find(prefix);
        EXPECT_EQ(ra.node, rb.node);
        EXPECT_EQ(ra.begin, rb.begin);
        EXPECT_EQ(ra.end, rb.end);
        EXPECT_FALSE(rb.empty());
    }
}

TEST(StoreRoundTrip, ArtifactWithoutGbwtLoadsWithNullGbwt)
{
    const std::string path = testing::TempDir() + "no_gbwt.pgbi";
    store::writeArtifact(path, fixture().pangenome.graph,
                         *fixture().minimizers, nullptr);
    const auto artifact = store::Artifact::load(path);
    EXPECT_EQ(artifact->gbwt(), nullptr);
    EXPECT_EQ(gfaText(artifact->graph()),
              gfaText(fixture().pangenome.graph));
    std::remove(path.c_str());
}

TEST(StoreRoundTrip, RewriteOfLoadedArtifactIsByteIdentical)
{
    // Serialization is deterministic: load + rewrite reproduces the
    // file byte for byte (the build-once guarantee).
    const auto artifact = store::Artifact::load(fixture().artifactPath);
    const std::string path = testing::TempDir() + "rewrite.pgbi";
    store::writeArtifact(path, artifact->graph(), artifact->minimizers(),
                         artifact->gbwt());
    std::ifstream a(fixture().artifactPath, std::ios::binary);
    std::ifstream b(path, std::ios::binary);
    std::stringstream sa, sb;
    sa << a.rdbuf();
    sb << b.rdbuf();
    EXPECT_EQ(sa.str(), sb.str());
    std::remove(path.c_str());
}

// ---- fail-closed loading ---------------------------------------------

TEST(StoreFail, MissingFileIsFatal)
{
    EXPECT_THROW(store::Artifact::load(testing::TempDir() +
                                       "no_such_artifact.pgbi"),
                 core::FatalError);
}

TEST(StoreFail, FlippedPayloadByteFailsChecksum)
{
    const std::string path = copyArtifact("corrupt.pgbi");
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        // Flip one byte deep in the payload region, past the header
        // and the section table.
        f.seekp(4096);
        char byte = 0;
        f.seekg(4096);
        f.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0x40);
        f.seekp(4096);
        f.write(&byte, 1);
    }
    EXPECT_THROW(store::Artifact::load(path), core::FatalError);
    std::remove(path.c_str());
}

TEST(StoreFail, TruncationIsFatal)
{
    const std::string path = copyArtifact("trunc.pgbi");
    {
        std::ifstream in(path, std::ios::binary);
        std::stringstream buf;
        buf << in.rdbuf();
        const std::string all = buf.str();
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(all.data(),
                  static_cast<std::streamsize>(all.size() / 2));
    }
    EXPECT_THROW(store::Artifact::load(path), core::FatalError);
    std::remove(path.c_str());
}

TEST(StoreFail, FutureFormatVersionIsFatal)
{
    const std::string path = copyArtifact("newver.pgbi");
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        const uint32_t version = store::kFormatVersion + 1;
        f.seekp(offsetof(store::Header, version));
        f.write(reinterpret_cast<const char *>(&version),
                sizeof(version));
    }
    EXPECT_THROW(store::Artifact::load(path), core::FatalError);
    std::remove(path.c_str());
}

TEST(StoreFail, BadMagicIsFatal)
{
    const std::string path = copyArtifact("badmagic.pgbi");
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        f.write("GARBAGE!", 8);
    }
    EXPECT_THROW(store::Artifact::load(path), core::FatalError);
    std::remove(path.c_str());
}

TEST(StoreFail, CorpusFixturesAllFailClosed)
{
    const std::string corpus = PGB_CORPUS_DIR;
    EXPECT_THROW(store::Artifact::load(corpus + "/bad_magic.pgbi"),
                 core::FatalError);
    EXPECT_THROW(store::Artifact::load(corpus + "/wrong_version.pgbi"),
                 core::FatalError);
    EXPECT_THROW(store::Artifact::load(corpus + "/truncated.pgbi"),
                 core::FatalError);
}

TEST(StoreFail, FmCorpusFixturesAllFailClosed)
{
    // Three FM-bearing artifacts, each corrupted at a different layer:
    // a flipped BWT payload byte (section checksum), an FBWT one byte
    // shorter than FMET's textLength with checksums *recomputed* (the
    // FM cross-section validation, not the checksum layer), and an
    // FMET sampleRate of zero (FM meta validation). All must be
    // FatalErrors even when the caller never asked for MEM seeding —
    // a corrupt optional section is corruption, not an option.
    const std::string corpus = PGB_CORPUS_DIR;
    EXPECT_THROW(
        store::Artifact::load(corpus + "/fm_bad_checksum.pgbi"),
        core::FatalError);
    EXPECT_THROW(store::Artifact::load(corpus + "/fm_truncated.pgbi"),
                 core::FatalError);
    EXPECT_THROW(store::Artifact::load(corpus + "/fm_bad_meta.pgbi"),
                 core::FatalError);
}

TEST(StoreFail, FmSectionRoundTripsAndValidates)
{
    // A healthy FM-bearing artifact loads with view-mode FM spans that
    // answer queries identically to the built index.
    const index::FmIndex fm(fixture().pangenome.graph);
    const std::string path = testing::TempDir() + "with_fm.pgbi";
    store::writeArtifact(path, fixture().pangenome.graph,
                         *fixture().minimizers, nullptr, &fm);
    const auto artifact = store::Artifact::load(path);
    ASSERT_NE(artifact->fmIndex(), nullptr);
    EXPECT_TRUE(artifact->fmIndex()->isView());
    EXPECT_EQ(artifact->fmIndex()->textLength(), fm.textLength());
    EXPECT_EQ(artifact->fmIndex()->pathCount(), fm.pathCount());
    // And an artifact written without one loads with a null FM-index.
    const auto plain = store::Artifact::load(fixture().artifactPath);
    EXPECT_EQ(plain->fmIndex(), nullptr);
    std::remove(path.c_str());
}

// ---- fault injection --------------------------------------------------

class StoreFaultTest : public ::testing::Test
{
  protected:
    void SetUp() override { core::fault::disarmAll(); }
    void TearDown() override { core::fault::disarmAll(); }
};

TEST_F(StoreFaultTest, EveryLoadSiteFailsClosed)
{
    for (const char *site :
         {"store.open", "store.mmap", "store.section",
          "store.checksum"}) {
        core::fault::arm(site, 1);
        EXPECT_THROW(store::Artifact::load(fixture().artifactPath),
                     core::FatalError)
            << site;
        core::fault::disarmAll();
        // The site is one-shot: the next load succeeds.
        EXPECT_NO_THROW(store::Artifact::load(fixture().artifactPath))
            << site;
    }
}

TEST_F(StoreFaultTest, FailedWriteLeavesNoPartialArtifact)
{
    const std::string path = testing::TempDir() + "failed_write.pgbi";
    core::fault::arm("io.flush", 1);
    EXPECT_THROW(store::writeArtifact(path, fixture().pangenome.graph,
                                      *fixture().minimizers,
                                      fixture().gbwt.get()),
                 core::FatalError);
    core::fault::disarmAll();
    EXPECT_FALSE(fileExists(path));
    EXPECT_FALSE(fileExists(path + ".tmp"));
}

} // namespace
