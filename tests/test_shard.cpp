/**
 * @file
 * Shard-set tests (DESIGN.md §13): `pgb shard` artifacts, the .pgbs
 * manifest round trip, component→shard routing, the LRU/pinned-refcount
 * shard cache, and — the load-bearing guarantee — byte-identity of
 * sharded mapping with the monolithic golden path, including under a
 * cache budget small enough to force evictions mid-run.
 *
 * The ctest shard_threads_{1,8} lanes rerun this file at both pool
 * widths; the golden digests here are the same files the monolithic
 * Golden suite pins.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/logging.hpp"
#include "core/md5.hpp"
#include "index/gbwt.hpp"
#include "obs/metrics.hpp"
#include "pipeline/context.hpp"
#include "pipeline/mapper.hpp"
#include "seq/read_sim.hpp"
#include "store/manifest.hpp"
#include "store/shard_build.hpp"
#include "synth/pangenome_sim.hpp"

namespace {

using namespace pgb;

constexpr uint64_t kMiB = 1ull << 20;

/**
 * Append @p src to @p dst as a fresh connected component: nodes keep
 * their relative order (shifted by dst's node count), edges replay the
 * oriented successor lists (addEdge dedupes and mirrors, exactly as
 * `pgb shard` replays them back out), and paths are renamed under
 * @p tag to stay unique in the union.
 */
void
appendChromosome(graph::PanGraph &dst, const synth::Pangenome &src,
                 const std::string &tag)
{
    const auto &g = src.graph;
    const auto base = static_cast<uint32_t>(dst.nodeCount());
    for (uint32_t n = 0; n < g.nodeCount(); ++n)
        dst.addNode(g.nodeSequence(n));
    for (uint32_t n = 0; n < g.nodeCount(); ++n) {
        for (const bool reverse : {false, true}) {
            const graph::Handle from(n, reverse);
            for (const graph::Handle to : g.successors(from))
                dst.addEdge(graph::Handle(base + n, reverse),
                            graph::Handle(base + to.node(),
                                          to.isReverse()));
        }
    }
    for (graph::PathId p = 0; p < g.pathCount(); ++p) {
        std::vector<graph::Handle> steps;
        steps.reserve(g.pathSteps(p).size());
        for (const graph::Handle s : g.pathSteps(p))
            steps.emplace_back(base + s.node(), s.isReverse());
        dst.addPath(tag + "." + g.pathName(p), std::move(steps));
    }
}

/**
 * A disjoint union of @p chromosomes simulated pangenomes — the
 * beyond-RAM shape `pgb shard` partitions — plus reads drawn from
 * every chromosome's haplotypes.
 */
struct UnionFixture
{
    graph::PanGraph graph;
    std::vector<seq::Sequence> reads;
    size_t chromosomes;

    UnionFixture(size_t chromosomes, size_t bases_per_chromosome,
                 size_t reads_per_chromosome)
        : chromosomes(chromosomes)
    {
        for (size_t c = 0; c < chromosomes; ++c) {
            synth::PangenomeConfig config = synth::mGraphLikeConfig(
                bases_per_chromosome, 0xc0 + c);
            config.haplotypeCount = 2;
            const auto pangenome = synth::simulatePangenome(config);
            appendChromosome(graph, pangenome,
                             "chr" + std::to_string(c));
            seq::ReadSimulator sim(seq::ReadProfile::shortRead(),
                                   0x5eed00 + c);
            for (size_t r = 0; r < reads_per_chromosome; ++r) {
                auto read = sim.sample(
                    pangenome.haplotypes[r %
                                         pangenome.haplotypes.size()]);
                read.read.setName("c" + std::to_string(c) + "_r" +
                                  std::to_string(r));
                reads.push_back(std::move(read.read));
            }
        }
    }
};

/** Small union: multi-shard identity and routing, cheap to index. */
const UnionFixture &
smallUnion()
{
    static UnionFixture instance(3, 8000, 8);
    return instance;
}

/** Big union: shards large enough that a MiB-granular cache budget
 *  can hold one shard but not two (the eviction/LRU tests assert that
 *  precondition from the manifest's own byte counts). */
const UnionFixture &
bigUnion()
{
    static UnionFixture instance(3, 200000, 5);
    return instance;
}

/** Shard @p graph into TempDir under @p stem; one shard per component
 *  unless @p target_mb groups them. */
store::ShardManifest
shardInto(const graph::PanGraph &graph, const std::string &stem,
          const std::string &seeder = "minimizer",
          uint64_t target_mb = 0)
{
    store::ShardBuildParams params;
    params.seeder = seeder;
    params.targetShardMb = target_mb;
    params.threads = 4;
    const std::string path = testing::TempDir() + stem + ".pgbs";
    return store::buildShardSet(graph, params, path);
}

std::shared_ptr<const pipeline::MappingContext>
shardContext(const std::string &manifest_path,
             pipeline::SeederKind kind, uint64_t cache_mb)
{
    return pipeline::MappingContext::Builder()
        .fromManifest(manifest_path)
        .seeder(kind)
        .shardCacheMb(cache_mb)
        .build();
}

/** Per-read mapping records (serial mapOne for a stable order) —
 *  byte-compatible with test_golden.cpp's digest format. */
std::string
mappingDigest(
    const std::shared_ptr<const pipeline::MappingContext> &context,
    pipeline::ToolProfile tool, const std::vector<seq::Sequence> &reads)
{
    auto config = pipeline::MapperConfig::forTool(tool);
    config.threads = 1;
    const pipeline::Seq2GraphMapper mapper(context, config);
    pipeline::MappingStats stats;
    std::ostringstream out;
    for (const seq::Sequence &read : reads) {
        const auto mapping = mapper.mapOne(read, stats);
        out << read.name() << '\t' << mapping.mapped << '\t'
            << mapping.node << '\t' << mapping.score << '\t'
            << mapping.reverse << '\n';
    }
    return core::md5Hex(out.str());
}

/** Compare @p digest against the checked-in golden (owned and
 *  regenerated by test_golden.cpp; this suite only reads it). */
void
expectGolden(const char *file, const std::string &digest)
{
    if (std::getenv("PGB_GOLDEN_REGEN") != nullptr)
        GTEST_SKIP() << "goldens are being regenerated by the Golden "
                        "suite; skipping the shard-side comparison";
    const std::string path = std::string(PGB_GOLDEN_DIR) + "/" + file;
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "missing golden " << path;
    std::string expected;
    in >> expected;
    EXPECT_EQ(digest, expected)
        << file << ": sharded mapping diverged from the monolithic "
        << "golden path — the byte-identity guarantee of DESIGN.md "
        << "§13 is broken.";
}

/** Global node id of the first node routed to @p shard. */
uint32_t
nodeInShard(const store::ShardManifest &manifest, uint32_t shard)
{
    for (const store::ComponentEntry &component : manifest.components) {
        if (component.shard == shard)
            return component.ranges.front().first;
    }
    ADD_FAILURE() << "no component routed to shard " << shard;
    return 0;
}

// ---------------------------------------------------------------------
// Manifest and router
// ---------------------------------------------------------------------

TEST(Shard, BuildPartitionsByComponentAndRoundTripsTheManifest)
{
    const auto manifest =
        shardInto(smallUnion().graph, "shard_small_roundtrip");
    EXPECT_EQ(manifest.components.size(), smallUnion().chromosomes);
    EXPECT_EQ(manifest.shards.size(), smallUnion().chromosomes);
    EXPECT_EQ(manifest.nodeCount, smallUnion().graph.nodeCount());
    EXPECT_EQ(manifest.pathCount, smallUnion().graph.pathCount());
    EXPECT_EQ(manifest.seeder, "minimizer");

    const auto loaded = store::ShardManifest::load(manifest.path);
    EXPECT_EQ(loaded.nodeCount, manifest.nodeCount);
    EXPECT_EQ(loaded.edgeCount, manifest.edgeCount);
    EXPECT_EQ(loaded.totalBases, manifest.totalBases);
    EXPECT_EQ(loaded.k, manifest.k);
    EXPECT_EQ(loaded.w, manifest.w);
    EXPECT_EQ(loaded.hasGbwt, manifest.hasGbwt);
    ASSERT_EQ(loaded.shards.size(), manifest.shards.size());
    for (size_t s = 0; s < manifest.shards.size(); ++s) {
        EXPECT_EQ(loaded.shards[s].file, manifest.shards[s].file);
        EXPECT_EQ(loaded.shards[s].bytes, manifest.shards[s].bytes);
        EXPECT_EQ(loaded.shards[s].digest, manifest.shards[s].digest);
        EXPECT_EQ(loaded.shards[s].nodes, manifest.shards[s].nodes);
    }
    ASSERT_EQ(loaded.components.size(), manifest.components.size());
    for (size_t c = 0; c < manifest.components.size(); ++c) {
        EXPECT_EQ(loaded.components[c].shard,
                  manifest.components[c].shard);
        EXPECT_EQ(loaded.components[c].ranges,
                  manifest.components[c].ranges);
    }
}

TEST(Shard, RouterRoundTripsEveryNode)
{
    const auto manifest =
        shardInto(smallUnion().graph, "shard_small_router");
    const store::ShardRouter router(manifest);
    std::vector<uint64_t> per_shard(manifest.shards.size(), 0);
    for (uint32_t node = 0; node < manifest.nodeCount; ++node) {
        const auto route = router.route(node);
        ASSERT_LT(route.shard, manifest.shards.size());
        EXPECT_EQ(router.globalOf(route.shard, route.local), node);
        ++per_shard[route.shard];
    }
    for (size_t s = 0; s < manifest.shards.size(); ++s)
        EXPECT_EQ(per_shard[s], manifest.shards[s].nodes) << s;
}

TEST(Shard, PathlessGraphRefusesToShard)
{
    graph::PanGraph pathless;
    pathless.addNode(seq::Sequence("", "ACGTACGTACGTACGT"));
    const std::string path = testing::TempDir() + "pathless.pgbs";
    try {
        store::buildShardSet(pathless, {}, path);
        FAIL() << "expected FatalError";
    } catch (const core::FatalError &error) {
        EXPECT_STREQ(
            error.what(),
            ("fatal: " + path +
             ": cannot shard a pathless pangenome; shard sets are "
             "seeded along embedded paths (add P lines or use the "
             "monolithic `pgb index`)")
                .c_str());
    }
}

TEST(Shard, MemSeederAgainstMinimizerSetIsFatal)
{
    const auto manifest =
        shardInto(smallUnion().graph, "shard_small_no_fm");
    try {
        shardContext(manifest.path, pipeline::SeederKind::kMem, 0);
        FAIL() << "expected FatalError";
    } catch (const core::FatalError &error) {
        EXPECT_STREQ(
            error.what(),
            ("fatal: " + manifest.path +
             ": shard set has no FM-index sections; rebuild it with "
             "`pgb shard --seeder=mem` to map with --seeder=mem")
                .c_str());
    }
}

// ---------------------------------------------------------------------
// Byte-identity with the monolith
// ---------------------------------------------------------------------

TEST(Shard, MinimizerShardedMatchesMonolithAcrossComponents)
{
    const auto manifest =
        shardInto(smallUnion().graph, "shard_small_min");
    const auto sharded = shardContext(
        manifest.path, pipeline::SeederKind::kMinimizer, 0);
    ASSERT_STREQ(sharded->source().kindName(), "shard-set");
    ASSERT_GT(sharded->source().shardCount(), 1u);
    const auto monolith = pipeline::MappingContext::Builder()
                              .fromGraph(smallUnion().graph)
                              .buildGbwt(true)
                              .build();
    for (const auto tool : {pipeline::ToolProfile::kVgMap,
                            pipeline::ToolProfile::kVgGiraffe}) {
        EXPECT_EQ(
            mappingDigest(sharded, tool, smallUnion().reads),
            mappingDigest(monolith, tool, smallUnion().reads));
    }
}

TEST(Shard, MemShardedMatchesMonolithAcrossComponents)
{
    const auto manifest =
        shardInto(smallUnion().graph, "shard_small_mem", "mem");
    const auto sharded =
        shardContext(manifest.path, pipeline::SeederKind::kMem, 0);
    const auto monolith = pipeline::MappingContext::Builder()
                              .fromGraph(smallUnion().graph)
                              .seeder(pipeline::SeederKind::kMem)
                              .build();
    EXPECT_EQ(mappingDigest(sharded, pipeline::ToolProfile::kVgMap,
                            smallUnion().reads),
              mappingDigest(monolith, pipeline::ToolProfile::kVgMap,
                            smallUnion().reads));
}

/**
 * The golden fixture from test_golden.cpp, reproduced bit-exactly
 * (same configs, seeds, and read names), so the sharded digests can be
 * compared against the same checked-in tests/golden/*.md5 files the
 * monolithic path pins.
 */
struct GoldenFixture
{
    synth::Pangenome pangenome;
    std::vector<seq::Sequence> shortReads;
    std::vector<seq::Sequence> longReads;

    GoldenFixture()
    {
        synth::PangenomeConfig config = synth::mGraphLikeConfig(12000, 7);
        config.haplotypeCount = 4;
        pangenome = synth::simulatePangenome(config);
        seq::ReadSimulator short_sim(seq::ReadProfile::shortRead(),
                                     0x5eed);
        seq::ReadProfile long_profile = seq::ReadProfile::longRead();
        long_profile.readLength = 1500;
        seq::ReadSimulator long_sim(long_profile, 0x10e6);
        for (size_t r = 0; r < 30; ++r) {
            auto read = short_sim.sample(
                pangenome.haplotypes[r % pangenome.haplotypes.size()]);
            read.read.setName("sr_" + std::to_string(r));
            shortReads.push_back(std::move(read.read));
        }
        for (size_t r = 0; r < 6; ++r) {
            auto read = long_sim.sample(
                pangenome.haplotypes[r % pangenome.haplotypes.size()]);
            read.read.setName("lr_" + std::to_string(r));
            longReads.push_back(std::move(read.read));
        }
    }
};

const GoldenFixture &
golden()
{
    static GoldenFixture instance;
    return instance;
}

TEST(Shard, GoldenShortReadsViaShardSetMatchGolden)
{
    const auto manifest =
        shardInto(golden().pangenome.graph, "shard_golden_min");
    const auto context = shardContext(
        manifest.path, pipeline::SeederKind::kMinimizer, 0);
    expectGolden("short_reads_vgmap.md5",
                 mappingDigest(context, pipeline::ToolProfile::kVgMap,
                               golden().shortReads));
}

TEST(Shard, GoldenLongReadsViaShardSetMatchGolden)
{
    const auto manifest =
        shardInto(golden().pangenome.graph, "shard_golden_min_long");
    const auto context = shardContext(
        manifest.path, pipeline::SeederKind::kMinimizer, 0);
    expectGolden("long_reads_minigraph.md5",
                 mappingDigest(context,
                               pipeline::ToolProfile::kMinigraph,
                               golden().longReads));
}

TEST(Shard, GoldenShortReadsMemViaShardSetMatchGolden)
{
    const auto manifest =
        shardInto(golden().pangenome.graph, "shard_golden_mem", "mem");
    const auto context =
        shardContext(manifest.path, pipeline::SeederKind::kMem, 0);
    expectGolden("short_reads_vgmap_mem.md5",
                 mappingDigest(context, pipeline::ToolProfile::kVgMap,
                               golden().shortReads));
}

TEST(Shard, GoldenLongReadsMemViaShardSetMatchGolden)
{
    const auto manifest = shardInto(golden().pangenome.graph,
                                    "shard_golden_mem_long", "mem");
    const auto context =
        shardContext(manifest.path, pipeline::SeederKind::kMem, 0);
    expectGolden("long_reads_minigraph_mem.md5",
                 mappingDigest(context,
                               pipeline::ToolProfile::kMinigraph,
                               golden().longReads));
}

// ---------------------------------------------------------------------
// Shard cache: LRU, pinning, thrash
// ---------------------------------------------------------------------

/** The big-union manifest, built once (three ~MiB-scale shards). */
const store::ShardManifest &
bigManifest()
{
    static store::ShardManifest manifest =
        shardInto(bigUnion().graph, "shard_big");
    return manifest;
}

/** Smallest MiB budget that holds the largest single shard. The LRU
 *  and eviction tests assert (from the manifest's own byte counts)
 *  that this budget cannot hold two shards at once — if the fixture
 *  ever shrinks below that, grow bigUnion(). */
uint64_t
oneShardBudgetMb(const store::ShardManifest &manifest)
{
    uint64_t max_bytes = 0;
    for (const store::ShardEntry &shard : manifest.shards)
        max_bytes = std::max(max_bytes, shard.bytes);
    return (max_bytes + kMiB - 1) / kMiB;
}

TEST(Shard, FixtureShardsOverflowAOneShardBudgetPairwise)
{
    const auto &manifest = bigManifest();
    ASSERT_EQ(manifest.shards.size(), 3u);
    const uint64_t budget = oneShardBudgetMb(manifest) * kMiB;
    for (size_t a = 0; a < manifest.shards.size(); ++a) {
        for (size_t b = a + 1; b < manifest.shards.size(); ++b) {
            ASSERT_GT(manifest.shards[a].bytes +
                          manifest.shards[b].bytes,
                      budget)
                << "shards " << a << "+" << b << " fit a one-shard "
                << "budget; grow bigUnion() so the eviction tests "
                << "can observe evictions";
        }
    }
}

TEST(Shard, LruEvictsLeastRecentlyUsedFirst)
{
    const auto &manifest = bigManifest();
    // Budget for the largest pair: any two shards fit, three never do.
    uint64_t pair_bytes = 0;
    for (size_t a = 0; a < manifest.shards.size(); ++a)
        for (size_t b = a + 1; b < manifest.shards.size(); ++b)
            pair_bytes = std::max(pair_bytes,
                                  manifest.shards[a].bytes +
                                      manifest.shards[b].bytes);
    const uint64_t budget_mb = (pair_bytes + kMiB - 1) / kMiB;
    uint64_t total = 0;
    for (const store::ShardEntry &shard : manifest.shards)
        total += shard.bytes;
    ASSERT_GT(total, budget_mb * kMiB)
        << "three shards fit a two-shard budget; grow bigUnion()";

    const auto context = shardContext(
        manifest.path, pipeline::SeederKind::kMinimizer, budget_mb);
    const auto &source = context->source();
    const auto touch = [&](uint32_t shard) {
        source.extractSubgraph(
            graph::Handle(nodeInShard(manifest, shard), false), 32,
            nullptr);
    };
    const auto before = obs::snapshot();
    touch(0);
    touch(1);
    touch(0); // refresh shard 0: shard 1 is now the LRU
    touch(2); // overflow: must evict shard 1, not shard 0
    const auto after = obs::snapshot();
    // Provider entries surface with the counters (one flat object).
    EXPECT_EQ(after.counter("shard.0.resident"), 1u);
    EXPECT_EQ(after.counter("shard.1.resident"), 0u);
    EXPECT_EQ(after.counter("shard.2.resident"), 1u);
    EXPECT_EQ(after.counter("shard.loads") - before.counter("shard.loads"),
              3u);
    EXPECT_EQ(after.counter("shard.evictions") -
                  before.counter("shard.evictions"),
              1u);
    EXPECT_GE(after.counter("shard.hits") - before.counter("shard.hits"),
              1u); // the refresh of shard 0
}

TEST(Shard, EvictionNeverUnmapsAPinnedShard)
{
    const auto &manifest = bigManifest();
    const uint64_t budget_mb = oneShardBudgetMb(manifest);
    const auto context = shardContext(
        manifest.path, pipeline::SeederKind::kMinimizer, budget_mb);
    const auto &source = context->source();

    const uint32_t pinned_node = nodeInShard(manifest, 0);
    ASSERT_TRUE(source.hasGbwt());
    {
        // The walk pins shard 0 for as long as it is held — the
        // in-flight-batch shape.
        const pipeline::GbwtWalk walk = source.gbwtWalkAt(pinned_node);
        ASSERT_NE(walk.gbwt, nullptr);
        for (const uint32_t other : {1u, 2u}) {
            source.extractSubgraph(
                graph::Handle(nodeInShard(manifest, other), false), 32,
                nullptr);
        }
        // Shards 1 and 2 overflowed the budget, but shard 0 is pinned:
        // it must still be resident, and the pinned GBWT must still be
        // readable (a use-after-unmap here dies, not just fails).
        const auto during = obs::snapshot();
        EXPECT_EQ(during.counter("shard.0.resident"), 1u);
        EXPECT_GT(during.gauge("shard.resident_bytes"),
                  static_cast<int64_t>(budget_mb * kMiB));
        EXPECT_GT(walk.gbwt->fullRange(walk.start).size(), 0u);
    }
    // Pin released: the next cache touch may now evict shard 0.
    const auto before = obs::snapshot();
    source.extractSubgraph(
        graph::Handle(nodeInShard(manifest, 1), false), 32, nullptr);
    const auto after = obs::snapshot();
    EXPECT_GE(after.counter("shard.evictions") -
                  before.counter("shard.evictions"),
              1u);
    EXPECT_EQ(after.counter("shard.0.resident"), 0u);
}

TEST(Shard, OneShardBudgetThrashesButMapsIdentically)
{
    // The acceptance run: a cache budget of one shard forces evictions
    // mid-run (asserted via shard.evictions), and the mapping digest
    // still matches the monolith byte for byte.
    const auto &manifest = bigManifest();
    const uint64_t budget_mb = oneShardBudgetMb(manifest);
    const auto sharded = shardContext(
        manifest.path, pipeline::SeederKind::kMinimizer, budget_mb);
    const auto monolith = pipeline::MappingContext::Builder()
                              .fromGraph(bigUnion().graph)
                              .buildGbwt(true)
                              .build();
    const auto before = obs::snapshot();
    const std::string sharded_digest = mappingDigest(
        sharded, pipeline::ToolProfile::kVgMap, bigUnion().reads);
    const auto after = obs::snapshot();
    EXPECT_GE(after.counter("shard.evictions") -
                  before.counter("shard.evictions"),
              1u)
        << "the one-shard budget never evicted: the thrash run is not "
        << "exercising the cache";
    EXPECT_EQ(sharded_digest,
              mappingDigest(monolith, pipeline::ToolProfile::kVgMap,
                            bigUnion().reads));
}

TEST(Shard, MapBatchUnderThrashMatchesMonolith)
{
    // Worker threads pin and release shards concurrently while the
    // cache evicts under a one-shard budget; per-read results must
    // still match the monolith exactly.
    const auto &manifest = bigManifest();
    const auto sharded =
        shardContext(manifest.path, pipeline::SeederKind::kMinimizer,
                     oneShardBudgetMb(manifest));
    const auto monolith = pipeline::MappingContext::Builder()
                              .fromGraph(bigUnion().graph)
                              .buildGbwt(true)
                              .build();
    auto config =
        pipeline::MapperConfig::forTool(pipeline::ToolProfile::kVgMap);
    config.threads = 4;
    std::vector<pipeline::ReadMapping> a, b;
    pipeline::mapBatch(*sharded, config, bigUnion().reads, a);
    pipeline::mapBatch(*monolith, config, bigUnion().reads, b);
    ASSERT_EQ(a.size(), b.size());
    for (size_t r = 0; r < a.size(); ++r) {
        EXPECT_EQ(a[r].mapped, b[r].mapped) << r;
        EXPECT_EQ(a[r].node, b[r].node) << r;
        EXPECT_EQ(a[r].score, b[r].score) << r;
        EXPECT_EQ(a[r].reverse, b[r].reverse) << r;
    }
}

} // namespace
