/**
 * @file
 * Unit and property tests for src/core: RNG, bit vectors, interval
 * tree, union-find, sorting, arena, stats, thread pool.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <set>
#include <thread>

#include "core/arena.hpp"
#include "core/bitvector.hpp"
#include "core/interval_tree.hpp"
#include "core/logging.hpp"
#include "core/rng.hpp"
#include "core/sort.hpp"
#include "core/stats.hpp"
#include "core/thread_pool.hpp"
#include "core/timer.hpp"
#include "core/union_find.hpp"

namespace pgb::core {
namespace {

// ---------------------------------------------------------------- RNG

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a() == b() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowCoversSmallRangeUniformly)
{
    Rng rng(11);
    std::array<int, 4> histogram{};
    for (int i = 0; i < 40000; ++i)
        ++histogram[rng.below(4)];
    for (int count : histogram) {
        EXPECT_GT(count, 9000);
        EXPECT_LT(count, 11000);
    }
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(13);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ZipfStaysInRangeAndFavorsSmall)
{
    Rng rng(17);
    uint64_t small = 0;
    for (int i = 0; i < 10000; ++i) {
        const uint64_t z = rng.zipf(1000, 0.99);
        ASSERT_GE(z, 1u);
        ASSERT_LE(z, 1000u);
        small += z <= 10 ? 1 : 0;
    }
    // A Zipf-like draw must be heavily biased toward small values.
    EXPECT_GT(small, 3000u);
}

TEST(Rng, BetweenInclusive)
{
    Rng rng(19);
    for (int i = 0; i < 1000; ++i) {
        const int64_t v = rng.between(-5, 5);
        ASSERT_GE(v, -5);
        ASSERT_LE(v, 5);
    }
}

TEST(Rng, ForStreamIndependence)
{
    Rng a = Rng::forStream(42, 0);
    Rng b = Rng::forStream(42, 1);
    EXPECT_NE(a(), b());
}

// ---------------------------------------------------------- BitVector

TEST(BitVector, SetGetClear)
{
    BitVector bits(130);
    EXPECT_EQ(bits.size(), 130u);
    bits.set(0);
    bits.set(64);
    bits.set(129);
    EXPECT_TRUE(bits.get(0));
    EXPECT_TRUE(bits.get(64));
    EXPECT_TRUE(bits.get(129));
    EXPECT_FALSE(bits.get(1));
    bits.clear(64);
    EXPECT_FALSE(bits.get(64));
    EXPECT_EQ(bits.count(), 2u);
}

TEST(BitVector, RankMatchesBruteForce)
{
    Rng rng(3);
    BitVector bits(1000);
    std::vector<bool> mirror(1000, false);
    for (int i = 0; i < 300; ++i) {
        const size_t pos = rng.below(1000);
        bits.set(pos);
        mirror[pos] = true;
    }
    bits.buildRank();
    size_t running = 0;
    for (size_t i = 0; i < 1000; ++i) {
        EXPECT_EQ(bits.rank1(i), running) << "at " << i;
        running += mirror[i] ? 1 : 0;
    }
}

TEST(BitVector, FindNextSet)
{
    BitVector bits(200);
    bits.set(5);
    bits.set(70);
    bits.set(199);
    EXPECT_EQ(bits.findNextSet(0), 5u);
    EXPECT_EQ(bits.findNextSet(5), 5u);
    EXPECT_EQ(bits.findNextSet(6), 70u);
    EXPECT_EQ(bits.findNextSet(71), 199u);
    EXPECT_EQ(bits.findNextSet(200), 200u);
}

TEST(AtomicBitVector, SetIfClearReportsFirstOnly)
{
    AtomicBitVector bits(100);
    EXPECT_TRUE(bits.setIfClear(42));
    EXPECT_FALSE(bits.setIfClear(42));
    EXPECT_TRUE(bits.get(42));
    EXPECT_EQ(bits.count(), 1u);
}

TEST(AtomicBitVector, ConcurrentSettersClaimDistinctWins)
{
    AtomicBitVector bits(4096);
    std::atomic<uint64_t> wins(0);
    parallelRun(8, [&](unsigned) {
        for (size_t i = 0; i < 4096; ++i) {
            if (bits.setIfClear(i))
                wins.fetch_add(1);
        }
    });
    // Every bit won exactly once across all threads.
    EXPECT_EQ(wins.load(), 4096u);
    EXPECT_EQ(bits.count(), 4096u);
}

// ------------------------------------------------------ IntervalTree

TEST(ImplicitIntervalTree, EmptyTreeReportsNothing)
{
    ImplicitIntervalTree tree;
    tree.index();
    std::vector<Interval> out;
    EXPECT_EQ(tree.overlap(0, 100, out), 0u);
}

TEST(ImplicitIntervalTree, SingleInterval)
{
    ImplicitIntervalTree tree;
    tree.add(10, 20, 7);
    tree.index();
    std::vector<Interval> out;
    EXPECT_EQ(tree.overlap(0, 10, out), 0u); // end-exclusive
    EXPECT_EQ(tree.overlap(19, 25, out), 1u);
    EXPECT_EQ(out[0].value, 7u);
    out.clear();
    EXPECT_EQ(tree.overlap(20, 30, out), 0u);
}

TEST(ImplicitIntervalTree, MatchesBruteForceOnRandomSets)
{
    Rng rng(21);
    for (int round = 0; round < 20; ++round) {
        const size_t n = 1 + rng.below(400);
        ImplicitIntervalTree tree;
        std::vector<Interval> reference;
        for (size_t i = 0; i < n; ++i) {
            const uint64_t start = rng.below(2000);
            const uint64_t end = start + 1 + rng.below(100);
            tree.add(start, end, i);
            reference.push_back({start, end, i});
        }
        tree.index();
        for (int q = 0; q < 50; ++q) {
            const uint64_t qs = rng.below(2100);
            const uint64_t qe = qs + 1 + rng.below(200);
            std::vector<Interval> got;
            tree.overlap(qs, qe, got);
            std::multiset<uint64_t> got_values;
            for (const Interval &iv : got)
                got_values.insert(iv.value);
            std::multiset<uint64_t> want_values;
            for (const Interval &iv : reference) {
                if (iv.start < qe && qs < iv.end)
                    want_values.insert(iv.value);
            }
            ASSERT_EQ(got_values, want_values)
                << "round " << round << " query [" << qs << "," << qe
                << ")";
        }
    }
}

TEST(ImplicitIntervalTree, VisitOverlapsAgreesWithOverlap)
{
    ImplicitIntervalTree tree;
    for (uint64_t i = 0; i < 50; ++i)
        tree.add(i * 3, i * 3 + 5, i);
    tree.index();
    std::vector<Interval> collected;
    tree.overlap(30, 60, collected);
    size_t visited = 0;
    tree.visitOverlaps(30, 60, [&](const Interval &) { ++visited; });
    EXPECT_EQ(visited, collected.size());
}

// --------------------------------------------------------- UnionFind

TEST(UnionFind, BasicUnions)
{
    UnionFind dsu(10);
    EXPECT_EQ(dsu.setCount(), 10u);
    dsu.unite(1, 2);
    dsu.unite(2, 3);
    EXPECT_TRUE(dsu.same(1, 3));
    EXPECT_FALSE(dsu.same(1, 4));
    EXPECT_EQ(dsu.setCount(), 8u);
    // Idempotent unite.
    dsu.unite(1, 3);
    EXPECT_EQ(dsu.setCount(), 8u);
}

TEST(UnionFind, RandomUnionsMatchBruteForce)
{
    Rng rng(23);
    const size_t n = 200;
    UnionFind dsu(n);
    std::vector<size_t> label(n);
    for (size_t i = 0; i < n; ++i)
        label[i] = i;
    for (int i = 0; i < 150; ++i) {
        const size_t a = rng.below(n);
        const size_t b = rng.below(n);
        dsu.unite(a, b);
        const size_t la = label[a], lb = label[b];
        if (la != lb) {
            for (size_t j = 0; j < n; ++j) {
                if (label[j] == lb)
                    label[j] = la;
            }
        }
    }
    for (size_t a = 0; a < n; ++a) {
        for (size_t b = a + 1; b < n; ++b) {
            EXPECT_EQ(dsu.same(a, b), label[a] == label[b])
                << a << " vs " << b;
        }
    }
}

// -------------------------------------------------------------- Sort

TEST(RadixSort, MatchesStdSortOnRandomKeys)
{
    Rng rng(29);
    for (size_t n : {0ull, 1ull, 2ull, 100ull, 4097ull}) {
        std::vector<uint64_t> keys;
        for (size_t i = 0; i < n; ++i)
            keys.push_back(rng());
        std::vector<uint64_t> expected = keys;
        std::sort(expected.begin(), expected.end());
        radixSortU64(keys);
        EXPECT_EQ(keys, expected) << "n=" << n;
    }
}

TEST(RadixSort, HandlesSmallKeyRange)
{
    Rng rng(31);
    std::vector<uint64_t> keys;
    for (int i = 0; i < 1000; ++i)
        keys.push_back(rng.below(7));
    std::vector<uint64_t> expected = keys;
    std::sort(expected.begin(), expected.end());
    radixSortU64(keys);
    EXPECT_EQ(keys, expected);
}

TEST(RadixSortBy, StableAndSorted)
{
    struct Rec
    {
        uint64_t key;
        uint32_t tag;
        bool operator==(const Rec &o) const
        {
            return key == o.key && tag == o.tag;
        }
    };
    Rng rng(37);
    std::vector<Rec> records;
    for (uint32_t i = 0; i < 2000; ++i)
        records.push_back({rng.below(50), i});
    std::vector<Rec> expected = records;
    std::stable_sort(expected.begin(), expected.end(),
                     [](const Rec &a, const Rec &b) {
                         return a.key < b.key;
                     });
    radixSortBy(records, [](const Rec &r) { return r.key; });
    EXPECT_EQ(records.size(), expected.size());
    for (size_t i = 0; i < records.size(); ++i)
        EXPECT_EQ(records[i], expected[i]) << i;
}

// ------------------------------------------------------------- Arena

TEST(Arena, InMemoryAppendAndRead)
{
    Arena arena;
    const char *payload = "pangenomics";
    const size_t offset = arena.append(payload, 11);
    EXPECT_EQ(offset, 0u);
    EXPECT_EQ(arena.size(), 11u);
    EXPECT_EQ(std::memcmp(arena.at(0), payload, 11), 0);
}

TEST(Arena, GrowthPreservesContents)
{
    Arena arena;
    std::vector<uint8_t> block(100000, 0xAB);
    for (int i = 0; i < 30; ++i)
        arena.append(block.data(), block.size());
    EXPECT_EQ(arena.size(), 30u * 100000);
    for (size_t probe : {0ull, 1500000ull, 2999999ull})
        EXPECT_EQ(*arena.at(probe), 0xAB);
}

TEST(Arena, FileBackedRoundTrip)
{
    Arena arena(Arena::Mode::kFileBacked);
    std::vector<uint8_t> data(123456);
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<uint8_t>(i * 31);
    arena.append(data.data(), data.size());
    for (size_t i = 0; i < data.size(); i += 997)
        EXPECT_EQ(*arena.at(i), data[i]) << i;
}

TEST(Arena, MoveTransfersOwnership)
{
    Arena a;
    a.append("xyz", 3);
    Arena b = std::move(a);
    EXPECT_EQ(b.size(), 3u);
    EXPECT_EQ(std::memcmp(b.at(0), "xyz", 3), 0);
}

// ------------------------------------------------------------- Stats

TEST(StatAccumulator, MeanMinMaxStddev)
{
    StatAccumulator acc;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        acc.add(v);
    EXPECT_EQ(acc.count(), 8u);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 9.0);
    EXPECT_NEAR(acc.stddev(), 2.138, 0.01); // sample stddev
}

TEST(StatAccumulator, EmptyIsZero)
{
    StatAccumulator acc;
    EXPECT_EQ(acc.mean(), 0.0);
    EXPECT_EQ(acc.stddev(), 0.0);
}

// -------------------------------------------------------- ThreadPool

TEST(ParallelFor, SumsAllIndices)
{
    std::atomic<uint64_t> sum(0);
    parallelFor(0, 10000, 8, [&](size_t i) {
        sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 10000ull * 9999 / 2);
}

TEST(ParallelFor, SingleThreadRunsInline)
{
    std::vector<size_t> order;
    parallelFor(5, 10, 1, [&](size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<size_t>{5, 6, 7, 8, 9}));
}

TEST(ParallelRun, AllWorkersRun)
{
    std::atomic<uint32_t> mask(0);
    parallelRun(4, [&](unsigned tid) { mask.fetch_or(1u << tid); });
    EXPECT_EQ(mask.load(), 0xFu);
}

// ------------------------------------------------------------ Timers

TEST(StageTimers, AccumulatesAcrossScopes)
{
    StageTimers timers;
    timers.add("a", 1.5);
    timers.add("a", 0.5);
    timers.add("b", 1.0);
    EXPECT_DOUBLE_EQ(timers.seconds("a"), 2.0);
    EXPECT_DOUBLE_EQ(timers.seconds("b"), 1.0);
    EXPECT_DOUBLE_EQ(timers.seconds("missing"), 0.0);
    EXPECT_DOUBLE_EQ(timers.total(), 3.0);
}

// ----------------------------------------------------------- Logging

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad input ", 42), FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("invariant"), PanicError);
}

} // namespace
} // namespace pgb::core
