/**
 * @file
 * Tests for src/graph: PanGraph topology/paths, GFA IO, subgraph
 * extraction, node splitting, and LocalGraph.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/logging.hpp"
#include "graph/gfa.hpp"
#include "graph/local_graph.hpp"
#include "graph/pangraph.hpp"

namespace pgb::graph {
namespace {

using seq::Sequence;

/** Diamond: 0 -> {1, 2} -> 3 with a path through 1. */
PanGraph
diamond()
{
    PanGraph g;
    const NodeId a = g.addNode(Sequence("", "ACGT"));
    const NodeId b = g.addNode(Sequence("", "T"));
    const NodeId c = g.addNode(Sequence("", "G"));
    const NodeId d = g.addNode(Sequence("", "CCAA"));
    g.addEdge(Handle(a, false), Handle(b, false));
    g.addEdge(Handle(a, false), Handle(c, false));
    g.addEdge(Handle(b, false), Handle(d, false));
    g.addEdge(Handle(c, false), Handle(d, false));
    g.addPath("alt1", {Handle(a, false), Handle(b, false),
                       Handle(d, false)});
    g.addPath("alt2", {Handle(a, false), Handle(c, false),
                       Handle(d, false)});
    return g;
}

// ------------------------------------------------------------ Handle

TEST(Handle, PackingAndFlip)
{
    Handle h(10, true);
    EXPECT_EQ(h.node(), 10u);
    EXPECT_TRUE(h.isReverse());
    EXPECT_EQ(h.flipped().node(), 10u);
    EXPECT_FALSE(h.flipped().isReverse());
    EXPECT_EQ(h.flipped().flipped(), h);
}

// ---------------------------------------------------------- PanGraph

TEST(PanGraph, NodesAndSequences)
{
    PanGraph g;
    const NodeId a = g.addNode(Sequence("", "ACG"));
    EXPECT_EQ(g.nodeCount(), 1u);
    EXPECT_EQ(g.nodeLength(a), 3u);
    EXPECT_EQ(g.sequenceOf(Handle(a, false)).toString(), "ACG");
    EXPECT_EQ(g.sequenceOf(Handle(a, true)).toString(), "CGT");
    EXPECT_EQ(g.baseAt(Handle(a, true), 0), seq::encodeBase('C'));
}

TEST(PanGraph, RejectsEmptyNode)
{
    PanGraph g;
    EXPECT_THROW(g.addNode(Sequence("", "")), core::FatalError);
}

TEST(PanGraph, EdgesAreBidirectedWithMirror)
{
    PanGraph g;
    const NodeId a = g.addNode(Sequence("", "A"));
    const NodeId b = g.addNode(Sequence("", "C"));
    g.addEdge(Handle(a, false), Handle(b, false));
    EXPECT_TRUE(g.hasEdge(Handle(a, false), Handle(b, false)));
    // The mirror edge b- -> a- exists automatically.
    EXPECT_TRUE(g.hasEdge(Handle(b, true), Handle(a, true)));
    EXPECT_EQ(g.edgeCount(), 1u);
    // Duplicate insertion is a no-op.
    g.addEdge(Handle(a, false), Handle(b, false));
    EXPECT_EQ(g.edgeCount(), 1u);
}

TEST(PanGraph, PredecessorsAreFlippedSuccessors)
{
    const PanGraph g = diamond();
    const auto preds = g.predecessors(Handle(3, false));
    EXPECT_EQ(preds.size(), 2u);
    for (Handle p : preds)
        EXPECT_FALSE(p.isReverse());
}

TEST(PanGraph, PathValidationRejectsDisconnectedSteps)
{
    PanGraph g;
    const NodeId a = g.addNode(Sequence("", "A"));
    const NodeId b = g.addNode(Sequence("", "C"));
    EXPECT_THROW(
        g.addPath("bad", {Handle(a, false), Handle(b, false)}),
        core::FatalError);
}

TEST(PanGraph, PathSequenceSpellsTheWalk)
{
    const PanGraph g = diamond();
    EXPECT_EQ(g.pathSequence(0).toString(), "ACGTTCCAA");
    EXPECT_EQ(g.pathSequence(1).toString(), "ACGTGCCAA");
    EXPECT_EQ(g.pathLength(0), 9u);
}

TEST(PanGraph, DuplicatePathNameRejected)
{
    PanGraph g;
    const NodeId a = g.addNode(Sequence("", "A"));
    g.addPath("p", {Handle(a, false)});
    EXPECT_THROW(g.addPath("p", {Handle(a, false)}),
                 core::FatalError);
}

TEST(PanGraph, StatsAreConsistent)
{
    const PanGraph g = diamond();
    const GraphStats stats = g.stats();
    EXPECT_EQ(stats.nodeCount, 4u);
    EXPECT_EQ(stats.edgeCount, 4u);
    EXPECT_EQ(stats.pathCount, 2u);
    EXPECT_EQ(stats.totalBases, 10u);
    EXPECT_DOUBLE_EQ(stats.avgNodeLength, 2.5);
    EXPECT_EQ(stats.maxNodeLength, 4u);
}

TEST(PanGraph, ShortestPathBases)
{
    const PanGraph g = diamond();
    // From node 0 to node 3: through 1 or 2, one base either way.
    EXPECT_EQ(g.shortestPathBases(Handle(0, false), Handle(3, false),
                                  100),
              1u);
    // Direct successor distance is zero intermediate bases.
    EXPECT_EQ(g.shortestPathBases(Handle(0, false), Handle(1, false),
                                  100),
              0u);
    // Unreachable within limit.
    EXPECT_EQ(g.shortestPathBases(Handle(3, false), Handle(0, false),
                                  100),
              SIZE_MAX);
}

// --------------------------------------------------------- Subgraphs

TEST(PanGraph, ExtractSubgraphContainsNeighborhood)
{
    const PanGraph g = diamond();
    uint32_t origin = 0;
    const LocalGraph sub =
        g.extractSubgraph(Handle(0, false), 100, &origin);
    EXPECT_EQ(sub.nodeCount(), 4u);
    EXPECT_TRUE(sub.isDag());
    EXPECT_EQ(sub.nodeSeq(origin),
              g.nodeSequence(0).codes());
}

TEST(PanGraph, ExtractSubgraphHonorsRadius)
{
    // Chain of 10-base nodes; radius 25 reaches ~3 hops.
    PanGraph g;
    std::vector<NodeId> chain;
    for (int i = 0; i < 10; ++i)
        chain.push_back(g.addNode(Sequence("", std::string(10, 'A'))));
    for (int i = 0; i + 1 < 10; ++i)
        g.addEdge(Handle(chain[i], false), Handle(chain[i + 1], false));
    const LocalGraph sub = g.extractSubgraph(Handle(5, false), 25);
    // Nodes within 25 bases in either direction: 5 +- 2 hops, plus the
    // boundary nodes just reachable.
    EXPECT_GE(sub.nodeCount(), 5u);
    EXPECT_LE(sub.nodeCount(), 7u);
}

TEST(PanGraph, ExtractSubgraphIsAlwaysDag)
{
    // Cycle: 0 -> 1 -> 0.
    PanGraph g;
    const NodeId a = g.addNode(Sequence("", "AA"));
    const NodeId b = g.addNode(Sequence("", "CC"));
    g.addEdge(Handle(a, false), Handle(b, false));
    g.addEdge(Handle(b, false), Handle(a, false));
    const LocalGraph sub = g.extractSubgraph(Handle(a, false), 100);
    EXPECT_TRUE(sub.isDag());
}

// -------------------------------------------------------- splitNodes

TEST(PanGraph, SplitNodesPreservesPathSpelling)
{
    const PanGraph g = diamond();
    const PanGraph split = g.splitNodes(2);
    ASSERT_EQ(split.pathCount(), g.pathCount());
    for (PathId p = 0; p < g.pathCount(); ++p) {
        EXPECT_EQ(split.pathSequence(p).toString(),
                  g.pathSequence(p).toString());
    }
    // Node lengths now bounded by 2.
    EXPECT_EQ(split.stats().maxNodeLength, 2u);
    EXPECT_GT(split.nodeCount(), g.nodeCount());
}

TEST(PanGraph, SplitNodesHandlesReversePathSteps)
{
    PanGraph g;
    const NodeId a = g.addNode(Sequence("", "ACGTAC"));
    const NodeId b = g.addNode(Sequence("", "TTT"));
    g.addEdge(Handle(a, false), Handle(b, false));
    g.addEdge(Handle(b, false), Handle(a, true));
    g.addPath("loopy", {Handle(a, false), Handle(b, false),
                        Handle(a, true)});
    const std::string spelled = g.pathSequence(0).toString();
    const PanGraph split = g.splitNodes(4);
    EXPECT_EQ(split.pathSequence(0).toString(), spelled);
}

// -------------------------------------------------------------- GFA

TEST(Gfa, RoundTripPreservesStructureAndPaths)
{
    const PanGraph g = diamond();
    std::ostringstream out;
    writeGfa(out, g);
    std::istringstream in(out.str());
    const PanGraph parsed = readGfa(in);
    EXPECT_EQ(parsed.nodeCount(), g.nodeCount());
    EXPECT_EQ(parsed.edgeCount(), g.edgeCount());
    ASSERT_EQ(parsed.pathCount(), g.pathCount());
    for (PathId p = 0; p < g.pathCount(); ++p) {
        EXPECT_EQ(parsed.pathSequence(p).toString(),
                  g.pathSequence(p).toString());
    }
}

TEST(Gfa, ParsesReverseOrientations)
{
    std::istringstream in(
        "H\tVN:Z:1.0\n"
        "S\tx\tACGT\n"
        "S\ty\tTT\n"
        "L\tx\t+\ty\t-\t0M\n"
        "P\tw\tx+,y-\t*\n");
    const PanGraph g = readGfa(in);
    EXPECT_EQ(g.nodeCount(), 2u);
    EXPECT_EQ(g.pathSequence(0).toString(), "ACGTAA");
}

TEST(Gfa, RejectsUnknownSegment)
{
    std::istringstream in("S\tx\tACGT\nL\tx\t+\tz\t+\t0M\n");
    EXPECT_THROW(readGfa(in), core::FatalError);
}

TEST(Gfa, RejectsDuplicateSegment)
{
    std::istringstream in("S\tx\tACGT\nS\tx\tAC\n");
    EXPECT_THROW(readGfa(in), core::FatalError);
}

// -------------------------------------------------------- LocalGraph

TEST(LocalGraph, CsrAdjacency)
{
    LocalGraph g;
    const uint32_t a = g.addNode("AC");
    const uint32_t b = g.addNode("GT");
    const uint32_t c = g.addNode("A");
    g.addEdge(a, b);
    g.addEdge(a, c);
    g.addEdge(b, c);
    g.finalize();
    EXPECT_EQ(g.nodeCount(), 3u);
    EXPECT_EQ(g.edgeCount(), 3u);
    EXPECT_EQ(g.successors(a).size(), 2u);
    EXPECT_EQ(g.predecessors(c).size(), 2u);
    EXPECT_TRUE(g.isDag());
    EXPECT_EQ(g.topoOrder().size(), 3u);
    EXPECT_EQ(g.totalBases(), 5u);
}

TEST(LocalGraph, DetectsCycles)
{
    LocalGraph g;
    const uint32_t a = g.addNode("A");
    const uint32_t b = g.addNode("C");
    g.addEdge(a, b);
    g.addEdge(b, a);
    g.finalize();
    EXPECT_FALSE(g.isDag());
    EXPECT_TRUE(g.topoOrder().empty());
}

TEST(LocalGraph, TopoOrderRespectsEdges)
{
    LocalGraph g;
    for (int i = 0; i < 6; ++i)
        g.addNode("A");
    g.addEdge(3, 1);
    g.addEdge(1, 0);
    g.addEdge(4, 2);
    g.addEdge(0, 5);
    g.finalize();
    ASSERT_TRUE(g.isDag());
    std::vector<uint32_t> position(6);
    const auto &order = g.topoOrder();
    for (uint32_t i = 0; i < order.size(); ++i)
        position[order[i]] = i;
    EXPECT_LT(position[3], position[1]);
    EXPECT_LT(position[1], position[0]);
    EXPECT_LT(position[4], position[2]);
    EXPECT_LT(position[0], position[5]);
}

TEST(LocalGraph, SplitTo1bpPreservesSpelledWalks)
{
    LocalGraph g;
    const uint32_t a = g.addNode("ACG");
    const uint32_t b = g.addNode("TT");
    g.addEdge(a, b);
    g.finalize();
    std::vector<uint32_t> first;
    const LocalGraph split = g.splitTo1bp(&first);
    EXPECT_EQ(split.nodeCount(), 5u);
    EXPECT_EQ(split.edgeCount(), 4u); // 3 internal + 1 boundary
    EXPECT_TRUE(split.isDag());
    // Walk from first[a]: A -> C -> G -> T -> T.
    std::string spelled;
    uint32_t cur = first[a];
    for (;;) {
        spelled.push_back(seq::decodeBase(split.nodeSeq(cur)[0]));
        const auto succ = split.successors(cur);
        if (succ.empty())
            break;
        cur = succ[0];
    }
    EXPECT_EQ(spelled, "ACGTT");
}

TEST(LocalGraph, DuplicateEdgesCollapse)
{
    LocalGraph g;
    g.addNode("A");
    g.addNode("C");
    g.addEdge(0, 1);
    g.addEdge(0, 1);
    g.finalize();
    EXPECT_EQ(g.edgeCount(), 1u);
}

} // namespace
} // namespace pgb::graph
