/**
 * @file
 * Quickstart: the PangenomicsBench public API in one page.
 *
 *   1. simulate a small pangenome (graph + haplotypes),
 *   2. simulate sequencing reads from one haplotype,
 *   3. map them with the vg-map-profile Seq2Graph pipeline,
 *   4. run one GSSW kernel call directly,
 *   5. print the stage breakdown.
 *
 * Run:  ./example_quickstart [base_length]
 */

#include <cstdio>
#include <cstdlib>

#include "align/gssw.hpp"
#include "pipeline/mapper.hpp"
#include "seq/read_sim.hpp"
#include "synth/pangenome_sim.hpp"

int
main(int argc, char **argv)
{
    using namespace pgb;

    const size_t base_length =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50000;

    // 1. A synthetic pangenome standing in for an HPRC chromosome.
    const auto pangenome = synth::simulatePangenome(
        synth::mGraphLikeConfig(base_length, /* seed */ 42));
    const auto stats = pangenome.graph.stats();
    std::printf("pangenome: %zu nodes, %zu edges, %zu paths, "
                "avg node %.2f bp\n",
                stats.nodeCount, stats.edgeCount, stats.pathCount,
                stats.avgNodeLength);

    // 2. Illumina-like short reads from haplotype 0.
    seq::ReadSimulator simulator(seq::ReadProfile::shortRead(), 7);
    std::vector<seq::Sequence> reads;
    for (const auto &read :
         simulator.sampleMany(pangenome.haplotypes[0], 200)) {
        reads.push_back(read.read);
    }

    // 3. Map with the vg map profile (GSSW alignment kernel).
    pipeline::MapperConfig config;
    config.profile = pipeline::ToolProfile::kVgMap;
    config.threads = 2;
    pipeline::Seq2GraphMapper mapper(pangenome.graph, config);
    const auto report = mapper.mapReads(reads);
    std::printf("mapped %llu/%llu reads\n",
                static_cast<unsigned long long>(report.mappedReads),
                static_cast<unsigned long long>(report.reads));
    for (const auto &[stage, seconds] : report.timers.stages()) {
        std::printf("  stage %-13s %8.3f ms (%4.1f%%)\n", stage.c_str(),
                    seconds * 1e3, 100.0 * seconds /
                    report.timers.total());
    }

    // 4. One GSSW kernel call on a captured trace.
    const auto traces = mapper.captureAlignTraces(reads, 1);
    if (!traces.empty()) {
        const auto result = align::gsswAlign(
            traces[0].subgraph, traces[0].query,
            align::ScoreParams::mappingDefaults());
        std::printf("GSSW: subgraph of %zu nodes, best score %d at "
                    "node %u (%llu DP cells)\n",
                    traces[0].subgraph.nodeCount(), result.best.score,
                    result.best.node,
                    static_cast<unsigned long long>(
                        result.cellsComputed));
    }
    return 0;
}
