/**
 * @file
 * Scenario: the full downstream workflow the paper motivates (§1) —
 * build a pangenome graph from assemblies, then deconstruct it back
 * into variant records with GBWT-counted haplotype support, and
 * check the calls against the simulator's ground truth.
 *
 * Run:  ./example_call_variants [bases] [haplotypes]
 */

#include <cstdio>
#include <cstdlib>
#include <map>

#include "analysis/deconstruct.hpp"
#include "core/thread_pool.hpp"
#include "pipeline/graph_build.hpp"
#include "synth/pangenome_sim.hpp"

int
main(int argc, char **argv)
{
    using namespace pgb;

    const size_t bases =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 30000;
    const size_t haplotypes =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 8;

    // Ground truth: a simulated population.
    synth::PangenomeConfig config = synth::mGraphLikeConfig(bases, 77);
    config.haplotypeCount = haplotypes;
    const auto pangenome = synth::simulatePangenome(config);
    std::printf("simulated %zu haplotypes with %zu variants\n",
                haplotypes, pangenome.variants.size());

    // Build a graph from the assemblies alone (PGGB pipeline): the
    // builder never sees the variant list.
    std::vector<seq::Sequence> assemblies;
    assemblies.push_back(pangenome.reference);
    for (const auto &hap : pangenome.haplotypes)
        assemblies.push_back(hap);
    pipeline::PggbParams params;
    params.threads = core::hardwareThreads();
    params.layoutIterations = 3;
    const auto report = pipeline::buildPggb(assemblies, params);
    std::printf("built graph: %zu nodes, %zu edges\n",
                report.graph.stats().nodeCount,
                report.graph.stats().edgeCount);

    // Deconstruct the built graph against its reference path.
    graph::PathId ref_path = 0;
    for (graph::PathId p = 0; p < report.graph.pathCount(); ++p) {
        if (report.graph.pathName(p) == "ref")
            ref_path = p;
    }
    const auto calls =
        analysis::deconstructVariants(report.graph, ref_path);

    // Compare call positions against the injected variant pool.
    std::map<uint64_t, bool> truth;
    for (const auto &v : pangenome.variants)
        truth[v.pos] = false;
    size_t true_positive = 0;
    for (const auto &call : calls) {
        auto it = truth.find(call.refPosition);
        if (it != truth.end() && !it->second) {
            it->second = true;
            ++true_positive;
        }
    }
    std::printf("deconstructed %zu sites; %zu/%zu injected variants "
                "recovered (%.1f%% recall, %.1f%% precision)\n",
                calls.size(), true_positive,
                pangenome.variants.size(),
                100.0 * static_cast<double>(true_positive) /
                    static_cast<double>(pangenome.variants.size()),
                100.0 * static_cast<double>(true_positive) /
                    static_cast<double>(calls.empty() ? 1
                                                      : calls.size()));

    // Show the first few calls.
    std::printf("\n%-8s %-12s %-16s %s\n", "POS", "REF", "ALT",
                "SUPPORT(ref;alt)");
    for (size_t i = 0; i < std::min<size_t>(8, calls.size()); ++i) {
        const auto &v = calls[i];
        std::printf("%-8llu %-12s %-16s %u;%u\n",
                    static_cast<unsigned long long>(v.refPosition),
                    v.refAllele.empty() ? "-" : v.refAllele.c_str(),
                    v.altAlleles[0].empty() ? "-"
                                            : v.altAlleles[0].c_str(),
                    v.refSupport, v.altSupport[0]);
    }
    return 0;
}
