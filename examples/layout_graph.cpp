/**
 * @file
 * Scenario: compute a 2-D layout of a pangenome graph with PGSGD (the
 * odgi-layout visualization step) on the CPU and on the simulated
 * GPU, and emit the coordinates as TSV for plotting.
 *
 * Run:  ./example_layout_graph [graph.gfa [layout.tsv]]
 */

#include <cstdio>

#include "core/thread_pool.hpp"
#include "core/timer.hpp"
#include <fstream>

#include "gpu/pgsgd_gpu.hpp"
#include "graph/gfa.hpp"
#include "layout/pgsgd.hpp"
#include "synth/pangenome_sim.hpp"

int
main(int argc, char **argv)
{
    using namespace pgb;

    graph::PanGraph graph;
    if (argc >= 2) {
        graph = graph::readGfaFile(argv[1]);
    } else {
        graph = synth::simulatePangenome(
                    synth::mGraphLikeConfig(40000, 31))
                    .graph;
    }
    std::printf("layout of %zu nodes / %zu paths\n", graph.nodeCount(),
                graph.pathCount());

    const layout::PathIndex index(graph);

    // --- CPU Hogwild! run.
    layout::Layout cpu_layout(graph.nodeCount(), 5);
    layout::PgsgdParams params;
    params.iterations = 30;
    params.threads = core::hardwareThreads();
    core::WallTimer timer;
    const auto cpu = layout::pgsgdLayout(index, cpu_layout, params);
    std::printf("CPU  PGSGD: stress %.4f -> %.4f, %llu updates, "
                "%.1f ms (%u threads)\n",
                cpu.stressBefore, cpu.stressAfter,
                static_cast<unsigned long long>(cpu.updates),
                timer.milliseconds(), params.threads);

    // --- Simulated-GPU run.
    layout::Layout gpu_layout(graph.nodeCount(), 5);
    gpu::PgsgdGpuParams gpu_params;
    gpu_params.sgd = params;
    gpu_params.sgd.threads = 1;
    const auto gpu = gpu::pgsgdGpuRun(gpusim::DeviceSpec::rtxA6000(),
                                      index, gpu_layout, gpu_params);
    std::printf("GPU  PGSGD: stress %.4f -> %.4f, occupancy %.1f%%, "
                "warp util %.1f%%, %.2f ms simulated\n",
                gpu.layout.stressBefore, gpu.layout.stressAfter,
                100.0 * gpu.stats.achievedOccupancy,
                100.0 * gpu.stats.warpUtilization,
                gpu.stats.simSeconds * 1e3);

    if (argc >= 3) {
        std::ofstream out(argv[2]);
        out << "node\tx\ty\n";
        for (graph::NodeId node = 0; node < graph.nodeCount(); ++node) {
            out << node << '\t'
                << cpu_layout.x(layout::Layout::startPoint(node))
                << '\t'
                << cpu_layout.y(layout::Layout::startPoint(node))
                << '\n';
        }
        std::printf("wrote %s\n", argv[2]);
    }
    return 0;
}
