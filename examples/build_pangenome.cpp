/**
 * @file
 * Scenario: build a pangenome graph from a set of assemblies with
 * either graph-building pipeline (paper Figure 3) and write it as
 * GFA.
 *
 * Run:  ./example_build_pangenome [pggb|mc] [assemblies.fa out.gfa]
 *
 * With no FASTA argument, 8 synthetic haplotypes are generated.
 */

#include <cstdio>

#include "core/thread_pool.hpp"
#include <cstring>

#include "graph/gfa.hpp"
#include "pipeline/graph_build.hpp"
#include "seq/fasta.hpp"
#include "synth/pangenome_sim.hpp"

int
main(int argc, char **argv)
{
    using namespace pgb;

    const bool use_mc = argc > 1 && std::strcmp(argv[1], "mc") == 0;
    std::vector<seq::Sequence> assemblies;
    if (argc >= 3) {
        assemblies = seq::readFastaFile(argv[2]);
    } else {
        const auto pangenome = synth::simulatePangenome(
            synth::mGraphLikeConfig(30000, 21));
        assemblies.push_back(pangenome.reference);
        for (size_t h = 0; h < 7; ++h)
            assemblies.push_back(pangenome.haplotypes[h]);
    }
    std::printf("building a pangenome from %zu assemblies with %s\n",
                assemblies.size(), use_mc ? "Minigraph-Cactus" : "PGGB");

    pipeline::GraphBuildReport report;
    if (use_mc) {
        pipeline::McParams params;
        params.threads = core::hardwareThreads();
        report = pipeline::buildMinigraphCactus(assemblies, params);
        std::printf("discovered %llu bubbles\n",
                    static_cast<unsigned long long>(report.bubbles));
    } else {
        pipeline::PggbParams params;
        params.threads = core::hardwareThreads();
        report = pipeline::buildPggb(assemblies, params);
        std::printf("%llu pairwise matches -> %llu closure classes\n",
                    static_cast<unsigned long long>(report.matches),
                    static_cast<unsigned long long>(
                        report.closureClasses));
    }

    const auto stats = report.graph.stats();
    std::printf("graph: %zu nodes, %zu edges, %zu paths, %zu bases "
                "(inputs: %zu bases)\n",
                stats.nodeCount, stats.edgeCount, stats.pathCount,
                stats.totalBases, [&] {
                    size_t total = 0;
                    for (const auto &a : assemblies)
                        total += a.size();
                    return total;
                }());
    for (const auto &[stage, seconds] : report.timers.stages()) {
        std::printf("  stage %-14s %8.1f ms\n", stage.c_str(),
                    seconds * 1e3);
    }
    std::printf("layout stress %.3f -> %.3f\n",
                report.layoutStressBefore, report.layoutStressAfter);

    if (argc >= 4) {
        graph::writeGfaFile(argv[3], report.graph);
        std::printf("wrote %s\n", argv[3]);
    }
    return 0;
}
