/**
 * @file
 * Scenario: compare all four Seq2Graph mapping tool profiles on the
 * same workload — the paper's Figure 2 in miniature, on your own data
 * or a synthetic chromosome.
 *
 * Run:  ./example_map_reads [graph.gfa reads.fastq]
 *
 * With no arguments a synthetic pangenome and simulated short/long
 * reads are used; with arguments the graph is loaded from GFA and the
 * reads from FASTQ.
 */

#include <cstdio>

#include "core/thread_pool.hpp"
#include <fstream>

#include "graph/gfa.hpp"
#include "pipeline/mapper.hpp"
#include "seq/fasta.hpp"
#include "seq/read_sim.hpp"
#include "synth/pangenome_sim.hpp"

int
main(int argc, char **argv)
{
    using namespace pgb;

    graph::PanGraph graph;
    std::vector<seq::Sequence> short_reads, long_reads;

    if (argc >= 3) {
        graph = graph::readGfaFile(argv[1]);
        std::ifstream input(argv[2]);
        short_reads = seq::readFastq(input);
        long_reads = short_reads;
        std::printf("loaded %zu-node graph, %zu reads\n",
                    graph.nodeCount(), short_reads.size());
    } else {
        const auto pangenome = synth::simulatePangenome(
            synth::mGraphLikeConfig(60000, 11));
        graph = pangenome.graph;
        seq::ReadSimulator short_sim(seq::ReadProfile::shortRead(), 1);
        seq::ReadProfile long_profile = seq::ReadProfile::longRead();
        long_profile.readLength = 2000; // scaled-down HiFi
        seq::ReadSimulator long_sim(long_profile, 2);
        for (int r = 0; r < 150; ++r) {
            short_reads.push_back(
                short_sim.sample(pangenome.haplotypes[r % 14]).read);
        }
        for (int r = 0; r < 20; ++r) {
            long_reads.push_back(
                long_sim.sample(pangenome.haplotypes[r % 14]).read);
        }
        std::printf("synthetic graph: %zu nodes; %zu short + %zu long "
                    "reads\n",
                    graph.nodeCount(), short_reads.size(),
                    long_reads.size());
    }

    const pipeline::ToolProfile tools[] = {
        pipeline::ToolProfile::kVgMap,
        pipeline::ToolProfile::kVgGiraffe,
        pipeline::ToolProfile::kGraphAligner,
        pipeline::ToolProfile::kMinigraph,
    };
    std::printf("\n%-13s %8s %8s %10s %10s %10s %10s\n", "tool",
                "mapped", "total", "seed%", "chain%", "filter%",
                "align%");
    for (pipeline::ToolProfile tool : tools) {
        auto config = pipeline::MapperConfig::forTool(tool);
        config.threads = core::hardwareThreads();
        pipeline::Seq2GraphMapper mapper(graph, config);
        const bool long_mode =
            tool == pipeline::ToolProfile::kGraphAligner ||
            tool == pipeline::ToolProfile::kMinigraph;
        const auto &reads = long_mode ? long_reads : short_reads;
        const auto report = mapper.mapReads(reads);
        const double total = report.timers.total();
        auto pct = [&](const char *stage) {
            return total == 0.0
                ? 0.0 : 100.0 * report.timers.seconds(stage) / total;
        };
        std::printf("%-13s %8llu %8llu %9.1f%% %9.1f%% %9.1f%% "
                    "%9.1f%%\n",
                    pipeline::toolName(tool),
                    static_cast<unsigned long long>(report.mappedReads),
                    static_cast<unsigned long long>(report.reads),
                    pct("seed"), pct("cluster_chain"), pct("filter"),
                    pct("align"));
    }
    return 0;
}
