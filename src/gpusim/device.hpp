/**
 * @file
 * GPU device model and occupancy calculator.
 *
 * No CUDA hardware is available in this reproduction, so the two GPU
 * kernels (TSU, PGSGD-GPU) run on an execution-driven SIMT simulator
 * (see DESIGN.md §1). DeviceSpec carries the RTX A6000 parameters the
 * paper profiles on (Table 5); computeOccupancy implements the CUDA
 * occupancy calculation, which reproduces the paper's §5.3 numbers
 * exactly: block 32 -> 33.3% (block-limited), PGSGD's 1024 threads at
 * 44 regs -> 66.7% (register-limited), 256 threads -> 83.3%.
 */

#ifndef PGB_GPUSIM_DEVICE_HPP
#define PGB_GPUSIM_DEVICE_HPP

#include <cstdint>

namespace pgb::gpusim {

/** Physical parameters of the simulated GPU. */
struct DeviceSpec
{
    uint32_t warpSize = 32;
    uint32_t smCount = 84;
    uint32_t maxThreadsPerSm = 1536;
    uint32_t maxBlocksPerSm = 16;
    uint32_t registersPerSm = 65536;
    uint32_t schedulersPerSm = 4;
    double clockGhz = 1.80;
    double memBandwidthGBs = 768.0;
    double memLatencyCycles = 400.0;
    uint32_t coalesceBytes = 128; ///< L1 transaction granule
    uint32_t dramSectorBytes = 32; ///< DRAM fetch granularity (Ampere)

    /** The paper's evaluation GPU (Table 5). */
    static DeviceSpec rtxA6000();
};

/** Result of the occupancy calculation for one launch shape. */
struct Occupancy
{
    uint32_t blocksPerSm = 0;
    uint32_t warpsPerSm = 0;
    double theoretical = 0.0; ///< warpsPerSm / maxWarpsPerSm
    const char *limiter = "none";
};

/**
 * CUDA-style occupancy: how many blocks of @p block_threads threads at
 * @p regs_per_thread registers fit on one SM.
 */
Occupancy computeOccupancy(const DeviceSpec &device,
                           uint32_t block_threads,
                           uint32_t regs_per_thread);

} // namespace pgb::gpusim

#endif // PGB_GPUSIM_DEVICE_HPP
