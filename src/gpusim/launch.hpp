/**
 * @file
 * Execution-driven SIMT kernel launches.
 *
 * GPU kernels are written as per-warp functions: the kernel body runs
 * every lane of a warp in lockstep (plain C++, functionally exact) and
 * reports each warp-instruction to its WarpContext — the active lane
 * mask (divergence), and per-lane memory addresses (coalescing). The
 * launcher aggregates those reports into the timing/utilization model
 * and the Table 7 metrics:
 *
 *  - warp utilization = active lane-slots / (issued instructions x 32)
 *  - memory transactions = distinct 128 B segments per access
 *  - achieved occupancy = theoretical x issue-slot activity
 *  - simulated time = max(issue-throughput, DRAM bandwidth,
 *    latency-hiding limit) across the launch
 *
 * An optional CacheSim (A6000-like L1/L2) filters transactions to
 * DRAM and reports the hit rates discussed in the paper's §5.3
 * block-size study.
 */

#ifndef PGB_GPUSIM_LAUNCH_HPP
#define PGB_GPUSIM_LAUNCH_HPP

#include <cstdint>
#include <functional>
#include <span>

#include "gpusim/device.hpp"
#include "prof/cache_sim.hpp"

namespace pgb::gpusim {

/** Shape of one kernel launch. */
struct LaunchConfig
{
    uint32_t blockThreads = 32;
    uint32_t regsPerThread = 40;
    uint64_t totalWarps = 1; ///< grid size in warps
    bool modelCaches = true; ///< run transactions through the GPU cache
};

/** Per-warp instruction/memory accounting interface. */
class WarpContext
{
  public:
    WarpContext(const DeviceSpec &device, prof::CacheSim *cache)
        : device_(device), cache_(cache)
    {
    }

    /**
     * Issue one compute warp-instruction with @p active_mask lanes
     * doing useful work (bit i = lane i).
     */
    void
    issue(uint32_t active_mask)
    {
        ++issued_;
        activeLaneSlots_ += popcount32(active_mask);
    }

    /** Issue @p count uniform (fully-active) warp-instructions. */
    void
    issueUniform(uint64_t count)
    {
        issued_ += count;
        activeLaneSlots_ += count * device_.warpSize;
    }

    /**
     * One memory warp-instruction: @p addresses holds one address per
     * active lane (inactive lanes excluded by the caller);
     * @p bytes_per_lane bytes each. Coalesced into transaction granules.
     */
    void memAccess(std::span<const uint64_t> addresses,
                   uint32_t bytes_per_lane);

    uint64_t issued() const { return issued_; }
    uint64_t activeLaneSlots() const { return activeLaneSlots_; }
    uint64_t transactions() const { return transactions_; }
    uint64_t dramTransactions() const { return dramTransactions_; }

  private:
    static uint32_t popcount32(uint32_t x);

    const DeviceSpec &device_;
    prof::CacheSim *cache_;
    uint64_t issued_ = 0;
    uint64_t activeLaneSlots_ = 0;
    uint64_t transactions_ = 0;
    uint64_t dramTransactions_ = 0;

    friend class Launcher;
};

/** Aggregated launch metrics (the Table 7 rows). */
struct KernelStats
{
    Occupancy occupancy;
    double achievedOccupancy = 0.0;
    double warpUtilization = 0.0;     ///< fraction of lane slots useful
    double memBandwidthUtil = 0.0;    ///< DRAM bytes/s over peak
    double simSeconds = 0.0;
    double issueIntervalCycles = 0.0; ///< avg cycles between issues/warp
    uint64_t instructions = 0;
    uint64_t transactions = 0;
    double l1HitRate = 0.0;
    double l2HitRate = 0.0;
};

/**
 * Run @p warp_fn once per warp (sequentially, deterministic) and fold
 * the per-warp accounting into launch-level metrics.
 */
KernelStats launchKernel(
    const DeviceSpec &device, const LaunchConfig &config,
    const std::function<void(uint64_t warp_id, WarpContext &)> &warp_fn);

} // namespace pgb::gpusim

#endif // PGB_GPUSIM_LAUNCH_HPP
