#include "gpusim/device.hpp"

#include <algorithm>

#include "core/logging.hpp"

namespace pgb::gpusim {

DeviceSpec
DeviceSpec::rtxA6000()
{
    return DeviceSpec{};
}

Occupancy
computeOccupancy(const DeviceSpec &device, uint32_t block_threads,
                 uint32_t regs_per_thread)
{
    if (block_threads == 0)
        core::fatal("computeOccupancy: empty block");
    Occupancy occupancy;

    const uint32_t by_threads =
        device.maxThreadsPerSm / block_threads;
    const uint32_t by_blocks = device.maxBlocksPerSm;
    // Register allocation granularity approximated per block.
    const uint32_t regs_per_block = block_threads * regs_per_thread;
    const uint32_t by_regs = regs_per_block == 0
        ? by_blocks : device.registersPerSm / regs_per_block;

    occupancy.blocksPerSm = std::min({by_threads, by_blocks, by_regs});
    if (occupancy.blocksPerSm == by_regs &&
        by_regs < std::min(by_threads, by_blocks)) {
        occupancy.limiter = "registers";
    } else if (occupancy.blocksPerSm == by_blocks &&
               by_blocks < std::min(by_threads, by_regs)) {
        occupancy.limiter = "blocks";
    } else {
        occupancy.limiter = "threads";
    }

    const uint32_t warps_per_block =
        (block_threads + device.warpSize - 1) / device.warpSize;
    occupancy.warpsPerSm = occupancy.blocksPerSm * warps_per_block;
    const uint32_t max_warps = device.maxThreadsPerSm / device.warpSize;
    occupancy.theoretical =
        static_cast<double>(occupancy.warpsPerSm) /
        static_cast<double>(max_warps);
    return occupancy;
}

} // namespace pgb::gpusim
