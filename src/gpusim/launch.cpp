#include "gpusim/launch.hpp"

#include <algorithm>
#include <bit>
#include <unordered_set>
#include <vector>

#include "core/logging.hpp"

namespace pgb::gpusim {

uint32_t
WarpContext::popcount32(uint32_t x)
{
    return static_cast<uint32_t>(std::popcount(x));
}

void
WarpContext::memAccess(std::span<const uint64_t> addresses,
                       uint32_t bytes_per_lane)
{
    // The memory instruction itself occupies an issue slot; lanes with
    // an address are the active ones.
    ++issued_;
    activeLaneSlots_ += addresses.size();

    // Coalesce into transaction granules (128 B on the A6000).
    const uint64_t granule = device_.coalesceBytes;
    // Warps touch <= 32 lanes; a flat scan beats a hash set here.
    uint64_t segments[64];
    size_t n_segments = 0;
    auto add_segment = [&](uint64_t segment) {
        for (size_t i = 0; i < n_segments; ++i) {
            if (segments[i] == segment)
                return;
        }
        if (n_segments < 64)
            segments[n_segments++] = segment;
    };
    for (uint64_t address : addresses) {
        add_segment(address / granule);
        if (bytes_per_lane > 1)
            add_segment((address + bytes_per_lane - 1) / granule);
    }
    transactions_ += n_segments;
    if (cache_ != nullptr) {
        for (size_t i = 0; i < n_segments; ++i) {
            // Replay each transaction through the GPU cache; misses at
            // the last level reach DRAM.
            const uint64_t before_l2_misses = cache_->stats(1).misses;
            cache_->access(segments[i] * granule,
                           static_cast<uint32_t>(granule));
            dramTransactions_ +=
                cache_->stats(1).misses - before_l2_misses;
        }
    } else {
        dramTransactions_ += n_segments;
    }
}

KernelStats
launchKernel(
    const DeviceSpec &device, const LaunchConfig &config,
    const std::function<void(uint64_t warp_id, WarpContext &)> &warp_fn)
{
    if (config.totalWarps == 0)
        core::fatal("launchKernel: zero warps");

    KernelStats stats;
    stats.occupancy = computeOccupancy(device, config.blockThreads,
                                       config.regsPerThread);
    if (stats.occupancy.blocksPerSm == 0)
        core::fatal("launchKernel: launch shape does not fit on an SM");

    prof::CacheSim cache = prof::CacheSim::gpuA6000();
    prof::CacheSim *cache_ptr = config.modelCaches ? &cache : nullptr;

    struct WarpCost
    {
        uint64_t issued;
        uint64_t laneSlots;
        uint64_t transactions;
        uint64_t dram;
    };
    std::vector<WarpCost> costs;
    costs.reserve(config.totalWarps);

    uint64_t total_issued = 0, total_lane_slots = 0;
    uint64_t total_transactions = 0, total_dram = 0;
    for (uint64_t warp = 0; warp < config.totalWarps; ++warp) {
        WarpContext context(device, cache_ptr);
        warp_fn(warp, context);
        costs.push_back({context.issued(), context.activeLaneSlots(),
                         context.transactions(),
                         context.dramTransactions()});
        total_issued += context.issued();
        total_lane_slots += context.activeLaneSlots();
        total_transactions += context.transactions();
        total_dram += context.dramTransactions();
    }

    stats.instructions = total_issued;
    stats.transactions = total_transactions;
    stats.warpUtilization = total_issued == 0
        ? 0.0 : static_cast<double>(total_lane_slots) /
                (static_cast<double>(total_issued) * device.warpSize);

    // ---- Timing: waves of resident warps; each wave is bounded by
    // issue throughput, DRAM bandwidth, and the longest warp's serial
    // (latency-exposed) execution overlapped across resident warps.
    const uint64_t resident_total = static_cast<uint64_t>(
        stats.occupancy.warpsPerSm) * device.smCount;
    const double schedulers = static_cast<double>(device.smCount) *
                              device.schedulersPerSm;
    const double bytes_per_cycle =
        device.memBandwidthGBs * 1e9 / (device.clockGhz * 1e9);

    // Latency constant for transactions served by the on-chip caches.
    constexpr double kCacheHitLatency = 40.0;
    // Outstanding memory requests a single warp overlaps (per-warp
    // memory-level parallelism); its serial critical path divides by
    // this.
    constexpr double kWarpMlp = 8.0;
    const double resident_per_scheduler =
        static_cast<double>(stats.occupancy.warpsPerSm) /
        device.schedulersPerSm;

    double total_cycles = 0.0;
    double resident_integral = 0.0; // warp-cycles of residency
    for (uint64_t wave_start = 0; wave_start < costs.size();
         wave_start += resident_total) {
        const uint64_t wave_end = std::min<uint64_t>(
            wave_start + resident_total, costs.size());
        uint64_t wave_issued = 0, wave_dram = 0, wave_trans = 0;
        double longest_serial = 0.0;
        double serial_sum = 0.0;
        // Residency balance uses a cache-state-independent weight so
        // the cold-cache head warps don't masquerade as imbalance.
        double balance_longest = 0.0, balance_sum = 0.0;
        for (uint64_t w = wave_start; w < wave_end; ++w) {
            wave_issued += costs[w].issued;
            wave_dram += costs[w].dram;
            wave_trans += costs[w].transactions;
            const double serial =
                static_cast<double>(costs[w].issued) +
                (static_cast<double>(costs[w].dram) *
                     device.memLatencyCycles +
                 static_cast<double>(costs[w].transactions -
                                     costs[w].dram) *
                     kCacheHitLatency) / kWarpMlp;
            longest_serial = std::max(longest_serial, serial);
            serial_sum += serial;
            const double weight =
                static_cast<double>(costs[w].issued) +
                static_cast<double>(costs[w].transactions);
            balance_longest = std::max(balance_longest, weight);
            balance_sum += weight;
        }
        const double wave_warps =
            static_cast<double>(wave_end - wave_start);
        const double throughput_cycles =
            static_cast<double>(wave_issued) / schedulers;
        const double dram_cycles =
            static_cast<double>(wave_dram) * device.dramSectorBytes /
            bytes_per_cycle;
        // Latency term: each scheduler overlaps the memory latency of
        // its resident warps; higher occupancy hides more of it (the
        // §5.3 block-size effect).
        const double wave_stall =
            static_cast<double>(wave_dram) * device.memLatencyCycles +
            static_cast<double>(wave_trans - wave_dram) *
                kCacheHitLatency;
        const double latency_cycles =
            wave_stall / schedulers /
            std::max(1.0, resident_per_scheduler);
        const double wave_cycles = std::max(
            {throughput_cycles, dram_cycles, latency_cycles,
             longest_serial});
        total_cycles += wave_cycles;
        // Residency integral: warps stay resident until their share of
        // the wave completes; approximate with work-proportional
        // completion times.
        resident_integral += wave_cycles > 0.0 && balance_longest > 0.0
            ? balance_sum / balance_longest * wave_cycles
            : wave_warps * wave_cycles;
    }

    stats.simSeconds = total_cycles / (device.clockGhz * 1e9);
    stats.memBandwidthUtil = stats.simSeconds == 0.0
        ? 0.0 : static_cast<double>(total_dram) * device.dramSectorBytes /
                stats.simSeconds / (device.memBandwidthGBs * 1e9);
    const uint64_t max_warps_total = static_cast<uint64_t>(
        device.maxThreadsPerSm / device.warpSize) * device.smCount;
    stats.achievedOccupancy = total_cycles == 0.0
        ? 0.0 : std::min(stats.occupancy.theoretical,
                         resident_integral / total_cycles /
                             static_cast<double>(max_warps_total));
    const double active_schedulers = std::min<double>(
        schedulers, static_cast<double>(
            std::min<uint64_t>(resident_total, config.totalWarps)));
    stats.issueIntervalCycles = total_issued == 0
        ? 0.0 : total_cycles * active_schedulers /
                static_cast<double>(total_issued);
    if (config.modelCaches) {
        stats.l1HitRate = 1.0 - cache.stats(0).missRate();
        stats.l2HitRate = 1.0 - cache.stats(1).missRate();
    }
    return stats;
}

} // namespace pgb::gpusim
