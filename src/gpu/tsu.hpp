/**
 * @file
 * TSU: Tsunami, the GPU wavefront aligner (Gerometta et al.), run on
 * the SIMT simulator.
 *
 * One 32-thread block (= one warp) per alignment, exactly the paper's
 * description (§3): in Next each diagonal maps to a lane; in Extend
 * the warp speculates that a diagonal has many matches and assigns one
 * cell per lane, so a diagonal that extends < 32 cells wastes lanes —
 * the control divergence that bounds TSU on long reads (Figure 9,
 * Table 7). The kernel computes real WFA scores (validated against
 * align::wfaAlign) while the WarpContext accounts divergence,
 * coalescing, and occupancy.
 */

#ifndef PGB_GPU_TSU_HPP
#define PGB_GPU_TSU_HPP

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "align/wfa.hpp"
#include "gpusim/launch.hpp"
#include "seq/sequence.hpp"

namespace pgb::gpu {

/** One alignment task. */
struct TsuPair
{
    seq::Sequence pattern;
    seq::Sequence text;
};

/** TSU launch outcome. */
struct TsuResult
{
    std::vector<int32_t> scores; ///< per pair; -1 if max score exceeded
    gpusim::KernelStats stats;
    /** Fraction of Extend rounds that used only one useful lane. */
    double singleLaneExtendFraction = 0.0;
};

/**
 * Align every pair on the simulated GPU, one warp per alignment.
 *
 * @param speculative_extend the TSU optimization (one cell per lane in
 *        Extend); false serializes Extend on lane 0 (the ablation)
 */
TsuResult tsuRun(const gpusim::DeviceSpec &device,
                 std::span<const TsuPair> pairs,
                 const align::WfaPenalties &penalties,
                 bool speculative_extend = true,
                 int32_t max_score = 1 << 24);

} // namespace pgb::gpu

#endif // PGB_GPU_TSU_HPP
