/**
 * @file
 * PGSGD-GPU: the GPU pangenome layout kernel (Li et al., SC'24) on the
 * SIMT simulator.
 *
 * Every lane of every warp independently samples an anchor pair and
 * applies a Hogwild! update, as in the CUDA implementation: per-lane
 * RNG states live in a coalesced array (one aligned segment per warp
 * read), while the coordinate updates hit uniformly random layout
 * addresses — the uncoalesced accesses that make the kernel
 * memory-bound (paper §5.3). The block-size study (1024 -> 256
 * threads) reproduces the paper's occupancy/hit-rate/speedup
 * deltas through the occupancy calculator and GPU cache model.
 */

#ifndef PGB_GPU_PGSGD_GPU_HPP
#define PGB_GPU_PGSGD_GPU_HPP

#include <cstdint>

#include "gpusim/launch.hpp"
#include "layout/pgsgd.hpp"

namespace pgb::gpu {

/** Launch shape and schedule for the GPU layout kernel. */
struct PgsgdGpuParams
{
    layout::PgsgdParams sgd;      ///< schedule (iterations, eta, zipf)
    uint32_t blockThreads = 1024; ///< paper default; 256 in the study
    uint32_t regsPerThread = 44;  ///< paper: 44 registers/thread
    uint32_t gridBlocks = 84;     ///< one block per SM by default
};

/** GPU layout outcome. */
struct PgsgdGpuResult
{
    layout::PgsgdResult layout;
    gpusim::KernelStats stats; ///< aggregated over all iterations
};

/** Run the layout schedule on the simulated GPU. */
PgsgdGpuResult pgsgdGpuRun(const gpusim::DeviceSpec &device,
                           const layout::PathIndex &index,
                           layout::Layout &layout,
                           const PgsgdGpuParams &params);

} // namespace pgb::gpu

#endif // PGB_GPU_PGSGD_GPU_HPP
