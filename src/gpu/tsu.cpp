#include "gpu/tsu.hpp"

#include <algorithm>
#include <climits>

#include "core/logging.hpp"

namespace pgb::gpu {

namespace {

using align::detail::kWfaNone;
using align::detail::WavefrontLevel;
using gpusim::WarpContext;

/** Per-warp extend accounting fed back to the launch result. */
struct ExtendCounters
{
    uint64_t rounds = 0;
    uint64_t singleLaneRounds = 0;
};

/**
 * One alignment on one warp. Mirrors align::wfaAlign exactly in the
 * scores it produces; differs only in how work maps onto lanes.
 */
int32_t
tsuAlignWarp(std::span<const uint8_t> pattern,
             std::span<const uint8_t> text,
             const align::WfaPenalties &penalties, bool speculative,
             int32_t max_score, WarpContext &warp,
             ExtendCounters &counters)
{
    const auto m = static_cast<int32_t>(pattern.size());
    const auto n = static_cast<int32_t>(text.size());
    const int32_t k_final = n - m;
    const int32_t x = penalties.mismatch;
    const int32_t oe = penalties.gapOpen + penalties.gapExtend;
    const int32_t e = penalties.gapExtend;
    constexpr uint32_t kWarp = 32;

    std::vector<WavefrontLevel> wf(1);
    wf[0].resize(0, 0);
    wf[0].m[0] = 0;

    auto valid = [&](int32_t k, int32_t h) {
        return h >= 0 && h <= n && h - k >= 0 && h - k <= m;
    };

    for (int32_t s = 0; s <= max_score; ++s) {
        WavefrontLevel &cur = wf[static_cast<size_t>(s)];

        // ---- Extend: one diagonal at a time; lanes speculate one
        // cell each along the diagonal (paper Figure 4d-right).
        for (int32_t k = cur.lo; k <= cur.hi; ++k) {
            int32_t h = cur.m[static_cast<size_t>(k - cur.lo)];
            if (h == kWfaNone)
                continue;
            int32_t v = h - k;
            if (speculative) {
                bool more = true;
                while (more && v < m && h < n) {
                    // All 32 lanes test consecutive candidate cells.
                    uint32_t matched = 0;
                    const uint32_t limit = static_cast<uint32_t>(
                        std::min<int64_t>(kWarp,
                                          std::min<int64_t>(m - v, n - h)));
                    uint64_t p_addrs[kWarp], t_addrs[kWarp];
                    for (uint32_t lane = 0; lane < limit; ++lane) {
                        p_addrs[lane] = reinterpret_cast<uint64_t>(
                            pattern.data() + v + lane);
                        t_addrs[lane] = reinterpret_cast<uint64_t>(
                            text.data() + h + lane);
                    }
                    warp.memAccess({p_addrs, limit}, 1);
                    warp.memAccess({t_addrs, limit}, 1);
                    while (matched < limit &&
                           pattern[static_cast<size_t>(v + matched)] ==
                               text[static_cast<size_t>(h + matched)]) {
                        ++matched;
                    }
                    // Useful lanes: the matched cells plus the lane
                    // that detected the mismatch (if any).
                    const uint32_t useful = std::min(matched + 1, limit);
                    warp.issue(useful >= 32 ? ~0u
                                            : ((1u << useful) - 1));
                    ++counters.rounds;
                    if (useful <= 1)
                        ++counters.singleLaneRounds;
                    v += static_cast<int32_t>(matched);
                    h += static_cast<int32_t>(matched);
                    more = matched == limit && limit == kWarp;
                }
            } else {
                // Ablation: lane 0 walks the diagonal serially.
                while (v < m && h < n &&
                       pattern[static_cast<size_t>(v)] ==
                           text[static_cast<size_t>(h)]) {
                    uint64_t p_addr = reinterpret_cast<uint64_t>(
                        pattern.data() + v);
                    uint64_t t_addr = reinterpret_cast<uint64_t>(
                        text.data() + h);
                    warp.memAccess({&p_addr, 1}, 1);
                    warp.memAccess({&t_addr, 1}, 1);
                    warp.issue(1u);
                    ++counters.rounds;
                    ++counters.singleLaneRounds;
                    ++v;
                    ++h;
                }
                warp.issue(1u); // mismatch-detecting step
            }
            cur.m[static_cast<size_t>(k - cur.lo)] = h;
        }

        // ---- Termination check (lane 0).
        warp.issue(1u);
        if (cur.getM(k_final) >= n)
            return s;
        if (s == max_score)
            break;

        // ---- Next: one diagonal per lane, chunks of 32. The new
        // level is pushed before taking source references so
        // emplace_back's reallocation cannot invalidate them.
        wf.emplace_back();
        const int32_t s_next = s + 1;
        const WavefrontLevel empty;
        auto level = [&](int32_t score) -> const WavefrontLevel & {
            if (score < 0 || score > s)
                return empty;
            return wf[static_cast<size_t>(score)];
        };
        const WavefrontLevel &src_x = level(s_next - x);
        const WavefrontLevel &src_oe = level(s_next - oe);
        const WavefrontLevel &src_e = level(s_next - e);

        int32_t lo = INT32_MAX, hi = INT32_MIN;
        for (const WavefrontLevel *src : {&src_x, &src_oe, &src_e}) {
            if (src->hi >= src->lo) {
                lo = std::min(lo, src->lo - 1);
                hi = std::max(hi, src->hi + 1);
            }
        }
        WavefrontLevel &next = wf.back();
        if (lo > hi)
            continue;
        next.resize(lo, hi);
        for (int32_t chunk = lo; chunk <= hi;
             chunk += static_cast<int32_t>(kWarp)) {
            const auto lanes = static_cast<uint32_t>(std::min<int64_t>(
                kWarp, hi - chunk + 1));
            uint64_t addrs[kWarp];
            uint64_t i_addrs[kWarp], d_addrs[kWarp];
            // Source wavefront reads: one lane-address per source
            // level (coalesced within a level).
            auto src_addrs = [&](const WavefrontLevel &src,
                                 uint64_t (&buf)[kWarp]) {
                for (uint32_t lane = 0; lane < lanes; ++lane) {
                    const int32_t k = chunk + static_cast<int32_t>(
                        lane);
                    const int32_t idx = std::clamp(
                        k - src.lo, 0,
                        std::max(0, src.hi - src.lo));
                    buf[lane] = src.m.empty()
                        ? reinterpret_cast<uint64_t>(&src)
                        : reinterpret_cast<uint64_t>(
                              src.m.data() + idx);
                }
            };
            src_addrs(src_x, addrs);
            warp.memAccess({addrs, lanes}, 4);
            src_addrs(src_oe, addrs);
            warp.memAccess({addrs, lanes}, 4);
            src_addrs(src_e, addrs);
            warp.memAccess({addrs, lanes}, 4);
            for (uint32_t lane = 0; lane < lanes; ++lane) {
                const int32_t k = chunk + static_cast<int32_t>(lane);
                const size_t idx = static_cast<size_t>(k - lo);
                int32_t ins =
                    std::max(src_oe.getM(k - 1), src_e.getI(k - 1));
                ins = ins == kWfaNone ? kWfaNone : ins + 1;
                if (ins != kWfaNone && !valid(k, ins))
                    ins = kWfaNone;
                int32_t del =
                    std::max(src_oe.getM(k + 1), src_e.getD(k + 1));
                if (del != kWfaNone && !valid(k, del))
                    del = kWfaNone;
                int32_t mis = src_x.getM(k);
                mis = mis == kWfaNone ? kWfaNone : mis + 1;
                if (mis != kWfaNone && !valid(k, mis))
                    mis = kWfaNone;
                next.i[idx] = ins;
                next.d[idx] = del;
                next.m[idx] = std::max({mis, ins, del});
                addrs[lane] = reinterpret_cast<uint64_t>(&next.m[idx]);
                i_addrs[lane] =
                    reinterpret_cast<uint64_t>(&next.i[idx]);
                d_addrs[lane] =
                    reinterpret_cast<uint64_t>(&next.d[idx]);
            }
            const uint32_t mask =
                lanes >= 32 ? ~0u : ((1u << lanes) - 1);
            // Destination writes (M/I/D) + the arithmetic chain.
            warp.memAccess({addrs, lanes}, 4);
            warp.memAccess({i_addrs, lanes}, 4);
            warp.memAccess({d_addrs, lanes}, 4);
            warp.issue(mask);
            warp.issue(mask);
            warp.issue(mask);
        }
    }
    return -1;
}

} // namespace

TsuResult
tsuRun(const gpusim::DeviceSpec &device, std::span<const TsuPair> pairs,
       const align::WfaPenalties &penalties, bool speculative_extend,
       int32_t max_score)
{
    if (pairs.empty())
        core::fatal("tsuRun: no alignment pairs");
    TsuResult result;
    result.scores.assign(pairs.size(), -1);
    ExtendCounters counters;

    gpusim::LaunchConfig config;
    config.blockThreads = 32; // TSU limits blocks to one warp
    config.regsPerThread = 40;
    config.totalWarps = pairs.size();
    // At production concurrency (the paper runs 50000 alignments) a
    // warp's private wavefront state far exceeds its share of the L2,
    // so transactions are accounted as DRAM traffic directly; the
    // single shared-cache replay would otherwise keep each warp's
    // state artificially warm.
    config.modelCaches = false;

    result.stats = gpusim::launchKernel(
        device, config, [&](uint64_t warp_id, gpusim::WarpContext &warp) {
            const TsuPair &pair = pairs[warp_id];
            result.scores[warp_id] = tsuAlignWarp(
                pair.pattern.codes(), pair.text.codes(), penalties,
                speculative_extend, max_score, warp, counters);
        });
    result.singleLaneExtendFraction = counters.rounds == 0
        ? 0.0 : static_cast<double>(counters.singleLaneRounds) /
                static_cast<double>(counters.rounds);
    return result;
}

} // namespace pgb::gpu
