#include "gpu/pgsgd_gpu.hpp"

#include <algorithm>
#include <cmath>

#include "core/logging.hpp"
#include "core/rng.hpp"

namespace pgb::gpu {

namespace {

constexpr uint32_t kWarp = 32;

} // namespace

PgsgdGpuResult
pgsgdGpuRun(const gpusim::DeviceSpec &device,
            const layout::PathIndex &index, layout::Layout &layout,
            const PgsgdGpuParams &params)
{
    using layout::Layout;
    const layout::PgsgdParams &sgd = params.sgd;

    PgsgdGpuResult result;
    result.layout.stressBefore =
        layout::layoutStress(index, layout, 10000, sgd.seed ^ 0xBEEF);

    const uint64_t total_threads =
        static_cast<uint64_t>(params.blockThreads) * params.gridBlocks;
    const uint64_t total_warps = total_threads / kWarp;
    const uint64_t updates_per_iter = static_cast<uint64_t>(
        sgd.updateFactor * static_cast<double>(index.totalSteps()));
    const uint64_t updates_per_thread = std::max<uint64_t>(
        1, updates_per_iter / total_threads);
    const double lambda = sgd.iterations <= 1
        ? 0.0
        : std::log(sgd.etaMax / sgd.etaMin) /
              static_cast<double>(sgd.iterations - 1);

    // Coalesced per-lane RNG state array (the data-layout optimization
    // the paper credits the GPU port with).
    std::vector<core::Rng> rng_states;
    rng_states.reserve(total_threads);
    for (uint64_t t = 0; t < total_threads; ++t)
        rng_states.push_back(core::Rng::forStream(sgd.seed, t));
    // 48-byte state per lane, modeled as one coalesced vector.
    std::vector<uint64_t> rng_addr_base(total_threads);
    for (uint64_t t = 0; t < total_threads; ++t) {
        rng_addr_base[t] =
            reinterpret_cast<uint64_t>(rng_states.data()) + t * 48;
    }

    gpusim::LaunchConfig config;
    config.blockThreads = params.blockThreads;
    config.regsPerThread = params.regsPerThread;
    config.totalWarps = total_warps;

    core::NullProbe probe;
    uint64_t total_updates = 0;
    gpusim::KernelStats aggregate;
    bool first_launch = true;

    for (uint32_t iter = 0; iter < sgd.iterations; ++iter) {
        const double eta =
            sgd.etaMax * std::exp(-lambda * static_cast<double>(iter));
        gpusim::KernelStats launch_stats = gpusim::launchKernel(
            device, config,
            [&](uint64_t warp_id, gpusim::WarpContext &warp) {
                const uint64_t lane0 = warp_id * kWarp;
                for (uint64_t u = 0; u < updates_per_thread; ++u) {
                    // RNG state fetch: coalesced (consecutive lanes,
                    // consecutive addresses).
                    uint64_t rng_addrs[kWarp];
                    for (uint32_t lane = 0; lane < kWarp; ++lane)
                        rng_addrs[lane] = rng_addr_base[lane0 + lane];
                    warp.memAccess({rng_addrs, kWarp}, 48);

                    // Each lane samples a pair and updates. Lanes with
                    // degenerate pairs idle (small divergence; the CUDA
                    // port's warp merging keeps this rare).
                    uint32_t active = 0;
                    // Coordinate addresses per lane: anchor A and B
                    // are separate warp load/store instructions.
                    uint64_t xa[kWarp], ya[kWarp], xb[kWarp],
                        yb[kWarp];
                    uint32_t n_addr = 0;
                    for (uint32_t lane = 0; lane < kWarp; ++lane) {
                        core::Rng &rng = rng_states[lane0 + lane];
                        size_t step_a, step_b;
                        if (!layout::pgsgddetail::samplePair(
                                index, sgd, rng, probe, step_a,
                                step_b)) {
                            continue;
                        }
                        const uint64_t off_a = index.stepOffset(step_a);
                        const uint64_t off_b = index.stepOffset(step_b);
                        const double target = off_a > off_b
                            ? static_cast<double>(off_a - off_b)
                            : static_cast<double>(off_b - off_a);
                        if (target <= 0.0)
                            continue;
                        const size_t pa = Layout::startPoint(
                            index.stepNode(step_a));
                        const size_t pb = Layout::startPoint(
                            index.stepNode(step_b));
                        if (pa == pb)
                            continue;
                        layout::pgsgddetail::updatePair(
                            layout.xData(), layout.yData(), pa, pb,
                            target, eta, probe);
                        ++total_updates;
                        active |= 1u << lane;
                        // Uncoalesced coordinate traffic: two random
                        // points per lane, x and y arrays.
                        xa[n_addr] = reinterpret_cast<uint64_t>(
                            layout.xData() + pa);
                        ya[n_addr] = reinterpret_cast<uint64_t>(
                            layout.yData() + pa);
                        xb[n_addr] = reinterpret_cast<uint64_t>(
                            layout.xData() + pb);
                        yb[n_addr] = reinterpret_cast<uint64_t>(
                            layout.yData() + pb);
                        ++n_addr;
                    }
                    // Loads then stores of the coordinates (read-
                    // modify-write), plus the arithmetic chain.
                    for (int rmw = 0; rmw < 2; ++rmw) {
                        warp.memAccess({xa, n_addr}, 8);
                        warp.memAccess({ya, n_addr}, 8);
                        warp.memAccess({xb, n_addr}, 8);
                        warp.memAccess({yb, n_addr}, 8);
                    }
                    for (int op = 0; op < 14; ++op)
                        warp.issue(active);
                }
            });
        // Aggregate: launches are statistically identical, so sum the
        // extensive metrics and average the intensive ones uniformly.
        if (first_launch) {
            aggregate = launch_stats;
            first_launch = false;
        } else {
            const double n = static_cast<double>(iter);
            aggregate.simSeconds += launch_stats.simSeconds;
            aggregate.instructions += launch_stats.instructions;
            aggregate.transactions += launch_stats.transactions;
            auto fold = [n](double &mean, double sample) {
                mean += (sample - mean) / (n + 1.0);
            };
            fold(aggregate.warpUtilization,
                 launch_stats.warpUtilization);
            fold(aggregate.achievedOccupancy,
                 launch_stats.achievedOccupancy);
            fold(aggregate.memBandwidthUtil,
                 launch_stats.memBandwidthUtil);
            fold(aggregate.l1HitRate, launch_stats.l1HitRate);
            fold(aggregate.l2HitRate, launch_stats.l2HitRate);
            fold(aggregate.issueIntervalCycles,
                 launch_stats.issueIntervalCycles);
        }
    }

    result.stats = aggregate;
    result.layout.updates = total_updates;
    result.layout.stressAfter =
        layout::layoutStress(index, layout, 10000, sgd.seed ^ 0xF00D);
    return result;
}

} // namespace pgb::gpu
