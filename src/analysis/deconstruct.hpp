/**
 * @file
 * Superbubble detection and variant deconstruction.
 *
 * The paper motivates graph building and Seq2Graph mapping as the
 * prerequisites of downstream analyses like variant calling (§1).
 * This module implements that downstream step over our graphs:
 * superbubbles (Onodera-style source/sink pairs enclosing all
 * alternative walks) are enumerated along a reference path and turned
 * into VCF-like variant records, with per-allele haplotype support
 * counted through the GBWT — the haplotype-consistency query the
 * paper extracts as the GBWT kernel.
 *
 * Scope: forward-orientation walks (inversion bubbles are skipped);
 * bubbles with up to a bounded number of inner walks.
 */

#ifndef PGB_ANALYSIS_DECONSTRUCT_HPP
#define PGB_ANALYSIS_DECONSTRUCT_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/pangraph.hpp"

namespace pgb::analysis {

/** A superbubble: all walks from source rejoin exactly at sink. */
struct Bubble
{
    graph::Handle source;
    graph::Handle sink;
    /** Inner walks source..sink, exclusive of both ends. */
    std::vector<std::vector<graph::Handle>> walks;
};

/**
 * Detect the superbubble starting at @p source (forward walks only).
 * @param max_nodes abort when the interior exceeds this many nodes
 * @return nullopt when source does not open a (bounded) superbubble
 */
std::optional<Bubble> findSuperbubble(const graph::PanGraph &graph,
                                      graph::Handle source,
                                      size_t max_nodes = 10000);

/** One deconstructed variant site. */
struct DeconstructedVariant
{
    uint64_t refPosition = 0;     ///< 0-based offset on the ref path
    std::string refAllele;        ///< may be empty (pure insertion)
    std::vector<std::string> altAlleles;
    std::vector<uint32_t> altSupport; ///< haplotypes per alt (GBWT)
    uint32_t refSupport = 0;
};

/**
 * Walk @p ref_path and report a variant record for every superbubble
 * whose sink returns to the reference path.
 *
 * @param max_walks_per_bubble skip sites with more alternatives
 */
std::vector<DeconstructedVariant>
deconstructVariants(const graph::PanGraph &graph, graph::PathId ref_path,
                    size_t max_walks_per_bubble = 16);

} // namespace pgb::analysis

#endif // PGB_ANALYSIS_DECONSTRUCT_HPP
