#include "analysis/deconstruct.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "core/logging.hpp"
#include "index/gbwt.hpp"

namespace pgb::analysis {

using graph::Handle;
using graph::PanGraph;
using graph::PathId;

std::optional<Bubble>
findSuperbubble(const PanGraph &graph, Handle source, size_t max_nodes)
{
    if (graph.successors(source).size() < 2)
        return std::nullopt;

    // Onodera-style detection: grow the region; a node is pushed only
    // once every parent is visited; when exactly one frontier node
    // remains seen-but-unvisited, it is the sink.
    enum State : uint8_t { kSeen = 1, kVisited = 2 };
    std::unordered_map<uint32_t, uint8_t> state;
    std::vector<Handle> stack = {source};
    state[source.packed()] = kSeen;
    size_t seen_not_visited = 1;

    while (!stack.empty()) {
        const Handle v = stack.back();
        stack.pop_back();
        state[v.packed()] = kVisited;
        --seen_not_visited;
        if (state.size() > max_nodes)
            return std::nullopt;

        const auto &children = graph.successors(v);
        if (children.empty())
            return std::nullopt; // tip inside the candidate bubble
        for (Handle child : children) {
            if (child == source)
                return std::nullopt; // cycle back to the source
            auto [it, inserted] = state.emplace(child.packed(), kSeen);
            if (inserted)
                ++seen_not_visited;
            // Push once all parents are visited.
            bool ready = true;
            for (Handle parent : graph.predecessors(child)) {
                auto found = state.find(parent.packed());
                if (found == state.end() ||
                    found->second != kVisited) {
                    ready = false;
                    break;
                }
            }
            if (ready && it->second != kVisited)
                stack.push_back(child);
        }

        if (stack.size() == 1 && seen_not_visited == 1 &&
            state[stack.back().packed()] == kSeen) {
            const Handle sink = stack.back();
            if (graph.hasEdge(sink, source))
                return std::nullopt;
            Bubble bubble;
            bubble.source = source;
            bubble.sink = sink;
            return bubble;
        }
    }
    return std::nullopt;
}

namespace {

/** DFS-enumerate inner walks source -> sink (exclusive ends). */
bool
enumerateWalks(const PanGraph &graph, const Bubble &shape,
               size_t max_walks, std::vector<std::vector<Handle>> &out)
{
    std::vector<Handle> current;
    bool truncated = false;
    struct Frame
    {
        Handle handle;
        size_t depth;
    };
    std::vector<Frame> stack;
    const auto &roots = graph.successors(shape.source);
    for (auto it = roots.rbegin(); it != roots.rend(); ++it)
        stack.push_back({*it, 0});
    while (!stack.empty()) {
        const Frame frame = stack.back();
        stack.pop_back();
        current.resize(frame.depth);
        if (frame.handle == shape.sink) {
            if (out.size() >= max_walks) {
                truncated = true;
                break;
            }
            out.push_back(current);
            continue;
        }
        current.push_back(frame.handle);
        if (current.size() > 512) {
            truncated = true; // runaway walk
            break;
        }
        const auto &children = graph.successors(frame.handle);
        for (auto it = children.rbegin(); it != children.rend(); ++it)
            stack.push_back({*it, current.size()});
    }
    return !truncated;
}

std::string
spellWalk(const PanGraph &graph, const std::vector<Handle> &walk)
{
    std::string spelled;
    for (Handle step : walk)
        spelled += graph.sequenceOf(step).toString();
    return spelled;
}

} // namespace

std::vector<DeconstructedVariant>
deconstructVariants(const PanGraph &graph, PathId ref_path,
                    size_t max_walks_per_bubble)
{
    const auto &steps = graph.pathSteps(ref_path);
    const index::GbwtIndex gbwt(graph);

    std::vector<DeconstructedVariant> variants;
    uint64_t offset = 0;
    for (size_t i = 0; i < steps.size(); ++i) {
        const Handle source = steps[i];
        offset += graph.nodeLength(source.node());
        auto bubble = findSuperbubble(graph, source);
        if (!bubble)
            continue;
        // The sink must return to the reference path.
        size_t sink_index = 0;
        bool on_ref = false;
        for (size_t k = i + 1; k < steps.size(); ++k) {
            if (steps[k] == bubble->sink) {
                sink_index = k;
                on_ref = true;
                break;
            }
        }
        if (!on_ref)
            continue;
        if (!enumerateWalks(graph, *bubble, max_walks_per_bubble,
                            bubble->walks)) {
            continue; // too complex; skip the site
        }

        // Reference allele: the path's inner walk through the bubble.
        const std::vector<Handle> ref_walk(
            steps.begin() + static_cast<ptrdiff_t>(i + 1),
            steps.begin() + static_cast<ptrdiff_t>(sink_index));
        const std::string ref_allele = spellWalk(graph, ref_walk);

        DeconstructedVariant variant;
        variant.refPosition = offset; // after the source node
        variant.refAllele = ref_allele;

        auto support = [&](const std::vector<Handle> &walk) {
            std::vector<Handle> query;
            query.push_back(bubble->source);
            query.insert(query.end(), walk.begin(), walk.end());
            query.push_back(bubble->sink);
            return gbwt.find(query).size();
        };
        variant.refSupport = static_cast<uint32_t>(support(ref_walk));

        std::unordered_set<std::string> spelled_seen = {ref_allele};
        for (const auto &walk : bubble->walks) {
            const std::string spelled = spellWalk(graph, walk);
            if (!spelled_seen.insert(spelled).second)
                continue;
            variant.altAlleles.push_back(spelled);
            variant.altSupport.push_back(
                static_cast<uint32_t>(support(walk)));
        }
        if (!variant.altAlleles.empty())
            variants.push_back(std::move(variant));
    }
    return variants;
}

} // namespace pgb::analysis
