#include "obs/histogram.hpp"

#include <cmath>

namespace pgb::obs {

namespace detail {

// Defined in metrics.cpp, next to the Counter/Gauge registry.
void registerHistogram(Histogram *histogram);

} // namespace detail

Histogram::Histogram(const char *name) : name_(name)
{
    detail::registerHistogram(this);
}

void
Histogram::merge(uint64_t (&merged)[kBuckets]) const
{
    for (size_t b = 0; b < kBuckets; ++b)
        merged[b] = 0;
    for (const Shard &shard : shards_) {
        for (size_t b = 0; b < kBuckets; ++b) {
            merged[b] +=
                shard.buckets[b].load(std::memory_order_relaxed);
        }
    }
}

uint64_t
Histogram::count() const
{
    uint64_t merged[kBuckets];
    merge(merged);
    uint64_t total = 0;
    for (size_t b = 0; b < kBuckets; ++b)
        total += merged[b];
    return total;
}

uint64_t
Histogram::valueAtQuantile(double q) const
{
    uint64_t merged[kBuckets];
    merge(merged);
    uint64_t total = 0;
    for (size_t b = 0; b < kBuckets; ++b)
        total += merged[b];
    if (total == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // The sample of rank ceil(q * total) (1-based) covers fraction q.
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(total)));
    if (rank == 0)
        rank = 1;
    uint64_t seen = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
        seen += merged[b];
        if (seen >= rank)
            return bucketUpperBound(b);
    }
    return bucketUpperBound(kBuckets - 1);
}

uint64_t
Histogram::max() const
{
    uint64_t merged[kBuckets];
    merge(merged);
    for (size_t b = kBuckets; b-- > 0;) {
        if (merged[b] != 0)
            return bucketUpperBound(b);
    }
    return 0;
}

} // namespace pgb::obs
