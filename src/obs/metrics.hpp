/**
 * @file
 * Runtime metrics: process-wide counters and gauges.
 *
 * This is the *online* half of the observability layer (pgb::obs), as
 * opposed to the *offline* characterization layer (pgb::prof): prof
 * replays a kernel under an instrumented probe to model caches and
 * branches; obs rides along inside production runs and must therefore
 * be cheap enough to leave on permanently.
 *
 * A Counter is a monotonically increasing event count (tasks spawned,
 * reads mapped, bytes mapped). add() is one relaxed fetch_add on a
 * per-thread shard — cache-line-padded cells indexed by a thread-local
 * shard id — so concurrent writers on hot paths do not contend.
 * value() sums the shards; with all writers quiescent it is exact.
 *
 * A Gauge is a signed instantaneous level (queue depth): add()/sub()
 * are one relaxed fetch_add on a single atomic; exactness under
 * concurrency matters less than rough shape, so it is not sharded.
 *
 * Counters and Gauges self-register in a global registry by name
 * ("subsystem.metric", lowercase, dot-separated, like fault sites) and
 * must have static storage duration: the registry keeps raw pointers
 * for the life of the process. Subsystems whose metrics are not plain
 * counters (e.g. the fault registry's per-site hit counts) register a
 * provider callback instead; providers are polled at snapshot time.
 */

#ifndef PGB_OBS_METRICS_HPP
#define PGB_OBS_METRICS_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace pgb::obs {

namespace detail {

/** Small dense per-thread shard id (not std::thread::id). */
unsigned threadShard();

} // namespace detail

/** A monotonically increasing, thread-sharded event counter. */
class Counter
{
  public:
    /** Register the counter under @p name (a string literal). */
    explicit Counter(const char *name);

    Counter(const Counter &) = delete;
    Counter &operator=(const Counter &) = delete;

    /** Count @p n events: one relaxed atomic add on this thread's
     *  shard, unconditionally — there is no off switch to branch on. */
    void
    add(uint64_t n = 1)
    {
        cells_[detail::threadShard() & (kShards - 1)].value.fetch_add(
            n, std::memory_order_relaxed);
    }

    /** Sum of all shards; exact once concurrent writers quiesce. */
    uint64_t
    value() const
    {
        uint64_t sum = 0;
        for (const Cell &cell : cells_)
            sum += cell.value.load(std::memory_order_relaxed);
        return sum;
    }

    const char *name() const { return name_; }

  private:
    static constexpr size_t kShards = 16;

    struct alignas(64) Cell
    {
        std::atomic<uint64_t> value{0};
    };

    const char *name_;
    Cell cells_[kShards];
};

/** A signed instantaneous level (queue depth, bytes outstanding). */
class Gauge
{
  public:
    /** Register the gauge under @p name (a string literal). */
    explicit Gauge(const char *name);

    Gauge(const Gauge &) = delete;
    Gauge &operator=(const Gauge &) = delete;

    void
    add(int64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    void sub(int64_t n = 1) { add(-n); }

    void
    set(int64_t v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    int64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    const char *name() const { return name_; }

  private:
    const char *name_;
    std::atomic<int64_t> value_{0};
};

/** Callback appending (name, value) pairs at snapshot time. */
using Provider = std::function<void(
    std::vector<std::pair<std::string, int64_t>> &)>;

/** Register @p provider; polled by every snapshot() for the rest of
 *  the process lifetime. */
void registerProvider(Provider provider);

/** A point-in-time copy of every registered metric, sorted by name. */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, int64_t>> gauges;

    /** Counter value by exact name; 0 when absent. */
    uint64_t counter(const std::string &name) const;

    /** Gauge (or provider entry) value by exact name; 0 when absent. */
    int64_t gauge(const std::string &name) const;
};

/** Collect all counters, gauges, and provider entries. */
MetricsSnapshot snapshot();

} // namespace pgb::obs

#endif // PGB_OBS_METRICS_HPP
