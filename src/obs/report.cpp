#include "obs/report.hpp"

#include <sstream>

#include "core/io.hpp"
#include "obs/span.hpp"

namespace pgb::obs {

namespace {

/** Escape a metric name for a JSON string literal. */
void
appendEscaped(std::ostream &out, const std::string &text)
{
    for (const char c : text) {
        if (c == '"' || c == '\\')
            out << '\\';
        out << c;
    }
}

template <typename Entries>
void
writeObject(std::ostream &out, const Entries &entries)
{
    out << "{";
    bool first = true;
    for (const auto &[name, value] : entries) {
        if (!first)
            out << ',';
        first = false;
        out << "\n    \"";
        appendEscaped(out, name);
        out << "\": " << value;
    }
    out << "\n  }";
}

} // namespace

Report
Report::collect()
{
    Report report;
    report.metrics_ = snapshot();
    return report;
}

std::string
Report::toJson() const
{
    std::ostringstream out;
    out << "{\n  \"schema\": \"pgb.metrics.v1\",\n  \"counters\": ";
    writeObject(out, metrics_.counters);
    out << ",\n  \"gauges\": ";
    writeObject(out, metrics_.gauges);
    out << "\n}\n";
    return out.str();
}

void
Report::write(core::CheckedWriter &writer) const
{
    writer.stream() << toJson();
}

std::string
Report::summaryLine() const
{
    std::ostringstream out;
    out << "pgb metrics:";
    bool any = false;
    for (const auto &[name, value] : metrics_.counters) {
        if (value == 0)
            continue;
        out << ' ' << name << '=' << value;
        any = true;
    }
    if (!any)
        out << " (no events recorded)";
    return out.str();
}

void
writeTrace(core::CheckedWriter &writer)
{
    writer.stream() << traceToJson();
}

} // namespace pgb::obs
