/**
 * @file
 * Tracing spans: nested, thread-local, chrome://tracing-exportable.
 *
 * A Span is an RAII scope that records {name, thread, start, duration,
 * parent} into a thread-local event buffer when tracing is enabled.
 * Nesting is tracked per thread with a thread-local span stack: a span
 * opened while another span is live on the *same* thread records that
 * span as its parent. Work that migrates across threads (a stolen pool
 * task) is *reparented* by construction — it nests under whatever is
 * live on the executing thread, which for a stolen task is nothing, so
 * per-task spans appear as thread roots on the thief. That is exactly
 * the shape chrome://tracing renders meaningfully.
 *
 * Cost contract: with tracing disabled (the default), constructing a
 * Span is one relaxed atomic load and zero allocations — it may sit on
 * per-read pipeline paths without distorting the timed benches. With
 * tracing enabled, each span is two steady_clock reads plus one
 * append to a pre-grown thread-local vector; buffers are capped
 * (kMaxEventsPerThread) and overflow is counted, never reallocated
 * unbounded.
 *
 * Span names must be string literals (or otherwise outlive the trace):
 * the event buffer stores the pointer, not a copy.
 */

#ifndef PGB_OBS_SPAN_HPP
#define PGB_OBS_SPAN_HPP

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace pgb::obs {

namespace detail {

extern std::atomic<bool> tracingEnabled;

} // namespace detail

/** Whether span recording is currently on. */
inline bool
tracingOn()
{
    return detail::tracingEnabled.load(std::memory_order_relaxed);
}

/** Turn span recording on or off (off drops no recorded events). */
void enableTracing(bool on);

/** One completed span, in its thread's recording order. */
struct SpanEvent
{
    const char *name = nullptr;
    uint64_t startNanos = 0;
    uint64_t durationNanos = 0;
    uint32_t thread = 0;   ///< dense trace-local thread id
    int32_t parent = -1;   ///< index into the same thread's events
    uint16_t depth = 0;    ///< nesting depth on the executing thread
};

/** RAII tracing scope; see the file comment for the cost contract. */
class Span
{
  public:
    explicit Span(const char *name)
    {
        if (tracingOn())
            open(name);
    }

    ~Span()
    {
        if (live_)
            close();
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    void open(const char *name);
    void close();

    bool live_ = false;
    uint32_t generation_ = 0; ///< buffer generation at open time
    uint32_t slot_ = 0;
    uint64_t startNanos_ = 0;
};

/** Copy of every recorded event, grouped by thread, recording order. */
std::vector<SpanEvent> traceEvents();

/** Total recorded events across all threads. */
size_t traceEventCount();

/** Spans dropped because a thread's buffer hit its cap. */
uint64_t traceDroppedCount();

/** Drop all recorded events (buffers stay allocated). */
void clearTrace();

/**
 * The recorded trace as chrome://tracing "traceEvents" JSON (complete
 * "X" events, microsecond timestamps). Load the written file via
 * chrome://tracing or https://ui.perfetto.dev.
 */
std::string traceToJson();

} // namespace pgb::obs

#endif // PGB_OBS_SPAN_HPP
