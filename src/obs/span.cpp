#include "obs/span.hpp"

#include <memory>
#include <mutex>
#include <sstream>

#include "core/timer.hpp"

namespace pgb::obs {

namespace detail {

std::atomic<bool> tracingEnabled{false};

} // namespace detail

namespace {

/** Append nanoseconds as microseconds with three decimals. */
void
appendMicros(std::ostream &out, uint64_t nanos)
{
    const uint64_t frac = nanos % 1000;
    out << nanos / 1000 << '.' << static_cast<char>('0' + frac / 100)
        << static_cast<char>('0' + frac / 10 % 10)
        << static_cast<char>('0' + frac % 10);
}

/** Spans dropped on buffer overflow, across all threads. */
std::atomic<uint64_t> droppedSpans{0};

/**
 * One thread's recording state. `events` and `generation` are read by
 * other threads (trace export), so they are guarded by `lock`; `stack`
 * is touched only by the owning thread. Buffers are owned by the
 * global registry and never freed, so events survive thread exit.
 */
struct ThreadTrace
{
    static constexpr size_t kMaxEventsPerThread = 1u << 16;

    std::mutex lock;
    std::vector<SpanEvent> events;
    uint32_t generation = 0;
    uint32_t tid = 0;
    std::vector<uint32_t> stack; ///< open span slots, owner-only
};

struct TraceRegistry
{
    std::mutex lock;
    std::vector<std::unique_ptr<ThreadTrace>> threads;

    static TraceRegistry &
    instance()
    {
        static TraceRegistry registry;
        return registry;
    }
};

ThreadTrace &
localTrace()
{
    thread_local ThreadTrace *trace = [] {
        TraceRegistry &registry = TraceRegistry::instance();
        std::lock_guard<std::mutex> guard(registry.lock);
        auto owned = std::make_unique<ThreadTrace>();
        owned->tid = static_cast<uint32_t>(registry.threads.size());
        ThreadTrace *raw = owned.get();
        registry.threads.push_back(std::move(owned));
        return raw;
    }();
    return *trace;
}

/** Escape a span name for a JSON string literal. */
void
appendEscaped(std::ostream &out, const char *text)
{
    for (const char *p = text; *p != '\0'; ++p) {
        if (*p == '"' || *p == '\\')
            out << '\\';
        out << *p;
    }
}

} // namespace

void
enableTracing(bool on)
{
    detail::tracingEnabled.store(on, std::memory_order_relaxed);
}

void
Span::open(const char *name)
{
    ThreadTrace &trace = localTrace();
    startNanos_ = core::monotonicNanos();
    std::lock_guard<std::mutex> guard(trace.lock);
    if (trace.events.size() >= ThreadTrace::kMaxEventsPerThread) {
        droppedSpans.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    SpanEvent event;
    event.name = name;
    event.startNanos = startNanos_;
    event.thread = trace.tid;
    event.depth = static_cast<uint16_t>(trace.stack.size());
    event.parent = trace.stack.empty()
        ? -1 : static_cast<int32_t>(trace.stack.back());
    slot_ = static_cast<uint32_t>(trace.events.size());
    trace.events.push_back(event);
    trace.stack.push_back(slot_);
    generation_ = trace.generation;
    live_ = true;
}

void
Span::close()
{
    ThreadTrace &trace = localTrace();
    const uint64_t end = core::monotonicNanos();
    std::lock_guard<std::mutex> guard(trace.lock);
    // A clearTrace() between open and close invalidated the slot.
    if (trace.generation != generation_)
        return;
    trace.events[slot_].durationNanos = end - startNanos_;
    trace.stack.pop_back();
}

std::vector<SpanEvent>
traceEvents()
{
    TraceRegistry &registry = TraceRegistry::instance();
    std::vector<SpanEvent> out;
    std::lock_guard<std::mutex> registry_guard(registry.lock);
    for (const auto &trace : registry.threads) {
        std::lock_guard<std::mutex> guard(trace->lock);
        out.insert(out.end(), trace->events.begin(),
                   trace->events.end());
    }
    return out;
}

size_t
traceEventCount()
{
    TraceRegistry &registry = TraceRegistry::instance();
    size_t count = 0;
    std::lock_guard<std::mutex> registry_guard(registry.lock);
    for (const auto &trace : registry.threads) {
        std::lock_guard<std::mutex> guard(trace->lock);
        count += trace->events.size();
    }
    return count;
}

uint64_t
traceDroppedCount()
{
    return droppedSpans.load(std::memory_order_relaxed);
}

void
clearTrace()
{
    TraceRegistry &registry = TraceRegistry::instance();
    std::lock_guard<std::mutex> registry_guard(registry.lock);
    for (const auto &trace : registry.threads) {
        std::lock_guard<std::mutex> guard(trace->lock);
        trace->events.clear();
        trace->stack.clear();
        ++trace->generation;
    }
    droppedSpans.store(0, std::memory_order_relaxed);
}

std::string
traceToJson()
{
    const std::vector<SpanEvent> events = traceEvents();
    std::ostringstream out;
    out << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
    bool first = true;
    for (const SpanEvent &event : events) {
        if (!first)
            out << ',';
        first = false;
        out << "\n    {\"name\": \"";
        appendEscaped(out, event.name);
        out << "\", \"cat\": \"pgb\", \"ph\": \"X\", \"ts\": ";
        appendMicros(out, event.startNanos);
        out << ", \"dur\": ";
        appendMicros(out, event.durationNanos);
        out << ", \"pid\": 1, \"tid\": " << event.thread
            << ", \"args\": {\"depth\": " << event.depth << "}}";
    }
    out << "\n  ]\n}\n";
    return out.str();
}

} // namespace pgb::obs
