#include "obs/metrics.hpp"

#include <algorithm>
#include <mutex>

#include "obs/histogram.hpp"

namespace pgb::obs {

namespace {

/**
 * Process-wide metric registry. Counters and gauges self-register from
 * their static constructors (the same pattern as core::FaultSite), so
 * any translation unit may declare metrics without init-order
 * coordination.
 */
struct Registry
{
    std::mutex lock;
    std::vector<Counter *> counters;
    std::vector<Gauge *> gauges;
    std::vector<Histogram *> histograms;
    std::vector<Provider> providers;

    static Registry &
    instance()
    {
        static Registry registry;
        return registry;
    }
};

} // namespace

namespace detail {

unsigned
threadShard()
{
    static std::atomic<unsigned> next{0};
    thread_local const unsigned shard =
        next.fetch_add(1, std::memory_order_relaxed);
    return shard;
}

void
registerHistogram(Histogram *histogram)
{
    Registry &registry = Registry::instance();
    std::lock_guard<std::mutex> guard(registry.lock);
    registry.histograms.push_back(histogram);
}

} // namespace detail

Counter::Counter(const char *name) : name_(name)
{
    Registry &registry = Registry::instance();
    std::lock_guard<std::mutex> guard(registry.lock);
    registry.counters.push_back(this);
}

Gauge::Gauge(const char *name) : name_(name)
{
    Registry &registry = Registry::instance();
    std::lock_guard<std::mutex> guard(registry.lock);
    registry.gauges.push_back(this);
}

void
registerProvider(Provider provider)
{
    Registry &registry = Registry::instance();
    std::lock_guard<std::mutex> guard(registry.lock);
    registry.providers.push_back(std::move(provider));
}

uint64_t
MetricsSnapshot::counter(const std::string &name) const
{
    for (const auto &[entry_name, value] : counters) {
        if (entry_name == name)
            return value;
    }
    return 0;
}

int64_t
MetricsSnapshot::gauge(const std::string &name) const
{
    for (const auto &[entry_name, value] : gauges) {
        if (entry_name == name)
            return value;
    }
    return 0;
}

MetricsSnapshot
snapshot()
{
    Registry &registry = Registry::instance();
    MetricsSnapshot out;
    std::vector<std::pair<std::string, int64_t>> provided;
    {
        std::lock_guard<std::mutex> guard(registry.lock);
        out.counters.reserve(registry.counters.size());
        for (const Counter *counter : registry.counters)
            out.counters.emplace_back(counter->name(), counter->value());
        out.gauges.reserve(registry.gauges.size());
        for (const Gauge *gauge : registry.gauges)
            out.gauges.emplace_back(gauge->name(), gauge->value());
        // Histogram quantiles flatten into the same two objects: the
        // sample count with the counters, the distribution summary
        // (level-style values) with the gauges.
        for (const Histogram *histogram : registry.histograms) {
            const std::string base = histogram->name();
            out.counters.emplace_back(base + ".count",
                                      histogram->count());
            const auto level = [&](const char *suffix, uint64_t value) {
                out.gauges.emplace_back(base + suffix,
                                        static_cast<int64_t>(value));
            };
            level(".p50", histogram->valueAtQuantile(0.50));
            level(".p99", histogram->valueAtQuantile(0.99));
            level(".p999", histogram->valueAtQuantile(0.999));
            level(".max", histogram->max());
        }
        for (const Provider &provider : registry.providers)
            provider(provided);
    }
    // Provider entries are counts too; report them with the counters
    // so one flat "counters" object holds every event count.
    for (auto &[name, value] : provided)
        out.counters.emplace_back(std::move(name),
                                  static_cast<uint64_t>(value));
    std::sort(out.counters.begin(), out.counters.end());
    std::sort(out.gauges.begin(), out.gauges.end());
    return out;
}

} // namespace pgb::obs
