/**
 * @file
 * Runtime latency histogram: log-bucketed, thread-sharded quantiles.
 *
 * A Histogram records value distributions (task latencies, request
 * latencies, batch sizes) cheaply enough to sit on hot paths: like
 * obs::Counter, record() is one relaxed fetch_add on a per-thread
 * shard, so concurrent writers do not contend. Buckets are
 * log-linear (HdrHistogram-style): values below 2^kSubBits are exact,
 * larger values land in one of 2^kSubBits sub-buckets per power of
 * two, bounding the quantile error at ~12.5% — plenty for the p50/
 * p99/p999 the serving and scheduler layers report, with no dynamic
 * allocation and no locks.
 *
 * Histograms self-register in the same global registry as Counter and
 * Gauge and must have static storage duration. Every snapshot()
 * reports "<name>.count" with the counters and "<name>.p50"/".p99"/
 * ".p999"/".max" with the gauges, so histogram quantiles ride through
 * the existing `--metrics` JSON and PGB_METRICS summary unchanged.
 *
 * Quantiles are computed at read time by merging the shards; like
 * Counter::value(), the result is exact (up to bucket width) once
 * concurrent writers quiesce, which is when anyone reads it.
 */

#ifndef PGB_OBS_HISTOGRAM_HPP
#define PGB_OBS_HISTOGRAM_HPP

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "obs/metrics.hpp"

namespace pgb::obs {

/** A log-bucketed, thread-sharded value distribution. */
class Histogram
{
  public:
    /** Sub-bucket resolution: 2^3 = 8 sub-buckets per octave. */
    static constexpr unsigned kSubBits = 3;
    static constexpr size_t kBuckets =
        ((64 - kSubBits) << kSubBits) + (1u << kSubBits);

    /** Register the histogram under @p name (a string literal). */
    explicit Histogram(const char *name);

    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    /** Record one sample: a single relaxed add on this thread's
     *  shard, like Counter::add(). */
    void
    record(uint64_t value)
    {
        shards_[detail::threadShard() & (kShards - 1)]
            .buckets[bucketFor(value)]
            .fetch_add(1, std::memory_order_relaxed);
    }

    /** Total samples recorded; exact once writers quiesce. */
    uint64_t count() const;

    /**
     * Smallest bucket upper bound covering fraction @p q of all
     * samples (0 < q <= 1); 0 when the histogram is empty. The
     * answer overestimates the true quantile by at most one
     * sub-bucket width (~12.5%).
     */
    uint64_t valueAtQuantile(double q) const;

    /** Upper bound of the highest non-empty bucket; 0 when empty. */
    uint64_t max() const;

    const char *name() const { return name_; }

    /** Bucket index for @p value (log-linear; exposed for tests). */
    static constexpr size_t
    bucketFor(uint64_t value)
    {
        if (value < (uint64_t{1} << kSubBits))
            return static_cast<size_t>(value);
        const unsigned msb =
            63u - static_cast<unsigned>(std::countl_zero(value));
        const uint64_t sub = (value >> (msb - kSubBits)) &
                             ((uint64_t{1} << kSubBits) - 1);
        return static_cast<size_t>(
            ((static_cast<uint64_t>(msb) - kSubBits + 1) << kSubBits) +
            sub);
    }

    /** Largest value mapping to @p bucket (inverse of bucketFor). */
    static constexpr uint64_t
    bucketUpperBound(size_t bucket)
    {
        // Buckets below 2^(kSubBits+1) hold exactly one value each.
        if (bucket < (size_t{2} << kSubBits))
            return bucket;
        const unsigned msb = static_cast<unsigned>(bucket >> kSubBits) +
                             kSubBits - 1;
        const uint64_t sub = bucket & ((uint64_t{1} << kSubBits) - 1);
        const uint64_t lower = ((uint64_t{1} << kSubBits) + sub)
                               << (msb - kSubBits);
        return lower + ((uint64_t{1} << (msb - kSubBits)) - 1);
    }

  private:
    static constexpr size_t kShards = 8;

    struct alignas(64) Shard
    {
        std::atomic<uint64_t> buckets[kBuckets];
    };

    /** Shard-merged copy of every bucket. */
    void merge(uint64_t (&merged)[kBuckets]) const;

    const char *name_;
    Shard shards_[kShards] = {};
};

} // namespace pgb::obs

#endif // PGB_OBS_HISTOGRAM_HPP
