/**
 * @file
 * Metrics and trace export: the flat JSON report behind
 * `pgb <cmd> --metrics out.json`, the chrome://tracing JSON behind
 * `--trace trace.json`, and the PGB_METRICS=1 one-line summary.
 *
 * The metrics schema ("pgb.metrics.v1") is shared by the CLI and the
 * benches (BENCH_*.metrics.json):
 *
 *     {
 *       "schema": "pgb.metrics.v1",
 *       "counters": {"threadpool.tasks_spawned": 123, ...},
 *       "gauges": {"threadpool.queue_depth": 0, ...}
 *     }
 *
 * Counter keys include the fault registry's per-site hit counts
 * ("fault.<site>.hits") contributed through a snapshot provider.
 */

#ifndef PGB_OBS_REPORT_HPP
#define PGB_OBS_REPORT_HPP

#include <string>

#include "obs/metrics.hpp"

namespace pgb::core {
class CheckedWriter;
} // namespace pgb::core

namespace pgb::obs {

/** A collected metrics snapshot, ready for export. */
class Report
{
  public:
    /** Snapshot every registered counter, gauge, and provider. */
    static Report collect();

    /** The flat metrics JSON (schema above). */
    std::string toJson() const;

    /** Write toJson() through @p writer (caller calls finish()). */
    void write(core::CheckedWriter &writer) const;

    /** One line for stderr: every nonzero counter, space-separated. */
    std::string summaryLine() const;

    const MetricsSnapshot &metrics() const { return metrics_; }

  private:
    MetricsSnapshot metrics_;
};

/** Write the recorded trace as chrome://tracing JSON through
 *  @p writer (caller calls finish()). */
void writeTrace(core::CheckedWriter &writer);

} // namespace pgb::obs

#endif // PGB_OBS_REPORT_HPP
