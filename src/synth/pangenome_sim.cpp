#include "synth/pangenome_sim.hpp"

#include <algorithm>
#include <map>
#include <string>

#include "core/logging.hpp"
#include "core/rng.hpp"

namespace pgb::synth {

using core::Rng;
using graph::Handle;
using graph::NodeId;
using graph::PanGraph;
using seq::Sequence;

seq::Sequence
randomSequence(size_t length, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint8_t> codes;
    codes.reserve(length);
    for (size_t i = 0; i < length; ++i)
        codes.push_back(static_cast<uint8_t>(rng.below(seq::kNumBases)));
    return Sequence(std::move(codes));
}

PangenomeConfig
mGraphLikeConfig(size_t base_length, uint64_t seed)
{
    PangenomeConfig config;
    config.baseLength = base_length;
    config.haplotypeCount = 14;
    // Densities tuned so the average node length lands near the paper's
    // M-graph value (27.22 bp) for the default haplotype count.
    config.variants.snpRate = 0.018;
    config.variants.smallIndelRate = 0.004;
    config.variants.maxSmallIndel = 6;
    config.variants.svRate = 0.00004;
    config.variants.minSvLength = 50;
    config.variants.maxSvLength = 400;
    config.seed = seed;
    return config;
}

PangenomeConfig
repeatHeavyConfig(size_t base_length, uint64_t seed)
{
    PangenomeConfig config = mGraphLikeConfig(base_length, seed);
    config.repeatFraction = 0.35;
    config.repeatUnit = 24;
    config.repeatArray = 600;
    return config;
}

namespace {

/**
 * Overwrite ~repeatFraction of @p base with tandem arrays of random
 * repeatUnit-bp motifs. Draws only from its own RNG stream (seeded
 * off config.seed), so the variant/haplotype streams are untouched
 * and configs with repeatFraction == 0 never reach this code.
 */
void
plantRepeats(Sequence &base, const PangenomeConfig &config)
{
    const size_t unit = std::max<size_t>(config.repeatUnit, 2);
    const size_t array =
        std::min(std::max(config.repeatArray, unit), base.size());
    const auto target = static_cast<size_t>(
        config.repeatFraction * static_cast<double>(base.size()));
    Rng rng(config.seed ^ 0x9e97a1);
    // Count only freshly covered bases, so overlapping arrays don't
    // let the realized repeat fraction fall short of the knob.
    std::vector<bool> covered(base.size(), false);
    size_t planted = 0;
    while (planted < target) {
        std::vector<uint8_t> motif(unit);
        for (uint8_t &code : motif)
            code = static_cast<uint8_t>(rng.below(seq::kNumBases));
        const size_t start = rng.below(base.size() - array + 1);
        for (size_t i = 0; i < array; ++i) {
            base.codes()[start + i] = motif[i % unit];
            if (!covered[start + i]) {
                covered[start + i] = true;
                ++planted;
            }
        }
    }
}

/** Draw a population allele frequency skewed toward rare variants. */
double
drawFrequency(Rng &rng)
{
    const double u = rng.uniform();
    return 0.05 + 0.9 * u * u;
}

std::vector<Variant>
drawVariants(const PangenomeConfig &config, const Sequence &base, Rng &rng)
{
    std::vector<Variant> variants;
    const double site_rate = config.variants.snpRate +
                             config.variants.smallIndelRate +
                             config.variants.svRate;
    if (site_rate <= 0.0)
        return variants;

    size_t pos = 1;
    while (pos + 1 < base.size()) {
        // Geometric gap to the next variant site.
        const double u = rng.uniform();
        const auto gap = static_cast<size_t>(
            1.0 + -std::log(1.0 - u) / site_rate);
        pos += gap;
        if (pos + 1 >= base.size())
            break;

        Variant v;
        v.pos = pos;
        const double pick = rng.uniform() * site_rate;
        if (pick < config.variants.snpRate) {
            v.type = Variant::Type::kSnp;
            v.refSpan = 1;
            const auto shift = static_cast<uint8_t>(1 + rng.below(3));
            v.altSeq = {static_cast<uint8_t>(
                (base[pos] + shift) % seq::kNumBases)};
        } else if (pick < config.variants.snpRate +
                              config.variants.smallIndelRate) {
            const size_t length =
                1 + rng.below(config.variants.maxSmallIndel);
            if (rng.chance(0.5)) {
                v.type = Variant::Type::kInsertion;
                v.refSpan = 0;
                for (size_t i = 0; i < length; ++i) {
                    v.altSeq.push_back(static_cast<uint8_t>(
                        rng.below(seq::kNumBases)));
                }
            } else {
                v.type = Variant::Type::kDeletion;
                v.refSpan = length;
            }
        } else {
            const size_t span = config.variants.minSvLength +
                rng.below(config.variants.maxSvLength -
                          config.variants.minSvLength + 1);
            if (rng.chance(config.variants.inversionFraction)) {
                v.type = Variant::Type::kInversion;
                v.refSpan = span;
            } else if (rng.chance(0.5)) {
                v.type = Variant::Type::kInsertion;
                v.refSpan = 0;
                for (size_t i = 0; i < span; ++i) {
                    v.altSeq.push_back(static_cast<uint8_t>(
                        rng.below(seq::kNumBases)));
                }
            } else {
                v.type = Variant::Type::kDeletion;
                v.refSpan = span;
            }
        }

        // Clip events that would run past the end of the chromosome.
        if (v.pos + v.refSpan + 1 >= base.size()) {
            break;
        }

        v.frequency = drawFrequency(rng);
        v.carriers.resize(config.haplotypeCount);
        bool any = false;
        for (size_t h = 0; h < config.haplotypeCount; ++h) {
            const bool carries = rng.chance(v.frequency);
            v.carriers[h] = carries;
            any = any || carries;
        }
        if (!any && config.haplotypeCount > 0) {
            // Force at least one carrier so every site is a real bubble.
            v.carriers[rng.below(config.haplotypeCount)] = true;
        }
        variants.push_back(std::move(v));
        // Leave at least one reference base between sites.
        pos = variants.back().pos + variants.back().refSpan + 1;
    }
    return variants;
}

} // namespace

Pangenome
simulatePangenome(const PangenomeConfig &config)
{
    if (config.baseLength < 100)
        core::fatal("simulatePangenome: baseLength must be >= 100");
    Rng rng(config.seed);

    Pangenome out;
    out.reference = randomSequence(config.baseLength, config.seed ^ 0x5EED);
    out.reference.setName("ref");
    if (config.repeatFraction > 0.0)
        plantRepeats(out.reference, config);
    out.variants = drawVariants(config, out.reference, rng);

    // --- Breakpoints: cut the reference at every variant boundary.
    std::vector<size_t> breaks = {0, out.reference.size()};
    for (const Variant &v : out.variants) {
        breaks.push_back(v.pos);
        breaks.push_back(v.pos + v.refSpan);
    }
    std::sort(breaks.begin(), breaks.end());
    breaks.erase(std::unique(breaks.begin(), breaks.end()), breaks.end());

    // --- Reference segment nodes.
    PanGraph &graph = out.graph;
    // segmentAt[b] = node covering [breaks[b], breaks[b+1])
    std::vector<NodeId> segment_node(breaks.size() - 1);
    std::map<size_t, size_t> break_index; // ref pos -> index in breaks
    for (size_t b = 0; b + 1 < breaks.size(); ++b) {
        break_index[breaks[b]] = b;
        segment_node[b] = graph.addNode(
            out.reference.slice(breaks[b], breaks[b + 1] - breaks[b]));
    }
    break_index[breaks.back()] = breaks.size() - 1;

    // Reference backbone edges.
    for (size_t b = 0; b + 2 < breaks.size(); ++b) {
        graph.addEdge(Handle(segment_node[b], false),
                      Handle(segment_node[b + 1], false));
    }

    // --- Alternate allele nodes and edges.
    // For a variant at site index b (segment covering [pos, pos+span)):
    //   SNP/deletion/inversion consume exactly one segment; insertion
    //   sits on the boundary before segment b.
    std::vector<NodeId> alt_node(out.variants.size(),
                                 std::numeric_limits<NodeId>::max());
    for (size_t i = 0; i < out.variants.size(); ++i) {
        const Variant &v = out.variants[i];
        const size_t b = break_index.at(v.pos);
        switch (v.type) {
          case Variant::Type::kSnp:
          case Variant::Type::kInsertion: {
            alt_node[i] = graph.addNode(Sequence(
                std::vector<uint8_t>(v.altSeq)));
            break;
          }
          case Variant::Type::kDeletion:
          case Variant::Type::kInversion:
            break;
        }
        const bool has_prev = b > 0;
        const bool has_next = break_index.at(v.pos + v.refSpan) <
                              segment_node.size();
        const NodeId prev = has_prev ? segment_node[b - 1] : 0;
        const size_t next_b = break_index.at(v.pos + v.refSpan);
        const NodeId next = has_next ? segment_node[next_b] : 0;
        switch (v.type) {
          case Variant::Type::kSnp:
          case Variant::Type::kInsertion:
            if (has_prev)
                graph.addEdge(Handle(prev, false),
                              Handle(alt_node[i], false));
            if (has_next)
                graph.addEdge(Handle(alt_node[i], false),
                              Handle(next, false));
            break;
          case Variant::Type::kDeletion:
            if (has_prev && has_next)
                graph.addEdge(Handle(prev, false), Handle(next, false));
            break;
          case Variant::Type::kInversion:
            if (has_prev)
                graph.addEdge(Handle(prev, false),
                              Handle(segment_node[b], true));
            if (has_next)
                graph.addEdge(Handle(segment_node[b], true),
                              Handle(next, false));
            break;
        }
    }

    // --- Reference path.
    {
        std::vector<Handle> steps;
        for (NodeId node : segment_node)
            steps.emplace_back(node, false);
        out.referencePath = graph.addPath("ref", std::move(steps));
    }

    // --- Haplotype paths and spelled sequences.
    for (size_t h = 0; h < config.haplotypeCount; ++h) {
        std::vector<Handle> steps;
        size_t b = 0;
        size_t vi = 0;
        while (b < segment_node.size()) {
            // Is there a variant whose site starts at breaks[b]?
            while (vi < out.variants.size() &&
                   out.variants[vi].pos < breaks[b]) {
                ++vi;
            }
            const bool at_site = vi < out.variants.size() &&
                                 out.variants[vi].pos == breaks[b];
            if (!at_site) {
                steps.emplace_back(segment_node[b], false);
                ++b;
                continue;
            }
            const Variant &v = out.variants[vi];
            const bool carries = v.carriers[h];
            switch (v.type) {
              case Variant::Type::kSnp:
                steps.emplace_back(
                    carries ? alt_node[vi] : segment_node[b],
                    false);
                ++b;
                break;
              case Variant::Type::kInsertion:
                if (carries)
                    steps.emplace_back(alt_node[vi], false);
                // The insertion consumes no reference segment; fall
                // through to walking the segment that starts here, which
                // belongs to the next site or plain reference.
                steps.emplace_back(segment_node[b], false);
                ++b;
                break;
              case Variant::Type::kDeletion:
                if (!carries)
                    steps.emplace_back(segment_node[b], false);
                ++b;
                break;
              case Variant::Type::kInversion:
                steps.emplace_back(segment_node[b], carries);
                ++b;
                break;
            }
            ++vi;
        }
        const std::string name = "hap" + std::to_string(h);
        const graph::PathId path = graph.addPath(name, std::move(steps));
        out.haplotypePaths.push_back(path);
        Sequence spelled = graph.pathSequence(path);
        spelled.setName(name);
        out.haplotypes.push_back(std::move(spelled));
    }

    return out;
}

std::vector<GroundTruthMatch>
groundTruthMatches(const Pangenome &pangenome, uint32_t min_length)
{
    std::vector<GroundTruthMatch> matches;
    const size_t ref_len = pangenome.reference.size();
    for (size_t h = 0; h < pangenome.haplotypes.size(); ++h) {
        uint64_t ref_pos = 0, hap_pos = 0;
        uint64_t match_ref = 0, match_hap = 0; // current run start
        auto emit = [&](uint64_t ref_end) {
            if (ref_end > match_ref &&
                ref_end - match_ref >= min_length) {
                matches.push_back(
                    {h, match_ref, match_hap,
                     static_cast<uint32_t>(ref_end - match_ref)});
            }
        };
        for (const Variant &v : pangenome.variants) {
            const uint64_t inter = v.pos - ref_pos;
            ref_pos = v.pos;
            hap_pos += inter;
            if (!v.carriers[h]) {
                // Haplotype takes the reference allele: the exact run
                // continues through the site (except inversions, where
                // the reference route is identical anyway).
                ref_pos += v.refSpan;
                hap_pos += v.refSpan;
                continue;
            }
            // Carrier: close the run at the site and restart after it.
            emit(v.pos);
            switch (v.type) {
              case Variant::Type::kSnp:
                ref_pos += 1;
                hap_pos += 1;
                break;
              case Variant::Type::kInsertion:
                hap_pos += v.altSeq.size();
                break;
              case Variant::Type::kDeletion:
                ref_pos += v.refSpan;
                break;
              case Variant::Type::kInversion:
                ref_pos += v.refSpan;
                hap_pos += v.refSpan;
                break;
            }
            match_ref = ref_pos;
            match_hap = hap_pos;
        }
        emit(ref_len);
    }
    return matches;
}

} // namespace pgb::synth
