/**
 * @file
 * Synthetic pangenome generator.
 *
 * Substitutes for the HPRC chromosome-20 datasets the paper maps and
 * builds against (Tables 2/3): a random base chromosome is mutated into
 * a population of haplotypes sharing a pool of variants (SNPs, small
 * indels, structural insertions/deletions, optional inversions), and the
 * exact variation graph implied by those variants is constructed
 * directly, with one embedded path per haplotype plus the reference.
 *
 * The graph's topology statistics (average node length, bubble density,
 * haplotype count) are controlled by VariantProfile so workloads can be
 * calibrated to the paper's reported graph shape (M-graph average node
 * length 27.22 bp; Split-M-graph 6.89 bp via PanGraph::splitNodes).
 */

#ifndef PGB_SYNTH_PANGENOME_SIM_HPP
#define PGB_SYNTH_PANGENOME_SIM_HPP

#include <cstdint>
#include <vector>

#include "graph/pangraph.hpp"
#include "seq/sequence.hpp"

namespace pgb::synth {

/** Variant density/shape parameters for the simulated population. */
struct VariantProfile
{
    double snpRate = 0.004;          ///< SNP sites per base
    double smallIndelRate = 0.0008;  ///< small indel sites per base
    size_t maxSmallIndel = 6;        ///< max small indel length (bases)
    double svRate = 0.00002;         ///< structural variant sites per base
    size_t minSvLength = 50;
    size_t maxSvLength = 500;
    double inversionFraction = 0.0;  ///< fraction of SVs that are inversions
};

/** Top-level configuration of one synthetic pangenome. */
struct PangenomeConfig
{
    size_t baseLength = 200000;   ///< reference chromosome length
    size_t haplotypeCount = 14;   ///< haplotypes beside the reference
    VariantProfile variants;
    uint64_t seed = 42;
    /**
     * Tandem-repeat content: the fraction of the base chromosome
     * overwritten with tandem arrays of random repeatUnit-bp motifs
     * before variants are drawn — the adversarial regime for seeding
     * (minimizer occurrence lists and SMEM SA ranges both blow up
     * inside the arrays). At the default 0 the repeat RNG stream is
     * never drawn from, so pre-existing seeds reproduce bit-identical
     * pangenomes.
     */
    double repeatFraction = 0.0;
    size_t repeatUnit = 24;   ///< tandem motif length (bases)
    size_t repeatArray = 600; ///< bases per planted tandem array
};

/** One site in the shared variant pool. */
struct Variant
{
    enum class Type { kSnp, kInsertion, kDeletion, kInversion };

    Type type = Type::kSnp;
    size_t pos = 0;      ///< reference position of the site
    size_t refSpan = 0;  ///< reference bases consumed (0 for insertion)
    std::vector<uint8_t> altSeq; ///< SNP/insertion alternate bases
    double frequency = 0.0;      ///< population allele frequency
    std::vector<bool> carriers;  ///< per-haplotype carrier flags
};

/** A generated pangenome: graph, haplotypes, and provenance. */
struct Pangenome
{
    graph::PanGraph graph;
    seq::Sequence reference;            ///< the base chromosome
    std::vector<seq::Sequence> haplotypes; ///< spelled haplotype sequences
    std::vector<Variant> variants;      ///< the shared variant pool
    graph::PathId referencePath = 0;    ///< path id of the reference walk
    std::vector<graph::PathId> haplotypePaths;
};

/** Generate a pangenome from @p config (deterministic in the seed). */
Pangenome simulatePangenome(const PangenomeConfig &config);

/** Generate just a random DNA sequence of @p length. */
seq::Sequence randomSequence(size_t length, uint64_t seed);

/**
 * Preset shaped like the paper's chromosome-20 M-graph workload, scaled
 * to @p base_length reference bases (the real chr20 is ~64 Mb; tests and
 * benches use 10^5..10^6).
 */
PangenomeConfig mGraphLikeConfig(size_t base_length, uint64_t seed = 42);

/**
 * mGraphLikeConfig with ~35% of the reference inside planted tandem
 * arrays: the repeat-heavy regime (segmental-duplication-like) that
 * stresses seeding strategies rather than graph topology.
 */
PangenomeConfig repeatHeavyConfig(size_t base_length, uint64_t seed = 42);

/**
 * An exact match between the reference and one haplotype, in local
 * coordinates (refStart on the reference, hapStart on the haplotype).
 */
struct GroundTruthMatch
{
    size_t haplotype = 0;
    uint64_t refStart = 0;
    uint64_t hapStart = 0;
    uint32_t length = 0;
};

/**
 * Exact reference<->haplotype match segments implied by the variant
 * pool: the maximal runs between carried variants. Substitutes for an
 * aligner when generating transclosure kernel inputs from ground
 * truth. Inversion variants break matches (no reverse-strand output).
 */
std::vector<GroundTruthMatch>
groundTruthMatches(const Pangenome &pangenome,
                   uint32_t min_length = 1);

} // namespace pgb::synth

#endif // PGB_SYNTH_PANGENOME_SIM_HPP
