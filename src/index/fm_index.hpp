/**
 * @file
 * BWT/FM-index over the haplotype path sequences, the second seeding
 * backend of the suite (ROADMAP item 1, in the spirit of ropebwt3 and
 * vg's `Mapper`/`MaximalExactMatch` machinery).
 *
 * The text is the concatenation of every embedded path's spelled
 * sequence, each path terminated by a sentinel symbol. The suffix
 * array comes from index/suffix_array (prefix doubling over the
 * uint32 alphabet); from it the index keeps only the BWT plus
 * sampled structures:
 *
 *  - occ checkpoints every kOccBlock BWT symbols (rank = checkpoint
 *    + short scan), the classic time/space knob of FM-indexes;
 *  - a sampled suffix array: text positions that are multiples of
 *    sampleRate are marked in a bitvector and their SA values stored;
 *    locate() LF-walks to the nearest mark. Every path start is also
 *    marked, so a locate walk never has to LF across a sentinel —
 *    which keeps the equal-sentinel multi-string BWT exact without
 *    per-path sentinel symbols.
 *
 * Patterns never contain the sentinel, so matches never span path
 * boundaries; backward extension (`extend`/`find`) is exact for any
 * query over the base codes (N matches only N). `collectMems`
 * enumerates SMEMs — maximal exact matches not contained in another
 * maximal match — by computing, for every query end position, the
 * longest match ending there via backward extension and emitting the
 * right-maximal ones (the begin positions are monotone in the end
 * position, which makes that single left-to-right pass exact).
 *
 * Like MinimizerIndex, the index either owns its arrays (built from a
 * graph) or views spans into a memory-mapped `.pgbi` artifact
 * (store/format.hpp sections FMET/FBWT/FOCC/FSSA/FMRK/FPOF).
 */

#ifndef PGB_INDEX_FM_INDEX_HPP
#define PGB_INDEX_FM_INDEX_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "graph/pangraph.hpp"

namespace pgb::index {

/** A BWT/FM-index over a graph's embedded path sequences. */
class FmIndex
{
  public:
    /** Symbols: 0 = sentinel, 1..4 = A,C,G,T, 5 = N. */
    static constexpr uint32_t kAlphabet = 6;
    /** Occ checkpoint spacing, in BWT symbols. */
    static constexpr uint32_t kOccBlock = 64;
    /** Default suffix-array sampling rate. */
    static constexpr uint32_t kDefaultSampleRate = 8;

    /** A half-open suffix-array rank interval. */
    struct SaRange
    {
        uint64_t lo = 0, hi = 0;

        uint64_t size() const { return hi > lo ? hi - lo : 0; }
        bool empty() const { return hi <= lo; }
    };

    /** One supermaximal exact match of a query. */
    struct Mem
    {
        uint32_t queryBegin = 0; ///< match is query[queryBegin, queryEnd)
        uint32_t queryEnd = 0;
        SaRange range;           ///< its occurrences, as SA ranks
    };

    /** A text position resolved to (path, offset within the path). */
    struct PathPos
    {
        uint32_t path = 0;
        uint64_t offset = 0;
    };

    /**
     * Build over @p graph's embedded paths (fatal if it has none).
     * Construction is deterministic; @p sample_rate trades locate()
     * speed (at most sample_rate LF steps) for space.
     */
    explicit FmIndex(const graph::PanGraph &graph,
                     uint32_t sample_rate = kDefaultSampleRate);

    /**
     * Zero-copy view over artifact sections (validated by the store
     * layer before construction). The spans must outlive the index.
     */
    FmIndex(uint32_t sample_rate, std::span<const uint8_t> bwt,
            std::span<const uint32_t> occ,
            std::span<const uint32_t> samples,
            std::span<const uint64_t> marks,
            std::span<const uint64_t> path_offsets);

    FmIndex(const FmIndex &) = delete;
    FmIndex &operator=(const FmIndex &) = delete;

    uint64_t textLength() const { return bwt_.size(); }
    uint32_t sampleRate() const { return sampleRate_; }
    size_t pathCount() const { return pathOffsets_.size() - 1; }
    bool isView() const { return viewMode_; }

    /** The interval of every suffix. */
    SaRange fullRange() const { return {0, textLength()}; }

    /**
     * Backward-extend @p range by prepending base code @p base_code
     * (0..3 = A..T, 4 = N): the interval of (base + current pattern).
     */
    SaRange extend(const SaRange &range, uint8_t base_code) const;

    /** Interval of @p pattern (base codes); empty range if absent. */
    SaRange find(std::span<const uint8_t> pattern) const;

    /** Occurrence count of @p pattern. */
    uint64_t count(std::span<const uint8_t> pattern) const;

    /** Text position of the suffix at SA rank @p rank. */
    uint64_t locate(uint64_t rank) const;

    /** Resolve a non-sentinel text position to (path, path offset). */
    PathPos resolve(uint64_t text_pos) const;

    /**
     * Enumerate the SMEMs of @p query (base codes) of length at least
     * @p min_length into @p mems (cleared first), ordered by query
     * end position. N in the query matches only N in the text.
     */
    void collectMems(std::span<const uint8_t> query, uint32_t min_length,
                     std::vector<Mem> &mems) const;

    // ---- Persistence views (both modes) ------------------------------
    std::span<const uint8_t> bwtData() const { return bwt_; }
    std::span<const uint32_t> occData() const { return occ_; }
    std::span<const uint32_t> sampleData() const { return samples_; }
    std::span<const uint64_t> markData() const { return marks_; }
    std::span<const uint64_t> pathOffsetsData() const
    {
        return pathOffsets_;
    }

  private:
    /** Derive C[] and the mark rank directory from the stored arrays. */
    void initDerived();

    /** Occurrences of @p symbol in bwt[0, @p limit). */
    uint64_t rankSymbol(uint8_t symbol, uint64_t limit) const;

    bool
    markedRank(uint64_t rank) const
    {
        return (marks_[rank / 64] >> (rank % 64)) & 1u;
    }

    /** Set mark bits at ranks < @p rank. */
    uint64_t markRank(uint64_t rank) const;

    uint32_t sampleRate_ = kDefaultSampleRate;
    bool viewMode_ = false;

    // Owned storage (build mode); the spans below view these.
    std::vector<uint8_t> ownedBwt_;
    std::vector<uint32_t> ownedOcc_;
    std::vector<uint32_t> ownedSamples_;
    std::vector<uint64_t> ownedMarks_;
    std::vector<uint64_t> ownedPathOffsets_;

    std::span<const uint8_t> bwt_;
    std::span<const uint32_t> occ_;
    std::span<const uint32_t> samples_;
    std::span<const uint64_t> marks_;
    std::span<const uint64_t> pathOffsets_;

    /** C[c] = number of text symbols smaller than c (derived). */
    uint64_t cumulative_[kAlphabet + 1] = {};
    /** Per-word prefix popcounts of marks_ (derived). */
    std::vector<uint32_t> markRankWords_;
};

} // namespace pgb::index

#endif // PGB_INDEX_FM_INDEX_HPP
