#include "index/suffix_array.hpp"

#include <algorithm>
#include <numeric>

namespace pgb::index {

std::vector<uint32_t>
buildSuffixArray(const std::vector<uint32_t> &text)
{
    const size_t n = text.size();
    std::vector<uint32_t> sa(n);
    std::iota(sa.begin(), sa.end(), 0u);
    if (n == 0)
        return sa;

    std::vector<uint64_t> rank(text.begin(), text.end());
    std::vector<uint64_t> next_rank(n);

    std::sort(sa.begin(), sa.end(), [&](uint32_t a, uint32_t b) {
        return rank[a] < rank[b];
    });

    for (size_t k = 1;; k *= 2) {
        // Composite key: (rank[i], rank[i + k]), shorter suffix first.
        auto key = [&](uint32_t i) -> std::pair<uint64_t, uint64_t> {
            const uint64_t second =
                i + k < n ? rank[i + k] + 1 : 0;
            return {rank[i], second};
        };
        std::sort(sa.begin(), sa.end(), [&](uint32_t a, uint32_t b) {
            return key(a) < key(b);
        });
        next_rank[sa[0]] = 0;
        bool all_distinct = true;
        for (size_t r = 1; r < n; ++r) {
            const bool equal = key(sa[r]) == key(sa[r - 1]);
            next_rank[sa[r]] = next_rank[sa[r - 1]] + (equal ? 0 : 1);
            all_distinct = all_distinct && !equal;
        }
        rank.swap(next_rank);
        if (all_distinct || rank[sa[n - 1]] == n - 1)
            break;
    }
    return sa;
}

std::vector<uint32_t>
suffixRanks(const std::vector<uint32_t> &sa)
{
    std::vector<uint32_t> rank(sa.size());
    for (uint32_t r = 0; r < sa.size(); ++r)
        rank[sa[r]] = r;
    return rank;
}

} // namespace pgb::index
