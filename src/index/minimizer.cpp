#include "index/minimizer.hpp"

#include <algorithm>

#include "core/prefetch.hpp"
#include "core/thread_pool.hpp"

namespace pgb::index {

std::vector<Minimizer>
computeMinimizers(std::span<const uint8_t> bases, int k, int w)
{
    core::NullProbe probe;
    return computeMinimizers(bases, k, w, probe);
}

MinimizerIndex::MinimizerIndex(const graph::PanGraph &graph, int k,
                               int w, unsigned threads)
    : k_(k), w_(w)
{
    struct Entry
    {
        uint64_t hash;
        GraphSeedHit hit;
    };
    std::vector<Entry> entries;
    threads = core::clampThreads(threads);

    if (graph.pathCount() > 0) {
        // Haplotype-based indexing (vg giraffe style): minimizers of
        // every embedded path's spelled sequence, projected back to
        // graph coordinates. Boundary-spanning k-mers anchor at the
        // node containing their first base. Paths are independent, so
        // they scan in parallel into per-path buckets; concatenating
        // the buckets in path order reproduces the serial pre-sort
        // sequence exactly.
        std::vector<std::vector<Entry>> per_path(graph.pathCount());
        core::parallelFor(
            0, graph.pathCount(), threads,
            [&](size_t path_index) {
                const auto path =
                    static_cast<graph::PathId>(path_index);
                std::vector<Entry> &bucket = per_path[path_index];
                const auto &steps = graph.pathSteps(path);
                const auto spelled =
                    graph.pathSequence(path).codes();
                // Path offset -> step lookup.
                std::vector<uint64_t> starts;
                starts.reserve(steps.size());
                uint64_t offset = 0;
                for (graph::Handle step : steps) {
                    starts.push_back(offset);
                    offset += graph.nodeLength(step.node());
                }
                for (const Minimizer &mini :
                     computeMinimizers(spelled, k, w)) {
                    const auto it = std::upper_bound(
                        starts.begin(), starts.end(), mini.position);
                    const auto step_index =
                        static_cast<size_t>(it - starts.begin()) - 1;
                    const graph::Handle step = steps[step_index];
                    const auto in_step = static_cast<uint32_t>(
                        mini.position - starts[step_index]);
                    const auto node_len = static_cast<uint32_t>(
                        graph.nodeLength(step.node()));
                    GraphSeedHit hit;
                    hit.node = step.node();
                    // Forward-strand offset of the k-mer's first base.
                    hit.offset = step.isReverse()
                        ? node_len - 1 - in_step : in_step;
                    hit.reverse = mini.reverse != step.isReverse();
                    bucket.push_back({mini.hash, hit});
                }
            });
        size_t total = 0;
        for (const auto &bucket : per_path)
            total += bucket.size();
        entries.reserve(total);
        for (auto &bucket : per_path) {
            entries.insert(entries.end(), bucket.begin(), bucket.end());
        }
    } else {
        std::vector<std::vector<Entry>> per_node(graph.nodeCount());
        core::parallelFor(
            0, graph.nodeCount(), threads,
            [&](size_t node_index) {
                const auto node =
                    static_cast<graph::NodeId>(node_index);
                const auto &codes = graph.nodeSequence(node).codes();
                for (const Minimizer &mini :
                     computeMinimizers(codes, k, w)) {
                    per_node[node_index].push_back(
                        {mini.hash,
                         {node, mini.position, mini.reverse}});
                }
            });
        size_t total = 0;
        for (const auto &bucket : per_node)
            total += bucket.size();
        entries.reserve(total);
        for (auto &bucket : per_node) {
            entries.insert(entries.end(), bucket.begin(), bucket.end());
        }
    }

    // The full record is the sort key so the occurrence order is a
    // pure function of the occurrence set — a shard set's per-shard
    // buckets merge back into exactly this order (DESIGN.md §13).
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  if (a.hash != b.hash)
                      return a.hash < b.hash;
                  if (a.hit.node != b.hit.node)
                      return a.hit.node < b.hit.node;
                  if (a.hit.offset != b.hit.offset)
                      return a.hit.offset < b.hit.offset;
                  return a.hit.reverse < b.hit.reverse;
              });
    // Haplotypes share most of the graph: drop duplicate occurrences.
    entries.erase(std::unique(entries.begin(), entries.end(),
                              [](const Entry &a, const Entry &b) {
                                  return a.hash == b.hash &&
                                         a.hit.node == b.hit.node &&
                                         a.hit.offset == b.hit.offset &&
                                         a.hit.reverse == b.hit.reverse;
                              }),
                  entries.end());
    hits_.reserve(entries.size());
    for (size_t i = 0; i < entries.size();) {
        size_t j = i;
        while (j < entries.size() && entries[j].hash == entries[i].hash)
            ++j;
        table_.emplace(entries[i].hash,
                       std::make_pair(static_cast<uint32_t>(hits_.size()),
                                      static_cast<uint32_t>(
                                          hits_.size() + (j - i))));
        for (size_t t = i; t < j; ++t)
            hits_.push_back(entries[t].hit);
        i = j;
    }
}

MinimizerIndex::MinimizerIndex(int k, int w,
                               std::span<const TableEntry> table,
                               std::span<const GraphSeedHit> hits)
    : k_(k), w_(w), viewMode_(true), tableView_(table), hitsView_(hits)
{
}

std::span<const GraphSeedHit>
MinimizerIndex::occurrences(uint64_t hash) const
{
    if (viewMode_) {
        // Hand-rolled lower_bound: every probe's two possible
        // successors are known before the compare resolves, so both
        // candidate midpoints are prefetched a step ahead — the bucket
        // probe is otherwise a chain of data-dependent misses over a
        // table far larger than cache (paper Figure 7).
        const TableEntry *base = tableView_.data();
        size_t lo = 0;
        size_t len = tableView_.size();
        while (len > 0) {
            const size_t half = len / 2;
            core::prefetchRead(base + lo + half / 2, 0);
            core::prefetchRead(base + lo + half + (len - half) / 2, 0);
            if (base[lo + half].hash < hash) {
                lo += half + 1;
                len -= half + 1;
            } else {
                len = half;
            }
        }
        if (lo == tableView_.size() || base[lo].hash != hash)
            return {};
        // The caller iterates the hits next; start that fetch now.
        core::prefetchRead(hitsView_.data() + base[lo].begin);
        return {hitsView_.data() + base[lo].begin,
                static_cast<size_t>(base[lo].end - base[lo].begin)};
    }
    auto it = table_.find(hash);
    if (it == table_.end())
        return {};
    core::prefetchRead(hits_.data() + it->second.first);
    return {hits_.data() + it->second.first,
            it->second.second - it->second.first};
}

std::vector<MinimizerIndex::TableEntry>
MinimizerIndex::flatTable() const
{
    if (viewMode_)
        return {tableView_.begin(), tableView_.end()};
    std::vector<TableEntry> flat;
    flat.reserve(table_.size());
    for (const auto &[hash, range] : table_)
        flat.push_back({hash, range.first, range.second});
    std::sort(flat.begin(), flat.end(),
              [](const TableEntry &a, const TableEntry &b) {
                  return a.hash < b.hash;
              });
    return flat;
}

} // namespace pgb::index
