/**
 * @file
 * Suffix array over integer alphabets (prefix doubling, O(n log^2 n)).
 *
 * Two consumers: the GBWT construction orders path visits by their
 * reversed prefixes (the multi-string BWT ordering), and the FM-index
 * (index/fm_index.hpp) derives its BWT and sampled-SA sections from
 * the suffix array of the concatenated haplotype texts.
 */

#ifndef PGB_INDEX_SUFFIX_ARRAY_HPP
#define PGB_INDEX_SUFFIX_ARRAY_HPP

#include <cstdint>
#include <vector>

namespace pgb::index {

/**
 * Build the suffix array of @p text (any uint32 alphabet).
 * @return sa with sa[r] = start position of the rank-r suffix.
 */
std::vector<uint32_t> buildSuffixArray(const std::vector<uint32_t> &text);

/** Inverse permutation: rank[pos] = rank of the suffix at pos. */
std::vector<uint32_t> suffixRanks(const std::vector<uint32_t> &sa);

} // namespace pgb::index

#endif // PGB_INDEX_SUFFIX_ARRAY_HPP
