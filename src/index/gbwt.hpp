/**
 * @file
 * GBWT: haplotype-aware graph index (Sirén et al.), the kernel the
 * paper extracts from vg giraffe's filtering stage.
 *
 * A multi-string BWT over the haplotype paths, where the alphabet is
 * oriented node identifiers. Each node owns a record: its sorted
 * outgoing edges, for each edge the offset of this node's block inside
 * the successor's visit list, and a run-length-encoded body giving the
 * successor of every visit. find(S) walks the records with last-first
 * mapping and returns the range of haplotypes containing S as a
 * subpath; nextNodes() enumerates the haplotype-consistent extensions
 * (paper Figure 4c: only paths that real haplotypes take survive).
 *
 * Construction orders the visits of each node by reversed path prefix
 * via a suffix array of the reversed paths — the standard multi-string
 * BWT ordering that makes every extension step map a contiguous range
 * to a contiguous range.
 */

#ifndef PGB_INDEX_GBWT_HPP
#define PGB_INDEX_GBWT_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "core/prefetch.hpp"
#include "core/probe.hpp"
#include "graph/pangraph.hpp"

namespace pgb::index {

/** A contiguous range of visits within one node's record. */
struct GbwtRange
{
    uint32_t node = 0;  ///< internal oriented-node id (0 = invalid)
    uint32_t begin = 0;
    uint32_t end = 0;

    bool empty() const { return begin >= end; }
    uint32_t size() const { return empty() ? 0 : end - begin; }
};

/** GBWT build/query statistics. */
struct GbwtStats
{
    size_t records = 0;
    size_t totalVisits = 0;
    size_t totalRuns = 0;   ///< run-length-encoded body size
    double avgRunLength = 0.0;
};

/** Haplotype-aware multi-string BWT over a graph's embedded paths. */
class GbwtIndex
{
  public:
    /**
     * Build from every path embedded in @p graph.
     * @param run_length_encode store bodies as runs (the GBWT design);
     *        false stores plain edge-index arrays (the ablation).
     * @param threads run the per-node construction stages (visit
     *        ordering, predecessor-block offsets, record
     *        materialization) concurrently on the shared pool; nodes
     *        are independent within each stage and the visit order is
     *        a total order, so the index is identical at every thread
     *        count.
     */
    explicit GbwtIndex(const graph::PanGraph &graph,
                       bool run_length_encode = true,
                       unsigned threads = 1);

    /** Range spanning every visit of @p handle. */
    GbwtRange fullRange(graph::Handle handle) const;

    /** Number of path visits to @p handle. */
    uint32_t visitCount(graph::Handle handle) const;

    /**
     * Last-first extension: the subset of @p range whose next step is
     * @p next, as a range within next's record.
     */
    template <typename Probe = core::NullProbe>
    GbwtRange
    extend(const GbwtRange &range, graph::Handle next, Probe &probe) const
    {
        if (range.empty())
            return {};
        const uint32_t target = toInternal(next);
        const Record &record = records_[range.node];
        probe.load(&record, 16); // record header fetch
        probe.op(core::OpKind::kScalar, 6);
        // Locate the edge (binary search over the sorted edge list).
        probe.op(core::OpKind::kControl);
        int32_t edge = -1;
        {
            int32_t lo = 0;
            auto hi = static_cast<int32_t>(record.edges.size()) - 1;
            while (lo <= hi) {
                const int32_t mid = (lo + hi) / 2;
                probe.load(record.edges.data() + mid, 4);
                probe.branch(/* site */ 60,
                             record.edges[mid] < target);
                if (record.edges[mid] == target) {
                    edge = mid;
                    break;
                }
                if (record.edges[mid] < target)
                    lo = mid + 1;
                else
                    hi = mid - 1;
            }
        }
        if (edge < 0)
            return {};
        const uint32_t r_begin = bodyRank(
            record, static_cast<uint32_t>(edge), range.begin, probe);
        const uint32_t r_end = bodyRank(
            record, static_cast<uint32_t>(edge), range.end, probe);
        if (r_begin >= r_end)
            return {};
        GbwtRange out;
        out.node = target;
        out.begin = record.edgeOffsets[static_cast<size_t>(edge)] + r_begin;
        out.end = record.edgeOffsets[static_cast<size_t>(edge)] + r_end;
        return out;
    }

    /**
     * The paper's representative kernel operation: search the node
     * sequence @p steps and return the final range (empty when no
     * haplotype contains the sequence as a subpath).
     */
    template <typename Probe = core::NullProbe>
    GbwtRange
    find(std::span<const graph::Handle> steps, Probe &probe) const
    {
        if (steps.empty())
            return {};
        GbwtRange range = fullRange(steps[0]);
        for (size_t i = 1; i < steps.size() && !range.empty(); ++i) {
            // extend() reads records_[range.node]; the record the
            // *next* iteration dereferences is steps[i]'s, known one
            // step ahead — fetch its header under the current step's
            // rank work (the walk's data-dependent miss, Figure 7).
            core::prefetchRead(&records_[toInternal(steps[i])]);
            range = extend(range, steps[i], probe);
        }
        return range;
    }

    /** Uninstrumented find. */
    GbwtRange
    find(std::span<const graph::Handle> steps) const
    {
        core::NullProbe probe;
        return find(steps, probe);
    }

    /** Uninstrumented extend. */
    GbwtRange
    extend(const GbwtRange &range, graph::Handle next) const
    {
        core::NullProbe probe;
        return extend(range, next, probe);
    }

    /** Uninstrumented nextNodes. */
    std::vector<graph::Handle>
    nextNodes(const GbwtRange &range) const
    {
        core::NullProbe probe;
        return nextNodes(range, probe);
    }

    /**
     * Haplotype-consistent next handles reachable from @p range (the
     * seed-extension query giraffe issues during filtering).
     */
    template <typename Probe = core::NullProbe>
    std::vector<graph::Handle>
    nextNodes(const GbwtRange &range, Probe &probe) const
    {
        std::vector<graph::Handle> out;
        if (range.empty())
            return out;
        const Record &record = records_[range.node];
        // Collect the distinct edge indices present in body[begin, end).
        std::vector<bool> present(record.edges.size(), false);
        scanBody(record, range.begin, range.end, probe,
                 [&](uint32_t edge_index, uint32_t /* run_len */) {
                     present[edge_index] = true;
                 });
        for (size_t e = 0; e < record.edges.size(); ++e) {
            if (present[e] && record.edges[e] != kEndMarker)
                out.push_back(toHandle(record.edges[e]));
        }
        return out;
    }

    GbwtStats stats() const;

    bool runLengthEncoded() const { return rle_; }

    /**
     * Flattened serialized image for pgb::store: per-record counters
     * plus the concatenated record arrays, reconstructable with one
     * linear pass. The nested per-record vectors make a true zero-copy
     * view impossible, so loading is the §9 "single bulk copy"
     * fallback — still orders of magnitude cheaper than rebuilding
     * from the suffix array of the reversed paths.
     */
    struct FlatImage
    {
        bool rle = true;
        /// per record: {size, edgeCount, runCount, plainCount}
        std::vector<uint32_t> recordHeaders;
        std::vector<uint32_t> edges;       ///< all records' edge lists
        std::vector<uint32_t> edgeOffsets; ///< parallel to edges
        std::vector<uint32_t> runs;        ///< (edge, len) pairs, flat
        std::vector<uint32_t> plain;       ///< plain bodies, flat
    };

    FlatImage flatten() const;

    /** Rebuild from a flattened image (validated by the caller). */
    static GbwtIndex restore(const FlatImage &image);

  private:
    GbwtIndex() = default;

    static constexpr uint32_t kEndMarker = 0;

    struct Record
    {
        std::vector<uint32_t> edges;       ///< sorted successor ids
        std::vector<uint32_t> edgeOffsets; ///< block offset in successor
        /// RLE body: (edge index, run length) pairs
        std::vector<std::pair<uint32_t, uint32_t>> runs;
        /// plain body (ablation): edge index per visit
        std::vector<uint32_t> plain;
        uint32_t size = 0;
    };

    static uint32_t
    toInternal(graph::Handle handle)
    {
        return handle.packed() + 1;
    }

    static graph::Handle
    toHandle(uint32_t internal)
    {
        return graph::Handle::fromPacked(internal - 1);
    }

    /** Occurrences of @p edge_index in body[0, pos). */
    template <typename Probe>
    uint32_t
    bodyRank(const Record &record, uint32_t edge_index, uint32_t pos,
             Probe &probe) const
    {
        uint32_t count = 0;
        if (rle_) {
            uint32_t covered = 0;
            for (const auto &[edge, len] : record.runs) {
                probe.load(&edge, 8);
                probe.branch(/* site */ 61, covered >= pos);
                if (covered >= pos)
                    break;
                const uint32_t take =
                    covered + len > pos ? pos - covered : len;
                probe.branch(/* site */ 62, edge == edge_index);
                if (edge == edge_index)
                    count += take;
                covered += len;
                // Run decode: bounds clamp, accumulate, advance.
                probe.op(core::OpKind::kScalar, 6);
            }
        } else {
            for (uint32_t i = 0; i < pos; ++i) {
                probe.load(record.plain.data() + i, 4);
                probe.branch(/* site */ 63,
                             record.plain[i] == edge_index);
                if (record.plain[i] == edge_index)
                    ++count;
                probe.op(core::OpKind::kScalar, 1);
            }
        }
        return count;
    }

    /** Visit body[begin, end) as (edge_index, run_length) chunks. */
    template <typename Probe, typename Fn>
    void
    scanBody(const Record &record, uint32_t begin, uint32_t end,
             Probe &probe, Fn &&fn) const
    {
        if (rle_) {
            uint32_t covered = 0;
            for (const auto &[edge, len] : record.runs) {
                probe.load(&edge, 8);
                if (covered >= end)
                    break;
                const uint32_t run_begin = covered;
                const uint32_t run_end = covered + len;
                covered = run_end;
                if (run_end <= begin)
                    continue;
                const uint32_t lo = run_begin > begin ? run_begin : begin;
                const uint32_t hi = run_end < end ? run_end : end;
                if (lo < hi)
                    fn(edge, hi - lo);
            }
        } else {
            for (uint32_t i = begin; i < end; ++i) {
                probe.load(record.plain.data() + i, 4);
                fn(record.plain[i], 1);
            }
        }
    }

    bool rle_;
    std::vector<Record> records_; ///< indexed by internal id
};

} // namespace pgb::index

#endif // PGB_INDEX_GBWT_HPP
