#include "index/fm_index.hpp"

#include <algorithm>
#include <bit>

#include "core/logging.hpp"
#include "index/suffix_array.hpp"
#include "seq/alphabet.hpp"

namespace pgb::index {

namespace {

/** FM symbol of a base code (sentinel 0 is reserved). */
inline uint8_t
symbolOf(uint8_t base_code)
{
    return static_cast<uint8_t>(base_code + 1);
}

} // namespace

FmIndex::FmIndex(const graph::PanGraph &graph, uint32_t sample_rate)
    : sampleRate_(sample_rate == 0 ? 1 : sample_rate)
{
    if (graph.pathCount() == 0)
        core::fatal("FM-index construction needs embedded haplotype "
                    "paths, and the graph has none");

    // Text: each path's spelled sequence followed by one sentinel.
    // All sentinels are equal; suffixes that hit one still order
    // deterministically (shorter-suffix-first, the suffix_array
    // convention), and patterns never contain the sentinel, so
    // backward search is exact for any base-code query.
    ownedPathOffsets_.reserve(graph.pathCount() + 1);
    uint64_t total = 0;
    ownedPathOffsets_.push_back(0);
    for (graph::PathId p = 0; p < graph.pathCount(); ++p) {
        total += graph.pathLength(p) + 1;
        ownedPathOffsets_.push_back(total);
    }
    if (total >= UINT32_MAX)
        core::fatal("FM-index text too large for the uint32 suffix "
                    "array (", total, " symbols)");

    std::vector<uint32_t> text;
    text.reserve(total);
    for (graph::PathId p = 0; p < graph.pathCount(); ++p) {
        const seq::Sequence spelled = graph.pathSequence(p);
        for (uint8_t code : spelled.codes())
            text.push_back(symbolOf(code));
        text.push_back(0);
    }

    const std::vector<uint32_t> sa = buildSuffixArray(text);
    const uint64_t n = text.size();

    ownedBwt_.resize(n);
    for (uint64_t r = 0; r < n; ++r) {
        const uint32_t pos = sa[r];
        ownedBwt_[r] = static_cast<uint8_t>(
            pos == 0 ? text[n - 1] : text[pos - 1]);
    }

    // Occ checkpoints: running symbol counts at every block start,
    // including one final checkpoint at the (possibly partial) end so
    // the C array can be derived from it on load.
    const uint64_t blocks = n / kOccBlock + 1;
    ownedOcc_.assign(blocks * kAlphabet, 0);
    uint32_t running[kAlphabet] = {};
    for (uint64_t r = 0; r < n; ++r) {
        if (r % kOccBlock == 0)
            for (uint32_t c = 0; c < kAlphabet; ++c)
                ownedOcc_[(r / kOccBlock) * kAlphabet + c] = running[c];
        ++running[ownedBwt_[r]];
    }
    if (n % kOccBlock == 0)
        for (uint32_t c = 0; c < kAlphabet; ++c)
            ownedOcc_[(n / kOccBlock) * kAlphabet + c] = running[c];

    // Sampled SA: mark ranks whose text position is a multiple of the
    // sample rate, plus every path start, so locate()'s LF walk stops
    // before it would cross a sentinel into the previous path.
    std::vector<uint8_t> is_start(n, 0);
    for (size_t p = 0; p + 1 < ownedPathOffsets_.size(); ++p)
        is_start[ownedPathOffsets_[p]] = 1;
    ownedMarks_.assign((n + 63) / 64, 0);
    for (uint64_t r = 0; r < n; ++r) {
        const uint32_t pos = sa[r];
        if (pos % sampleRate_ == 0 || is_start[pos]) {
            ownedMarks_[r / 64] |= uint64_t{1} << (r % 64);
            ownedSamples_.push_back(pos);
        }
    }

    bwt_ = ownedBwt_;
    occ_ = ownedOcc_;
    samples_ = ownedSamples_;
    marks_ = ownedMarks_;
    pathOffsets_ = ownedPathOffsets_;
    initDerived();
}

FmIndex::FmIndex(uint32_t sample_rate, std::span<const uint8_t> bwt,
                 std::span<const uint32_t> occ,
                 std::span<const uint32_t> samples,
                 std::span<const uint64_t> marks,
                 std::span<const uint64_t> path_offsets)
    : sampleRate_(sample_rate == 0 ? 1 : sample_rate), viewMode_(true),
      bwt_(bwt), occ_(occ), samples_(samples), marks_(marks),
      pathOffsets_(path_offsets)
{
    initDerived();
}

void
FmIndex::initDerived()
{
    // C[] from the final occ checkpoint plus the tail block: symbol
    // counts over the whole BWT, which is a permutation of the text.
    const uint64_t n = bwt_.size();
    uint64_t counts[kAlphabet] = {};
    const uint64_t last_block = n / kOccBlock;
    for (uint32_t c = 0; c < kAlphabet; ++c)
        counts[c] = occ_[last_block * kAlphabet + c];
    for (uint64_t r = last_block * kOccBlock; r < n; ++r)
        ++counts[bwt_[r]];
    cumulative_[0] = 0;
    for (uint32_t c = 0; c < kAlphabet; ++c)
        cumulative_[c + 1] = cumulative_[c] + counts[c];

    markRankWords_.resize(marks_.size());
    uint64_t seen = 0;
    for (size_t w = 0; w < marks_.size(); ++w) {
        markRankWords_[w] = static_cast<uint32_t>(seen);
        seen += std::popcount(marks_[w]);
    }
}

uint64_t
FmIndex::rankSymbol(uint8_t symbol, uint64_t limit) const
{
    const uint64_t block = limit / kOccBlock;
    uint64_t count = occ_[block * kAlphabet + symbol];
    for (uint64_t r = block * kOccBlock; r < limit; ++r)
        count += bwt_[r] == symbol;
    return count;
}

uint64_t
FmIndex::markRank(uint64_t rank) const
{
    const uint64_t mask = (uint64_t{1} << (rank % 64)) - 1;
    return markRankWords_[rank / 64] +
           std::popcount(marks_[rank / 64] & mask);
}

FmIndex::SaRange
FmIndex::extend(const SaRange &range, uint8_t base_code) const
{
    const uint8_t sym = symbolOf(base_code);
    const uint64_t base = cumulative_[sym];
    return {base + rankSymbol(sym, range.lo),
            base + rankSymbol(sym, range.hi)};
}

FmIndex::SaRange
FmIndex::find(std::span<const uint8_t> pattern) const
{
    SaRange range = fullRange();
    for (size_t i = pattern.size(); i-- > 0;) {
        range = extend(range, pattern[i]);
        if (range.empty())
            return {0, 0};
    }
    return range;
}

uint64_t
FmIndex::count(std::span<const uint8_t> pattern) const
{
    return find(pattern).size();
}

uint64_t
FmIndex::locate(uint64_t rank) const
{
    uint64_t steps = 0;
    while (!markedRank(rank)) {
        const uint8_t sym = bwt_[rank];
        rank = cumulative_[sym] + rankSymbol(sym, rank);
        ++steps;
    }
    return samples_[markRank(rank)] + steps;
}

FmIndex::PathPos
FmIndex::resolve(uint64_t text_pos) const
{
    const auto it = std::upper_bound(pathOffsets_.begin(),
                                     pathOffsets_.end(), text_pos);
    const uint32_t path =
        static_cast<uint32_t>(it - pathOffsets_.begin()) - 1;
    return {path, text_pos - pathOffsets_[path]};
}

void
FmIndex::collectMems(std::span<const uint8_t> query, uint32_t min_length,
                     std::vector<Mem> &mems) const
{
    mems.clear();
    const uint32_t m = static_cast<uint32_t>(query.size());
    if (min_length == 0)
        min_length = 1;

    // For each end position e, backward-extend to the minimal begin
    // b(e) with query[b..e) present. b() is non-decreasing in e, and
    // [b(e), e) is an SMEM exactly when the next end strictly raises
    // the begin (i.e. the match is right-maximal); equal begins mean
    // the current candidate extends rightward and is replaced.
    uint32_t cur_begin = 0, cur_end = 0;
    SaRange cur_range;
    bool have = false;
    for (uint32_t e = 1; e <= m; ++e) {
        SaRange range = fullRange();
        uint32_t b = e;
        while (b > 0) {
            const SaRange next = extend(range, query[b - 1]);
            if (next.empty())
                break;
            range = next;
            --b;
        }
        if (!have || b > cur_begin) {
            if (have && cur_end - cur_begin >= min_length)
                mems.push_back({cur_begin, cur_end, cur_range});
            cur_begin = b;
            cur_end = e;
            cur_range = range;
            have = true;
        } else {
            cur_end = e;
            cur_range = range;
        }
    }
    if (have && cur_end - cur_begin >= min_length)
        mems.push_back({cur_begin, cur_end, cur_range});
}

} // namespace pgb::index
