#include "index/gbwt.hpp"

#include <algorithm>
#include <map>

#include "core/logging.hpp"
#include "core/thread_pool.hpp"
#include "index/suffix_array.hpp"

namespace pgb::index {

GbwtIndex::GbwtIndex(const graph::PanGraph &graph,
                     bool run_length_encode, unsigned threads)
    : rle_(run_length_encode)
{
    threads = core::clampThreads(threads);
    // Internal ids: 0 = end/start marker, handle.packed() + 1 otherwise.
    const size_t id_space = graph.nodeCount() * 2 + 1;
    records_.resize(id_space);

    // ---- Concatenate the reversed paths, sentinel 0 after each.
    std::vector<uint32_t> concat;
    struct VisitRef
    {
        uint32_t concatPos;
        uint32_t successor;
    };
    // visits[v] = all visits to internal node v (unordered yet)
    std::vector<std::vector<VisitRef>> visits(id_space);

    for (graph::PathId path = 0; path < graph.pathCount(); ++path) {
        const auto &steps = graph.pathSteps(path);
        const auto start = static_cast<uint32_t>(concat.size());
        const auto len = steps.size();
        for (size_t r = 0; r < len; ++r) {
            // Reversed order: concat position start+r holds step
            // len-1-r.
            concat.push_back(toInternal(steps[len - 1 - r]));
        }
        concat.push_back(kEndMarker);
        for (size_t i = 0; i < len; ++i) {
            const auto j = static_cast<uint32_t>(start + (len - 1 - i));
            const uint32_t successor =
                i + 1 < len ? toInternal(steps[i + 1]) : kEndMarker;
            visits[concat[j]].push_back({j, successor});
        }
    }
    if (concat.empty())
        return;

    // ---- Order visits by reversed prefix: rank of the suffix at j+1.
    // Nodes own disjoint visit lists and the rank comparator is a
    // total order (concat positions are distinct), so the per-node
    // sorts parallelize with identical results at any thread count.
    const auto ranks = suffixRanks(buildSuffixArray(concat));
    core::parallelFor(0, id_space, threads, [&](size_t v) {
        auto &list = visits[v];
        std::sort(list.begin(), list.end(),
                  [&](const VisitRef &a, const VisitRef &b) {
                      return ranks[a.concatPos + 1] <
                             ranks[b.concatPos + 1];
                  });
    });

    // ---- Predecessor-block offsets: within node w's sorted visit
    // list, all visits sharing a predecessor are contiguous; record
    // where each predecessor's block starts.
    // blockOffset[w][u] = first index in w's list with predecessor u.
    std::vector<std::map<uint32_t, uint32_t>> block_offset(id_space);
    core::parallelFor(0, id_space, threads, [&](size_t w) {
        for (uint32_t i = 0; i < visits[w].size(); ++i) {
            const uint32_t j = visits[w][i].concatPos;
            const uint32_t pred = concat[j + 1]; // sentinel -> 0 marker
            block_offset[w].try_emplace(pred, i);
        }
    });

    // ---- Materialize records. Each record reads only its own visit
    // list and the (now frozen) block-offset maps of its successors.
    core::parallelFor(0, id_space, threads, [&](size_t v) {
        Record &record = records_[v];
        record.size = static_cast<uint32_t>(visits[v].size());
        if (record.size == 0)
            return;
        // Sorted distinct successors.
        std::vector<uint32_t> succs;
        for (const VisitRef &visit : visits[v])
            succs.push_back(visit.successor);
        std::sort(succs.begin(), succs.end());
        succs.erase(std::unique(succs.begin(), succs.end()), succs.end());
        record.edges = succs;
        record.edgeOffsets.resize(succs.size());
        for (size_t e = 0; e < succs.size(); ++e) {
            const uint32_t w = succs[e];
            if (w == kEndMarker) {
                record.edgeOffsets[e] = 0; // never followed
                continue;
            }
            auto it = block_offset[w].find(static_cast<uint32_t>(v));
            if (it == block_offset[w].end())
                core::panic("GbwtIndex: missing predecessor block");
            record.edgeOffsets[e] = it->second;
        }
        // Body: successor edge-index per visit, in visit order.
        auto edge_index = [&](uint32_t succ) {
            const auto it = std::lower_bound(record.edges.begin(),
                                             record.edges.end(), succ);
            return static_cast<uint32_t>(it - record.edges.begin());
        };
        if (rle_) {
            for (const VisitRef &visit : visits[v]) {
                const uint32_t e = edge_index(visit.successor);
                if (!record.runs.empty() && record.runs.back().first == e)
                    ++record.runs.back().second;
                else
                    record.runs.emplace_back(e, 1);
            }
        } else {
            for (const VisitRef &visit : visits[v])
                record.plain.push_back(edge_index(visit.successor));
        }
    });
}

GbwtRange
GbwtIndex::fullRange(graph::Handle handle) const
{
    const uint32_t v = toInternal(handle);
    if (v >= records_.size())
        return {};
    GbwtRange range;
    range.node = v;
    range.begin = 0;
    range.end = records_[v].size;
    return range;
}

uint32_t
GbwtIndex::visitCount(graph::Handle handle) const
{
    const uint32_t v = toInternal(handle);
    return v < records_.size() ? records_[v].size : 0;
}

GbwtIndex::FlatImage
GbwtIndex::flatten() const
{
    FlatImage image;
    image.rle = rle_;
    image.recordHeaders.reserve(records_.size() * 4);
    for (const Record &record : records_) {
        image.recordHeaders.push_back(record.size);
        image.recordHeaders.push_back(
            static_cast<uint32_t>(record.edges.size()));
        image.recordHeaders.push_back(
            static_cast<uint32_t>(record.runs.size()));
        image.recordHeaders.push_back(
            static_cast<uint32_t>(record.plain.size()));
        image.edges.insert(image.edges.end(), record.edges.begin(),
                           record.edges.end());
        image.edgeOffsets.insert(image.edgeOffsets.end(),
                                 record.edgeOffsets.begin(),
                                 record.edgeOffsets.end());
        for (const auto &[edge, len] : record.runs) {
            image.runs.push_back(edge);
            image.runs.push_back(len);
        }
        image.plain.insert(image.plain.end(), record.plain.begin(),
                           record.plain.end());
    }
    return image;
}

GbwtIndex
GbwtIndex::restore(const FlatImage &image)
{
    GbwtIndex index;
    index.rle_ = image.rle;
    const size_t record_count = image.recordHeaders.size() / 4;
    index.records_.resize(record_count);
    size_t edge_at = 0, run_at = 0, plain_at = 0;
    for (size_t r = 0; r < record_count; ++r) {
        Record &record = index.records_[r];
        record.size = image.recordHeaders[r * 4];
        const uint32_t edge_count = image.recordHeaders[r * 4 + 1];
        const uint32_t run_count = image.recordHeaders[r * 4 + 2];
        const uint32_t plain_count = image.recordHeaders[r * 4 + 3];
        record.edges.assign(image.edges.begin() +
                                static_cast<ptrdiff_t>(edge_at),
                            image.edges.begin() +
                                static_cast<ptrdiff_t>(edge_at +
                                                       edge_count));
        record.edgeOffsets.assign(
            image.edgeOffsets.begin() + static_cast<ptrdiff_t>(edge_at),
            image.edgeOffsets.begin() +
                static_cast<ptrdiff_t>(edge_at + edge_count));
        edge_at += edge_count;
        record.runs.reserve(run_count);
        for (uint32_t i = 0; i < run_count; ++i) {
            record.runs.emplace_back(image.runs[run_at + 2 * i],
                                     image.runs[run_at + 2 * i + 1]);
        }
        run_at += 2 * run_count;
        record.plain.assign(
            image.plain.begin() + static_cast<ptrdiff_t>(plain_at),
            image.plain.begin() +
                static_cast<ptrdiff_t>(plain_at + plain_count));
        plain_at += plain_count;
    }
    return index;
}

GbwtStats
GbwtIndex::stats() const
{
    GbwtStats stats;
    for (const Record &record : records_) {
        if (record.size == 0)
            continue;
        ++stats.records;
        stats.totalVisits += record.size;
        stats.totalRuns += rle_ ? record.runs.size()
                                : record.plain.size();
    }
    if (stats.totalRuns > 0) {
        stats.avgRunLength = static_cast<double>(stats.totalVisits) /
                             static_cast<double>(stats.totalRuns);
    }
    return stats;
}

} // namespace pgb::index
