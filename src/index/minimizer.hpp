/**
 * @file
 * Minimizer seeding: (w,k)-minimizers with canonical k-mers and an
 * index over pangenome graph node sequences.
 *
 * All four Seq2Graph mapping tools the paper studies use minimizer
 * seeding (paper §2.1: "same computation as Seq2Seq minimizers, but
 * with larger memory requirements" since positions are graph
 * coordinates). The index maps minimizer hashes to (node, offset,
 * orientation) positions.
 *
 * Like vg's haplotype-based minimizer index, graphs with embedded
 * paths are indexed along their path sequences, so k-mers spanning
 * node boundaries (the common case in fine-grained graphs like the
 * paper's Split-M-graph) are found; positions are projected back to
 * (node, forward offset). Pathless graphs fall back to per-node
 * indexing.
 */

#ifndef PGB_INDEX_MINIMIZER_HPP
#define PGB_INDEX_MINIMIZER_HPP

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/probe.hpp"
#include "core/scratch.hpp"
#include "graph/pangraph.hpp"

namespace pgb::index {

/** Invertible 64-bit mix (minimap2's hash64). */
inline uint64_t
hash64(uint64_t key, uint64_t mask)
{
    key = (~key + (key << 21)) & mask;
    key = key ^ (key >> 24);
    key = ((key + (key << 3)) + (key << 8)) & mask;
    key = key ^ (key >> 14);
    key = ((key + (key << 2)) + (key << 4)) & mask;
    key = key ^ (key >> 28);
    key = (key + (key << 31)) & mask;
    return key;
}

/** One minimizer occurrence on a sequence. */
struct Minimizer
{
    uint64_t hash = 0;
    uint32_t position = 0; ///< start of the k-mer on the sequence
    bool reverse = false;  ///< canonical strand of the k-mer
};

namespace detail {

/** One window candidate of the minimizer scan. */
struct MinimizerCand
{
    uint64_t hash;
    uint32_t pos;
    bool reverse;
};

/** Thread-local candidate buffer reused across scans. */
struct MinimizerWindowScratch
{
    std::vector<MinimizerCand> cands;
};

} // namespace detail

/**
 * Compute the (w,k)-minimizers of @p bases (encoded) into @p out
 * (cleared first, capacity reused). Canonical k-mers; windows
 * containing N are skipped. The window candidate buffer lives in a
 * thread-local scratch, so per-read calls on the mapping hot path do
 * not touch malloc once warm.
 */
template <typename Probe = core::NullProbe>
void
computeMinimizersInto(std::span<const uint8_t> bases, int k, int w,
                      std::vector<Minimizer> &out, Probe &probe)
{
    using detail::MinimizerCand;
    out.clear();
    const size_t n = bases.size();
    if (n < static_cast<size_t>(k))
        return;
    const uint64_t mask = k < 32 ? (1ull << (2 * k)) - 1 : ~0ull;
    const int shift = 2 * (k - 1);

    uint64_t fwd = 0, rev = 0;
    int valid = 0; // consecutive non-N bases ending here

    // Ring buffer of candidate (hash, pos, strand) for the window.
    std::vector<MinimizerCand> &window =
        core::threadScratch<detail::MinimizerWindowScratch>().cands;
    window.clear();
    window.reserve(n >= static_cast<size_t>(k) ?
                   n - static_cast<size_t>(k) + 1 : 0);
    auto emit_if_new = [&](const MinimizerCand &cand) {
        if (out.empty() || out.back().hash != cand.hash ||
            out.back().position != cand.pos) {
            out.push_back({cand.hash, cand.pos, cand.reverse});
        }
    };

    for (size_t i = 0; i < n; ++i) {
        probe.load(bases.data() + i, 1);
        const uint8_t base = bases[i];
        if (base >= 4) {
            valid = 0;
            window.clear();
            probe.branch(/* site */ 50, true);
            continue;
        }
        fwd = ((fwd << 2) | base) & mask;
        rev = (rev >> 2) |
              (static_cast<uint64_t>(3 - base) << shift);
        probe.op(core::OpKind::kScalar, 4);
        ++valid;
        if (valid < k)
            continue;
        // Canonical k-mer; skip palindromes (fwd == rev) like minimap2.
        probe.branch(/* site */ 51, fwd == rev);
        if (fwd == rev)
            continue;
        const bool reverse = rev < fwd;
        const uint64_t hash = hash64(reverse ? rev : fwd, mask);
        const auto pos = static_cast<uint32_t>(i + 1 - k);
        window.push_back({hash, pos, reverse});

        // Report the window minimum once the window is full.
        if (pos + 1 >= static_cast<uint32_t>(w)) {
            // Scan the last w candidates for the minimum hash.
            MinimizerCand best = window.back();
            const size_t lo = window.size() >= static_cast<size_t>(w)
                ? window.size() - static_cast<size_t>(w) : 0;
            for (size_t c = lo; c < window.size(); ++c) {
                probe.load(&window[c], 8);
                if (window[c].hash < best.hash)
                    best = window[c];
            }
            emit_if_new(best);
        }
    }
}

/** Returning variant of computeMinimizersInto. */
template <typename Probe = core::NullProbe>
std::vector<Minimizer>
computeMinimizers(std::span<const uint8_t> bases, int k, int w,
                  Probe &probe)
{
    std::vector<Minimizer> out;
    computeMinimizersInto(bases, k, w, out, probe);
    return out;
}

/** Convenience overload without instrumentation. */
std::vector<Minimizer> computeMinimizers(std::span<const uint8_t> bases,
                                         int k, int w);

/**
 * One indexed occurrence of a minimizer in the graph.
 *
 * The layout is padding-free and deterministic (reverse is a u32, not
 * a bool) because this struct doubles as the on-disk record of the
 * `.pgbi` MHIT section: a loaded index views the mmap'ed section as a
 * span of GraphSeedHit with no conversion copy.
 */
struct GraphSeedHit
{
    uint32_t node = 0;
    uint32_t offset = 0;  ///< k-mer start on the forward node sequence
    uint32_t reverse = 0; ///< canonical strand on the node (0/1)
};

static_assert(sizeof(GraphSeedHit) == 12,
              "GraphSeedHit is a .pgbi on-disk record");

/** Minimizer index over the node sequences of a PanGraph. */
class MinimizerIndex
{
  public:
    /**
     * One hash's occurrence range, sorted by hash — the flat,
     * binary-searchable form of the lookup table and the on-disk
     * record of the `.pgbi` MTAB section.
     */
    struct TableEntry
    {
        uint64_t hash = 0;
        uint32_t begin = 0; ///< [begin, end) into the hit array
        uint32_t end = 0;
    };

    static_assert(sizeof(TableEntry) == 16,
                  "TableEntry is a .pgbi on-disk record");

    /**
     * Build over @p graph with (w,k) minimizers. @p threads > 1
     * computes per-path (or per-node) minimizers concurrently on the
     * shared pool; occurrence lists are concatenated in path order
     * before the sort, so the index is identical at every thread
     * count.
     */
    MinimizerIndex(const graph::PanGraph &graph, int k, int w,
                   unsigned threads = 1);

    /**
     * Zero-copy view over serialized sections (pgb::store): lookups
     * binary-search @p table instead of hashing. The spans' backing
     * memory (the mmap'ed artifact) must outlive the index.
     */
    MinimizerIndex(int k, int w, std::span<const TableEntry> table,
                   std::span<const GraphSeedHit> hits);

    int k() const { return k_; }
    int w() const { return w_; }

    /** Occurrences of minimizer @p hash (empty span if absent). */
    std::span<const GraphSeedHit> occurrences(uint64_t hash) const;

    /** Number of distinct minimizer hashes. */
    size_t
    distinctMinimizers() const
    {
        return viewMode_ ? tableView_.size() : table_.size();
    }

    /** Total indexed occurrences. */
    size_t
    totalOccurrences() const
    {
        return viewMode_ ? hitsView_.size() : hits_.size();
    }

    /** Whether this index is a zero-copy view over an artifact. */
    bool isView() const { return viewMode_; }

    /** Flat sorted table for serialization (built or viewed). */
    std::vector<TableEntry> flatTable() const;

    /** All occurrences in table order (built or viewed). */
    std::span<const GraphSeedHit>
    allHits() const
    {
        return viewMode_ ? hitsView_ : std::span<const GraphSeedHit>(
                                           hits_.data(), hits_.size());
    }

  private:
    int k_, w_;
    bool viewMode_ = false;
    /// hash -> [begin, end) into hits_ (build mode)
    std::unordered_map<uint64_t, std::pair<uint32_t, uint32_t>> table_;
    std::vector<GraphSeedHit> hits_;
    /// zero-copy spans into a loaded artifact (view mode)
    std::span<const TableEntry> tableView_;
    std::span<const GraphSeedHit> hitsView_;
};

} // namespace pgb::index

#endif // PGB_INDEX_MINIMIZER_HPP
