/**
 * @file
 * PGSGD: Path-Guided Stochastic Gradient Descent graph layout
 * (extracted from odgi layout in the paper).
 *
 * Computes a 2-D layout of a pangenome graph whose Euclidean distances
 * approximate path (nucleotide) distances. Each update step samples a
 * pair of anchors on a random path — biased toward nearby pairs with a
 * Zipf-like distribution — and nudges both toward their target
 * distance (paper Figure 4g). Updates are parallelized lock-free with
 * Hogwild!; the rare racy update is corrected by later iterations.
 *
 * The layout array is uniformly randomly indexed, independent of graph
 * structure, which is what makes this the memory-bound, low-IPC kernel
 * of the paper's Figure 6/7. Coordinates are relaxed std::atomic
 * doubles: same lock-free semantics as odgi's plain doubles, without
 * the formal data race.
 */

#ifndef PGB_LAYOUT_PGSGD_HPP
#define PGB_LAYOUT_PGSGD_HPP

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/probe.hpp"
#include "core/rng.hpp"
#include "core/thread_pool.hpp"
#include "graph/pangraph.hpp"

namespace pgb::layout {

/**
 * Path step index: flattened (path, step) records with cumulative
 * nucleotide offsets, supporting O(1) random step sampling and O(1)
 * path-distance evaluation. Mirrors odgi's path index (the sequential
 * preprocessing step that limits end-to-end scaling in Figure 5).
 */
class PathIndex
{
  public:
    explicit PathIndex(const graph::PanGraph &graph);

    /** Total steps across all paths. */
    size_t totalSteps() const { return stepNode_.size(); }

    size_t pathCount() const { return pathFirst_.size(); }

    /** Number of steps of path @p path. */
    size_t
    pathSteps(size_t path) const
    {
        return pathEnd(path) - pathFirst_[path];
    }

    /** Node of flattened step @p step. */
    uint32_t stepNode(size_t step) const { return stepNode_[step]; }

    /** Nucleotide offset of step @p step within its path. */
    uint64_t stepOffset(size_t step) const { return stepOffset_[step]; }

    /** Length in bases of the node at step @p step. */
    uint32_t
    stepLength(size_t step) const
    {
        return stepLength_[step];
    }

    /** Path owning flattened step @p step. */
    size_t pathOf(size_t step) const;

    /** First flattened step of @p path. */
    size_t pathFirst(size_t path) const { return pathFirst_[path]; }

    /** One past the last flattened step of @p path. */
    size_t pathEnd(size_t path) const;

    /** Raw step-offset array (probe address provenance). */
    const uint64_t *stepOffsetsData() const { return stepOffset_.data(); }

  private:
    std::vector<uint32_t> stepNode_;
    std::vector<uint32_t> stepLength_;
    std::vector<uint64_t> stepOffset_;
    std::vector<size_t> pathFirst_;
};

/** PGSGD hyper-parameters (defaults follow odgi layout). */
struct PgsgdParams
{
    uint32_t iterations = 30;
    /** Update steps per iteration = updateFactor * total path steps. */
    double updateFactor = 1.0;
    double etaMax = 100.0;    ///< initial learning rate
    double etaMin = 0.01;     ///< final learning rate
    double zipfTheta = 0.99;  ///< near-pair sampling bias
    /** Max step distance (in steps) for the Zipf draw; 0 = path length. */
    uint64_t spaceMax = 1000;
    unsigned threads = 1;
    uint64_t seed = 42;
    bool useLocks = false;    ///< ablation: mutex-guarded updates
};

/** 2-D layout: one (x, y) point per node endpoint (2 per node). */
class Layout
{
  public:
    Layout(size_t node_count, uint64_t seed);

    size_t points() const { return count_; }

    double x(size_t point) const
    {
        return x_[point].load(std::memory_order_relaxed);
    }
    double y(size_t point) const
    {
        return y_[point].load(std::memory_order_relaxed);
    }

    std::atomic<double> *xData() { return x_.get(); }
    std::atomic<double> *yData() { return y_.get(); }

    /** Index of the start endpoint of @p node. */
    static size_t startPoint(uint32_t node) { return 2 * node; }
    /** Index of the end endpoint of @p node. */
    static size_t endPoint(uint32_t node) { return 2 * node + 1; }

  private:
    size_t count_;
    std::unique_ptr<std::atomic<double>[]> x_;
    std::unique_ptr<std::atomic<double>[]> y_;
};

/** PGSGD outcome metrics. */
struct PgsgdResult
{
    double stressBefore = 0.0; ///< normalized stress of the random init
    double stressAfter = 0.0;  ///< after the SGD schedule
    uint64_t updates = 0;
};

/**
 * Normalized layout stress: mean over sampled step pairs of
 * ((d_layout - d_path) / d_path)^2. Lower is better.
 */
double layoutStress(const PathIndex &index, Layout &layout,
                    size_t samples, uint64_t seed);

namespace pgsgddetail {

/** One SGD update step; shared by CPU and GPU-simulated variants. */
template <typename Probe>
inline void
updatePair(std::atomic<double> *xs, std::atomic<double> *ys,
           size_t point_a, size_t point_b, double target, double eta,
           Probe &probe)
{
    // Scalar-double arithmetic: classified kVector to mirror the
    // paper's MICA binning of SSE scalar FP ops (Figure 8 discussion).
    probe.load(xs + point_a, 8);
    probe.load(ys + point_a, 8);
    probe.load(xs + point_b, 8);
    probe.load(ys + point_b, 8);
    const double ax = xs[point_a].load(std::memory_order_relaxed);
    const double ay = ys[point_a].load(std::memory_order_relaxed);
    const double bx = xs[point_b].load(std::memory_order_relaxed);
    const double by = ys[point_b].load(std::memory_order_relaxed);
    const double dx = ax - bx;
    const double dy = ay - by;
    double dist = std::sqrt(dx * dx + dy * dy);
    probe.op(core::OpKind::kVector, 6); // mul/add/sqrt chain
    if (dist < 1e-9)
        dist = 1e-9;
    // Weighted SGD step (w = 1/d^2), clamped to mu <= 1.
    const double w = 1.0 / (target * target);
    double mu = eta * w;
    probe.branch(/* site */ 80, mu > 1.0);
    if (mu > 1.0)
        mu = 1.0;
    const double delta = mu * (dist - target) / 2.0;
    const double rx = delta * dx / dist;
    const double ry = delta * dy / dist;
    probe.op(core::OpKind::kVector, 8); // divisions and scaling
    xs[point_a].store(ax - rx, std::memory_order_relaxed);
    ys[point_a].store(ay - ry, std::memory_order_relaxed);
    xs[point_b].store(bx + rx, std::memory_order_relaxed);
    ys[point_b].store(by + ry, std::memory_order_relaxed);
    probe.store(xs + point_a, 8);
    probe.store(ys + point_a, 8);
    probe.store(xs + point_b, 8);
    probe.store(ys + point_b, 8);
}

/**
 * Sample a step pair on a random path: first step uniform, second at a
 * Zipf-distributed step distance (paper: anchors biased toward nearby
 * pairs so local structure converges first).
 */
template <typename Probe>
inline bool
samplePair(const PathIndex &index, const PgsgdParams &params,
           core::Rng &rng, Probe &probe, size_t &step_a, size_t &step_b)
{
    step_a = rng.below(index.totalSteps());
    const size_t path = index.pathOf(step_a);
    const size_t first = index.pathFirst(path);
    const size_t end = index.pathEnd(path);
    const size_t len = end - first;
    probe.op(core::OpKind::kScalar, 4);
    if (len < 2)
        return false;
    uint64_t space = len - 1;
    if (params.spaceMax > 0 && space > params.spaceMax)
        space = params.spaceMax;
    const uint64_t jump = rng.zipf(space, params.zipfTheta);
    const bool forward = rng.chance(0.5);
    probe.op(core::OpKind::kScalar, 3);
    const size_t pos = step_a - first;
    size_t target_pos;
    if (forward) {
        target_pos = pos + jump < len ? pos + jump
                                      : (pos >= jump ? pos - jump : len - 1);
    } else {
        target_pos = pos >= jump ? pos - jump
                                 : (pos + jump < len ? pos + jump : 0);
    }
    step_b = first + target_pos;
    return step_b != step_a;
}

} // namespace pgsgddetail

/**
 * Run the PGSGD layout kernel.
 *
 * With params.threads > 1 the updates run Hogwild!-style (lock-free,
 * racy-but-self-correcting); characterization runs use one thread.
 */
template <typename Probe = core::NullProbe>
PgsgdResult
pgsgdLayout(const PathIndex &index, Layout &layout,
            const PgsgdParams &params, Probe &probe)
{
    PgsgdResult result;
    result.stressBefore =
        layoutStress(index, layout, 10000, params.seed ^ 0xBEEF);

    const uint64_t updates_per_iter = static_cast<uint64_t>(
        params.updateFactor * static_cast<double>(index.totalSteps()));
    const double lambda =
        params.iterations <= 1
            ? 0.0
            : std::log(params.etaMax / params.etaMin) /
                  static_cast<double>(params.iterations - 1);

    std::atomic<uint64_t> total_updates(0);
    std::mutex lock; // only used for the useLocks ablation

    for (uint32_t iter = 0; iter < params.iterations; ++iter) {
        const double eta =
            params.etaMax * std::exp(-lambda * static_cast<double>(iter));
        // Synchronization barrier between iterations (the paper notes
        // these barriers limit thread scaling).
        core::parallelRun(params.threads, [&](unsigned tid) {
            core::Rng rng = core::Rng::forStream(
                params.seed + iter, tid);
            const uint64_t mine =
                updates_per_iter / core::clampThreads(params.threads);
            for (uint64_t u = 0; u < mine; ++u) {
                size_t step_a, step_b;
                if (!pgsgddetail::samplePair(index, params, rng, probe,
                                             step_a, step_b)) {
                    continue;
                }
                // Path distance between the chosen anchors.
                const uint64_t off_a = index.stepOffset(step_a);
                const uint64_t off_b = index.stepOffset(step_b);
                probe.load(index.stepOffsetsData() + step_a, 8);
                probe.load(index.stepOffsetsData() + step_b, 8);
                const double target = off_a > off_b
                    ? static_cast<double>(off_a - off_b)
                    : static_cast<double>(off_b - off_a);
                if (target <= 0.0)
                    continue;
                // Anchor endpoints: node starts (odgi picks an end by
                // intra-node offset; steps here are whole nodes).
                const size_t pa =
                    Layout::startPoint(index.stepNode(step_a));
                const size_t pb =
                    Layout::startPoint(index.stepNode(step_b));
                if (pa == pb)
                    continue;
                if (params.useLocks) {
                    std::lock_guard<std::mutex> guard(lock);
                    pgsgddetail::updatePair(layout.xData(),
                                            layout.yData(), pa, pb,
                                            target, eta, probe);
                } else {
                    pgsgddetail::updatePair(layout.xData(),
                                            layout.yData(), pa, pb,
                                            target, eta, probe);
                }
                total_updates.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    result.updates = total_updates.load();
    result.stressAfter =
        layoutStress(index, layout, 10000, params.seed ^ 0xF00D);
    return result;
}

/** Convenience overload without instrumentation. */
PgsgdResult pgsgdLayout(const PathIndex &index, Layout &layout,
                        const PgsgdParams &params);

} // namespace pgb::layout

#endif // PGB_LAYOUT_PGSGD_HPP
