#include "layout/pgsgd.hpp"

#include <algorithm>

#include "core/logging.hpp"

namespace pgb::layout {

PathIndex::PathIndex(const graph::PanGraph &graph)
{
    if (graph.pathCount() == 0)
        core::fatal("PathIndex: graph has no paths");
    for (graph::PathId path = 0; path < graph.pathCount(); ++path) {
        pathFirst_.push_back(stepNode_.size());
        uint64_t offset = 0;
        for (graph::Handle step : graph.pathSteps(path)) {
            stepNode_.push_back(step.node());
            const auto length =
                static_cast<uint32_t>(graph.nodeLength(step.node()));
            stepLength_.push_back(length);
            stepOffset_.push_back(offset);
            offset += length;
        }
    }
}

size_t
PathIndex::pathOf(size_t step) const
{
    const auto it = std::upper_bound(pathFirst_.begin(),
                                     pathFirst_.end(), step);
    return static_cast<size_t>(it - pathFirst_.begin()) - 1;
}

size_t
PathIndex::pathEnd(size_t path) const
{
    return path + 1 < pathFirst_.size() ? pathFirst_[path + 1]
                                        : stepNode_.size();
}

Layout::Layout(size_t node_count, uint64_t seed)
    : count_(node_count * 2),
      x_(std::make_unique<std::atomic<double>[]>(count_)),
      y_(std::make_unique<std::atomic<double>[]>(count_))
{
    // odgi seeds layouts along a space-filling-ish line with noise; a
    // scaled random init reproduces the "twisted" starting condition.
    core::Rng rng(seed);
    const double span = static_cast<double>(count_);
    for (size_t i = 0; i < count_; ++i) {
        x_[i].store(rng.uniform() * span, std::memory_order_relaxed);
        y_[i].store(rng.uniform() * span, std::memory_order_relaxed);
    }
}

double
layoutStress(const PathIndex &index, Layout &layout, size_t samples,
             uint64_t seed)
{
    core::Rng rng(seed);
    core::NullProbe probe;
    PgsgdParams params; // default sampling shape
    double total = 0.0;
    size_t used = 0;
    for (size_t i = 0; i < samples; ++i) {
        size_t step_a, step_b;
        if (!pgsgddetail::samplePair(index, params, rng, probe, step_a,
                                     step_b)) {
            continue;
        }
        const uint64_t off_a = index.stepOffset(step_a);
        const uint64_t off_b = index.stepOffset(step_b);
        const double target = off_a > off_b
            ? static_cast<double>(off_a - off_b)
            : static_cast<double>(off_b - off_a);
        if (target <= 0.0)
            continue;
        const size_t pa = Layout::startPoint(index.stepNode(step_a));
        const size_t pb = Layout::startPoint(index.stepNode(step_b));
        if (pa == pb)
            continue;
        const double dx = layout.x(pa) - layout.x(pb);
        const double dy = layout.y(pa) - layout.y(pb);
        const double dist = std::sqrt(dx * dx + dy * dy);
        const double rel = (dist - target) / target;
        total += rel * rel;
        ++used;
    }
    return used == 0 ? 0.0 : total / static_cast<double>(used);
}

PgsgdResult
pgsgdLayout(const PathIndex &index, Layout &layout,
            const PgsgdParams &params)
{
    core::NullProbe probe;
    return pgsgdLayout(index, layout, params, probe);
}

} // namespace pgb::layout
