#include "seq/fasta.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "core/io.hpp"
#include "core/logging.hpp"
#include "seq/alphabet.hpp"

namespace pgb::seq {

using core::fatal;

namespace {

/** Index of the first character outside ACGTNacgtn, or npos. */
size_t
firstInvalidBase(const std::string &bases)
{
    for (size_t i = 0; i < bases.size(); ++i) {
        const char c = bases[i];
        if (encodeBase(c) == kBaseN && c != 'N' && c != 'n')
            return i;
    }
    return std::string::npos;
}

std::vector<Sequence>
readFastaImpl(std::istream &input, const std::string &label,
              const core::ParseOptions &options, core::ParseStats *stats)
{
    std::vector<Sequence> records;
    core::ParseErrors errors{label, options};
    std::string line;
    std::string name;
    std::string bases;
    size_t line_no = 0;
    size_t header_line = 0;
    bool in_record = false;
    bool poisoned = false; ///< current record had a bad body line

    auto flush = [&]() {
        if (!in_record)
            return;
        if (poisoned) {
            poisoned = false;
            return;
        }
        if (bases.empty()) {
            if (errors.bad(header_line, "record '", name,
                           "' has no sequence"))
                return;
        }
        records.emplace_back(name, bases);
    };

    while (std::getline(input, line)) {
        ++line_no;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        if (line[0] == '>') {
            flush();
            in_record = true;
            header_line = line_no;
            // Record name runs to the first whitespace.
            const size_t space = line.find_first_of(" \t");
            name = line.substr(1, space == std::string::npos
                                      ? std::string::npos : space - 1);
            bases.clear();
            if (name.empty()) {
                poisoned = errors.bad(line_no, "empty record name");
            }
        } else {
            if (!in_record) {
                if (errors.bad(line_no,
                               "sequence data before first '>' header"))
                    continue;
            }
            if (poisoned)
                continue;
            const size_t invalid = firstInvalidBase(line);
            if (invalid != std::string::npos) {
                poisoned = errors.bad(line_no, "non-ACGTN character '",
                                      line[invalid], "' in record '",
                                      name, "'");
                continue;
            }
            bases += line;
        }
    }
    flush();

    if (records.empty() && errors.skipped == 0) {
        if (!options.lenient)
            fatal(label, ": empty input (no records)");
        core::warn(label, ": empty input (no records)");
    }
    if (stats != nullptr) {
        stats->records = records.size();
        stats->skipped = errors.skipped;
    }
    return records;
}

/**
 * Append up to @p max_records four-line FASTQ records from @p input
 * to @p records. @p line_no advances continuously, so the same scanner
 * serves the slurp readers (max_records = SIZE_MAX) and the batched
 * FastqStreamReader with identical diagnostics.
 * @return the number of records appended.
 */
size_t
scanFastq(std::istream &input, core::ParseErrors &errors, size_t &line_no,
          std::vector<Sequence> &records, size_t max_records)
{
    const size_t start = records.size();
    std::string header, bases, plus, quality;

    auto nextLine = [&](std::string &out) {
        if (!std::getline(input, out))
            return false;
        ++line_no;
        if (!out.empty() && out.back() == '\r')
            out.pop_back();
        return true;
    };

    while (records.size() - start < max_records && nextLine(header)) {
        if (header.empty())
            continue;
        const size_t record_line = line_no;
        if (header[0] != '@') {
            // Lenient: skip this one line and resync on the next '@'.
            if (errors.bad(record_line, "expected '@' header, got '",
                           header, "'"))
                continue;
        }
        if (!nextLine(bases)) {
            if (errors.bad(record_line, "truncated record after "
                           "header '", header, "'"))
                break;
        }
        if (!nextLine(plus) || plus.empty() || plus[0] != '+') {
            if (errors.bad(record_line, "expected '+' separator line "
                           "in record '", header, "'"))
                continue;
        }
        if (!nextLine(quality)) {
            if (errors.bad(record_line, "truncated record before "
                           "quality line in '", header, "'"))
                break;
        }
        if (quality.size() != bases.size()) {
            if (errors.bad(record_line, "quality length ",
                           quality.size(), " != sequence length ",
                           bases.size(), " in record '", header, "'"))
                continue;
        }
        const size_t invalid = firstInvalidBase(bases);
        if (invalid != std::string::npos) {
            if (errors.bad(record_line, "non-ACGTN character '",
                           bases[invalid], "' in record '", header,
                           "'"))
                continue;
        }
        const size_t space = header.find_first_of(" \t");
        records.emplace_back(
            header.substr(1, space == std::string::npos
                                 ? std::string::npos : space - 1),
            bases);
    }
    return records.size() - start;
}

std::vector<Sequence>
readFastqImpl(std::istream &input, const std::string &label,
              const core::ParseOptions &options, core::ParseStats *stats)
{
    std::vector<Sequence> records;
    core::ParseErrors errors{label, options};
    size_t line_no = 0;
    scanFastq(input, errors, line_no, records, SIZE_MAX);

    if (records.empty() && errors.skipped == 0) {
        if (!options.lenient)
            fatal(label, ": empty input (no records)");
        core::warn(label, ": empty input (no records)");
    }
    if (stats != nullptr) {
        stats->records = records.size();
        stats->skipped = errors.skipped;
    }
    return records;
}

} // namespace

std::vector<Sequence>
readFasta(std::istream &input, const core::ParseOptions &options,
          core::ParseStats *stats)
{
    return readFastaImpl(input, "FASTA", options, stats);
}

std::vector<Sequence>
readFastaFile(const std::string &path, const core::ParseOptions &options,
              core::ParseStats *stats)
{
    std::ifstream input(path);
    if (!input)
        fatal("FASTA: cannot open '", path, "'");
    return readFastaImpl(input, path, options, stats);
}

void
writeFasta(std::ostream &output, const std::vector<Sequence> &sequences,
           size_t width)
{
    for (const auto &sequence : sequences) {
        output << '>' << sequence.name() << '\n';
        const std::string bases = sequence.toString();
        for (size_t i = 0; i < bases.size(); i += width)
            output << bases.substr(i, width) << '\n';
    }
}

void
writeFastaFile(const std::string &path,
               const std::vector<Sequence> &sequences, size_t width)
{
    core::CheckedWriter out(path);
    writeFasta(out.stream(), sequences, width);
    out.finish();
}

std::vector<Sequence>
readFastq(std::istream &input, const core::ParseOptions &options,
          core::ParseStats *stats)
{
    return readFastqImpl(input, "FASTQ", options, stats);
}

std::vector<Sequence>
readFastqFile(const std::string &path, const core::ParseOptions &options,
              core::ParseStats *stats)
{
    std::ifstream input(path);
    if (!input)
        fatal("FASTQ: cannot open '", path, "'");
    return readFastqImpl(input, path, options, stats);
}

FastqStreamReader::FastqStreamReader(const std::string &path,
                                     const core::ParseOptions &options)
    : file_(path), label_(path), options_(options)
{
    if (!file_)
        fatal("FASTQ: cannot open '", path, "'");
}

bool
FastqStreamReader::nextBatch(std::vector<Sequence> &out,
                             size_t max_records)
{
    out.clear();
    if (exhausted_)
        return false;
    core::ParseErrors errors{label_, options_};
    const size_t got =
        scanFastq(file_, errors, lineNo_, out, max_records);
    stats_.records += got;
    stats_.skipped += errors.skipped;
    if (got < max_records) {
        exhausted_ = true;
        // Match readFastq: a file with no records at all is an error.
        if (stats_.records == 0 && stats_.skipped == 0) {
            if (!options_.lenient)
                fatal(label_, ": empty input (no records)");
            core::warn(label_, ": empty input (no records)");
        }
    }
    return got > 0;
}

void
writeFastq(std::ostream &output, const std::vector<Sequence> &sequences,
           char quality)
{
    for (const auto &sequence : sequences) {
        output << '@' << sequence.name() << '\n'
               << sequence.toString() << '\n'
               << "+\n"
               << std::string(sequence.size(), quality) << '\n';
    }
}

void
writeFastqFile(const std::string &path,
               const std::vector<Sequence> &sequences, char quality)
{
    core::CheckedWriter out(path);
    writeFastq(out.stream(), sequences, quality);
    out.finish();
}

} // namespace pgb::seq
