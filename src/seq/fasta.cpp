#include "seq/fasta.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "core/logging.hpp"

namespace pgb::seq {

using core::fatal;

std::vector<Sequence>
readFasta(std::istream &input)
{
    std::vector<Sequence> records;
    std::string line;
    std::string name;
    std::string bases;
    bool in_record = false;

    auto flush = [&]() {
        if (in_record)
            records.emplace_back(name, bases);
    };

    while (std::getline(input, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        if (line[0] == '>') {
            flush();
            in_record = true;
            // Record name runs to the first whitespace.
            const size_t space = line.find_first_of(" \t");
            name = line.substr(1, space == std::string::npos
                                      ? std::string::npos : space - 1);
            bases.clear();
        } else {
            if (!in_record)
                fatal("FASTA: sequence data before first '>' header");
            bases += line;
        }
    }
    flush();
    return records;
}

std::vector<Sequence>
readFastaFile(const std::string &path)
{
    std::ifstream input(path);
    if (!input)
        fatal("FASTA: cannot open '", path, "'");
    return readFasta(input);
}

void
writeFasta(std::ostream &output, const std::vector<Sequence> &sequences,
           size_t width)
{
    for (const auto &sequence : sequences) {
        output << '>' << sequence.name() << '\n';
        const std::string bases = sequence.toString();
        for (size_t i = 0; i < bases.size(); i += width)
            output << bases.substr(i, width) << '\n';
    }
}

void
writeFastaFile(const std::string &path,
               const std::vector<Sequence> &sequences, size_t width)
{
    std::ofstream output(path);
    if (!output)
        fatal("FASTA: cannot open '", path, "' for writing");
    writeFasta(output, sequences, width);
}

std::vector<Sequence>
readFastq(std::istream &input)
{
    std::vector<Sequence> records;
    std::string header, bases, plus, quality;
    while (std::getline(input, header)) {
        if (header.empty())
            continue;
        if (header[0] != '@')
            fatal("FASTQ: expected '@' header, got '", header, "'");
        if (!std::getline(input, bases))
            fatal("FASTQ: truncated record after header");
        if (!std::getline(input, plus) || plus.empty() || plus[0] != '+')
            fatal("FASTQ: expected '+' separator line");
        if (!std::getline(input, quality))
            fatal("FASTQ: truncated record before quality line");
        if (quality.size() != bases.size())
            fatal("FASTQ: quality length mismatch for record '", header, "'");
        const size_t space = header.find_first_of(" \t");
        records.emplace_back(
            header.substr(1, space == std::string::npos
                                 ? std::string::npos : space - 1),
            bases);
    }
    return records;
}

void
writeFastq(std::ostream &output, const std::vector<Sequence> &sequences,
           char quality)
{
    for (const auto &sequence : sequences) {
        output << '@' << sequence.name() << '\n'
               << sequence.toString() << '\n'
               << "+\n"
               << std::string(sequence.size(), quality) << '\n';
    }
}

} // namespace pgb::seq
