/**
 * @file
 * DNA alphabet: 2-bit base codes, complement, and character conversion.
 *
 * Bases are encoded A=0, C=1, G=2, T=3 so that complement is code ^ 3
 * and codes index packed tables directly. Unknown characters map to N
 * (code 4), which alignment kernels treat as a universal mismatch.
 */

#ifndef PGB_SEQ_ALPHABET_HPP
#define PGB_SEQ_ALPHABET_HPP

#include <array>
#include <cstdint>

namespace pgb::seq {

/** Number of concrete bases (A, C, G, T). */
constexpr int kNumBases = 4;

/** Code reserved for ambiguous/unknown characters. */
constexpr uint8_t kBaseN = 4;

/** Encode an ASCII nucleotide character (case-insensitive) to a code. */
constexpr uint8_t
encodeBase(char c)
{
    switch (c) {
      case 'A': case 'a': return 0;
      case 'C': case 'c': return 1;
      case 'G': case 'g': return 2;
      case 'T': case 't': return 3;
      default: return kBaseN;
    }
}

/** Decode a base code back to an uppercase ASCII character. */
constexpr char
decodeBase(uint8_t code)
{
    constexpr std::array<char, 5> table = {'A', 'C', 'G', 'T', 'N'};
    return table[code <= kBaseN ? code : kBaseN];
}

/** Complement of a base code (N maps to N). */
constexpr uint8_t
complementBase(uint8_t code)
{
    return code < kNumBases ? static_cast<uint8_t>(code ^ 3) : kBaseN;
}

/** Complement of an ASCII nucleotide character. */
constexpr char
complementChar(char c)
{
    return decodeBase(complementBase(encodeBase(c)));
}

/** Whether @p c is one of ACGTacgt. */
constexpr bool
isConcreteBase(char c)
{
    return encodeBase(c) < kNumBases;
}

} // namespace pgb::seq

#endif // PGB_SEQ_ALPHABET_HPP
