/**
 * @file
 * FASTA and FASTQ readers/writers.
 *
 * Minimal but strict line-based parsers sufficient for the suite's
 * dataset interchange: multi-line FASTA records, four-line FASTQ
 * records. Parse errors carry the source label (file path or format
 * name) and the 1-based line number; core::ParseOptions::lenient
 * skips malformed records with a warning instead (counted in
 * core::ParseStats). File output goes through core::CheckedWriter,
 * so write failures surface as catchable FatalErrors.
 */

#ifndef PGB_SEQ_FASTA_HPP
#define PGB_SEQ_FASTA_HPP

#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/parse.hpp"
#include "seq/sequence.hpp"

namespace pgb::seq {

/** Parse all FASTA records from @p input. */
std::vector<Sequence> readFasta(std::istream &input,
                                const core::ParseOptions &options = {},
                                core::ParseStats *stats = nullptr);

/** Parse all FASTA records from the file at @p path. */
std::vector<Sequence> readFastaFile(const std::string &path,
                                    const core::ParseOptions &options = {},
                                    core::ParseStats *stats = nullptr);

/** Write @p sequences as FASTA with @p width bases per line. */
void writeFasta(std::ostream &output, const std::vector<Sequence> &sequences,
                size_t width = 80);

/** Write @p sequences to the file at @p path (checked write). */
void writeFastaFile(const std::string &path,
                    const std::vector<Sequence> &sequences,
                    size_t width = 80);

/** Parse all FASTQ records (qualities are validated then discarded). */
std::vector<Sequence> readFastq(std::istream &input,
                                const core::ParseOptions &options = {},
                                core::ParseStats *stats = nullptr);

/** Parse all FASTQ records from the file at @p path. */
std::vector<Sequence> readFastqFile(const std::string &path,
                                    const core::ParseOptions &options = {},
                                    core::ParseStats *stats = nullptr);

/**
 * Bounded-memory FASTQ reader: pulls records in caller-sized batches
 * instead of slurping the whole file, so `pgb map` holds one batch of
 * reads at a time no matter how large the input is. Line numbers run
 * continuously across batches, and error semantics match readFastq
 * exactly (strict: first malformed record is a line-numbered fatal;
 * lenient: skip + warn + count; a file with no records at all is
 * fatal at EOF).
 */
class FastqStreamReader
{
  public:
    /** Open @p path; fatal() when it cannot be opened. */
    explicit FastqStreamReader(const std::string &path,
                               const core::ParseOptions &options = {});

    /**
     * Replace @p out with the next batch of at most @p max_records
     * records. @return false when the input is exhausted (out is
     * empty then).
     */
    bool nextBatch(std::vector<Sequence> &out, size_t max_records);

    /** Cumulative counts across all batches so far. */
    const core::ParseStats &stats() const { return stats_; }

    const std::string &path() const { return label_; }

  private:
    std::ifstream file_;
    std::string label_;
    core::ParseOptions options_;
    core::ParseStats stats_;
    size_t lineNo_ = 0;
    bool exhausted_ = false;
};

/** Write @p sequences as FASTQ with constant quality @p quality. */
void writeFastq(std::ostream &output, const std::vector<Sequence> &sequences,
                char quality = 'I');

/** Write @p sequences to the file at @p path (checked write). */
void writeFastqFile(const std::string &path,
                    const std::vector<Sequence> &sequences,
                    char quality = 'I');

} // namespace pgb::seq

#endif // PGB_SEQ_FASTA_HPP
