/**
 * @file
 * FASTA and FASTQ readers/writers.
 *
 * Minimal but strict line-based parsers sufficient for the suite's
 * dataset interchange: multi-line FASTA records, four-line FASTQ
 * records, with fatal() on malformed input.
 */

#ifndef PGB_SEQ_FASTA_HPP
#define PGB_SEQ_FASTA_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "seq/sequence.hpp"

namespace pgb::seq {

/** Parse all FASTA records from @p input. */
std::vector<Sequence> readFasta(std::istream &input);

/** Parse all FASTA records from the file at @p path. */
std::vector<Sequence> readFastaFile(const std::string &path);

/** Write @p sequences as FASTA with @p width bases per line. */
void writeFasta(std::ostream &output, const std::vector<Sequence> &sequences,
                size_t width = 80);

/** Write @p sequences to the file at @p path. */
void writeFastaFile(const std::string &path,
                    const std::vector<Sequence> &sequences,
                    size_t width = 80);

/** Parse all FASTQ records (qualities are validated then discarded). */
std::vector<Sequence> readFastq(std::istream &input);

/** Write @p sequences as FASTQ with constant quality @p quality. */
void writeFastq(std::ostream &output, const std::vector<Sequence> &sequences,
                char quality = 'I');

} // namespace pgb::seq

#endif // PGB_SEQ_FASTA_HPP
