#include "seq/sequence.hpp"

#include <cstddef>

namespace pgb::seq {

Sequence::Sequence(std::string name, const std::string &bases)
    : name_(std::move(name)), codes_(encodeString(bases))
{
}

void
Sequence::append(const Sequence &other)
{
    codes_.insert(codes_.end(), other.codes_.begin(), other.codes_.end());
}

Sequence
Sequence::slice(size_t start, size_t length) const
{
    const size_t end = std::min(start + length, codes_.size());
    Sequence out;
    if (start < end) {
        out.codes_.assign(codes_.begin() + static_cast<ptrdiff_t>(start),
                          codes_.begin() + static_cast<ptrdiff_t>(end));
    }
    return out;
}

Sequence
Sequence::reverseComplement() const
{
    Sequence out;
    out.codes_.reserve(codes_.size());
    for (auto it = codes_.rbegin(); it != codes_.rend(); ++it)
        out.codes_.push_back(complementBase(*it));
    return out;
}

std::string
Sequence::toString() const
{
    return decodeString(codes_);
}

std::vector<uint8_t>
encodeString(const std::string &bases)
{
    std::vector<uint8_t> codes;
    codes.reserve(bases.size());
    for (char c : bases)
        codes.push_back(encodeBase(c));
    return codes;
}

std::string
decodeString(const std::vector<uint8_t> &codes)
{
    std::string out;
    out.reserve(codes.size());
    for (uint8_t code : codes)
        out.push_back(decodeBase(code));
    return out;
}

} // namespace pgb::seq
