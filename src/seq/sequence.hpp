/**
 * @file
 * Named DNA sequence value type.
 *
 * Sequences store 1-byte base codes (see alphabet.hpp) rather than
 * ASCII so alignment kernels can index scoring tables without
 * re-encoding in inner loops.
 */

#ifndef PGB_SEQ_SEQUENCE_HPP
#define PGB_SEQ_SEQUENCE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "seq/alphabet.hpp"

namespace pgb::seq {

/** A named DNA sequence of encoded bases. */
class Sequence
{
  public:
    Sequence() = default;

    /** Construct from a name and an ASCII base string. */
    Sequence(std::string name, const std::string &bases);

    /** Construct unnamed from encoded codes. */
    explicit Sequence(std::vector<uint8_t> codes)
        : codes_(std::move(codes))
    {
    }

    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    size_t size() const { return codes_.size(); }
    bool empty() const { return codes_.empty(); }

    /** Base code at position @p index. */
    uint8_t at(size_t index) const { return codes_[index]; }
    uint8_t operator[](size_t index) const { return codes_[index]; }

    const std::vector<uint8_t> &codes() const { return codes_; }
    std::vector<uint8_t> &codes() { return codes_; }

    /** Append one base code. */
    void push(uint8_t code) { codes_.push_back(code); }

    /** Append all bases of @p other. */
    void append(const Sequence &other);

    /** Subsequence [start, start+length) as a new unnamed Sequence. */
    Sequence slice(size_t start, size_t length) const;

    /** Reverse complement as a new unnamed Sequence. */
    Sequence reverseComplement() const;

    /** ASCII rendering. */
    std::string toString() const;

    bool
    operator==(const Sequence &other) const
    {
        return codes_ == other.codes_;
    }

  private:
    std::string name_;
    std::vector<uint8_t> codes_;
};

/** Encode an ASCII string into base codes. */
std::vector<uint8_t> encodeString(const std::string &bases);

/** Decode base codes into an ASCII string. */
std::string decodeString(const std::vector<uint8_t> &codes);

} // namespace pgb::seq

#endif // PGB_SEQ_SEQUENCE_HPP
