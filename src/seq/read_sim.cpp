#include "seq/read_sim.hpp"

#include <algorithm>
#include <string>

#include "core/logging.hpp"

namespace pgb::seq {

ReadProfile
ReadProfile::shortRead()
{
    ReadProfile profile;
    profile.readLength = 150;
    profile.lengthJitter = 0.0;
    profile.substitutionRate = 0.004;
    profile.insertionRate = 0.0005;
    profile.deletionRate = 0.0005;
    return profile;
}

ReadProfile
ReadProfile::longRead()
{
    ReadProfile profile;
    profile.readLength = 15000;
    profile.lengthJitter = 0.3;
    profile.substitutionRate = 0.006;
    profile.insertionRate = 0.002;
    profile.deletionRate = 0.002;
    return profile;
}

SimulatedRead
ReadSimulator::sample(const Sequence &donor)
{
    // Choose the target length, clamped to the donor.
    size_t length = profile_.readLength;
    if (profile_.lengthJitter > 0.0) {
        const auto jitter = static_cast<double>(profile_.readLength) *
                            profile_.lengthJitter;
        const double delta = (rng_.uniform() * 2.0 - 1.0) * jitter;
        const auto target = static_cast<int64_t>(
            static_cast<double>(profile_.readLength) + delta);
        length = target < 50 ? 50 : static_cast<size_t>(target);
    }
    if (length > donor.size())
        length = donor.size();
    if (length == 0)
        core::fatal("ReadSimulator: donor sequence is empty");

    const size_t start = donor.size() == length
        ? 0 : rng_.below(donor.size() - length + 1);

    SimulatedRead result;
    result.donorStart = start;
    result.donorSpan = length;
    result.reverse = profile_.reverseStrand && rng_.chance(0.5);

    // Copy with errors applied against the forward donor orientation.
    std::vector<uint8_t> bases;
    bases.reserve(length + 16);
    for (size_t i = 0; i < length; ++i) {
        const uint8_t donor_base = donor[start + i];
        if (rng_.chance(profile_.deletionRate))
            continue; // skip the donor base
        if (rng_.chance(profile_.insertionRate))
            bases.push_back(static_cast<uint8_t>(rng_.below(kNumBases)));
        if (rng_.chance(profile_.substitutionRate)) {
            // Substitute with one of the three other bases.
            const auto shift = static_cast<uint8_t>(1 + rng_.below(3));
            bases.push_back(static_cast<uint8_t>(
                (donor_base + shift) % kNumBases));
        } else {
            bases.push_back(donor_base);
        }
    }

    Sequence read(std::move(bases));
    if (result.reverse)
        read = read.reverseComplement();
    result.read = std::move(read);
    return result;
}

std::vector<SimulatedRead>
ReadSimulator::sampleMany(const Sequence &donor, size_t count)
{
    std::vector<SimulatedRead> reads;
    reads.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        reads.push_back(sample(donor));
        reads.back().read.setName("read_" + std::to_string(i));
    }
    return reads;
}

} // namespace pgb::seq
