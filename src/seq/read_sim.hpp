/**
 * @file
 * Sequencing read simulator.
 *
 * Substitutes for the HG002 Illumina HiSeq and PacBio HiFi datasets
 * used in the paper (Table 2): reads are sampled uniformly from a donor
 * sequence (typically one haplotype of the synthetic pangenome) and
 * corrupted with a configurable substitution/insertion/deletion error
 * model. Two presets reproduce the paper's regimes: 150 bp short reads
 * and 15 kb HiFi-like long reads.
 */

#ifndef PGB_SEQ_READ_SIM_HPP
#define PGB_SEQ_READ_SIM_HPP

#include <cstdint>
#include <vector>

#include "core/rng.hpp"
#include "seq/sequence.hpp"

namespace pgb::seq {

/** Error and length model for one sequencing technology. */
struct ReadProfile
{
    size_t readLength = 150;       ///< mean read length (bases)
    double lengthJitter = 0.0;     ///< +- fraction of readLength (uniform)
    double substitutionRate = 0.002;
    double insertionRate = 0.0005;
    double deletionRate = 0.0005;
    bool reverseStrand = true;     ///< sample both strands at random

    /** Illumina-like 150 bp short reads (paper Table 2 rows 1-2). */
    static ReadProfile shortRead();

    /** PacBio HiFi-like 15 kb long reads (paper Table 2 rows 3-4). */
    static ReadProfile longRead();
};

/** One simulated read with its ground-truth origin. */
struct SimulatedRead
{
    Sequence read;
    size_t donorStart = 0;  ///< origin offset on the donor sequence
    size_t donorSpan = 0;   ///< bases of donor consumed
    bool reverse = false;   ///< true if reverse-complemented
};

/** Samples error-corrupted reads from a donor sequence. */
class ReadSimulator
{
  public:
    ReadSimulator(ReadProfile profile, uint64_t seed)
        : profile_(profile), rng_(seed)
    {
    }

    /** Draw one read from @p donor. Donor must be >= the read length. */
    SimulatedRead sample(const Sequence &donor);

    /** Draw @p count reads from @p donor, named read_0..read_{n-1}. */
    std::vector<SimulatedRead> sampleMany(const Sequence &donor,
                                          size_t count);

  private:
    ReadProfile profile_;
    core::Rng rng_;
};

} // namespace pgb::seq

#endif // PGB_SEQ_READ_SIM_HPP
