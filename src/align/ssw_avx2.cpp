/**
 * @file
 * The -mavx2 translation unit: 16-lane instantiations of the striped
 * and batched Smith-Waterman kernels, reached only through the runtime
 * dispatch (align/dispatch.hpp). Keeping AVX2 code in one TU lets the
 * rest of the build target the baseline ISA while this file compiles
 * with -mavx2; the dispatcher never calls these symbols unless cpuid
 * reports AVX2.
 */

#include "align/gssw.hpp"
#include "align/simd_table.hpp"
#include "align/ssw.hpp"
#include "align/ssw_batch.hpp"

#if !defined(__AVX2__)
#error "align/ssw_avx2.cpp must be compiled with -mavx2"
#endif

namespace pgb::align::detail {

LocalHit
sswAlignAvx2(const StripedProfile &profile,
             std::span<const uint8_t> reference, const ScoreParams &params)
{
    core::NullProbe probe;
    return sswAlignT<VAvx2>(profile, reference, params, probe);
}

GsswResult
gsswAlignAvx2(const graph::LocalGraph &graph,
              std::span<const uint8_t> query, const ScoreParams &params,
              const GsswOptions &options)
{
    core::NullProbe probe;
    return gsswAlignT<VAvx2>(graph, query, params, options, probe);
}

void
sswAlignBatchPackAvx2(std::span<const BatchJob> jobs,
                      std::span<const uint32_t> lane_jobs,
                      const ScoreParams &params,
                      std::span<LocalHit> results)
{
    sswAlignBatchPackT<VAvx2>(jobs, lane_jobs, params, results);
}

SimdOpsTable
simdOpsTableAvx2()
{
    return makeSimdOpsTable<VAvx2>("avx2");
}

} // namespace pgb::align::detail
