/**
 * @file
 * Function-pointer view of the SIMD backends for lane-exact property
 * tests.
 *
 * VAvx2 only exists inside the -mavx2 translation unit, so the tests
 * cannot name it. Each backend instead exports a SimdOpsTable whose
 * entries round-trip one op through ordinary int16 arrays; the tests
 * compare every backend against the VScalar ground truth of the same
 * width, op by op, lane by lane.
 */

#ifndef PGB_ALIGN_SIMD_TABLE_HPP
#define PGB_ALIGN_SIMD_TABLE_HPP

#include <cstdint>
#include <vector>

namespace pgb::align {

/** One backend's ops over lane arrays of length `width`. */
struct SimdOpsTable
{
    const char *name = "";
    int width = 0;
    void (*adds)(const int16_t *a, const int16_t *b, int16_t *out);
    void (*subs)(const int16_t *a, const int16_t *b, int16_t *out);
    void (*vmax)(const int16_t *a, const int16_t *b, int16_t *out);
    void (*cmpEq)(const int16_t *a, const int16_t *b, int16_t *out);
    void (*cmpGt)(const int16_t *a, const int16_t *b, int16_t *out);
    void (*vand)(const int16_t *a, const int16_t *b, int16_t *out);
    void (*blend)(const int16_t *mask, const int16_t *a,
                  const int16_t *b, int16_t *out);
    void (*shiftLanesUp)(const int16_t *a, int16_t fill, int16_t *out);
    bool (*anyGt)(const int16_t *a, const int16_t *b);
    int16_t (*lane)(const int16_t *a, int i);
    int16_t (*horizontalMax)(const int16_t *a);
};

namespace detail {

/** Build a table for @p Vec (captureless lambdas decay to pointers). */
template <typename Vec>
SimdOpsTable
makeSimdOpsTable(const char *name)
{
    using i16 = int16_t;
    SimdOpsTable t;
    t.name = name;
    t.width = Vec::kWidth;
    t.adds = [](const i16 *a, const i16 *b, i16 *out) {
        adds(Vec::load(a), Vec::load(b)).store(out);
    };
    t.subs = [](const i16 *a, const i16 *b, i16 *out) {
        subs(Vec::load(a), Vec::load(b)).store(out);
    };
    t.vmax = [](const i16 *a, const i16 *b, i16 *out) {
        vmax(Vec::load(a), Vec::load(b)).store(out);
    };
    t.cmpEq = [](const i16 *a, const i16 *b, i16 *out) {
        cmpEq(Vec::load(a), Vec::load(b)).store(out);
    };
    t.cmpGt = [](const i16 *a, const i16 *b, i16 *out) {
        cmpGt(Vec::load(a), Vec::load(b)).store(out);
    };
    t.vand = [](const i16 *a, const i16 *b, i16 *out) {
        vand(Vec::load(a), Vec::load(b)).store(out);
    };
    t.blend = [](const i16 *mask, const i16 *a, const i16 *b, i16 *out) {
        blend(Vec::load(mask), Vec::load(a), Vec::load(b)).store(out);
    };
    t.shiftLanesUp = [](const i16 *a, i16 fill, i16 *out) {
        Vec::load(a).shiftLanesUp(fill).store(out);
    };
    t.anyGt = [](const i16 *a, const i16 *b) {
        return anyGt(Vec::load(a), Vec::load(b));
    };
    t.lane = [](const i16 *a, int i) { return Vec::load(a).lane(i); };
    t.horizontalMax = [](const i16 *a) {
        return Vec::load(a).horizontalMax();
    };
    return t;
}

#if defined(PGB_HAVE_AVX2_BUILD)
/** AVX2 table, built inside the -mavx2 TU (align/ssw_avx2.cpp). */
SimdOpsTable simdOpsTableAvx2();
#endif

} // namespace detail

/**
 * Every backend this build and CPU can execute: VScalar<8>,
 * VScalar<16>, VSse2 (when compiled in), VAvx2 (when compiled in and
 * the CPU supports it). Independent of PGB_SIMD.
 */
std::vector<SimdOpsTable> simdOpsTables();

} // namespace pgb::align

#endif // PGB_ALIGN_SIMD_TABLE_HPP
