#include "align/ssw.hpp"

#include "core/logging.hpp"

namespace pgb::align {

StripedProfile::StripedProfile(std::span<const uint8_t> query,
                               const ScoreParams &params)
    : queryLength_(query.size()),
      segLen_(static_cast<int>((query.size() + kLanes - 1) / kLanes))
{
    if (query.empty())
        core::fatal("StripedProfile: empty query");
    const size_t row_size = static_cast<size_t>(segLen_) * kLanes;
    // kNumBases concrete rows plus one row for N (always mismatch).
    data_.assign(row_size * (seq::kNumBases + 1), 0);
    for (uint8_t base = 0; base <= seq::kNumBases; ++base) {
        int16_t *row = data_.data() + static_cast<size_t>(base) * row_size;
        for (int t = 0; t < segLen_; ++t) {
            for (int lane = 0; lane < kLanes; ++lane) {
                const size_t i = static_cast<size_t>(t) +
                    static_cast<size_t>(lane) * segLen_;
                int16_t score;
                if (i >= queryLength_) {
                    // Padding rows must never contribute to the max.
                    score = kNegInf16;
                } else if (base < seq::kNumBases && query[i] == base) {
                    score = params.match;
                } else {
                    score = static_cast<int16_t>(-params.mismatch);
                }
                row[t * kLanes + lane] = score;
            }
        }
    }
}

LocalHit
sswAlign(std::span<const uint8_t> query, std::span<const uint8_t> reference,
         const ScoreParams &params)
{
    StripedProfile profile(query, params);
    core::NullProbe probe;
    return sswAlign(profile, reference, params, probe);
}

} // namespace pgb::align
