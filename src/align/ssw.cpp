#include "align/ssw.hpp"

#include <atomic>

#include "core/logging.hpp"
#include "core/scratch.hpp"
#include "obs/metrics.hpp"

namespace pgb::align {

namespace {

obs::Counter gScoreSaturated("align.score_saturated");
std::atomic<bool> gSaturationWarned{false};

} // namespace

namespace detail {

void
noteScoreSaturation()
{
    gScoreSaturated.add(1);
    if (!gSaturationWarned.exchange(true)) {
        core::warn("alignment score saturated at int16 max (",
                   kScoreSaturated, "); the reported score is clamped "
                   "(counted in align.score_saturated)");
    }
}

} // namespace detail

void
StripedProfile::reset(std::span<const uint8_t> query,
                      const ScoreParams &params, int lanes)
{
    if (query.empty())
        core::fatal("StripedProfile: empty query");
    if (lanes != kLanes && lanes != kLanesAvx2)
        core::fatal("StripedProfile: unsupported lane count ", lanes);
    queryLength_ = query.size();
    lanes_ = lanes;
    segLen_ = static_cast<int>((query.size() + lanes - 1) /
                               static_cast<size_t>(lanes));
    const size_t row_size = static_cast<size_t>(segLen_) * lanes_;
    // kNumBases concrete rows plus one row for N (always mismatch).
    data_.assign(row_size * (seq::kNumBases + 1), 0);
    for (uint8_t base = 0; base <= seq::kNumBases; ++base) {
        int16_t *row = data_.data() + static_cast<size_t>(base) * row_size;
        for (int t = 0; t < segLen_; ++t) {
            for (int lane = 0; lane < lanes_; ++lane) {
                const size_t i = static_cast<size_t>(t) +
                    static_cast<size_t>(lane) * segLen_;
                int16_t score;
                if (i >= queryLength_) {
                    // Padding rows must never contribute to the max.
                    score = kNegInf16;
                } else if (base < seq::kNumBases && query[i] == base) {
                    score = params.match;
                } else {
                    score = static_cast<int16_t>(-params.mismatch);
                }
                row[t * lanes_ + lane] = score;
            }
        }
    }
}

namespace {

/** Per-thread profile reused by the convenience entry point. */
struct SswScratch
{
    StripedProfile profile;
};

} // namespace

LocalHit
sswAlign(std::span<const uint8_t> query, std::span<const uint8_t> reference,
         const ScoreParams &params)
{
    SswScratch &ws = core::threadScratch<SswScratch>();
    ws.profile.reset(query, params, simdDispatchLanes());
    core::NullProbe probe;
    return sswAlign(ws.profile, reference, params, probe);
}

} // namespace pgb::align
