/**
 * @file
 * WFA: gap-affine wavefront alignment (Marco-Sola et al.), the CPU
 * baseline for the TSU GPU kernel (paper Figure 9) and the pairwise
 * aligner inside the wfmash stand-in used by the PGGB pipeline.
 *
 * Wavefronts store, per score s and diagonal k = h - v, the furthest
 * text offset h reached. The algorithm alternates Extend (push every
 * diagonal along exact matches) and Next (spend one score unit on a
 * mismatch / gap open / gap extend), paper Figure 4d.
 */

#ifndef PGB_ALIGN_WFA_HPP
#define PGB_ALIGN_WFA_HPP

#include <algorithm>
#include <climits>
#include <cstdint>
#include <span>
#include <vector>

#include "align/score.hpp"
#include "core/probe.hpp"

namespace pgb::align {

/** Gap-affine penalties for WFA (match = 0; penalties positive). */
struct WfaPenalties
{
    int32_t mismatch = 4;
    int32_t gapOpen = 6;
    int32_t gapExtend = 2;
};

/** WFA result: alignment score (total penalty) plus work accounting. */
struct WfaResult
{
    int32_t score = -1;        ///< total penalty; -1 if maxScore exceeded
    bool reached = false;
    uint64_t extendSteps = 0;  ///< match-extension character steps
    uint64_t cellsComputed = 0;///< wavefront cells updated in Next
};

namespace detail {

/** Sentinel for unreachable wavefront cells. */
constexpr int32_t kWfaNone = INT32_MIN / 2;

/** One score level: M/I/D furthest offsets over diagonals [lo, hi]. */
struct WavefrontLevel
{
    int32_t lo = 0;
    int32_t hi = -1; ///< empty when hi < lo
    std::vector<int32_t> m, i, d;

    void
    resize(int32_t new_lo, int32_t new_hi)
    {
        lo = new_lo;
        hi = new_hi;
        const auto span = static_cast<size_t>(hi - lo + 1);
        m.assign(span, kWfaNone);
        i.assign(span, kWfaNone);
        d.assign(span, kWfaNone);
    }

    bool contains(int32_t k) const { return k >= lo && k <= hi; }

    int32_t
    getM(int32_t k) const
    {
        return contains(k) ? m[static_cast<size_t>(k - lo)] : kWfaNone;
    }
    int32_t
    getI(int32_t k) const
    {
        return contains(k) ? i[static_cast<size_t>(k - lo)] : kWfaNone;
    }
    int32_t
    getD(int32_t k) const
    {
        return contains(k) ? d[static_cast<size_t>(k - lo)] : kWfaNone;
    }
};

} // namespace detail

/**
 * Global gap-affine alignment of @p pattern against @p text.
 *
 * @param max_score give up (reached = false) beyond this penalty
 */
template <typename Probe = core::NullProbe>
WfaResult
wfaAlign(std::span<const uint8_t> pattern, std::span<const uint8_t> text,
         const WfaPenalties &penalties, Probe &probe,
         int32_t max_score = 1 << 28)
{
    using detail::kWfaNone;
    using detail::WavefrontLevel;

    const auto m = static_cast<int32_t>(pattern.size());
    const auto n = static_cast<int32_t>(text.size());
    const int32_t k_final = n - m;
    const int32_t x = penalties.mismatch;
    const int32_t oe = penalties.gapOpen + penalties.gapExtend;
    const int32_t e = penalties.gapExtend;

    WfaResult result;
    std::vector<WavefrontLevel> wf(1);
    wf[0].resize(0, 0);
    wf[0].m[0] = 0;

    // A cell (k, h) is on the board when 0 <= h <= n and 0 <= h-k <= m.
    auto valid = [&](int32_t k, int32_t h) {
        return h >= 0 && h <= n && h - k >= 0 && h - k <= m;
    };

    for (int32_t s = 0; s <= max_score; ++s) {
        WavefrontLevel &cur = wf[static_cast<size_t>(s)];
        // ---- Extend: push every M diagonal along exact matches.
        for (int32_t k = cur.lo; k <= cur.hi; ++k) {
            int32_t h = cur.m[static_cast<size_t>(k - cur.lo)];
            probe.load(&cur.m[static_cast<size_t>(k - cur.lo)], 4);
            if (h == kWfaNone)
                continue;
            int32_t v = h - k;
            while (v < m && h < n && pattern[static_cast<size_t>(v)] ==
                                     text[static_cast<size_t>(h)]) {
                probe.load(pattern.data() + v, 1);
                probe.load(text.data() + h, 1);
                probe.branch(/* site */ 20, true);
                ++v;
                ++h;
                ++result.extendSteps;
            }
            probe.branch(/* site */ 20, false);
            cur.m[static_cast<size_t>(k - cur.lo)] = h;
            probe.store(&cur.m[static_cast<size_t>(k - cur.lo)], 4);
        }
        // ---- Termination check.
        if (cur.getM(k_final) >= n) {
            result.score = s;
            result.reached = true;
            return result;
        }
        if (s == max_score)
            break;

        // ---- Next: compute score level s+1. The new level is pushed
        // first: emplace_back may reallocate and would invalidate any
        // previously taken source references.
        wf.emplace_back();
        const int32_t s_next = s + 1;
        const WavefrontLevel empty;
        auto level = [&](int32_t score) -> const WavefrontLevel & {
            if (score < 0 || score > s)
                return empty;
            return wf[static_cast<size_t>(score)];
        };
        const WavefrontLevel &src_x = level(s_next - x);
        const WavefrontLevel &src_oe = level(s_next - oe);
        const WavefrontLevel &src_e = level(s_next - e);

        int32_t lo = INT32_MAX, hi = INT32_MIN;
        for (const WavefrontLevel *src : {&src_x, &src_oe, &src_e}) {
            if (src->hi >= src->lo) {
                lo = std::min(lo, src->lo - 1);
                hi = std::max(hi, src->hi + 1);
            }
        }
        WavefrontLevel &next = wf.back();
        if (lo > hi)
            continue; // dead level; later levels may still fire
        next.resize(lo, hi);
        for (int32_t k = lo; k <= hi; ++k) {
            const size_t idx = static_cast<size_t>(k - lo);
            // Insertion (gap in pattern): consume one text char.
            int32_t ins = std::max(src_oe.getM(k - 1), src_e.getI(k - 1));
            ins = ins == kWfaNone ? kWfaNone : ins + 1;
            if (ins != kWfaNone && !valid(k, ins))
                ins = kWfaNone;
            // Deletion (gap in text): consume one pattern char.
            int32_t del = std::max(src_oe.getM(k + 1), src_e.getD(k + 1));
            if (del != kWfaNone && !valid(k, del))
                del = kWfaNone;
            // Mismatch: consume one of each.
            int32_t mis = src_x.getM(k);
            mis = mis == kWfaNone ? kWfaNone : mis + 1;
            if (mis != kWfaNone && !valid(k, mis))
                mis = kWfaNone;
            next.i[idx] = ins;
            next.d[idx] = del;
            next.m[idx] = std::max({mis, ins, del});
            probe.op(core::OpKind::kScalar, 8);
            probe.store(&next.m[idx], 12);
            ++result.cellsComputed;
        }
    }
    return result; // not reached within max_score
}

/** Convenience overload without instrumentation. */
WfaResult wfaAlign(std::span<const uint8_t> pattern,
                   std::span<const uint8_t> text,
                   const WfaPenalties &penalties,
                   int32_t max_score = 1 << 28);

/**
 * Reference O(nm) gap-affine global alignment (Needleman-Wunsch with
 * affine gaps, penalty-minimizing). Used to validate wfaAlign.
 */
int32_t globalAffineScalar(std::span<const uint8_t> pattern,
                           std::span<const uint8_t> text,
                           const WfaPenalties &penalties);

} // namespace pgb::align

#endif // PGB_ALIGN_WFA_HPP
