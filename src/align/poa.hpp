/**
 * @file
 * POA: partial order alignment (abPOA stand-in).
 *
 * Used by the graph-building pipelines: smoothxg's polishing stage is
 * dominated by POA (paper §2.2, ~80% of smoothing time) and Cactus's
 * graph induction is constrained by abPOA. This implementation aligns
 * sequences to a growing base-level DAG (semi-global, linear gaps,
 * optional band) and threads each sequence into the graph, then
 * extracts a weighted consensus path.
 *
 * POA appears in the paper only through pipeline stage timings
 * (Figure 3), not in the kernel characterization, so it is not
 * probe-instrumented.
 */

#ifndef PGB_ALIGN_POA_HPP
#define PGB_ALIGN_POA_HPP

#include <cstdint>
#include <span>
#include <vector>

namespace pgb::align {

/** POA scoring (linear gaps). */
struct PoaParams
{
    int32_t match = 2;
    int32_t mismatch = 4; ///< penalty (subtracted)
    int32_t gap = 4;      ///< penalty per gap base (subtracted)
    /**
     * Band half-width around the best-scoring row per topological
     * rank; 0 disables banding (exact DP). Mirrors abPOA's adaptive
     * banding performance lever.
     */
    int32_t band = 0;
};

/** Base-level partial order graph accumulating aligned sequences. */
class PoaGraph
{
  public:
    explicit PoaGraph(PoaParams params = {}) : params_(params) {}

    /** Number of base nodes. */
    size_t nodeCount() const { return bases_.size(); }

    /** Number of sequences threaded into the graph. */
    size_t sequenceCount() const { return sequenceCount_; }

    /**
     * Align @p bases to the graph and thread it in (first call just
     * seeds the backbone).
     * @return the alignment score (0 for the seeding call).
     */
    int32_t addSequence(std::span<const uint8_t> bases);

    /** Heaviest-path consensus sequence. */
    std::vector<uint8_t> consensus() const;

    /** Total DP cells computed across all addSequence calls. */
    uint64_t cellsComputed() const { return cellsComputed_; }

  private:
    struct Edge
    {
        uint32_t to;
        uint32_t weight;
    };

    uint32_t addNode(uint8_t base);
    void addEdgeWeighted(uint32_t from, uint32_t to);
    std::vector<uint32_t> topoOrder() const;

    PoaParams params_;
    std::vector<uint8_t> bases_;
    std::vector<uint32_t> weights_;           ///< per-node support count
    std::vector<std::vector<Edge>> out_;      ///< weighted adjacency
    std::vector<std::vector<uint32_t>> in_;   ///< predecessor lists
    size_t sequenceCount_ = 0;
    uint64_t cellsComputed_ = 0;
};

} // namespace pgb::align

#endif // PGB_ALIGN_POA_HPP
