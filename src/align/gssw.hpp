/**
 * @file
 * GSSW: Graph SIMD Smith-Waterman (paper §3, extracted from vg map).
 *
 * Aligns a read fragment to an acyclic local subgraph. Node bodies are
 * computed with the striped SIMD column engine (align/ssw.hpp); the
 * first column of each node is seeded from an element-wise max over its
 * parents' final columns — the "node initialization" step that makes
 * the kernel alternate between dense SIMD regions and indirect graph
 * accesses (paper Figure 4a).
 *
 * When GsswOptions::keepMatrices is set (the default, matching the
 * gssw library which retains all matrices for traceback), every column
 * is also retained in a per-node DP matrix. On instrumented runs that
 * matrix is row-major, written through the strided "swizzle" stores
 * that are the memory bottleneck the paper's §6.1 case study
 * attributes GSSW's extra memory stalls to. Timed runs keep the
 * kernel's native striped columns instead, streamed out with
 * non-temporal stores — the swizzle disappears from the hot loop and
 * moves into gsswTraceback's index math (see GsswMatrixLayout).
 * Switching keepMatrices off implements the further optimization §6.1
 * proposes. The matrices skip their zero-fill (every cell is written
 * back), and per-alignment temporaries — the striped profile and the
 * per-node final states — live in a thread-local workspace, so
 * repeated alignments do not touch malloc.
 *
 * Like sswAlign, the uninstrumented (NullProbe) entry dispatches to
 * the 16-lane AVX2 kernel when the runtime level allows; instrumented
 * probes keep the 8-lane layout the paper characterizes. Results are
 * bit-identical across levels.
 */

#ifndef PGB_ALIGN_GSSW_HPP
#define PGB_ALIGN_GSSW_HPP

#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "align/dispatch.hpp"
#include "align/score.hpp"
#include "align/ssw.hpp"
#include "core/logging.hpp"
#include "core/probe.hpp"
#include "core/scratch.hpp"
#include "graph/local_graph.hpp"

namespace pgb::align {

/** GSSW configuration. */
struct GsswOptions
{
    /** Retain full per-node DP matrices (traceback realism, §6.1). */
    bool keepMatrices = true;
};

/**
 * H matrix of one node. Default-initialized on resize: the writeback
 * stores every cell, so zero-filling was pure cost.
 */
using GsswMatrix =
    std::vector<int16_t, core::DefaultInitAlloc<int16_t>>;

/** Memory layout of the retained per-node DP matrices. */
enum class GsswMatrixLayout : uint8_t
{
    /**
     * H(i, j) at i * nodeLength + j, gssw's own layout, kept on
     * instrumented runs: writing it un-stripes every column through
     * the strided "swizzle" stores the paper's §6.1 characterizes.
     */
    kRowMajor,
    /**
     * The SIMD kernel's native striped layout, kept on timed runs:
     * column j occupies segLen*lanes contiguous int16 starting at
     * j * segLen * lanes, with H(i, j) in vector (i % segLen), lane
     * (i / segLen) — so the writeback is a straight streaming copy of
     * the live column, and the swizzle cost moves to the (rare)
     * traceback index math. Columns include the padded rows i >= m.
     */
    kStriped,
};

/** GSSW result: best local hit plus work/footprint accounting. */
struct GsswResult
{
    GraphLocalHit best;
    uint64_t cellsComputed = 0; ///< DP cells evaluated (padded rows excl.)
    /**
     * H matrix per node (empty when keepMatrices is off), in
     * `matrixLayout` order. gsswTraceback handles both layouts.
     */
    std::vector<GsswMatrix> matrices;
    /** Layout of `matrices` (see GsswMatrixLayout). */
    GsswMatrixLayout matrixLayout = GsswMatrixLayout::kRowMajor;
    int matrixSegLen = 0; ///< striped-layout segment length
    int matrixLanes = 0;  ///< striped-layout lane count
};

namespace detail {

/** Thread-local buffers reused across gsswAlign calls. */
struct GsswWorkspace
{
    StripedProfile profile;
    /** Final (H, E) striped state per node, consumed by children. */
    std::vector<StripedState> finalStates;
    /** Striped H of the best column so far (query-end recovery). */
    std::vector<int16_t> bestH;
};

/** The calling thread's GSSW workspace. */
GsswWorkspace &gsswWorkspace();

/** Graph striped alignment with an explicit vector backend. */
template <typename Vec, typename Probe>
GsswResult
gsswAlignT(const graph::LocalGraph &graph, std::span<const uint8_t> query,
           const ScoreParams &params, const GsswOptions &options,
           Probe &probe)
{
    if (!graph.isDag())
        core::fatal("gsswAlign: graph must be acyclic");
    if (query.empty())
        core::fatal("gsswAlign: empty query");

    GsswWorkspace &ws = gsswWorkspace();
    ws.profile.reset(query, params, Vec::kWidth);
    const StripedProfile &profile = ws.profile;
    const size_t m = profile.queryLength();
    const auto n_nodes = static_cast<uint32_t>(graph.nodeCount());

    GsswResult result;
    result.matrixLayout = Probe::enabled ? GsswMatrixLayout::kRowMajor
                                         : GsswMatrixLayout::kStriped;
    result.matrixSegLen = profile.segLen();
    result.matrixLanes = profile.lanes();
    if (options.keepMatrices)
        result.matrices.resize(n_nodes);

    // Final (H, E) striped state of each processed node, indexed by
    // node id. Reused allocations from the workspace.
    if (ws.finalStates.size() < n_nodes)
        ws.finalStates.resize(n_nodes);
    std::vector<StripedState> &final_states = ws.finalStates;

    for (uint32_t node : graph.topoOrder()) {
        StripedState &state = final_states[node];
        const auto preds = graph.predecessors(node);
        if (preds.empty()) {
            state.reset(profile.segLen(), profile.lanes());
        } else {
            // Node initialization: element-wise max over parents' final
            // columns. These are the indirect graph accesses.
            probe.load(&preds[0], 4);
            state.assignFrom(final_states[preds[0]]);
            probe.op(core::OpKind::kMemory,
                     static_cast<uint64_t>(state.h.size() / kLanes));
            for (size_t p = 1; p < preds.size(); ++p) {
                probe.load(&preds[p], 4);
                state.mergeMax(final_states[preds[p]]);
                probe.op(core::OpKind::kVector,
                         static_cast<uint64_t>(state.h.size() / kLanes));
            }
        }

        const auto &bases = graph.nodeSeq(node);
        const size_t len = bases.size();

        // Instrumented runs keep gssw's row-major matrices — the
        // strided swizzle stores the paper's §6.1 blames — written
        // in-kernel through the probe. Timed runs keep the kernel's
        // native striped columns instead, copied out with straight
        // vector stores (see GsswMatrixLayout::kStriped).
        constexpr bool striped_keep = !Probe::enabled;
        const size_t sw =
            static_cast<size_t>(profile.segLen()) * profile.lanes();
        int16_t *matrix = nullptr;
        if (options.keepMatrices) {
            result.matrices[node].resize((striped_keep ? sw : m) * len);
            matrix = result.matrices[node].data();
        }

        for (size_t j = 0; j < len; ++j) {
            probe.load(bases.data() + j, 1);
            int16_t *column_out = nullptr;
            if (matrix != nullptr && !striped_keep)
                column_out = matrix + j;
            const int16_t col_max = stripedColumnT<Vec>(
                profile, params, state, bases[j], probe, column_out,
                len);
            if (striped_keep && matrix != nullptr) {
                storeStripedColumn<Vec>(state.h.data(),
                                        profile.segLen(),
                                        matrix + j * sw);
            }
            result.cellsComputed += m;
            probe.branch(/* site */ 10, col_max > result.best.score);
            if (col_max > result.best.score) {
                result.best.score = col_max;
                result.best.node = node;
                result.best.nodeOffset = static_cast<int32_t>(j);
                // The winning column is needed once at the end for
                // query-end recovery; when the striped matrices are
                // kept it is already retained there, otherwise
                // snapshot it (one vector copy per improvement).
                if (!(striped_keep && options.keepMatrices))
                    ws.bestH.assign(state.h.begin(), state.h.end());
            }
        }
    }
    if (result.best.score > 0) {
        const size_t sw =
            static_cast<size_t>(profile.segLen()) * profile.lanes();
        const int16_t *best_col =
            (!Probe::enabled && options.keepMatrices)
                ? result.matrices[result.best.node].data() +
                      static_cast<size_t>(result.best.nodeOffset) * sw
                : ws.bestH.data();
        result.best.queryEnd = stripedQueryEnd(
            profile.segLen(), profile.lanes(), m, best_col,
            static_cast<int16_t>(result.best.score));
    }
    if (result.best.score >= kScoreSaturated)
        noteScoreSaturation();
    return result;
}

#if defined(PGB_HAVE_AVX2_BUILD)
/** 16-lane kernel, compiled with -mavx2 (align/ssw_avx2.cpp). */
GsswResult gsswAlignAvx2(const graph::LocalGraph &graph,
                         std::span<const uint8_t> query,
                         const ScoreParams &params,
                         const GsswOptions &options);
#endif

} // namespace detail

/**
 * Align @p query to the DAG @p graph with local (Smith-Waterman)
 * semantics. Dispatches on the runtime SIMD level; instrumented
 * probes stay on the 8-lane layout.
 *
 * @param graph finalized acyclic LocalGraph (fatal otherwise)
 */
template <typename Probe = core::NullProbe>
GsswResult
gsswAlign(const graph::LocalGraph &graph, std::span<const uint8_t> query,
          const ScoreParams &params, const GsswOptions &options,
          Probe &probe)
{
#if defined(PGB_HAVE_AVX2_BUILD)
    if constexpr (std::is_same_v<Probe, core::NullProbe>) {
        if (activeSimdLevel() == SimdLevel::kAvx2)
            return detail::gsswAlignAvx2(graph, query, params, options);
    }
#endif
    if (activeSimdLevel() == SimdLevel::kScalar) {
        return detail::gsswAlignT<VScalar<8>>(graph, query, params,
                                              options, probe);
    }
    return detail::gsswAlignT<V8i16>(graph, query, params, options,
                                     probe);
}

/** Convenience overload without instrumentation. */
GsswResult gsswAlign(const graph::LocalGraph &graph,
                     std::span<const uint8_t> query,
                     const ScoreParams &params,
                     const GsswOptions &options = {});

/**
 * Reference implementation: textbook affine-gap local alignment over a
 * DAG, computed cell by cell without SIMD. Used by the unit tests to
 * validate gsswAlign and as the scalar ablation backend.
 */
GraphLocalHit gsswAlignScalar(const graph::LocalGraph &graph,
                              std::span<const uint8_t> query,
                              const ScoreParams &params);

/** One CIGAR run of a graph alignment. */
struct CigarEntry
{
    char op = '=';       ///< '=', 'X', 'I' (query gap... see below), 'D'
    uint32_t length = 0;
};

/**
 * A base-level graph alignment recovered by traceback:
 * '=' match, 'X' mismatch, 'I' query base consumed without a graph
 * base (insertion in the read), 'D' graph base consumed without a
 * query base (deletion from the read).
 */
struct GsswAlignment
{
    int32_t score = 0;
    int32_t queryStart = 0;     ///< first aligned query index
    int32_t queryEnd = -1;      ///< last aligned query index (incl.)
    std::vector<CigarEntry> cigar;      ///< alignment order
    std::vector<uint32_t> nodeWalk;     ///< nodes visited, in order
    std::vector<uint8_t> referenceBases;///< graph bases consumed
};

/**
 * Trace the optimal local alignment back through the DP matrices that
 * gsswAlign retained (GsswOptions::keepMatrices must have been set —
 * this is exactly why gssw keeps them, the §6.1 memory footprint).
 * fatal() if the matrices are missing.
 */
GsswAlignment gsswTraceback(const graph::LocalGraph &graph,
                            std::span<const uint8_t> query,
                            const ScoreParams &params,
                            const GsswResult &result);

} // namespace pgb::align

#endif // PGB_ALIGN_GSSW_HPP
