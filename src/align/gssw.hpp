/**
 * @file
 * GSSW: Graph SIMD Smith-Waterman (paper §3, extracted from vg map).
 *
 * Aligns a read fragment to an acyclic local subgraph. Node bodies are
 * computed with the striped SIMD column engine (align/ssw.hpp); the
 * first column of each node is seeded from an element-wise max over its
 * parents' final columns — the "node initialization" step that makes
 * the kernel alternate between dense SIMD regions and indirect graph
 * accesses (paper Figure 4a).
 *
 * When GsswOptions::keepMatrices is set (the default, matching the
 * gssw library which retains all matrices for traceback), every column
 * is also written back un-striped into a per-node row-major DP matrix.
 * These strided "swizzle" stores are the memory bottleneck the paper's
 * §6.1 case study attributes GSSW's extra memory stalls to; switching
 * keepMatrices off implements the optimization proposed there.
 */

#ifndef PGB_ALIGN_GSSW_HPP
#define PGB_ALIGN_GSSW_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "align/score.hpp"
#include "align/ssw.hpp"
#include "core/logging.hpp"
#include "core/probe.hpp"
#include "graph/local_graph.hpp"

namespace pgb::align {

/** GSSW configuration. */
struct GsswOptions
{
    /** Retain full per-node DP matrices (traceback realism, §6.1). */
    bool keepMatrices = true;
};

/** GSSW result: best local hit plus work/footprint accounting. */
struct GsswResult
{
    GraphLocalHit best;
    uint64_t cellsComputed = 0; ///< DP cells evaluated (padded rows excl.)
    /** Row-major m x nodeLength H matrix per node (empty when off). */
    std::vector<std::vector<int16_t>> matrices;
};

/**
 * Align @p query to the DAG @p graph with local (Smith-Waterman)
 * semantics.
 *
 * @param graph finalized acyclic LocalGraph (fatal otherwise)
 */
template <typename Probe = core::NullProbe>
GsswResult
gsswAlign(const graph::LocalGraph &graph, std::span<const uint8_t> query,
          const ScoreParams &params, const GsswOptions &options,
          Probe &probe)
{
    if (!graph.isDag())
        core::fatal("gsswAlign: graph must be acyclic");
    if (query.empty())
        core::fatal("gsswAlign: empty query");

    const StripedProfile profile(query, params);
    const size_t m = profile.queryLength();
    const auto n_nodes = static_cast<uint32_t>(graph.nodeCount());

    GsswResult result;
    if (options.keepMatrices)
        result.matrices.resize(n_nodes);

    // Final (H, E) striped state of each processed node, consumed by
    // its children. Indexed by node id.
    std::vector<StripedState> final_states(n_nodes);

    for (uint32_t node : graph.topoOrder()) {
        StripedState state;
        const auto preds = graph.predecessors(node);
        if (preds.empty()) {
            state.reset(profile.segLen());
        } else {
            // Node initialization: element-wise max over parents' final
            // columns. These are the indirect graph accesses.
            probe.load(&preds[0], 4);
            state = final_states[preds[0]];
            probe.op(core::OpKind::kMemory,
                     static_cast<uint64_t>(state.h.size() / kLanes));
            for (size_t p = 1; p < preds.size(); ++p) {
                probe.load(&preds[p], 4);
                state.mergeMax(final_states[preds[p]]);
                probe.op(core::OpKind::kVector,
                         static_cast<uint64_t>(state.h.size() / kLanes));
            }
        }

        const auto &bases = graph.nodeSeq(node);
        int16_t *matrix = nullptr;
        if (options.keepMatrices) {
            result.matrices[node].assign(m * bases.size(), 0);
            matrix = result.matrices[node].data();
        }

        for (size_t j = 0; j < bases.size(); ++j) {
            probe.load(bases.data() + j, 1);
            const int16_t col_max = stripedColumn(
                profile, params, state, bases[j], probe,
                matrix == nullptr ? nullptr : matrix + j, bases.size());
            result.cellsComputed += m;
            probe.branch(/* site */ 10, col_max > result.best.score);
            if (col_max > result.best.score) {
                result.best.score = col_max;
                result.best.node = node;
                result.best.nodeOffset = static_cast<int32_t>(j);
                const int seg_len = profile.segLen();
                for (int t = 0; t < seg_len; ++t) {
                    for (int lane = 0; lane < kLanes; ++lane) {
                        if (state.h[t * kLanes + lane] == col_max) {
                            const auto i = static_cast<int32_t>(
                                t + lane * seg_len);
                            if (i < static_cast<int32_t>(m)) {
                                result.best.queryEnd = i;
                                t = seg_len;
                                break;
                            }
                        }
                    }
                }
            }
        }
        final_states[node] = std::move(state);
    }
    return result;
}

/** Convenience overload without instrumentation. */
GsswResult gsswAlign(const graph::LocalGraph &graph,
                     std::span<const uint8_t> query,
                     const ScoreParams &params,
                     const GsswOptions &options = {});

/**
 * Reference implementation: textbook affine-gap local alignment over a
 * DAG, computed cell by cell without SIMD. Used by the unit tests to
 * validate gsswAlign and as the scalar ablation backend.
 */
GraphLocalHit gsswAlignScalar(const graph::LocalGraph &graph,
                              std::span<const uint8_t> query,
                              const ScoreParams &params);

/** One CIGAR run of a graph alignment. */
struct CigarEntry
{
    char op = '=';       ///< '=', 'X', 'I' (query gap... see below), 'D'
    uint32_t length = 0;
};

/**
 * A base-level graph alignment recovered by traceback:
 * '=' match, 'X' mismatch, 'I' query base consumed without a graph
 * base (insertion in the read), 'D' graph base consumed without a
 * query base (deletion from the read).
 */
struct GsswAlignment
{
    int32_t score = 0;
    int32_t queryStart = 0;     ///< first aligned query index
    int32_t queryEnd = -1;      ///< last aligned query index (incl.)
    std::vector<CigarEntry> cigar;      ///< alignment order
    std::vector<uint32_t> nodeWalk;     ///< nodes visited, in order
    std::vector<uint8_t> referenceBases;///< graph bases consumed
};

/**
 * Trace the optimal local alignment back through the DP matrices that
 * gsswAlign retained (GsswOptions::keepMatrices must have been set —
 * this is exactly why gssw keeps them, the §6.1 memory footprint).
 * fatal() if the matrices are missing.
 */
GsswAlignment gsswTraceback(const graph::LocalGraph &graph,
                            std::span<const uint8_t> query,
                            const ScoreParams &params,
                            const GsswResult &result);

} // namespace pgb::align

#endif // PGB_ALIGN_GSSW_HPP
