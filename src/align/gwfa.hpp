/**
 * @file
 * GWFA: the Graph Wavefront Algorithm (Zhang et al., extracted from
 * minigraph's chaining stage in the paper).
 *
 * Bridges the gap between two anchors by finding a minimum-edit-cost
 * walk through the graph that spells the query. Every node has its own
 * conceptual DP matrix (query on one axis, node sequence on the other);
 * wavefront diagonals live per (node, diagonal) and are expanded into
 * child nodes when they reach a node's end (paper Figure 4e). Unit
 * costs (non-affine) as in gwfa.
 */

#ifndef PGB_ALIGN_GWFA_HPP
#define PGB_ALIGN_GWFA_HPP

#include <algorithm>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "align/score.hpp"
#include "core/probe.hpp"
#include "graph/local_graph.hpp"

namespace pgb::align {

/** GWFA result: edit distance plus work accounting. */
struct GwfaResult
{
    int32_t distance = -1;      ///< unit-cost edit distance; -1 if not found
    bool reached = false;
    uint32_t endNode = 0;       ///< node where the query was consumed
    uint64_t extendSteps = 0;   ///< match-extension character steps
    uint64_t cellsComputed = 0; ///< wavefront states expanded
    uint64_t maxFrontier = 0;   ///< peak number of live (node, diag) states
};

namespace detail {

/** Pack a (node, diagonal) wavefront coordinate into a hash key. */
inline uint64_t
gwfaKey(uint32_t node, int32_t diag)
{
    return (static_cast<uint64_t>(node) << 32) |
           static_cast<uint32_t>(diag + (1 << 30));
}

} // namespace detail

/**
 * Align @p query through @p graph starting at (@p start_node,
 * @p start_offset), ending anywhere once the query is consumed.
 *
 * @param graph        finalized LocalGraph; cycles are allowed
 * @param max_score    give up beyond this edit distance
 * @param start_offset base offset within the start node where the
 *        walk begins (an anchor rarely sits on a node boundary)
 */
template <typename Probe = core::NullProbe>
GwfaResult
gwfaAlign(const graph::LocalGraph &graph, std::span<const uint8_t> query,
          uint32_t start_node, Probe &probe, int32_t max_score = 1 << 20,
          uint32_t start_offset = 0)
{
    struct State
    {
        uint32_t node;
        int32_t diag;   ///< k = h - v (h: query offset, v: node offset)
        int32_t offset; ///< furthest h on this diagonal
    };

    const auto m = static_cast<int32_t>(query.size());
    GwfaResult result;
    if (m == 0) {
        result.distance = 0;
        result.reached = true;
        result.endNode = start_node;
        return result;
    }

    // Best query offset ever reached per (node, diag), across scores.
    // Since cost only grows, revisiting with h <= best cannot improve;
    // this prunes cycles and guarantees termination.
    // Starting at offset o within the node means v = o at h = 0, i.e.
    // the walk begins on diagonal k = -o.
    const int32_t start_diag = -static_cast<int32_t>(start_offset);
    std::unordered_map<uint64_t, int32_t> best_offset;
    std::vector<State> frontier{{start_node, start_diag, 0}};
    best_offset[detail::gwfaKey(start_node, start_diag)] = 0;

    for (int32_t s = 0; s <= max_score; ++s) {
        // ---- Extend phase: follow matches; expand across node ends.
        // Node-end expansion is free (no cost), so newly spawned states
        // join the same frontier and are themselves extended.
        for (size_t fi = 0; fi < frontier.size(); ++fi) {
            State st = frontier[fi];
            const auto &bases = graph.nodeSeq(st.node);
            const auto node_len = static_cast<int32_t>(bases.size());
            int32_t h = st.offset;
            int32_t v = h - st.diag;
            while (v < node_len && h < m &&
                   bases[static_cast<size_t>(v)] ==
                       query[static_cast<size_t>(h)]) {
                probe.load(bases.data() + v, 1);
                probe.load(query.data() + h, 1);
                probe.branch(/* site */ 30, true);
                // Index arithmetic/compares of the extension step.
                probe.op(core::OpKind::kScalar, 4);
                ++v;
                ++h;
                ++result.extendSteps;
            }
            probe.branch(/* site */ 30, false);
            probe.op(core::OpKind::kScalar, 4);
            frontier[fi].offset = h;
            auto &best = best_offset[detail::gwfaKey(st.node, st.diag)];
            best = std::max(best, h);
            if (h >= m) {
                result.distance = s;
                result.reached = true;
                result.endNode = st.node;
                result.maxFrontier =
                    std::max<uint64_t>(result.maxFrontier,
                                       frontier.size());
                return result;
            }
            // Reached the node end on matches: spawn into children at
            // the same score.
            probe.branch(/* site */ 31, v == node_len);
            if (v == node_len) {
                for (uint32_t child : graph.successors(st.node)) {
                    probe.load(&child, 4);
                    const int32_t child_diag = h; // v' = 0 => k' = h
                    const uint64_t key =
                        detail::gwfaKey(child, child_diag);
                    auto it = best_offset.find(key);
                    if (it == best_offset.end() || it->second < h) {
                        best_offset[key] = h;
                        frontier.push_back({child, child_diag, h});
                    }
                }
            }
        }
        result.maxFrontier =
            std::max<uint64_t>(result.maxFrontier, frontier.size());
        if (s == max_score)
            break;

        // ---- Next phase: spend one edit on every live state.
        std::unordered_map<uint64_t, int32_t> next_best;
        std::vector<State> next;
        auto push = [&](uint32_t node, int32_t diag, int32_t offset) {
            const auto &bases = graph.nodeSeq(node);
            const auto node_len = static_cast<int32_t>(bases.size());
            const int32_t v = offset - diag;
            if (offset > m || v > node_len || v < 0)
                return;
            const uint64_t key = detail::gwfaKey(node, diag);
            // Hash-table probes dominate the Next bookkeeping (the
            // "large data structures" the paper attributes Seq2Graph
            // distance computation to).
            probe.op(core::OpKind::kScalar, 8);
            probe.op(core::OpKind::kMemory, 2);
            auto seen = best_offset.find(key);
            if (seen != best_offset.end() && seen->second >= offset)
                return; // dominated by an earlier, cheaper visit
            auto [it, inserted] = next_best.try_emplace(key, offset);
            if (!inserted) {
                if (it->second >= offset)
                    return;
                it->second = offset;
            }
            ++result.cellsComputed;
        };

        for (const State &st : frontier) {
            const auto node_len =
                static_cast<int32_t>(graph.nodeLength(st.node));
            const int32_t h = st.offset;
            const int32_t v = h - st.diag;
            if (v < node_len) {
                // Mismatch: consume one query and one node base.
                push(st.node, st.diag, h + 1);
                // Deletion: consume one node base.
                push(st.node, st.diag - 1, h);
            } else {
                // At node end: the edits consuming a node base happen
                // in each child instead.
                for (uint32_t child : graph.successors(st.node)) {
                    push(child, h, h + 1); // mismatch into child
                    push(child, h - 1, h); // deletion into child
                }
            }
            // Insertion: consume one query base only.
            push(st.node, st.diag + 1, h + 1);
            probe.op(core::OpKind::kScalar, 6);
        }

        frontier.clear();
        for (const auto &[key, offset] : next_best) {
            frontier.push_back({static_cast<uint32_t>(key >> 32),
                                static_cast<int32_t>(
                                    static_cast<uint32_t>(key)) -
                                    (1 << 30),
                                offset});
            probe.op(core::OpKind::kScalar, 6);
            probe.op(core::OpKind::kMemory, 1);
        }
        // Deterministic processing order.
        std::sort(frontier.begin(), frontier.end(),
                  [](const State &a, const State &b) {
                      return a.node < b.node ||
                             (a.node == b.node && a.diag < b.diag);
                  });
        if (frontier.empty())
            break;
    }
    return result;
}

/** Convenience overload without instrumentation. */
GwfaResult gwfaAlign(const graph::LocalGraph &graph,
                     std::span<const uint8_t> query, uint32_t start_node,
                     int32_t max_score = 1 << 20,
                     uint32_t start_offset = 0);

/**
 * Reference: full dynamic-programming edit distance of @p query through
 * @p graph from @p start_node (semi-global: query global, free end).
 * O(V * m) per relaxation round; iterates to fixpoint so cycles are
 * handled. Used to validate gwfaAlign and as the "full matrix" side of
 * the cells-computed ablation.
 */
GwfaResult gwfaFullDp(const graph::LocalGraph &graph,
                      std::span<const uint8_t> query, uint32_t start_node);

} // namespace pgb::align

#endif // PGB_ALIGN_GWFA_HPP
