#include "align/wfa.hpp"

namespace pgb::align {

WfaResult
wfaAlign(std::span<const uint8_t> pattern, std::span<const uint8_t> text,
         const WfaPenalties &penalties, int32_t max_score)
{
    core::NullProbe probe;
    return wfaAlign(pattern, text, penalties, probe, max_score);
}

int32_t
globalAffineScalar(std::span<const uint8_t> pattern,
                   std::span<const uint8_t> text,
                   const WfaPenalties &penalties)
{
    const size_t m = pattern.size();
    const size_t n = text.size();
    constexpr int32_t kInf = INT32_MAX / 2;
    const int32_t x = penalties.mismatch;
    const int32_t o = penalties.gapOpen;
    const int32_t e = penalties.gapExtend;

    // Column-rolling Gotoh in penalty space.
    std::vector<int32_t> h(m + 1), f(m + 1);
    h[0] = 0;
    for (size_t i = 1; i <= m; ++i) {
        f[i] = o + static_cast<int32_t>(i) * e;
        h[i] = f[i];
    }
    f[0] = kInf;

    std::vector<int32_t> e_col(m + 1, kInf);
    for (size_t j = 1; j <= n; ++j) {
        int32_t h_diag = h[0]; // H(0, j-1)
        h[0] = o + static_cast<int32_t>(j) * e;
        e_col[0] = h[0];
        int32_t f_cur = kInf;
        for (size_t i = 1; i <= m; ++i) {
            e_col[i] = std::min(e_col[i] + e, h[i] + o + e);
            f_cur = std::min(
                f_cur == kInf ? kInf : f_cur + e, h[i - 1] + o + e);
            const int32_t sub =
                pattern[i - 1] == text[j - 1] ? 0 : x;
            const int32_t best =
                std::min({h_diag + sub, e_col[i], f_cur});
            h_diag = h[i];
            h[i] = best;
        }
    }
    return h[m];
}

} // namespace pgb::align
