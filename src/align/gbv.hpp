/**
 * @file
 * GBV: Graph Myers's Bitvector alignment (Rautiainen et al., extracted
 * from GraphAligner's alignment stage in the paper).
 *
 * Semi-global (query global, graph ends free) unit-cost alignment. The
 * graph is expanded so every node carries exactly one base: each node's
 * DP column is held bit-parallel as VP/VN word vectors (Myers 1999,
 * block version), so a whole column updates in O(m/64) word steps.
 *
 * Graph-specific behaviour, as characterized in the paper (Figure 4b):
 *  - a node's input column is the element-wise minimum of its parents'
 *    columns (the branchy merge operation);
 *  - on cyclic graphs a node's column can improve after its children
 *    were computed, so changed nodes push their children onto a
 *    priority queue and columns are re-relaxed until stable.
 *
 * The merge is implemented by score expansion (O(m)) rather than
 * GraphAligner's O(m/64) bit-parallel merge; the single-parent common
 * case stays fully bit-parallel. See DESIGN.md §4.
 */

#ifndef PGB_ALIGN_GBV_HPP
#define PGB_ALIGN_GBV_HPP

#include <algorithm>
#include <cstdint>
#include <queue>
#include <span>
#include <vector>

#include "core/logging.hpp"
#include "core/probe.hpp"
#include "graph/local_graph.hpp"

namespace pgb::align {

/** One bit-parallel DP column (VP/VN deltas plus the last-row score). */
struct GbvColumn
{
    std::vector<uint64_t> vp, vn;
    int32_t score = 0; ///< D(m, column)

    bool
    operator==(const GbvColumn &other) const
    {
        return score == other.score && vp == other.vp && vn == other.vn;
    }
};

/** GBV result. */
struct GbvResult
{
    int32_t distance = -1;       ///< best semi-global edit distance
    uint32_t endNode = 0;        ///< 1bp-node index achieving it
    uint64_t columnsComputed = 0;///< column updates incl. recomputation
    uint64_t columnsPruned = 0;  ///< columns skipped by the band
    uint64_t merges = 0;         ///< multi-parent merge operations
    uint64_t requeues = 0;       ///< nodes pushed back after first visit
    std::vector<uint32_t> traceWalk; ///< backtraced node walk (optional)
};

/** Internal bit-parallel machinery, exposed for unit testing. */
namespace gbvdetail {

/** Expand a column's per-row scores (D(1..m, col), with D(0)=0). */
void expandScores(const GbvColumn &column, size_t m,
                  std::vector<int32_t> &out);

/** Rebuild VP/VN (and score) from per-row scores. */
GbvColumn rebuildColumn(const std::vector<int32_t> &scores, size_t words);

/**
 * Word-granular lower bound on the column's minimum score: cheap
 * (O(m/64)) and never above the true minimum, so band pruning on it
 * is conservative with respect to the bound itself.
 */
int32_t columnMinLowerBound(const GbvColumn &column);

} // namespace gbvdetail

/** GBV options. */
struct GbvOptions
{
    bool traceback = false; ///< recover the aligned node walk

    /**
     * Score banding, GraphAligner's key performance lever: a node's
     * column is only computed when its input column's last-row score
     * (the full-query completion cost) is within `band` of the best
     * completion score seen so far. 0 disables banding (exact).
     * Banding is a heuristic — like GraphAligner's, it can miss the
     * optimal alignment when the true path's completion cost strays
     * farther than the band from the running best.
     */
    int32_t band = 0;
};

/**
 * Align @p query to @p graph (any node lengths; internally expanded to
 * one base per node) with free graph start/end.
 */
template <typename Probe = core::NullProbe>
GbvResult
gbvAlign(const graph::LocalGraph &graph, std::span<const uint8_t> query,
         const GbvOptions &options, Probe &probe)
{
    const size_t m = query.size();
    if (m == 0)
        core::fatal("gbvAlign: empty query");

    // Expand to one base per node when needed.
    const graph::LocalGraph *g1 = &graph;
    graph::LocalGraph expanded;
    bool needs_split = false;
    for (uint32_t v = 0; v < graph.nodeCount(); ++v) {
        if (graph.nodeLength(v) != 1) {
            needs_split = true;
            break;
        }
    }
    if (needs_split) {
        expanded = graph.splitTo1bp();
        g1 = &expanded;
    }
    const auto n = static_cast<uint32_t>(g1->nodeCount());
    const size_t words = (m + 63) / 64;

    // Peq: per base code, bitmask of query positions matching it.
    std::vector<uint64_t> peq(5 * words, 0);
    for (size_t i = 0; i < m; ++i) {
        if (query[i] < 4)
            peq[static_cast<size_t>(query[i]) * words + i / 64] |=
                1ull << (i % 64);
    }

    // Initial column: D(i) = i, i.e. VP all ones.
    GbvColumn init;
    init.vp.assign(words, ~0ull);
    init.vn.assign(words, 0);
    init.score = static_cast<int32_t>(m);
    const uint64_t score_bit = 1ull << ((m - 1) % 64);
    const size_t score_word = (m - 1) / 64;

    // One Myers block step: out = step(in) with this node's base.
    auto myers_step = [&](const GbvColumn &in, uint8_t base,
                          GbvColumn &out) {
        out.vp.resize(words);
        out.vn.resize(words);
        const uint64_t *eq_row = peq.data() +
            static_cast<size_t>(base < 4 ? base : 4) * words;
        uint64_t add_carry = 0;
        uint64_t ph_carry = 0; // row-0 boundary: shift in 0 (free start)
        uint64_t mh_carry = 0;
        int32_t score = in.score;
        for (size_t w = 0; w < words; ++w) {
            probe.load(eq_row + w, 8);
            probe.load(in.vp.data() + w, 8);
            probe.load(in.vn.data() + w, 8);
            const uint64_t eq = eq_row[w];
            const uint64_t pv = in.vp[w];
            const uint64_t mv = in.vn[w];
            const uint64_t xv = eq | mv;
            const __uint128_t sum =
                static_cast<__uint128_t>(eq & pv) + pv + add_carry;
            add_carry = static_cast<uint64_t>(sum >> 64);
            const uint64_t xh =
                (static_cast<uint64_t>(sum) ^ pv) | eq;
            const uint64_t ph = mv | ~(xh | pv);
            const uint64_t mh = pv & xh;
            if (w == score_word) {
                score += (ph & score_bit) ? 1 : 0;
                score -= (mh & score_bit) ? 1 : 0;
            }
            const uint64_t ph_shift = (ph << 1) | ph_carry;
            ph_carry = ph >> 63;
            const uint64_t mh_shift = (mh << 1) | mh_carry;
            mh_carry = mh >> 63;
            out.vp[w] = mh_shift | ~(xv | ph_shift);
            out.vn[w] = ph_shift & xv;
            probe.store(out.vp.data() + w, 8);
            probe.store(out.vn.data() + w, 8);
            probe.op(core::OpKind::kScalar, 14);
        }
        // Mask padding bits so column comparisons are exact.
        if (m % 64 != 0) {
            const uint64_t mask = (1ull << (m % 64)) - 1;
            out.vp[words - 1] &= mask;
            out.vn[words - 1] &= mask;
        }
        out.score = score;
    };

    GbvResult result;

    // Element-wise minimum of two columns (the graph merge step).
    std::vector<int32_t> scores_a, scores_b;
    auto merge_min = [&](const GbvColumn &a, const GbvColumn &b)
        -> GbvColumn {
        ++result.merges;
        gbvdetail::expandScores(a, m, scores_a);
        gbvdetail::expandScores(b, m, scores_b);
        for (size_t i = 0; i < m; ++i) {
            probe.load(scores_b.data() + i, 4);
            probe.branch(/* site */ 40, scores_b[i] < scores_a[i]);
            if (scores_b[i] < scores_a[i])
                scores_a[i] = scores_b[i];
        }
        return gbvdetail::rebuildColumn(scores_a, words);
    };

    // Relaxation over the queue, ordered by node index (topological
    // index for the DAG case since splitTo1bp emits chains in order).
    std::vector<GbvColumn> columns(n);
    std::vector<bool> computed(n, false);
    std::vector<bool> in_queue(n, true);
    std::priority_queue<uint32_t, std::vector<uint32_t>,
                        std::greater<>> queue;
    if (g1->isDag()) {
        // Seed in topological order via index remap-free push: the
        // splitTo1bp construction emits nodes in a valid order for
        // chains, but general DAGs need the computed order. Pushing all
        // indices and relying on re-relaxation is correct either way;
        // pushing topologically just avoids requeues.
        for (uint32_t u : g1->topoOrder())
            queue.push(u);
    } else {
        for (uint32_t u = 0; u < n; ++u)
            queue.push(u);
    }

    GbvColumn candidate;
    int32_t best_band_score = static_cast<int32_t>(m);
    while (!queue.empty()) {
        const uint32_t u = queue.top();
        queue.pop();
        if (!in_queue[u])
            continue; // stale duplicate entry
        in_queue[u] = false;

        // Input column: min over computed parents; fresh start if none.
        const auto preds = g1->predecessors(u);
        const GbvColumn *in_col = nullptr;
        GbvColumn merged_in;
        size_t computed_preds = 0;
        for (uint32_t p : preds) {
            probe.load(&p, 4);
            probe.branch(/* site */ 41, computed[p]);
            if (!computed[p])
                continue;
            ++computed_preds;
            if (in_col == nullptr) {
                in_col = &columns[p];
            } else {
                merged_in = merge_min(*in_col, columns[p]);
                in_col = &merged_in;
            }
        }
        if (in_col == nullptr)
            in_col = &init;

        // Band pruning (GraphAligner's lever): skip nodes whose input
        // column's completion score is already far worse than the
        // best completion seen.
        if (options.band > 0 && in_col != &init) {
            probe.op(core::OpKind::kScalar, 2);
            probe.branch(/* site */ 47,
                         in_col->score >
                             best_band_score + options.band);
            if (in_col->score > best_band_score + options.band) {
                ++result.columnsPruned;
                continue;
            }
        }

        myers_step(*in_col, g1->nodeSeq(u)[0], candidate);
        ++result.columnsComputed;

        if (options.band > 0)
            best_band_score = std::min(best_band_score,
                                       candidate.score);

        bool changed;
        if (!computed[u]) {
            columns[u] = candidate;
            computed[u] = true;
            changed = true;
        } else {
            GbvColumn merged = merge_min(columns[u], candidate);
            changed = !(merged == columns[u]);
            probe.branch(/* site */ 42, changed);
            if (changed)
                columns[u] = std::move(merged);
        }
        if (changed) {
            for (uint32_t child : g1->successors(u)) {
                probe.branch(/* site */ 43, !in_queue[child]);
                if (!in_queue[child]) {
                    in_queue[child] = true;
                    queue.push(child);
                    if (computed[child])
                        ++result.requeues;
                }
            }
        }
    }

    // Best semi-global distance: min last-row score over all columns.
    result.distance = init.score; // all-insertions upper bound is m
    result.endNode = 0;
    for (uint32_t u = 0; u < n; ++u) {
        probe.load(&columns[u].score, 4);
        probe.branch(/* site */ 44, computed[u] &&
                     columns[u].score < result.distance);
        if (computed[u] && columns[u].score < result.distance) {
            result.distance = columns[u].score;
            result.endNode = u;
        }
    }

    if (options.traceback) {
        // Greedy backward walk over stored columns: from the end node,
        // repeatedly hop to the parent whose column explains the score.
        // This reproduces the branchy traceback the paper observes.
        std::vector<int32_t> cur_scores, parent_scores;
        uint32_t u = result.endNode;
        size_t row = m; // rows are 1-based over the query
        int32_t score = result.distance;
        result.traceWalk.push_back(u);
        size_t guard = (m + 2) * (g1->nodeCount() + 2);
        while (row > 0 && guard-- > 0) {
            gbvdetail::expandScores(columns[u], m, cur_scores);
            const int32_t above =
                row >= 2 ? cur_scores[row - 2] : 0;
            probe.branch(/* site */ 45, above + 1 == score);
            if (above + 1 == score) {
                // Insertion: consume a query char in this column.
                --row;
                score = above;
                continue;
            }
            bool moved = false;
            for (uint32_t p : g1->predecessors(u)) {
                if (!computed[p])
                    continue;
                gbvdetail::expandScores(columns[p], m, parent_scores);
                const int32_t diag =
                    row >= 2 ? parent_scores[row - 2] : 0;
                const uint8_t base = g1->nodeSeq(u)[0];
                const int32_t sub =
                    query[row - 1] == base ? 0 : 1;
                probe.branch(/* site */ 46, diag + sub == score);
                if (diag + sub == score) {
                    u = p;
                    --row;
                    score = diag;
                    result.traceWalk.push_back(u);
                    moved = true;
                    break;
                }
                const int32_t left = parent_scores[row - 1];
                if (left + 1 == score) {
                    // Deletion: consume this node's base only.
                    u = p;
                    score = left;
                    result.traceWalk.push_back(u);
                    moved = true;
                    break;
                }
            }
            if (!moved) {
                // Free start reached (score == row means all edits are
                // accounted by the fresh-start boundary).
                break;
            }
        }
        std::reverse(result.traceWalk.begin(), result.traceWalk.end());
    }
    return result;
}

/** Convenience overload without instrumentation. */
GbvResult gbvAlign(const graph::LocalGraph &graph,
                   std::span<const uint8_t> query,
                   const GbvOptions &options = {});

/**
 * Reference: per-cell semi-global edit distance over the expanded
 * graph, relaxed to fixpoint. Validates gbvAlign on DAGs and cyclic
 * graphs alike.
 */
int32_t gbvAlignScalar(const graph::LocalGraph &graph,
                       std::span<const uint8_t> query);

} // namespace pgb::align

#endif // PGB_ALIGN_GBV_HPP
