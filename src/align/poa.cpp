#include "align/poa.hpp"

#include <algorithm>
#include <climits>

#include "core/logging.hpp"

namespace pgb::align {

uint32_t
PoaGraph::addNode(uint8_t base)
{
    bases_.push_back(base);
    weights_.push_back(1);
    out_.emplace_back();
    in_.emplace_back();
    return static_cast<uint32_t>(bases_.size() - 1);
}

void
PoaGraph::addEdgeWeighted(uint32_t from, uint32_t to)
{
    for (Edge &edge : out_[from]) {
        if (edge.to == to) {
            ++edge.weight;
            return;
        }
    }
    out_[from].push_back({to, 1});
    in_[to].push_back(from);
}

std::vector<uint32_t>
PoaGraph::topoOrder() const
{
    const auto n = static_cast<uint32_t>(bases_.size());
    std::vector<uint32_t> indegree(n, 0);
    for (uint32_t u = 0; u < n; ++u) {
        for (const Edge &edge : out_[u])
            ++indegree[edge.to];
    }
    std::vector<uint32_t> order;
    order.reserve(n);
    std::vector<uint32_t> frontier;
    for (uint32_t u = 0; u < n; ++u) {
        if (indegree[u] == 0)
            frontier.push_back(u);
    }
    size_t head = 0;
    while (head < frontier.size()) {
        const uint32_t u = frontier[head++];
        order.push_back(u);
        for (const Edge &edge : out_[u]) {
            if (--indegree[edge.to] == 0)
                frontier.push_back(edge.to);
        }
    }
    if (order.size() != n)
        core::panic("PoaGraph: graph is not a DAG");
    return order;
}

int32_t
PoaGraph::addSequence(std::span<const uint8_t> bases)
{
    if (bases.empty())
        core::fatal("PoaGraph::addSequence: empty sequence");
    ++sequenceCount_;

    if (bases_.empty()) {
        // Seed the backbone.
        uint32_t prev = addNode(bases[0]);
        for (size_t i = 1; i < bases.size(); ++i) {
            const uint32_t node = addNode(bases[i]);
            addEdgeWeighted(prev, node);
            prev = node;
        }
        return 0;
    }

    const auto m = static_cast<int32_t>(bases.size());
    const auto order = topoOrder();
    const auto n = static_cast<uint32_t>(bases_.size());
    constexpr int32_t kNegInf = INT_MIN / 2;

    // Semi-global DP: free graph start/end, query global.
    // score[u][i]: best score of query[0..i) ending at node u (node u's
    // base consumed last). Backpointers encode (move, parent).
    enum Move : uint8_t { kNone, kDiag, kDelete, kInsert };
    struct Back
    {
        Move move = kNone;
        uint32_t parent = UINT32_MAX; ///< graph predecessor (kDiag/kDelete)
    };
    std::vector<std::vector<int32_t>> score(
        n, std::vector<int32_t>(m + 1, kNegInf));
    std::vector<std::vector<Back>> back(
        n, std::vector<Back>(m + 1));

    // Banding: per node keep only rows within `band` of the best row of
    // its best predecessor (approximation of abPOA's adaptive band).
    const int32_t band = params_.band;

    for (uint32_t u : order) {
        auto &row = score[u];
        auto &brow = back[u];
        const uint8_t base = bases_[u];

        int32_t lo = 0, hi = m;
        if (band > 0) {
            // Center the band on the best row among predecessors (or
            // row 0 for sources).
            int32_t center = 0;
            int32_t center_best = kNegInf;
            for (uint32_t p : in_[u]) {
                for (int32_t i = 0; i <= m; ++i) {
                    if (score[p][i] > center_best) {
                        center_best = score[p][i];
                        center = i;
                    }
                }
            }
            lo = std::max(0, center - band);
            hi = std::min(m, center + band + 1);
        }

        for (int32_t i = lo; i <= hi; ++i) {
            ++cellsComputed_;
            int32_t best = kNegInf;
            Back bp;
            if (i >= 1) {
                const int32_t sub = bases[i - 1] == base
                    ? params_.match : -params_.mismatch;
                // Fresh start: this node's base is the first consumed.
                if (i == 1 && sub > best) {
                    best = sub;
                    bp = {kDiag, UINT32_MAX};
                }
                for (uint32_t p : in_[u]) {
                    if (score[p][i - 1] != kNegInf &&
                        score[p][i - 1] + sub > best) {
                        best = score[p][i - 1] + sub;
                        bp = {kDiag, p};
                    }
                }
            }
            for (uint32_t p : in_[u]) {
                if (score[p][i] != kNegInf &&
                    score[p][i] - params_.gap > best) {
                    best = score[p][i] - params_.gap;
                    bp = {kDelete, p};
                }
            }
            if (i >= 1 && row[i - 1] != kNegInf &&
                row[i - 1] - params_.gap > best) {
                best = row[i - 1] - params_.gap;
                bp = {kInsert, UINT32_MAX};
            }
            if (best > row[i]) {
                row[i] = best;
                brow[i] = bp;
            }
        }
    }

    // Pick the best end: full query consumed, any node.
    int32_t best_score = kNegInf;
    uint32_t best_node = UINT32_MAX;
    for (uint32_t u = 0; u < n; ++u) {
        if (score[u][m] > best_score) {
            best_score = score[u][m];
            best_node = u;
        }
    }
    if (best_node == UINT32_MAX) {
        // Degenerate (band missed everything): thread as a new path.
        uint32_t prev = addNode(bases[0]);
        for (int32_t i = 1; i < m; ++i) {
            const uint32_t node = addNode(bases[static_cast<size_t>(i)]);
            addEdgeWeighted(prev, node);
            prev = node;
        }
        return 0;
    }

    // Traceback, collecting (query index -> fused-or-new node).
    std::vector<uint32_t> threaded(bases.size(), UINT32_MAX);
    {
        uint32_t u = best_node;
        int32_t i = m;
        while (i > 0 && u != UINT32_MAX) {
            const Back bp = back[u][static_cast<size_t>(i)];
            if (bp.move == kDiag) {
                if (bases[static_cast<size_t>(i - 1)] == bases_[u]) {
                    threaded[static_cast<size_t>(i - 1)] = u; // fuse
                    ++weights_[u];
                }
                u = bp.parent;
                --i;
            } else if (bp.move == kDelete) {
                u = bp.parent;
            } else if (bp.move == kInsert) {
                --i;
            } else {
                break; // fresh start boundary
            }
        }
    }

    // Materialize unfused query bases as new nodes and wire the path.
    uint32_t prev = UINT32_MAX;
    for (size_t i = 0; i < bases.size(); ++i) {
        uint32_t node = threaded[i];
        if (node == UINT32_MAX)
            node = addNode(bases[i]);
        if (prev != UINT32_MAX && prev != node)
            addEdgeWeighted(prev, node);
        prev = node;
    }
    return best_score;
}

std::vector<uint8_t>
PoaGraph::consensus() const
{
    if (bases_.empty())
        return {};
    const auto order = topoOrder();
    const auto n = static_cast<uint32_t>(bases_.size());
    constexpr int64_t kNegInf = INT64_MIN / 2;

    // Heaviest path by node weight + incoming edge weight.
    std::vector<int64_t> best(n, kNegInf);
    std::vector<uint32_t> from(n, UINT32_MAX);
    int64_t global_best = kNegInf;
    uint32_t global_node = 0;
    for (uint32_t u : order) {
        if (best[u] == kNegInf)
            best[u] = weights_[u];
        for (const Edge &edge : out_[u]) {
            const int64_t cand =
                best[u] + edge.weight + weights_[edge.to];
            if (cand > best[edge.to]) {
                best[edge.to] = cand;
                from[edge.to] = u;
            }
        }
        if (best[u] > global_best) {
            global_best = best[u];
            global_node = u;
        }
    }

    std::vector<uint8_t> out;
    for (uint32_t u = global_node; u != UINT32_MAX; u = from[u])
        out.push_back(bases_[u]);
    std::reverse(out.begin(), out.end());
    return out;
}

} // namespace pgb::align
