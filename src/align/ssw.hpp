/**
 * @file
 * SSW: striped Smith-Waterman (Farrar's algorithm), the Seq2Seq baseline
 * kernel of the paper's case study §6.1, and the SIMD column engine that
 * GSSW builds on.
 *
 * The striped layout packs query position i into vector (i % segLen),
 * lane (i / segLen). Within a column, F dependencies are speculated
 * away and repaired by the lazy-F loop (paper Figure 4a). Like the SSW
 * library (Zhao et al.) and SWPS3, the lazy-F loop does not feed F back
 * into E, which disallows an immediate deletion-insertion pair; this is
 * score-exact whenever 2*gapOpen >= mismatch (true of all defaults).
 *
 * Kernels are templated on the vector backend (align/simd.hpp) and on
 * a Probe (core/probe.hpp). The public entry points dispatch on the
 * runtime SIMD level (align/dispatch.hpp): scalar and SSE2 run the
 * 8-lane kernel inline; AVX2 runs the 16-lane kernel through the
 * -mavx2 translation unit (align/ssw_avx2.cpp), for uninstrumented
 * (NullProbe) callers only — instrumented characterization stays on
 * the 8-lane layout the paper's Machine B analysis models. Per-cell
 * values are layout-independent and result recovery scans in query
 * order, so every level returns bit-identical hits.
 *
 * Scores saturate at INT16_MAX: a long high-identity read can clamp.
 * Kernels detect the clamp, count it in the obs counter
 * `align.score_saturated`, and warn once per process.
 */

#ifndef PGB_ALIGN_SSW_HPP
#define PGB_ALIGN_SSW_HPP

#include <algorithm>
#include <climits>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "align/dispatch.hpp"
#include "align/score.hpp"
#include "align/simd.hpp"
#include "core/logging.hpp"
#include "core/probe.hpp"
#include "core/scratch.hpp"
#include "seq/alphabet.hpp"

namespace pgb::align {

/** Sentinel "minus infinity" that survives saturating arithmetic. */
constexpr int16_t kNegInf16 = -30000;

/** Saturating-arithmetic ceiling: a best score here means overflow. */
constexpr int16_t kScoreSaturated = 32767;

namespace detail {

/** Count a saturated alignment score (warns once per process). */
void noteScoreSaturation();

} // namespace detail

/** Striped query profile: per-base substitution scores, striped layout. */
class StripedProfile
{
  public:
    StripedProfile() = default;

    StripedProfile(std::span<const uint8_t> query,
                   const ScoreParams &params, int lanes = kLanes)
    {
        reset(query, params, lanes);
    }

    /** (Re)build for @p query; reuses the profile's allocation. */
    void reset(std::span<const uint8_t> query, const ScoreParams &params,
               int lanes = kLanes);

    size_t queryLength() const { return queryLength_; }
    int segLen() const { return segLen_; }
    int lanes() const { return lanes_; }

    /** Striped profile row for base code @p base (segLen vectors). */
    const int16_t *
    row(uint8_t base) const
    {
        return data_.data() + static_cast<size_t>(base) *
               static_cast<size_t>(segLen_) * lanes_;
    }

  private:
    size_t queryLength_ = 0;
    int segLen_ = 0;
    int lanes_ = kLanes;
    std::vector<int16_t> data_; ///< (kNumBases+1) rows x segLen x lanes
};

/**
 * Striped per-column DP state: H and E in striped layout, one int16 per
 * query position (padded to segLen*lanes). GSSW seeds this from parent
 * nodes; SSW starts it at the local-alignment boundary.
 */
struct StripedState
{
    std::vector<int16_t> h; ///< H of the last processed column
    std::vector<int16_t> e; ///< E entering the next column

    /** Initialize for a fresh local alignment of @p seg_len stripes. */
    void
    reset(int seg_len, int lanes = kLanes)
    {
        h.assign(static_cast<size_t>(seg_len) * lanes, 0);
        e.assign(static_cast<size_t>(seg_len) * lanes, kNegInf16);
    }

    /** Copy from @p other, reusing this state's allocations. */
    void
    assignFrom(const StripedState &other)
    {
        h.assign(other.h.begin(), other.h.end());
        e.assign(other.e.begin(), other.e.end());
    }

    /**
     * Element-wise max merge with @p other (GSSW parent merging).
     * Sizes are always a multiple of 8 (segLen * lanes), so the merge
     * runs on the baseline 8-lane vectors.
     */
    void
    mergeMax(const StripedState &other)
    {
        const size_t n = h.size();
        for (size_t i = 0; i < n; i += kLanes) {
            vmax(V8i16::load(h.data() + i),
                 V8i16::load(other.h.data() + i))
                .store(h.data() + i);
            vmax(V8i16::load(e.data() + i),
                 V8i16::load(other.e.data() + i))
                .store(e.data() + i);
        }
    }
};

/**
 * Advance @p state by one reference column with base @p ref_base,
 * using vector backend @p Vec (whose width must match the profile's
 * lane count).
 *
 * @param profile   striped query profile
 * @param params    scoring parameters
 * @param state     H/E state; updated in place
 * @param ref_base  reference base code for this column
 * @param probe     instrumentation probe
 * @param column_out when non-null, the column's H values are written
 *        un-striped ("swizzle" writes: column_out[i * column_stride] =
 *        H(i)), reproducing GSSW's costly SIMD-buffer-to-matrix
 *        writebacks (paper §6.1); with column_stride = row length these
 *        are the strided row-major matrix stores VTune blames
 * @param column_stride element stride between successive query rows
 * @return the maximum H value in this column
 */
template <typename Vec, typename Probe>
int16_t
stripedColumnT(const StripedProfile &profile, const ScoreParams &params,
               StripedState &state, uint8_t ref_base, Probe &probe,
               int16_t *column_out = nullptr, size_t column_stride = 1)
{
    constexpr int kW = Vec::kWidth;
    constexpr uint32_t kVecBytes = kW * sizeof(int16_t);
    const int seg_len = profile.segLen();
    const int16_t *prof = profile.row(ref_base);
    int16_t *h_arr = state.h.data();
    int16_t *e_arr = state.e.data();

    const Vec v_zero = Vec::zero();
    const Vec v_gap_open = Vec::set1(params.gapOpen);
    const Vec v_gap_ext = Vec::set1(params.gapExtend);
    Vec v_max_col = v_zero;
    Vec v_f = Vec::set1(kNegInf16);

    // H(i-1, j-1) for stripe 0 comes from the last stripe of the
    // previous column, shifted up one lane; lane 0 is the boundary row.
    probe.load(h_arr + (seg_len - 1) * kW, kVecBytes);
    Vec v_h_diag = Vec::load(h_arr + (seg_len - 1) * kW).shiftLanesUp(0);
    probe.op(core::OpKind::kVector);

    // Main striped pass over the column.
    for (int t = 0; t < seg_len; ++t) {
        probe.load(prof + t * kW, kVecBytes);
        Vec v_h = adds(v_h_diag, Vec::load(prof + t * kW));
        probe.load(e_arr + t * kW, kVecBytes);
        const Vec v_e = Vec::load(e_arr + t * kW);
        v_h = vmax(v_h, v_e);
        v_h = vmax(v_h, v_f);
        v_h = vmax(v_h, v_zero);
        v_max_col = vmax(v_max_col, v_h);
        probe.op(core::OpKind::kVector, 6);

        // Save H(i-1, j-1) for the next stripe before overwriting.
        probe.load(h_arr + t * kW, kVecBytes);
        v_h_diag = Vec::load(h_arr + t * kW);
        v_h.store(h_arr + t * kW);
        probe.store(h_arr + t * kW, kVecBytes);

        const Vec v_h_gap = subs(v_h, v_gap_open);
        const Vec v_e_next = vmax(subs(v_e, v_gap_ext), v_h_gap);
        v_e_next.store(e_arr + t * kW);
        probe.store(e_arr + t * kW, kVecBytes);
        v_f = vmax(subs(v_f, v_gap_ext), v_h_gap);
        probe.op(core::OpKind::kVector, 4);
    }

    // Lazy-F repair: propagate F across stripes until it cannot raise H.
    for (int lane_pass = 0; lane_pass < kW; ++lane_pass) {
        v_f = v_f.shiftLanesUp(kNegInf16);
        probe.op(core::OpKind::kVector);
        bool done = false;
        for (int t = 0; t < seg_len; ++t) {
            probe.load(h_arr + t * kW, kVecBytes);
            Vec v_h = Vec::load(h_arr + t * kW);
            v_h = vmax(v_h, v_f);
            v_h.store(h_arr + t * kW);
            probe.store(h_arr + t * kW, kVecBytes);
            v_max_col = vmax(v_max_col, v_h);
            const Vec v_h_gap = subs(v_h, v_gap_open);
            v_f = subs(v_f, v_gap_ext);
            probe.op(core::OpKind::kVector, 5);
            const bool keep_going = anyGt(v_f, v_h_gap);
            probe.branch(/* site */ 1, keep_going);
            if (!keep_going) {
                done = true;
                break;
            }
        }
        probe.branch(/* site */ 2, done);
        if (done)
            break;
    }

    // Optional un-striping writeback (the "swizzle" store). The lane
    // bound is hoisted out of the inner loop: stripe row t covers query
    // rows t, t+segLen, ..., of which full_lanes (+1 for t <= rem) are
    // real — computed once, no division inside the loop.
    if (column_out != nullptr) {
        const auto m = profile.queryLength();
        const int full_lanes = static_cast<int>((m - 1) / seg_len);
        const int rem = static_cast<int>((m - 1) % seg_len);
        const size_t step = static_cast<size_t>(seg_len) * column_stride;
        for (int t = 0; t < seg_len; ++t) {
            probe.load(h_arr + t * kW, kVecBytes);
            const int16_t *src = h_arr + t * kW;
            int16_t *dst = column_out +
                static_cast<size_t>(t) * column_stride;
            const int real_lanes = full_lanes + (t <= rem ? 1 : 0);
            for (int lane = 0; lane < real_lanes; ++lane) {
                *dst = src[lane];
                probe.store(dst, 2);
                dst += step;
            }
        }
    }

    return v_max_col.horizontalMax();
}

/** 8-lane stripedColumnT under its historical name. */
template <typename Probe>
int16_t
stripedColumn(const StripedProfile &profile, const ScoreParams &params,
              StripedState &state, uint8_t ref_base, Probe &probe,
              int16_t *column_out = nullptr, size_t column_stride = 1)
{
    return stripedColumnT<V8i16>(profile, params, state, ref_base,
                                 probe, column_out, column_stride);
}

/**
 * Query row of the column maximum, scanned in query order so the
 * answer does not depend on the striped layout's lane count: the
 * smallest query index whose H (striped, at @p h) equals @p col_max.
 */
inline int32_t
stripedQueryEnd(int seg_len, int lanes, size_t m, const int16_t *h,
                int16_t col_max)
{
    // Query index lane * segLen + t is ascending over (lane, t), so
    // this visits i = 0, 1, 2, ... without any division.
    size_t i = 0;
    for (int lane = 0; lane < lanes && i < m; ++lane) {
        for (int t = 0; t < seg_len && i < m; ++t, ++i) {
            if (h[static_cast<size_t>(t) * lanes + lane] == col_max)
                return static_cast<int32_t>(i);
        }
    }
    return -1;
}

/** Convenience overload over a profile/state pair. */
inline int32_t
stripedQueryEnd(const StripedProfile &profile, const StripedState &state,
                int16_t col_max)
{
    return stripedQueryEnd(profile.segLen(), profile.lanes(),
                           profile.queryLength(), state.h.data(),
                           col_max);
}

/**
 * Copy one striped column of H values (segLen*lanes int16) into a kept
 * matrix: a straight run of full-width vector stores, the cheapest
 * possible writeback — no per-cell un-striping at all.
 */
template <typename Vec>
inline void
storeStripedColumn(const int16_t *h_arr, size_t seg_len, int16_t *dst)
{
    constexpr int kW = Vec::kWidth;
    for (size_t t = 0; t < seg_len; ++t)
        Vec::load(h_arr + t * kW).store(dst + t * kW);
}

namespace detail {

/** Thread-local DP state and best-column snapshot for sswAlignT. */
struct SswAlignScratch
{
    StripedState state;
    std::vector<int16_t> bestH; ///< H of the best column so far
};

/** Striped local alignment with an explicit vector backend. */
template <typename Vec, typename Probe>
LocalHit
sswAlignT(const StripedProfile &profile,
          std::span<const uint8_t> reference, const ScoreParams &params,
          Probe &probe)
{
    if (profile.lanes() != Vec::kWidth) {
        core::panic("sswAlignT: ", profile.lanes(),
                    "-lane profile fed to a ", Vec::kWidth,
                    "-lane kernel");
    }
    SswAlignScratch &scratch = core::threadScratch<SswAlignScratch>();
    StripedState &state = scratch.state;
    state.reset(profile.segLen(), profile.lanes());

    // On each improvement the column's striped H is snapshotted (one
    // vector copy); the query end is recovered once at the end from the
    // winning snapshot instead of rescanning every improved column.
    LocalHit best;
    for (size_t j = 0; j < reference.size(); ++j) {
        probe.load(reference.data() + j, 1);
        const int16_t col_max = stripedColumnT<Vec>(
            profile, params, state, reference[j], probe);
        probe.branch(/* site */ 3, col_max > best.score);
        if (col_max > best.score) {
            best.score = col_max;
            best.refEnd = static_cast<int32_t>(j);
            scratch.bestH.assign(state.h.begin(), state.h.end());
        }
    }
    if (best.score > 0) {
        best.queryEnd = stripedQueryEnd(
            profile.segLen(), profile.lanes(), profile.queryLength(),
            scratch.bestH.data(), static_cast<int16_t>(best.score));
    }
    if (best.score >= kScoreSaturated)
        noteScoreSaturation();
    return best;
}

#if defined(PGB_HAVE_AVX2_BUILD)
/** 16-lane kernel, compiled with -mavx2 (align/ssw_avx2.cpp). */
LocalHit sswAlignAvx2(const StripedProfile &profile,
                      std::span<const uint8_t> reference,
                      const ScoreParams &params);
#endif

} // namespace detail

/**
 * Local (Smith-Waterman) alignment of the profiled query against
 * @p reference using the striped SIMD kernel. Dispatches on the
 * profile's lane count and the runtime SIMD level; build 16-lane
 * profiles (simdDispatchLanes()) only for uninstrumented callers.
 */
template <typename Probe = core::NullProbe>
LocalHit
sswAlign(const StripedProfile &profile, std::span<const uint8_t> reference,
         const ScoreParams &params, Probe &probe)
{
    if (profile.lanes() != kLanes) {
#if defined(PGB_HAVE_AVX2_BUILD)
        if constexpr (std::is_same_v<Probe, core::NullProbe>) {
            if (profile.lanes() == kLanesAvx2)
                return detail::sswAlignAvx2(profile, reference, params);
        }
#endif
        core::fatal("sswAlign: ", profile.lanes(), "-lane profiles "
                    "need the AVX2 build and an uninstrumented probe");
    }
    if (activeSimdLevel() == SimdLevel::kScalar)
        return detail::sswAlignT<VScalar<8>>(profile, reference, params,
                                             probe);
    return detail::sswAlignT<V8i16>(profile, reference, params, probe);
}

/**
 * Convenience overload without instrumentation; builds the profile at
 * the dispatched lane width.
 */
LocalHit sswAlign(std::span<const uint8_t> query,
                  std::span<const uint8_t> reference,
                  const ScoreParams &params);

/**
 * Textbook O(nm) affine-gap local alignment, the correctness reference
 * for the striped kernels and the scalar ablation backend.
 */
template <typename Probe = core::NullProbe>
LocalHit
sswAlignScalar(std::span<const uint8_t> query,
               std::span<const uint8_t> reference,
               const ScoreParams &params, Probe &probe)
{
    const size_t m = query.size();
    constexpr int32_t kNegInf32 = INT_MIN / 2;
    // h[i] holds H(i, j-1); e[i] holds E(i, j-1) rolled into E(i, j).
    std::vector<int32_t> h(m + 1, 0), e(m + 1, kNegInf32);
    LocalHit best;
    for (size_t j = 0; j < reference.size(); ++j) {
        probe.load(reference.data() + j, 1);
        const uint8_t ref_base = reference[j];
        int32_t h_diag = 0;   // H(i-1, j-1); starts as H(0, j-1) = 0
        int32_t h_above = 0;  // H(i-1, j) of the current column
        int32_t f = kNegInf32;
        for (size_t i = 1; i <= m; ++i) {
            probe.load(query.data() + i - 1, 1);
            const bool is_match = query[i - 1] == ref_base &&
                                  query[i - 1] < seq::kNumBases;
            const int32_t sub = is_match ? params.match : -params.mismatch;
            probe.load(&e[i], 4);
            probe.load(&h[i], 4);
            e[i] = std::max(e[i] - params.gapExtend,
                            h[i] - params.gapOpen);
            probe.store(&e[i], 4);
            f = std::max(f - params.gapExtend, h_above - params.gapOpen);
            const int32_t score =
                std::max({h_diag + sub, e[i], f, 0});
            probe.op(core::OpKind::kScalar, 8);
            h_diag = h[i];
            h[i] = score;
            probe.store(&h[i], 4);
            h_above = score;
            probe.branch(/* site */ 4, score > best.score);
            if (score > best.score) {
                best.score = score;
                best.queryEnd = static_cast<int32_t>(i) - 1;
                best.refEnd = static_cast<int32_t>(j);
            }
        }
    }
    return best;
}

} // namespace pgb::align

#endif // PGB_ALIGN_SSW_HPP
