/**
 * @file
 * SSW: striped Smith-Waterman (Farrar's algorithm), the Seq2Seq baseline
 * kernel of the paper's case study §6.1, and the SIMD column engine that
 * GSSW builds on.
 *
 * The striped layout packs query position i into vector (i % segLen),
 * lane (i / segLen). Within a column, F dependencies are speculated
 * away and repaired by the lazy-F loop (paper Figure 4a). Like the SSW
 * library (Zhao et al.) and SWPS3, the lazy-F loop does not feed F back
 * into E, which disallows an immediate deletion-insertion pair; this is
 * score-exact whenever 2*gapOpen >= mismatch (true of all defaults).
 *
 * Kernels are templated on a Probe (see core/probe.hpp); pass
 * core::NullProbe for uninstrumented timing runs.
 */

#ifndef PGB_ALIGN_SSW_HPP
#define PGB_ALIGN_SSW_HPP

#include <algorithm>
#include <climits>
#include <cstdint>
#include <span>
#include <vector>

#include "align/score.hpp"
#include "align/simd.hpp"
#include "core/probe.hpp"
#include "seq/alphabet.hpp"

namespace pgb::align {

/** Sentinel "minus infinity" that survives saturating arithmetic. */
constexpr int16_t kNegInf16 = -30000;

/** Striped query profile: per-base substitution scores, striped layout. */
class StripedProfile
{
  public:
    StripedProfile(std::span<const uint8_t> query,
                   const ScoreParams &params);

    size_t queryLength() const { return queryLength_; }
    int segLen() const { return segLen_; }

    /** Striped profile row for base code @p base (segLen vectors). */
    const int16_t *
    row(uint8_t base) const
    {
        return data_.data() + static_cast<size_t>(base) *
               static_cast<size_t>(segLen_) * kLanes;
    }

  private:
    size_t queryLength_;
    int segLen_;
    std::vector<int16_t> data_; ///< (kNumBases+1) rows x segLen x 8
};

/**
 * Striped per-column DP state: H and E in striped layout, one int16 per
 * query position (padded to segLen*8). GSSW seeds this from parent
 * nodes; SSW starts it at the local-alignment boundary.
 */
struct StripedState
{
    std::vector<int16_t> h; ///< H of the last processed column
    std::vector<int16_t> e; ///< E entering the next column

    /** Initialize for a fresh local alignment of @p seg_len stripes. */
    void
    reset(int seg_len)
    {
        h.assign(static_cast<size_t>(seg_len) * kLanes, 0);
        e.assign(static_cast<size_t>(seg_len) * kLanes, kNegInf16);
    }

    /** Element-wise max merge with @p other (GSSW parent merging). */
    void
    mergeMax(const StripedState &other)
    {
        for (size_t i = 0; i < h.size(); ++i) {
            h[i] = other.h[i] > h[i] ? other.h[i] : h[i];
            e[i] = other.e[i] > e[i] ? other.e[i] : e[i];
        }
    }
};

/**
 * Advance @p state by one reference column with base @p ref_base.
 *
 * @param profile   striped query profile
 * @param params    scoring parameters
 * @param state     H/E state; updated in place
 * @param ref_base  reference base code for this column
 * @param probe     instrumentation probe
 * @param column_out when non-null, the column's H values are written
 *        un-striped ("swizzle" writes: column_out[i * column_stride] =
 *        H(i)), reproducing GSSW's costly SIMD-buffer-to-matrix
 *        writebacks (paper §6.1); with column_stride = row length these
 *        are the strided row-major matrix stores VTune blames
 * @param column_stride element stride between successive query rows
 * @return the maximum H value in this column
 */
template <typename Probe>
int16_t
stripedColumn(const StripedProfile &profile, const ScoreParams &params,
              StripedState &state, uint8_t ref_base, Probe &probe,
              int16_t *column_out = nullptr, size_t column_stride = 1)
{
    const int seg_len = profile.segLen();
    const int16_t *prof = profile.row(ref_base);
    int16_t *h_arr = state.h.data();
    int16_t *e_arr = state.e.data();

    const V8i16 v_zero = V8i16::zero();
    const V8i16 v_gap_open = V8i16::set1(params.gapOpen);
    const V8i16 v_gap_ext = V8i16::set1(params.gapExtend);
    V8i16 v_max_col = v_zero;
    V8i16 v_f = V8i16::set1(kNegInf16);

    // H(i-1, j-1) for stripe 0 comes from the last stripe of the
    // previous column, shifted up one lane; lane 0 is the boundary row.
    probe.load(h_arr + (seg_len - 1) * kLanes, 16);
    V8i16 v_h_diag = V8i16::load(h_arr + (seg_len - 1) * kLanes)
                         .shiftLanesUp(0);
    probe.op(core::OpKind::kVector);

    // Main striped pass over the column.
    for (int t = 0; t < seg_len; ++t) {
        probe.load(prof + t * kLanes, 16);
        V8i16 v_h = adds(v_h_diag, V8i16::load(prof + t * kLanes));
        probe.load(e_arr + t * kLanes, 16);
        const V8i16 v_e = V8i16::load(e_arr + t * kLanes);
        v_h = vmax(v_h, v_e);
        v_h = vmax(v_h, v_f);
        v_h = vmax(v_h, v_zero);
        v_max_col = vmax(v_max_col, v_h);
        probe.op(core::OpKind::kVector, 6);

        // Save H(i-1, j-1) for the next stripe before overwriting.
        probe.load(h_arr + t * kLanes, 16);
        v_h_diag = V8i16::load(h_arr + t * kLanes);
        v_h.store(h_arr + t * kLanes);
        probe.store(h_arr + t * kLanes, 16);

        const V8i16 v_h_gap = subs(v_h, v_gap_open);
        const V8i16 v_e_next = vmax(subs(v_e, v_gap_ext), v_h_gap);
        v_e_next.store(e_arr + t * kLanes);
        probe.store(e_arr + t * kLanes, 16);
        v_f = vmax(subs(v_f, v_gap_ext), v_h_gap);
        probe.op(core::OpKind::kVector, 4);
    }

    // Lazy-F repair: propagate F across stripes until it cannot raise H.
    for (int lane_pass = 0; lane_pass < kLanes; ++lane_pass) {
        v_f = v_f.shiftLanesUp(kNegInf16);
        probe.op(core::OpKind::kVector);
        bool done = false;
        for (int t = 0; t < seg_len; ++t) {
            probe.load(h_arr + t * kLanes, 16);
            V8i16 v_h = V8i16::load(h_arr + t * kLanes);
            v_h = vmax(v_h, v_f);
            v_h.store(h_arr + t * kLanes);
            probe.store(h_arr + t * kLanes, 16);
            v_max_col = vmax(v_max_col, v_h);
            const V8i16 v_h_gap = subs(v_h, v_gap_open);
            v_f = subs(v_f, v_gap_ext);
            probe.op(core::OpKind::kVector, 5);
            const bool keep_going = anyGt(v_f, v_h_gap);
            probe.branch(/* site */ 1, keep_going);
            if (!keep_going) {
                done = true;
                break;
            }
        }
        probe.branch(/* site */ 2, done);
        if (done)
            break;
    }

    // Optional un-striping writeback (the "swizzle" store).
    if (column_out != nullptr) {
        const auto m = profile.queryLength();
        for (int t = 0; t < seg_len; ++t) {
            probe.load(h_arr + t * kLanes, 16);
            for (int lane = 0; lane < kLanes; ++lane) {
                const size_t i = static_cast<size_t>(t) +
                    static_cast<size_t>(lane) * seg_len;
                if (i < m) {
                    column_out[i * column_stride] =
                        h_arr[t * kLanes + lane];
                    probe.store(column_out + i * column_stride, 2);
                }
            }
        }
    }

    return v_max_col.horizontalMax();
}

/**
 * Local (Smith-Waterman) alignment of the profiled query against
 * @p reference using the striped SIMD kernel.
 */
template <typename Probe = core::NullProbe>
LocalHit
sswAlign(const StripedProfile &profile, std::span<const uint8_t> reference,
         const ScoreParams &params, Probe &probe)
{
    StripedState state;
    state.reset(profile.segLen());

    LocalHit best;
    for (size_t j = 0; j < reference.size(); ++j) {
        probe.load(reference.data() + j, 1);
        const int16_t col_max = stripedColumn(profile, params, state,
                                              reference[j], probe);
        probe.branch(/* site */ 3, col_max > best.score);
        if (col_max > best.score) {
            best.score = col_max;
            best.refEnd = static_cast<int32_t>(j);
            // Recover the query row of the maximum from the state.
            const int seg_len = profile.segLen();
            for (int t = 0; t < seg_len; ++t) {
                for (int lane = 0; lane < kLanes; ++lane) {
                    if (state.h[t * kLanes + lane] == col_max) {
                        const auto i = static_cast<int32_t>(
                            t + lane * seg_len);
                        if (i < static_cast<int32_t>(
                                profile.queryLength())) {
                            best.queryEnd = i;
                            t = seg_len; // break both loops
                            break;
                        }
                    }
                }
            }
        }
    }
    return best;
}

/** Convenience overload without instrumentation. */
LocalHit sswAlign(std::span<const uint8_t> query,
                  std::span<const uint8_t> reference,
                  const ScoreParams &params);

/**
 * Textbook O(nm) affine-gap local alignment, the correctness reference
 * for the striped kernels and the scalar ablation backend.
 */
template <typename Probe = core::NullProbe>
LocalHit
sswAlignScalar(std::span<const uint8_t> query,
               std::span<const uint8_t> reference,
               const ScoreParams &params, Probe &probe)
{
    const size_t m = query.size();
    constexpr int32_t kNegInf32 = INT32_MIN / 2;
    // h[i] holds H(i, j-1); e[i] holds E(i, j-1) rolled into E(i, j).
    std::vector<int32_t> h(m + 1, 0), e(m + 1, kNegInf32);
    LocalHit best;
    for (size_t j = 0; j < reference.size(); ++j) {
        probe.load(reference.data() + j, 1);
        const uint8_t ref_base = reference[j];
        int32_t h_diag = 0;   // H(i-1, j-1); starts as H(0, j-1) = 0
        int32_t h_above = 0;  // H(i-1, j) of the current column
        int32_t f = kNegInf32;
        for (size_t i = 1; i <= m; ++i) {
            probe.load(query.data() + i - 1, 1);
            const bool is_match = query[i - 1] == ref_base &&
                                  query[i - 1] < seq::kNumBases;
            const int32_t sub = is_match ? params.match : -params.mismatch;
            probe.load(&e[i], 4);
            probe.load(&h[i], 4);
            e[i] = std::max(e[i] - params.gapExtend,
                            h[i] - params.gapOpen);
            probe.store(&e[i], 4);
            f = std::max(f - params.gapExtend, h_above - params.gapOpen);
            const int32_t score =
                std::max({h_diag + sub, e[i], f, 0});
            probe.op(core::OpKind::kScalar, 8);
            h_diag = h[i];
            h[i] = score;
            probe.store(&h[i], 4);
            h_above = score;
            probe.branch(/* site */ 4, score > best.score);
            if (score > best.score) {
                best.score = score;
                best.queryEnd = static_cast<int32_t>(i) - 1;
                best.refEnd = static_cast<int32_t>(j);
            }
        }
    }
    return best;
}

} // namespace pgb::align

#endif // PGB_ALIGN_SSW_HPP
