#include "align/simd_table.hpp"

#include "align/dispatch.hpp"
#include "align/simd.hpp"

namespace pgb::align {

std::vector<SimdOpsTable>
simdOpsTables()
{
    std::vector<SimdOpsTable> tables;
    tables.push_back(detail::makeSimdOpsTable<VScalar<8>>("scalar8"));
    tables.push_back(detail::makeSimdOpsTable<VScalar<16>>("scalar16"));
#if PGB_HAVE_SSE2
    tables.push_back(detail::makeSimdOpsTable<VSse2>("sse2"));
#endif
#if defined(PGB_HAVE_AVX2_BUILD)
    if (cpuSupportsAvx2())
        tables.push_back(detail::simdOpsTableAvx2());
#endif
    return tables;
}

} // namespace pgb::align
