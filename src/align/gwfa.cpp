#include "align/gwfa.hpp"

#include <climits>

#include "core/logging.hpp"

namespace pgb::align {

GwfaResult
gwfaAlign(const graph::LocalGraph &graph, std::span<const uint8_t> query,
          uint32_t start_node, int32_t max_score, uint32_t start_offset)
{
    core::NullProbe probe;
    return gwfaAlign(graph, query, start_node, probe, max_score,
                     start_offset);
}

GwfaResult
gwfaFullDp(const graph::LocalGraph &graph, std::span<const uint8_t> query,
           uint32_t start_node)
{
    // Work on the 1 bp expansion so every graph position is one node.
    std::vector<uint32_t> first_base;
    const graph::LocalGraph g1 = graph.splitTo1bp(&first_base);
    const uint32_t start = first_base[start_node];
    const size_t m = query.size();
    const auto n = static_cast<uint32_t>(g1.nodeCount());
    constexpr int32_t kInf = INT32_MAX / 2;

    // cost[u][i]: min edits aligning query[0..i) to a walk from `start`
    // whose last consumed graph base is node u.
    std::vector<std::vector<int32_t>> cost(
        n, std::vector<int32_t>(m + 1, kInf));

    // The virtual source S precedes `start`: C_S[i] = i (leading
    // insertions). Iterate to fixpoint (cycles need repeated rounds).
    bool changed = true;
    uint64_t cells = 0;
    while (changed) {
        changed = false;
        for (uint32_t u = 0; u < n; ++u) {
            const uint8_t base = g1.nodeSeq(u)[0];
            auto &row = cost[u];
            for (size_t i = 0; i <= m; ++i) {
                int32_t best = row[i];
                auto relax_from = [&](int32_t prev_im1, int32_t prev_i) {
                    if (i >= 1 && prev_im1 < kInf) {
                        const int32_t sub =
                            query[i - 1] == base ? 0 : 1;
                        best = std::min(best, prev_im1 + sub);
                    }
                    if (prev_i < kInf)
                        best = std::min(best, prev_i + 1); // deletion
                };
                if (u == start) {
                    relax_from(static_cast<int32_t>(i) - 1,
                               static_cast<int32_t>(i));
                }
                for (uint32_t p : g1.predecessors(u)) {
                    relax_from(i >= 1 ? cost[p][i - 1] : kInf,
                               cost[p][i]);
                }
                if (i >= 1 && row[i - 1] < kInf)
                    best = std::min(best, row[i - 1] + 1); // insertion
                ++cells;
                if (best < row[i]) {
                    row[i] = best;
                    changed = true;
                }
            }
        }
    }

    GwfaResult result;
    result.cellsComputed = cells;
    // All-insertion alignment (no graph base consumed) costs m.
    int32_t best = static_cast<int32_t>(m);
    uint32_t end_node = start_node;
    for (uint32_t u = 0; u < n; ++u) {
        if (cost[u][m] < best) {
            best = cost[u][m];
            end_node = u;
        }
    }
    result.distance = best;
    result.reached = true;
    result.endNode = end_node;
    return result;
}

} // namespace pgb::align
