/**
 * @file
 * Width-templated 16-bit SIMD vectors for the striped Smith-Waterman
 * kernels.
 *
 * Three interchangeable backends share one op vocabulary (zero/set1/
 * load/store/adds/subs/vmax/anyGt/cmpEq/cmpGt/vand/blend/shiftLanesUp/
 * lane/horizontalMax):
 *
 *  - VScalar<N>: lane-exact scalar emulation at any width. Bit-identical
 *    to the hardware backends, so the unit tests can verify the SIMD
 *    semantics on any host and the backend doubles as the "no hand
 *    vectorization" ablation (PGB_SIMD=scalar).
 *  - VSse2: 8 x int16 on SSE2 (the paper's Machine B baseline).
 *  - VAvx2: 16 x int16 on AVX2. Only visible in translation units
 *    compiled with -mavx2 (align/ssw_avx2.cpp); everything else
 *    reaches it through the runtime dispatch in align/dispatch.hpp.
 *
 * Saturation semantics are part of the contract: adds/subs clamp to
 * [INT16_MIN, INT16_MAX] in every backend, which is what lets the
 * kernels detect int16 score overflow (see align.score_saturated).
 */

#ifndef PGB_ALIGN_SIMD_HPP
#define PGB_ALIGN_SIMD_HPP

#include <array>
#include <cstdint>
#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#define PGB_HAVE_SSE2 1
#else
#define PGB_HAVE_SSE2 0
#endif

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace pgb::align {

/** Lane count of the default (8-wide) striped vector. */
constexpr int kLanes = 8;

/** Lane count of the AVX2 striped vector. */
constexpr int kLanesAvx2 = 16;

/** N x int16 vector, portable lane-exact backend. */
template <int N>
struct VScalar
{
    static constexpr int kWidth = N;

    std::array<int16_t, N> v;

    static VScalar
    zero()
    {
        VScalar out;
        out.v.fill(0);
        return out;
    }

    static VScalar
    set1(int16_t x)
    {
        VScalar out;
        out.v.fill(x);
        return out;
    }

    static VScalar
    load(const int16_t *p)
    {
        VScalar out;
        std::memcpy(out.v.data(), p, sizeof(out.v));
        return out;
    }

    void store(int16_t *p) const { std::memcpy(p, v.data(), sizeof(v)); }

    static int16_t
    sat(int32_t x)
    {
        return x > 32767 ? 32767 : (x < -32768 ? -32768 : int16_t(x));
    }

    /** Saturating add. */
    friend VScalar
    adds(VScalar a, VScalar b)
    {
        VScalar out;
        for (int i = 0; i < N; ++i)
            out.v[i] = sat(int32_t(a.v[i]) + b.v[i]);
        return out;
    }

    /** Saturating subtract. */
    friend VScalar
    subs(VScalar a, VScalar b)
    {
        VScalar out;
        for (int i = 0; i < N; ++i)
            out.v[i] = sat(int32_t(a.v[i]) - b.v[i]);
        return out;
    }

    friend VScalar
    vmax(VScalar a, VScalar b)
    {
        VScalar out;
        for (int i = 0; i < N; ++i)
            out.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
        return out;
    }

    /** True if any lane of a is strictly greater than b's lane. */
    friend bool
    anyGt(VScalar a, VScalar b)
    {
        for (int i = 0; i < N; ++i) {
            if (a.v[i] > b.v[i])
                return true;
        }
        return false;
    }

    /** Per-lane equality mask (all-ones where equal). */
    friend VScalar
    cmpEq(VScalar a, VScalar b)
    {
        VScalar out;
        for (int i = 0; i < N; ++i)
            out.v[i] = a.v[i] == b.v[i] ? int16_t(-1) : int16_t(0);
        return out;
    }

    /** Per-lane signed greater-than mask (all-ones where a > b). */
    friend VScalar
    cmpGt(VScalar a, VScalar b)
    {
        VScalar out;
        for (int i = 0; i < N; ++i)
            out.v[i] = a.v[i] > b.v[i] ? int16_t(-1) : int16_t(0);
        return out;
    }

    friend VScalar
    vand(VScalar a, VScalar b)
    {
        VScalar out;
        for (int i = 0; i < N; ++i)
            out.v[i] = static_cast<int16_t>(a.v[i] & b.v[i]);
        return out;
    }

    /** Per-lane select: mask lane all-ones picks a, zero picks b. */
    friend VScalar
    blend(VScalar mask, VScalar a, VScalar b)
    {
        VScalar out;
        for (int i = 0; i < N; ++i)
            out.v[i] = static_cast<int16_t>((mask.v[i] & a.v[i]) |
                                            (~mask.v[i] & b.v[i]));
        return out;
    }

    /** Shift all lanes up by one (lane 0 filled with @p fill). */
    VScalar
    shiftLanesUp(int16_t fill) const
    {
        VScalar out;
        out.v[0] = fill;
        for (int i = 1; i < N; ++i)
            out.v[i] = v[i - 1];
        return out;
    }

    int16_t lane(int i) const { return v[i]; }

    int16_t
    horizontalMax() const
    {
        int16_t best = v[0];
        for (int i = 1; i < N; ++i)
            best = v[i] > best ? v[i] : best;
        return best;
    }

};

#if PGB_HAVE_SSE2

/** 8 x int16 vector, SSE2 backend. */
struct VSse2
{
    static constexpr int kWidth = 8;

    __m128i v;

    static VSse2 zero() { return {_mm_setzero_si128()}; }
    static VSse2 set1(int16_t x) { return {_mm_set1_epi16(x)}; }

    static VSse2
    load(const int16_t *p)
    {
        return {_mm_loadu_si128(reinterpret_cast<const __m128i *>(p))};
    }

    void
    store(int16_t *p) const
    {
        _mm_storeu_si128(reinterpret_cast<__m128i *>(p), v);
    }

    /** Saturating add. */
    friend VSse2
    adds(VSse2 a, VSse2 b)
    {
        return {_mm_adds_epi16(a.v, b.v)};
    }

    /** Saturating subtract. */
    friend VSse2
    subs(VSse2 a, VSse2 b)
    {
        return {_mm_subs_epi16(a.v, b.v)};
    }

    friend VSse2
    vmax(VSse2 a, VSse2 b)
    {
        return {_mm_max_epi16(a.v, b.v)};
    }

    /** True if any lane of a is strictly greater than b's lane. */
    friend bool
    anyGt(VSse2 a, VSse2 b)
    {
        return _mm_movemask_epi8(_mm_cmpgt_epi16(a.v, b.v)) != 0;
    }

    /** Per-lane equality mask (all-ones where equal). */
    friend VSse2
    cmpEq(VSse2 a, VSse2 b)
    {
        return {_mm_cmpeq_epi16(a.v, b.v)};
    }

    /** Per-lane signed greater-than mask (all-ones where a > b). */
    friend VSse2
    cmpGt(VSse2 a, VSse2 b)
    {
        return {_mm_cmpgt_epi16(a.v, b.v)};
    }

    friend VSse2
    vand(VSse2 a, VSse2 b)
    {
        return {_mm_and_si128(a.v, b.v)};
    }

    /** Per-lane select: mask lane all-ones picks a, zero picks b. */
    friend VSse2
    blend(VSse2 mask, VSse2 a, VSse2 b)
    {
        return {_mm_or_si128(_mm_and_si128(mask.v, a.v),
                             _mm_andnot_si128(mask.v, b.v))};
    }

    /** Shift all lanes up by one (lane 0 filled with @p fill). */
    VSse2
    shiftLanesUp(int16_t fill) const
    {
        VSse2 out{_mm_slli_si128(v, 2)};
        out = {_mm_insert_epi16(out.v, fill, 0)};
        return out;
    }

    int16_t
    lane(int i) const
    {
        alignas(16) int16_t tmp[kWidth];
        _mm_store_si128(reinterpret_cast<__m128i *>(tmp), v);
        return tmp[i];
    }

    /**
     * Maximum lane value. log2(kWidth) shuffle/max rounds keep the
     * reduction in registers instead of bouncing through the stack —
     * this sits on the striped-SW inner loop.
     */
    int16_t
    horizontalMax() const
    {
        __m128i m = _mm_max_epi16(v, _mm_srli_si128(v, 8));
        m = _mm_max_epi16(m, _mm_srli_si128(m, 4));
        m = _mm_max_epi16(m, _mm_srli_si128(m, 2));
        return static_cast<int16_t>(_mm_extract_epi16(m, 0));
    }

};

#endif // PGB_HAVE_SSE2

#if defined(__AVX2__)

/** 16 x int16 vector, AVX2 backend (ssw_avx2.cpp only). */
struct VAvx2
{
    static constexpr int kWidth = 16;

    __m256i v;

    static VAvx2 zero() { return {_mm256_setzero_si256()}; }
    static VAvx2 set1(int16_t x) { return {_mm256_set1_epi16(x)}; }

    static VAvx2
    load(const int16_t *p)
    {
        return {_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(p))};
    }

    void
    store(int16_t *p) const
    {
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
    }

    /** Saturating add. */
    friend VAvx2
    adds(VAvx2 a, VAvx2 b)
    {
        return {_mm256_adds_epi16(a.v, b.v)};
    }

    /** Saturating subtract. */
    friend VAvx2
    subs(VAvx2 a, VAvx2 b)
    {
        return {_mm256_subs_epi16(a.v, b.v)};
    }

    friend VAvx2
    vmax(VAvx2 a, VAvx2 b)
    {
        return {_mm256_max_epi16(a.v, b.v)};
    }

    /** True if any lane of a is strictly greater than b's lane. */
    friend bool
    anyGt(VAvx2 a, VAvx2 b)
    {
        return _mm256_movemask_epi8(_mm256_cmpgt_epi16(a.v, b.v)) != 0;
    }

    /** Per-lane equality mask (all-ones where equal). */
    friend VAvx2
    cmpEq(VAvx2 a, VAvx2 b)
    {
        return {_mm256_cmpeq_epi16(a.v, b.v)};
    }

    /** Per-lane signed greater-than mask (all-ones where a > b). */
    friend VAvx2
    cmpGt(VAvx2 a, VAvx2 b)
    {
        return {_mm256_cmpgt_epi16(a.v, b.v)};
    }

    friend VAvx2
    vand(VAvx2 a, VAvx2 b)
    {
        return {_mm256_and_si256(a.v, b.v)};
    }

    /** Per-lane select: mask lane all-ones picks a, zero picks b. */
    friend VAvx2
    blend(VAvx2 mask, VAvx2 a, VAvx2 b)
    {
        return {_mm256_blendv_epi8(b.v, a.v, mask.v)};
    }

    /** Shift all lanes up by one (lane 0 filled with @p fill). */
    VAvx2
    shiftLanesUp(int16_t fill) const
    {
        // Byte-shift across the 128-bit halves: carry = [0, low half],
        // then align so the low half's top bytes enter the high half.
        const __m256i carry = _mm256_permute2x128_si256(v, v, 0x08);
        VAvx2 out{_mm256_alignr_epi8(v, carry, 14)};
        out = {_mm256_insert_epi16(out.v, fill, 0)};
        return out;
    }

    int16_t
    lane(int i) const
    {
        alignas(32) int16_t tmp[kWidth];
        _mm256_store_si256(reinterpret_cast<__m256i *>(tmp), v);
        return tmp[i];
    }

    int16_t
    horizontalMax() const
    {
        __m128i m = _mm_max_epi16(_mm256_castsi256_si128(v),
                                  _mm256_extracti128_si256(v, 1));
        m = _mm_max_epi16(m, _mm_srli_si128(m, 8));
        m = _mm_max_epi16(m, _mm_srli_si128(m, 4));
        m = _mm_max_epi16(m, _mm_srli_si128(m, 2));
        return static_cast<int16_t>(_mm_extract_epi16(m, 0));
    }

};

#endif // __AVX2__

/** Default 8-lane vector (SSE2 when the build has it). */
#if PGB_HAVE_SSE2
using V8i16 = VSse2;
#else
using V8i16 = VScalar<8>;
#endif

} // namespace pgb::align

#endif // PGB_ALIGN_SIMD_HPP
