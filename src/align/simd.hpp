/**
 * @file
 * 8-lane 16-bit SIMD vector used by the striped Smith-Waterman kernels.
 *
 * V8i16 wraps SSE2 when available and a lane-exact scalar emulation
 * otherwise. Both backends produce bit-identical results, so the unit
 * tests can verify the SIMD semantics on any host, and the scalar
 * backend doubles as the "no hand vectorization" ablation.
 */

#ifndef PGB_ALIGN_SIMD_HPP
#define PGB_ALIGN_SIMD_HPP

#include <array>
#include <cstdint>
#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#define PGB_HAVE_SSE2 1
#else
#define PGB_HAVE_SSE2 0
#endif

namespace pgb::align {

/** Number of 16-bit lanes per vector. */
constexpr int kLanes = 8;

#if PGB_HAVE_SSE2

/** 8 x int16 vector, SSE2 backend. */
struct V8i16
{
    __m128i v;

    static V8i16 zero() { return {_mm_setzero_si128()}; }
    static V8i16 set1(int16_t x) { return {_mm_set1_epi16(x)}; }

    static V8i16
    load(const int16_t *p)
    {
        return {_mm_loadu_si128(reinterpret_cast<const __m128i *>(p))};
    }

    void
    store(int16_t *p) const
    {
        _mm_storeu_si128(reinterpret_cast<__m128i *>(p), v);
    }

    /** Saturating add. */
    friend V8i16
    adds(V8i16 a, V8i16 b)
    {
        return {_mm_adds_epi16(a.v, b.v)};
    }

    /** Saturating subtract. */
    friend V8i16
    subs(V8i16 a, V8i16 b)
    {
        return {_mm_subs_epi16(a.v, b.v)};
    }

    friend V8i16
    vmax(V8i16 a, V8i16 b)
    {
        return {_mm_max_epi16(a.v, b.v)};
    }

    /** True if any lane of a is strictly greater than b's lane. */
    friend bool
    anyGt(V8i16 a, V8i16 b)
    {
        return _mm_movemask_epi8(_mm_cmpgt_epi16(a.v, b.v)) != 0;
    }

    /** Shift all lanes up by one (lane 0 filled with @p fill). */
    V8i16
    shiftLanesUp(int16_t fill) const
    {
        V8i16 out{_mm_slli_si128(v, 2)};
        out = {_mm_insert_epi16(out.v, fill, 0)};
        return out;
    }

    int16_t
    lane(int i) const
    {
        alignas(16) int16_t tmp[kLanes];
        _mm_store_si128(reinterpret_cast<__m128i *>(tmp), v);
        return tmp[i];
    }

    /**
     * Maximum lane value. log2(kLanes) shuffle/max rounds keep the
     * reduction in registers instead of bouncing through the stack —
     * this sits on the striped-SW inner loop.
     */
    int16_t
    horizontalMax() const
    {
        __m128i m = _mm_max_epi16(v, _mm_srli_si128(v, 8));
        m = _mm_max_epi16(m, _mm_srli_si128(m, 4));
        m = _mm_max_epi16(m, _mm_srli_si128(m, 2));
        return static_cast<int16_t>(_mm_extract_epi16(m, 0));
    }
};

#else // !PGB_HAVE_SSE2

/** 8 x int16 vector, portable lane-exact backend. */
struct V8i16
{
    std::array<int16_t, kLanes> v;

    static V8i16 zero() { return {{0, 0, 0, 0, 0, 0, 0, 0}}; }

    static V8i16
    set1(int16_t x)
    {
        V8i16 out;
        out.v.fill(x);
        return out;
    }

    static V8i16
    load(const int16_t *p)
    {
        V8i16 out;
        std::memcpy(out.v.data(), p, sizeof(out.v));
        return out;
    }

    void store(int16_t *p) const { std::memcpy(p, v.data(), sizeof(v)); }

    static int16_t
    sat(int32_t x)
    {
        return x > 32767 ? 32767 : (x < -32768 ? -32768 : int16_t(x));
    }

    friend V8i16
    adds(V8i16 a, V8i16 b)
    {
        V8i16 out;
        for (int i = 0; i < kLanes; ++i)
            out.v[i] = sat(int32_t(a.v[i]) + b.v[i]);
        return out;
    }

    friend V8i16
    subs(V8i16 a, V8i16 b)
    {
        V8i16 out;
        for (int i = 0; i < kLanes; ++i)
            out.v[i] = sat(int32_t(a.v[i]) - b.v[i]);
        return out;
    }

    friend V8i16
    vmax(V8i16 a, V8i16 b)
    {
        V8i16 out;
        for (int i = 0; i < kLanes; ++i)
            out.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
        return out;
    }

    friend bool
    anyGt(V8i16 a, V8i16 b)
    {
        for (int i = 0; i < kLanes; ++i) {
            if (a.v[i] > b.v[i])
                return true;
        }
        return false;
    }

    V8i16
    shiftLanesUp(int16_t fill) const
    {
        V8i16 out;
        out.v[0] = fill;
        for (int i = 1; i < kLanes; ++i)
            out.v[i] = v[i - 1];
        return out;
    }

    int16_t lane(int i) const { return v[i]; }

    int16_t
    horizontalMax() const
    {
        int16_t best = v[0];
        for (int i = 1; i < kLanes; ++i)
            best = v[i] > best ? v[i] : best;
        return best;
    }
};

#endif // PGB_HAVE_SSE2

} // namespace pgb::align

#endif // PGB_ALIGN_SIMD_HPP
