#include "align/ssw_batch.hpp"

#include "core/logging.hpp"
#include "core/thread_pool.hpp"

namespace pgb::align {

namespace detail {

void
sswAlignBatchPack(std::span<const BatchJob> jobs,
                  std::span<const uint32_t> lane_jobs,
                  const ScoreParams &params, std::span<LocalHit> results)
{
    switch (activeSimdLevel()) {
      case SimdLevel::kScalar:
        sswAlignBatchPackT<VScalar<8>>(jobs, lane_jobs, params, results);
        return;
#if defined(PGB_HAVE_AVX2_BUILD)
      case SimdLevel::kAvx2:
        sswAlignBatchPackAvx2(jobs, lane_jobs, params, results);
        return;
#endif
      default:
        sswAlignBatchPackT<V8i16>(jobs, lane_jobs, params, results);
        return;
    }
}

} // namespace detail

void
sswAlignBatch(std::span<const BatchJob> jobs, const ScoreParams &params,
              std::span<LocalHit> results, unsigned threads)
{
    if (results.size() < jobs.size())
        core::fatal("sswAlignBatch: results span too small");
    if (jobs.empty())
        return;

    // Split oversized jobs out (per-job striped fallback) and sort the
    // rest by query length, longest first, index-stable — packs then
    // hold similar-length reads and are independent of thread count.
    std::vector<uint32_t> packable;
    std::vector<uint32_t> oversized;
    packable.reserve(jobs.size());
    for (uint32_t i = 0; i < jobs.size(); ++i) {
        const BatchJob &job = jobs[i];
        if (job.query.size() > kBatchMaxLen ||
            job.reference.size() > kBatchMaxLen) {
            oversized.push_back(i);
        } else {
            packable.push_back(i);
        }
    }
    std::stable_sort(packable.begin(), packable.end(),
                     [&jobs](uint32_t a, uint32_t b) {
                         return jobs[a].query.size() >
                                jobs[b].query.size();
                     });

    const auto lanes = static_cast<size_t>(simdDispatchLanes());
    const size_t n_packs = (packable.size() + lanes - 1) / lanes;
    core::parallelFor(0, n_packs, threads, [&](size_t p) {
        const size_t begin = p * lanes;
        const size_t count = std::min(lanes, packable.size() - begin);
        detail::sswAlignBatchPack(
            jobs, std::span<const uint32_t>(packable).subspan(begin, count),
            params, results);
    });

    for (uint32_t i : oversized) {
        const BatchJob &job = jobs[i];
        results[i] = job.query.empty()
                         ? LocalHit{}
                         : sswAlign(job.query, job.reference, params);
    }
}

} // namespace pgb::align
