/**
 * @file
 * Inter-sequence batched Smith-Waterman: one SIMD pass aligns 8 (SSE2)
 * or 16 (AVX2) independent (query, reference) pairs, one pair per
 * lane.
 *
 * The striped kernel (align/ssw.hpp) vectorizes *within* one
 * alignment and pays for it with the lazy-F repair loop and a
 * horizontal max per column. When the mapper has a whole batch of
 * short reads, packing different reads into the lanes removes both:
 * every lane runs the textbook column-major recurrence independently,
 * F is exact in-loop, and there is no horizontal reduction until the
 * very end. Jobs are bucketed by query length (longest first) so the
 * lanes of a pack run out of rows together and padding work stays
 * small.
 *
 * Results are bit-identical to per-job sswAlign(): same saturating
 * int16 arithmetic, same first-(column, row) tie-breaking for the
 * reported maximum. Packs are formed by a deterministic sort, so the
 * output is also independent of the thread count.
 *
 * Lane bookkeeping (row/column indices) uses int16 vectors; jobs
 * longer than kBatchMaxLen on either side fall back to per-job
 * sswAlign.
 */

#ifndef PGB_ALIGN_SSW_BATCH_HPP
#define PGB_ALIGN_SSW_BATCH_HPP

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "align/dispatch.hpp"
#include "align/score.hpp"
#include "align/simd.hpp"
#include "align/ssw.hpp"
#include "core/scratch.hpp"
#include "seq/alphabet.hpp"

namespace pgb::align {

/** One independent (query, reference) alignment of a batch. */
struct BatchJob
{
    std::span<const uint8_t> query;
    std::span<const uint8_t> reference;
};

/** Longest sequence the packed kernel's int16 indices can address. */
constexpr size_t kBatchMaxLen = 30000;

namespace detail {

/**
 * Lane codes chosen so a single cmpEq decides match/mismatch:
 * real bases keep 0..3; query N and query padding map to 4; reference
 * N maps to 5 and reference padding to 6, so no padded or ambiguous
 * cell can ever compare equal.
 */
constexpr int16_t kQueryPadCode = 4;
constexpr int16_t kRefNCode = 5;
constexpr int16_t kRefPadCode = 6;

/** Thread-local buffers of the packed kernel. */
struct BatchScratch
{
    std::vector<int16_t> qcodes; ///< m_max x W interleaved query codes
    std::vector<int16_t> rcodes; ///< n_max x W interleaved ref codes
    std::vector<int16_t> h;      ///< (m_max+1) x W running H column
    std::vector<int16_t> e;      ///< (m_max+1) x W running E column
};

/**
 * Align up to Vec::kWidth jobs — @p lane_jobs indexes into @p jobs —
 * in one packed pass, writing results[lane_jobs[k]].
 */
template <typename Vec>
void
sswAlignBatchPackT(std::span<const BatchJob> jobs,
                   std::span<const uint32_t> lane_jobs,
                   const ScoreParams &params, std::span<LocalHit> results)
{
    constexpr int kW = Vec::kWidth;
    const int n_lanes = static_cast<int>(lane_jobs.size());

    size_t m_max = 0, n_max = 0;
    alignas(32) int16_t qlen16[kW] = {};
    alignas(32) int16_t rlen16[kW] = {};
    for (int k = 0; k < n_lanes; ++k) {
        const BatchJob &job = jobs[lane_jobs[k]];
        m_max = std::max(m_max, job.query.size());
        n_max = std::max(n_max, job.reference.size());
        qlen16[k] = static_cast<int16_t>(job.query.size());
        rlen16[k] = static_cast<int16_t>(job.reference.size());
    }
    for (int k = 0; k < n_lanes; ++k)
        results[lane_jobs[k]] = LocalHit{};
    if (m_max == 0 || n_max == 0)
        return;

    BatchScratch &ws = core::threadScratch<BatchScratch>();
    ws.qcodes.assign(m_max * kW, kQueryPadCode);
    ws.rcodes.assign(n_max * kW, kRefPadCode);
    for (int k = 0; k < n_lanes; ++k) {
        const BatchJob &job = jobs[lane_jobs[k]];
        for (size_t i = 0; i < job.query.size(); ++i) {
            const uint8_t q = job.query[i];
            ws.qcodes[i * kW + k] =
                q < seq::kNumBases ? static_cast<int16_t>(q)
                                   : kQueryPadCode;
        }
        for (size_t j = 0; j < job.reference.size(); ++j) {
            const uint8_t r = job.reference[j];
            ws.rcodes[j * kW + k] =
                r < seq::kNumBases ? static_cast<int16_t>(r) : kRefNCode;
        }
    }
    ws.h.assign((m_max + 1) * kW, 0);
    ws.e.assign((m_max + 1) * kW, kNegInf16);
    int16_t *h_arr = ws.h.data();
    int16_t *e_arr = ws.e.data();

    const Vec v_zero = Vec::zero();
    const Vec v_open = Vec::set1(params.gapOpen);
    const Vec v_ext = Vec::set1(params.gapExtend);
    const Vec v_match = Vec::set1(params.match);
    const Vec v_mismatch = Vec::set1(
        static_cast<int16_t>(-params.mismatch));
    const Vec v_qlen = Vec::load(qlen16);
    const Vec v_rlen = Vec::load(rlen16);

    Vec v_best = v_zero;
    Vec v_qend = Vec::set1(-1);
    Vec v_rend = Vec::set1(-1);

    for (size_t j = 0; j < n_max; ++j) {
        const Vec v_j = Vec::set1(static_cast<int16_t>(j));
        // Lane valid while j < rlen (all-ones mask).
        const Vec col_valid = cmpGt(v_rlen, v_j);
        const Vec v_r = Vec::load(ws.rcodes.data() + j * kW);
        Vec v_h_diag = v_zero;  // H(i-1, j-1); boundary row is 0
        Vec v_h_above = v_zero; // H(i-1, j)
        Vec v_f = Vec::set1(kNegInf16);
        for (size_t i = 1; i <= m_max; ++i) {
            // E(i,j) = max(E(i,j-1) - ext, H(i,j-1) - open), in place.
            const Vec v_e = vmax(subs(Vec::load(e_arr + i * kW), v_ext),
                                 subs(Vec::load(h_arr + i * kW), v_open));
            v_e.store(e_arr + i * kW);
            v_f = vmax(subs(v_f, v_ext), subs(v_h_above, v_open));
            const Vec v_q = Vec::load(ws.qcodes.data() + (i - 1) * kW);
            const Vec v_sub = blend(cmpEq(v_q, v_r), v_match, v_mismatch);
            Vec v_score = vmax(adds(v_h_diag, v_sub), v_e);
            v_score = vmax(v_score, vmax(v_f, v_zero));
            v_h_diag = Vec::load(h_arr + i * kW);
            v_score.store(h_arr + i * kW);
            v_h_above = v_score;

            // Track the first strictly-greater cell in (j, i) order —
            // exactly sswAlign's tie-breaking. Padded cells decay and
            // cannot win, but mask them anyway so degenerate scoring
            // parameters (zero penalties) stay exact.
            const Vec v_im1 = Vec::set1(static_cast<int16_t>(i - 1));
            const Vec valid = vand(col_valid, cmpGt(v_qlen, v_im1));
            const Vec upd = vand(cmpGt(v_score, v_best), valid);
            v_best = blend(upd, v_score, v_best);
            v_qend = blend(upd, v_im1, v_qend);
            v_rend = blend(upd, v_j, v_rend);
        }
    }

    for (int k = 0; k < n_lanes; ++k) {
        LocalHit &hit = results[lane_jobs[k]];
        hit.score = v_best.lane(k);
        hit.queryEnd = v_qend.lane(k);
        hit.refEnd = v_rend.lane(k);
        if (hit.score >= kScoreSaturated)
            noteScoreSaturation();
    }
}

#if defined(PGB_HAVE_AVX2_BUILD)
/** 16-lane pack kernel, compiled with -mavx2 (align/ssw_avx2.cpp). */
void sswAlignBatchPackAvx2(std::span<const BatchJob> jobs,
                           std::span<const uint32_t> lane_jobs,
                           const ScoreParams &params,
                           std::span<LocalHit> results);
#endif

/** Run one pack at the active SIMD level. */
void sswAlignBatchPack(std::span<const BatchJob> jobs,
                       std::span<const uint32_t> lane_jobs,
                       const ScoreParams &params,
                       std::span<LocalHit> results);

} // namespace detail

/**
 * Align every job of @p jobs independently, packing
 * simdDispatchLanes() jobs per SIMD pass. results[i] corresponds to
 * jobs[i] and is bit-identical to sswAlign(jobs[i].query,
 * jobs[i].reference, params). Packs run in parallel over @p threads;
 * pack formation is deterministic, so results do not depend on the
 * thread count.
 */
void sswAlignBatch(std::span<const BatchJob> jobs,
                   const ScoreParams &params, std::span<LocalHit> results,
                   unsigned threads = 1);

} // namespace pgb::align

#endif // PGB_ALIGN_SSW_BATCH_HPP
