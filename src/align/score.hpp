/**
 * @file
 * Shared scoring parameters and alignment result types.
 */

#ifndef PGB_ALIGN_SCORE_HPP
#define PGB_ALIGN_SCORE_HPP

#include <cstdint>
#include <limits>

namespace pgb::align {

/**
 * Affine-gap scoring for Smith-Waterman-family kernels. Positive
 * match, non-negative penalties (applied as subtraction).
 */
struct ScoreParams
{
    int16_t match = 1;
    int16_t mismatch = 4;
    int16_t gapOpen = 6;   ///< cost of the first gap base (incl. extend)
    int16_t gapExtend = 1;

    /** vg/bwa-like defaults. */
    static ScoreParams
    mappingDefaults()
    {
        return {1, 4, 6, 1};
    }
};

/** Local alignment result (score and end coordinates). */
struct LocalHit
{
    int32_t score = 0;
    int32_t queryEnd = -1; ///< inclusive query index of the maximum
    int32_t refEnd = -1;   ///< inclusive reference index of the maximum
};

/** Graph local alignment result. */
struct GraphLocalHit
{
    int32_t score = 0;
    int32_t queryEnd = -1;
    uint32_t node = 0;      ///< node containing the maximum
    int32_t nodeOffset = -1;
};

/** Edit-distance style result for wavefront kernels. */
struct EditHit
{
    int32_t distance = std::numeric_limits<int32_t>::max();
    bool reached = false;
};

} // namespace pgb::align

#endif // PGB_ALIGN_SCORE_HPP
