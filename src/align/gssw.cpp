#include "align/gssw.hpp"

#include <algorithm>
#include <climits>

namespace pgb::align {

namespace detail {

GsswWorkspace &
gsswWorkspace()
{
    return core::threadScratch<GsswWorkspace>();
}

} // namespace detail

GsswResult
gsswAlign(const graph::LocalGraph &graph, std::span<const uint8_t> query,
          const ScoreParams &params, const GsswOptions &options)
{
    core::NullProbe probe;
    return gsswAlign(graph, query, params, options, probe);
}

GraphLocalHit
gsswAlignScalar(const graph::LocalGraph &graph,
                std::span<const uint8_t> query, const ScoreParams &params)
{
    if (!graph.isDag())
        core::fatal("gsswAlignScalar: graph must be acyclic");
    const size_t m = query.size();
    constexpr int32_t kNegInf32 = INT_MIN / 2;

    // Final column (H, E) per node, rows 1..m (index 0 = boundary).
    struct Column
    {
        std::vector<int32_t> h, e;
    };
    std::vector<Column> finals(graph.nodeCount());

    GraphLocalHit best;
    for (uint32_t node : graph.topoOrder()) {
        Column cur;
        cur.h.assign(m + 1, 0);
        cur.e.assign(m + 1, kNegInf32);
        const auto preds = graph.predecessors(node);
        for (uint32_t pred : preds) {
            const Column &fin = finals[pred];
            for (size_t i = 1; i <= m; ++i) {
                cur.h[i] = std::max(cur.h[i], fin.h[i]);
                cur.e[i] = std::max(cur.e[i], fin.e[i]);
            }
        }
        if (preds.empty()) {
            // Fresh local-alignment start: H = 0, E = -inf.
            std::fill(cur.h.begin(), cur.h.end(), 0);
        }

        const auto &bases = graph.nodeSeq(node);
        for (size_t j = 0; j < bases.size(); ++j) {
            const uint8_t ref_base = bases[j];
            int32_t h_diag = 0;  // H(0, prev col) boundary
            int32_t h_above = 0; // H(i-1, current col)
            int32_t f = kNegInf32;
            for (size_t i = 1; i <= m; ++i) {
                const bool is_match = query[i - 1] == ref_base &&
                                      query[i - 1] < seq::kNumBases;
                const int32_t sub = is_match ? params.match
                                             : -params.mismatch;
                cur.e[i] = std::max(cur.e[i] - params.gapExtend,
                                    cur.h[i] - params.gapOpen);
                f = std::max(f - params.gapExtend,
                             h_above - params.gapOpen);
                const int32_t score =
                    std::max({h_diag + sub, cur.e[i], f, 0});
                h_diag = cur.h[i];
                cur.h[i] = score;
                h_above = score;
                if (score > best.score) {
                    best.score = score;
                    best.queryEnd = static_cast<int32_t>(i) - 1;
                    best.node = node;
                    best.nodeOffset = static_cast<int32_t>(j);
                }
            }
        }
        finals[node] = std::move(cur);
    }
    return best;
}

namespace {

/** Append to a CIGAR being built in reverse (coalesces runs). */
void
pushOp(std::vector<CigarEntry> &cigar, char op, uint32_t length = 1)
{
    if (!cigar.empty() && cigar.back().op == op)
        cigar.back().length += length;
    else
        cigar.push_back({op, length});
}

} // namespace

GsswAlignment
gsswTraceback(const graph::LocalGraph &graph,
              std::span<const uint8_t> query, const ScoreParams &params,
              const GsswResult &result)
{
    if (result.matrices.empty())
        core::fatal("gsswTraceback: gsswAlign must keep matrices");
    if (result.best.queryEnd < 0)
        core::fatal("gsswTraceback: no alignment to trace");

    // H lookup over the retained matrices; row -1 is the local-
    // alignment boundary (zero). Handles both layouts (see
    // GsswMatrixLayout).
    auto h_at = [&](uint32_t node, int32_t i, int32_t j) -> int32_t {
        if (i < 0)
            return 0;
        if (result.matrixLayout == GsswMatrixLayout::kStriped) {
            const auto s = static_cast<size_t>(result.matrixSegLen);
            const auto w = static_cast<size_t>(result.matrixLanes);
            const auto row = static_cast<size_t>(i);
            return result.matrices[node][static_cast<size_t>(j) * s * w +
                                         (row % s) * w + row / s];
        }
        const auto len =
            static_cast<int32_t>(graph.nodeLength(node));
        return result.matrices[node][static_cast<size_t>(i) *
                                         static_cast<size_t>(len) +
                                     static_cast<size_t>(j)];
    };
    // Cells feeding column j of `node` horizontally: (node, j-1), or
    // every predecessor's last column when j == 0.
    struct PrevCell
    {
        uint32_t node;
        int32_t column;
    };
    auto prev_cells = [&](uint32_t node, int32_t j) {
        std::vector<PrevCell> cells;
        if (j > 0) {
            cells.push_back({node, j - 1});
        } else {
            for (uint32_t pred : graph.predecessors(node)) {
                cells.push_back(
                    {pred,
                     static_cast<int32_t>(graph.nodeLength(pred)) - 1});
            }
        }
        return cells;
    };

    GsswAlignment out;
    out.score = result.best.score;
    out.queryEnd = result.best.queryEnd;

    uint32_t node = result.best.node;
    int32_t i = result.best.queryEnd;
    int32_t j = result.best.nodeOffset;
    out.nodeWalk.push_back(node);

    std::vector<CigarEntry> reversed;
    std::vector<uint8_t> ref_reversed;
    int32_t cur = h_at(node, i, j);

    while (cur > 0) {
        const uint8_t ref_base = graph.nodeSeq(node)[
            static_cast<size_t>(j)];
        const bool is_match =
            query[static_cast<size_t>(i)] == ref_base &&
            query[static_cast<size_t>(i)] < seq::kNumBases;
        const int32_t sub =
            is_match ? params.match : -params.mismatch;

        // --- Diagonal (match/mismatch).
        bool moved = false;
        for (const PrevCell &prev : prev_cells(node, j)) {
            const int32_t prev_h = h_at(prev.node, i - 1, prev.column);
            if (prev_h + sub != cur)
                continue;
            pushOp(reversed, is_match ? '=' : 'X');
            ref_reversed.push_back(ref_base);
            if (prev.node != node) {
                node = prev.node;
                out.nodeWalk.push_back(node);
            }
            j = prev.column;
            --i;
            cur = prev_h;
            moved = true;
            break;
        }
        // Diagonal from the local-alignment start (H = 0 boundary).
        if (!moved && sub == cur && i >= 0) {
            pushOp(reversed, is_match ? '=' : 'X');
            ref_reversed.push_back(ref_base);
            --i;
            cur = 0;
            break;
        }
        if (moved)
            continue;

        // --- Insertion run (query bases consumed, same column).
        for (int32_t k = 1; !moved && k <= i + 1; ++k) {
            const int32_t cost =
                params.gapOpen + (k - 1) * params.gapExtend;
            const int32_t prev_h = h_at(node, i - k, j);
            if (prev_h - cost == cur && prev_h > 0) {
                pushOp(reversed, 'I', static_cast<uint32_t>(k));
                i -= k;
                cur = prev_h;
                moved = true;
            }
        }
        if (moved)
            continue;

        // --- Deletion run (graph bases consumed, same query row):
        // walk columns backward, possibly across node boundaries.
        {
            struct State
            {
                uint32_t node;
                int32_t column;
                uint32_t length;
                // Reversed-by-construction bases and the node hops.
                std::vector<uint8_t> bases;
                std::vector<uint32_t> hops;
            };
            std::vector<State> frontier;
            frontier.push_back({node, j, 0, {}, {}});
            constexpr uint32_t kMaxGap = 4096;
            while (!frontier.empty() && !moved) {
                std::vector<State> next;
                for (State &state : frontier) {
                    if (state.length >= kMaxGap)
                        continue;
                    for (const PrevCell &prev :
                         prev_cells(state.node, state.column)) {
                        State cand = state;
                        cand.bases.push_back(
                            graph.nodeSeq(state.node)[
                                static_cast<size_t>(state.column)]);
                        if (prev.node != state.node)
                            cand.hops.push_back(prev.node);
                        cand.node = prev.node;
                        cand.column = prev.column;
                        ++cand.length;
                        const int32_t cost = params.gapOpen +
                            static_cast<int32_t>(cand.length - 1) *
                                params.gapExtend;
                        const int32_t prev_h =
                            h_at(cand.node, i, cand.column);
                        if (prev_h - cost == cur && prev_h > 0) {
                            pushOp(reversed, 'D', cand.length);
                            ref_reversed.insert(ref_reversed.end(),
                                                cand.bases.begin(),
                                                cand.bases.end());
                            for (uint32_t hop : cand.hops)
                                out.nodeWalk.push_back(hop);
                            node = cand.node;
                            j = cand.column;
                            cur = prev_h;
                            moved = true;
                            break;
                        }
                        next.push_back(std::move(cand));
                    }
                    if (moved)
                        break;
                }
                frontier = std::move(next);
            }
        }
        if (!moved) {
            core::panic("gsswTraceback: no predecessor explains H=",
                        cur, " at node ", node, " i=", i, " j=", j);
        }
    }

    out.queryStart = i + 1;
    out.cigar.assign(reversed.rbegin(), reversed.rend());
    out.referenceBases.assign(ref_reversed.rbegin(),
                              ref_reversed.rend());
    std::reverse(out.nodeWalk.begin(), out.nodeWalk.end());
    return out;
}

} // namespace pgb::align
