/**
 * @file
 * Runtime SIMD dispatch for the striped alignment kernels.
 *
 * The build compiles every kernel at the widths the compiler supports
 * (scalar and SSE2 everywhere; AVX2 in the separate -mavx2 translation
 * unit align/ssw_avx2.cpp when the toolchain has the flag). At runtime
 * the widest level the CPU supports is picked once via cpuid and cached;
 * the PGB_SIMD environment variable (scalar|sse2|avx2) overrides the
 * choice for ablations and tests. Requests the host or build cannot
 * honor degrade to the best available level with a warning.
 *
 * Every backend is lane-exact (see align/simd.hpp) and the kernels'
 * result recovery is layout-invariant, so mapping output is
 * bit-identical at every level — the golden digests enforce this.
 *
 * The chosen level is published as the obs gauge `align.simd_level`
 * (0 scalar, 1 sse2, 2 avx2) so --metrics output and bench JSONs are
 * self-describing.
 */

#ifndef PGB_ALIGN_DISPATCH_HPP
#define PGB_ALIGN_DISPATCH_HPP

namespace pgb::align {

/** SIMD level, ordered by width. */
enum class SimdLevel
{
    kScalar = 0, ///< lane-exact scalar emulation (8 lanes)
    kSse2 = 1,   ///< 8 x int16 hardware vectors
    kAvx2 = 2,   ///< 16 x int16 hardware vectors
};

/** The level the kernels dispatch to (cached after the first call). */
SimdLevel activeSimdLevel();

/** Lane count of striped profiles built for @p level. */
inline int
simdLevelLanes(SimdLevel level)
{
    return level == SimdLevel::kAvx2 ? 16 : 8;
}

/** Lane count of the active level's striped profiles. */
inline int
simdDispatchLanes()
{
    return simdLevelLanes(activeSimdLevel());
}

/** Stable lowercase name ("scalar" | "sse2" | "avx2"). */
const char *simdLevelName(SimdLevel level);

/** True when the host CPU executes AVX2 (independent of PGB_SIMD). */
bool cpuSupportsAvx2();

/**
 * Drop the cached level so the next activeSimdLevel() re-reads
 * PGB_SIMD and cpuid. Test hook: production code never changes the
 * environment mid-process.
 */
void refreshSimdLevel();

} // namespace pgb::align

#endif // PGB_ALIGN_DISPATCH_HPP
