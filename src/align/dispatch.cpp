#include "align/dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "core/logging.hpp"
#include "obs/metrics.hpp"

namespace pgb::align {

namespace {

obs::Gauge gSimdLevel("align.simd_level");

/** -1 = not yet detected; otherwise a SimdLevel value. */
std::atomic<int> cachedLevel{-1};

bool
cpuHasAvx2()
{
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

constexpr bool
buildHasAvx2()
{
#if defined(PGB_HAVE_AVX2_BUILD)
    return true;
#else
    return false;
#endif
}

constexpr bool
buildHasSse2()
{
#if defined(__SSE2__)
    return true;
#else
    return false;
#endif
}

SimdLevel
bestAvailable()
{
    if (buildHasAvx2() && cpuHasAvx2())
        return SimdLevel::kAvx2;
    if (buildHasSse2())
        return SimdLevel::kSse2;
    return SimdLevel::kScalar;
}

SimdLevel
detectLevel()
{
    const SimdLevel best = bestAvailable();
    const char *env = std::getenv("PGB_SIMD");
    if (env == nullptr || *env == '\0')
        return best;
    if (std::strcmp(env, "scalar") == 0)
        return SimdLevel::kScalar;
    if (std::strcmp(env, "sse2") == 0) {
        if (best < SimdLevel::kSse2) {
            core::warn("PGB_SIMD=sse2 requested but this build has no "
                       "SSE2; using the lane-exact scalar backend");
            return SimdLevel::kScalar;
        }
        return SimdLevel::kSse2;
    }
    if (std::strcmp(env, "avx2") == 0) {
        if (best < SimdLevel::kAvx2) {
            core::warn("PGB_SIMD=avx2 requested but ",
                       buildHasAvx2() ? "this CPU does not support it"
                                      : "this build has no AVX2 "
                                        "translation unit",
                       "; falling back to ", simdLevelName(best));
            return best;
        }
        return SimdLevel::kAvx2;
    }
    core::warn("unknown PGB_SIMD value '", env,
               "' (expected scalar|sse2|avx2); auto-detecting");
    return best;
}

} // namespace

bool
cpuSupportsAvx2()
{
    return cpuHasAvx2();
}

SimdLevel
activeSimdLevel()
{
    int level = cachedLevel.load(std::memory_order_acquire);
    if (level < 0) {
        level = static_cast<int>(detectLevel());
        cachedLevel.store(level, std::memory_order_release);
        gSimdLevel.set(level);
    }
    return static_cast<SimdLevel>(level);
}

const char *
simdLevelName(SimdLevel level)
{
    switch (level) {
      case SimdLevel::kScalar: return "scalar";
      case SimdLevel::kSse2: return "sse2";
      case SimdLevel::kAvx2: return "avx2";
    }
    return "?";
}

void
refreshSimdLevel()
{
    cachedLevel.store(-1, std::memory_order_release);
}

} // namespace pgb::align
