#include "align/gbv.hpp"

#include <bit>
#include <climits>

#include "core/logging.hpp"

namespace pgb::align {

namespace gbvdetail {

void
expandScores(const GbvColumn &column, size_t m, std::vector<int32_t> &out)
{
    out.resize(m);
    int32_t score = 0; // D(0, col) = 0 (free graph start)
    for (size_t i = 0; i < m; ++i) {
        const uint64_t bit = 1ull << (i % 64);
        const size_t w = i / 64;
        if (column.vp[w] & bit)
            ++score;
        else if (column.vn[w] & bit)
            --score;
        out[i] = score;
    }
}

int32_t
columnMinLowerBound(const GbvColumn &column)
{
    int32_t running = 0;
    int32_t best = 0;
    for (size_t w = 0; w < column.vp.size(); ++w) {
        const auto ups =
            static_cast<int32_t>(std::popcount(column.vp[w]));
        const auto downs =
            static_cast<int32_t>(std::popcount(column.vn[w]));
        // Within the word the score can dip at most `downs` below the
        // running value (all decrements first).
        best = std::min(best, running - downs);
        running += ups - downs;
    }
    return best;
}

GbvColumn
rebuildColumn(const std::vector<int32_t> &scores, size_t words)
{
    GbvColumn out;
    out.vp.assign(words, 0);
    out.vn.assign(words, 0);
    int32_t prev = 0;
    for (size_t i = 0; i < scores.size(); ++i) {
        const int32_t delta = scores[i] - prev;
        if (delta == 1)
            out.vp[i / 64] |= 1ull << (i % 64);
        else if (delta == -1)
            out.vn[i / 64] |= 1ull << (i % 64);
        else if (delta != 0)
            core::panic("rebuildColumn: non-unit score delta ", delta);
        prev = scores[i];
    }
    out.score = scores.empty() ? 0 : scores.back();
    return out;
}

} // namespace gbvdetail

GbvResult
gbvAlign(const graph::LocalGraph &graph, std::span<const uint8_t> query,
         const GbvOptions &options)
{
    core::NullProbe probe;
    return gbvAlign(graph, query, options, probe);
}

int32_t
gbvAlignScalar(const graph::LocalGraph &graph,
               std::span<const uint8_t> query)
{
    const graph::LocalGraph g1 = graph.splitTo1bp();
    const size_t m = query.size();
    const auto n = static_cast<uint32_t>(g1.nodeCount());
    constexpr int32_t kInf = INT32_MAX / 2;

    // cost[u][i] = D(i, column of node u); row 0 boundary is 0.
    std::vector<std::vector<int32_t>> cost(
        n, std::vector<int32_t>(m + 1, kInf));
    for (auto &row : cost)
        row[0] = 0;

    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t u = 0; u < n; ++u) {
            const uint8_t base = g1.nodeSeq(u)[0];
            auto &row = cost[u];
            for (size_t i = 1; i <= m; ++i) {
                const int32_t sub = query[i - 1] == base ? 0 : 1;
                // Fresh start: virtual input column with D(i) = i.
                int32_t best = std::min(
                    static_cast<int32_t>(i - 1) + sub,
                    static_cast<int32_t>(i) + 1);
                for (uint32_t p : g1.predecessors(u)) {
                    best = std::min(best, cost[p][i - 1] + sub);
                    best = std::min(best, cost[p][i] + 1);
                }
                best = std::min(best, row[i - 1] + 1);
                if (best < row[i]) {
                    row[i] = best;
                    changed = true;
                }
            }
        }
    }

    int32_t best = static_cast<int32_t>(m); // all-insertion fallback
    for (uint32_t u = 0; u < n; ++u)
        best = std::min(best, cost[u][m]);
    return best;
}

} // namespace pgb::align
