#include "pipeline/graph_build.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "align/poa.hpp"
#include "build/transclosure.hpp"
#include "core/logging.hpp"
#include "core/thread_pool.hpp"
#include "index/minimizer.hpp"
#include "layout/pgsgd.hpp"
#include "obs/span.hpp"
#include "pipeline/mapper.hpp"

namespace pgb::pipeline {

namespace {

/** Shared visualization stage: PGSGD layout with stress reporting. */
void
runVisualization(const graph::PanGraph &graph, uint32_t iterations,
                 unsigned threads, uint64_t seed,
                 GraphBuildReport &report)
{
    core::StageTimers::Scope scope(report.timers, "visualization");
    obs::Span span("visualization");
    layout::PathIndex index(graph);
    layout::Layout layout(graph.nodeCount(), seed);
    layout::PgsgdParams params;
    params.iterations = iterations;
    params.threads = threads;
    params.seed = seed;
    const auto result = layout::pgsgdLayout(index, layout, params);
    report.layoutStressBefore = result.stressBefore;
    report.layoutStressAfter = result.stressAfter;
}

/** A discovered variant against the reference backbone (MC pipeline). */
struct Discovered
{
    uint64_t refStart = 0;
    uint64_t refEnd = 0; ///< exclusive; == refStart for insertions
    std::vector<uint8_t> alt;
    std::vector<bool> carriers; ///< per non-reference haplotype
};

/**
 * Materialize reference + variants into a PanGraph with one path per
 * haplotype (mirrors the synthetic generator's construction, but over
 * *discovered* variants).
 */
graph::PanGraph
materialize(const seq::Sequence &reference,
            const std::vector<Discovered> &variants, size_t haplotypes,
            const std::vector<std::string> &names)
{
    using graph::Handle;
    using graph::NodeId;
    graph::PanGraph out;

    std::vector<uint64_t> breaks = {0, reference.size()};
    for (const Discovered &v : variants) {
        breaks.push_back(v.refStart);
        breaks.push_back(v.refEnd);
    }
    std::sort(breaks.begin(), breaks.end());
    breaks.erase(std::unique(breaks.begin(), breaks.end()), breaks.end());

    std::vector<NodeId> segment(breaks.size() - 1);
    std::map<uint64_t, size_t> break_index;
    for (size_t b = 0; b + 1 < breaks.size(); ++b) {
        break_index[breaks[b]] = b;
        segment[b] = out.addNode(reference.slice(
            breaks[b], breaks[b + 1] - breaks[b]));
    }
    break_index[breaks.back()] = breaks.size() - 1;
    for (size_t b = 0; b + 2 < breaks.size(); ++b) {
        out.addEdge(Handle(segment[b], false),
                    Handle(segment[b + 1], false));
    }

    std::vector<NodeId> alt_node(variants.size(), UINT32_MAX);
    for (size_t i = 0; i < variants.size(); ++i) {
        const Discovered &v = variants[i];
        const size_t b = break_index.at(v.refStart);
        const size_t nb = break_index.at(v.refEnd);
        const bool has_prev = b > 0;
        const bool has_next = nb < segment.size();
        if (!v.alt.empty()) {
            alt_node[i] = out.addNode(
                seq::Sequence(std::vector<uint8_t>(v.alt)));
            if (has_prev)
                out.addEdge(Handle(segment[b - 1], false),
                            Handle(alt_node[i], false));
            if (has_next)
                out.addEdge(Handle(alt_node[i], false),
                            Handle(segment[nb], false));
        } else if (has_prev && has_next) {
            out.addEdge(Handle(segment[b - 1], false),
                        Handle(segment[nb], false));
        }
    }

    // Reference path.
    {
        std::vector<Handle> steps;
        for (NodeId node : segment)
            steps.emplace_back(node, false);
        out.addPath(names[0], std::move(steps));
    }
    // Haplotype paths: reference route, diverted at carried variants.
    for (size_t h = 0; h < haplotypes; ++h) {
        std::vector<Handle> steps;
        size_t b = 0;
        size_t vi = 0;
        // Variants sorted by refStart (enforced by the caller).
        while (b < segment.size()) {
            while (vi < variants.size() &&
                   variants[vi].refStart < breaks[b]) {
                ++vi;
            }
            const bool at_site = vi < variants.size() &&
                                 variants[vi].refStart == breaks[b] &&
                                 variants[vi].carriers[h];
            if (!at_site) {
                steps.emplace_back(segment[b], false);
                ++b;
                continue;
            }
            const Discovered &v = variants[vi];
            if (!v.alt.empty())
                steps.emplace_back(alt_node[vi], false);
            // Skip the replaced reference segments.
            const size_t nb = break_index.at(v.refEnd);
            b = nb;
            ++vi;
        }
        out.addPath(names[h + 1], std::move(steps));
    }
    return out;
}

} // namespace

GraphBuildReport
buildPggb(const std::vector<seq::Sequence> &haplotypes,
          const PggbParams &params)
{
    if (haplotypes.size() < 2)
        core::fatal("buildPggb: need at least two sequences");
    obs::Span pipelineSpan("graph_build.pggb");
    GraphBuildReport report;
    build::SequenceCatalog catalog(haplotypes);

    // ---- 1. Alignment: all-to-all wfmash stand-in.
    WfmashResult aligned;
    {
        core::StageTimers::Scope scope(report.timers, "alignment");
        obs::Span span("alignment");
        WfmashParams wfmash = params.wfmash;
        wfmash.threads = params.threads;
        aligned = allToAllAlign(catalog, wfmash);
        report.matches = aligned.matches.size();
    }

    // ---- 2. Induction: seqwish transclosure (parallel sweep).
    {
        core::StageTimers::Scope scope(report.timers, "induction");
        obs::Span span("induction");
        build::TcOptions tc_options;
        tc_options.threads = params.threads;
        auto tc = build::transclose(catalog, aligned.matches,
                                    tc_options);
        report.closureClasses = tc.closureClasses;
        report.graph = std::move(tc.graph);
    }

    // ---- 3. Polishing: smoothxg-style windowed POA (~80% of the
    // stage is the POA kernel, as in the paper). Paths spell
    // concurrently, then the windows — each owns a private PoaGraph
    // over read-only spelled sequences — run on the pool; per-window
    // cell counts reduce in window order so the total is identical at
    // every thread count.
    {
        core::StageTimers::Scope scope(report.timers, "polishing");
        obs::Span span("polishing");
        std::vector<seq::Sequence> spelled(report.graph.pathCount());
        core::parallelFor(
            0, report.graph.pathCount(), params.threads,
            [&](size_t p) {
                spelled[p] = report.graph.pathSequence(
                    static_cast<graph::PathId>(p));
            });
        size_t longest = 0;
        for (const auto &sequence : spelled)
            longest = std::max(longest, sequence.size());
        const size_t window = std::max<size_t>(1, params.smoothWindow);
        const size_t n_windows = (longest + window - 1) / window;
        std::vector<uint64_t> window_cells(n_windows, 0);
        core::parallelFor(
            0, n_windows, params.threads, [&](size_t window_index) {
                const size_t w0 = window_index * window;
                // abPOA's adaptive band is the stage's performance
                // lever.
                align::PoaParams poa_params;
                poa_params.band = 64;
                align::PoaGraph poa(poa_params);
                uint32_t added = 0;
                for (const auto &sequence : spelled) {
                    if (added >= params.smoothMaxSeqs)
                        break;
                    if (w0 >= sequence.size())
                        continue;
                    const auto slice = sequence.slice(
                        w0, params.smoothWindow);
                    if (slice.size() < 2)
                        continue;
                    poa.addSequence(slice.codes());
                    ++added;
                }
                if (added > 0) {
                    poa.consensus();
                    window_cells[window_index] = poa.cellsComputed();
                }
            });
        for (uint64_t cells : window_cells)
            report.poaCells += cells;
    }

    // ---- 4. Visualization: odgi layout (PGSGD).
    runVisualization(report.graph, params.layoutIterations,
                     params.threads, params.seed, report);
    return report;
}

GraphBuildReport
buildMinigraphCactus(const std::vector<seq::Sequence> &haplotypes,
                     const McParams &params)
{
    if (haplotypes.empty())
        core::fatal("buildMinigraphCactus: need sequences");
    obs::Span pipelineSpan("graph_build.mc");
    GraphBuildReport report;
    const seq::Sequence &reference = haplotypes[0];
    std::vector<std::string> names;
    for (size_t h = 0; h < haplotypes.size(); ++h) {
        names.push_back(haplotypes[h].name().empty()
                            ? "asm" + std::to_string(h)
                            : haplotypes[h].name());
    }

    const size_t extra = haplotypes.size() - 1;
    std::vector<Discovered> variants;

    // ---- 1. Alignment: iterative minigraph mapping of each assembly
    // against the growing graph (chromosome mode: big segments, GWFA
    // in the chaining stage).
    {
        core::StageTimers::Scope scope(report.timers, "alignment");
        obs::Span span("alignment");

        // Reference minimizer table for variant extraction.
        std::unordered_map<uint64_t, std::vector<uint32_t>> ref_table;
        for (const index::Minimizer &mini : index::computeMinimizers(
                 reference.codes(), params.k, params.w)) {
            ref_table[mini.hash].push_back(mini.position);
        }

        for (size_t h = 1; h < haplotypes.size(); ++h) {
            // (a) Minigraph Seq2Graph mapping against the current
            // graph — the timing-dominant step.
            graph::PanGraph current = materialize(
                reference, variants, extra, names);
            MapperConfig config;
            config.profile = ToolProfile::kMinigraph;
            config.k = params.k;
            config.w = params.w;
            config.threads = params.threads;
            Seq2GraphMapper mapper(current, config);
            std::vector<seq::Sequence> segments;
            for (size_t s = 0; s < haplotypes[h].size();
                 s += params.segmentLength) {
                auto slice = haplotypes[h].slice(
                    s, params.segmentLength);
                if (slice.size() >= static_cast<size_t>(params.k))
                    segments.push_back(std::move(slice));
            }
            mapper.mapReads(segments);

            // (b) Variant discovery against the reference backbone.
            const auto &codes = haplotypes[h].codes();
            struct RefAnchor
            {
                uint32_t q, t;
            };
            std::vector<RefAnchor> anchors;
            for (const index::Minimizer &mini :
                 index::computeMinimizers(codes, params.k,
                                          params.w)) {
                auto it = ref_table.find(mini.hash);
                if (it == ref_table.end() || it->second.size() > 4)
                    continue;
                for (uint32_t tpos : it->second)
                    anchors.push_back({mini.position, tpos});
            }
            std::sort(anchors.begin(), anchors.end(),
                      [](const RefAnchor &a, const RefAnchor &b) {
                          return a.q < b.q ||
                                 (a.q == b.q && a.t < b.t);
                      });
            // Greedy colinear chain.
            std::vector<RefAnchor> chain;
            for (const RefAnchor &anchor : anchors) {
                if (chain.empty() ||
                    (anchor.q > chain.back().q &&
                     anchor.t > chain.back().t &&
                     anchor.q - chain.back().q < 100000 &&
                     anchor.t - chain.back().t < 100000)) {
                    chain.push_back(anchor);
                }
            }
            const auto k = static_cast<uint32_t>(params.k);
            for (size_t i = 0; i + 1 < chain.size(); ++i) {
                const RefAnchor &a = chain[i];
                const RefAnchor &b = chain[i + 1];
                if (b.q < a.q + k || b.t < a.t + k)
                    continue; // overlapping seeds
                const uint64_t qgap = b.q - (a.q + k);
                const uint64_t tgap = b.t - (a.t + k);
                if (qgap == tgap && qgap == 0)
                    continue;
                if (std::max(qgap, tgap) <
                    params.minVariantLength) {
                    continue; // left to base-level polishing
                }
                Discovered v;
                v.refStart = a.t + k;
                v.refEnd = b.t;
                v.alt.assign(codes.begin() + (a.q + k),
                             codes.begin() + b.q);
                v.carriers.assign(extra, false);
                v.carriers[h - 1] = true;
                variants.push_back(std::move(v));
            }
        }

        // Merge duplicates and drop overlaps (first wins).
        std::sort(variants.begin(), variants.end(),
                  [](const Discovered &a, const Discovered &b) {
                      if (a.refStart != b.refStart)
                          return a.refStart < b.refStart;
                      if (a.refEnd != b.refEnd)
                          return a.refEnd < b.refEnd;
                      return a.alt < b.alt;
                  });
        std::vector<Discovered> merged;
        for (Discovered &v : variants) {
            if (!merged.empty() &&
                merged.back().refStart == v.refStart &&
                merged.back().refEnd == v.refEnd &&
                merged.back().alt == v.alt) {
                for (size_t c = 0; c < extra; ++c) {
                    merged.back().carriers[c] =
                        merged.back().carriers[c] || v.carriers[c];
                }
                continue;
            }
            if (!merged.empty() &&
                (v.refStart < merged.back().refEnd ||
                 v.refStart == merged.back().refStart)) {
                continue; // overlapping/co-located: keep the first
            }
            merged.push_back(std::move(v));
        }
        variants = std::move(merged);
        report.bubbles = variants.size();
    }

    // ---- 2. Induction: abPOA-style refinement of each bubble (align
    // alleles; identical consensus alleles merge). Bubbles are
    // independent, so they align on the pool; per-variant cell counts
    // reduce in variant order for a thread-count-invariant total.
    {
        core::StageTimers::Scope scope(report.timers, "induction");
        obs::Span span("induction");
        std::vector<uint64_t> variant_cells(variants.size(), 0);
        core::parallelFor(
            0, variants.size(), params.threads,
            [&](size_t variant_index) {
                const Discovered &v = variants[variant_index];
                if (v.alt.size() < 2 || v.refEnd <= v.refStart)
                    return;
                align::PoaGraph poa;
                poa.addSequence(reference.slice(
                    v.refStart, v.refEnd - v.refStart).codes());
                poa.addSequence(v.alt);
                poa.consensus();
                variant_cells[variant_index] = poa.cellsComputed();
            });
        for (uint64_t cells : variant_cells)
            report.poaCells += cells;
    }

    // ---- 3. Polishing: GFAffix-like cleanup — drop no-op variants
    // whose alt spells the reference interval.
    {
        core::StageTimers::Scope scope(report.timers, "polishing");
        obs::Span span("polishing");
        variants.erase(
            std::remove_if(
                variants.begin(), variants.end(),
                [&](const Discovered &v) {
                    if (v.refEnd - v.refStart != v.alt.size())
                        return false;
                    for (size_t i = 0; i < v.alt.size(); ++i) {
                        if (reference[v.refStart + i] != v.alt[i])
                            return false;
                    }
                    return true;
                }),
            variants.end());
        report.graph = materialize(reference, variants, extra, names);
    }

    // ---- 4. Visualization.
    runVisualization(report.graph, params.layoutIterations,
                     params.threads, params.seed, report);
    return report;
}

} // namespace pgb::pipeline
