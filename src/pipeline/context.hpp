/**
 * @file
 * Immutable mapping context: the build-once half of the mapper API.
 *
 * Historically every Seq2GraphMapper rebuilt the minimizer index (and
 * the GBWT for the giraffe profile) from the graph in its constructor,
 * so each run — each bench iteration, each CLI invocation — paid full
 * index construction. MappingContext splits that cost out: it wraps a
 * GraphSource (source.hpp) — the read side of a pangenome — plus the
 * k/w the indexes were built with, as one const-shareable object.
 * Per-run knobs stay in MapperConfig; mapBatch() maps a batch of reads
 * against a context without mutating it, so one context can serve any
 * number of batches, configs, and threads.
 *
 * All construction goes through MappingContext::Builder — one fluent
 * entry point for the three backing stores:
 *
 *     MappingContext::Builder().fromGraph(graph).k(15).w(10).build();
 *     MappingContext::Builder().fromArtifact("pan.pgbi").build();
 *     MappingContext::Builder().fromManifest("pan.pgbs")
 *                              .shardCacheMb(64).build();
 *
 * fromGraph builds indexes in memory; fromArtifact memory-maps one
 * `.pgbi`; fromManifest opens a `.pgbs` shard set (shard_set.hpp)
 * whose shards are mmapped lazily and evicted under the cache budget.
 * The monolith-only accessors (graph(), minimizers(), gbwt(),
 * fmIndex(), linearization(), artifact()) remain for code that
 * genuinely needs the whole structure in one piece — they fatal() on a
 * shard-set context, where no monolithic structure exists.
 */

#ifndef PGB_PIPELINE_CONTEXT_HPP
#define PGB_PIPELINE_CONTEXT_HPP

#include <memory>
#include <span>
#include <string>

#include "graph/pangraph.hpp"
#include "index/gbwt.hpp"
#include "index/minimizer.hpp"
#include "pipeline/chain.hpp"
#include "pipeline/seeder.hpp"
#include "pipeline/source.hpp"
#include "store/store.hpp"

namespace pgb::pipeline {

struct MapperConfig;
struct MappingStats;
struct ReadMapping;

class MonolithSource;

/**
 * Everything a mapping run shares and never mutates, behind a
 * GraphSource. Returned as shared_ptr<const MappingContext> so
 * concurrent batches on different threads can hold the same context
 * safely.
 */
class MappingContext
{
  public:
    class Builder;

    // ---- Source-forwarded surface: valid for every backing store.

    /** The underlying source (monolith or shard set). */
    const GraphSource &source() const { return *source_; }

    /** The seed-stage strategy the mapper calls. */
    const Seeder &seeder() const { return source_->seeder(); }

    double avgNodeLength() const { return source_->avgNodeLength(); }

    /** Whether haplotype walks (giraffe's filter) are available. */
    bool hasGbwt() const { return source_->hasGbwt(); }

    /** Whether this context reads a `.pgbs` shard set. */
    bool isSharded() const { return mono_ == nullptr; }

    int k() const { return k_; }
    int w() const { return w_; }

    // ---- Monolith-only surface: fatal() on a shard-set context.

    const graph::PanGraph &graph() const;
    const index::MinimizerIndex &minimizers() const;

    /** GBWT, or nullptr when the context was built/stored without one. */
    const index::GbwtIndex *gbwt() const;

    /** FM-index, or nullptr when seeding is minimizer-based. */
    const index::FmIndex *fmIndex() const;

    const GraphLinearization &linearization() const;

    /** Whether this context came from a `.pgbi` artifact. */
    bool fromArtifact() const;

    /** The backing artifact, or nullptr for in-memory contexts. */
    const store::Artifact *artifact() const;

    MappingContext(const MappingContext &) = delete;
    MappingContext &operator=(const MappingContext &) = delete;

  private:
    MappingContext() = default;

    std::unique_ptr<const GraphSource> source_;
    /** Downcast of source_ when monolithic; null for shard sets. */
    const MonolithSource *mono_ = nullptr;
    int k_ = 0, w_ = 0;
};

/**
 * The single way to construct a MappingContext. Exactly one of
 * fromGraph / fromArtifact / fromManifest must be set; the remaining
 * knobs default to the `pgb index` defaults. k/w/buildGbwt/
 * fmSampleRate shape in-memory builds only (artifacts and manifests
 * carry their own); shardCacheMb applies to manifests only.
 */
class MappingContext::Builder
{
  public:
    Builder() = default;

    /** Build indexes in memory over @p graph, which must outlive the
     *  context (referenced, not copied). */
    Builder &fromGraph(const graph::PanGraph &graph);

    /** Memory-map the `.pgbi` artifact at @p path. */
    Builder &fromArtifact(std::string path);

    /** Open the `.pgbs` shard set at @p path (lazy per-shard mmap). */
    Builder &fromManifest(std::string path);

    /** Seeding strategy (kMem needs FM sections / builds them). */
    Builder &seeder(SeederKind kind);

    Builder &k(int k);
    Builder &w(int w);

    /** Index-construction threads (fromGraph only). */
    Builder &threads(unsigned threads);

    /** Build the GBWT too (fromGraph only; giraffe needs it). */
    Builder &buildGbwt(bool build);

    /** FM-index SA sampling rate (fromGraph + kMem only). */
    Builder &fmSampleRate(uint32_t rate);

    /** Shard cache budget in MiB (fromManifest only; 0 = unlimited). */
    Builder &shardCacheMb(uint64_t mb);

    /**
     * Construct the context. Fatal on an unset or doubly-set source,
     * on kMem against an artifact or shard set without FM sections,
     * and on any store validation failure (fails closed).
     */
    std::shared_ptr<const MappingContext> build() const;

  private:
    const graph::PanGraph *graph_ = nullptr;
    std::string artifactPath_;
    std::string manifestPath_;
    SeederKind seeder_ = SeederKind::kMinimizer;
    int k_ = 15;
    int w_ = 10;
    unsigned threads_ = 1;
    bool buildGbwt_ = false;
    uint32_t fmSampleRate_ = index::FmIndex::kDefaultSampleRate;
    uint64_t shardCacheMb_ = 0;
};

/**
 * Map @p reads against @p context with per-run knobs @p config.
 * Stateless: builds nothing, mutates nothing shared; safe to call
 * concurrently with the same context. config.k/w must match the
 * context's index parameters (fatal otherwise), and the giraffe
 * profile requires a context with a GBWT.
 */
MappingStats mapBatch(const MappingContext &context,
                      const MapperConfig &config,
                      std::span<const seq::Sequence> reads);

/**
 * mapBatch, also collecting per-read outcomes: @p mappings is resized
 * to reads.size() with mappings[i] holding read i's result, in input
 * order at every thread count. The `pgb serve` response records and
 * `pgb map --dump` are built from this form.
 */
MappingStats mapBatch(const MappingContext &context,
                      const MapperConfig &config,
                      std::span<const seq::Sequence> reads,
                      std::vector<ReadMapping> &mappings);

} // namespace pgb::pipeline

#endif // PGB_PIPELINE_CONTEXT_HPP
