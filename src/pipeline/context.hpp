/**
 * @file
 * Immutable mapping context: the build-once half of the mapper API.
 *
 * Historically every Seq2GraphMapper rebuilt the minimizer index (and
 * the GBWT for the giraffe profile) from the graph in its constructor,
 * so each run — each bench iteration, each CLI invocation — paid full
 * index construction. MappingContext splits that cost out: it bundles
 * the graph, the minimizer index, the optional GBWT, and the graph
 * linearization into one const-shareable object that is either built
 * in memory (MappingContext::build) or loaded from a `.pgbi` artifact
 * (MappingContext::load, backed by pgb::store's memory-mapped
 * zero-copy views). Per-run knobs stay in MapperConfig; mapBatch()
 * maps a batch of reads against a context without mutating it, so one
 * context can serve any number of batches, configs, and threads.
 */

#ifndef PGB_PIPELINE_CONTEXT_HPP
#define PGB_PIPELINE_CONTEXT_HPP

#include <memory>
#include <span>
#include <string>

#include "graph/pangraph.hpp"
#include "index/gbwt.hpp"
#include "index/minimizer.hpp"
#include "pipeline/chain.hpp"
#include "pipeline/seeder.hpp"
#include "store/store.hpp"

namespace pgb::pipeline {

struct MapperConfig;
struct MappingStats;
struct ReadMapping;

/** Index-construction knobs for MappingContext::build. */
struct ContextBuildParams
{
    int k = 15;
    int w = 10;
    unsigned threads = 1;
    /** Build the GBWT too (required by the giraffe profile). */
    bool buildGbwt = false;
    /** Seeding strategy (kMem also builds the FM-index). */
    SeederKind seeder = SeederKind::kMinimizer;
    /** FM-index SA sampling rate (kMem only). */
    uint32_t fmSampleRate = index::FmIndex::kDefaultSampleRate;
};

/**
 * Everything a mapping run shares and never mutates: graph, minimizer
 * index, optional GBWT, linearization. Returned as
 * shared_ptr<const MappingContext> so concurrent batches on different
 * threads can hold the same context safely.
 */
class MappingContext
{
  public:
    /**
     * Build indexes in memory over @p graph. The caller's graph must
     * outlive the context (the context references, not copies, it —
     * matching the old Seq2GraphMapper constructor's contract).
     */
    static std::shared_ptr<const MappingContext>
    build(const graph::PanGraph &graph, const ContextBuildParams &params);

    /**
     * Load a `.pgbi` artifact written by pgb::store. The context owns
     * the mapping; the minimizer index (and the FM-index when
     * @p seeder is kMem) is a zero-copy view into it. Requesting kMem
     * against an artifact without FM sections is a FatalError, as is
     * any validation failure (fails closed).
     */
    static std::shared_ptr<const MappingContext>
    load(const std::string &artifact_path,
         SeederKind seeder = SeederKind::kMinimizer);

    const graph::PanGraph &graph() const { return *graph_; }
    const index::MinimizerIndex &minimizers() const
    {
        return *minimizers_;
    }

    /** GBWT, or nullptr when the context was built/stored without one. */
    const index::GbwtIndex *gbwt() const { return gbwt_; }

    /** FM-index, or nullptr when seeding is minimizer-based. */
    const index::FmIndex *fmIndex() const { return fm_; }

    /** The seed-stage strategy the mapper calls. */
    const Seeder &seeder() const { return *seeder_; }

    const GraphLinearization &linearization() const { return *linear_; }

    double avgNodeLength() const { return avgNodeLength_; }
    int k() const { return k_; }
    int w() const { return w_; }

    /** Whether this context came from a `.pgbi` artifact. */
    bool fromArtifact() const { return artifact_ != nullptr; }

    /** The backing artifact, or nullptr for in-memory contexts. */
    const store::Artifact *artifact() const { return artifact_.get(); }

    MappingContext(const MappingContext &) = delete;
    MappingContext &operator=(const MappingContext &) = delete;

  private:
    MappingContext() = default;

    /** Shared by build()/load() once graph_/indexes are wired up. */
    void finalize(SeederKind seeder);

    std::unique_ptr<store::Artifact> artifact_;
    const graph::PanGraph *graph_ = nullptr;
    std::unique_ptr<index::MinimizerIndex> ownedMinimizers_;
    const index::MinimizerIndex *minimizers_ = nullptr;
    std::unique_ptr<index::GbwtIndex> ownedGbwt_;
    const index::GbwtIndex *gbwt_ = nullptr;
    std::unique_ptr<index::FmIndex> ownedFm_;
    const index::FmIndex *fm_ = nullptr;
    std::unique_ptr<Seeder> seeder_;
    std::unique_ptr<GraphLinearization> linear_;
    double avgNodeLength_ = 1.0;
    int k_ = 0, w_ = 0;
};

/**
 * Map @p reads against @p context with per-run knobs @p config.
 * Stateless: builds nothing, mutates nothing shared; safe to call
 * concurrently with the same context. config.k/w must match the
 * context's index parameters (fatal otherwise), and the giraffe
 * profile requires a context with a GBWT.
 */
MappingStats mapBatch(const MappingContext &context,
                      const MapperConfig &config,
                      std::span<const seq::Sequence> reads);

/**
 * mapBatch, also collecting per-read outcomes: @p mappings is resized
 * to reads.size() with mappings[i] holding read i's result, in input
 * order at every thread count. The `pgb serve` response records and
 * `pgb map --dump` are built from this form.
 */
MappingStats mapBatch(const MappingContext &context,
                      const MapperConfig &config,
                      std::span<const seq::Sequence> reads,
                      std::vector<ReadMapping> &mappings);

} // namespace pgb::pipeline

#endif // PGB_PIPELINE_CONTEXT_HPP
