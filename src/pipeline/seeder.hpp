/**
 * @file
 * Pluggable seeding strategies for the Seq2Graph mapping pipeline
 * (paper Figure 1, step 1 of seed → cluster-chain → filter → align).
 *
 * The mapper used to call collectAnchorsInto (minimizer lookups)
 * directly; this file turns that choice into a strategy owned by
 * MappingContext so a second backend can feed the identical
 * cluster/chain/align path:
 *
 *  - MinimizerSeeder wraps collectAnchorsInto and is bit-identical to
 *    the pre-strategy behavior (the golden digests prove it);
 *  - MemSeeder enumerates supermaximal exact matches on the FM-index
 *    (index/fm_index.hpp), locates every occurrence on the haplotype
 *    paths, and splits each into k-length sub-anchors at stride k (plus
 *    a final window flush against the MEM end) so downstream geometry —
 *    diagonal clustering, chain gap costs, and the fixed-k query-offset
 *    conversions in the mapper — holds unchanged.
 *
 * Selection is `--seeder=minimizer|mem` on `pgb index`, `pgb map`, and
 * `pgb serve`; parseSeeder is the shared fatal()-on-garbage parser.
 */

#ifndef PGB_PIPELINE_SEEDER_HPP
#define PGB_PIPELINE_SEEDER_HPP

#include <string>
#include <vector>

#include "index/fm_index.hpp"
#include "index/minimizer.hpp"
#include "pipeline/chain.hpp"

namespace pgb::pipeline {

/** The seeding backends a MappingContext can be built around. */
enum class SeederKind { kMinimizer, kMem };

namespace detail {

/**
 * The seed.* metric counters live in seeder.cpp; these hooks let the
 * shard-set seeders (shard_set.cpp) charge the same counters instead
 * of registering duplicate names.
 */
void addSeedAnchors(size_t n);
void addSeedMems(size_t n);
void addSeedMemOccurrences(size_t n);
void addSeedDroppedRepetitive();

} // namespace detail

/**
 * Canonical MEM-anchor order: sort by (queryPos, reverse, linearPos,
 * node, nodeOffset) and dedupe. MEM occurrences on different
 * haplotypes can project to the same graph position and enumeration
 * order is an implementation detail (monolithic scan vs per-shard
 * scans), so every MEM seeder funnels through this before returning —
 * the anchor SET alone determines the output.
 */
void canonicalizeMemAnchors(std::vector<Anchor> &anchors);

/** Parse a `--seeder=` value ("minimizer" | "mem"); fatal otherwise. */
SeederKind parseSeeder(const std::string &name);

/** The CLI name of @p kind. */
const char *seederName(SeederKind kind);

/** Seed-stage strategy: reads in, anchors out. */
class Seeder
{
  public:
    virtual ~Seeder() = default;

    /**
     * Collect anchors for @p read (both strands) into @p anchors
     * (cleared first, capacity reused). Must be const-thread-safe:
     * mapBatch calls it concurrently from every worker.
     */
    virtual void collect(const seq::Sequence &read,
                         std::vector<Anchor> &anchors) const = 0;

    virtual SeederKind kind() const = 0;

    const char *name() const { return seederName(kind()); }
};

/** The original minimizer-table seeding, behavior-preserving. */
class MinimizerSeeder final : public Seeder
{
  public:
    MinimizerSeeder(const index::MinimizerIndex &index,
                    const GraphLinearization &linear,
                    size_t max_occurrences = 64);

    void collect(const seq::Sequence &read,
                 std::vector<Anchor> &anchors) const override;

    SeederKind kind() const override { return SeederKind::kMinimizer; }

  private:
    const index::MinimizerIndex &index_;
    const GraphLinearization &linear_;
    size_t maxOccurrences_;
};

/** FM-index SMEM seeding (ROADMAP item 1, vg Mapper style). */
class MemSeeder final : public Seeder
{
  public:
    /**
     * @p k is the anchor window length (the context's minimizer k, so
     * anchors are geometrically interchangeable with minimizer ones);
     * it doubles as the minimum MEM length. MEMs with more than
     * @p max_occurrences occurrences are dropped as repeats, the same
     * cap collectAnchorsInto applies per minimizer.
     */
    MemSeeder(const index::FmIndex &fm, const graph::PanGraph &graph,
              const GraphLinearization &linear, uint32_t k,
              size_t max_occurrences = 64);

    void collect(const seq::Sequence &read,
                 std::vector<Anchor> &anchors) const override;

    SeederKind kind() const override { return SeederKind::kMem; }

  private:
    void collectStrand(std::span<const uint8_t> codes, bool rc_strand,
                       uint32_t read_length,
                       std::vector<index::FmIndex::Mem> &mems,
                       std::vector<Anchor> &anchors) const;

    const index::FmIndex &fm_;
    const graph::PanGraph &graph_;
    const GraphLinearization &linear_;
    uint32_t k_;
    size_t maxOccurrences_;

    /// stepStarts_[p][s] = path offset where step s of path p begins
    /// (one trailing total-length entry), for text → node projection.
    std::vector<std::vector<uint64_t>> stepStarts_;
};

} // namespace pgb::pipeline

#endif // PGB_PIPELINE_SEEDER_HPP
