/**
 * @file
 * ShardSetSource: map beyond-RAM pangenomes against a `.pgbs` shard
 * set of lazily-mmapped `.pgbi` shards (DESIGN.md §13).
 *
 * A shard set is a manifest (store/manifest.hpp) over per-component
 * shard artifacts written by `pgb shard`. This GraphSource
 * implementation routes every global node id to its shard
 * (store::ShardRouter), mmaps a shard on first touch, and keeps the
 * resident set under a soft byte budget with LRU eviction — a shard
 * pinned by an in-flight read is never unmapped (eviction requires the
 * cache to hold the only reference), and at least one shard always
 * stays resident.
 *
 * Seeding runs shard-locally (each shard carries its own minimizer
 * index, GBWT, and — for `--seeder=mem` sets — FM-index over its own
 * paths) and the per-shard results are merged into exactly the anchor
 * stream the monolithic index would produce; clustering, chaining,
 * filtering, and alignment then run unchanged on global coordinates.
 * Sharded mapping is byte-identical to monolithic mapping — the golden
 * digests assert it.
 *
 * Observability: counters shard.{loads,evictions,hits,
 * cross_shard_reads}, gauges shard.{resident,resident_bytes}, a
 * per-shard residency provider (shard.<i>.resident, surfaced by
 * `pgb ctl status`), and a "shard.load" span around each mmap.
 */

#ifndef PGB_PIPELINE_SHARD_SET_HPP
#define PGB_PIPELINE_SHARD_SET_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pipeline/source.hpp"
#include "store/manifest.hpp"

namespace pgb::pipeline {

class ShardCache;
class ShardMinimizerSeeder;
class ShardMemSeeder;

/** GraphSource over a `.pgbs` shard set (see file comment). */
class ShardSetSource final : public GraphSource
{
  public:
    /**
     * Open the manifest at @p manifest_path and prepare routing.
     * Shards are NOT loaded here — the first touch of each shard pays
     * its mmap. @p cache_mb is the soft resident budget (0 =
     * unlimited). Requesting kMem against a minimizer-built set is a
     * FatalError, as is any manifest validation failure.
     */
    static std::unique_ptr<const ShardSetSource>
    open(const std::string &manifest_path, SeederKind seeder,
         uint64_t cache_mb);

    ~ShardSetSource() override;

    // ---- GraphSource.
    const char *kindName() const override { return "shard-set"; }
    const Seeder &seeder() const override { return *seeder_; }
    double avgNodeLength() const override { return avgNodeLength_; }
    bool hasGbwt() const override { return manifest_.hasGbwt; }
    size_t shardCount() const override { return manifest_.shards.size(); }
    graph::LocalGraph extractSubgraph(graph::Handle start,
                                      size_t radius,
                                      uint32_t *origin) const override;
    GbwtWalk gbwtWalkAt(uint32_t global_node) const override;

    // ---- Shard-set surface.
    int k() const { return static_cast<int>(manifest_.k); }
    int w() const { return static_cast<int>(manifest_.w); }
    const store::ShardManifest &manifest() const { return manifest_; }

  private:
    friend class ShardMinimizerSeeder;
    friend class ShardMemSeeder;

    ShardSetSource(store::ShardManifest manifest, SeederKind seeder,
                   uint64_t cache_mb);

    store::ShardManifest manifest_;
    store::ShardRouter router_;
    std::unique_ptr<ShardCache> cache_;
    /** Shard indices with embedded paths — the only shards that carry
     *  seeds (pathless components are never touched by mapping). */
    std::vector<uint32_t> seedShards_;
    std::unique_ptr<Seeder> seeder_;
    double avgNodeLength_ = 1.0;
};

} // namespace pgb::pipeline

#endif // PGB_PIPELINE_SHARD_SET_HPP
