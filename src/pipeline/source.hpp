/**
 * @file
 * GraphSource: the read-side abstraction every mapping consumer is
 * written against (DESIGN.md §13).
 *
 * The mapper needs exactly four things from "the pangenome": a seeding
 * strategy, local subgraphs around seed hits, haplotype walks at seed
 * nodes (giraffe's GBWT filter), and one scalar (average node length,
 * for extraction radii). GraphSource is that contract. Two
 * implementations exist:
 *
 *  - the in-RAM monolith (a built graph or one mmapped `.pgbi`
 *    artifact), the historical path;
 *  - ShardSetSource (shard_set.hpp): a `.pgbs` manifest of
 *    per-component shards, lazily mmapped on first touch and
 *    evictable under a byte budget, for pangenomes bigger than RAM.
 *
 * Node ids crossing this interface are always GLOBAL (monolith) ids:
 * seeders emit global anchors, extractSubgraph takes a global handle,
 * and gbwtWalkAt takes a global node. Shard-locality is an
 * implementation detail behind the interface — which is what makes
 * sharded and monolithic mapping byte-identical.
 */

#ifndef PGB_PIPELINE_SOURCE_HPP
#define PGB_PIPELINE_SOURCE_HPP

#include <cstdint>
#include <memory>

#include "graph/local_graph.hpp"
#include "graph/pangraph.hpp"
#include "index/gbwt.hpp"
#include "pipeline/seeder.hpp"

namespace pgb::pipeline {

/**
 * A GBWT positioned at one (global) node, ready to walk. The handle is
 * in the returned GBWT's own id space — for a shard set that is the
 * shard-local id; callers never convert it, they only walk from it.
 * `pin` keeps the backing shard resident for as long as the walk
 * lives; a null `gbwt` means no haplotype information covers the node.
 */
struct GbwtWalk
{
    const index::GbwtIndex *gbwt = nullptr;
    graph::Handle start;
    std::shared_ptr<const void> pin;
};

/** The read side of a pangenome: what mapping consumes. */
class GraphSource
{
  public:
    virtual ~GraphSource() = default;

    /** "monolith" or "shard-set", for logs and status lines. */
    virtual const char *kindName() const = 0;

    /** The seed-stage strategy (emits global-id anchors). */
    virtual const Seeder &seeder() const = 0;

    /** max(1, total bases / node count) — extraction radius input. */
    virtual double avgNodeLength() const = 0;

    /** Whether gbwtWalkAt can return haplotype walks. */
    virtual bool hasGbwt() const = 0;

    /** Backing artifacts: 1 for a monolith, N for a shard set. */
    virtual size_t shardCount() const = 0;

    /**
     * Extract the local neighborhood around global handle @p start
     * within @p radius bases (PanGraph::extractSubgraph semantics; the
     * result owns its sequences, so it outlives any shard eviction).
     */
    virtual graph::LocalGraph
    extractSubgraph(graph::Handle start, size_t radius,
                    uint32_t *origin = nullptr) const = 0;

    /** Haplotype walk state at @p global_node (see GbwtWalk). */
    virtual GbwtWalk gbwtWalkAt(uint32_t global_node) const = 0;
};

} // namespace pgb::pipeline

#endif // PGB_PIPELINE_SOURCE_HPP
