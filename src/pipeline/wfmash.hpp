/**
 * @file
 * wfmash stand-in: all-to-all pairwise alignment for the PGGB pipeline
 * (paper §2.2).
 *
 * wfmash combines MashMap-style approximate segment mapping with WFA
 * base-level alignment. This stand-in does the same in miniature: each
 * query segment is placed on the target by minimizer diagonal voting
 * (the MashMap role), scored with the WFA kernel, and its exact-match
 * runs — found by extending minimizer anchors maximally — become the
 * MatchSegments the transclosure kernel consumes.
 */

#ifndef PGB_PIPELINE_WFMASH_HPP
#define PGB_PIPELINE_WFMASH_HPP

#include <cstdint>
#include <vector>

#include "build/transclosure.hpp"
#include "seq/sequence.hpp"

namespace pgb::pipeline {

/** wfmash stand-in parameters. */
struct WfmashParams
{
    int k = 15;
    int w = 10;
    size_t segmentLength = 2000; ///< query segmentation granule
    size_t minMatchLength = 20;  ///< exact-match runs shorter are dropped
    unsigned threads = 1;
    /** Skip the WFA scoring pass (ablation/speed knob). */
    bool runWfa = true;
};

/** All-to-all alignment output. */
struct WfmashResult
{
    std::vector<build::MatchSegment> matches; ///< global offsets
    uint64_t segmentsMapped = 0;
    uint64_t segmentsTotal = 0;
    int64_t wfaPenaltyTotal = 0;
    double wfaSeconds = 0.0; ///< time inside the WFA kernel
};

/**
 * Align every ordered pair of catalog sequences (i < j) and emit the
 * exact-match segments.
 */
WfmashResult allToAllAlign(const build::SequenceCatalog &catalog,
                           const WfmashParams &params);

} // namespace pgb::pipeline

#endif // PGB_PIPELINE_WFMASH_HPP
