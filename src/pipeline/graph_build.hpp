/**
 * @file
 * The two graph-building pipelines (paper Figure 3).
 *
 * PGGB:             all-to-all wfmash alignment -> seqwish transclosure
 *                   induction -> smoothxg-style POA polishing -> odgi
 *                   PGSGD visualization.
 * Minigraph-Cactus: iterative minigraph Seq2Graph mapping against the
 *                   growing graph (variant discovery) -> abPOA-style
 *                   induction of the discovered bubbles -> GFAffix-like
 *                   polishing (redundant-allele collapse) -> PGSGD
 *                   visualization.
 *
 * Every stage is wall-clock timed into StageTimers under the paper's
 * stage names: "alignment", "induction", "polishing", "visualization".
 */

#ifndef PGB_PIPELINE_GRAPH_BUILD_HPP
#define PGB_PIPELINE_GRAPH_BUILD_HPP

#include <cstdint>
#include <vector>

#include "core/timer.hpp"
#include "graph/pangraph.hpp"
#include "pipeline/wfmash.hpp"
#include "seq/sequence.hpp"

namespace pgb::pipeline {

/** Stage-timed graph-building outcome. */
struct GraphBuildReport
{
    graph::PanGraph graph;
    core::StageTimers timers;
    double layoutStressBefore = 0.0;
    double layoutStressAfter = 0.0;
    uint64_t matches = 0;         ///< pairwise matches aligned
    uint64_t closureClasses = 0;  ///< TC classes (PGGB)
    uint64_t bubbles = 0;         ///< discovered variants (MC)
    uint64_t poaCells = 0;        ///< polishing/induction DP cells
};

/** PGGB pipeline parameters. */
struct PggbParams
{
    WfmashParams wfmash;
    uint32_t smoothWindow = 2000;   ///< POA window (bases)
    uint32_t smoothMaxSeqs = 16;    ///< sequences per POA block
    uint32_t layoutIterations = 10; ///< PGSGD schedule (30 in odgi)
    unsigned threads = 1;
    uint64_t seed = 42;
};

/** Run the PGGB pipeline over @p haplotypes. */
GraphBuildReport buildPggb(const std::vector<seq::Sequence> &haplotypes,
                           const PggbParams &params);

/** Minigraph-Cactus pipeline parameters. */
struct McParams
{
    int k = 15;
    int w = 10;
    size_t segmentLength = 10000;  ///< assembly chop granule
    size_t minVariantLength = 4;   ///< smaller divergences are polished
    uint32_t layoutIterations = 10;
    unsigned threads = 1;
    uint64_t seed = 42;
};

/**
 * Run the Minigraph-Cactus pipeline: @p haplotypes[0] seeds the graph
 * (the reference-bias property the paper notes), the rest are mapped
 * in iteratively.
 */
GraphBuildReport
buildMinigraphCactus(const std::vector<seq::Sequence> &haplotypes,
                     const McParams &params);

} // namespace pgb::pipeline

#endif // PGB_PIPELINE_GRAPH_BUILD_HPP
