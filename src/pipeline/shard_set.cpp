#include "pipeline/shard_set.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <mutex>

#include "core/logging.hpp"
#include "core/scratch.hpp"
#include "index/fm_index.hpp"
#include "index/gbwt.hpp"
#include "index/minimizer.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "pipeline/chain.hpp"
#include "seq/alphabet.hpp"
#include "store/store.hpp"

namespace pgb::pipeline {

namespace {

using core::fatal;

obs::Counter obsShardLoads("shard.loads");
obs::Counter obsShardEvictions("shard.evictions");
obs::Counter obsShardHits("shard.hits");
obs::Counter obsShardCrossReads("shard.cross_shard_reads");
obs::Gauge obsShardResident("shard.resident");
obs::Gauge obsShardResidentBytes("shard.resident_bytes");

std::string
hex16(uint64_t value)
{
    char buffer[17];
    std::snprintf(buffer, sizeof(buffer), "%016" PRIx64, value);
    return buffer;
}

} // namespace

/** One mmapped shard plus the projection tables seeding needs. */
struct LoadedShard
{
    std::unique_ptr<const store::Artifact> artifact;
    /// stepStarts[p][s] = path offset where step s of local path p
    /// begins (one trailing total-length entry) — text → node
    /// projection for the MEM seeder, same shape as MemSeeder's.
    std::vector<std::vector<uint64_t>> stepStarts;
};

// ---------------------------------------------------------------------
// ShardCache
// ---------------------------------------------------------------------

/**
 * The resident set of a shard set: shared_ptr pins per shard, a soft
 * LRU byte budget, and the shard.* metrics. get() is the only entry
 * point; every call re-evaluates the budget, so a cache over budget
 * sheds unpinned shards as soon as their pins drop — never while any
 * in-flight batch still holds one.
 */
class ShardCache
{
  public:
    ShardCache(const store::ShardManifest &manifest,
               const store::ShardRouter &router, uint64_t budget_bytes);
    ~ShardCache();

    ShardCache(const ShardCache &) = delete;
    ShardCache &operator=(const ShardCache &) = delete;

    /** Pin shard @p shard, loading (and possibly evicting) under the
     *  budget. The returned pin keeps the mapping alive. */
    std::shared_ptr<const LoadedShard> get(uint32_t shard) const;

    /** Provider callback body: per-shard residency gauges. */
    void appendResidency(
        std::vector<std::pair<std::string, int64_t>> &out) const;

  private:
    std::shared_ptr<const LoadedShard> loadLocked(uint32_t shard) const;
    void evictLocked(uint32_t keep) const;
    uint64_t residentBytesLocked() const;

    const store::ShardManifest &manifest_;
    const store::ShardRouter &router_;
    uint64_t budgetBytes_; ///< 0 = unlimited

    mutable std::mutex lock_;
    mutable std::vector<std::shared_ptr<const LoadedShard>> resident_;
    mutable std::vector<uint64_t> lastUse_;
    mutable uint64_t clock_ = 0;
};

namespace {

/**
 * Live caches, for the one process-wide residency provider. Providers
 * cannot be deregistered (obs keeps them for the process lifetime), so
 * the provider walks this registry and caches deregister in their
 * destructor instead.
 */
std::mutex &
cacheRegistryLock()
{
    static std::mutex lock;
    return lock;
}

std::vector<const ShardCache *> &
cacheRegistry()
{
    static std::vector<const ShardCache *> registry;
    return registry;
}

std::once_flag cacheProviderOnce;

void
registerCache(const ShardCache *cache)
{
    {
        std::lock_guard<std::mutex> lock(cacheRegistryLock());
        cacheRegistry().push_back(cache);
    }
    std::call_once(cacheProviderOnce, [] {
        obs::registerProvider(
            [](std::vector<std::pair<std::string, int64_t>> &out) {
                std::lock_guard<std::mutex> lock(cacheRegistryLock());
                for (const ShardCache *cache : cacheRegistry())
                    cache->appendResidency(out);
            });
    });
}

void
deregisterCache(const ShardCache *cache)
{
    std::lock_guard<std::mutex> lock(cacheRegistryLock());
    auto &registry = cacheRegistry();
    registry.erase(std::remove(registry.begin(), registry.end(), cache),
                   registry.end());
}

} // namespace

ShardCache::ShardCache(const store::ShardManifest &manifest,
                       const store::ShardRouter &router,
                       uint64_t budget_bytes)
    : manifest_(manifest), router_(router), budgetBytes_(budget_bytes),
      resident_(manifest.shards.size()),
      lastUse_(manifest.shards.size(), 0)
{
    registerCache(this);
}

ShardCache::~ShardCache()
{
    deregisterCache(this);
    for (const auto &slot : resident_) {
        if (slot != nullptr) {
            obsShardResident.sub();
            obsShardResidentBytes.sub(static_cast<int64_t>(
                slot->artifact->sizeBytes()));
        }
    }
}

uint64_t
ShardCache::residentBytesLocked() const
{
    uint64_t bytes = 0;
    for (size_t s = 0; s < resident_.size(); ++s) {
        if (resident_[s] != nullptr)
            bytes += manifest_.shards[s].bytes;
    }
    return bytes;
}

std::shared_ptr<const LoadedShard>
ShardCache::loadLocked(uint32_t shard) const
{
    obs::Span span("shard.load");
    const store::ShardEntry &entry = manifest_.shards[shard];
    const std::string path = manifest_.shardPath(shard);
    auto loaded = std::make_shared<LoadedShard>();
    loaded->artifact = store::Artifact::load(path);
    const store::Artifact &artifact = *loaded->artifact;
    // Identity checks beyond the artifact's own validation: the file
    // must be the exact shard the manifest describes, and its SNOD
    // projection must agree with the manifest's component routing.
    if (artifact.tableChecksum() != entry.digest) {
        fatal(manifest_.path, ": shard ", shard,
              ": digest mismatch (manifest records ",
              hex16(entry.digest), ", '", path, "' holds ",
              hex16(artifact.tableChecksum()),
              ") — re-run `pgb shard` after rebuilding shards");
    }
    if (!artifact.isShard()) {
        fatal(path, ": artifact has no SNOD/SLIN shard sections; it "
                    "was written by `pgb index`, not `pgb shard`");
    }
    if (artifact.origNodes().size() != entry.nodes) {
        fatal(path, ": shard holds ", artifact.origNodes().size(),
              " nodes, manifest records ", entry.nodes);
    }
    for (size_t local = 0; local < artifact.origNodes().size();
         ++local) {
        const auto route =
            router_.route(artifact.origNodes()[local]);
        if (route.shard != shard || route.local != local) {
            fatal(path, ": SNOD disagrees with the manifest's "
                        "component routing at local node ", local);
        }
    }
    const graph::PanGraph &graph = artifact.graph();
    loaded->stepStarts.resize(graph.pathCount());
    for (graph::PathId p = 0; p < graph.pathCount(); ++p) {
        const auto &steps = graph.pathSteps(p);
        auto &starts = loaded->stepStarts[p];
        starts.reserve(steps.size() + 1);
        uint64_t at = 0;
        for (graph::Handle step : steps) {
            starts.push_back(at);
            at += graph.nodeLength(step.node());
        }
        starts.push_back(at);
    }
    return loaded;
}

std::shared_ptr<const LoadedShard>
ShardCache::get(uint32_t shard) const
{
    std::lock_guard<std::mutex> lock(lock_);
    std::shared_ptr<const LoadedShard> pin = resident_[shard];
    if (pin != nullptr) {
        obsShardHits.add();
    } else {
        pin = loadLocked(shard);
        resident_[shard] = pin;
        obsShardLoads.add();
        obsShardResident.add();
        obsShardResidentBytes.add(
            static_cast<int64_t>(manifest_.shards[shard].bytes));
    }
    lastUse_[shard] = ++clock_;
    evictLocked(shard);
    return pin;
}

void
ShardCache::evictLocked(uint32_t keep) const
{
    if (budgetBytes_ == 0)
        return;
    while (residentBytesLocked() > budgetBytes_) {
        // Oldest unpinned shard, excluding @p keep (something must
        // stay resident, and the shard being returned is in use by
        // definition). use_count()==1 means only the cache holds it:
        // an in-flight batch's pin blocks eviction.
        uint32_t victim = UINT32_MAX;
        for (uint32_t s = 0; s < resident_.size(); ++s) {
            if (s == keep || resident_[s] == nullptr ||
                resident_[s].use_count() != 1)
                continue;
            if (victim == UINT32_MAX ||
                lastUse_[s] < lastUse_[victim])
                victim = s;
        }
        if (victim == UINT32_MAX)
            break; // everything left is pinned: soft overflow
        resident_[victim].reset();
        obsShardEvictions.add();
        obsShardResident.sub();
        obsShardResidentBytes.sub(
            static_cast<int64_t>(manifest_.shards[victim].bytes));
    }
}

void
ShardCache::appendResidency(
    std::vector<std::pair<std::string, int64_t>> &out) const
{
    std::lock_guard<std::mutex> lock(lock_);
    for (size_t s = 0; s < resident_.size(); ++s) {
        out.emplace_back("shard." + std::to_string(s) + ".resident",
                         resident_[s] != nullptr ? 1 : 0);
    }
}

// ---------------------------------------------------------------------
// Shard-local seeding
// ---------------------------------------------------------------------

namespace {

/** Thread-local temporaries shared by both shard seeders. */
struct ShardSeedScratch
{
    std::vector<std::shared_ptr<const LoadedShard>> pins;
    std::vector<uint8_t> touched; ///< per seed-shard slot, this read
    // minimizer merge state
    std::vector<index::Minimizer> minimizers;
    std::vector<std::span<const index::GraphSeedHit>> buckets;
    std::vector<size_t> bucketSlot;
    std::vector<size_t> heads;
    // mem lockstep state
    std::vector<uint8_t> rc;
    std::vector<index::FmIndex::SaRange> ranges, next, cur;
};

/** Charge shard.cross_shard_reads when >1 shard contributed. */
void
noteCrossShard(const std::vector<uint8_t> &touched)
{
    size_t distinct = 0;
    for (uint8_t t : touched)
        distinct += t != 0 ? 1 : 0;
    if (distinct > 1)
        obsShardCrossReads.add();
}

} // namespace

/**
 * Minimizer seeding over a shard set. Pins every path-bearing shard
 * for the duration of one read's collect, looks the read's minimizers
 * up in each shard's table, and k-way merges the per-shard occurrence
 * lists by global node id. Because each shard's bucket is the
 * monolith's bucket restricted to that shard in the monolith's own
 * order (order-preserving renumbering + the full-record sort in
 * MinimizerIndex), the merge reproduces the monolithic occurrence
 * stream exactly; the repetition cap applies to the summed count.
 */
class ShardMinimizerSeeder final : public Seeder
{
  public:
    explicit ShardMinimizerSeeder(const ShardSetSource &source,
                                  size_t max_occurrences = 64)
        : source_(source), maxOccurrences_(max_occurrences)
    {
    }

    void
    collect(const seq::Sequence &read,
            std::vector<Anchor> &anchors) const override
    {
        obs::Span span("seed.minimizer");
        anchors.clear();
        ShardSeedScratch &ws = core::threadScratch<ShardSeedScratch>();
        const auto &seed_shards = source_.seedShards_;
        ws.pins.clear();
        for (uint32_t shard : seed_shards)
            ws.pins.push_back(source_.cache_->get(shard));
        ws.touched.assign(seed_shards.size(), 0);

        core::NullProbe probe;
        index::computeMinimizersInto(read.codes(), source_.k(),
                                     source_.w(), ws.minimizers,
                                     probe);
        for (const index::Minimizer &mini : ws.minimizers) {
            ws.buckets.clear();
            ws.bucketSlot.clear();
            size_t total = 0;
            for (size_t slot = 0; slot < ws.pins.size(); ++slot) {
                const auto hits =
                    ws.pins[slot]->artifact->minimizers().occurrences(
                        mini.hash);
                if (hits.empty())
                    continue;
                ws.buckets.push_back(hits);
                ws.bucketSlot.push_back(slot);
                total += hits.size();
            }
            if (total == 0 || total > maxOccurrences_)
                continue; // absent, or repetitive across the whole set
            // Merge the per-shard buckets by global node id. A node
            // lives in exactly one shard, so heads never tie across
            // buckets and within-node order stays bucket-internal.
            ws.heads.assign(ws.buckets.size(), 0);
            for (size_t emitted = 0; emitted < total; ++emitted) {
                size_t best = SIZE_MAX;
                uint32_t best_node = 0;
                for (size_t b = 0; b < ws.buckets.size(); ++b) {
                    if (ws.heads[b] >= ws.buckets[b].size())
                        continue;
                    const store::Artifact &artifact =
                        *ws.pins[ws.bucketSlot[b]]->artifact;
                    const uint32_t node = artifact.origNodes()
                        [ws.buckets[b][ws.heads[b]].node];
                    if (best == SIZE_MAX || node < best_node) {
                        best = b;
                        best_node = node;
                    }
                }
                const index::GraphSeedHit &hit =
                    ws.buckets[best][ws.heads[best]++];
                const store::Artifact &artifact =
                    *ws.pins[ws.bucketSlot[best]]->artifact;
                Anchor anchor;
                anchor.queryPos = mini.position;
                anchor.node = artifact.origNodes()[hit.node];
                anchor.nodeOffset = hit.offset;
                anchor.reverse = mini.reverse != (hit.reverse != 0);
                anchor.linearPos =
                    artifact.linearBases()[hit.node] + hit.offset;
                anchors.push_back(anchor);
                ws.touched[ws.bucketSlot[best]] = 1;
            }
        }
        detail::addSeedAnchors(anchors.size());
        noteCrossShard(ws.touched);
        ws.pins.clear(); // unpin: idle threads must not block eviction
    }

    SeederKind kind() const override { return SeederKind::kMinimizer; }

  private:
    const ShardSetSource &source_;
    size_t maxOccurrences_;
};

/**
 * MEM seeding over a shard set: lockstep SMEM enumeration across the
 * per-shard FM-indexes. The shard FM texts partition the monolith's
 * path text, so a pattern's monolithic occurrence count is the sum of
 * its per-shard counts — backward extension continues while that sum
 * is positive, which reproduces the monolithic b(e) sequence (and
 * therefore the exact SMEM set) step for step. Occurrences are then
 * located and projected shard-locally; the canonical anchor sort
 * erases enumeration order, so only the set matters.
 */
class ShardMemSeeder final : public Seeder
{
  public:
    ShardMemSeeder(const ShardSetSource &source, uint32_t k,
                   size_t max_occurrences = 64)
        : source_(source), k_(k == 0 ? 1 : k),
          maxOccurrences_(max_occurrences)
    {
    }

    void
    collect(const seq::Sequence &read,
            std::vector<Anchor> &anchors) const override
    {
        anchors.clear();
        obs::Span span("seed.mem");
        if (read.size() < k_)
            return;
        ShardSeedScratch &ws = core::threadScratch<ShardSeedScratch>();
        const auto &seed_shards = source_.seedShards_;
        ws.pins.clear();
        for (uint32_t shard : seed_shards)
            ws.pins.push_back(source_.cache_->get(shard));
        ws.touched.assign(seed_shards.size(), 0);

        const auto read_length = static_cast<uint32_t>(read.size());
        collectStrand(ws, read.codes(), false, read_length, anchors);

        ws.rc.resize(read.size());
        const auto &codes = read.codes();
        for (size_t i = 0; i < codes.size(); ++i)
            ws.rc[i] = seq::complementBase(codes[codes.size() - 1 - i]);
        collectStrand(ws, ws.rc, true, read_length, anchors);

        canonicalizeMemAnchors(anchors);
        detail::addSeedAnchors(anchors.size());
        noteCrossShard(ws.touched);
        ws.pins.clear();
    }

    SeederKind kind() const override { return SeederKind::kMem; }

  private:
    void
    collectStrand(ShardSeedScratch &ws, std::span<const uint8_t> codes,
                  bool rc_strand, uint32_t read_length,
                  std::vector<Anchor> &anchors) const
    {
        const auto m = static_cast<uint32_t>(codes.size());
        const size_t shard_count = ws.pins.size();

        auto flush = [&](uint32_t begin, uint32_t end,
                         const std::vector<index::FmIndex::SaRange>
                             &mem_ranges) {
            if (end - begin < k_)
                return;
            detail::addSeedMems(1);
            uint64_t total = 0;
            for (const auto &range : mem_ranges)
                total += range.size();
            if (total > maxOccurrences_) {
                detail::addSeedDroppedRepetitive();
                return;
            }
            detail::addSeedMemOccurrences(total);
            const uint32_t length = end - begin;
            for (size_t slot = 0; slot < shard_count; ++slot) {
                const auto &range = mem_ranges[slot];
                if (range.empty())
                    continue;
                const LoadedShard &shard = *ws.pins[slot];
                const store::Artifact &artifact = *shard.artifact;
                const index::FmIndex &fm = *artifact.fmIndex();
                const graph::PanGraph &graph = artifact.graph();
                ws.touched[slot] = 1;
                for (uint64_t r = range.lo; r < range.hi; ++r) {
                    const uint64_t text_pos = fm.locate(r);
                    const auto pos = fm.resolve(text_pos);
                    const auto &starts = shard.stepStarts[pos.path];
                    const auto &steps = graph.pathSteps(pos.path);
                    // Identical windowing to MemSeeder::collectStrand:
                    // k-length sub-anchors at stride k plus one
                    // flushed against the MEM end.
                    uint32_t window = 0;
                    bool flushed = false;
                    while (true) {
                        if (window + k_ > length) {
                            if (flushed || length % k_ == 0)
                                break;
                            window = length - k_;
                            flushed = true;
                        }
                        const uint64_t path_off = pos.offset + window;
                        const auto step = static_cast<size_t>(
                            std::upper_bound(starts.begin(),
                                             starts.end(), path_off) -
                            starts.begin() - 1);
                        const graph::Handle handle = steps[step];
                        const uint64_t in_step =
                            path_off - starts[step];
                        const auto node_length =
                            static_cast<uint64_t>(
                                graph.nodeLength(handle.node()));
                        const auto offset = static_cast<uint32_t>(
                            handle.isReverse()
                                ? node_length - 1 - in_step
                                : in_step);
                        Anchor anchor;
                        anchor.queryPos =
                            rc_strand ? read_length -
                                            (begin + window) - k_
                                      : begin + window;
                        anchor.node =
                            artifact.origNodes()[handle.node()];
                        anchor.nodeOffset = offset;
                        anchor.reverse =
                            rc_strand != handle.isReverse();
                        anchor.linearPos =
                            artifact.linearBases()[handle.node()] +
                            offset;
                        anchors.push_back(anchor);
                        if (flushed)
                            break;
                        window += k_;
                    }
                }
            }
        };

        // Lockstep SMEM scan (FmIndex::collectMems with the single
        // range replaced by one range per shard and "empty" meaning
        // "empty in every shard").
        uint32_t cur_begin = 0, cur_end = 0;
        bool have = false;
        ws.cur.assign(shard_count, {});
        ws.ranges.resize(shard_count);
        ws.next.resize(shard_count);
        for (uint32_t e = 1; e <= m; ++e) {
            for (size_t slot = 0; slot < shard_count; ++slot)
                ws.ranges[slot] =
                    ws.pins[slot]->artifact->fmIndex()->fullRange();
            uint32_t b = e;
            while (b > 0) {
                uint64_t total_next = 0;
                for (size_t slot = 0; slot < shard_count; ++slot) {
                    ws.next[slot] =
                        ws.pins[slot]->artifact->fmIndex()->extend(
                            ws.ranges[slot], codes[b - 1]);
                    total_next += ws.next[slot].size();
                }
                if (total_next == 0)
                    break;
                std::swap(ws.ranges, ws.next);
                --b;
            }
            if (!have || b > cur_begin) {
                if (have)
                    flush(cur_begin, cur_end, ws.cur);
                cur_begin = b;
                cur_end = e;
                ws.cur = ws.ranges;
                have = true;
            } else {
                cur_end = e;
                ws.cur = ws.ranges;
            }
        }
        if (have)
            flush(cur_begin, cur_end, ws.cur);
    }

    const ShardSetSource &source_;
    uint32_t k_;
    size_t maxOccurrences_;
};

// ---------------------------------------------------------------------
// ShardSetSource
// ---------------------------------------------------------------------

std::unique_ptr<const ShardSetSource>
ShardSetSource::open(const std::string &manifest_path,
                     SeederKind seeder, uint64_t cache_mb)
{
    store::ShardManifest manifest =
        store::ShardManifest::load(manifest_path);
    return std::unique_ptr<const ShardSetSource>(new ShardSetSource(
        std::move(manifest), seeder, cache_mb));
}

ShardSetSource::ShardSetSource(store::ShardManifest manifest,
                               SeederKind seeder, uint64_t cache_mb)
    : manifest_(std::move(manifest)), router_(manifest_),
      cache_(std::make_unique<ShardCache>(manifest_, router_,
                                          cache_mb << 20))
{
    avgNodeLength_ = std::max(
        1.0, static_cast<double>(manifest_.totalBases) /
                 static_cast<double>(manifest_.nodeCount));
    for (uint32_t s = 0; s < manifest_.shards.size(); ++s) {
        if (manifest_.shards[s].paths > 0)
            seedShards_.push_back(s);
    }
    if (seeder == SeederKind::kMem && manifest_.seeder != "mem") {
        core::fatal(manifest_.path,
                    ": shard set has no FM-index sections; rebuild it "
                    "with `pgb shard --seeder=mem` to map with "
                    "--seeder=mem");
    }
    switch (seeder) {
      case SeederKind::kMinimizer:
        seeder_ = std::make_unique<ShardMinimizerSeeder>(*this);
        break;
      case SeederKind::kMem:
        seeder_ = std::make_unique<ShardMemSeeder>(
            *this, manifest_.k);
        break;
    }
}

ShardSetSource::~ShardSetSource() = default;

graph::LocalGraph
ShardSetSource::extractSubgraph(graph::Handle start, size_t radius,
                                uint32_t *origin) const
{
    const auto route = router_.route(start.node());
    const auto pin = cache_->get(route.shard);
    // LocalGraph owns its sequences, so the result is safe to use
    // after the pin (and with it, possibly the mapping) goes away.
    return pin->artifact->graph().extractSubgraph(
        graph::Handle(route.local, start.isReverse()), radius, origin);
}

GbwtWalk
ShardSetSource::gbwtWalkAt(uint32_t global_node) const
{
    const auto route = router_.route(global_node);
    auto pin = cache_->get(route.shard);
    GbwtWalk walk;
    walk.gbwt = pin->artifact->gbwt();
    walk.start = graph::Handle(route.local, false);
    if (walk.gbwt != nullptr)
        walk.pin = std::move(pin);
    return walk;
}

} // namespace pgb::pipeline
