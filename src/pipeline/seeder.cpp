#include "pipeline/seeder.hpp"

#include <algorithm>

#include "core/logging.hpp"
#include "core/scratch.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "seq/alphabet.hpp"

namespace pgb::pipeline {

namespace {

obs::Counter obsSeedAnchors("seed.anchors");
obs::Counter obsSeedMems("seed.mems");
obs::Counter obsSeedMemOccs("seed.mem_occurrences");
obs::Counter obsSeedDropped("seed.dropped_repetitive");

/** Thread-local temporaries for MemSeeder::collect. */
struct MemScratch
{
    std::vector<index::FmIndex::Mem> mems;
    std::vector<uint8_t> rc;
};

} // namespace

namespace detail {

void
addSeedAnchors(size_t n)
{
    obsSeedAnchors.add(n);
}

void
addSeedMems(size_t n)
{
    obsSeedMems.add(n);
}

void
addSeedMemOccurrences(size_t n)
{
    obsSeedMemOccs.add(n);
}

void
addSeedDroppedRepetitive()
{
    obsSeedDropped.add();
}

} // namespace detail

void
canonicalizeMemAnchors(std::vector<Anchor> &anchors)
{
    std::sort(anchors.begin(), anchors.end(),
              [](const Anchor &a, const Anchor &b) {
                  if (a.queryPos != b.queryPos)
                      return a.queryPos < b.queryPos;
                  if (a.reverse != b.reverse)
                      return a.reverse < b.reverse;
                  if (a.linearPos != b.linearPos)
                      return a.linearPos < b.linearPos;
                  if (a.node != b.node)
                      return a.node < b.node;
                  return a.nodeOffset < b.nodeOffset;
              });
    anchors.erase(std::unique(anchors.begin(), anchors.end(),
                              [](const Anchor &a, const Anchor &b) {
                                  return a.queryPos == b.queryPos &&
                                         a.reverse == b.reverse &&
                                         a.node == b.node &&
                                         a.nodeOffset == b.nodeOffset;
                              }),
                  anchors.end());
}

SeederKind
parseSeeder(const std::string &name)
{
    if (name == "minimizer")
        return SeederKind::kMinimizer;
    if (name == "mem")
        return SeederKind::kMem;
    core::fatal("unknown seeder '", name,
                "' (expected minimizer or mem)");
}

const char *
seederName(SeederKind kind)
{
    switch (kind) {
      case SeederKind::kMinimizer: return "minimizer";
      case SeederKind::kMem: return "mem";
    }
    return "?";
}

// ---------------------------------------------------------------------
// MinimizerSeeder
// ---------------------------------------------------------------------

MinimizerSeeder::MinimizerSeeder(const index::MinimizerIndex &index,
                                 const GraphLinearization &linear,
                                 size_t max_occurrences)
    : index_(index), linear_(linear), maxOccurrences_(max_occurrences)
{
}

void
MinimizerSeeder::collect(const seq::Sequence &read,
                         std::vector<Anchor> &anchors) const
{
    obs::Span span("seed.minimizer");
    collectAnchorsInto(read, index_, linear_, anchors, maxOccurrences_);
    obsSeedAnchors.add(anchors.size());
}

// ---------------------------------------------------------------------
// MemSeeder
// ---------------------------------------------------------------------

MemSeeder::MemSeeder(const index::FmIndex &fm,
                     const graph::PanGraph &graph,
                     const GraphLinearization &linear, uint32_t k,
                     size_t max_occurrences)
    : fm_(fm), graph_(graph), linear_(linear), k_(k == 0 ? 1 : k),
      maxOccurrences_(max_occurrences)
{
    if (fm_.pathCount() != graph.pathCount())
        core::fatal("FM-index covers ", fm_.pathCount(),
                    " paths, graph has ", graph.pathCount());
    stepStarts_.resize(graph.pathCount());
    for (graph::PathId p = 0; p < graph.pathCount(); ++p) {
        const auto &steps = graph.pathSteps(p);
        auto &starts = stepStarts_[p];
        starts.reserve(steps.size() + 1);
        uint64_t at = 0;
        for (graph::Handle step : steps) {
            starts.push_back(at);
            at += graph.nodeLength(step.node());
        }
        starts.push_back(at);
    }
}

void
MemSeeder::collect(const seq::Sequence &read,
                   std::vector<Anchor> &anchors) const
{
    anchors.clear();
    obs::Span span("seed.mem");
    if (read.size() < k_)
        return;
    MemScratch &ws = core::threadScratch<MemScratch>();

    const auto read_length = static_cast<uint32_t>(read.size());
    collectStrand(read.codes(), false, read_length, ws.mems, anchors);

    ws.rc.resize(read.size());
    const auto &codes = read.codes();
    for (size_t i = 0; i < codes.size(); ++i)
        ws.rc[i] = seq::complementBase(codes[codes.size() - 1 - i]);
    collectStrand(ws.rc, true, read_length, ws.mems, anchors);

    canonicalizeMemAnchors(anchors);
    obsSeedAnchors.add(anchors.size());
}

void
MemSeeder::collectStrand(std::span<const uint8_t> codes, bool rc_strand,
                         uint32_t read_length,
                         std::vector<index::FmIndex::Mem> &mems,
                         std::vector<Anchor> &anchors) const
{
    fm_.collectMems(codes, k_, mems);
    obsSeedMems.add(mems.size());
    for (const index::FmIndex::Mem &mem : mems) {
        if (mem.range.size() > maxOccurrences_) {
            obsSeedDropped.add();
            continue;
        }
        obsSeedMemOccs.add(mem.range.size());
        const uint32_t length = mem.queryEnd - mem.queryBegin;
        for (uint64_t r = mem.range.lo; r < mem.range.hi; ++r) {
            const uint64_t text_pos = fm_.locate(r);
            const auto pos = fm_.resolve(text_pos);
            const auto &starts = stepStarts_[pos.path];
            const auto &steps = graph_.pathSteps(pos.path);
            // k-length sub-anchors at stride k, plus one flushed
            // against the MEM end so its tail is represented too.
            uint32_t window = 0;
            bool flushed = false;
            while (true) {
                if (window + k_ > length) {
                    if (flushed || length % k_ == 0)
                        break;
                    window = length - k_;
                    flushed = true;
                }
                const uint64_t path_off = pos.offset + window;
                const auto step = static_cast<size_t>(
                    std::upper_bound(starts.begin(), starts.end(),
                                     path_off) -
                    starts.begin() - 1);
                const graph::Handle handle = steps[step];
                const uint64_t in_step = path_off - starts[step];
                const auto node_length = static_cast<uint64_t>(
                    graph_.nodeLength(handle.node()));
                const auto offset = static_cast<uint32_t>(
                    handle.isReverse() ? node_length - 1 - in_step
                                       : in_step);
                Anchor anchor;
                anchor.queryPos =
                    rc_strand
                        ? read_length - (mem.queryBegin + window) - k_
                        : mem.queryBegin + window;
                anchor.node = handle.node();
                anchor.nodeOffset = offset;
                anchor.reverse = rc_strand != handle.isReverse();
                anchor.linearPos =
                    linear_.offsetOf(anchor.node, anchor.nodeOffset);
                anchors.push_back(anchor);
                if (flushed)
                    break;
                window += k_;
            }
        }
    }
}

} // namespace pgb::pipeline
