#include "pipeline/mapper.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "align/gbv.hpp"
#include "align/gssw.hpp"
#include "align/gwfa.hpp"
#include "align/ssw.hpp"
#include "align/ssw_batch.hpp"
#include "align/wfa.hpp"
#include "core/fault.hpp"
#include "core/logging.hpp"
#include "core/scratch.hpp"
#include "core/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace pgb::pipeline {

namespace {

/** Injects a per-read failure inside the mapping worker loop. */
core::FaultSite faultMapRead(
    "mapper.read", "FatalError on the calling thread; run fails closed");

obs::Counter obsReads("mapper.reads");
obs::Counter obsReadsMapped("mapper.reads_mapped");
obs::Counter obsAnchors("mapper.anchors");
obs::Counter obsClusters("mapper.clusters");
obs::Counter obsAlignments("mapper.alignments");

} // namespace

const char *
toolName(ToolProfile profile)
{
    switch (profile) {
      case ToolProfile::kVgMap: return "VgMap";
      case ToolProfile::kVgGiraffe: return "VgGiraffe";
      case ToolProfile::kGraphAligner: return "GraphAligner";
      case ToolProfile::kMinigraph: return "Minigraph";
    }
    return "?";
}

MapperConfig
MapperConfig::forTool(ToolProfile tool)
{
    MapperConfig config;
    config.profile = tool;
    switch (tool) {
      case ToolProfile::kVgMap:
        config.maxAlignments = 4; // thorough: many candidate DPs
        break;
      case ToolProfile::kVgGiraffe:
        config.maxAlignments = 1; // extension of the one survivor
        config.radiusFactor = 0.7;
        break;
      case ToolProfile::kGraphAligner:
        config.maxAlignments = 1;
        config.radiusFactor = 1.05;
        config.gbvBand = 48; // GraphAligner's banded bit-vector DP
        break;
      case ToolProfile::kMinigraph:
        break;
    }
    return config;
}

Seq2GraphMapper::Seq2GraphMapper(const graph::PanGraph &graph,
                                 MapperConfig config)
    : config_(config)
{
    owned_ = MappingContext::Builder()
                 .fromGraph(graph)
                 .k(config.k)
                 .w(config.w)
                 .threads(config.threads)
                 .buildGbwt(config.profile == ToolProfile::kVgGiraffe)
                 .build();
    context_ = owned_.get();
    checkContext();
}

Seq2GraphMapper::Seq2GraphMapper(
    std::shared_ptr<const MappingContext> context, MapperConfig config)
    : owned_(std::move(context)), context_(owned_.get()),
      config_(config)
{
    checkContext();
}

Seq2GraphMapper::Seq2GraphMapper(const MappingContext &context,
                                 MapperConfig config)
    : context_(&context), config_(config)
{
    checkContext();
}

void
Seq2GraphMapper::checkContext() const
{
    if (context_ == nullptr)
        core::fatal("mapper: null mapping context");
    if (config_.k != context_->k() || config_.w != context_->w()) {
        core::fatal("mapper: config k/w (", config_.k, "/", config_.w,
                    ") do not match the context's index (",
                    context_->k(), "/", context_->w(), ")");
    }
    if (config_.profile == ToolProfile::kVgGiraffe &&
        !context_->hasGbwt()) {
        core::fatal("mapper: the giraffe profile needs a GBWT, but "
                    "the mapping context has none (build the context "
                    "with a GBWT or re-run pgb index)");
    }
}

std::vector<Seq2GraphMapper::AlignTask>
Seq2GraphMapper::planAlignments(const seq::Sequence &read,
                                MappingStats &stats) const
{
    // Per-read planning buffers, one set per thread for the process
    // lifetime (core::threadScratch): anchors and chains are cleared
    // per read but keep their heap allocations, so the steady-state
    // planning path stays off malloc. AlignTask copies plain values,
    // so nothing escapes the borrowing task.
    struct PlanScratch
    {
        std::vector<Anchor> anchors;
        std::vector<AnchorChain> chains;
    };
    PlanScratch &ws = core::threadScratch<PlanScratch>();

    // ---- Seeding.
    std::vector<Anchor> &anchors = ws.anchors;
    {
        core::StageTimers::Scope scope(stats.timers, "seed");
        obs::Span span("seed");
        context_->seeder().collect(read, anchors);
        stats.anchors += anchors.size();
        obsAnchors.add(anchors.size());
    }
    if (anchors.empty())
        return {};

    // ---- Clustering / chaining.
    std::vector<AnchorChain> &chains = ws.chains;
    {
        core::StageTimers::Scope scope(stats.timers, "cluster_chain");
        obs::Span span("cluster_chain");
        switch (config_.profile) {
          case ToolProfile::kMinigraph: {
            ChainParams params;
            chainAnchorsInto(anchors, params, chains);
            break;
          }
          case ToolProfile::kGraphAligner:
            // GraphAligner: lightweight clustering, wide bands.
            clusterAnchorsInto(anchors, 512, chains);
            break;
          default:
            clusterAnchorsInto(anchors, 128, chains);
            break;
        }
        // Drop weak clusters.
        chains.erase(
            std::remove_if(chains.begin(), chains.end(),
                           [&](const AnchorChain &chain) {
                               return chain.anchorIds.size() <
                                      config_.minClusterAnchors;
                           }),
            chains.end());
        stats.clusters += chains.size();
        obsClusters.add(chains.size());
    }
    if (chains.empty())
        return {};

    // Minigraph: GWFA gap bridging inside the chaining stage (the
    // extracted kernel; paper: 47-75% of cluster/chain time).
    if (config_.profile == ToolProfile::kMinigraph) {
        core::StageTimers::Scope scope(stats.timers, "cluster_chain");
        obs::Span span("cluster_chain");
        core::WallTimer kernel_timer;
        const AnchorChain &best = chains.front();
        const auto &codes = read.codes();
        for (size_t i = 0; i + 1 < best.anchorIds.size(); ++i) {
            const Anchor &a = anchors[best.anchorIds[i]];
            const Anchor &b = anchors[best.anchorIds[i + 1]];
            // Gap on the strand the alignment runs on; reverse chains
            // retreat on forward-read coordinates.
            const uint64_t query_gap = best.reverse
                ? (a.queryPos > b.queryPos ? a.queryPos - b.queryPos
                                           : 0)
                : (b.queryPos > a.queryPos ? b.queryPos - a.queryPos
                                           : 0);
            if (query_gap < config_.gwfaGapThreshold)
                continue;
            // Bridge the anchors through the graph with GWFA.
            uint32_t origin = 0;
            graph::LocalGraph sub = source().extractSubgraph(
                graph::Handle(a.node, false),
                query_gap * 2 + 64, &origin);
            std::vector<uint8_t> gap_query;
            if (best.reverse) {
                // The aligned strand is the reverse complement: the
                // gap content is rc(read[b.q .. a.q)).
                seq::Sequence tmp(std::vector<uint8_t>(
                    codes.begin() + b.queryPos,
                    codes.begin() + a.queryPos));
                gap_query = tmp.reverseComplement().codes();
            } else {
                gap_query.assign(codes.begin() + a.queryPos,
                                 codes.begin() + b.queryPos);
            }
            align::gwfaAlign(sub, gap_query, origin,
                             static_cast<int32_t>(query_gap),
                             a.nodeOffset);
        }
        stats.kernelSeconds += kernel_timer.seconds();
        stats.kernelName = "GWFA";
    }

    // ---- Filtering (giraffe: GBWT haplotype-consistent extension).
    std::vector<AlignTask> tasks;
    {
        core::StageTimers::Scope scope(stats.timers, "filter");
        obs::Span span("filter");
        core::WallTimer kernel_timer;
        size_t taken = 0;
        for (const AnchorChain &chain : chains) {
            if (taken >= config_.maxAlignments)
                break;
            const Anchor &mid =
                anchors[chain.anchorIds[chain.anchorIds.size() / 2]];
            // Minigraph starts its query-global walk at the chain's
            // graph-first anchor.
            const Anchor *first = &mid;
            if (config_.profile == ToolProfile::kMinigraph) {
                for (uint32_t id : chain.anchorIds) {
                    if (anchors[id].linearPos < first->linearPos)
                        first = &anchors[id];
                }
            }
            if (config_.profile == ToolProfile::kVgGiraffe) {
                // Extend every seed of the cluster along haplotypes;
                // clusters whose seeds have no haplotype-consistent
                // extension are filtered out (Figure 4c). This
                // per-seed GBWT walking is the stage that dominates
                // giraffe's runtime (paper Figure 2).
                size_t supported = 0;
                size_t tried = 0;
                for (uint32_t anchor_id : chain.anchorIds) {
                    if (++tried > 64)
                        break;
                    // The walk pins the anchor's shard (if any) and
                    // hands back that shard's own GBWT with the
                    // anchor's id in its space; a haplotype walk
                    // never leaves a connected component, so the
                    // shard-local walk equals the monolithic one.
                    const GbwtWalk walk = source().gbwtWalkAt(
                        anchors[anchor_id].node);
                    if (walk.gbwt == nullptr)
                        continue; // no haplotypes recorded here
                    index::GbwtRange range =
                        walk.gbwt->fullRange(walk.start);
                    size_t extended = 0;
                    while (!range.empty() &&
                           extended < config_.gbwtExtensionSteps) {
                        const auto nexts = walk.gbwt->nextNodes(range);
                        if (nexts.empty())
                            break;
                        // Follow the best-supported extension.
                        index::GbwtRange best_next;
                        for (graph::Handle next : nexts) {
                            index::GbwtRange cand =
                                walk.gbwt->extend(range, next);
                            if (cand.size() > best_next.size())
                                best_next = cand;
                        }
                        range = best_next;
                        ++extended;
                    }
                    supported += extended > 0 ? 1 : 0;
                }
                if (supported == 0)
                    continue; // no haplotype takes this cluster
            }
            AlignTask task;
            if (config_.profile == ToolProfile::kMinigraph) {
                task.seedHandle = graph::Handle(first->node, false);
                task.seedOffset = first->nodeOffset;
                task.linearLo = first->linearPos;
                // Query position of the seed node's *start*, on the
                // strand the alignment runs on.
                const auto k = static_cast<uint32_t>(config_.k);
                uint32_t qpos = first->queryPos;
                if (chain.reverse) {
                    const auto len =
                        static_cast<uint32_t>(read.size());
                    qpos = len >= qpos + k ? len - qpos - k : 0;
                }
                task.queryStart = qpos;
            } else {
                task.seedHandle = graph::Handle(mid.node, false);
                task.seedOffset = mid.nodeOffset;
                uint64_t lo = UINT64_MAX, hi = 0;
                for (uint32_t id : chain.anchorIds) {
                    lo = std::min(lo, anchors[id].linearPos);
                    hi = std::max(hi, anchors[id].linearPos +
                                          config_.k);
                }
                task.linearLo = lo;
                task.linearHi = hi;
            }
            task.reverse = chain.reverse;
            tasks.push_back(task);
            ++taken;
        }
        if (config_.profile == ToolProfile::kVgGiraffe) {
            stats.kernelSeconds += kernel_timer.seconds();
            stats.kernelName = "GBWT";
        }
    }
    return tasks;
}

size_t
Seq2GraphMapper::taskRadius(const AlignTask &task,
                            size_t read_length) const
{
    if (config_.profile == ToolProfile::kMinigraph) {
        // Minigraph aligns the query-global suffix; span by length.
        return static_cast<size_t>(
            static_cast<double>(read_length) * config_.radiusFactor);
    }
    // Cluster span plus step-granular context (vg's context depth).
    const uint64_t span = task.linearHi > task.linearLo
        ? task.linearHi - task.linearLo : 0;
    const auto context = static_cast<size_t>(
        config_.contextSteps * context_->avgNodeLength());
    const size_t base = std::max<size_t>(
        span / 2, static_cast<size_t>(
                      static_cast<double>(read_length) *
                      config_.radiusFactor / 2.0));
    return base + context;
}

ReadMapping
Seq2GraphMapper::mapOne(const seq::Sequence &read,
                        MappingStats &stats) const
{
    ReadMapping mapping;
    const auto tasks = planAlignments(read, stats);
    if (tasks.empty())
        return mapping;

    const seq::Sequence rc = read.reverseComplement();

    core::StageTimers::Scope scope(stats.timers, "align");
    obs::Span span("align");
    core::WallTimer kernel_timer;
    for (const AlignTask &task : tasks) {
        ++stats.alignments;
        obsAlignments.add();
        const auto &query = task.reverse ? rc.codes() : read.codes();
        uint32_t origin = 0;
        graph::LocalGraph sub = source().extractSubgraph(
            task.seedHandle, taskRadius(task, read.size()), &origin);
        int32_t score = 0;
        uint32_t node = task.seedHandle.node();
        switch (config_.profile) {
          case ToolProfile::kVgMap:
          case ToolProfile::kVgGiraffe: {
            align::GsswOptions options;
            // giraffe's extension alignment avoids full traceback
            // matrices; vg map keeps them.
            options.keepMatrices =
                config_.profile == ToolProfile::kVgMap;
            const auto result = align::gsswAlign(
                sub, query, align::ScoreParams::mappingDefaults(),
                options);
            score = result.best.score;
            node = task.seedHandle.node();
            break;
          }
          case ToolProfile::kGraphAligner: {
            align::GbvOptions options;
            options.band = config_.gbvBand;
            const auto result = align::gbvAlign(sub, query, options);
            // Convert edit distance to a score-like quantity.
            score = static_cast<int32_t>(query.size()) -
                    result.distance;
            break;
          }
          case ToolProfile::kMinigraph: {
            // Final base-level refinement with the wavefront kernel
            // through the graph region: query-global from the chain's
            // first anchor, so align the read suffix that starts at
            // the seed node's start.
            const size_t start = std::min<size_t>(task.queryStart,
                                                  query.size() - 1);
            const std::span<const uint8_t> suffix(
                query.data() + start, query.size() - start);
            const auto result = align::gwfaAlign(
                sub, suffix, origin,
                static_cast<int32_t>(suffix.size() / 2 + 32),
                task.seedOffset);
            score = result.reached
                ? static_cast<int32_t>(suffix.size()) -
                      result.distance
                : 0;
            break;
          }
        }
        if (score > mapping.score) {
            mapping.score = score;
            mapping.node = node;
            mapping.reverse = task.reverse;
            mapping.mapped = true;
        }
    }
    switch (config_.profile) {
      case ToolProfile::kVgMap:
        stats.kernelSeconds += kernel_timer.seconds();
        stats.kernelName = "GSSW";
        break;
      case ToolProfile::kGraphAligner:
        stats.kernelSeconds += kernel_timer.seconds();
        stats.kernelName = "GBV";
        break;
      default:
        break;
    }
    // Require a minimally convincing alignment.
    if (mapping.score <
        static_cast<int32_t>(read.size()) / 4) {
        mapping.mapped = false;
    }
    return mapping;
}

MappingStats
Seq2GraphMapper::mapReads(std::span<const seq::Sequence> reads) const
{
    return mapReads(reads, nullptr);
}

MappingStats
Seq2GraphMapper::mapReads(std::span<const seq::Sequence> reads,
                          std::vector<ReadMapping> *mappings) const
{
    MappingStats total;
    total.reads = reads.size();
    obsReads.add(reads.size());
    if (mappings != nullptr)
        mappings->assign(reads.size(), ReadMapping{});

    std::atomic<uint64_t> mapped(0);
    std::mutex merge_lock;
    core::parallelFor(0, reads.size(), config_.threads, [&](size_t i) {
        if (faultMapRead.fire()) {
            core::fatal("mapper: injected fault processing read '",
                        reads[i].name(), "'");
        }
        obs::Span span("mapper.read");
        MappingStats local;
        const ReadMapping mapping = mapOne(reads[i], local);
        if (mappings != nullptr)
            (*mappings)[i] = mapping;
        if (mapping.mapped) {
            mapped.fetch_add(1, std::memory_order_relaxed);
            obsReadsMapped.add();
        }
        std::lock_guard<std::mutex> lock(merge_lock);
        for (const auto &[stage, secs] : local.timers.stages())
            total.timers.add(stage, secs);
        total.kernelSeconds += local.kernelSeconds;
        if (local.kernelName[0] != '\0')
            total.kernelName = local.kernelName;
        total.anchors += local.anchors;
        total.clusters += local.clusters;
        total.alignments += local.alignments;
    });
    total.mappedReads = mapped.load();
    return total;
}

std::vector<GsswTrace>
Seq2GraphMapper::captureAlignTraces(std::span<const seq::Sequence> reads,
                                    size_t max_traces) const
{
    std::vector<GsswTrace> traces;
    MappingStats stats;
    for (const seq::Sequence &read : reads) {
        if (traces.size() >= max_traces)
            break;
        const auto tasks = planAlignments(read, stats);
        const seq::Sequence rc = read.reverseComplement();
        for (const AlignTask &task : tasks) {
            if (traces.size() >= max_traces)
                break;
            GsswTrace trace;
            trace.subgraph = source().extractSubgraph(
                task.seedHandle, taskRadius(task, read.size()));
            trace.query = task.reverse ? rc.codes() : read.codes();
            traces.push_back(std::move(trace));
        }
    }
    return traces;
}

std::vector<GwfaTrace>
Seq2GraphMapper::captureGwfaTraces(std::span<const seq::Sequence> reads,
                                   size_t max_traces) const
{
    std::vector<GwfaTrace> traces;
    MappingStats stats;
    for (const seq::Sequence &read : reads) {
        if (traces.size() >= max_traces)
            break;
        std::vector<Anchor> anchors = collectAnchors(
            read, context_->minimizers(), context_->linearization());
        if (anchors.empty())
            continue;
        ChainParams params;
        const auto chains = chainAnchors(anchors, params);
        if (chains.empty())
            continue;
        const AnchorChain &best = chains.front();
        if (best.reverse)
            continue; // forward-strand traces are representative
        const auto &codes = read.codes();
        for (size_t i = 0; i + 1 < best.anchorIds.size() &&
                           traces.size() < max_traces; ++i) {
            const Anchor &a = anchors[best.anchorIds[i]];
            const Anchor &b = anchors[best.anchorIds[i + 1]];
            const uint64_t query_gap =
                b.queryPos > a.queryPos ? b.queryPos - a.queryPos : 0;
            if (query_gap < config_.gwfaGapThreshold)
                continue;
            GwfaTrace trace;
            trace.subgraph = source().extractSubgraph(
                graph::Handle(a.node, false), query_gap * 2 + 64,
                &trace.startNode);
            trace.query.assign(
                codes.begin() + a.queryPos,
                codes.begin() + std::min<size_t>(b.queryPos,
                                                 codes.size()));
            traces.push_back(std::move(trace));
        }
    }
    return traces;
}

// ---------------------------------------------------------------------
// Seq2Seq baseline
// ---------------------------------------------------------------------

Seq2SeqMapper::Seq2SeqMapper(const seq::Sequence &reference, int k, int w)
    : reference_(reference), k_(k), w_(w)
{
    for (const index::Minimizer &mini :
         index::computeMinimizers(reference.codes(), k, w)) {
        // Pack (position, canonical strand) per occurrence.
        table_[mini.hash].push_back((mini.position << 1) |
                                    (mini.reverse ? 1u : 0u));
    }
}

Seq2SeqMapper::Window
Seq2SeqMapper::bestWindow(const seq::Sequence &read,
                          MappingStats *stats) const
{
    Window window;
    MappingStats scratch;
    MappingStats &target = stats != nullptr ? *stats : scratch;

    // Same-strand hits vote on diagonals (t - q); opposite-strand
    // hits vote on anti-diagonals (t + q), which are constant along a
    // reverse-complement alignment.
    std::unordered_map<int64_t, uint32_t> fwd_votes, rev_votes;
    int64_t best_diag = 0;
    uint32_t best_votes = 0;
    bool best_reverse = false;
    {
        core::StageTimers::Scope scope(target.timers, "seed");
        for (const index::Minimizer &mini :
             index::computeMinimizers(read.codes(), k_, w_)) {
            auto it = table_.find(mini.hash);
            if (it == table_.end() || it->second.size() > 64)
                continue;
            ++target.anchors;
            for (uint32_t packed : it->second) {
                const uint32_t pos = packed >> 1;
                const bool ref_strand = packed & 1;
                const bool opposite = ref_strand != mini.reverse;
                const int64_t diag = opposite
                    ? static_cast<int64_t>(pos) + mini.position
                    : static_cast<int64_t>(pos) - mini.position;
                auto &votes_map = opposite ? rev_votes : fwd_votes;
                const uint32_t votes = ++votes_map[diag / 64];
                if (votes > best_votes) {
                    best_votes = votes;
                    best_diag = diag;
                    best_reverse = opposite;
                }
            }
        }
    }
    {
        core::StageTimers::Scope scope(target.timers, "cluster_chain");
        if (best_votes < 2)
            return window;
        const auto read_len = static_cast<int64_t>(read.size());
        const int64_t margin = read_len / 8 + 32;
        // For reverse mappings the window spans [antidiag - len,
        // antidiag]; for forward ones [diag, diag + len].
        int64_t begin = best_reverse ? best_diag - read_len - margin
                                     : best_diag - margin;
        int64_t end = begin + read_len + 2 * margin;
        begin = std::max<int64_t>(begin, 0);
        end = std::min<int64_t>(end,
                                static_cast<int64_t>(reference_.size()));
        if (begin >= end)
            return window;
        window.found = true;
        window.begin = static_cast<uint64_t>(begin);
        window.end = static_cast<uint64_t>(end);
        window.reverse = best_reverse;
    }
    return window;
}

MappingStats
Seq2SeqMapper::mapReads(std::span<const seq::Sequence> reads,
                        unsigned threads) const
{
    MappingStats total;
    total.reads = reads.size();
    total.kernelName = "SSW";

    // Phase 1 (parallel): window search and strand selection per read.
    // Canonical minimizers place reverse-strand reads too, so the
    // window search runs once and the right strand is aligned in it.
    // Plans are preallocated so workers fill disjoint slots.
    struct ReadPlan
    {
        Window window;
        std::vector<uint8_t> rc; ///< reverse-complement codes, if used
    };
    std::vector<ReadPlan> plans(reads.size());
    std::mutex merge_lock;
    core::parallelFor(0, reads.size(), threads, [&](size_t i) {
        MappingStats local;
        ReadPlan &plan = plans[i];
        plan.window = bestWindow(reads[i], &local);
        if (plan.window.found && plan.window.reverse)
            plan.rc = reads[i].reverseComplement().codes();
        std::lock_guard<std::mutex> lock(merge_lock);
        for (const auto &[stage, secs] : local.timers.stages())
            total.timers.add(stage, secs);
        total.anchors += local.anchors;
    });

    // Phase 2: one inter-sequence batched SSW pass over every read
    // that found a window. The batch packs length-bucketed reads into
    // the SIMD lanes (align/ssw_batch.hpp), so lane occupancy no
    // longer depends on any single read's length; results land in job
    // order regardless of thread count.
    std::vector<align::BatchJob> jobs;
    std::vector<size_t> job_read;
    jobs.reserve(reads.size());
    job_read.reserve(reads.size());
    for (size_t i = 0; i < reads.size(); ++i) {
        const ReadPlan &plan = plans[i];
        if (!plan.window.found)
            continue;
        align::BatchJob job;
        job.query = plan.window.reverse
            ? std::span<const uint8_t>(plan.rc)
            : std::span<const uint8_t>(reads[i].codes());
        job.reference = std::span<const uint8_t>(
            reference_.codes().data() + plan.window.begin,
            plan.window.end - plan.window.begin);
        jobs.push_back(job);
        job_read.push_back(i);
    }
    std::vector<align::LocalHit> hits(jobs.size());
    {
        core::StageTimers::Scope scope(total.timers, "align");
        align::sswAlignBatch(jobs,
                             align::ScoreParams::mappingDefaults(),
                             hits, threads);
    }
    uint64_t mapped = 0;
    for (size_t j = 0; j < jobs.size(); ++j) {
        const auto read_size = reads[job_read[j]].size();
        if (hits[j].score > static_cast<int32_t>(read_size) / 4)
            ++mapped;
    }
    total.alignments = jobs.size();
    total.mappedReads = mapped;
    return total;
}

std::vector<Seq2SeqMapper::SswTrace>
Seq2SeqMapper::captureSswTraces(std::span<const seq::Sequence> reads,
                                size_t max_traces) const
{
    std::vector<SswTrace> traces;
    for (const seq::Sequence &read : reads) {
        if (traces.size() >= max_traces)
            break;
        const Window window = bestWindow(read, nullptr);
        if (!window.found)
            continue;
        SswTrace trace;
        trace.query = window.reverse
            ? read.reverseComplement().codes() : read.codes();
        trace.window.assign(
            reference_.codes().begin() +
                static_cast<ptrdiff_t>(window.begin),
            reference_.codes().begin() +
                static_cast<ptrdiff_t>(window.end));
        traces.push_back(std::move(trace));
    }
    return traces;
}

} // namespace pgb::pipeline
