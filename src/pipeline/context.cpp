#include "pipeline/context.hpp"

#include <algorithm>

#include "core/logging.hpp"
#include "pipeline/mapper.hpp"

namespace pgb::pipeline {

void
MappingContext::finalize(SeederKind seeder)
{
    linear_ = std::make_unique<GraphLinearization>(*graph_);
    avgNodeLength_ = std::max(1.0, graph_->stats().avgNodeLength);
    switch (seeder) {
      case SeederKind::kMinimizer:
        seeder_ = std::make_unique<MinimizerSeeder>(*minimizers_,
                                                    *linear_);
        break;
      case SeederKind::kMem:
        seeder_ = std::make_unique<MemSeeder>(
            *fm_, *graph_, *linear_, static_cast<uint32_t>(k_));
        break;
    }
}

std::shared_ptr<const MappingContext>
MappingContext::build(const graph::PanGraph &graph,
                      const ContextBuildParams &params)
{
    auto context = std::shared_ptr<MappingContext>(new MappingContext());
    context->graph_ = &graph;
    context->k_ = params.k;
    context->w_ = params.w;
    context->ownedMinimizers_ = std::make_unique<index::MinimizerIndex>(
        graph, params.k, params.w, params.threads);
    context->minimizers_ = context->ownedMinimizers_.get();
    if (params.buildGbwt) {
        context->ownedGbwt_ = std::make_unique<index::GbwtIndex>(
            graph, true, params.threads);
        context->gbwt_ = context->ownedGbwt_.get();
    }
    if (params.seeder == SeederKind::kMem) {
        context->ownedFm_ = std::make_unique<index::FmIndex>(
            graph, params.fmSampleRate);
        context->fm_ = context->ownedFm_.get();
    }
    context->finalize(params.seeder);
    return context;
}

std::shared_ptr<const MappingContext>
MappingContext::load(const std::string &artifact_path, SeederKind seeder)
{
    auto context = std::shared_ptr<MappingContext>(new MappingContext());
    context->artifact_ = store::Artifact::load(artifact_path);
    const store::Artifact &artifact = *context->artifact_;
    context->graph_ = &artifact.graph();
    context->minimizers_ = &artifact.minimizers();
    context->gbwt_ = artifact.gbwt();
    context->fm_ = artifact.fmIndex();
    context->k_ = artifact.k();
    context->w_ = artifact.w();
    if (seeder == SeederKind::kMem && context->fm_ == nullptr) {
        core::fatal(artifact_path,
                    ": artifact has no FM-index sections; rebuild it "
                    "with `pgb index --seeder=mem` to map with "
                    "--seeder=mem");
    }
    context->finalize(seeder);
    return context;
}

MappingStats
mapBatch(const MappingContext &context, const MapperConfig &config,
         std::span<const seq::Sequence> reads)
{
    const Seq2GraphMapper mapper(context, config);
    return mapper.mapReads(reads);
}

MappingStats
mapBatch(const MappingContext &context, const MapperConfig &config,
         std::span<const seq::Sequence> reads,
         std::vector<ReadMapping> &mappings)
{
    const Seq2GraphMapper mapper(context, config);
    return mapper.mapReads(reads, &mappings);
}

} // namespace pgb::pipeline
