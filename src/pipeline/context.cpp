#include "pipeline/context.hpp"

#include <algorithm>

#include "core/logging.hpp"
#include "pipeline/mapper.hpp"
#include "pipeline/shard_set.hpp"

namespace pgb::pipeline {

/**
 * The in-RAM GraphSource: one whole graph plus its indexes, either
 * built in memory or zero-copy views over one mmapped `.pgbi`
 * artifact. This is the historical MappingContext state, now behind
 * the GraphSource interface so the mapper no longer cares which
 * backing store it reads.
 */
class MonolithSource final : public GraphSource
{
  public:
    static std::unique_ptr<MonolithSource>
    build(const graph::PanGraph &graph, int k, int w, unsigned threads,
          bool build_gbwt, SeederKind seeder, uint32_t fm_sample_rate)
    {
        auto source = std::unique_ptr<MonolithSource>(
            new MonolithSource());
        source->graph_ = &graph;
        source->k_ = k;
        source->w_ = w;
        source->ownedMinimizers_ =
            std::make_unique<index::MinimizerIndex>(graph, k, w,
                                                    threads);
        source->minimizers_ = source->ownedMinimizers_.get();
        if (build_gbwt) {
            source->ownedGbwt_ = std::make_unique<index::GbwtIndex>(
                graph, true, threads);
            source->gbwt_ = source->ownedGbwt_.get();
        }
        if (seeder == SeederKind::kMem) {
            source->ownedFm_ = std::make_unique<index::FmIndex>(
                graph, fm_sample_rate);
            source->fm_ = source->ownedFm_.get();
        }
        source->finalize(seeder);
        return source;
    }

    static std::unique_ptr<MonolithSource>
    load(const std::string &artifact_path, SeederKind seeder)
    {
        auto source = std::unique_ptr<MonolithSource>(
            new MonolithSource());
        source->artifact_ = store::Artifact::load(artifact_path);
        const store::Artifact &artifact = *source->artifact_;
        source->graph_ = &artifact.graph();
        source->minimizers_ = &artifact.minimizers();
        source->gbwt_ = artifact.gbwt();
        source->fm_ = artifact.fmIndex();
        source->k_ = artifact.k();
        source->w_ = artifact.w();
        if (seeder == SeederKind::kMem && source->fm_ == nullptr) {
            core::fatal(artifact_path,
                        ": artifact has no FM-index sections; rebuild "
                        "it with `pgb index --seeder=mem` to map with "
                        "--seeder=mem");
        }
        source->finalize(seeder);
        return source;
    }

    // ---- GraphSource.

    const char *kindName() const override { return "monolith"; }
    const Seeder &seeder() const override { return *seeder_; }
    double avgNodeLength() const override { return avgNodeLength_; }
    bool hasGbwt() const override { return gbwt_ != nullptr; }
    size_t shardCount() const override { return 1; }

    graph::LocalGraph
    extractSubgraph(graph::Handle start, size_t radius,
                    uint32_t *origin) const override
    {
        return graph_->extractSubgraph(start, radius, origin);
    }

    GbwtWalk
    gbwtWalkAt(uint32_t global_node) const override
    {
        GbwtWalk walk;
        walk.gbwt = gbwt_;
        walk.start = graph::Handle(global_node, false);
        return walk;
    }

    // ---- The monolith-only surface MappingContext forwards.

    const graph::PanGraph &graph() const { return *graph_; }
    const index::MinimizerIndex &minimizers() const
    {
        return *minimizers_;
    }
    const index::GbwtIndex *gbwt() const { return gbwt_; }
    const index::FmIndex *fmIndex() const { return fm_; }
    const GraphLinearization &linearization() const { return *linear_; }
    const store::Artifact *artifact() const { return artifact_.get(); }
    int k() const { return k_; }
    int w() const { return w_; }

  private:
    MonolithSource() = default;

    void
    finalize(SeederKind seeder)
    {
        linear_ = std::make_unique<GraphLinearization>(*graph_);
        avgNodeLength_ =
            std::max(1.0, graph_->stats().avgNodeLength);
        switch (seeder) {
          case SeederKind::kMinimizer:
            seeder_ = std::make_unique<MinimizerSeeder>(*minimizers_,
                                                        *linear_);
            break;
          case SeederKind::kMem:
            seeder_ = std::make_unique<MemSeeder>(
                *fm_, *graph_, *linear_, static_cast<uint32_t>(k_));
            break;
        }
    }

    std::unique_ptr<store::Artifact> artifact_;
    const graph::PanGraph *graph_ = nullptr;
    std::unique_ptr<index::MinimizerIndex> ownedMinimizers_;
    const index::MinimizerIndex *minimizers_ = nullptr;
    std::unique_ptr<index::GbwtIndex> ownedGbwt_;
    const index::GbwtIndex *gbwt_ = nullptr;
    std::unique_ptr<index::FmIndex> ownedFm_;
    const index::FmIndex *fm_ = nullptr;
    std::unique_ptr<Seeder> seeder_;
    std::unique_ptr<GraphLinearization> linear_;
    double avgNodeLength_ = 1.0;
    int k_ = 0, w_ = 0;
};

namespace {

[[noreturn]] void
shardSetOnlyFatal(const char *accessor)
{
    core::fatal("mapping context reads a shard set; ", accessor,
                "() is monolith-only (no single in-RAM structure "
                "exists — go through source() instead)");
}

} // namespace

const graph::PanGraph &
MappingContext::graph() const
{
    if (mono_ == nullptr)
        shardSetOnlyFatal("graph");
    return mono_->graph();
}

const index::MinimizerIndex &
MappingContext::minimizers() const
{
    if (mono_ == nullptr)
        shardSetOnlyFatal("minimizers");
    return mono_->minimizers();
}

const index::GbwtIndex *
MappingContext::gbwt() const
{
    if (mono_ == nullptr)
        shardSetOnlyFatal("gbwt");
    return mono_->gbwt();
}

const index::FmIndex *
MappingContext::fmIndex() const
{
    if (mono_ == nullptr)
        shardSetOnlyFatal("fmIndex");
    return mono_->fmIndex();
}

const GraphLinearization &
MappingContext::linearization() const
{
    if (mono_ == nullptr)
        shardSetOnlyFatal("linearization");
    return mono_->linearization();
}

bool
MappingContext::fromArtifact() const
{
    if (mono_ == nullptr)
        shardSetOnlyFatal("fromArtifact");
    return mono_->artifact() != nullptr;
}

const store::Artifact *
MappingContext::artifact() const
{
    if (mono_ == nullptr)
        shardSetOnlyFatal("artifact");
    return mono_->artifact();
}

// ---------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------

MappingContext::Builder &
MappingContext::Builder::fromGraph(const graph::PanGraph &graph)
{
    graph_ = &graph;
    return *this;
}

MappingContext::Builder &
MappingContext::Builder::fromArtifact(std::string path)
{
    artifactPath_ = std::move(path);
    return *this;
}

MappingContext::Builder &
MappingContext::Builder::fromManifest(std::string path)
{
    manifestPath_ = std::move(path);
    return *this;
}

MappingContext::Builder &
MappingContext::Builder::seeder(SeederKind kind)
{
    seeder_ = kind;
    return *this;
}

MappingContext::Builder &
MappingContext::Builder::k(int k)
{
    k_ = k;
    return *this;
}

MappingContext::Builder &
MappingContext::Builder::w(int w)
{
    w_ = w;
    return *this;
}

MappingContext::Builder &
MappingContext::Builder::threads(unsigned threads)
{
    threads_ = threads;
    return *this;
}

MappingContext::Builder &
MappingContext::Builder::buildGbwt(bool build)
{
    buildGbwt_ = build;
    return *this;
}

MappingContext::Builder &
MappingContext::Builder::fmSampleRate(uint32_t rate)
{
    fmSampleRate_ = rate;
    return *this;
}

MappingContext::Builder &
MappingContext::Builder::shardCacheMb(uint64_t mb)
{
    shardCacheMb_ = mb;
    return *this;
}

std::shared_ptr<const MappingContext>
MappingContext::Builder::build() const
{
    const int sources = (graph_ != nullptr ? 1 : 0) +
                        (!artifactPath_.empty() ? 1 : 0) +
                        (!manifestPath_.empty() ? 1 : 0);
    if (sources != 1) {
        core::fatal("MappingContext::Builder: set exactly one of "
                    "fromGraph / fromArtifact / fromManifest (got ",
                    sources, ")");
    }
    auto context =
        std::shared_ptr<MappingContext>(new MappingContext());
    if (graph_ != nullptr) {
        auto mono = MonolithSource::build(*graph_, k_, w_, threads_,
                                          buildGbwt_, seeder_,
                                          fmSampleRate_);
        context->k_ = mono->k();
        context->w_ = mono->w();
        context->mono_ = mono.get();
        context->source_ = std::move(mono);
    } else if (!artifactPath_.empty()) {
        auto mono = MonolithSource::load(artifactPath_, seeder_);
        context->k_ = mono->k();
        context->w_ = mono->w();
        context->mono_ = mono.get();
        context->source_ = std::move(mono);
    } else {
        auto shards =
            ShardSetSource::open(manifestPath_, seeder_, shardCacheMb_);
        context->k_ = shards->k();
        context->w_ = shards->w();
        context->source_ = std::move(shards);
    }
    return context;
}

// ---------------------------------------------------------------------
// mapBatch
// ---------------------------------------------------------------------

MappingStats
mapBatch(const MappingContext &context, const MapperConfig &config,
         std::span<const seq::Sequence> reads)
{
    const Seq2GraphMapper mapper(context, config);
    return mapper.mapReads(reads);
}

MappingStats
mapBatch(const MappingContext &context, const MapperConfig &config,
         std::span<const seq::Sequence> reads,
         std::vector<ReadMapping> &mappings)
{
    const Seq2GraphMapper mapper(context, config);
    return mapper.mapReads(reads, &mappings);
}

} // namespace pgb::pipeline
