#include "pipeline/scaling.hpp"

#include "core/timer.hpp"
#include "obs/span.hpp"

namespace pgb::pipeline {

ScalingSeries
measureScaling(std::string tool,
               std::span<const unsigned> thread_counts,
               const std::function<void(unsigned)> &body)
{
    ScalingSeries series;
    series.tool = std::move(tool);
    for (unsigned threads : thread_counts) {
        obs::Span span("scaling.point");
        core::WallTimer timer;
        body(threads);
        ScalingPoint point;
        point.threads = threads;
        point.seconds = timer.seconds();
        point.speedup = series.points.empty()
            ? 1.0 : series.points.front().seconds / point.seconds;
        series.points.push_back(point);
    }
    return series;
}

} // namespace pgb::pipeline
